/**
 * @file
 * tts_sim - command-line front end for the thermal-time-shifting
 * simulator.
 *
 * Usage:
 *   tts_sim trace      [--days=N] [--weekend=F] [--csv]
 *   tts_sim cooling    [--platform=P] [--melt=C] [--csv]
 *   tts_sim throughput [--platform=P] [--capacity=F] [--csv]
 *   tts_sim optimize   [--platform=P] [--min=C] [--max=C]
 *                      [--step=C]
 *   tts_sim outage     [--platform=P] [--util=U]
 *   tts_sim resilience [--platform=P] [--util=U]
 *                      [--scenario=NAME | --faults=FILE]
 *                      [--checkpoint=FILE] [--checkpoint-every=SEC]
 *                      [--resume=FILE] [--stop-after=SEC]
 *   tts_sim report     [--platform=P] [--out=DIR]
 *   tts_sim validate
 *
 * All commands also accept [--metrics=FILE] [--trace=FILE]
 * [--trace-format=jsonl|chrome].
 *
 * The resilience command injects a fault scenario (server crashes,
 * fan failures, partial cooling trips, sensor drift/dropout, trace
 * gaps) and compares wax vs. no-wax ride-through and throughput
 * retention.  --scenario picks a canonical one (plant_trip_total,
 * partial_trip_sensor_drift, crash_fan_storm) or 'all' to sweep the
 * whole canonical grid; --faults loads a schedule file in the
 * tts-fault-schedule v1 format.
 *
 * Long runs can be checkpointed and resumed: --checkpoint=FILE
 * writes a CRC-protected snapshot of the full simulation state every
 * --checkpoint-every simulated seconds (default 900), --resume=FILE
 * restores from a snapshot and continues (the result is
 * bit-identical to an uninterrupted run), and --stop-after pauses
 * after that much simulated time, writing a final snapshot - useful
 * for rehearsing a kill/resume cycle.  With --scenario=all the
 * checkpoint file is a per-scenario completion journal instead:
 * finished scenarios are skipped on resume.
 *
 * Any command taking a trace accepts --trace-csv=FILE to load a
 * measured CSV trace (t_hours,Orkut,Search,FBmr) instead of the
 * synthetic generator.
 *
 * Observability: --metrics=FILE dumps the obs metrics registry as
 * kv-json after the command finishes; --trace=FILE writes the
 * structured event trace (melt transitions, DVFS throttling, fault
 * injections, guard trips, checkpoint I/O, job dispatch) in the
 * format picked by --trace-format=jsonl|chrome (default jsonl; the
 * chrome form loads in chrome://tracing or Perfetto).  Either flag
 * enables collection; both add nothing measurable when absent.
 *
 * Platforms: 0 = 1U RD330 (default), 1 = 2U X4470, 2 = Open Compute
 * blade (future 1.5 l layout).  --csv switches the series output
 * from an aligned table to comma-separated rows for plotting.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "exec/sweep_resume.hh"
#include "obs/obs.hh"

#include "core/thermal_time_shifting.hh"
#include "core/outage_study.hh"
#include "core/report.hh"
#include "core/resilience_study.hh"
#include "fault/fault_schedule.hh"
#include "workload/trace_io.hh"
#include "util/error.hh"
#include "util/kv_json.hh"
#include "util/table.hh"
#include "util/units.hh"

namespace {

using namespace tts;

/** Parsed command-line options. */
struct Options
{
    std::string command;
    int platform = 0;
    double days = 2.0;
    double weekend = 1.0;
    double melt = 0.0;
    double capacity = 0.0;
    double util = 0.75;
    double sweep_min = 44.0;
    double sweep_max = 60.0;
    double sweep_step = 1.0;
    bool csv = false;
    std::string trace_file;
    std::string out_dir = ".";
    std::string scenario = "plant_trip_total";
    std::string faults_file;
    std::string checkpoint_file;
    std::string resume_file;
    double checkpoint_every = 900.0;
    double stop_after = -1.0;
    std::string metrics_file;
    std::string obs_trace_file;
    obs::TraceFormat trace_format = obs::TraceFormat::Jsonl;
};

double
numericValue(const std::string &arg)
{
    auto pos = arg.find('=');
    if (pos == std::string::npos) {
        std::fprintf(stderr, "missing value in '%s'\n",
                     arg.c_str());
        std::exit(2);
    }
    return std::atof(arg.c_str() + pos + 1);
}

Options
parse(int argc, char **argv)
{
    Options o;
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: tts_sim "
                     "<trace|cooling|throughput|optimize|outage|"
                     "resilience|report|validate> [options]\n");
        std::exit(2);
    }
    o.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--platform=", 0) == 0)
            o.platform = static_cast<int>(numericValue(a));
        else if (a.rfind("--days=", 0) == 0)
            o.days = numericValue(a);
        else if (a.rfind("--weekend=", 0) == 0)
            o.weekend = numericValue(a);
        else if (a.rfind("--melt=", 0) == 0)
            o.melt = numericValue(a);
        else if (a.rfind("--capacity=", 0) == 0)
            o.capacity = numericValue(a);
        else if (a.rfind("--util=", 0) == 0)
            o.util = numericValue(a);
        else if (a.rfind("--min=", 0) == 0)
            o.sweep_min = numericValue(a);
        else if (a.rfind("--max=", 0) == 0)
            o.sweep_max = numericValue(a);
        else if (a.rfind("--step=", 0) == 0)
            o.sweep_step = numericValue(a);
        else if (a.rfind("--trace-csv=", 0) == 0)
            o.trace_file = a.substr(12);
        else if (a.rfind("--trace-format=", 0) == 0) {
            std::string fmt = a.substr(15);
            if (fmt == "jsonl")
                o.trace_format = obs::TraceFormat::Jsonl;
            else if (fmt == "chrome")
                o.trace_format = obs::TraceFormat::Chrome;
            else {
                std::fprintf(stderr,
                             "bad --trace-format '%s' (want "
                             "jsonl or chrome)\n",
                             fmt.c_str());
                std::exit(2);
            }
        }
        else if (a.rfind("--trace=", 0) == 0)
            o.obs_trace_file = a.substr(8);
        else if (a.rfind("--metrics=", 0) == 0)
            o.metrics_file = a.substr(10);
        else if (a.rfind("--out=", 0) == 0)
            o.out_dir = a.substr(6);
        else if (a.rfind("--scenario=", 0) == 0)
            o.scenario = a.substr(11);
        else if (a.rfind("--faults=", 0) == 0)
            o.faults_file = a.substr(9);
        else if (a.rfind("--checkpoint=", 0) == 0)
            o.checkpoint_file = a.substr(13);
        else if (a.rfind("--checkpoint-every=", 0) == 0)
            o.checkpoint_every = numericValue(a);
        else if (a.rfind("--resume=", 0) == 0)
            o.resume_file = a.substr(9);
        else if (a.rfind("--stop-after=", 0) == 0)
            o.stop_after = numericValue(a);
        else if (a == "--csv")
            o.csv = true;
        else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         a.c_str());
            std::exit(2);
        }
    }
    return o;
}

server::ServerSpec
platformOf(const Options &o)
{
    switch (o.platform) {
      case 1: return server::x4470Spec();
      case 2: return server::openComputeSpec();
      default: return server::rd330Spec();
    }
}

workload::WorkloadTrace
traceOf(const Options &o)
{
    if (!o.trace_file.empty())
        return workload::loadTrace(o.trace_file);
    workload::GoogleTraceParams p;
    p.durationS = units::days(o.days);
    if (o.weekend < 1.0) {
        p.weekendFactor = o.weekend;
        p.startDayOfWeek = 0;
    }
    return workload::makeGoogleTrace(p);
}

void
emitSeries(const Options &o,
           const std::vector<const TimeSeries *> &series)
{
    std::vector<std::string> headers{"t_h"};
    for (const auto *s : series)
        headers.push_back(s->name());
    if (o.csv) {
        CsvWriter csv(std::cout, headers);
        for (double t = series[0]->startTime();
             t <= series[0]->endTime(); t += 1800.0) {
            std::vector<std::string> row{
                formatFixed(units::toHours(t), 2)};
            for (const auto *s : series)
                row.push_back(formatFixed(s->at(t), 4));
            csv.writeRow(row);
        }
        return;
    }
    AsciiTable table(headers);
    for (double t = series[0]->startTime();
         t <= series[0]->endTime(); t += units::hours(2.0)) {
        std::vector<std::string> row{
            formatFixed(units::toHours(t), 0)};
        for (const auto *s : series)
            row.push_back(formatFixed(s->at(t), 3));
        table.addRow(row);
    }
    table.print(std::cout);
}

int
cmdTrace(const Options &o)
{
    auto trace = traceOf(o);
    std::vector<const TimeSeries *> series;
    for (auto c : workload::allJobClasses)
        series.push_back(&trace.series(c));
    series.push_back(&trace.total());
    emitSeries(o, series);
    return 0;
}

int
cmdCooling(const Options &o)
{
    auto spec = platformOf(o);
    core::CoolingStudyOptions opts;
    opts.meltTempC = o.melt;
    auto r = core::runCoolingStudy(spec, traceOf(o), opts);
    r.baseline.coolingLoadW.setName("cooling_w");
    r.withWax.coolingLoadW.setName("cooling_pcm_w");
    emitSeries(o, {&r.baseline.coolingLoadW,
                   &r.withWax.coolingLoadW,
                   &r.withWax.waxMeltFraction});
    std::printf("# platform=%s melt=%.1fC peak=%.1fkW "
                "peak_pcm=%.1fkW reduction=%.2f%%\n",
                spec.name.c_str(), r.meltTempC,
                r.peakBaselineW / 1e3, r.peakWithWaxW / 1e3,
                100.0 * r.peakReduction());
    return 0;
}

int
cmdThroughput(const Options &o)
{
    auto spec = platformOf(o);
    core::ThroughputStudyOptions opts;
    opts.coolingCapacityFraction = o.capacity > 0.0
        ? o.capacity
        : core::calibratedCapacityFraction(spec);
    if (o.melt > 0.0)
        opts.meltTempC = o.melt;
    auto r = core::runThroughputStudy(spec, traceOf(o), opts);
    emitSeries(o, {&r.ideal, &r.noWax, &r.withWax, &r.waxMelt});
    std::printf("# platform=%s capacity=%.1f%% melt=%.1fC "
                "gain=%.1f%% delay=%.1fh\n",
                spec.name.c_str(),
                100.0 * opts.coolingCapacityFraction, r.meltTempC,
                100.0 * r.throughputGain(), r.delayHours);
    return 0;
}

int
cmdOptimize(const Options &o)
{
    auto spec = platformOf(o);
    core::MeltOptimizerOptions opts;
    opts.minC = o.sweep_min;
    opts.maxC = o.sweep_max;
    opts.stepC = o.sweep_step;
    auto r = core::optimizeMeltingTemp(
        spec, traceOf(o), pcm::commercialParaffin(), opts);
    AsciiTable t({"melt_c", "reduction_pct", "onset_util"});
    for (const auto &pt : r.sweep) {
        t.addRow({formatFixed(pt.meltTempC, 1),
                  formatFixed(100.0 * pt.peakReduction, 2),
                  pt.meltOnsetUtilization < 0.0
                      ? std::string("-")
                      : formatFixed(pt.meltOnsetUtilization, 2)});
    }
    t.print(std::cout);
    std::printf("# best melt=%.1fC reduction=%.2f%%\n",
                r.meltTempC, 100.0 * r.peakReduction);
    return 0;
}

int
cmdOutage(const Options &o)
{
    auto spec = platformOf(o);
    core::OutageStudyOptions opts;
    opts.utilization = o.util;
    if (o.melt > 0.0)
        opts.meltTempC = o.melt;
    auto r = core::runOutageStudy(spec, opts);
    std::printf("platform=%s util=%.2f\n", spec.name.c_str(),
                o.util);
    std::printf("ride-through without wax: %.1f min%s\n",
                r.noWax.rideThroughS / 60.0,
                r.noWax.hitLimit ? "" : " (never hit limit)");
    std::printf("ride-through with wax:    %.1f min%s\n",
                r.withWax.rideThroughS / 60.0,
                r.withWax.hitLimit ? "" : " (never hit limit)");
    std::printf("extra time bought by PCM: %.1f min\n",
                r.extraRideThroughS() / 60.0);
    return 0;
}

/** Flat metric rows for the --scenario=all journaled sweep. */
std::map<std::string, double>
resilienceRow(const core::ResilienceResult &r)
{
    std::map<std::string, double> row;
    row["ride_no_wax_min"] = r.noWax.rideThroughS / 60.0;
    row["ride_with_wax_min"] = r.withWax.rideThroughS / 60.0;
    row["extra_ride_min"] = r.extraRideThroughS() / 60.0;
    row["retention_no_wax"] = r.noWax.throughputRetention;
    row["retention_with_wax"] = r.withWax.throughputRetention;
    row["guard_trips"] = static_cast<double>(
        r.noWax.guard.sentinelTrips + r.noWax.guard.auditTrips +
        r.withWax.guard.sentinelTrips + r.withWax.guard.auditTrips);
    return row;
}

int
cmdResilienceAll(const server::ServerSpec &spec,
                 const core::ResilienceStudyOptions &opts,
                 const std::string &journal)
{
    auto scenarios =
        core::canonicalScenarios(opts.cluster.serverCount);
    exec::SweepCheckpointOptions sweep;
    sweep.path = journal;
    auto result = exec::checkpointedMap(
        scenarios.size(),
        [&](std::size_t i) {
            return resilienceRow(core::runResilienceStudy(
                spec, scenarios[i], opts));
        },
        sweep);
    AsciiTable t({"scenario", "ride_no_wax", "ride_wax",
                  "extra_min", "retention_gain", "guard_trips"});
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const auto &row = result.rows[i];
        t.addRow({scenarios[i].name,
                  formatFixed(row.at("ride_no_wax_min"), 1),
                  formatFixed(row.at("ride_with_wax_min"), 1),
                  formatFixed(row.at("extra_ride_min"), 1),
                  formatFixed(row.at("retention_with_wax") -
                                  row.at("retention_no_wax"),
                              4),
                  formatFixed(row.at("guard_trips"), 0)});
    }
    t.print(std::cout);
    return 0;
}

int
cmdResilience(const Options &o)
{
    auto spec = platformOf(o);
    core::ResilienceStudyOptions opts;

    if (o.scenario == "all" && o.faults_file.empty()) {
        std::string journal = !o.resume_file.empty()
            ? o.resume_file
            : o.checkpoint_file;
        return cmdResilienceAll(spec, opts, journal);
    }

    core::ResilienceScenario scenario;
    if (!o.faults_file.empty()) {
        std::ifstream in(o.faults_file);
        require(in.good(), "cannot open fault schedule '" +
                               o.faults_file + "'");
        scenario.name = "file";
        scenario.faults = fault::FaultSchedule::read(in);
        scenario.utilization = o.util;
    } else {
        bool found = false;
        for (auto &s : core::canonicalScenarios(
                 opts.cluster.serverCount)) {
            if (s.name == o.scenario) {
                scenario = std::move(s);
                found = true;
                break;
            }
        }
        require(found, "unknown scenario '" + o.scenario +
                           "' (try plant_trip_total, "
                           "partial_trip_sensor_drift, "
                           "crash_fan_storm)");
    }

    core::ResilienceCheckpointPolicy policy;
    policy.path = !o.resume_file.empty() ? o.resume_file
                                         : o.checkpoint_file;
    policy.checkpointEveryS = o.checkpoint_every;
    policy.stopAfterS = o.stop_after;

    core::ResilienceRunner runner(spec, scenario, opts);
    if (!runner.run(policy)) {
        std::printf("paused after %.0f simulated seconds; state "
                    "saved to %s (rerun with --resume=%s to "
                    "continue)\n",
                    o.stop_after, policy.path.c_str(),
                    policy.path.c_str());
        return 0;
    }
    auto r = runner.take();
    std::printf("platform=%s scenario=%s events=%zu util=%.2f "
                "horizon=%.0fmin\n",
                spec.name.c_str(), scenario.name.c_str(),
                scenario.faults.size(), scenario.utilization,
                scenario.horizonS / 60.0);
    auto arm_line = [](const char *label,
                       const core::ResilienceArm &a) {
        std::printf("%s ride-through %.1f min%s, retention "
                    "%.1f%%, throttled %.1f min\n",
                    label, a.rideThroughS / 60.0,
                    a.hitLimit ? "" : " (survived horizon)",
                    100.0 * a.throughputRetention,
                    a.throttledS / 60.0);
    };
    arm_line("without wax:", r.noWax);
    arm_line("with wax:   ", r.withWax);
    std::printf("extra ride-through from PCM: %.1f min\n",
                r.extraRideThroughS() / 60.0);
    std::printf("cluster: offered=%llu completed=%llu "
                "dropped=%llu crash-killed=%llu residual=%llu\n",
                static_cast<unsigned long long>(
                    r.cluster.offeredJobs),
                static_cast<unsigned long long>(
                    r.cluster.completedJobs),
                static_cast<unsigned long long>(
                    r.cluster.droppedJobs),
                static_cast<unsigned long long>(
                    r.cluster.crashKilledJobs),
                static_cast<unsigned long long>(
                    r.cluster.residualJobs));
    tts::guard::GuardCounters gc = r.noWax.guard;
    gc.merge(r.withWax.guard);
    std::printf("guard: audits=%llu sentinel-trips=%llu "
                "audit-trips=%llu retries=%llu fallbacks=%llu\n",
                static_cast<unsigned long long>(gc.audits),
                static_cast<unsigned long long>(gc.sentinelTrips),
                static_cast<unsigned long long>(gc.auditTrips),
                static_cast<unsigned long long>(gc.retries),
                static_cast<unsigned long long>(gc.fallbacks));
    return 0;
}

int
cmdReport(const Options &o)
{
    auto spec = platformOf(o);
    core::PlatformStudyOptions opts;
    opts.optimizeMelt = false;
    auto study =
        core::runPlatformStudy(spec, traceOf(o), opts);
    core::writePlatformStudyReport(o.out_dir, study);
    std::printf("wrote fig11_cooling_load.csv, "
                "fig12_throughput.csv, wax_state.csv, summary.md "
                "to %s\n",
                o.out_dir.c_str());
    return 0;
}

int
cmdValidate(const Options &)
{
    auto r = core::runValidation();
    std::printf("wall power idle/load:    %.1f / %.1f W "
                "(paper: 90 / 185)\n",
                r.idleWallW, r.loadWallW);
    std::printf("package temp idle/load:  %.1f / %.1f C "
                "(paper: 42 / 76)\n",
                r.idlePackageC, r.loadPackageC);
    std::printf("steady-state mean diff:  %.2f C (paper: 0.22)\n",
                r.steadyStateMeanDiffC);
    std::printf("trace correlation:       %.4f\n",
                r.traceCorrelation);
    return 0;
}

} // namespace

namespace {

int
dispatch(const Options &o)
{
    if (o.command == "trace")
        return cmdTrace(o);
    if (o.command == "cooling")
        return cmdCooling(o);
    if (o.command == "throughput")
        return cmdThroughput(o);
    if (o.command == "optimize")
        return cmdOptimize(o);
    if (o.command == "outage")
        return cmdOutage(o);
    if (o.command == "resilience")
        return cmdResilience(o);
    if (o.command == "report")
        return cmdReport(o);
    if (o.command == "validate")
        return cmdValidate(o);
    std::fprintf(stderr, "unknown command '%s'\n",
                 o.command.c_str());
    return 2;
}

/** Dump metrics/trace/profile sinks after the command has run. */
void
writeObsOutputs(const Options &o)
{
    if (!o.metrics_file.empty())
        writeKvJsonFile(o.metrics_file,
                        obs::registry().snapshot());
    if (!o.obs_trace_file.empty())
        obs::writeTraceFile(o.obs_trace_file, o.trace_format);
    std::cerr << "profile (wall time inside instrumented "
                 "phases):\n";
    obs::writeProfileTable(std::cerr);
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parse(argc, argv);
    bool observe =
        !o.metrics_file.empty() || !o.obs_trace_file.empty();
    if (observe)
        obs::setEnabled(true);
    try {
        int rc = dispatch(o);
        if (observe)
            writeObsOutputs(o);
        return rc;
    } catch (const tts::Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
