/**
 * @file
 * tts_sim - command-line front end for the thermal-time-shifting
 * simulator.
 *
 * Usage:
 *   tts_sim trace      [--days=N] [--weekend=F] [--csv]
 *   tts_sim cooling    [--platform=P] [--melt=C] [--csv]
 *   tts_sim throughput [--platform=P] [--capacity=F] [--csv]
 *   tts_sim optimize   [--platform=P] [--servers=N] [--mixed]
 *                      [--budget=N] [--restarts=N]
 *                      [--objective=peak|tco] [--seed=S]
 *                      [--min=C] [--max=C] [--step=C] [--sweep]
 *   tts_sim outage     [--platform=P] [--util=U]
 *   tts_sim resilience [--platform=P] [--util=U]
 *                      [--scenario=NAME | --faults=FILE]
 *                      [--checkpoint=FILE] [--checkpoint-every=SEC]
 *                      [--resume=FILE] [--stop-after=SEC]
 *   tts_sim fleet      [--platform=P] [--servers=N] [--mixed]
 *                      [--days=N] [--perturb-rate=R] [--shards=K]
 *                      [--seed=S] [--csv] [checkpoint flags as
 *                      above] [--backend=B] [--weather=FILE]
 *   tts_sim plant      [--platform=P] [--servers=N] [--days=N]
 *                      [--backend=crac|hot_water|economizer|mpc|all]
 *                      [--weather=FILE] [--faults=FILE]
 *                      [checkpoint flags as above]
 *   tts_sim report     [--platform=P] [--out=DIR]
 *   tts_sim validate
 *
 * All commands also accept [--metrics=FILE] [--trace=FILE]
 * [--trace-format=jsonl|chrome].
 *
 * The resilience command injects a fault scenario (server crashes,
 * fan failures, partial cooling trips, sensor drift/dropout, trace
 * gaps) and compares wax vs. no-wax ride-through and throughput
 * retention.  --scenario picks a canonical one (plant_trip_total,
 * partial_trip_sensor_drift, crash_fan_storm) or 'all' to sweep the
 * whole canonical grid; --faults loads a schedule file in the
 * tts-fault-schedule v1 format.
 *
 * Long runs can be checkpointed and resumed: --checkpoint=FILE
 * writes a CRC-protected snapshot of the full simulation state every
 * --checkpoint-every simulated seconds (default 900), --resume=FILE
 * restores from a snapshot and continues (the result is
 * bit-identical to an uninterrupted run), and --stop-after pauses
 * after that much simulated time, writing a final snapshot - useful
 * for rehearsing a kill/resume cycle.  With --scenario=all the
 * checkpoint file is a per-scenario completion journal instead:
 * finished scenarios are skipped on resume.
 *
 * Any command taking a trace accepts --trace-csv=FILE to load a
 * measured CSV trace (t_hours,Orkut,Search,FBmr) instead of the
 * synthetic generator.
 *
 * The fleet command scales the simulation from one server to a 10 MW
 * warehouse (~40k servers): servers sharing a platform archetype and
 * an unperturbed input stream advance as one deduplicated baseline
 * row, while perturbed servers (--perturb-rate events per server-day:
 * utilization offsets, inlet drift, fan failures) materialize private
 * rows sharded across the thread pool.  Results are bit-identical at
 * any thread count and shard width, and long runs checkpoint/resume
 * through the same flags as resilience.
 *
 * Observability: --metrics=FILE dumps the obs metrics registry as
 * kv-json after the command finishes; --trace=FILE writes the
 * structured event trace (melt transitions, DVFS throttling, fault
 * injections, guard trips, checkpoint I/O, job dispatch) in the
 * format picked by --trace-format=jsonl|chrome (default jsonl; the
 * chrome form loads in chrome://tracing or Perfetto).  Either flag
 * enables collection; both add nothing measurable when absent.
 *
 * The optimize command runs the tts::opt wax-placement search: a
 * seeded multi-start annealer over per-archetype wax mass, melt
 * temperature, and box count (plus the job-placement policy under
 * --mixed), with the fleet simulator as the cost oracle and an LRU
 * memo over candidate fingerprints.  --objective picks peak cooling
 * load (default) or annualized TCO; --min/--max/--step bound the
 * melt grid; the search is bit-identical at any thread count.
 * --sweep runs the legacy single-server melting-temperature sweep
 * instead.
 *
 * The plant command runs the cluster's heat load through one of the
 * pluggable cooling-plant backends (tts::plant): the paper's CRAC
 * (the default, priced exactly like the legacy cooling model), a
 * hot-water loop that captures heat for reuse, a free-air economizer
 * under a measured weather trace (--weather, t_hours,ambient_c CSV),
 * or a receding-horizon MPC controller that co-schedules fan speed,
 * DVFS caps, and melt state against the forecast.  --backend=all
 * compares every backend over the same scenario.  The same --backend
 * and --weather flags select the plant for the fleet command, which
 * then appends a plant-cost line to its summary.
 *
 * Platforms: 0 = 1U RD330 (default), 1 = 2U X4470, 2 = Open Compute
 * blade (future 1.5 l layout).  --csv switches the series output
 * from an aligned table to comma-separated rows for plotting.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "exec/sweep_resume.hh"
#include "obs/obs.hh"

#include "core/run_config.hh"
#include "core/thermal_time_shifting.hh"
#include "core/outage_study.hh"
#include "core/report.hh"
#include "core/resilience_study.hh"
#include "fault/fault_schedule.hh"
#include "fleet/fleet.hh"
#include "opt/engine.hh"
#include "opt/space.hh"
#include "plant/study.hh"
#include "workload/trace_io.hh"
#include "util/cli.hh"
#include "util/error.hh"
#include "util/kv_json.hh"
#include "util/table.hh"
#include "util/units.hh"

namespace {

using namespace tts;

/** Parsed command-line options. */
struct Options
{
    std::string command;
    int platform = 0;
    double days = 2.0;
    double weekend = 1.0;
    double melt = 0.0;
    double capacity = 0.0;
    double util = 0.75;
    double sweep_min = 44.0;
    double sweep_max = 60.0;
    double sweep_step = 1.0;
    bool csv = false;
    std::string trace_file;
    std::string out_dir = ".";
    std::string scenario = "plant_trip_total";
    std::string faults_file;
    std::string checkpoint_file;
    std::string resume_file;
    double checkpoint_every = 900.0;
    double stop_after = -1.0;
    std::string metrics_file;
    std::string obs_trace_file;
    std::string trace_format = "jsonl";
    std::size_t servers = 40320;
    bool mixed = false;
    double perturb_rate = 0.01;
    std::size_t shards = 0;
    std::size_t seed = 0x715f1ee7;
    std::size_t budget = 128;
    std::size_t restarts = 4;
    std::string objective = "peak";
    bool sweep = false;
    std::string backend = "crac";
    std::string weather_file;
};

/** Register every flag on the parser; shared with --help output. */
void
registerFlags(cli::Parser &p, Options *o)
{
    p.addPositional("command",
                    &o->command,
                    "trace|cooling|throughput|optimize|outage|"
                    "resilience|fleet|plant|report|validate");
    p.addInt("platform", &o->platform,
             "0=1U RD330, 1=2U X4470, 2=Open Compute");
    p.addDouble("days", &o->days, "trace length (days)");
    p.addDouble("weekend", &o->weekend,
                "weekend load factor (enables weekly shape)");
    p.addDouble("melt", &o->melt,
                "melting temperature (C); 0 = platform default");
    p.addDouble("capacity", &o->capacity,
                "cooling capacity fraction; 0 = calibrated");
    p.addDouble("util", &o->util, "held utilization");
    p.addDouble("min", &o->sweep_min, "melt sweep lower bound (C)");
    p.addDouble("max", &o->sweep_max, "melt sweep upper bound (C)");
    p.addDouble("step", &o->sweep_step, "melt sweep step (C)");
    p.addFlag("csv", &o->csv, "emit csv instead of a table");
    p.addString("trace-csv", &o->trace_file,
                "load a measured CSV trace instead of synthesizing");
    p.addString("out", &o->out_dir, "report output directory");
    p.addString("scenario", &o->scenario,
                "fault scenario name, or 'all' for the grid");
    p.addString("faults", &o->faults_file,
                "fault schedule file (tts-fault-schedule v1)");
    p.addString("checkpoint", &o->checkpoint_file,
                "checkpoint snapshot file for long runs");
    p.addString("resume", &o->resume_file,
                "resume from a checkpoint snapshot");
    p.addDouble("checkpoint-every", &o->checkpoint_every,
                "simulated seconds between checkpoints");
    p.addDouble("stop-after", &o->stop_after,
                "pause after this much simulated time (s); -1 = run "
                "to completion");
    p.addString("metrics", &o->metrics_file,
                "dump obs metrics registry (kv-json) here");
    p.addString("trace", &o->obs_trace_file,
                "write the structured obs event trace here");
    p.addChoice("trace-format", &o->trace_format,
                {"jsonl", "chrome"}, "obs trace format");
    p.addSize("servers", &o->servers, "fleet population");
    p.addFlag("mixed", &o->mixed,
              "split the fleet across all three platforms");
    p.addDouble("perturb-rate", &o->perturb_rate,
                "perturbation events per server-day");
    p.addSize("shards", &o->shards,
              "fleet shard count; 0 = default (8)");
    p.addSize("seed", &o->seed, "fleet perturbation / search seed");
    p.addSize("budget", &o->budget,
              "optimize: proposal evaluations across restarts");
    p.addSize("restarts", &o->restarts,
              "optimize: independent annealing restarts");
    p.addChoice("objective", &o->objective, {"peak", "tco"},
                "optimize: minimize peak cooling W or TCO $/yr");
    p.addFlag("sweep", &o->sweep,
              "optimize: legacy single-server melt sweep instead "
              "of the fleet search");
    p.addChoice("backend", &o->backend,
                {"crac", "hot_water", "economizer", "mpc", "all"},
                "cooling-plant backend ('all': plant command "
                "comparison)");
    p.addString("weather", &o->weather_file,
                "weather trace CSV (t_hours,ambient_c) for the "
                "economizer/MPC backends");
}

Options
parse(int argc, char **argv)
{
    Options o;
    cli::Parser p("tts_sim",
                  "Thermal-time-shifting simulator front end.");
    registerFlags(p, &o);
    switch (p.parse(argc - 1, argv + 1)) {
      case cli::Status::Help:
        std::fputs(p.helpText().c_str(), stdout);
        std::exit(0);
      case cli::Status::Error:
        std::fprintf(stderr, "%s\n", p.error().c_str());
        std::exit(2);
      case cli::Status::Ok:
        break;
    }
    if (o.command.empty()) {
        std::fprintf(stderr,
                     "usage: tts_sim "
                     "<trace|cooling|throughput|optimize|outage|"
                     "resilience|fleet|plant|report|validate> "
                     "[options]\n");
        std::exit(2);
    }
    return o;
}

/** The shared study knobs this invocation asks for. */
core::RunConfig
runConfigOf(const Options &o)
{
    core::RunConfig run;
    run.meltTempC = o.melt;
    run.utilization = o.util;
    run.obs.metricsPath = o.metrics_file;
    run.obs.tracePath = o.obs_trace_file;
    run.obs.traceFormat = o.trace_format;
    run.checkpoint.path = !o.resume_file.empty() ? o.resume_file
                                                 : o.checkpoint_file;
    run.checkpoint.checkpointEveryS = o.checkpoint_every;
    run.checkpoint.stopAfterS = o.stop_after;
    // "all" is the plant command's comparison mode, not a backend
    // RunConfig can carry; cmdPlant branches on it before this.
    if (o.backend != "all")
        run.plant.kind = plant::backendKindFromString(o.backend);
    run.plant.weatherPath = o.weather_file;
    return run;
}

server::ServerSpec
platformOf(const Options &o)
{
    switch (o.platform) {
      case 1: return server::x4470Spec();
      case 2: return server::openComputeSpec();
      default: return server::rd330Spec();
    }
}

workload::WorkloadTrace
traceOf(const Options &o)
{
    if (!o.trace_file.empty())
        return workload::loadTrace(o.trace_file);
    workload::GoogleTraceParams p;
    p.durationS = units::days(o.days);
    if (o.weekend < 1.0) {
        p.weekendFactor = o.weekend;
        p.startDayOfWeek = 0;
    }
    return workload::makeGoogleTrace(p);
}

void
emitSeries(const Options &o,
           const std::vector<const TimeSeries *> &series)
{
    std::vector<std::string> headers{"t_h"};
    for (const auto *s : series)
        headers.push_back(s->name());
    if (o.csv) {
        CsvWriter csv(std::cout, headers);
        for (double t = series[0]->startTime();
             t <= series[0]->endTime(); t += 1800.0) {
            std::vector<std::string> row{
                formatFixed(units::toHours(t), 2)};
            for (const auto *s : series)
                row.push_back(formatFixed(s->at(t), 4));
            csv.writeRow(row);
        }
        return;
    }
    AsciiTable table(headers);
    for (double t = series[0]->startTime();
         t <= series[0]->endTime(); t += units::hours(2.0)) {
        std::vector<std::string> row{
            formatFixed(units::toHours(t), 0)};
        for (const auto *s : series)
            row.push_back(formatFixed(s->at(t), 3));
        table.addRow(row);
    }
    table.print(std::cout);
}

int
cmdTrace(const Options &o)
{
    auto trace = traceOf(o);
    std::vector<const TimeSeries *> series;
    for (auto c : workload::allJobClasses)
        series.push_back(&trace.series(c));
    series.push_back(&trace.total());
    emitSeries(o, series);
    return 0;
}

int
cmdCooling(const Options &o)
{
    auto spec = platformOf(o);
    core::CoolingConfig opts;
    opts.run = runConfigOf(o);
    auto r = core::runCoolingStudy(spec, traceOf(o), opts);
    r.baseline.coolingLoadW.setName("cooling_w");
    r.withWax.coolingLoadW.setName("cooling_pcm_w");
    emitSeries(o, {&r.baseline.coolingLoadW,
                   &r.withWax.coolingLoadW,
                   &r.withWax.waxMeltFraction});
    std::printf("# platform=%s melt=%.1fC peak=%.1fkW "
                "peak_pcm=%.1fkW reduction=%.2f%%\n",
                spec.name.c_str(), r.meltTempC,
                r.peakBaselineW / 1e3, r.peakWithWaxW / 1e3,
                100.0 * r.peakReduction());
    return 0;
}

int
cmdThroughput(const Options &o)
{
    auto spec = platformOf(o);
    core::ThroughputConfig opts;
    opts.run = runConfigOf(o);
    opts.coolingCapacityFraction = o.capacity > 0.0
        ? o.capacity
        : core::calibratedCapacityFraction(spec);
    auto r = core::runThroughputStudy(spec, traceOf(o), opts);
    emitSeries(o, {&r.ideal, &r.noWax, &r.withWax, &r.waxMelt});
    std::printf("# platform=%s capacity=%.1f%% melt=%.1fC "
                "gain=%.1f%% delay=%.1fh\n",
                spec.name.c_str(),
                100.0 * opts.coolingCapacityFraction, r.meltTempC,
                100.0 * r.throughputGain(), r.delayHours);
    return 0;
}

int
cmdOptimizeSweep(const Options &o)
{
    auto spec = platformOf(o);
    core::MeltOptimizerOptions opts;
    opts.minC = o.sweep_min;
    opts.maxC = o.sweep_max;
    opts.stepC = o.sweep_step;
    auto r = core::optimizeMeltingTemp(
        spec, traceOf(o), pcm::commercialParaffin(), opts);
    AsciiTable t({"melt_c", "reduction_pct", "onset_util"});
    for (const auto &pt : r.sweep) {
        t.addRow({formatFixed(pt.meltTempC, 1),
                  formatFixed(100.0 * pt.peakReduction, 2),
                  pt.meltOnsetUtilization < 0.0
                      ? std::string("-")
                      : formatFixed(pt.meltOnsetUtilization, 2)});
    }
    t.print(std::cout);
    std::printf("# best melt=%.1fC reduction=%.2f%%\n",
                r.meltTempC, 100.0 * r.peakReduction);
    return 0;
}

int
cmdOptimize(const Options &o)
{
    if (o.sweep)
        return cmdOptimizeSweep(o);

    std::vector<server::ServerSpec> specs;
    if (o.mixed)
        specs = core::paperPlatforms();
    else
        specs = {platformOf(o)};

    opt::SpaceOptions sopts;
    sopts.meltMinC = o.sweep_min;
    sopts.meltMaxC = o.sweep_max;
    sopts.meltStepC = o.sweep_step;
    sopts.lockPolicy = !o.mixed; // One archetype: placement is moot.
    opt::SearchSpace space = opt::makeSearchSpace(specs, sopts);

    opt::OptOptions opts;
    opts.seed = o.seed;
    opts.budget = o.budget;
    opts.restarts = o.restarts;
    opts.objective = opt::objectiveFromName(o.objective);
    opts.fleet.run = runConfigOf(o);
    opts.fleet.run.serverCount = o.servers;
    opts.fleet.durationS = units::days(o.days);
    opts.fleet.mixedPlatforms = o.mixed;
    opts.fleet.shardCount = o.shards;
    opts.fleet.seed = o.seed;
    opts.fleet.perturb.eventsPerServerDay = o.perturb_rate;

    auto r = opt::optimizeWaxPlacement(space, traceOf(o), opts);

    AsciiTable t({"platform", "mass_kg", "liters", "boxes",
                  "melt_c"});
    for (const auto &c : r.choice) {
        t.addRow({c.platform, formatFixed(c.massKg, 2),
                  formatFixed(c.liters, 2),
                  formatFixed(static_cast<double>(c.boxes), 0),
                  formatFixed(c.meltTempC, 1)});
    }
    t.print(std::cout);
    std::printf("# objective=%s policy=%s space=%llu candidates\n",
                o.objective.c_str(), r.policy.c_str(),
                static_cast<unsigned long long>(space.size()));
    std::printf("# baseline(paper uniform)=%.4g best=%.4g "
                "improvement=%.2f%% beats_baseline=%d\n",
                r.baselineCost, r.bestCost,
                100.0 * (r.baselineCost - r.bestCost) /
                    r.baselineCost,
                r.beatsBaseline() ? 1 : 0);
    std::printf("# evals=%llu oracle_calls=%llu memo_hits=%llu "
                "restarts=%zu polish_rounds=%zu\n",
                static_cast<unsigned long long>(r.evaluations),
                static_cast<unsigned long long>(r.oracleCalls),
                static_cast<unsigned long long>(r.memoHits),
                opts.restarts, r.polishRounds);
    return 0;
}

int
cmdOutage(const Options &o)
{
    auto spec = platformOf(o);
    core::OutageConfig opts;
    opts.run = runConfigOf(o);
    auto r = core::runOutageStudy(spec, opts);
    std::printf("platform=%s util=%.2f\n", spec.name.c_str(),
                o.util);
    std::printf("ride-through without wax: %.1f min%s\n",
                r.noWax.rideThroughS / 60.0,
                r.noWax.hitLimit ? "" : " (never hit limit)");
    std::printf("ride-through with wax:    %.1f min%s\n",
                r.withWax.rideThroughS / 60.0,
                r.withWax.hitLimit ? "" : " (never hit limit)");
    std::printf("extra time bought by PCM: %.1f min\n",
                r.extraRideThroughS() / 60.0);
    return 0;
}

/** Flat metric rows for the --scenario=all journaled sweep. */
std::map<std::string, double>
resilienceRow(const core::ResilienceResult &r)
{
    std::map<std::string, double> row;
    row["ride_no_wax_min"] = r.noWax.rideThroughS / 60.0;
    row["ride_with_wax_min"] = r.withWax.rideThroughS / 60.0;
    row["extra_ride_min"] = r.extraRideThroughS() / 60.0;
    row["retention_no_wax"] = r.noWax.throughputRetention;
    row["retention_with_wax"] = r.withWax.throughputRetention;
    row["guard_trips"] = static_cast<double>(
        r.noWax.guard.sentinelTrips + r.noWax.guard.auditTrips +
        r.withWax.guard.sentinelTrips + r.withWax.guard.auditTrips);
    return row;
}

int
cmdResilienceAll(const server::ServerSpec &spec,
                 const core::ResilienceConfig &opts,
                 const std::string &journal)
{
    auto scenarios =
        core::canonicalScenarios(opts.cluster.serverCount);
    exec::SweepCheckpointOptions sweep;
    sweep.path = journal;
    auto result = exec::checkpointedMap(
        scenarios.size(),
        [&](std::size_t i) {
            return resilienceRow(core::runResilienceStudy(
                spec, scenarios[i], opts));
        },
        sweep);
    AsciiTable t({"scenario", "ride_no_wax", "ride_wax",
                  "extra_min", "retention_gain", "guard_trips"});
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const auto &row = result.rows[i];
        t.addRow({scenarios[i].name,
                  formatFixed(row.at("ride_no_wax_min"), 1),
                  formatFixed(row.at("ride_with_wax_min"), 1),
                  formatFixed(row.at("extra_ride_min"), 1),
                  formatFixed(row.at("retention_with_wax") -
                                  row.at("retention_no_wax"),
                              4),
                  formatFixed(row.at("guard_trips"), 0)});
    }
    t.print(std::cout);
    return 0;
}

int
cmdResilience(const Options &o)
{
    auto spec = platformOf(o);
    core::ResilienceConfig opts;
    opts.run = runConfigOf(o);

    if (o.scenario == "all" && o.faults_file.empty()) {
        return cmdResilienceAll(spec, opts,
                                opts.run.checkpoint.path);
    }

    core::ResilienceScenario scenario;
    if (!o.faults_file.empty()) {
        std::ifstream in(o.faults_file);
        require(in.good(), "cannot open fault schedule '" +
                               o.faults_file + "'");
        scenario.name = "file";
        scenario.faults = fault::FaultSchedule::read(in);
        scenario.utilization = o.util;
    } else {
        bool found = false;
        for (auto &s : core::canonicalScenarios(
                 opts.cluster.serverCount)) {
            if (s.name == o.scenario) {
                scenario = std::move(s);
                found = true;
                break;
            }
        }
        require(found, "unknown scenario '" + o.scenario +
                           "' (try plant_trip_total, "
                           "partial_trip_sensor_drift, "
                           "crash_fan_storm)");
    }

    const core::CheckpointPolicy &policy = opts.run.checkpoint;

    core::ResilienceRunner runner(spec, scenario, opts);
    if (!runner.run(policy)) {
        std::printf("paused after %.0f simulated seconds; state "
                    "saved to %s (rerun with --resume=%s to "
                    "continue)\n",
                    o.stop_after, policy.path.c_str(),
                    policy.path.c_str());
        return 0;
    }
    auto r = runner.take();
    std::printf("platform=%s scenario=%s events=%zu util=%.2f "
                "horizon=%.0fmin\n",
                spec.name.c_str(), scenario.name.c_str(),
                scenario.faults.size(), scenario.utilization,
                scenario.horizonS / 60.0);
    auto arm_line = [](const char *label,
                       const core::ResilienceArm &a) {
        std::printf("%s ride-through %.1f min%s, retention "
                    "%.1f%%, throttled %.1f min\n",
                    label, a.rideThroughS / 60.0,
                    a.hitLimit ? "" : " (survived horizon)",
                    100.0 * a.throughputRetention,
                    a.throttledS / 60.0);
    };
    arm_line("without wax:", r.noWax);
    arm_line("with wax:   ", r.withWax);
    std::printf("extra ride-through from PCM: %.1f min\n",
                r.extraRideThroughS() / 60.0);
    std::printf("cluster: offered=%llu completed=%llu "
                "dropped=%llu crash-killed=%llu residual=%llu\n",
                static_cast<unsigned long long>(
                    r.cluster.offeredJobs),
                static_cast<unsigned long long>(
                    r.cluster.completedJobs),
                static_cast<unsigned long long>(
                    r.cluster.droppedJobs),
                static_cast<unsigned long long>(
                    r.cluster.crashKilledJobs),
                static_cast<unsigned long long>(
                    r.cluster.residualJobs));
    tts::guard::GuardCounters gc = r.noWax.guard;
    gc.merge(r.withWax.guard);
    std::printf("guard: audits=%llu sentinel-trips=%llu "
                "audit-trips=%llu retries=%llu fallbacks=%llu\n",
                static_cast<unsigned long long>(gc.audits),
                static_cast<unsigned long long>(gc.sentinelTrips),
                static_cast<unsigned long long>(gc.auditTrips),
                static_cast<unsigned long long>(gc.retries),
                static_cast<unsigned long long>(gc.fallbacks));
    return 0;
}

int
cmdFleet(const Options &o)
{
    auto spec = platformOf(o);
    fleet::FleetConfig cfg;
    cfg.run = runConfigOf(o);
    cfg.run.serverCount = o.servers;
    cfg.durationS = units::days(o.days);
    cfg.mixedPlatforms = o.mixed;
    cfg.shardCount = o.shards;
    cfg.seed = o.seed;
    cfg.perturb.eventsPerServerDay = o.perturb_rate;

    fleet::FleetSim sim(spec, traceOf(o), cfg);
    if (!sim.run(cfg.run.checkpoint)) {
        std::printf("paused after %.0f simulated seconds; state "
                    "saved to %s (rerun with --resume=%s to "
                    "continue)\n",
                    o.stop_after,
                    cfg.run.checkpoint.path.c_str(),
                    cfg.run.checkpoint.path.c_str());
        return 0;
    }
    auto r = sim.take();

    TimeSeries cooling_mw = r.coolingLoadW.scaled(1e-6);
    cooling_mw.setName("cooling_mw");
    TimeSeries it_mw = r.itPowerW.scaled(1e-6);
    it_mw.setName("it_mw");
    r.meltFraction.setName("melt_frac");
    emitSeries(o, {&cooling_mw, &it_mw, &r.meltFraction});
    std::printf("# platform=%s servers=%zu mixed=%d days=%.2f "
                "events=%zu materialized=%zu dedupe=%.1fx\n",
                spec.name.c_str(), r.serverCount, o.mixed ? 1 : 0,
                o.days, r.eventsApplied, r.materializedRows,
                r.dedupeFactor());
    std::printf("# peak_cooling=%.3fMW peak_it=%.3fMW "
                "cooling_energy=%.1fMWh digest=%016llx\n",
                r.peakCoolingW / 1e6, r.peakItPowerW / 1e6,
                r.coolingEnergyJ / 3.6e9,
                static_cast<unsigned long long>(r.stateDigest));
    if (cfg.run.plant.kind != plant::BackendKind::Crac) {
        plant::PlantScenario ps;
        ps.loadW = r.coolingLoadW;
        plant::PlantConfig pcfg;
        pcfg.options = cfg.run.plant;
        pcfg.recordSeries = false;
        auto pr = plant::runPlant(ps, pcfg);
        std::printf("# plant backend=%s electric=%.1fMWh "
                    "net_cost=%.0f$/yr reuse=%.0f$/run "
                    "retention=%.4f\n",
                    pr.backend.c_str(),
                    pr.electricEnergyJ / 3.6e9,
                    pr.yearlyNetCostUsd, pr.reuseCreditUsd,
                    pr.throughputRetention);
    }
    return 0;
}

int
cmdPlant(const Options &o)
{
    auto spec = platformOf(o);
    core::RunConfig run = runConfigOf(o);

    plant::PlantScenario scenario;
    scenario.loadW = plant::clusterCoolingLoad(
        spec, run.waxConfig(), o.servers, traceOf(o));
    if (!o.faults_file.empty()) {
        std::ifstream in(o.faults_file);
        require(in.good(), "cannot open fault schedule '" +
                               o.faults_file + "'");
        scenario.faults = fault::FaultSchedule::read(in);
    }

    plant::PlantConfig cfg;
    cfg.options = run.plant;
    cfg.checkpoint.path = run.checkpoint.path;
    cfg.checkpoint.checkpointEveryS =
        run.checkpoint.checkpointEveryS;
    cfg.checkpoint.stopAfterS = run.checkpoint.stopAfterS;

    if (o.backend == "all") {
        auto cmp = plant::compareBackends(
            scenario, cfg,
            {plant::BackendKind::Crac, plant::BackendKind::HotWater,
             plant::BackendKind::Economizer,
             plant::BackendKind::Mpc});
        AsciiTable t({"backend", "electric_kwh", "peak_kw",
                      "reuse_usd", "net_usd_yr", "retention"});
        for (const auto &arm : cmp.arms) {
            t.addRow({arm.backend,
                      formatFixed(arm.electricEnergyJ / 3.6e6, 1),
                      formatFixed(arm.peakElectricW / 1e3, 2),
                      formatFixed(arm.reuseCreditUsd, 2),
                      formatFixed(arm.yearlyNetCostUsd, 0),
                      formatFixed(arm.throughputRetention, 4)});
        }
        t.print(std::cout);
        std::printf("# platform=%s servers=%zu days=%.2f "
                    "mpc_vs_crac_saving=%.2f%%\n",
                    spec.name.c_str(), o.servers, o.days,
                    100.0 * cmp.mpcVsCracSaving);
        return 0;
    }

    auto r = plant::runPlant(scenario, cfg);
    if (!r.finished) {
        std::printf("paused after %.0f simulated seconds; state "
                    "saved to %s (rerun with --resume=%s to "
                    "continue)\n",
                    o.stop_after, cfg.checkpoint.path.c_str(),
                    cfg.checkpoint.path.c_str());
        return 0;
    }
    std::printf("platform=%s backend=%s servers=%zu days=%.2f "
                "faults=%zu\n",
                spec.name.c_str(), r.backend.c_str(), o.servers,
                o.days, r.faultEventsApplied);
    std::printf("electric energy: %.1f kWh (peak %.2f kW)\n",
                r.electricEnergyJ / 3.6e6, r.peakElectricW / 1e3);
    std::printf("energy cost:     %.2f $ (%.0f $/yr)\n",
                r.energyCostUsd, r.yearlyNetCostUsd);
    std::printf("reuse credit:    %.2f $   dvfs penalty: %.2f $\n",
                r.reuseCreditUsd, r.dvfsPenaltyUsd);
    std::printf("throughput retention: %.4f   unserved: %.1f kWh\n",
                r.throughputRetention, r.unservedJ / 3.6e6);
    return 0;
}

int
cmdReport(const Options &o)
{
    auto spec = platformOf(o);
    core::PlatformConfig opts;
    opts.cooling.run = runConfigOf(o);
    opts.cooling.run.meltTempC = 0.0;
    opts.optimizeMelt = false;
    auto study =
        core::runPlatformStudy(spec, traceOf(o), opts);
    core::writePlatformStudyReport(o.out_dir, study);
    std::printf("wrote fig11_cooling_load.csv, "
                "fig12_throughput.csv, wax_state.csv, summary.md "
                "to %s\n",
                o.out_dir.c_str());
    return 0;
}

int
cmdValidate(const Options &)
{
    auto r = core::runValidation();
    std::printf("wall power idle/load:    %.1f / %.1f W "
                "(paper: 90 / 185)\n",
                r.idleWallW, r.loadWallW);
    std::printf("package temp idle/load:  %.1f / %.1f C "
                "(paper: 42 / 76)\n",
                r.idlePackageC, r.loadPackageC);
    std::printf("steady-state mean diff:  %.2f C (paper: 0.22)\n",
                r.steadyStateMeanDiffC);
    std::printf("trace correlation:       %.4f\n",
                r.traceCorrelation);
    return 0;
}

} // namespace

namespace {

int
dispatch(const Options &o)
{
    if (o.command == "trace")
        return cmdTrace(o);
    if (o.command == "cooling")
        return cmdCooling(o);
    if (o.command == "throughput")
        return cmdThroughput(o);
    if (o.command == "optimize")
        return cmdOptimize(o);
    if (o.command == "outage")
        return cmdOutage(o);
    if (o.command == "resilience")
        return cmdResilience(o);
    if (o.command == "fleet")
        return cmdFleet(o);
    if (o.command == "plant")
        return cmdPlant(o);
    if (o.command == "report")
        return cmdReport(o);
    if (o.command == "validate")
        return cmdValidate(o);
    std::fprintf(stderr, "unknown command '%s'\n",
                 o.command.c_str());
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parse(argc, argv);
    // The context owns the obs sink lifecycle (enable before the
    // command, write metrics/trace files after); commands build
    // their own spec/trace, so the context's stay empty here.
    core::StudyContext ctx(platformOf(o),
                           workload::WorkloadTrace{},
                           runConfigOf(o));
    ctx.beginObs();
    try {
        int rc = dispatch(o);
        if (ctx.obsRequested()) {
            ctx.finishObs();
            std::cerr << "profile (wall time inside instrumented "
                         "phases):\n";
            obs::writeProfileTable(std::cerr);
        }
        return rc;
    } catch (const tts::Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
