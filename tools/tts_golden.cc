/**
 * @file
 * Golden-file generator for the regression harness.
 *
 * Recomputes every pinned headline value (see core/golden.hh) and
 * writes the flat JSON the integration test diffs against:
 *
 *     tts_golden                   # print to stdout
 *     tts_golden tests/data/golden.json
 *
 * Regenerate the checked-in file ONLY when a model change is
 * intentional, and say so in the commit message - the whole point of
 * the harness is that silent numeric drift fails CI.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/golden.hh"
#include "opt/golden.hh"
#include "plant/golden.hh"
#include "util/cli.hh"
#include "util/error.hh"
#include "util/kv_json.hh"

int
main(int argc, char **argv)
{
    std::string out;
    tts::cli::Parser p("tts_golden",
                       "Recompute the pinned golden values.");
    p.addPositional("output", &out,
                    "output file (stdout when omitted)");
    switch (p.parse(argc - 1, argv + 1)) {
      case tts::cli::Status::Help:
        std::fputs(p.helpText().c_str(), stdout);
        return 0;
      case tts::cli::Status::Error:
        std::fprintf(stderr, "%s\n", p.error().c_str());
        return 2;
      case tts::cli::Status::Ok:
        break;
    }
    try {
        auto values = tts::core::computeGoldenValues();
        // The opt layer sits above core, so its keys merge here.
        auto opt_values = tts::opt::computeOptGoldenValues();
        values.insert(opt_values.begin(), opt_values.end());
        auto plant_values = tts::plant::computePlantGoldenValues();
        values.insert(plant_values.begin(), plant_values.end());
        if (!out.empty()) {
            tts::writeKvJsonFile(out, values);
            std::cout << "wrote " << values.size()
                      << " golden values to " << out << "\n";
        } else {
            std::cout << tts::writeKvJson(values);
        }
    } catch (const tts::Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
