/**
 * @file
 * Golden-file generator for the regression harness.
 *
 * Recomputes every pinned headline value (see core/golden.hh) and
 * writes the flat JSON the integration test diffs against:
 *
 *     tts_golden                   # print to stdout
 *     tts_golden tests/data/golden.json
 *
 * Regenerate the checked-in file ONLY when a model change is
 * intentional, and say so in the commit message - the whole point of
 * the harness is that silent numeric drift fails CI.
 */

#include <cstdio>
#include <iostream>

#include "core/golden.hh"
#include "util/error.hh"
#include "util/kv_json.hh"

int
main(int argc, char **argv)
{
    try {
        auto values = tts::core::computeGoldenValues();
        if (argc > 1) {
            tts::writeKvJsonFile(argv[1], values);
            std::cout << "wrote " << values.size()
                      << " golden values to " << argv[1] << "\n";
        } else {
            std::cout << tts::writeKvJson(values);
        }
    } catch (const tts::Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
