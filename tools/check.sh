#!/bin/sh
# Developer gate for the parallel execution engine.
#
# Builds the repo twice - a normal Release tree and a ThreadSanitizer
# tree (TTS_SANITIZE=thread) - and runs the suites that exercise
# tts::exec and the seeded simulator under both:
#
#   tools/check.sh           # fast + fault labels, TSan suites
#   tools/check.sh --full    # also the integration label (slow)
#
# Exits non-zero on the first failure.

set -eu

cd "$(dirname "$0")/.."

FULL=0
[ "${1:-}" = "--full" ] && FULL=1

echo "== Release build =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build build -j > /dev/null

echo "== ctest -L fast =="
ctest --test-dir build -L fast --output-on-failure -j

echo "== ctest -L fault =="
ctest --test-dir build -L fault --output-on-failure -j

if [ "$FULL" = "1" ]; then
    echo "== ctest -L integration =="
    ctest --test-dir build -L integration --output-on-failure -j
fi

echo "== ThreadSanitizer build (TTS_SANITIZE=thread) =="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DTTS_SANITIZE=thread > /dev/null
cmake --build build-tsan -j \
    --target tts_exec_test tts_workload_test tts_fault_test \
    > /dev/null

echo "== TSan: exec engine, 8 threads =="
TTS_THREADS=8 ./build-tsan/tests/tts_exec_test
echo "== TSan: seeded cluster simulator =="
./build-tsan/tests/tts_workload_test \
    --gtest_filter='DcSim*'
echo "== TSan: fault injection + resilience grid, 8 threads =="
TTS_THREADS=8 ./build-tsan/tests/tts_fault_test

echo "OK"
