#!/bin/sh
# Developer gate for the parallel execution engine and the SoA
# thermal kernel.
#
# Builds the repo three times - a normal Release tree, a
# ThreadSanitizer tree (TTS_SANITIZE=thread), and an ASan+UBSan tree
# (TTS_SANITIZE=address) - and runs the suites that exercise
# tts::exec, the seeded simulator, and the numerical guard under
# them.  The Release tree also runs the perf lane: the ctest perf
# smoke label, then the full two-day thermal-kernel gate (2x speedup
# + bit-identity), the parallel-sweep bench, the 40k-server fleet
# gate (wall-clock budget, 1-vs-8-thread bit-identity, 10x dedupe
# leverage), the wax-placement search gate (1t==8t, beats the
# uniform-wax 2U baseline), the cooling-plant gate (four backends
# bit-identical 1t vs 8t, MPC beats static CRAC by the margin), and
# the scenario-daemon gate (latency percentiles, cache hit rate,
# shed-under-overload sanity, manifest warm-start hit rate, and
# batched-miss throughput), which write the CI tracked
# BENCH_thermal.json / BENCH_sweep.json / BENCH_fleet.json /
# BENCH_opt.json / BENCH_plant.json / BENCH_serve.json at the repo
# root:
#
#   tools/check.sh           # fast + guard + fault + obs + fleet +
#                            # opt + serve + perf, sanitizers,
#                            # BENCH_*.json
#   tools/check.sh --full    # also the integration label (slow)
#
# The integration label pins the opt.* golden keys; after a
# deliberate search or oracle change, refresh them with
#     ./build/tools/tts_golden tests/data/golden.json
# and review the diff.
#
# Exits non-zero on the first failure.

set -eu

cd "$(dirname "$0")/.."

FULL=0
[ "${1:-}" = "--full" ] && FULL=1

echo "== Release build =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build build -j > /dev/null

echo "== ctest -L fast =="
ctest --test-dir build -L fast --output-on-failure -j

echo "== ctest -L guard =="
ctest --test-dir build -L guard --output-on-failure -j

echo "== ctest -L fault =="
ctest --test-dir build -L fault --output-on-failure -j

echo "== ctest -L obs =="
ctest --test-dir build -L obs --output-on-failure -j

echo "== ctest -L fleet =="
ctest --test-dir build -L fleet --output-on-failure -j

echo "== ctest -L opt =="
ctest --test-dir build -L opt --output-on-failure -j

echo "== ctest -L serve =="
ctest --test-dir build -L serve --output-on-failure -j

echo "== ctest -L plant =="
ctest --test-dir build -L plant --output-on-failure -j

echo "== ctest -L perf (smoke) =="
ctest --test-dir build -L perf --output-on-failure -j

echo "== perf gate: SoA thermal kernel (2x, bit-identity) =="
./build/bench/perf_thermal_kernel --min-speedup=2.0 \
    --out=BENCH_thermal.json

echo "== perf: parallel sweep =="
./build/bench/perf_parallel_sweep --out=BENCH_sweep.json

echo "== perf gate: 40k-server fleet (10-min wall, 1t==8t, 10x dedupe) =="
./build/bench/perf_fleet --min-dedupe-speedup=10.0 \
    --out=BENCH_fleet.json

echo "== perf gate: wax-placement search (1t==8t, beats uniform 2U) =="
./build/bench/perf_opt --out=BENCH_opt.json

echo "== perf gate: cooling plant (1t==8t, MPC beats static CRAC) =="
./build/bench/perf_plant --out=BENCH_plant.json

echo "== perf gate: scenario daemon (latency, hit rate, shed, warm start, batching) =="
./build/bench/perf_serve --out=BENCH_serve.json

if [ "$FULL" = "1" ]; then
    echo "== ctest -L integration =="
    ctest --test-dir build -L integration --output-on-failure -j
fi

echo "== ThreadSanitizer build (TTS_SANITIZE=thread) =="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DTTS_SANITIZE=thread > /dev/null
cmake --build build-tsan -j \
    --target tts_exec_test tts_workload_test tts_fault_test \
    tts_obs_test tts_fleet_test tts_opt_test tts_plant_test \
    tts_serve_test > /dev/null

echo "== TSan: exec engine, 8 threads =="
TTS_THREADS=8 ./build-tsan/tests/tts_exec_test
echo "== TSan: seeded cluster simulator =="
./build-tsan/tests/tts_workload_test \
    --gtest_filter='DcSim*'
echo "== TSan: fault injection + resilience grid, 8 threads =="
TTS_THREADS=8 ./build-tsan/tests/tts_fault_test
echo "== TSan: obs trace/metrics/profile, 8 threads =="
TTS_THREADS=8 ./build-tsan/tests/tts_obs_test
echo "== TSan: sharded fleet sim, 8 threads =="
TTS_THREADS=8 ./build-tsan/tests/tts_fleet_test
echo "== TSan: wax-placement search, 8 threads =="
TTS_THREADS=8 ./build-tsan/tests/tts_opt_test
echo "== TSan: cooling-plant backends + MPC, 8 threads =="
TTS_THREADS=8 ./build-tsan/tests/tts_plant_test
echo "== TSan: scenario daemon + fault-injection soak, 8 workers =="
TTS_THREADS=8 ./build-tsan/tests/tts_serve_test
echo "== TSan: multi-client socket soak, 8 sessions x 8 workers =="
# The mux/batcher/daemon stack under its most concurrent test: 8
# framed sessions (slow readers, disconnects, malformed frames from
# the serve fault plan) multiplexed onto 8 workers.  Redundant with
# the full-suite lane above, but kept separate so a data race in the
# session mux is named by the lane that fails.
TTS_THREADS=8 ./build-tsan/tests/tts_serve_test \
    --gtest_filter='ServeMux.MultiClientSoak*:ServeBatch.*'

echo "== ASan+UBSan build (TTS_SANITIZE=address) =="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DTTS_SANITIZE=address > /dev/null
cmake --build build-asan -j \
    --target tts_guard_test tts_util_test tts_workload_test \
    tts_thermal_test > /dev/null

echo "== ASan: numerical guard + checkpoint resume =="
./build-asan/tests/tts_guard_test
echo "== ASan: integrator + kv_json + rng =="
./build-asan/tests/tts_util_test
echo "== ASan: cluster simulator save/restore =="
./build-asan/tests/tts_workload_test --gtest_filter='ClusterSim*'
echo "== ASan: SoA thermal kernel + airflow memo =="
./build-asan/tests/tts_thermal_test

echo "OK"
