/**
 * @file
 * tts_serve - the scenario-serving daemon and its client.
 *
 * Usage:
 *   tts_serve stdio  [daemon flags]
 *   tts_serve socket --socket=PATH [--once] [--max-sessions=N]
 *                    [--window=N] [daemon flags]
 *   tts_serve send   --socket=PATH [request on stdin]
 *   tts_serve call   [request on stdin]
 *
 * Daemon flags (stdio and socket modes):
 *   [--workers=N] [--queue=N] [--deadline-ms=D] [--retries=N]
 *   [--backoff-ms=D] [--max-bytes=N] [--cache=FILE]
 *   [--cache-cap=N] [--persist-every=N] [--stats=FILE]
 *   [--manifest=FILE] [--batch-window-ms=D] [--batch-max=N]
 *
 * `stdio` serves length-prefixed request frames from stdin and
 * writes one reply frame per request to stdout, in order - the
 * simplest way to drive the daemon from a script or a test harness:
 *
 *   printf 'tts-frame 20\n{"study": "outage"}\n' | tts_serve stdio
 *
 * `socket` listens on a Unix domain socket and serves many
 * concurrent framed sessions on one poll loop (the SessionMux):
 * every connection gets in-order replies, slow clients only slow
 * themselves, and concurrent fleet-backed cache misses batch into
 * shared sweeps.  --once exits after the first session closes,
 * which makes demos and tests self-terminating; --max-sessions
 * bounds concurrency and --window bounds outstanding replies per
 * session.  --manifest=FILE pre-warms the cache from a scenario
 * manifest *before* the socket opens, so the first real client
 * already hits warm entries.  `send` is the matching client: it
 * reads one request document from stdin, frames it, and prints the
 * reply payload.  `call` skips the transport entirely and answers
 * one request in-process - same parser, same evaluation, same reply
 * JSON - so scripts can smoke-test a request without a daemon.
 *
 * Requests are flat kv-json (see DESIGN.md section 16), e.g.:
 *
 *   {"study": "outage", "util": 0.9, "wax_l": 8, "horizon_s": 600}
 *
 * The daemon caches results content-addressed by the request's
 * canonical fingerprint; --cache=FILE persists the cache across
 * restarts through the CRC-protected checkpoint path (a corrupt
 * snapshot is quarantined to FILE.corrupt, never fatal).  --stats
 * dumps lifetime serving counters as kv-json on exit.
 */

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/daemon.hh"
#include "serve/manifest.hh"
#include "serve/mux.hh"
#include "util/cli.hh"
#include "util/error.hh"
#include "util/kv_json.hh"

using namespace tts;

namespace {

/** Minimal streambuf over a POSIX fd (socket connections). */
class FdBuf : public std::streambuf
{
  public:
    explicit FdBuf(int fd) : fd_(fd)
    {
        setg(in_, in_, in_);
        setp(out_, out_ + sizeof(out_));
    }

    ~FdBuf() override { sync(); }

  protected:
    int_type underflow() override
    {
        const ssize_t n = ::read(fd_, in_, sizeof(in_));
        if (n <= 0)
            return traits_type::eof();
        setg(in_, in_, in_ + n);
        return traits_type::to_int_type(*gptr());
    }

    int_type overflow(int_type c) override
    {
        if (sync() != 0)
            return traits_type::eof();
        if (!traits_type::eq_int_type(c, traits_type::eof())) {
            *pptr() = traits_type::to_char_type(c);
            pbump(1);
        }
        return traits_type::not_eof(c);
    }

    int sync() override
    {
        const char *p = pbase();
        while (p < pptr()) {
            const ssize_t n =
                ::write(fd_, p, static_cast<size_t>(pptr() - p));
            if (n <= 0)
                return -1;
            p += n;
        }
        setp(out_, out_ + sizeof(out_));
        return 0;
    }

  private:
    int fd_;
    char in_[4096];
    char out_[4096];
};

struct DaemonFlags
{
    std::size_t workers = 0;
    std::size_t queue = 64;
    double deadlineMs = 0.0;
    std::size_t retries = 3;
    double backoffMs = 0.5;
    std::size_t maxBytes = 64 * 1024;
    std::string cachePath;
    std::size_t cacheCap = 256;
    std::size_t persistEvery = 0;
    std::string statsPath;
    std::string manifestPath;
    double batchWindowMs = 2.0;
    std::size_t batchMax = 16;
};

void
addDaemonFlags(cli::Parser &p, DaemonFlags &f)
{
    p.addSize("workers", &f.workers,
              "worker threads (0 = TTS_THREADS / hardware)");
    p.addSize("queue", &f.queue, "admission queue capacity");
    p.addDouble("deadline-ms", &f.deadlineMs,
                "default per-request deadline (0 = none)");
    p.addSize("retries", &f.retries,
              "evaluation attempts per request");
    p.addDouble("backoff-ms", &f.backoffMs,
                "base retry backoff (doubles per attempt)");
    p.addSize("max-bytes", &f.maxBytes,
              "largest accepted request/frame payload");
    p.addString("cache", &f.cachePath,
                "result-cache snapshot file (empty = in-memory)");
    p.addSize("cache-cap", &f.cacheCap, "cached results (LRU)");
    p.addSize("persist-every", &f.persistEvery,
              "auto-persist the cache every N inserts (0 = only "
              "on shutdown)");
    p.addString("stats", &f.statsPath,
                "write serving counters as kv-json on exit");
    p.addString("manifest", &f.manifestPath,
                "warm the cache from a scenario manifest at "
                "startup");
    p.addDouble("batch-window-ms", &f.batchWindowMs,
                "miss-batching window for fleet studies (0 = off)");
    p.addSize("batch-max", &f.batchMax,
              "largest miss batch (unique requests per sweep)");
}

serve::DaemonConfig
configOf(const DaemonFlags &f)
{
    serve::DaemonConfig config;
    config.workers = f.workers;
    config.queueCapacity = f.queue;
    config.defaultDeadlineMs = f.deadlineMs;
    config.retryBudget = f.retries;
    config.retryBackoffBaseMs = f.backoffMs;
    config.maxRequestBytes = f.maxBytes;
    config.cache.path = f.cachePath;
    config.cache.capacity = f.cacheCap;
    config.cache.persistEveryInserts = f.persistEvery;
    config.batch.windowMs = f.batchWindowMs;
    config.batch.maxBatch = f.batchMax;
    return config;
}

/** Warm the cache from --manifest before any transport opens. */
void
warmIfRequested(serve::Daemon &daemon, const DaemonFlags &flags)
{
    if (flags.manifestPath.empty())
        return;
    const serve::WarmStats warm =
        serve::warmManifestFile(flags.manifestPath, daemon);
    std::cerr << "tts_serve: warmed " << warm.warmed << "/"
              << warm.entries << " manifest entries ("
              << warm.alreadyCached << " already cached, "
              << warm.failed << " failed)\n";
    for (const std::string &failure : warm.failures)
        std::cerr << "tts_serve: manifest " << failure << "\n";
}

void
dumpStats(const serve::Daemon &daemon, const std::string &path)
{
    if (path.empty())
        return;
    std::map<std::string, double> kv = daemon.stats().toMap();
    const auto cache = daemon.cacheCounters();
    kv["serve.cache.hits"] = static_cast<double>(cache.hits);
    kv["serve.cache.misses"] = static_cast<double>(cache.misses);
    kv["serve.cache.evictions"] =
        static_cast<double>(cache.evictions);
    kv["serve.cache.collisions"] =
        static_cast<double>(cache.collisions);
    kv["serve.cache.persists"] = static_cast<double>(cache.persists);
    writeKvJsonFile(path, kv);
}

serve::StreamOptions
streamOptionsOf(const DaemonFlags &f)
{
    serve::StreamOptions options;
    options.limits.maxPayloadBytes = f.maxBytes;
    return options;
}

int
runStdio(const DaemonFlags &flags)
{
    serve::Daemon daemon(configOf(flags));
    if (daemon.cacheLoadOutcome() ==
        serve::CacheLoadOutcome::Quarantined)
        std::cerr << "tts_serve: cache snapshot was corrupt; "
                     "quarantined to "
                  << flags.cachePath << ".corrupt\n";
    warmIfRequested(daemon, flags);
    serve::serveStream(std::cin, std::cout, daemon,
                       streamOptionsOf(flags));
    daemon.shutdown();
    dumpStats(daemon, flags.statsPath);
    return 0;
}

int
runSocket(const DaemonFlags &flags, const std::string &path,
          bool once, std::size_t max_sessions, std::size_t window)
{
    require(!path.empty(), "socket mode needs --socket=PATH");
    serve::Daemon daemon(configOf(flags));
    if (daemon.cacheLoadOutcome() ==
        serve::CacheLoadOutcome::Quarantined)
        std::cerr << "tts_serve: cache snapshot was corrupt; "
                     "quarantined to "
                  << flags.cachePath << ".corrupt\n";
    // Warm before the socket exists: the first client to connect
    // already sees the manifest's entries resident.
    warmIfRequested(daemon, flags);

    serve::MuxOptions options;
    options.limits.maxPayloadBytes = flags.maxBytes;
    options.maxSessions = max_sessions;
    options.pipelineWindow = window;
    options.exitAfterSessions = once ? 1 : 0;
    serve::SessionMux mux(daemon, options);
    mux.listenUnix(path);
    std::cerr << "tts_serve: listening on " << path << "\n";
    mux.run();

    daemon.shutdown();
    if (!flags.statsPath.empty()) {
        std::map<std::string, double> kv = daemon.stats().toMap();
        for (const auto &entry : mux.stats().toMap())
            kv[entry.first] = entry.second;
        writeKvJsonFile(flags.statsPath, kv);
    }
    return 0;
}

std::string
readAll(std::istream &in)
{
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

int
runSend(const std::string &path)
{
    require(!path.empty(), "send mode needs --socket=PATH");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    require(path.size() < sizeof(addr.sun_path),
            "socket path too long: " + path);
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                  path.c_str());
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    require(fd >= 0, "socket() failed");
    require(::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) == 0,
            "connect(" + path + ") failed - is tts_serve socket "
                               "running?");
    FdBuf buf(fd);
    std::istream in(&buf);
    std::ostream out(&buf);
    serve::writeFrame(out, readAll(std::cin));
    ::shutdown(fd, SHUT_WR);
    const serve::FrameResult reply = serve::readFrame(in);
    ::close(fd);
    require(reply.status == serve::FrameStatus::Ok,
            "no reply frame: " + reply.diagnostic);
    std::cout << reply.payload;
    const serve::Reply parsed = serve::Reply::fromJson(reply.payload);
    return parsed.ok ? 0 : 1;
}

int
runCall(const DaemonFlags &flags)
{
    serve::DaemonConfig config = configOf(flags);
    config.workers = 1;
    serve::Daemon daemon(config);
    const serve::Reply reply = daemon.call(readAll(std::cin));
    daemon.shutdown();
    std::cout << reply.toJson();
    dumpStats(daemon, flags.statsPath);
    return reply.ok ? 0 : 1;
}

int
usage(std::ostream &out, int code)
{
    out << "usage: tts_serve <stdio|socket|send|call> [--help]\n"
           "  stdio   serve framed requests on stdin/stdout\n"
           "  socket  serve connections on a Unix socket\n"
           "  send    client: frame stdin, print the reply\n"
           "  call    answer one request in-process\n";
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(std::cerr, 2);
    const std::string command = argv[1];
    if (command == "--help" || command == "-h")
        return usage(std::cout, 0);

    DaemonFlags flags;
    std::string socket_path;
    bool once = false;
    std::size_t max_sessions = 64;
    std::size_t window = 0;
    cli::Parser p("tts_serve " + command);
    if (command == "stdio" || command == "call") {
        addDaemonFlags(p, flags);
    } else if (command == "socket") {
        addDaemonFlags(p, flags);
        p.addString("socket", &socket_path, "Unix socket path");
        p.addFlag("once", &once,
                  "exit after the first session closes");
        p.addSize("max-sessions", &max_sessions,
                  "concurrent sessions served");
        p.addSize("window", &window,
                  "outstanding replies per session (0 = queue "
                  "capacity)");
    } else if (command == "send") {
        p.addString("socket", &socket_path, "Unix socket path");
    } else {
        std::cerr << "tts_serve: unknown command '" << command
                  << "'\n";
        return usage(std::cerr, 2);
    }
    switch (p.parse(argc - 2, argv + 2)) {
      case cli::Status::Help:
        std::cout << p.helpText();
        return 0;
      case cli::Status::Error:
        std::cerr << p.error() << "\n";
        return 2;
      case cli::Status::Ok:
        break;
    }

    try {
        if (command == "stdio")
            return runStdio(flags);
        if (command == "socket")
            return runSocket(flags, socket_path, once, max_sessions,
                             window);
        if (command == "send")
            return runSend(socket_path);
        return runCall(flags);
    } catch (const Error &e) {
        std::cerr << "tts_serve: " << e.what() << "\n";
        return 1;
    }
}
