/**
 * @file
 * tts_serve - the scenario-serving daemon and its client.
 *
 * Usage:
 *   tts_serve stdio  [daemon flags]
 *   tts_serve socket --socket=PATH [--once] [daemon flags]
 *   tts_serve send   --socket=PATH [request on stdin]
 *   tts_serve call   [request on stdin]
 *
 * Daemon flags (stdio and socket modes):
 *   [--workers=N] [--queue=N] [--deadline-ms=D] [--retries=N]
 *   [--backoff-ms=D] [--max-bytes=N] [--cache=FILE]
 *   [--cache-cap=N] [--persist-every=N] [--stats=FILE]
 *
 * `stdio` serves length-prefixed request frames from stdin and
 * writes one reply frame per request to stdout, in order - the
 * simplest way to drive the daemon from a script or a test harness:
 *
 *   printf 'tts-frame 20\n{"study": "outage"}\n' | tts_serve stdio
 *
 * `socket` listens on a Unix domain socket and serves connections
 * one at a time (each connection is one framed session); --once
 * exits after the first connection, which makes demos and tests
 * self-terminating.  `send` is the matching client: it reads one
 * request document from stdin, frames it, and prints the reply
 * payload.  `call` skips the transport entirely and answers one
 * request in-process - same parser, same evaluation, same reply
 * JSON - so scripts can smoke-test a request without a daemon.
 *
 * Requests are flat kv-json (see DESIGN.md section 16), e.g.:
 *
 *   {"study": "outage", "util": 0.9, "wax_l": 8, "horizon_s": 600}
 *
 * The daemon caches results content-addressed by the request's
 * canonical fingerprint; --cache=FILE persists the cache across
 * restarts through the CRC-protected checkpoint path (a corrupt
 * snapshot is quarantined to FILE.corrupt, never fatal).  --stats
 * dumps lifetime serving counters as kv-json on exit.
 */

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/daemon.hh"
#include "util/cli.hh"
#include "util/error.hh"
#include "util/kv_json.hh"

using namespace tts;

namespace {

/** Minimal streambuf over a POSIX fd (socket connections). */
class FdBuf : public std::streambuf
{
  public:
    explicit FdBuf(int fd) : fd_(fd)
    {
        setg(in_, in_, in_);
        setp(out_, out_ + sizeof(out_));
    }

    ~FdBuf() override { sync(); }

  protected:
    int_type underflow() override
    {
        const ssize_t n = ::read(fd_, in_, sizeof(in_));
        if (n <= 0)
            return traits_type::eof();
        setg(in_, in_, in_ + n);
        return traits_type::to_int_type(*gptr());
    }

    int_type overflow(int_type c) override
    {
        if (sync() != 0)
            return traits_type::eof();
        if (!traits_type::eq_int_type(c, traits_type::eof())) {
            *pptr() = traits_type::to_char_type(c);
            pbump(1);
        }
        return traits_type::not_eof(c);
    }

    int sync() override
    {
        const char *p = pbase();
        while (p < pptr()) {
            const ssize_t n =
                ::write(fd_, p, static_cast<size_t>(pptr() - p));
            if (n <= 0)
                return -1;
            p += n;
        }
        setp(out_, out_ + sizeof(out_));
        return 0;
    }

  private:
    int fd_;
    char in_[4096];
    char out_[4096];
};

struct DaemonFlags
{
    std::size_t workers = 0;
    std::size_t queue = 64;
    double deadlineMs = 0.0;
    std::size_t retries = 3;
    double backoffMs = 0.5;
    std::size_t maxBytes = 64 * 1024;
    std::string cachePath;
    std::size_t cacheCap = 256;
    std::size_t persistEvery = 0;
    std::string statsPath;
};

void
addDaemonFlags(cli::Parser &p, DaemonFlags &f)
{
    p.addSize("workers", &f.workers,
              "worker threads (0 = TTS_THREADS / hardware)");
    p.addSize("queue", &f.queue, "admission queue capacity");
    p.addDouble("deadline-ms", &f.deadlineMs,
                "default per-request deadline (0 = none)");
    p.addSize("retries", &f.retries,
              "evaluation attempts per request");
    p.addDouble("backoff-ms", &f.backoffMs,
                "base retry backoff (doubles per attempt)");
    p.addSize("max-bytes", &f.maxBytes,
              "largest accepted request/frame payload");
    p.addString("cache", &f.cachePath,
                "result-cache snapshot file (empty = in-memory)");
    p.addSize("cache-cap", &f.cacheCap, "cached results (LRU)");
    p.addSize("persist-every", &f.persistEvery,
              "auto-persist the cache every N inserts (0 = only "
              "on shutdown)");
    p.addString("stats", &f.statsPath,
                "write serving counters as kv-json on exit");
}

serve::DaemonConfig
configOf(const DaemonFlags &f)
{
    serve::DaemonConfig config;
    config.workers = f.workers;
    config.queueCapacity = f.queue;
    config.defaultDeadlineMs = f.deadlineMs;
    config.retryBudget = f.retries;
    config.retryBackoffBaseMs = f.backoffMs;
    config.maxRequestBytes = f.maxBytes;
    config.cache.path = f.cachePath;
    config.cache.capacity = f.cacheCap;
    config.cache.persistEveryInserts = f.persistEvery;
    return config;
}

void
dumpStats(const serve::Daemon &daemon, const std::string &path)
{
    if (path.empty())
        return;
    std::map<std::string, double> kv = daemon.stats().toMap();
    const auto cache = daemon.cacheCounters();
    kv["serve.cache.hits"] = static_cast<double>(cache.hits);
    kv["serve.cache.misses"] = static_cast<double>(cache.misses);
    kv["serve.cache.evictions"] =
        static_cast<double>(cache.evictions);
    kv["serve.cache.collisions"] =
        static_cast<double>(cache.collisions);
    kv["serve.cache.persists"] = static_cast<double>(cache.persists);
    writeKvJsonFile(path, kv);
}

serve::StreamOptions
streamOptionsOf(const DaemonFlags &f)
{
    serve::StreamOptions options;
    options.limits.maxPayloadBytes = f.maxBytes;
    return options;
}

int
runStdio(const DaemonFlags &flags)
{
    serve::Daemon daemon(configOf(flags));
    if (daemon.cacheLoadOutcome() ==
        serve::CacheLoadOutcome::Quarantined)
        std::cerr << "tts_serve: cache snapshot was corrupt; "
                     "quarantined to "
                  << flags.cachePath << ".corrupt\n";
    serve::serveStream(std::cin, std::cout, daemon,
                       streamOptionsOf(flags));
    daemon.shutdown();
    dumpStats(daemon, flags.statsPath);
    return 0;
}

int
runSocket(const DaemonFlags &flags, const std::string &path,
          bool once)
{
    require(!path.empty(), "socket mode needs --socket=PATH");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    require(path.size() < sizeof(addr.sun_path),
            "socket path too long: " + path);
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                  path.c_str());

    const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
    require(listener >= 0, "socket() failed");
    ::unlink(path.c_str());
    require(::bind(listener,
                   reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) == 0,
            "bind(" + path + ") failed");
    require(::listen(listener, 8) == 0, "listen() failed");

    serve::Daemon daemon(configOf(flags));
    std::cerr << "tts_serve: listening on " << path << "\n";
    for (;;) {
        const int conn = ::accept(listener, nullptr, nullptr);
        if (conn < 0)
            break;
        FdBuf buf(conn);
        std::istream in(&buf);
        std::ostream out(&buf);
        serve::serveStream(in, out, daemon,
                           streamOptionsOf(flags));
        ::close(conn);
        if (once)
            break;
    }
    ::close(listener);
    ::unlink(path.c_str());
    daemon.shutdown();
    dumpStats(daemon, flags.statsPath);
    return 0;
}

std::string
readAll(std::istream &in)
{
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

int
runSend(const std::string &path)
{
    require(!path.empty(), "send mode needs --socket=PATH");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    require(path.size() < sizeof(addr.sun_path),
            "socket path too long: " + path);
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                  path.c_str());
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    require(fd >= 0, "socket() failed");
    require(::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) == 0,
            "connect(" + path + ") failed - is tts_serve socket "
                               "running?");
    FdBuf buf(fd);
    std::istream in(&buf);
    std::ostream out(&buf);
    serve::writeFrame(out, readAll(std::cin));
    ::shutdown(fd, SHUT_WR);
    const serve::FrameResult reply = serve::readFrame(in);
    ::close(fd);
    require(reply.status == serve::FrameStatus::Ok,
            "no reply frame: " + reply.diagnostic);
    std::cout << reply.payload;
    const serve::Reply parsed = serve::Reply::fromJson(reply.payload);
    return parsed.ok ? 0 : 1;
}

int
runCall(const DaemonFlags &flags)
{
    serve::DaemonConfig config = configOf(flags);
    config.workers = 1;
    serve::Daemon daemon(config);
    const serve::Reply reply = daemon.call(readAll(std::cin));
    daemon.shutdown();
    std::cout << reply.toJson();
    dumpStats(daemon, flags.statsPath);
    return reply.ok ? 0 : 1;
}

int
usage(std::ostream &out, int code)
{
    out << "usage: tts_serve <stdio|socket|send|call> [--help]\n"
           "  stdio   serve framed requests on stdin/stdout\n"
           "  socket  serve connections on a Unix socket\n"
           "  send    client: frame stdin, print the reply\n"
           "  call    answer one request in-process\n";
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(std::cerr, 2);
    const std::string command = argv[1];
    if (command == "--help" || command == "-h")
        return usage(std::cout, 0);

    DaemonFlags flags;
    std::string socket_path;
    bool once = false;
    cli::Parser p("tts_serve " + command);
    if (command == "stdio" || command == "call") {
        addDaemonFlags(p, flags);
    } else if (command == "socket") {
        addDaemonFlags(p, flags);
        p.addString("socket", &socket_path, "Unix socket path");
        p.addFlag("once", &once, "exit after the first connection");
    } else if (command == "send") {
        p.addString("socket", &socket_path, "Unix socket path");
    } else {
        std::cerr << "tts_serve: unknown command '" << command
                  << "'\n";
        return usage(std::cerr, 2);
    }
    switch (p.parse(argc - 2, argv + 2)) {
      case cli::Status::Help:
        std::cout << p.helpText();
        return 0;
      case cli::Status::Error:
        std::cerr << p.error() << "\n";
        return 2;
      case cli::Status::Ok:
        break;
    }

    try {
        if (command == "stdio")
            return runStdio(flags);
        if (command == "socket")
            return runSocket(flags, socket_path, once);
        if (command == "send")
            return runSend(socket_path);
        return runCall(flags);
    } catch (const Error &e) {
        std::cerr << "tts_serve: " << e.what() << "\n";
        return 1;
    }
}
