/**
 * @file
 * Ablation: calibration sensitivity.
 *
 * DESIGN.md discloses the scalars calibrated against the paper's
 * observables.  This bench perturbs each by +/- 10 % and re-runs the
 * Section 5.1 study on the 2U platform, showing which conclusions
 * lean on which knob.  The headline claim (a ~10 % class peak
 * cooling reduction) should survive every single-knob perturbation.
 */

#include <iostream>

#include "core/sensitivity.hh"
#include "util/table.hh"
#include "workload/google_trace.hh"

int
main()
{
    using namespace tts;
    using namespace tts::core;

    auto spec = server::x4470Spec();
    auto trace = workload::makeGoogleTrace();
    auto rows = runSensitivity(spec, trace, 0.10,
                               calibrationKnobs(),
                               CoolingConfig{},
                               /*reoptimize=*/true);

    std::cout << "=== Calibration sensitivity: " << spec.name
              << ", +/- 10 % per knob ===\n\n";
    AsciiTable t({"parameter", "fixed wax @ -10% (%)",
                  "nominal (%)", "fixed wax @ +10% (%)",
                  "re-opt @ -10% (%)", "re-opt @ +10% (%)"});
    for (const auto &r : rows) {
        t.addRow({r.name,
                  formatFixed(100.0 * r.reductionLow, 2),
                  formatFixed(100.0 * r.reductionNominal, 2),
                  formatFixed(100.0 * r.reductionHigh, 2),
                  formatFixed(100.0 * r.reoptimizedLow, 2),
                  formatFixed(100.0 * r.reoptimizedHigh, 2)});
    }
    t.print(std::cout);

    auto print_hist = [](const char *label, const Histogram &h) {
        std::cout << label;
        for (std::size_t i = 0; i < h.bucketCount(); ++i) {
            double bound = h.upperBound(i);
            std::cout << "  ";
            if (i + 1 == h.bucketCount())
                std::cout << ">" << formatFixed(
                    100.0 * h.upperBounds().back(), 1);
            else
                std::cout << "<=" << formatFixed(100.0 * bound, 1);
            std::cout << "pt:" << h.countInBucket(i);
        }
        std::cout << "\n";
    };
    std::cout << "\nspread distribution (knobs per bucket, "
                 "percentage points of peak reduction):\n";
    print_hist("  fixed wax: ", spreadHistogram(rows, false));
    print_hist("  re-opt:    ", spreadHistogram(rows, true));

    std::cout << "\nreading: with the wax held FIXED, the thermal "
                 "knobs (plume, airflow, melting point)\nswing the "
                 "result hard - they shift the wax-bay temperature "
                 "relative to the melting\npoint, i.e. they "
                 "de-tune the deployment.  Re-optimizing the "
                 "melting point on the\nperturbed substrate (the "
                 "operator's real move) restores nearly the full "
                 "benefit:\nthe *conclusion* is calibration-"
                 "robust, the *tuning* is calibration-dependent.\n";
    return 0;
}
