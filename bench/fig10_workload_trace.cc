/**
 * @file
 * Regenerates Figure 10: the two-day datacenter load trace
 * (Orkut, Search, FBmr/MapReduce, and total), normalized to 50 %
 * average and 95 % peak as in the paper.
 */

#include <iostream>

#include "util/table.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"

int
main()
{
    using namespace tts;
    using namespace tts::workload;

    auto trace = makeGoogleTrace();

    std::cout << "=== Figure 10: normalized two-day datacenter "
                 "load ===\n\n";
    std::cout << "trace statistics: mean = "
              << formatFixed(100.0 * trace.mean(), 1)
              << " %  peak = "
              << formatFixed(100.0 * trace.peak(), 1)
              << " %   (paper: 50 % average, 95 % peak)\n\n";

    AsciiTable t({"t (h)", "Orkut", "Search", "FBmr", "Total"});
    for (double h = 0.0; h <= 48.0 + 1e-9; h += 1.0) {
        double s = units::hours(h);
        t.addRow({formatFixed(h, 0),
                  formatFixed(trace.classAt(JobClass::Orkut, s), 3),
                  formatFixed(
                      trace.classAt(JobClass::WebSearch, s), 3),
                  formatFixed(
                      trace.classAt(JobClass::MapReduce, s), 3),
                  formatFixed(trace.totalAt(s), 3)});
    }
    t.print(std::cout);

    std::cout << "\nshape checks:\n";
    std::cout << "  mid-day peak (14:00):   "
              << formatFixed(trace.totalAt(units::hours(14.0)), 2)
              << "\n";
    std::cout << "  pre-dawn trough (04:00): "
              << formatFixed(trace.totalAt(units::hours(4.0)), 2)
              << "\n";
    std::cout << "  time above 80 % of peak: "
              << formatFixed(units::toHours(trace.total().timeAbove(
                     0.8 * trace.peak())), 1)
              << " h over two days\n";
    return 0;
}
