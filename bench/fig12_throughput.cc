/**
 * @file
 * Regenerates Figure 12: cluster throughput in a thermally
 * constrained (oversubscribed) datacenter - ideal demand, the no-wax
 * cluster forced to downclock, and the PCM cluster that holds full
 * clocks until the wax saturates.
 *
 * Paper headline: +33 % peak throughput over 5.1 h (1U), +69 % over
 * 3.1 h (2U), +34 % over 3.1 h (Open Compute).  See EXPERIMENTS.md
 * for why this reproduction lands at lower gains (the published 2U
 * gain requires more absorbed energy than 4 l of paraffin holds
 * under a diurnal trace).
 */

#include <iostream>
#include <vector>

#include "core/throughput_study.hh"
#include "exec/parallel.hh"
#include "util/table.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"

int
main()
{
    using namespace tts;
    using namespace tts::core;

    auto trace = workload::makeGoogleTrace();
    struct PaperRef
    {
        double gain;
        double delay;
    };
    const PaperRef paper[3] = {{33.0, 5.1}, {69.0, 3.1},
                               {34.0, 3.1}};
    int idx = 0;

    // The three constrained-throughput studies are independent; fan
    // them out (TTS_THREADS) and print in platform order.
    std::vector<server::ServerSpec> specs{
        server::rd330Spec(), server::x4470Spec(),
        server::openComputeSpec()};
    auto results = exec::parallel_map(
        specs, [&](const server::ServerSpec &spec) {
            ThroughputConfig opts;
            opts.coolingCapacityFraction =
                calibratedCapacityFraction(spec);
            return runThroughputStudy(spec, trace, opts);
        });

    for (const auto &spec : specs) {
        const auto &r = results[idx];

        std::cout << "=== Figure 12: " << spec.name
                  << " cluster throughput ===\n";
        std::cout << "cooling plant: "
                  << formatFixed(r.capacityW / 1e3, 0)
                  << " kW ("
                  << formatFixed(
                         100.0 * calibratedCapacityFraction(spec),
                         1)
                  << " % of full-tilt cluster heat), wax melt "
                  << formatFixed(r.meltTempC, 1) << " C\n\n";

        AsciiTable t({"t (h)", "Ideal", "No Wax", "With Wax",
                      "f no-wax (GHz)", "f wax (GHz)", "melt"});
        for (double h = 6.0; h <= 24.0 + 1e-9; h += 1.0) {
            double s = units::hours(h);
            t.addRow({formatFixed(h, 0),
                      formatFixed(r.ideal.at(s), 2),
                      formatFixed(r.noWax.at(s), 2),
                      formatFixed(r.withWax.at(s), 2),
                      formatFixed(r.noWaxFreq.at(s), 2),
                      formatFixed(r.withWaxFreq.at(s), 2),
                      formatFixed(r.waxMelt.at(s), 2)});
        }
        t.print(std::cout);

        std::cout << "\npeak throughput (normalized to no-wax "
                     "peak):\n";
        std::cout << "  ideal:    " << formatFixed(r.peakIdeal, 2)
                  << "\n";
        std::cout << "  with wax: "
                  << formatFixed(r.peakWithWax, 2) << "\n";
        std::cout << "  gain:     "
                  << formatFixed(100.0 * r.throughputGain(), 1)
                  << " %   (paper: " << paper[idx].gain << " %)\n";
        std::cout << "  thermal-limit delay: "
                  << formatFixed(r.delayHours, 1)
                  << " h   (paper: " << paper[idx].delay
                  << " h)\n";
        std::cout << "  work denied (to relocate): "
                  << formatFixed(
                         100.0 * r.deniedWorkFractionNoWax, 1)
                  << " % -> "
                  << formatFixed(
                         100.0 * r.deniedWorkFractionWithWax, 1)
                  << " % of demand with PCM\n\n";
        ++idx;
    }
    return 0;
}
