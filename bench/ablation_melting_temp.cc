/**
 * @file
 * Ablation: melting-temperature sweep (the design choice behind the
 * paper's observation that "the best wax typically begins to melt
 * when a server exceeds 75 % load").
 *
 * For each platform, sweeps the commercial-paraffin melting range
 * and reports the peak cooling-load reduction and the utilization at
 * melt onset.
 */

#include <iostream>

#include "core/melting_optimizer.hh"
#include "util/table.hh"
#include "workload/google_trace.hh"

int
main()
{
    using namespace tts;
    using namespace tts::core;

    auto trace = workload::makeGoogleTrace();

    for (auto spec : {server::rd330Spec(), server::x4470Spec(),
                      server::openComputeSpec()}) {
        MeltOptimizerOptions opts;
        opts.minC = 44.0;
        opts.maxC = 60.0;
        opts.stepC = 1.0;
        auto result = optimizeMeltingTemp(
            spec, trace, pcm::commercialParaffin(), opts);

        std::cout << "=== Melting-temperature sweep: " << spec.name
                  << " ===\n";
        AsciiTable t({"melt (C)", "peak reduction (%)",
                      "melt onset util"});
        for (const auto &pt : result.sweep) {
            t.addRow({formatFixed(pt.meltTempC, 1),
                      formatFixed(100.0 * pt.peakReduction, 2),
                      pt.meltOnsetUtilization < 0.0
                          ? std::string("never melts")
                          : formatFixed(pt.meltOnsetUtilization,
                                        2)});
        }
        t.print(std::cout);
        std::cout << "\noptimum: "
                  << formatFixed(result.meltTempC, 1) << " C with "
                  << formatFixed(100.0 * result.peakReduction, 1)
                  << " % peak reduction\n\n";
    }
    std::cout << "paper observation: the optimum wax begins "
                 "melting as servers exceed ~75 % load.\n";
    return 0;
}
