/**
 * @file
 * Regenerates Figure 7: server temperatures as airflow through each
 * server is blocked by a uniform grille, at constant (full-load)
 * power.
 *
 * Paper shapes to reproduce:
 *  (a) 1U: CPU rise < 2 C below 50 %, ~+14 C outlet at 90 %.
 *  (b) 2U: stable below ~60 %, unsafe above ~70 %.
 *  (c) Open Compute: unsafe as soon as almost any airflow is
 *      obstructed.
 */

#include <iostream>

#include "server/server_model.hh"
#include "util/table.hh"

int
main()
{
    using namespace tts;
    using namespace tts::server;

    for (auto spec : {rd330Spec(), x4470Spec(),
                      openComputeSpec(OcpLayout::Production)}) {
        std::cout << "=== Figure 7: " << spec.name
                  << " (constant full-load power) ===\n";
        AsciiTable t({"blocked (%)", "flow (m3/s)", "outlet (C)",
                      "outlet rise (C)", "CPU junction (C)",
                      "CPU rise (C)"});
        double outlet0 = 0.0, cpu0 = 0.0;
        for (int pct = 0; pct <= 90; pct += 10) {
            ServerModel m(spec);
            m.setLoad(1.0);
            m.network().airflow().setBlockage(pct / 100.0);
            m.solveSteadyState();
            if (pct == 0) {
                outlet0 = m.outletTemp();
                cpu0 = m.cpuJunctionTemp();
            }
            t.addRow({formatFixed(pct, 0),
                      formatFixed(m.network().airflow().flow(), 4),
                      formatFixed(m.outletTemp(), 1),
                      formatFixed(m.outletTemp() - outlet0, 1),
                      formatFixed(m.cpuJunctionTemp(), 1),
                      formatFixed(m.cpuJunctionTemp() - cpu0, 1)});
        }
        t.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "paper reference points: 1U outlet +14 C at 90 %;"
                 " 2U safe below 60 %, unsafe above 70 %\n"
                 "(its 69 % wax boxes raise temps < 6 C); Open "
                 "Compute rises steeply at any blockage.\n";
    return 0;
}
