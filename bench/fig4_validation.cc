/**
 * @file
 * Regenerates Figure 4: validation of the coarse (Icepak-like)
 * server model against the high-fidelity reference standing in for
 * the real Lenovo RD330 with 90 ml of wax.
 *
 *   (a) transient traces while heating up,
 *   (b) transient traces while cooling down,
 *   (c) loaded steady-state comparison (the paper reports a mean
 *       difference of 0.22 C).
 *
 * Also prints the Section 3 scalar checks: wall power 90 -> 185 W
 * and package temperature 42 -> 76 C.
 */

#include <iostream>

#include "core/validation.hh"
#include "util/table.hh"
#include "util/units.hh"

int
main()
{
    using namespace tts;
    using namespace tts::core;

    ValidationResult r = runValidation();

    std::cout << "=== Section 3 scalar checks ===\n";
    std::cout << "wall power idle/load:   "
              << formatFixed(r.idleWallW, 1) << " / "
              << formatFixed(r.loadWallW, 1)
              << " W   (paper: 90 / 185 W)\n";
    std::cout << "package temp idle/load: "
              << formatFixed(r.idlePackageC, 1) << " / "
              << formatFixed(r.loadPackageC, 1)
              << " C   (paper: 42 / 76 C)\n\n";

    auto print_trace = [&](const char *title, double from_h,
                           double to_h, double step_h) {
        std::cout << title << "\n";
        AsciiTable t({"t (h)", "Real Wax", "Real Placebo",
                      "Icepak Wax", "Icepak Placebo", "melt"});
        for (double h = from_h; h <= to_h + 1e-9; h += step_h) {
            double s = units::hours(h);
            t.addRow({formatFixed(h, 1),
                      formatFixed(r.realWax.at(s), 2),
                      formatFixed(r.realPlacebo.at(s), 2),
                      formatFixed(r.modelWax.at(s), 2),
                      formatFixed(r.modelPlacebo.at(s), 2),
                      formatFixed(r.modelMelt.at(s), 2)});
        }
        t.print(std::cout);
        std::cout << "\n";
    };

    std::cout << "=== Figure 4 (a): heating up (1 h idle, then "
                 "full load) ===\n";
    print_trace("temperatures near the wax box (C):", 0.0, 6.0,
                0.5);

    std::cout << "=== Figure 4 (b): cooling down (load off at "
                 "t = 13 h) ===\n";
    print_trace("temperatures near the wax box (C):", 12.5, 18.0,
                0.5);

    std::cout << "=== Figure 4 (c): loaded steady state (hours "
                 "6-12 of the load phase) ===\n";
    std::cout << "mean |real - model| near the box, wax:     "
              << formatFixed(r.steadyStateMeanDiffC, 2)
              << " C   (paper: 0.22 C)\n";
    std::cout << "mean |real - model| near the box, placebo: "
              << formatFixed(r.steadyStatePlaceboDiffC, 2)
              << " C\n";
    std::cout << "full-trace correlation (wax):              "
              << formatFixed(r.traceCorrelation, 4) << "\n\n";

    std::cout << "wax effect windows on the reference server:\n";
    std::cout << "  cooler than placebo while melting:  "
              << formatFixed(r.waxCoolingEffectHours, 1)
              << " h  (paper: ~2 h)\n";
    std::cout << "  warmer than placebo while freezing: "
              << formatFixed(r.waxWarmingEffectHours, 1)
              << " h  (paper: ~2 h)\n";
    return 0;
}
