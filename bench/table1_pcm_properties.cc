/**
 * @file
 * Regenerates Table 1 (properties of common solid-liquid PCMs) and
 * the Section 2.1 cost comparison between eicosane and commercial
 * grade paraffin.
 */

#include <iostream>

#include "pcm/cost.hh"
#include "pcm/material.hh"
#include "util/table.hh"

int
main()
{
    using namespace tts;
    using namespace tts::pcm;

    std::cout << "=== Table 1: Properties of common solid-liquid "
                 "PCMs ===\n\n";
    AsciiTable t({"PCM", "Melting Temp (C)", "Heat of Fusion (J/g)",
                  "Density (g/ml)", "PCM Stability",
                  "E. Conductivity", "Corrosive?",
                  "Suitable for DC?"});
    for (const auto &m : table1Families()) {
        t.addRow({m.name,
                  formatFixed(m.meltingTempMinC, 0) + "-" +
                      formatFixed(m.meltingTempMaxC, 0),
                  formatFixed(m.heatOfFusionJPerG, 0),
                  formatFixed(m.densitySolidGPerMl, 2) + "-" +
                      formatFixed(m.densityLiquidGPerMl, 2),
                  toString(m.stability),
                  toString(m.conductivity),
                  m.corrosive ? "Yes" : "No",
                  suitableForDatacenter(m) ? "yes" : "no"});
    }
    t.print(std::cout);

    std::cout << "\n=== Section 2.1: wax pricing (eicosane vs. "
                 "commercial paraffin) ===\n\n";
    auto eico = eicosane();
    auto comm = commercialParaffin();
    AsciiTable c({"Material", "Price ($/ton)", "Fusion (J/g)",
                  "Melting (C)"});
    c.addRow({eico.name, formatFixed(eico.pricePerTonUsd, 0),
              formatFixed(eico.heatOfFusionJPerG, 0),
              formatFixed(eico.meltingTempMinC, 1)});
    c.addRow({comm.name, formatFixed(comm.pricePerTonUsd, 0),
              formatFixed(comm.heatOfFusionJPerG, 0),
              formatFixed(comm.meltingTempMinC, 0) + "-" +
                  formatFixed(comm.meltingTempMaxC, 0)});
    c.print(std::cout);

    std::cout << "\nprice ratio (eicosane / commercial): "
              << formatFixed(priceRatio(eico, comm), 1)
              << "x   (paper: ~50x)\n";
    std::cout << "fusion deficit of commercial vs eicosane: "
              << formatFixed(100.0 * fusionDeficit(eico, comm), 0)
              << " %  (paper: ~20 % lower energy per gram)\n\n";

    // "Even in a relatively small datacenter the cost of equipping
    // every server with eicosane would be over a million dollars."
    const std::size_t servers = 20000;
    const double liters = 1.2;
    auto e_cost = fleetWaxCost(eico, liters, servers, 0.0);
    auto c_cost = fleetWaxCost(comm, liters, servers, 0.0);
    std::cout << "fleet wax cost, " << servers << " servers x "
              << liters << " l:\n";
    std::cout << "  eicosane:            $"
              << formatFixed(e_cost.totalCost / 1e6, 2)
              << " M  (paper: over $1M)\n";
    std::cout << "  commercial paraffin: $"
              << formatFixed(c_cost.totalCost / 1e3, 1) << " k\n";

    std::cout << "\nranked for datacenter deployment "
                 "(suitability, then J/$):\n";
    auto ranked = rankForDatacenter(
        {eico, comm, table1Families()[0], table1Families()[1],
         table1Families()[2]});
    int rank = 1;
    for (const auto &m : ranked)
        std::cout << "  " << rank++ << ". " << m.name << "\n";
    std::cout << "\nconclusion: commercial grade paraffin "
                 "(matches the paper's selection)\n";
    return 0;
}
