/**
 * @file
 * Ablation: container count (air-contact surface area) vs. peak
 * cooling reduction at fixed charge volume.
 *
 * The paper notes that the expensive metal-mesh conductivity
 * enhancement of the computational-sprinting work is unnecessary at
 * datacenter timescales because "the melting speed can be
 * sufficiently improved by placing the paraffin in multiple
 * containers to maximize surface area".  This sweep quantifies that
 * design choice - and its limit: over-coupling melts the charge too
 * early and wastes it before the peak.
 */

#include <iostream>

#include "core/cooling_study.hh"
#include "util/table.hh"
#include "workload/google_trace.hh"

int
main()
{
    using namespace tts;
    using namespace tts::core;

    auto trace = workload::makeGoogleTrace();
    auto spec = server::x4470Spec();

    datacenter::ClusterRunOptions run;
    datacenter::Cluster base_cluster(spec,
                                     server::WaxConfig::none());
    auto baseline = base_cluster.run(trace, run);

    std::cout << "=== Container-count sweep: " << spec.name
              << ", " << spec.waxLiters << " l at "
              << formatFixed(spec.defaultMeltTempC, 1)
              << " C ===\n";
    AsciiTable t({"boxes", "surface (m2)", "UA proxy (W/K)",
                  "peak reduction (%)"});
    for (std::size_t boxes : {2, 4, 6, 10, 16, 24}) {
        server::WaxConfig cfg = server::WaxConfig::custom(
            spec.waxLiters, spec.defaultMeltTempC, boxes);
        datacenter::Cluster waxed(spec, cfg);
        auto rep_wax = waxed.representative().wax();
        double area = rep_wax->bank().surfaceArea();
        double ua = rep_wax->bank().conductanceAt(1.0);
        auto r = waxed.run(trace, run);
        double red = (baseline.peakCoolingLoad() -
                      r.peakCoolingLoad()) /
            baseline.peakCoolingLoad();
        t.addRow({formatFixed(static_cast<double>(boxes), 0),
                  formatFixed(area, 2), formatFixed(ua, 1),
                  formatFixed(100.0 * red, 2)});
    }
    t.print(std::cout);
    std::cout << "\nreading: more boxes buy surface area and "
                 "faster melting, but past the optimum the\ncharge "
                 "saturates before the daily peak and the "
                 "reduction falls again.\n";
    return 0;
}
