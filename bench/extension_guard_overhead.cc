/**
 * @file
 * Extension: cost of the numerical guard.
 *
 * The guarded advance audits energy conservation after every
 * interval by integrating an extra accumulator entry alongside the
 * node enthalpies.  That buys NaN containment and step-retry for an
 * O(1/n) marginal cost per node - this bench pins the actual number
 * on a full wax-bearing server transient (budget: < 2 % overhead),
 * and times the checkpoint save/parse round trip that the resumable
 * studies lean on.
 */

#include <chrono>
#include <iostream>
#include <string>

#include "guard/checkpoint.hh"
#include "guard/numerics.hh"
#include "server/server_model.hh"
#include "server/server_spec.hh"
#include "util/table.hh"
#include "workload/dcsim.hh"

namespace {

using Clock = std::chrono::steady_clock;

double
millisSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     t0)
        .count();
}

/** One diurnal-ish transient: 4 h of load swings at 1 s steps. */
double
runTransient(tts::server::ServerModel &m)
{
    Clock::time_point t0 = Clock::now();
    for (int minute = 0; minute < 240; ++minute) {
        double phase = static_cast<double>(minute % 60) / 60.0;
        m.setLoad(0.35 + 0.55 * phase);
        m.advance(60.0, 1.0);
    }
    return millisSince(t0);
}

double
timeArm(bool guarded)
{
    tts::guard::GuardConfig cfg;  // Defaults.
    cfg.enabled = guarded;
    tts::server::ServerModel m(tts::server::rd330Spec(),
                               tts::server::WaxConfig::paper());
    m.network().setGuardConfig(cfg);
    m.setLoad(0.5);
    m.solveSteadyState();
    runTransient(m);  // Warm-up pass (page in, branch-train).
    double best = runTransient(m);
    for (int rep = 1; rep < 3; ++rep)
        best = std::min(best, runTransient(m));
    return best;
}

} // namespace

int
main()
{
    using namespace tts;

    std::cout << "=== Extension: numerical-guard overhead "
                 "(1U + wax, 4 h transient, 1 s steps, best of "
                 "3) ===\n\n";

    double off_ms = timeArm(false);
    double on_ms = timeArm(true);
    double overhead = (on_ms - off_ms) / off_ms * 100.0;

    AsciiTable t({"Solve", "wall (ms)", "overhead"});
    t.addRow({"unguarded", formatFixed(off_ms, 1), "-"});
    t.addRow({"guarded (audit every interval)", formatFixed(on_ms, 1),
              formatFixed(overhead, 2) + " %"});
    t.print(std::cout);

    // Guard bookkeeping for the guarded arm of one transient.
    server::ServerModel m(server::rd330Spec(),
                          server::WaxConfig::paper());
    m.setLoad(0.5);
    m.solveSteadyState();
    runTransient(m);
    const guard::GuardCounters &c = m.network().guardCounters();
    std::cout << "\nguarded arm: " << c.advances << " advances, "
              << c.audits << " audits, " << c.steps << " steps, "
              << c.sentinelTrips + c.auditTrips << " trips, worst "
              << "residual " << formatFixed(c.worstResidualJ, 6)
              << " J\n";

    // Checkpoint cost: serialize + re-parse a mid-run cluster engine.
    workload::DcSimConfig cfg;
    cfg.serverCount = 64;
    workload::WorkloadTrace trace;
    trace.append(0.0, {0.25, 0.25, 0.25});
    trace.append(3600.0, {0.25, 0.25, 0.25});
    workload::RoundRobinBalancer balancer;
    workload::ClusterSimEngine engine(cfg, &balancer, trace, nullptr);
    engine.runUntil(1800.0);

    Clock::time_point t0 = Clock::now();
    guard::CheckpointWriter w;
    engine.save(w);
    std::string doc = w.finish();
    double save_ms = millisSince(t0);

    workload::RoundRobinBalancer balancer2;
    workload::ClusterSimEngine restored(cfg, &balancer2, trace,
                                        nullptr);
    t0 = Clock::now();
    guard::CheckpointReader r(doc, "<bench>");
    restored.restore(r);
    double restore_ms = millisSince(t0);

    std::cout << "\ncheckpoint (64-server cluster, mid-run): "
              << doc.size() / 1024 << " KiB, save "
              << formatFixed(save_ms, 2) << " ms, restore "
              << formatFixed(restore_ms, 2) << " ms\n";
    return 0;
}
