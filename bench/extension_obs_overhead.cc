/**
 * @file
 * Extension: cost of the observability subsystem.
 *
 * The instrumented hot paths (thermal advance, DCSim arrivals, guard
 * bookkeeping) each pay one relaxed atomic load per TTS_OBS_* macro
 * when collection is disabled - nothing else.  This bench pins that
 * claim on a two-day faulted resilience scenario:
 *
 *  1. Calibrate the disabled check: time a tight loop of disabled
 *     macro invocations to get ns per check.
 *  2. Run the scenario instrumented-but-disabled (the shipping
 *     configuration) and then enabled, reporting both wall times.
 *  3. Count how many emissions the enabled run actually performed;
 *     the projected disabled cost is count * ns-per-check, and the
 *     bench FAILS (exit 1) if that exceeds 2 % of the disabled wall
 *     time.  Projection makes the gate robust on noisy CI boxes
 *     where a direct sub-2 % wall-clock delta would be unmeasurable.
 *
 * The enabled-vs-disabled delta is printed for reference but not
 * gated: it includes the cost of *collection* (buffering, registry
 * updates), which users opt into with --metrics/--trace.
 */

#include <chrono>
#include <cstdint>
#include <iostream>

#include "core/resilience_study.hh"
#include "fault/fault_schedule.hh"
#include "obs/obs.hh"
#include "server/server_spec.hh"
#include "util/table.hh"

namespace {

using Clock = std::chrono::steady_clock;
using tts::formatFixed;

double
millisSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     t0)
        .count();
}

/** Two simulated days of partial cooling loss with sensor drift. */
tts::core::ResilienceScenario
scenario()
{
    tts::core::ResilienceScenario s;
    s.name = "obs_overhead";
    s.faults.add(3600.0, tts::fault::FaultKind::CoolingTrip,
                 tts::fault::FaultEvent::noTarget, 0.4);
    s.faults.add(4.0 * 3600.0, tts::fault::FaultKind::SensorDrift,
                 tts::fault::FaultEvent::noTarget, -1.5);
    s.faults.add(8.0 * 3600.0, tts::fault::FaultKind::CoolingRestore,
                 tts::fault::FaultEvent::noTarget, 0.4);
    s.utilization = 0.6;
    s.horizonS = 48.0 * 3600.0;
    return s;
}

tts::core::ResilienceConfig
options()
{
    tts::core::ResilienceConfig opt;
    // Small cluster sample and a coarse step keep the two-day run
    // benchable; the instrumentation density per step is unchanged.
    opt.cluster.serverCount = 8;
    opt.cluster.slotsPerServer = 4;
    opt.stepS = 30.0;
    return opt;
}

/** One full scenario run; obs state (enabled/disabled) is ambient. */
double
timeRun()
{
    Clock::time_point t0 = Clock::now();
    auto r = tts::core::runResilienceStudy(tts::server::rd330Spec(),
                                           scenario(), options());
    if (r.noWax.rideThroughS <= 0.0)
        std::abort(); // Keep the run observable to the optimizer.
    return millisSince(t0);
}

/** @return ns per disabled TTS_OBS_* check (macro + atomic load). */
double
calibrateDisabledCheck()
{
    tts::obs::Counter &c =
        tts::obs::registry().counter("bench.obs.calibration");
    constexpr std::uint64_t kIters = 20'000'000;
    Clock::time_point t0 = Clock::now();
    for (std::uint64_t i = 0; i < kIters; ++i)
        TTS_OBS_COUNT(c, 1);
    double ms = millisSince(t0);
    if (c.value() != 0)
        std::abort(); // Collection must have been disabled.
    return ms * 1e6 / static_cast<double>(kIters);
}

} // namespace

int
main()
{
    using namespace tts;

    std::cout << "=== Extension: observability overhead (1U, "
                 "2-day faulted resilience run) ===\n\n";

    obs::setEnabled(false);
    obs::resetForTest();
    double ns_per_check = calibrateDisabledCheck();

    // Instrumented-but-disabled: warm-up, then best of 2.
    timeRun();
    double off_ms = std::min(timeRun(), timeRun());
    if (!obs::drainEvents().empty()) {
        std::cout << "FAIL: disabled run emitted trace events\n";
        return 1;
    }
    for (const auto &[key, value] : obs::registry().snapshot()) {
        if (value != 0.0) {
            std::cout << "FAIL: disabled run touched metric " << key
                      << "\n";
            return 1;
        }
    }

    // Enabled: same run with every sink live.
    obs::setEnabled(true);
    obs::resetForTest();
    double on_ms = timeRun();
    obs::setEnabled(false);

    // How much instrumentation did the run actually cross?  Every
    // trace event, metric mutation call, and profile scope was one
    // enabled check; the same sites cost one *disabled* check each
    // in the shipping configuration.  (metricUpdates() counts calls,
    // not counter values - a batched add(n) is one check, not n.)
    std::uint64_t touches =
        obs::drainEvents().size() + obs::metricUpdates();
    for (const auto &[phase, stat] : obs::profileSnapshot()) {
        (void)phase;
        touches += stat.calls;
    }
    obs::resetForTest();

    double projected_ms =
        static_cast<double>(touches) * ns_per_check * 1e-6;
    double projected_pct = projected_ms / off_ms * 100.0;
    double measured_pct = (on_ms - off_ms) / off_ms * 100.0;

    AsciiTable t({"Configuration", "wall (ms)", "vs disabled"});
    t.addRow({"instrumented, disabled", formatFixed(off_ms, 1),
              "-"});
    t.addRow({"instrumented, enabled", formatFixed(on_ms, 1),
              formatFixed(measured_pct, 2) + " %"});
    t.print(std::cout);

    std::cout << "\ndisabled check: "
              << formatFixed(ns_per_check, 3) << " ns; "
              << touches << " instrumentation touches; projected "
              << "disabled overhead "
              << formatFixed(projected_ms, 3) << " ms ("
              << formatFixed(projected_pct, 4) << " % of run)\n";

    if (projected_pct > 2.0) {
        std::cout << "FAIL: projected disabled overhead exceeds "
                     "the 2 % budget\n";
        return 1;
    }
    std::cout << "PASS: disabled overhead within the 2 % budget\n";
    return 0;
}
