/**
 * @file
 * Regenerates the Section 5.2 headline: TCO efficiency improvement
 * from the PCM throughput increase in a thermally constrained
 * 10 MW datacenter.
 *
 * Paper: 23 % (1U), 39 % (2U), 24 % (Open Compute) at its Figure 12
 * gains of 33 / 69 / 34 %.  We print both the efficiency at our
 * measured gains and at the paper's published gains (the latter
 * isolates the Equation-1 economics from the thermal model).
 */

#include <iostream>
#include <vector>

#include "core/throughput_study.hh"
#include "datacenter/datacenter.hh"
#include "exec/parallel.hh"
#include "tco/model.hh"
#include "util/table.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"

int
main()
{
    using namespace tts;
    using namespace tts::core;

    auto trace = workload::makeGoogleTrace();
    const double paper_gain[3] = {0.33, 0.69, 0.34};
    const double paper_eff[3] = {23.0, 39.0, 24.0};
    int idx = 0;

    std::cout << "=== Section 5.2 headline: TCO efficiency in the "
                 "constrained 10 MW facility ===\n\n";
    AsciiTable t({"Platform", "measured gain (%)",
                  "TCO eff. @ measured (%)",
                  "TCO eff. @ paper gain (%)", "paper (%)"});

    // The three constrained studies fan out (TTS_THREADS); the
    // Equation-1 economics below are cheap and stay serial.
    std::vector<server::ServerSpec> specs{
        server::rd330Spec(), server::x4470Spec(),
        server::openComputeSpec()};
    auto results = exec::parallel_map(
        specs, [&](const server::ServerSpec &spec) {
            ThroughputConfig opts;
            opts.coolingCapacityFraction =
                calibratedCapacityFraction(spec);
            return runThroughputStudy(spec, trace, opts);
        });

    for (const auto &spec : specs) {
        const auto &r = results[idx];

        datacenter::Datacenter dc(spec);
        tco::TcoModel model(tco::parametersFor(spec));
        double eff_measured = model.tcoEfficiencyGain(
            units::toKW(10.0e6), dc.serverCount(),
            r.throughputGain());
        double eff_paper = model.tcoEfficiencyGain(
            units::toKW(10.0e6), dc.serverCount(),
            paper_gain[idx]);

        t.addRow({spec.name,
                  formatFixed(100.0 * r.throughputGain(), 1),
                  formatFixed(100.0 * eff_measured, 1),
                  formatFixed(100.0 * eff_paper, 1),
                  formatFixed(paper_eff[idx], 0)});
        ++idx;
    }
    t.print(std::cout);

    std::cout << "\nreading: the Equation-1 economics reproduce "
                 "the paper's efficiency numbers when fed\n"
                 "the paper's gains; the measured-gain column "
                 "inherits the thermal model's smaller\n"
                 "Figure 12 gains (see EXPERIMENTS.md).\n";
    return 0;
}
