/**
 * @file
 * Performance gate for tts::fleet: the paper's 10 MW facility
 * (~40k servers) over a two-day diurnal trace.
 *
 * Three lanes:
 *
 *  1. The full warehouse transient at 1 thread and at 8 threads;
 *     their state digests and series must be bit-identical
 *     (fleet_identical) and the wall clock must stay under the
 *     --max-wall budget.
 *  2. A small homogeneous fleet integrated twice - archetype dedupe
 *     on vs the naive every-row-private path - compared on logical
 *     server-steps per second (dedupe_speedup, gated by
 *     --min-dedupe-speedup).
 *
 * Emits flat kv-json on stdout after the human-readable table (and,
 * with --out=FILE, to the file CI tracks as BENCH_fleet.json):
 *
 *     {"servers": ..., "days": ..., "wall_s": ..., "wall_8t_s": ...,
 *      "fleet_identical": 1, "materialized_rows": ...,
 *      "dedupe_factor": ..., "dedupe_speedup": ...,
 *      "naive_steps_per_s": ..., "dedupe_steps_per_s": ...}
 *
 * Exit code 0 only when the identity and speedup gates both hold.
 * --short shrinks every lane for the ctest perf smoke.
 */

#include <chrono>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>

#include "exec/parallel.hh"
#include "fleet/fleet.hh"
#include "server/server_spec.hh"
#include "util/cli.hh"
#include "util/kv_json.hh"
#include "util/table.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"

int
main(int argc, char **argv)
{
    using namespace tts;
    using Clock = std::chrono::steady_clock;

    std::string out_file;
    std::size_t servers = 40320;
    double days = 2.0;
    double max_wall_s = 600.0;
    double min_dedupe_speedup = 10.0;
    bool short_run = false;

    cli::Parser p("perf_fleet",
                  "Warehouse-scale fleet transient: wall-clock "
                  "budget, 1-vs-8-thread bit-identity, and archetype "
                  "dedupe leverage.");
    p.addString("out", &out_file,
                "also write the kv-json here (BENCH_fleet.json)");
    p.addSize("servers", &servers, "fleet population");
    p.addDouble("days", &days, "simulated horizon (days)");
    p.addDouble("max-wall", &max_wall_s,
                "wall-clock budget for one full run (s)");
    p.addDouble("min-dedupe-speedup", &min_dedupe_speedup,
                "required naive-vs-dedupe steps/s ratio");
    p.addFlag("short", &short_run,
              "shrink every lane (ctest perf smoke)");
    switch (p.parse(argc - 1, argv + 1)) {
      case cli::Status::Help:
        std::fputs(p.helpText().c_str(), stdout);
        return 0;
      case cli::Status::Error:
        std::fprintf(stderr, "%s\n", p.error().c_str());
        return 2;
      case cli::Status::Ok:
        break;
    }
    if (short_run) {
        servers = 4096;
        days = 0.25;
    }

    workload::GoogleTraceParams tp;
    tp.durationS = units::days(days);
    auto trace = workload::makeGoogleTrace(tp);
    auto spec = server::rd330Spec();

    fleet::FleetConfig cfg;
    cfg.run.serverCount = servers;
    cfg.durationS = units::days(days);
    cfg.controlIntervalS = 300.0;
    cfg.thermalStepS = 15.0;
    cfg.mixedPlatforms = true;
    // A handful of events per thousand server-days keeps the
    // materialized-row population warehouse-realistic (hundreds of
    // divergent servers) without drowning the dedupe leverage.
    cfg.perturb.eventsPerServerDay = 0.01;

    auto timed_run = [&](std::size_t threads) {
        exec::setGlobalThreads(threads);
        fleet::FleetSim sim(spec, trace, cfg);
        auto t0 = Clock::now();
        sim.run();
        auto t1 = Clock::now();
        exec::setGlobalThreads(1);
        return std::make_pair(
            sim.take(),
            std::chrono::duration<double>(t1 - t0).count());
    };

    auto [serial, wall_s] = timed_run(1);
    auto [wide, wall_8t_s] = timed_run(8);

    bool identical =
        serial.stateDigest == wide.stateDigest &&
        serial.coolingLoadW.values() == wide.coolingLoadW.values() &&
        serial.itPowerW.values() == wide.itPowerW.values() &&
        serial.coolingEnergyJ == wide.coolingEnergyJ;

    // Dedupe leverage lane: a fleet small enough that the naive
    // every-row path is affordable, compared on logical server-steps
    // per second of wall clock.
    fleet::FleetConfig small = cfg;
    small.run.serverCount = short_run ? 64 : 256;
    small.durationS = units::hours(short_run ? 1.0 : 4.0);
    small.mixedPlatforms = false;
    small.perturb.eventsPerServerDay = 0.0;

    auto rate_of = [&](bool dedupe) {
        fleet::FleetConfig c = small;
        c.dedupe = dedupe;
        fleet::FleetSim sim(spec, trace, c);
        auto t0 = Clock::now();
        sim.run();
        auto t1 = Clock::now();
        double s = std::chrono::duration<double>(t1 - t0).count();
        fleet::FleetResult r = sim.take();
        return std::make_pair(
            static_cast<double>(r.serverSteps) / s, r);
    };

    auto [naive_rate, naive_r] = rate_of(false);
    auto [dedupe_rate, dedupe_r] = rate_of(true);
    double dedupe_speedup = dedupe_rate / naive_rate;
    bool states_match = dedupe_r.stateDigest == naive_r.stateDigest;

    std::cout << "=== tts::fleet: " << servers << " servers, "
              << formatFixed(days, 2) << "-day trace ===\n\n";
    AsciiTable t({"lane", "threads", "wall (s)", "digest"});
    char digest[32];
    std::snprintf(digest, sizeof digest, "%016llx",
                  static_cast<unsigned long long>(serial.stateDigest));
    t.addRow({"fleet", "1", formatFixed(wall_s, 2), digest});
    std::snprintf(digest, sizeof digest, "%016llx",
                  static_cast<unsigned long long>(wide.stateDigest));
    t.addRow({"fleet", "8", formatFixed(wall_8t_s, 2), digest});
    t.print(std::cout);
    std::cout << "\nbit-identical 1t vs 8t:  "
              << (identical ? "yes" : "NO") << "\n";
    std::cout << "materialized rows:       "
              << serial.materializedRows << " / " << servers << "\n";
    std::cout << "dedupe factor (full):    "
              << formatFixed(serial.dedupeFactor(), 1) << "x\n";
    std::cout << "dedupe vs naive rate:    "
              << formatFixed(dedupe_speedup, 1) << "x ("
              << formatFixed(dedupe_rate / 1e6, 2) << "M vs "
              << formatFixed(naive_rate / 1e6, 2)
              << "M server-steps/s, states "
              << (states_match ? "match" : "DIVERGE") << ")\n\n";

    bool wall_ok = wall_s <= max_wall_s && wall_8t_s <= max_wall_s;
    bool speedup_ok = dedupe_speedup >= min_dedupe_speedup;
    if (!wall_ok)
        std::cout << "FAIL: wall clock exceeded "
                  << formatFixed(max_wall_s, 0) << " s budget\n";
    if (!speedup_ok)
        std::cout << "FAIL: dedupe speedup below "
                  << formatFixed(min_dedupe_speedup, 1) << "x\n";
    if (!identical)
        std::cout << "FAIL: 1t and 8t runs are not bit-identical\n";
    if (!states_match)
        std::cout << "FAIL: dedupe and naive end states differ\n";

    std::map<std::string, double> json{
        {"servers", static_cast<double>(servers)},
        {"days", days},
        {"wall_s", wall_s},
        {"wall_8t_s", wall_8t_s},
        {"fleet_identical", identical ? 1.0 : 0.0},
        {"materialized_rows",
         static_cast<double>(serial.materializedRows)},
        {"dedupe_factor", serial.dedupeFactor()},
        {"dedupe_speedup", dedupe_speedup},
        {"naive_steps_per_s", naive_rate},
        {"dedupe_steps_per_s", dedupe_rate},
    };
    std::cout << writeKvJson(json);
    if (!out_file.empty())
        writeKvJsonFile(out_file, json);
    return identical && states_match && wall_ok && speedup_ok ? 0
                                                              : 1;
}
