/**
 * @file
 * Extension: a full week with a weekend dip.
 *
 * The paper evaluates two weekdays (Nov 17-18, 2010).  A production
 * deployment sees weekends, when interactive load drops and the wax
 * may not fully melt - the thermal battery must neither lose its
 * benefit on Monday nor release at the wrong time.  This bench runs
 * the 2U cluster over a 7-day trace with a 0.7x weekend and reports
 * per-day peak shaving and the daily recharge.
 */

#include <iostream>

#include "datacenter/cluster.hh"
#include "util/table.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"

int
main()
{
    using namespace tts;
    using namespace tts::datacenter;

    workload::GoogleTraceParams tp;
    tp.durationS = units::days(7.0);
    tp.startDayOfWeek = 0;  // Monday.
    tp.weekendFactor = 0.7;
    auto trace = workload::makeGoogleTrace(tp);

    auto spec = server::x4470Spec();
    Cluster base(spec, server::WaxConfig::none());
    Cluster waxed(spec, server::WaxConfig::paper());
    ClusterRunOptions run;
    auto rb = base.run(trace, run);
    auto rw = waxed.run(trace, run);

    const char *days[7] = {"Mon", "Tue", "Wed", "Thu", "Fri",
                           "Sat", "Sun"};
    std::cout << "=== Extension: 7-day trace with weekend dip, "
              << spec.name << " ===\n\n";
    AsciiTable t({"day", "base peak (kW)", "wax peak (kW)",
                  "reduction (%)", "min melt (recharged?)"});
    for (int d = 0; d < 7; ++d) {
        double t0 = units::days(d);
        double t1 = units::days(d + 1);
        double pb = 0.0, pw = 0.0, mmin = 1.0;
        for (double s = t0; s <= t1; s += 900.0) {
            pb = std::max(pb, rb.coolingLoadW.at(s));
            pw = std::max(pw, rw.coolingLoadW.at(s));
            mmin = std::min(mmin, rw.waxMeltFraction.at(s));
        }
        t.addRow({days[d], formatFixed(pb / 1e3, 1),
                  formatFixed(pw / 1e3, 1),
                  formatFixed(100.0 * (pb - pw) / pb, 1),
                  formatFixed(mmin, 2) +
                      (mmin < 0.05 ? " (yes)" : " (NO)")});
    }
    t.print(std::cout);

    std::cout << "\nweekly peak: "
              << formatFixed(rb.coolingLoadW.max() / 1e3, 1)
              << " kW -> "
              << formatFixed(rw.coolingLoadW.max() / 1e3, 1)
              << " kW  ("
              << formatFixed(
                     100.0 * (rb.coolingLoadW.max() -
                              rw.coolingLoadW.max()) /
                         rb.coolingLoadW.max(),
                     1)
              << " % - what the plant must actually be sized "
                 "for)\n";
    std::cout << "\nreading: the weekday shaving carries the "
                 "weekly peak; weekends melt less wax but\nthe "
                 "charge still recharges nightly, so Monday starts "
                 "fresh.\n";
    return 0;
}
