/**
 * @file
 * Ablation: numerical convergence of the transient solver.
 *
 * The production configuration advances the thermal network with
 * RK4 at a 5 s internal step under a 300 s control interval.  This
 * sweep re-runs the Fig 11 study across step sizes, showing the
 * headline number is converged (the reviewer's "is your dt small
 * enough?" question, answered with data).
 */

#include <iostream>

#include "datacenter/cluster.hh"
#include "util/table.hh"
#include "workload/google_trace.hh"

int
main()
{
    using namespace tts;
    using namespace tts::datacenter;

    auto spec = server::x4470Spec();
    auto trace = workload::makeGoogleTrace();

    std::cout << "=== Solver step-size sweep: " << spec.name
              << ", Fig 11 peak reduction ===\n\n";
    AsciiTable t({"control interval (s)", "thermal step (s)",
                  "peak base (kW)", "peak PCM (kW)",
                  "reduction (%)"});
    struct Grid
    {
        double control;
        double step;
    };
    for (Grid g : {Grid{900.0, 60.0}, Grid{900.0, 15.0},
                   Grid{300.0, 30.0}, Grid{300.0, 5.0},
                   Grid{300.0, 2.0}, Grid{150.0, 1.0}}) {
        ClusterRunOptions run;
        run.controlIntervalS = g.control;
        run.thermalStepS = g.step;
        Cluster base(spec, server::WaxConfig::none());
        Cluster waxed(spec, server::WaxConfig::paper());
        double pb = base.run(trace, run).peakCoolingLoad();
        double pw = waxed.run(trace, run).peakCoolingLoad();
        t.addRow({formatFixed(g.control, 0),
                  formatFixed(g.step, 0),
                  formatFixed(pb / 1e3, 2),
                  formatFixed(pw / 1e3, 2),
                  formatFixed(100.0 * (pb - pw) / pb, 2)});
    }
    t.print(std::cout);
    std::cout << "\nreading: the production grid (300 s control, "
                 "5 s RK4) agrees with a 4x finer grid\nto well "
                 "under a tenth of a point - the reported "
                 "reductions are solver-converged.\n";
    return 0;
}
