/**
 * @file
 * Extension: thermal/electrical storage portfolio comparison.
 *
 * Section 6 of the paper argues (qualitatively) that in-server PCM
 * is (a) complementary to UPS batteries, which flatten the
 * *electrical* peak, and (b) preferable to chilled-water TES, which
 * needs pumps, floor space and standby cooling.  This bench puts
 * numbers on both claims for a 2U cluster over the two-day trace:
 *
 *  1. PCM vs. a chilled-water tank sized to the same stored energy,
 *     shaving the same cluster cooling load;
 *  2. the battery flattening the IT draw while the PCM flattens the
 *     cooling load, showing the stacked facility-level peak cut.
 */

#include <iostream>

#include "core/cooling_study.hh"
#include "datacenter/battery.hh"
#include "datacenter/chilled_water.hh"
#include "util/table.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"

int
main()
{
    using namespace tts;
    using namespace tts::datacenter;

    auto spec = server::x4470Spec();
    auto trace = workload::makeGoogleTrace();
    auto study = core::runCoolingStudy(spec, trace);

    const double pcm_energy =
        1008.0 * 0.8 * spec.waxLiters * 200.0e3;  // J, latent.
    const double pcm_reduction = study.peakReduction();
    const double base_peak = study.peakBaselineW;

    // 1. Chilled-water tank holding the same energy, same cap goal.
    ChilledWaterConfig tank_cfg;
    tank_cfg.deltaTK = 10.0;
    tank_cfg.volumeM3 = pcm_energy / (998.0 * 4186.0 * 10.0);
    tank_cfg.maxDischargeW = 0.2 * base_peak;
    tank_cfg.maxRechargeW = 0.1 * base_peak;
    tank_cfg.pumpPowerW = 0.002 * base_peak;
    ChilledWaterTank tank(tank_cfg);
    double cap = (1.0 - pcm_reduction) * base_peak;
    auto tes = tank.shave(study.baseline.coolingLoadW, cap);

    std::cout << "=== PCM vs. chilled-water TES, 2U cluster, "
                 "equal stored energy ("
              << formatFixed(pcm_energy / 1e6, 0) << " MJ) ===\n\n";
    AsciiTable t({"approach", "peak reduction (%)",
                  "pump energy (kWh/2d)", "standby loss (kWh/2d)",
                  "floor space", "power/control"});
    t.addRow({"in-server PCM",
              formatFixed(100.0 * pcm_reduction, 1), "0", "0",
              "none (inside servers)", "fully passive"});
    t.addRow({"chilled-water tank (" +
                  formatFixed(tank_cfg.volumeM3, 1) + " m3)",
              formatFixed(100.0 * tes.peakReduction(), 1),
              formatFixed(units::toKWh(tes.pumpEnergyJ), 1),
              formatFixed(units::toKWh(tes.standbyLossJ), 1),
              "outdoor tank + piping", "pumps + controls"});
    t.print(std::cout);

    // 2. Battery + PCM stacking at the facility level.
    //    Facility power = IT wall power + cooling electric power.
    const double cop = 3.5;
    auto facility = [&](const TimeSeries &cooling,
                        const TimeSeries &it) {
        return TimeSeries::combine(
            it, cooling,
            [](double a, double b) { return a + b / 3.5; },
            "facility_w");
    };
    (void)cop;
    auto fac_none = facility(study.baseline.coolingLoadW,
                             study.baseline.itPowerW);
    auto fac_pcm = facility(study.withWax.coolingLoadW,
                            study.withWax.itPowerW);

    // Battery sized like the paper's distributed-UPS work: ~2 min
    // of peak power usable.
    BatteryConfig bat;
    bat.maxDischargeW = 0.15 * fac_pcm.max();
    bat.maxChargeW = 0.05 * fac_pcm.max();
    bat.energyCapacityJ = bat.maxDischargeW * 3600.0;  // 1 h at max.
    double bat_cap = 0.93 * fac_pcm.max();

    BatteryBank bank_alone(bat);
    auto shave_alone = bank_alone.shave(fac_none, 0.93 *
                                        fac_none.max());
    BatteryBank bank_stacked(bat);
    auto shave_stacked = bank_stacked.shave(fac_pcm, bat_cap);

    std::cout << "\n=== Facility-level peak power (IT + cooling "
                 "electric), 2U cluster ===\n\n";
    AsciiTable f({"configuration", "peak facility power (kW)",
                  "vs. baseline (%)"});
    double p0 = fac_none.max();
    f.addRow({"no storage", formatFixed(p0 / 1e3, 1), "-"});
    f.addRow({"PCM only", formatFixed(fac_pcm.max() / 1e3, 1),
              formatFixed(100.0 * (1.0 - fac_pcm.max() / p0), 1)});
    f.addRow({"battery only",
              formatFixed(shave_alone.peakGridW / 1e3, 1),
              formatFixed(
                  100.0 * (1.0 - shave_alone.peakGridW / p0), 1)});
    f.addRow({"PCM + battery",
              formatFixed(shave_stacked.peakGridW / 1e3, 1),
              formatFixed(
                  100.0 * (1.0 - shave_stacked.peakGridW / p0),
                  1)});
    f.print(std::cout);

    std::cout << "\nreading: the two storages attack different "
                 "peaks (thermal vs. electrical) and stack -\n"
                 "the paper's Section 6 complementarity claim, "
                 "quantified.\n";
    return 0;
}
