/**
 * @file
 * Ablation: cold-aisle inlet temperature vs. the optimal melting
 * point.
 *
 * Section 2.1: "the best melting temperature must be determined
 * based upon ambient temperatures where the PCM is located".  This
 * sweep raises the cold-aisle setpoint across the ASHRAE range and
 * re-optimizes the wax, showing the ~1:1 tracking between setpoint
 * and optimal melting point and the stability of the achievable
 * reduction.
 */

#include <iostream>

#include "core/melting_optimizer.hh"
#include "util/table.hh"
#include "workload/google_trace.hh"

int
main()
{
    using namespace tts;
    using namespace tts::core;

    auto trace = workload::makeGoogleTrace();

    std::cout << "=== Inlet-temperature sweep: 1U platform, "
                 "re-optimized wax per setpoint ===\n\n";
    AsciiTable t({"inlet (C)", "best melt (C)",
                  "melt - inlet (C)", "peak reduction (%)"});
    for (double inlet : {20.0, 22.0, 25.0, 28.0, 32.0}) {
        auto spec = server::rd330Spec();
        spec.inletTempC = inlet;
        MeltOptimizerOptions opts;
        opts.minC = 40.0;
        opts.maxC = 60.0;
        opts.stepC = 1.0;
        auto r = optimizeMeltingTemp(
            spec, trace, pcm::commercialParaffin(), opts);
        t.addRow({formatFixed(inlet, 0),
                  formatFixed(r.meltTempC, 1),
                  formatFixed(r.meltTempC - inlet, 1),
                  formatFixed(100.0 * r.peakReduction, 2)});
    }
    t.print(std::cout);

    std::cout << "\nreading: the optimal melting point tracks the "
                 "inlet setpoint nearly 1:1 (the whole\nthermal "
                 "stack is affine in the inlet temperature), and "
                 "the achievable reduction is\nsetpoint-"
                 "independent - until the optimum would exceed the "
                 "60 C ceiling of commercial\nparaffin blends at "
                 "very warm aisles.\n";
    return 0;
}
