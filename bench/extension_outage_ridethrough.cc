/**
 * @file
 * Extension: cooling-failure ride-through.
 *
 * The paper's related work cites thermal storage as emergency
 * datacenter cooling (Garday & Housley).  This bench quantifies the
 * passive in-server variant: the plant trips at 75 % utilization,
 * the room heats, the servers breathe the room air, and the wax
 * buys minutes before the ASHRAE inlet limit forces a shutdown.
 */

#include <iostream>

#include "core/outage_study.hh"
#include "util/table.hh"
#include "util/units.hh"

int
main()
{
    using namespace tts;
    using namespace tts::core;

    std::cout << "=== Extension: cooling outage ride-through "
                 "(1008 servers, 75 % load, plant trips at "
                 "t = 0) ===\n\n";
    AsciiTable t({"Platform", "no wax (min)", "with wax (min)",
                  "extra (min)", "wax melted at limit"});

    for (auto spec : {server::rd330Spec(), server::x4470Spec(),
                      server::openComputeSpec()}) {
        OutageConfig opts;
        auto r = runOutageStudy(spec, opts);
        t.addRow({spec.name,
                  formatFixed(r.noWax.rideThroughS / 60.0, 1),
                  formatFixed(r.withWax.rideThroughS / 60.0, 1),
                  formatFixed(r.extraRideThroughS() / 60.0, 1),
                  formatFixed(r.withWax.waxMelt.values().back(),
                              2)});
    }
    t.print(std::cout);

    // One detailed trajectory.
    OutageConfig opts;
    auto r = runOutageStudy(server::rd330Spec(), opts);
    std::cout << "\nroom-air trajectory, 1U platform:\n";
    AsciiTable tr({"t (min)", "room air no-wax (C)",
                   "room air wax (C)", "wax melt"});
    double horizon = std::max(r.noWax.rideThroughS,
                              r.withWax.rideThroughS);
    for (double m = 0.0; m <= horizon / 60.0 + 1e-9;
         m += horizon / 60.0 / 10.0) {
        double s = m * 60.0;
        tr.addRow({formatFixed(m, 0),
                   formatFixed(r.noWax.roomAirC.at(s), 1),
                   formatFixed(r.withWax.roomAirC.at(s), 1),
                   formatFixed(r.withWax.waxMelt.at(s), 2)});
    }
    tr.print(std::cout);
    std::cout << "\n(limit: "
              << formatFixed(opts.room.limitC, 0)
              << " C inlet air; room: "
              << formatFixed(opts.room.airVolumeM3, 0)
              << " m3 air + "
              << formatFixed(opts.room.buildingMassJPerK / 1e6, 0)
              << " MJ/K building mass)\n";
    return 0;
}
