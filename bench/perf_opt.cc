/**
 * @file
 * Performance gate for tts::opt: the pinned 2U wax-placement search
 * (48-server fleet oracle, two-day diurnal trace) at a fixed
 * evaluation budget.
 *
 * Three gates:
 *
 *  1. The full search at 1 thread and at 8 threads must return
 *     bit-identical results - best candidate, costs, counters, and
 *     the complete trace (search_identical).
 *  2. The accepted configuration must beat the paper's uniform-wax
 *     2U deployment on peak cooling load (beats_uniform_2u).
 *  3. The 1-thread wall clock must stay under --max-wall.
 *
 * Emits flat kv-json on stdout after the human-readable table (and,
 * with --out=FILE, to the file CI tracks as BENCH_opt.json):
 *
 *     {"servers": ..., "budget": ..., "wall_s": ..., "wall_8t_s": ...,
 *      "search_identical": 1, "evaluations": ..., "oracle_calls": ...,
 *      "memo_hits": ..., "memo_hit_rate": ..., "beats_uniform_2u": 1,
 *      "baseline_peak_kw": ..., "best_peak_kw": ...,
 *      "peak_reduction": ...}
 *
 * Exit code 0 only when all three gates hold.  --short shrinks the
 * fleet and budget for the ctest perf smoke.
 */

#include <chrono>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>

#include "exec/parallel.hh"
#include "opt/engine.hh"
#include "opt/space.hh"
#include "server/server_spec.hh"
#include "util/cli.hh"
#include "util/kv_json.hh"
#include "util/table.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"

int
main(int argc, char **argv)
{
    using namespace tts;
    using Clock = std::chrono::steady_clock;

    std::string out_file;
    std::size_t servers = 48;
    std::size_t budget = 96;
    std::size_t restarts = 4;
    double days = 2.0;
    double max_wall_s = 120.0;
    bool short_run = false;

    cli::Parser p("perf_opt",
                  "Fixed-budget 2U wax-placement search: wall-clock "
                  "budget, 1-vs-8-thread bit-identity, memo "
                  "leverage, and the beats-uniform gate.");
    p.addString("out", &out_file,
                "also write the kv-json here (BENCH_opt.json)");
    p.addSize("servers", &servers, "oracle fleet population");
    p.addSize("budget", &budget, "annealing evaluation budget");
    p.addSize("restarts", &restarts, "multi-start restart count");
    p.addDouble("days", &days, "simulated horizon (days)");
    p.addDouble("max-wall", &max_wall_s,
                "wall-clock budget for the 1-thread search (s)");
    p.addFlag("short", &short_run,
              "shrink the fleet and budget (ctest perf smoke)");
    switch (p.parse(argc - 1, argv + 1)) {
      case cli::Status::Help:
        std::fputs(p.helpText().c_str(), stdout);
        return 0;
      case cli::Status::Error:
        std::fprintf(stderr, "%s\n", p.error().c_str());
        return 2;
      case cli::Status::Ok:
        break;
    }
    if (short_run) {
        servers = 16;
        budget = 24;
        restarts = 2;
        days = 1.0;
    }

    workload::GoogleTraceParams tp;
    tp.durationS = units::days(days);
    auto trace = workload::makeGoogleTrace(tp);

    opt::SpaceOptions so;
    so.lockPolicy = true; // Single archetype: policy is inert.
    opt::SearchSpace space =
        opt::makeSearchSpace({server::x4470Spec()}, so);

    opt::OptOptions opts;
    opts.budget = budget;
    opts.restarts = restarts;
    opts.fleet.run.serverCount = servers;
    opts.fleet.durationS = units::days(days);
    opts.fleet.controlIntervalS = 300.0;
    opts.fleet.thermalStepS = 60.0;

    auto timed_run = [&](std::size_t threads) {
        exec::setGlobalThreads(threads);
        auto t0 = Clock::now();
        opt::OptResult r = opt::optimizeWaxPlacement(space, trace,
                                                     opts);
        auto t1 = Clock::now();
        exec::setGlobalThreads(1);
        return std::make_pair(
            std::move(r),
            std::chrono::duration<double>(t1 - t0).count());
    };

    auto [serial, wall_s] = timed_run(1);
    auto [wide, wall_8t_s] = timed_run(8);

    bool identical = serial.best == wide.best &&
        serial.bestCost == wide.bestCost &&
        serial.baselineCost == wide.baselineCost &&
        serial.evaluations == wide.evaluations &&
        serial.oracleCalls == wide.oracleCalls &&
        serial.memoHits == wide.memoHits &&
        serial.restartBest == wide.restartBest &&
        serial.trace.size() == wide.trace.size();
    if (identical)
        for (std::size_t i = 0; i < serial.trace.size(); ++i)
            identical = identical &&
                serial.trace[i].currentCost ==
                    wide.trace[i].currentCost &&
                serial.trace[i].restartBestCost ==
                    wide.trace[i].restartBestCost;

    bool beats = serial.beatsBaseline();
    double memo_hit_rate = serial.evaluations == 0
        ? 0.0
        : static_cast<double>(serial.memoHits) /
            static_cast<double>(serial.evaluations);
    double reduction = serial.baselineCost == 0.0
        ? 0.0
        : (serial.baselineCost - serial.bestCost) /
            serial.baselineCost;

    std::cout << "=== tts::opt: 2U search, " << servers
              << " servers, budget " << budget << " ===\n\n";
    AsciiTable t({"lane", "threads", "wall (s)", "best (kW)"});
    t.addRow({"search", "1", formatFixed(wall_s, 2),
              formatFixed(serial.bestCost / 1e3, 4)});
    t.addRow({"search", "8", formatFixed(wall_8t_s, 2),
              formatFixed(wide.bestCost / 1e3, 4)});
    t.print(std::cout);
    std::cout << "\nbit-identical 1t vs 8t:  "
              << (identical ? "yes" : "NO") << "\n";
    std::cout << "baseline (paper 2U):     "
              << formatFixed(serial.baselineCost / 1e3, 4) << " kW\n";
    std::cout << "accepted configuration:  "
              << formatFixed(serial.bestCost / 1e3, 4) << " kW ("
              << formatFixed(reduction * 100.0, 2) << "% better, "
              << (beats ? "beats" : "DOES NOT beat")
              << " uniform)\n";
    std::cout << "oracle calls / evals:    " << serial.oracleCalls
              << " / " << serial.evaluations << " (memo hit rate "
              << formatFixed(memo_hit_rate * 100.0, 1) << "%)\n\n";

    bool wall_ok = wall_s <= max_wall_s;
    if (!wall_ok)
        std::cout << "FAIL: wall clock exceeded "
                  << formatFixed(max_wall_s, 0) << " s budget\n";
    if (!identical)
        std::cout << "FAIL: 1t and 8t searches are not "
                     "bit-identical\n";
    if (!beats)
        std::cout << "FAIL: search did not beat the uniform-wax 2U "
                     "baseline\n";

    std::map<std::string, double> json{
        {"servers", static_cast<double>(servers)},
        {"days", days},
        {"budget", static_cast<double>(budget)},
        {"restarts", static_cast<double>(restarts)},
        {"wall_s", wall_s},
        {"wall_8t_s", wall_8t_s},
        {"search_identical", identical ? 1.0 : 0.0},
        {"evaluations", static_cast<double>(serial.evaluations)},
        {"oracle_calls", static_cast<double>(serial.oracleCalls)},
        {"memo_hits", static_cast<double>(serial.memoHits)},
        {"memo_hit_rate", memo_hit_rate},
        {"beats_uniform_2u", beats ? 1.0 : 0.0},
        {"baseline_peak_kw", serial.baselineCost / 1e3},
        {"best_peak_kw", serial.bestCost / 1e3},
        {"peak_reduction", reduction},
    };
    std::cout << writeKvJson(json);
    if (!out_file.empty())
        writeKvJsonFile(out_file, json);
    return identical && beats && wall_ok ? 0 : 1;
}
