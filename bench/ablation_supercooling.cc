/**
 * @file
 * Ablation: PCM supercooling (nucleation hysteresis).
 *
 * Fully melted paraffin can supercool 1-3 C below its melting point
 * before nucleating.  Physically this needs a *complete* melt -
 * remaining solid acts as nuclei - which makes the cluster-level
 * answer interesting: the peak-optimal deployment (Fig 11) never
 * quite saturates its charge, so hysteresis is irrelevant there.
 * Only an over-driven deployment (melting point set low, charge
 * saturating early) ever reaches the supercooled branch, where the
 * hysteresis then delays and slows the release.
 */

#include <iostream>

#include "datacenter/cluster.hh"
#include "util/table.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"

int
main()
{
    using namespace tts;
    using namespace tts::datacenter;

    auto spec = server::x4470Spec();
    auto trace = workload::makeGoogleTrace();
    ClusterRunOptions run;

    Cluster base(spec, server::WaxConfig::none());
    auto rb = base.run(trace, run);
    double base_peak = rb.peakCoolingLoad();

    std::cout << "=== Supercooling sweep: " << spec.name << ", "
              << spec.waxLiters << " l ===\n\n";
    AsciiTable t({"melt (C)", "supercooling (C)", "max melt frac",
                  "peak reduction (%)",
                  "release @ 20:00 (kW over base)"});
    for (double melt : {54.0, 51.0}) {
        for (double sc : {0.0, 2.0, 4.0}) {
            auto cfg = server::WaxConfig::withMeltTemp(melt);
            cfg.supercoolingC = sc;
            Cluster waxed(spec, cfg);
            auto r = waxed.run(trace, run);
            double red =
                (base_peak - r.peakCoolingLoad()) / base_peak;
            double release_evening =
                (r.coolingLoadW.at(units::hours(20.0)) -
                 rb.coolingLoadW.at(units::hours(20.0))) /
                1e3;
            t.addRow({formatFixed(melt, 1), formatFixed(sc, 1),
                      formatFixed(r.waxMeltFraction.max(), 2),
                      formatFixed(100.0 * red, 2),
                      formatFixed(release_evening, 1)});
        }
    }
    t.print(std::cout);

    std::cout << "\nreading: at the optimized 54 C the charge "
                 "tops out ~93 % melted - solid nuclei\nremain, "
                 "the freezing branch never engages, and "
                 "supercooling has no effect.  At an\nover-driven "
                 "51 C the charge saturates mid-morning; "
                 "supercooling then suppresses the\nevening "
                 "release until the wax has cooled through the "
                 "hysteresis band.\n";
    return 0;
}
