/**
 * @file
 * Ablation: wax quantity vs. peak cooling reduction.
 *
 * The paper: "peak load reduction and savings correlate to the
 * quantity of wax: the more wax that is added to a server, the
 * greater the potential savings" - bounded by the platform's airflow
 * blockage cap (Fig 7).  Sweeps the charge volume at the platform's
 * optimized melting temperature.
 */

#include <iostream>

#include "core/cooling_study.hh"
#include "util/table.hh"
#include "workload/google_trace.hh"

int
main()
{
    using namespace tts;
    using namespace tts::core;

    auto trace = workload::makeGoogleTrace();

    for (auto spec : {server::rd330Spec(), server::x4470Spec()}) {
        std::cout << "=== Wax quantity sweep: " << spec.name
                  << " (melt "
                  << formatFixed(spec.defaultMeltTempC, 1)
                  << " C) ===\n";
        AsciiTable t({"liters/server", "latent (kJ)",
                      "blockage (%)", "peak reduction (%)"});
        for (double frac : {0.25, 0.5, 0.75, 1.0}) {
            double liters = frac * spec.waxLiters;
            CoolingConfig opts;
            // Keep the platform's box count so surface area scales
            // with volume.
            auto base_cluster = datacenter::Cluster(
                spec, server::WaxConfig::none());
            auto baseline = base_cluster.run(trace, opts.cluster);

            server::WaxConfig cfg = server::WaxConfig::custom(
                liters, spec.defaultMeltTempC, spec.waxBoxCount);
            datacenter::Cluster waxed(spec, cfg);
            auto run = waxed.run(trace, opts.cluster);

            double red = (baseline.peakCoolingLoad() -
                          run.peakCoolingLoad()) /
                baseline.peakCoolingLoad();
            double latent =
                waxed.representative().waxLatentCapacity() / 1e3;
            t.addRow({formatFixed(liters, 2),
                      formatFixed(latent, 0),
                      formatFixed(
                          100.0 * waxed.representative().blockage(),
                          0),
                      formatFixed(100.0 * red, 2)});
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "reading: reduction grows with the charge until "
                 "the peak window is fully covered;\nthe blockage "
                 "cap (Fig 7) bounds how much wax a platform can "
                 "host.\n";
    return 0;
}
