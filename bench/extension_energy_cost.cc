/**
 * @file
 * Extension: pricing the Figure 1 "additional advantages".
 *
 * The paper's Figure 1 lists two off-peak benefits it never turns
 * into dollars: electricity is cheaper at night, and cool night air
 * enables free cooling.  This bench runs the Section 5.1 cooling
 * loads through the paper's own tariff ($0.13 peak / $0.08 off-peak)
 * and an economizer plant under a diurnal ambient, and reports the
 * yearly cooling-OpEx delta from thermal time shifting.
 */

#include <iostream>

#include "core/cooling_study.hh"
#include "core/energy_cost_study.hh"
#include "datacenter/datacenter.hh"
#include "util/table.hh"
#include "workload/google_trace.hh"

int
main()
{
    using namespace tts;
    using namespace tts::core;

    auto trace = workload::makeGoogleTrace();

    std::cout << "=== Extension: cooling energy cost with time-of-"
                 "use pricing and free cooling ===\n\n";
    AsciiTable t({"Platform", "clusters", "flat plant ($/yr)",
                  "flat + PCM ($/yr)", "PCM saving ($/yr)",
                  "economizer ($/yr)", "econo + PCM ($/yr)",
                  "PCM saving ($/yr) "});

    for (auto spec : {server::rd330Spec(), server::x4470Spec(),
                      server::openComputeSpec()}) {
        auto study = runCoolingStudy(spec, trace);
        datacenter::Datacenter dc(spec);
        EnergyCostOptions opts;
        opts.clusters = dc.clusterCount();
        auto cost = priceCoolingEnergy(study, opts);
        t.addRow({spec.name,
                  formatFixed(
                      static_cast<double>(dc.clusterCount()), 0),
                  formatFixed(cost.flatCostNoWax, 0),
                  formatFixed(cost.flatCostWithWax, 0),
                  formatFixed(cost.flatSaving(), 0),
                  formatFixed(cost.economizerCostNoWax, 0),
                  formatFixed(cost.economizerCostWithWax, 0),
                  formatFixed(cost.economizerSaving(), 0)});
    }
    t.print(std::cout);

    std::cout << "\nreading: the OpEx benefit is real but small "
                 "next to the Section 5.1 capital savings -\n"
                 "consistent with the paper's choice to headline "
                 "the plant-sizing argument.  The economizer\n"
                 "scenario also shows free cooling cutting the "
                 "whole bill roughly in half at an 18 C-mean\n"
                 "site, with PCM stacking on top.\n";
    return 0;
}
