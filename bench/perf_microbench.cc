/**
 * @file
 * google-benchmark microbenchmarks for the simulator's hot paths:
 * the thermal network step, the airflow operating-point solve, the
 * PCM enthalpy inversion, the cluster transient, and the event-
 * driven DCSim core.
 */

#include <benchmark/benchmark.h>

#include "datacenter/cluster.hh"
#include "pcm/enthalpy_model.hh"
#include "server/server_model.hh"
#include "thermal/airflow.hh"
#include "util/units.hh"
#include "workload/dcsim.hh"
#include "workload/google_trace.hh"

namespace {

using namespace tts;

void
BM_AirflowOperatingPoint(benchmark::State &state)
{
    thermal::FanCurve fan{400.0, 0.02};
    double k = 1.0e6;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            thermal::solveOperatingPoint(fan, k));
        k = k < 2e6 ? k * 1.0001 : 1.0e6;
    }
}
BENCHMARK(BM_AirflowOperatingPoint);

void
BM_EnthalpyInversion(benchmark::State &state)
{
    pcm::EnthalpyParams p;
    p.massKg = 3.2;
    p.cpSolid = 2100.0;
    p.cpLiquid = 2400.0;
    p.latentHeat = 2.0e5;
    p.meltTempC = 50.0;
    p.meltWindowC = 0.5;
    pcm::EnthalpyCurve curve(p);
    double h = curve.enthalpyAt(45.0);
    const double h_hi = curve.enthalpyAt(55.0);
    const double h_lo = curve.enthalpyAt(45.0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(curve.temperatureAt(h));
        h += 1000.0;
        if (h > h_hi)
            h = h_lo;
    }
}
BENCHMARK(BM_EnthalpyInversion);

void
BM_ServerThermalStep(benchmark::State &state)
{
    server::ServerModel m(server::rd330Spec(),
                          server::WaxConfig::paper());
    m.setLoad(0.8);
    for (auto _ : state)
        m.advance(1.0, 1.0);
}
BENCHMARK(BM_ServerThermalStep);

void
BM_ServerSteadyState(benchmark::State &state)
{
    server::ServerModel m(server::rd330Spec());
    double u = 0.2;
    for (auto _ : state) {
        m.setLoad(u);
        m.solveSteadyState();
        u = u < 0.9 ? u + 0.1 : 0.2;
    }
}
BENCHMARK(BM_ServerSteadyState);

void
BM_ClusterHour(benchmark::State &state)
{
    // One simulated cluster-hour at the production step sizes.
    workload::GoogleTraceParams tp;
    tp.durationS = units::hours(2.0);
    auto trace = workload::makeGoogleTrace(tp);
    datacenter::Cluster cluster(server::rd330Spec(),
                                server::WaxConfig::paper());
    auto &rep = cluster.representative();
    for (auto _ : state) {
        rep.setLoad(0.7);
        rep.advance(3600.0, 5.0);
    }
}
BENCHMARK(BM_ClusterHour);

void
BM_DcsimThousandJobs(benchmark::State &state)
{
    workload::WorkloadTrace trace;
    trace.append(0.0, {0.2, 0.2, 0.2});
    trace.append(250.0, {0.2, 0.2, 0.2});
    workload::DcSimConfig cfg;
    cfg.serverCount = 32;
    cfg.slotsPerServer = 8;
    cfg.meanServiceTimeS = 10.0;   // ~0.6 * 32 * 8 / 10 = 15 jobs/s.
    cfg.statsIntervalS = 60.0;
    for (auto _ : state) {
        workload::ClusterSim sim(cfg);
        benchmark::DoNotOptimize(sim.run(trace));
    }
}
BENCHMARK(BM_DcsimThousandJobs);

} // namespace

BENCHMARK_MAIN();
