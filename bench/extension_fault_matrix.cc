/**
 * @file
 * Extension: fault-scenario resilience matrix.
 *
 * Runs the canonical fault scenarios (total plant trip, partial trip
 * with a drifting sensor, seeded crash/fan storm) across the three
 * paper platforms, comparing how long each rides through with and
 * without wax and how much throughput the cluster retains.
 *
 * Doubles as a determinism gate: the whole grid is computed twice -
 * through a single-thread pool and through the default-width pool -
 * and the results must be bit-identical.  Exits non-zero on any
 * mismatch, so CI catches a broken exec contract.
 *
 * Emits machine-readable flat JSON on stdout after the tables.
 */

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/resilience_study.hh"
#include "exec/parallel.hh"
#include "server/server_spec.hh"
#include "util/kv_json.hh"
#include "util/table.hh"

int
main()
{
    using namespace tts;
    using namespace tts::core;

    const std::vector<server::ServerSpec> specs = {
        server::rd330Spec(), server::x4470Spec(),
        server::openComputeSpec()};
    const char *tags[3] = {"1u", "2u", "ocp"};

    ResilienceConfig opt;
    auto scenarios = canonicalScenarios(opt.cluster.serverCount);

    // One task per (platform, scenario) cell, run through a pool of
    // each width; pool.map keys results by index so the orderings
    // must agree bit-for-bit.
    struct Cell
    {
        std::size_t platform;
        std::size_t scenario;
    };
    std::vector<Cell> cells;
    for (std::size_t p = 0; p < specs.size(); ++p)
        for (std::size_t s = 0; s < scenarios.size(); ++s)
            cells.push_back({p, s});

    auto grid_with = [&](const exec::ThreadPool &pool) {
        return pool.map(cells, [&](const Cell &c) {
            return runResilienceStudy(specs[c.platform],
                                      scenarios[c.scenario], opt);
        });
    };

    exec::ThreadPool serial_pool(1);
    exec::ThreadPool parallel_pool; // TTS_THREADS or hardware.
    auto serial = grid_with(serial_pool);
    auto parallel = grid_with(parallel_pool);

    auto arm_equal = [](const ResilienceArm &a,
                        const ResilienceArm &b) {
        return a.rideThroughS == b.rideThroughS &&
               a.hitLimit == b.hitLimit &&
               a.throughputRetention == b.throughputRetention &&
               a.throttledS == b.throttledS &&
               a.roomAirC.values() == b.roomAirC.values() &&
               a.sensedInletC.values() == b.sensedInletC.values() &&
               a.waxMelt.values() == b.waxMelt.values();
    };
    bool identical = serial.size() == parallel.size();
    for (std::size_t i = 0; identical && i < serial.size(); ++i) {
        const auto &a = serial[i];
        const auto &b = parallel[i];
        identical =
            arm_equal(a.noWax, b.noWax) &&
            arm_equal(a.withWax, b.withWax) &&
            a.cluster.completedJobs == b.cluster.completedJobs &&
            a.cluster.droppedJobs == b.cluster.droppedJobs &&
            a.cluster.offeredJobs == b.cluster.offeredJobs &&
            a.cluster.residualJobs == b.cluster.residualJobs &&
            a.cluster.crashKilledJobs ==
                b.cluster.crashKilledJobs &&
            a.cluster.faultEventsApplied ==
                b.cluster.faultEventsApplied;
    }

    std::cout << "=== Extension: fault-scenario resilience matrix "
                 "(1008 servers, wax vs. no wax) ===\n";
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
        std::cout << "\nscenario: " << scenarios[s].name << " ("
                  << scenarios[s].faults.size() << " events, "
                  << formatFixed(scenarios[s].horizonS / 60.0, 0)
                  << " min horizon)\n";
        AsciiTable t({"Platform", "ride no wax (min)",
                      "ride wax (min)", "extra (min)",
                      "retention no wax", "retention wax",
                      "jobs killed"});
        for (std::size_t p = 0; p < specs.size(); ++p) {
            const auto &r = serial[p * scenarios.size() + s];
            t.addRow(
                {specs[p].name,
                 formatFixed(r.noWax.rideThroughS / 60.0, 1),
                 formatFixed(r.withWax.rideThroughS / 60.0, 1),
                 formatFixed(r.extraRideThroughS() / 60.0, 1),
                 formatFixed(r.noWax.throughputRetention, 3),
                 formatFixed(r.withWax.throughputRetention, 3),
                 formatFixed(
                     static_cast<double>(r.cluster.crashKilledJobs),
                     0)});
        }
        t.print(std::cout);
    }
    std::cout << "\nidentical at 1 vs. "
              << parallel_pool.threadCount()
              << " threads:  " << (identical ? "yes" : "NO")
              << "\n\n";

    std::map<std::string, double> json{
        {"cells", static_cast<double>(cells.size())},
        {"threads",
         static_cast<double>(parallel_pool.threadCount())},
        {"identical", identical ? 1.0 : 0.0},
    };
    for (std::size_t p = 0; p < specs.size(); ++p) {
        for (std::size_t s = 0; s < scenarios.size(); ++s) {
            const auto &r = serial[p * scenarios.size() + s];
            std::string k = std::string(tags[p]) + "." +
                            scenarios[s].name + ".";
            json[k + "extra_ride_s"] = r.extraRideThroughS();
            json[k + "retention_gain"] = r.retentionGain();
        }
    }
    std::cout << writeKvJson(json);
    return identical ? 0 : 1;
}
