/**
 * @file
 * Performance gate for tts::serve: a live daemon answering a mixed
 * scenario workload, measuring end-to-end request latency and cache
 * leverage, plus a shed-under-overload sanity lane.
 *
 * Five gates:
 *
 *  1. Correctness: every request in the steady-state lane is
 *     answered ok, and repeated documents hit the cache (hit rate
 *     above --min-hit-rate after the warm-up pass).
 *  2. Latency: cached p99 must stay under --max-cached-p99-ms -
 *     a cache hit is a map lookup plus a snapshot copy and must
 *     never cost anything close to an evaluation.
 *  3. Overload sanity: a burst submitted against a one-worker,
 *     tiny-queue daemon must shed (admission control engages) and
 *     still answer every request (nothing hangs, nothing crashes).
 *  4. Warm start: a daemon warmed from a scenario manifest must
 *     answer the whole manifest workload from the cache (hit rate
 *     at --min-warm-hit-rate, default 1: warming is deterministic).
 *  5. Batched misses: concurrent fleet-backed misses must collapse
 *     into shared sweeps (sweeps < jobs) without regressing
 *     wall-clock against one-sweep-per-miss dispatch.
 *
 * Emits flat kv-json on stdout after the human-readable table (and,
 * with --out=FILE, to the file CI tracks as BENCH_serve.json):
 *
 *     {"requests": ..., "distinct": ..., "workers": ...,
 *      "wall_s": ..., "p50_ms": ..., "p99_ms": ...,
 *      "cached_p50_ms": ..., "cached_p99_ms": ..., "hit_rate": ...,
 *      "evaluations": ..., "burst": ..., "burst_shed": ...,
 *      "burst_answered": 1, "shed_engaged": 1, "all_ok": 1,
 *      "warm_entries": ..., "warm_hit_rate": ...,
 *      "batch_misses": ..., "batch_jobs": ..., "batch_sweeps": ...,
 *      "batch_wall_s": ..., "batch_rps": ...,
 *      "unbatched_wall_s": ..., "batch_engaged": 1,
 *      "batch_all_ok": 1}
 *
 * Exit code 0 only when all five gates hold.  --short shrinks the
 * request count for the ctest perf smoke.
 */

#include <chrono>
#include <cstdio>
#include <future>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <sstream>

#include "serve/daemon.hh"
#include "serve/eval.hh"
#include "serve/manifest.hh"
#include "util/cli.hh"
#include "util/kv_json.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace tts;
    using namespace tts::serve;
    using Clock = std::chrono::steady_clock;

    std::string out_file;
    std::size_t requests = 512;
    std::size_t workers = 4;
    std::size_t burst = 64;
    std::size_t batch_misses = 8;
    double min_hit_rate = 0.5;
    double max_cached_p99_ms = 50.0;
    double min_warm_hit_rate = 1.0;
    bool short_run = false;

    cli::Parser p("perf_serve",
                  "Scenario-serving daemon gate: request latency "
                  "percentiles, cache hit rate, and shed-under-"
                  "overload sanity.");
    p.addString("out", &out_file,
                "also write the kv-json here (BENCH_serve.json)");
    p.addSize("requests", &requests,
              "steady-state lane request count");
    p.addSize("workers", &workers, "daemon worker threads");
    p.addSize("burst", &burst, "overload lane burst size");
    p.addSize("batch-misses", &batch_misses,
              "distinct fleet misses in the batching lane");
    p.addDouble("min-hit-rate", &min_hit_rate,
                "cache hit-rate floor for the steady-state lane");
    p.addDouble("max-cached-p99-ms", &max_cached_p99_ms,
                "p99 budget for cache-hit replies (ms)");
    p.addDouble("min-warm-hit-rate", &min_warm_hit_rate,
                "hit-rate floor replaying a warmed manifest");
    p.addFlag("short", &short_run,
              "shrink the lanes (ctest perf smoke)");
    switch (p.parse(argc - 1, argv + 1)) {
      case cli::Status::Help:
        std::fputs(p.helpText().c_str(), stdout);
        return 0;
      case cli::Status::Error:
        std::fprintf(stderr, "%s\n", p.error().c_str());
        return 2;
      case cli::Status::Ok:
        break;
    }
    if (short_run) {
        requests = 96;
        burst = 24;
        batch_misses = 4;
    }

    // 16 distinct quick outage studies, drawn uniformly: after each
    // document's first evaluation every further draw is a hit, so
    // the expected hit rate is 1 - distinct/requests (~97% at the
    // default sizes; the 50% floor leaves slack for the smoke lane).
    std::vector<std::string> pool;
    for (double horizon : {60.0, 90.0, 120.0, 150.0}) {
        for (double util : {0.6, 0.9}) {
            for (double wax : {0.0, 8.0}) {
                Request r;
                r.study = "outage";
                r.servers = 8;
                r.horizonS = horizon;
                r.utilization = util;
                r.waxLiters = wax;
                pool.push_back(writeRequest(r));
            }
        }
    }

    // Lane 1: steady state.  Submit sequentially (call()) so each
    // latency sample is one request end-to-end, not queue depth.
    DaemonConfig config;
    config.workers = workers;
    config.queueCapacity = 2 * requests;
    config.cache.capacity = 2 * pool.size();
    Daemon daemon(config);

    Rng pick = Rng::forStream(0xbe9c5e, 7);
    std::vector<double> all_ms;
    std::vector<double> cached_ms;
    std::size_t ok = 0;
    const auto lane0 = Clock::now();
    for (std::size_t i = 0; i < requests; ++i) {
        const std::string &doc = pool[pick.uniformInt(pool.size())];
        const auto t0 = Clock::now();
        const Reply r = daemon.call(doc);
        const double ms = std::chrono::duration<double, std::milli>(
            Clock::now() - t0).count();
        if (r.ok)
            ++ok;
        all_ms.push_back(ms);
        if (r.cacheHit)
            cached_ms.push_back(ms);
    }
    const double wall_s = std::chrono::duration<double>(
        Clock::now() - lane0).count();
    const DaemonStats steady = daemon.stats();
    const auto cache = daemon.cacheCounters();
    const bool all_ok = ok == requests;
    const double hit_rate = requests == 0
        ? 0.0
        : static_cast<double>(cache.hits + steady.coalesced) /
            static_cast<double>(requests);
    const double p50 = percentile(all_ms, 50.0);
    const double p99 = percentile(all_ms, 99.0);
    const double cached_p50 =
        cached_ms.empty() ? 0.0 : percentile(cached_ms, 50.0);
    const double cached_p99 =
        cached_ms.empty() ? 0.0 : percentile(cached_ms, 99.0);
    daemon.shutdown();

    // Lane 2: overload.  One worker, a one-slot queue, and a burst
    // submitted as fast as futures can be minted: admission control
    // must engage (sheds > 0) and every request must still get an
    // answer (the futures all resolve).
    DaemonConfig tiny;
    tiny.workers = 1;
    tiny.queueCapacity = 1;
    Daemon little(tiny);
    std::vector<std::future<Reply>> inflight;
    for (std::size_t i = 0; i < burst; ++i)
        inflight.push_back(
            little.submit(pool[i % pool.size()]));
    std::size_t burst_ok = 0;
    std::size_t burst_shed = 0;
    std::size_t burst_answered = 0;
    for (auto &f : inflight) {
        const Reply r = f.get();
        ++burst_answered;
        if (r.ok)
            ++burst_ok;
        else if (r.error == ErrorKind::Overloaded)
            ++burst_shed;
    }
    little.shutdown();
    const bool shed_engaged = burst_shed > 0;
    const bool burst_all_answered = burst_answered == burst &&
        burst_ok + burst_shed == burst;

    // Lane 3: manifest warm start.  The same outage studies as
    // single-line manifest entries; a fresh daemon warmed from them
    // must answer the whole manifest workload from the cache.
    std::vector<std::string> lines;
    for (double horizon : {60.0, 90.0, 120.0, 150.0}) {
        for (double util : {0.6, 0.9}) {
            for (double wax : {0.0, 8.0}) {
                std::ostringstream line;
                line << "{\"study\": \"outage\", \"servers\": 8"
                     << ", \"horizon_s\": " << horizon
                     << ", \"util\": " << util
                     << ", \"wax_l\": " << wax << "}";
                lines.push_back(line.str());
            }
        }
    }
    DaemonConfig warm_config;
    warm_config.workers = workers;
    Daemon warmed(warm_config);
    std::ostringstream manifest;
    manifest << "tts-serve-manifest v1\n";
    for (const std::string &line : lines)
        manifest << line << "\n";
    std::istringstream manifest_in(manifest.str());
    const WarmStats warm =
        warmFromManifest(manifest_in, warmed, "bench.manifest");
    std::size_t warm_hits = 0;
    std::size_t warm_ok = 0;
    for (const std::string &line : lines) {
        const Reply r = warmed.call(line);
        if (r.ok)
            ++warm_ok;
        if (r.ok && r.cacheHit)
            ++warm_hits;
    }
    warmed.shutdown();
    const double warm_hit_rate = lines.empty()
        ? 0.0
        : static_cast<double>(warm_hits) /
            static_cast<double>(lines.size());
    const bool warm_gate = warm.failed == 0 &&
        warm_ok == lines.size() &&
        warm_hit_rate >= min_warm_hit_rate;

    // Lane 4: batched misses.  The same distinct fleet documents
    // dispatched one-sweep-per-miss (window 0) and then through the
    // miss batcher: batching must collapse sweeps without
    // regressing wall-clock.
    std::vector<std::string> fleet_docs;
    for (std::size_t i = 0; i < batch_misses; ++i) {
        std::ostringstream doc;
        doc << "{\"study\": \"fleet\", \"servers\": "
            << (8 + 4 * i) << ", \"days\": 0.25}";
        fleet_docs.push_back(doc.str());
    }
    auto driveFleet = [&](Daemon &d) {
        const auto t0 = Clock::now();
        std::vector<std::future<Reply>> fs;
        fs.reserve(fleet_docs.size());
        for (const std::string &doc : fleet_docs)
            fs.push_back(d.submit(doc));
        std::size_t answered_ok = 0;
        for (auto &f : fs)
            if (f.get().ok)
                ++answered_ok;
        const double secs = std::chrono::duration<double>(
            Clock::now() - t0).count();
        return std::make_pair(secs, answered_ok);
    };
    DaemonConfig solo;
    solo.workers = workers;
    solo.queueCapacity = 2 * batch_misses + 8;
    solo.batch.windowMs = 0.0; // every miss sweeps alone
    Daemon unbatched_daemon(solo);
    const auto [unbatched_wall, unbatched_ok] =
        driveFleet(unbatched_daemon);
    unbatched_daemon.shutdown();
    DaemonConfig merged = solo;
    merged.batch.windowMs = 10.0;
    merged.batch.maxBatch = batch_misses;
    Daemon batched_daemon(merged);
    const auto [batch_wall, batch_ok] = driveFleet(batched_daemon);
    const BatchStats bstats = batched_daemon.batchStats();
    batched_daemon.shutdown();
    const double batch_rps = batch_wall > 0.0
        ? static_cast<double>(fleet_docs.size()) / batch_wall
        : 0.0;
    const bool batch_engaged =
        bstats.sweeps < bstats.jobs && bstats.largestBatch >= 2;
    const bool batch_all_ok = batch_ok == fleet_docs.size() &&
        unbatched_ok == fleet_docs.size();
    // Generous slack: the batch window itself costs up to 10 ms and
    // the lanes are short; the gate is "no multiplicative
    // regression", the tracked metric is batch_rps.
    const bool batch_throughput =
        batch_wall <= 1.5 * unbatched_wall + 0.25;

    std::cout << "=== tts::serve: " << requests << " requests over "
              << pool.size() << " documents, " << workers
              << " workers ===\n\n";
    AsciiTable t({"lane", "p50 (ms)", "p99 (ms)", "samples"});
    t.addRow({"all", formatFixed(p50, 3), formatFixed(p99, 3),
              std::to_string(all_ms.size())});
    t.addRow({"cached", formatFixed(cached_p50, 3),
              formatFixed(cached_p99, 3),
              std::to_string(cached_ms.size())});
    t.print(std::cout);
    std::cout << "\nwall clock:         " << formatFixed(wall_s, 2)
              << " s\n";
    std::cout << "cache hit rate:     "
              << formatFixed(hit_rate * 100.0, 1) << "% ("
              << steady.evaluations << " evaluations)\n";
    std::cout << "overload burst:     " << burst << " submitted, "
              << burst_ok << " ok, " << burst_shed << " shed\n";
    std::cout << "manifest warm:      " << warm.warmed << "/"
              << warm.entries << " warmed, replay hit rate "
              << formatFixed(warm_hit_rate * 100.0, 1) << "%\n";
    std::cout << "batched misses:     " << fleet_docs.size()
              << " misses -> " << bstats.sweeps << " sweeps ("
              << formatFixed(batch_wall, 3) << " s batched vs "
              << formatFixed(unbatched_wall, 3)
              << " s unbatched, "
              << formatFixed(batch_rps, 1) << " req/s)\n\n";

    if (!all_ok)
        std::cout << "FAIL: " << (requests - ok)
                  << " steady-state requests were rejected\n";
    if (hit_rate < min_hit_rate)
        std::cout << "FAIL: hit rate "
                  << formatFixed(hit_rate * 100.0, 1)
                  << "% is under the "
                  << formatFixed(min_hit_rate * 100.0, 0)
                  << "% floor\n";
    if (cached_p99 > max_cached_p99_ms)
        std::cout << "FAIL: cached p99 "
                  << formatFixed(cached_p99, 3) << " ms exceeds "
                  << formatFixed(max_cached_p99_ms, 1)
                  << " ms budget\n";
    if (!shed_engaged)
        std::cout << "FAIL: the overload burst never shed\n";
    if (!burst_all_answered)
        std::cout << "FAIL: burst replies were not all ok-or-shed\n";
    if (!warm_gate)
        std::cout << "FAIL: warm-start replay hit rate "
                  << formatFixed(warm_hit_rate * 100.0, 1)
                  << "% is under the "
                  << formatFixed(min_warm_hit_rate * 100.0, 0)
                  << "% floor (" << warm.failed
                  << " manifest entries failed)\n";
    if (!batch_engaged)
        std::cout << "FAIL: concurrent misses never shared a sweep ("
                  << bstats.sweeps << " sweeps for " << bstats.jobs
                  << " jobs)\n";
    if (!batch_all_ok)
        std::cout << "FAIL: fleet lane replies were not all ok\n";
    if (!batch_throughput)
        std::cout << "FAIL: batched wall "
                  << formatFixed(batch_wall, 3)
                  << " s regressed against unbatched "
                  << formatFixed(unbatched_wall, 3) << " s\n";

    std::map<std::string, double> json{
        {"requests", static_cast<double>(requests)},
        {"distinct", static_cast<double>(pool.size())},
        {"workers", static_cast<double>(workers)},
        {"wall_s", wall_s},
        {"p50_ms", p50},
        {"p99_ms", p99},
        {"cached_p50_ms", cached_p50},
        {"cached_p99_ms", cached_p99},
        {"hit_rate", hit_rate},
        {"evaluations",
         static_cast<double>(steady.evaluations)},
        {"burst", static_cast<double>(burst)},
        {"burst_shed", static_cast<double>(burst_shed)},
        {"burst_answered", burst_all_answered ? 1.0 : 0.0},
        {"shed_engaged", shed_engaged ? 1.0 : 0.0},
        {"all_ok", all_ok ? 1.0 : 0.0},
        {"warm_entries", static_cast<double>(warm.entries)},
        {"warm_hit_rate", warm_hit_rate},
        {"batch_misses", static_cast<double>(fleet_docs.size())},
        {"batch_jobs", static_cast<double>(bstats.jobs)},
        {"batch_sweeps", static_cast<double>(bstats.sweeps)},
        {"batch_wall_s", batch_wall},
        {"batch_rps", batch_rps},
        {"unbatched_wall_s", unbatched_wall},
        {"batch_engaged", batch_engaged ? 1.0 : 0.0},
        {"batch_all_ok", batch_all_ok ? 1.0 : 0.0},
    };
    std::cout << writeKvJson(json);
    if (!out_file.empty())
        writeKvJsonFile(out_file, json);
    const bool gates = all_ok && hit_rate >= min_hit_rate &&
        cached_p99 <= max_cached_p99_ms && shed_engaged &&
        burst_all_answered && warm_gate && batch_engaged &&
        batch_all_ok && batch_throughput;
    return gates ? 0 : 1;
}
