/**
 * @file
 * Regenerates the Section 5.1 headline numbers: for each platform's
 * 10 MW datacenter, the measured peak cooling reduction is turned
 * into (1) a smaller cooling plant, (2) extra servers under the same
 * plant, and (3) the retrofit savings with a plant that has six
 * years of life left.
 *
 * Paper: savings $187k / $254k / $174k per year; +4,940 / +2,920 /
 * +2,770 servers (9.8 / 14.6 / 8.9 %); retrofit $3.0M / $3.2M /
 * $3.1M per year for 1U / 2U / OCP.
 */

#include <iostream>

#include "core/capacity_planner.hh"
#include "core/cooling_study.hh"
#include "util/table.hh"
#include "workload/google_trace.hh"

int
main()
{
    using namespace tts;
    using namespace tts::core;

    auto trace = workload::makeGoogleTrace();

    std::cout << "=== Section 5.1 headline economics (10 MW "
                 "facility) ===\n\n";
    AsciiTable t({"Platform", "clusters", "servers",
                  "peak red. (%)", "smaller plant ($/yr)",
                  "extra servers", "extra (%)",
                  "retrofit ($/yr)"});

    for (auto spec : {server::rd330Spec(), server::x4470Spec(),
                      server::openComputeSpec()}) {
        CoolingStudyOptions opts;
        auto study = runCoolingStudy(spec, trace, opts);

        datacenter::DatacenterConfig cfg;
        if (spec.name.find("2U") != std::string::npos)
            cfg.provisionedPerServerW = 500.0;  // Paper: 500 W DC.
        auto plan = planCapacity(spec, study.peakReduction(), cfg);

        t.addRow({spec.name,
                  formatFixed(static_cast<double>(plan.clusters), 0),
                  formatFixed(static_cast<double>(plan.servers), 0),
                  formatFixed(100.0 * plan.peakReduction, 1),
                  formatFixed(plan.smallerPlantSavingsPerYear, 0),
                  formatFixed(
                      static_cast<double>(plan.extraServers), 0),
                  formatFixed(100.0 * plan.extraServerFraction, 1),
                  formatFixed(plan.retrofitSavingsPerYear, 0)});
    }
    t.print(std::cout);

    std::cout << "\npaper reference: 55/19/29 clusters; "
                 "reductions 8.9/12/8.3 %;\n"
                 "smaller plant $187k/$254k/$174k per year; "
                 "+4,940/+2,920/+2,770 servers\n"
                 "(9.8/14.6/8.9 %); retrofit $3.0M/$3.2M/$3.1M "
                 "per year.\n";
    return 0;
}
