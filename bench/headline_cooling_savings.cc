/**
 * @file
 * Regenerates the Section 5.1 headline numbers: for each platform's
 * 10 MW datacenter, the measured peak cooling reduction is turned
 * into (1) a smaller cooling plant, (2) extra servers under the same
 * plant, and (3) the retrofit savings with a plant that has six
 * years of life left.
 *
 * Paper: savings $187k / $254k / $174k per year; +4,940 / +2,920 /
 * +2,770 servers (9.8 / 14.6 / 8.9 %); retrofit $3.0M / $3.2M /
 * $3.1M per year for 1U / 2U / OCP.
 */

#include <iostream>
#include <vector>

#include "core/capacity_planner.hh"
#include "core/cooling_study.hh"
#include "exec/parallel.hh"
#include "util/table.hh"
#include "workload/google_trace.hh"

int
main()
{
    using namespace tts;
    using namespace tts::core;

    auto trace = workload::makeGoogleTrace();

    std::cout << "=== Section 5.1 headline economics (10 MW "
                 "facility) ===\n\n";
    AsciiTable t({"Platform", "clusters", "servers",
                  "peak red. (%)", "smaller plant ($/yr)",
                  "extra servers", "extra (%)",
                  "retrofit ($/yr)"});

    // One study + plan per platform, fanned out (TTS_THREADS).
    std::vector<server::ServerSpec> specs{
        server::rd330Spec(), server::x4470Spec(),
        server::openComputeSpec()};
    auto plans = exec::parallel_map(
        specs, [&](const server::ServerSpec &spec) {
            auto study = runCoolingStudy(spec, trace,
                                         CoolingConfig{});
            datacenter::DatacenterConfig cfg;
            if (spec.name.find("2U") != std::string::npos)
                cfg.provisionedPerServerW = 500.0;  // Paper: 500 W.
            return planCapacity(spec, study.peakReduction(), cfg);
        });

    for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto &spec = specs[i];
        const auto &plan = plans[i];

        t.addRow({spec.name,
                  formatFixed(static_cast<double>(plan.clusters), 0),
                  formatFixed(static_cast<double>(plan.servers), 0),
                  formatFixed(100.0 * plan.peakReduction, 1),
                  formatFixed(plan.smallerPlantSavingsPerYear, 0),
                  formatFixed(
                      static_cast<double>(plan.extraServers), 0),
                  formatFixed(100.0 * plan.extraServerFraction, 1),
                  formatFixed(plan.retrofitSavingsPerYear, 0)});
    }
    t.print(std::cout);

    std::cout << "\npaper reference: 55/19/29 clusters; "
                 "reductions 8.9/12/8.3 %;\n"
                 "smaller plant $187k/$254k/$174k per year; "
                 "+4,940/+2,920/+2,770 servers\n"
                 "(9.8/14.6/8.9 %); retrofit $3.0M/$3.2M/$3.1M "
                 "per year.\n";
    return 0;
}
