/**
 * @file
 * Extension: heterogeneous facility with staggered melting points.
 *
 * A mixed fleet (the common real-world case the paper's homogeneous
 * datacenters idealize away) opens a degree of freedom the
 * single-platform studies don't have: each pool can deploy wax with
 * a different melting point, staggering the absorption windows
 * across the shared plant's peak.
 */

#include <iostream>

#include "datacenter/mixed_facility.hh"
#include "util/table.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"

int
main()
{
    using namespace tts;
    using namespace tts::datacenter;
    using server::WaxConfig;

    auto trace = workload::makeGoogleTrace();
    ClusterRunOptions run;

    // A 10 MW-ish mixed fleet: 26 clusters of 1U + 9 clusters of 2U.
    auto make = [&](WaxConfig w1u, WaxConfig w2u) {
        return MixedFacility(
            {{server::rd330Spec(), w1u, 26},
             {server::x4470Spec(), w2u, 9}});
    };

    auto stock = make(WaxConfig::none(), WaxConfig::none())
                     .run(trace, run);
    auto defaults = make(WaxConfig::paper(), WaxConfig::paper())
                        .run(trace, run);
    // Staggered: the 1U pool melts slightly earlier (clipping the
    // ramp), the 2U pool at its optimum (clipping the crest).
    auto staggered =
        make(WaxConfig::withMeltTemp(51.5),
             WaxConfig::withMeltTemp(54.5))
            .run(trace, run);

    double p0 = stock.peakCoolingLoad();
    std::cout << "=== Extension: mixed 1U+2U facility ("
              << make(WaxConfig::none(), WaxConfig::none())
                     .serverCount()
              << " servers) ===\n\n";
    AsciiTable t({"configuration", "peak cooling (MW)",
                  "reduction (%)"});
    t.addRow({"no wax", formatFixed(p0 / 1e6, 3), "-"});
    t.addRow({"per-platform defaults",
              formatFixed(defaults.peakCoolingLoad() / 1e6, 3),
              formatFixed(
                  100.0 * (p0 - defaults.peakCoolingLoad()) / p0,
                  2)});
    t.addRow({"staggered melting points",
              formatFixed(staggered.peakCoolingLoad() / 1e6, 3),
              formatFixed(
                  100.0 * (p0 - staggered.peakCoolingLoad()) / p0,
                  2)});
    t.print(std::cout);

    std::cout << "\nper-pool peaks (defaults config):\n";
    const char *names[2] = {"1U pool", "2U pool"};
    for (int i = 0; i < 2; ++i) {
        std::cout << "  " << names[i] << ": "
                  << formatFixed(
                         defaults.poolCoolingW[i].max() / 1e6, 3)
                  << " MW, peak at "
                  << formatFixed(units::toHours(
                         defaults.poolCoolingW[i].argMax()), 1)
                  << " h\n";
    }
    std::cout << "\nreading: each pool's per-platform optimum "
                 "already flattens its own residual peak, and\n"
                 "the residual peaks coincide - so naive "
                 "staggering away from the optima LOSES peak\n"
                 "reduction here.  Staggering only pays when the "
                 "pools' residual peaks would otherwise\npile up "
                 "at different hours (e.g. mixed time-zone "
                 "traffic).\n";
    return 0;
}
