/**
 * @file
 * Regenerates Table 2 (parameters used to model TCO) for the three
 * platforms.  Dollar-per-kW rates are per kW of datacenter critical
 * power, per month, following Kontorinis et al. with the interest
 * treatment of Barroso & Hoelzle.
 */

#include <iostream>

#include "server/server_spec.hh"
#include "tco/parameters.hh"
#include "util/table.hh"

int
main()
{
    using namespace tts;
    using namespace tts::tco;

    auto specs = {server::rd330Spec(), server::x4470Spec(),
                  server::openComputeSpec()};
    std::vector<TcoParameters> params;
    for (const auto &s : specs)
        params.push_back(parametersFor(s));

    auto range = [&](auto get, int precision) {
        double lo = 1e300, hi = -1e300;
        for (const auto &p : params) {
            lo = std::min(lo, get(p));
            hi = std::max(hi, get(p));
        }
        if (hi - lo < 0.005)
            return formatFixed(lo, precision);
        return formatFixed(lo, precision) + "-" +
            formatFixed(hi, precision);
    };

    std::cout << "=== Table 2: Parameters used to model TCO "
                 "($/month) ===\n\n";
    AsciiTable t({"Description", "TCO/month", "Unit"});
    using P = const TcoParameters &;
    t.addRow({"FacilitySpaceCapEx",
              range([](P p) { return p.facilitySpacePerSqFt; }, 2),
              "$/sq. ft."});
    t.addRow({"UPSCapEx",
              range([](P p) { return p.upsPerServer; }, 2),
              "$/server"});
    t.addRow({"PowerInfraCapEx",
              range([](P p) { return p.powerInfraPerKW; }, 1),
              "$/kWatt"});
    t.addRow({"CoolingInfraCapEx",
              range([](P p) { return p.coolingInfraPerKW; }, 1),
              "$/kWatt"});
    t.addRow({"RestCapEx",
              range([](P p) { return p.restCapExPerKW; }, 1),
              "$/kWatt"});
    t.addRow({"DCInterest",
              range([](P p) { return p.dcInterestPerKW; }, 1),
              "$/kWatt"});
    t.addRow({"ServerCapEx",
              range([](P p) { return p.serverCapExPerServer; }, 0),
              "$/server"});
    t.addRow({"WaxCapEx",
              range([](P p) { return p.waxCapExPerServer; }, 2),
              "$/server"});
    t.addRow({"ServerInterest",
              range([](P p) { return p.serverInterestPerServer; },
                    2),
              "$/server"});
    t.addRow({"DatacenterOpEx",
              range([](P p) { return p.datacenterOpExPerKW; }, 1),
              "$/kWatt"});
    t.addRow({"ServerEnergyOpEx",
              range([](P p) { return p.serverEnergyOpExPerKW; }, 1),
              "$/kWatt"});
    t.addRow({"ServerPowerOpEx",
              range([](P p) { return p.serverPowerOpExPerKW; }, 1),
              "$/KWatt"});
    t.addRow({"CoolingEnergyOpEx",
              range([](P p) { return p.coolingEnergyOpExPerKW; },
                    1),
              "$/kWatt"});
    t.addRow({"RestOpEx",
              range([](P p) { return p.restOpExPerKW; }, 1),
              "$/kWatt"});
    t.print(std::cout);

    std::cout << "\npaper Table 2 ranges for comparison: "
                 "PowerInfra 15.9-16.2, CoolingInfra 7.0,\n"
                 "RestCapEx 19.4-21.0, DCInterest 31.8-36.3, "
                 "ServerCapEx 42-146,\nWaxCapEx 0.06-0.10, "
                 "ServerInterest 11.00-38.50, DatacenterOpEx "
                 "20.7-20.9,\nServerEnergyOpEx 19.2-24.9, "
                 "ServerPowerOpEx 12.0, CoolingEnergyOpEx 18.4,\n"
                 "RestOpEx 5.7-6.6.\n";
    return 0;
}
