/**
 * @file
 * Regenerates Figure 11: cluster cooling load over the two-day
 * Google trace, with and without PCM, for all three platforms, in a
 * datacenter with a fully subscribed cooling system.
 *
 * Paper headline: peak cooling reduction 8.9 % (1U), 12 % (2U),
 * 8.3 % (Open Compute), with the wax re-solidifying within 6-9 h of
 * off-peak time each day.
 */

#include <iostream>
#include <vector>

#include "core/cooling_study.hh"
#include "exec/parallel.hh"
#include "util/table.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"

int
main()
{
    using namespace tts;
    using namespace tts::core;

    auto trace = workload::makeGoogleTrace();
    const double paper[3] = {8.9, 12.0, 8.3};
    int idx = 0;

    // All three platform studies fan out across threads
    // (TTS_THREADS); printing below stays in platform order.
    std::vector<server::ServerSpec> specs{
        server::rd330Spec(), server::x4470Spec(),
        server::openComputeSpec()};
    auto results = exec::parallel_map(
        specs, [&](const server::ServerSpec &spec) {
            return runCoolingStudy(spec, trace,
                                   CoolingConfig{});
        });

    for (const auto &spec : specs) {
        const auto &r = results[idx];

        std::cout << "=== Figure 11: " << spec.name
                  << " cooling load (cluster of 1008) ===\n";
        std::cout << "melting temperature: "
                  << formatFixed(r.meltTempC, 1) << " C\n\n";
        AsciiTable t({"t (h)", "Cooling Load (kW)",
                      "Load with PCM (kW)", "delta (kW)"});
        for (double h = 0.0; h <= 48.0 + 1e-9; h += 2.0) {
            double s = units::hours(h);
            double base = r.baseline.coolingLoadW.at(s) / 1e3;
            double wax = r.withWax.coolingLoadW.at(s) / 1e3;
            t.addRow({formatFixed(h, 0), formatFixed(base, 1),
                      formatFixed(wax, 1),
                      formatFixed(wax - base, 1)});
        }
        t.print(std::cout);

        std::cout << "\npeak cooling load:      "
                  << formatFixed(r.peakBaselineW / 1e3, 1)
                  << " kW -> "
                  << formatFixed(r.peakWithWaxW / 1e3, 1)
                  << " kW with PCM\n";
        std::cout << "peak reduction:         "
                  << formatFixed(100.0 * r.peakReduction(), 1)
                  << " %   (paper: " << paper[idx] << " %)\n";
        std::cout << "re-solidify window:     "
                  << formatFixed(r.resolidifyHours() / 2.0, 1)
                  << " h per day   (paper: 6-9 h)\n";
        std::cout << "recharges daily:        "
                  << (r.resolidifiesDaily() ? "yes" : "NO")
                  << "\n\n";
        ++idx;
    }
    return 0;
}
