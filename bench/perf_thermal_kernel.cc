/**
 * @file
 * Performance gate for the SoA thermal kernel.
 *
 * Two checks, both on a resilience-style transient (two waxed
 * servers - one healthy, one with a failing fan bank - breathing a
 * drifting inlet, with per-step load changes and mid-run fault
 * events):
 *
 *  1. Speedup: the optimized kernel (airflow operating-point memo +
 *     SoA/CSR network caches) against the reference arithmetic
 *     (caches disabled, the pre-refactor per-call re-solve), single
 *     thread.  Fails below --min-speedup (default 2.0).
 *  2. Bit-identity: the two kernels' final PCM enthalpy states must
 *     match bit for bit, and a 16-server fleet advanced through
 *     advanceServers() must produce bit-identical state at 1 and 8
 *     threads.
 *
 * Writes flat kv-json (ns/step, steps/s, speedup) to stdout and,
 * with --out=FILE, to the file CI tracks (BENCH_thermal.json).
 * --short shrinks the horizon for the ctest smoke run.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "exec/parallel.hh"
#include "server/server_model.hh"
#include "server/server_spec.hh"
#include "thermal/kernel_config.hh"
#include "util/cli.hh"
#include "util/error.hh"
#include "util/kv_json.hh"
#include "util/table.hh"
#include "util/units.hh"

namespace {

using namespace tts;
using Clock = std::chrono::steady_clock;

/** Deterministic diurnal-ish utilization signal. */
double
loadAt(double t)
{
    double day = t / 86400.0;
    return 0.55 + 0.3 * std::sin(6.283185307179586 * day) +
           0.05 * std::sin(6.283185307179586 * 7.0 * day);
}

struct ArmResult
{
    double wall_s = 0.0;
    std::size_t steps = 0;
    std::vector<double> enthalpies;
};

/**
 * One single-threaded resilience-style arm under the given kernel
 * config.  Models are constructed after the config is installed so
 * they capture it.
 */
ArmResult
runArm(const thermal::KernelConfig &cfg, double horizon_s,
       double step_s)
{
    thermal::setDefaultKernelConfig(cfg);
    auto spec = server::rd330Spec();
    auto wax = server::WaxConfig::paper();
    server::ServerModel healthy(spec, wax);
    server::ServerModel fan_failed(spec, wax);
    const double f0 = spec.cpu.nominalFreqGHz;

    healthy.network().setInletTemp(25.0);
    fan_failed.network().setInletTemp(25.0);
    healthy.setLoad(loadAt(0.0));
    fan_failed.setLoad(loadAt(0.0));
    healthy.solveSteadyState();
    fan_failed.solveSteadyState();

    ArmResult out;
    auto t0 = Clock::now();
    for (double t = 0.0; t < horizon_s; t += step_s) {
        double u = loadAt(t);
        // Inlet drifts with the room heating up after a partial
        // plant trip one quarter in.
        double inlet = t < 0.25 * horizon_s
            ? 25.0
            : 25.0 + 6.0 * std::min(1.0, (t - 0.25 * horizon_s) /
                                             (0.25 * horizon_s));
        healthy.network().setInletTemp(inlet);
        fan_failed.network().setInletTemp(inlet);
        healthy.setLoad(u);
        // The fan-failed server pins to the DVFS floor after the
        // fan event 40 % in (a fault that must invalidate the
        // memoized airflow operating point that same step).
        if (t < 0.4 * horizon_s)
            fan_failed.setLoad(u);
        else
            fan_failed.setLoad(u, 0.6 * f0);
        healthy.advance(step_s, step_s);
        fan_failed.advance(step_s, step_s);
        ++out.steps;
    }
    out.wall_s = std::chrono::duration<double>(Clock::now() - t0)
                     .count();
    out.enthalpies = healthy.network().enthalpies();
    auto fan_h = fan_failed.network().enthalpies();
    out.enthalpies.insert(out.enthalpies.end(), fan_h.begin(),
                          fan_h.end());
    return out;
}

/** Fleet end state after advanceServers() at the given width. */
std::vector<double>
runFleet(std::size_t threads, double horizon_s, double step_s)
{
    exec::setGlobalThreads(threads);
    auto spec = server::rd330Spec();
    auto wax = server::WaxConfig::paper();
    std::vector<server::ServerModel> fleet;
    fleet.reserve(16);
    for (std::size_t i = 0; i < 16; ++i) {
        fleet.emplace_back(spec, wax);
        fleet[i].network().setInletTemp(24.0 + 0.25 * i);
        fleet[i].setLoad(0.4 + 0.03 * i);
        fleet[i].solveSteadyState();
    }
    std::vector<server::ServerModel *> ptrs;
    for (auto &s : fleet)
        ptrs.push_back(&s);
    for (double t = 0.0; t < horizon_s; t += step_s) {
        for (std::size_t i = 0; i < fleet.size(); ++i)
            fleet[i].setLoad(loadAt(t + 3600.0 * i));
        server::advanceServers(ptrs, step_s, step_s);
    }
    std::vector<double> state;
    for (auto &s : fleet) {
        auto h = s.network().enthalpies();
        state.insert(state.end(), h.begin(), h.end());
    }
    return state;
}

bool
bitIdentical(const std::vector<double> &a,
             const std::vector<double> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i] != b[i])
            return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    double days = 2.0;
    double min_speedup = 2.0;
    bool short_run = false;
    std::string out_file;
    cli::Parser p("perf_thermal_kernel",
                  "SoA thermal kernel speedup + bit-identity gate.");
    p.addDouble("days", &days, "simulated horizon (days)");
    p.addDouble("min-speedup", &min_speedup,
                "fail below this optimized/reference speedup");
    p.addFlag("short", &short_run,
              "smoke horizon (~0.1 day) for ctest");
    p.addString("out", &out_file,
                "also write the kv-json here (BENCH_thermal.json)");
    switch (p.parse(argc - 1, argv + 1)) {
      case cli::Status::Help:
        std::fputs(p.helpText().c_str(), stdout);
        return 0;
      case cli::Status::Error:
        std::fprintf(stderr, "%s\n", p.error().c_str());
        return 2;
      case cli::Status::Ok:
        break;
    }
    if (short_run)
        days = 0.1;

    const double horizon_s = units::days(days);
    const double step_s = 10.0;

    // Single-thread arms: reference first, optimized second, from
    // identically-constructed models.
    auto reference =
        runArm(thermal::referenceKernelConfig(), horizon_s, step_s);
    auto optimized =
        runArm(thermal::KernelConfig{}, horizon_s, step_s);
    thermal::setDefaultKernelConfig(thermal::KernelConfig{});

    bool state_identical =
        bitIdentical(reference.enthalpies, optimized.enthalpies);
    double speedup = reference.wall_s / optimized.wall_s;
    double ref_ns = 1e9 * reference.wall_s /
                    static_cast<double>(reference.steps);
    double opt_ns = 1e9 * optimized.wall_s /
                    static_cast<double>(optimized.steps);

    // Fleet determinism across thread counts.
    double fleet_horizon = std::min(horizon_s, units::hours(6.0));
    auto fleet1 = runFleet(1, fleet_horizon, step_s);
    auto fleet8 = runFleet(8, fleet_horizon, step_s);
    bool fleet_identical = bitIdentical(fleet1, fleet8);

    std::cout << "=== SoA thermal kernel: " << days
              << "-day resilience-style transient ===\n\n";
    AsciiTable t({"kernel", "wall (s)", "ns/step", "steps/s"});
    t.addRow({"reference", formatFixed(reference.wall_s, 3),
              formatFixed(ref_ns, 0),
              formatFixed(reference.steps / reference.wall_s, 0)});
    t.addRow({"optimized", formatFixed(optimized.wall_s, 3),
              formatFixed(opt_ns, 0),
              formatFixed(optimized.steps / optimized.wall_s, 0)});
    t.print(std::cout);
    std::cout << "\nspeedup:                  "
              << formatFixed(speedup, 2) << "x (gate "
              << formatFixed(min_speedup, 2) << "x)\n"
              << "end state bit-identical:  "
              << (state_identical ? "yes" : "NO") << "\n"
              << "fleet 1 vs 8 threads:     "
              << (fleet_identical ? "bit-identical" : "DIFFERS")
              << "\n\n";

    std::map<std::string, double> json{
        {"days", days},
        {"steps", static_cast<double>(optimized.steps)},
        {"reference_ns_per_step", ref_ns},
        {"optimized_ns_per_step", opt_ns},
        {"optimized_steps_per_s",
         optimized.steps / optimized.wall_s},
        {"speedup", speedup},
        {"state_identical", state_identical ? 1.0 : 0.0},
        {"fleet_identical", fleet_identical ? 1.0 : 0.0},
    };
    std::cout << writeKvJson(json);
    if (!out_file.empty())
        writeKvJsonFile(out_file, json);

    if (!state_identical || !fleet_identical)
        return 1;
    return speedup >= min_speedup ? 0 : 1;
}
