/**
 * @file
 * Performance gate for tts::plant: the four cooling backends raced
 * over the pinned cluster scenario (rd330 fleet, paper wax, Google
 * diurnal trace), the same shape the plant.* golden keys pin.
 *
 * Three gates:
 *
 *  1. compareBackends at 1 thread and at 8 threads must return
 *     bit-identical arms - every cost, counter, and the full
 *     electric series (arms_identical).
 *  2. The MPC controller must beat the static CRAC plant on yearly
 *     net cost by at least --min-saving (mpc_beats_crac).
 *  3. The 1-thread wall clock must stay under --max-wall.
 *
 * Emits flat kv-json on stdout after the human-readable table (and,
 * with --out=FILE, to the file CI tracks as BENCH_plant.json):
 *
 *     {"servers": ..., "days": ..., "wall_s": ..., "wall_8t_s": ...,
 *      "arms_identical": 1, "crac_yearly_usd": ...,
 *      "hot_water_yearly_usd": ..., "economizer_yearly_usd": ...,
 *      "mpc_yearly_usd": ..., "mpc_vs_crac_saving": ...,
 *      "mpc_buffer_discharge_kwh": ..., "hw_reuse_credit_usd": ...,
 *      "mpc_beats_crac": 1}
 *
 * Exit code 0 only when all three gates hold.  --short shrinks the
 * fleet and horizon for the ctest perf smoke.
 */

#include <chrono>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "exec/parallel.hh"
#include "plant/study.hh"
#include "server/server_spec.hh"
#include "util/cli.hh"
#include "util/kv_json.hh"
#include "util/table.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"

namespace {

using namespace tts;

bool
sameArm(const plant::PlantResult &a, const plant::PlantResult &b)
{
    bool same = a.backend == b.backend && a.steps == b.steps &&
        a.electricEnergyJ == b.electricEnergyJ &&
        a.peakElectricW == b.peakElectricW &&
        a.energyCostUsd == b.energyCostUsd &&
        a.reusedEnergyJ == b.reusedEnergyJ &&
        a.reuseCreditUsd == b.reuseCreditUsd &&
        a.dvfsPenaltyUsd == b.dvfsPenaltyUsd &&
        a.netCostUsd == b.netCostUsd &&
        a.yearlyNetCostUsd == b.yearlyNetCostUsd &&
        a.throughputRetention == b.throughputRetention &&
        a.bufferDischargeJ == b.bufferDischargeJ &&
        a.electricW.size() == b.electricW.size();
    if (!same)
        return false;
    for (std::size_t i = 0; i < a.electricW.size(); ++i)
        if (a.electricW.times()[i] != b.electricW.times()[i] ||
            a.electricW.values()[i] != b.electricW.values()[i])
            return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using Clock = std::chrono::steady_clock;

    std::string out_file;
    std::size_t servers = 48;
    double days = 2.0;
    double min_saving = 0.10;
    double max_wall_s = 120.0;
    bool short_run = false;

    cli::Parser p("perf_plant",
                  "Four cooling backends over the pinned cluster "
                  "scenario: wall-clock budget, 1-vs-8-thread "
                  "bit-identity, and the MPC-beats-CRAC margin.");
    p.addString("out", &out_file,
                "also write the kv-json here (BENCH_plant.json)");
    p.addSize("servers", &servers, "cluster population");
    p.addDouble("days", &days, "simulated horizon (days)");
    p.addDouble("min-saving", &min_saving,
                "required (crac - mpc) / crac yearly saving");
    p.addDouble("max-wall", &max_wall_s,
                "wall-clock budget for the 1-thread race (s)");
    p.addFlag("short", &short_run,
              "shrink the fleet and horizon (ctest perf smoke)");
    switch (p.parse(argc - 1, argv + 1)) {
      case cli::Status::Help:
        std::fputs(p.helpText().c_str(), stdout);
        return 0;
      case cli::Status::Error:
        std::fprintf(stderr, "%s\n", p.error().c_str());
        return 2;
      case cli::Status::Ok:
        break;
    }
    if (short_run) {
        servers = 16;
        days = 1.0;
    }

    workload::GoogleTraceParams tp;
    tp.durationS = units::days(days);
    auto trace = workload::makeGoogleTrace(tp);

    plant::PlantScenario scenario;
    scenario.loadW = plant::clusterCoolingLoad(
        server::rd330Spec(), server::WaxConfig::paper(), servers,
        trace);
    scenario.serverCount = servers;
    plant::PlantConfig config;

    const std::vector<plant::BackendKind> kinds = {
        plant::BackendKind::Crac, plant::BackendKind::HotWater,
        plant::BackendKind::Economizer, plant::BackendKind::Mpc};

    auto timed_race = [&](std::size_t threads) {
        exec::setGlobalThreads(threads);
        auto t0 = Clock::now();
        auto cmp = plant::compareBackends(scenario, config, kinds);
        auto t1 = Clock::now();
        exec::setGlobalThreads(1);
        return std::make_pair(
            std::move(cmp),
            std::chrono::duration<double>(t1 - t0).count());
    };

    auto [serial, wall_s] = timed_race(1);
    auto [wide, wall_8t_s] = timed_race(8);

    bool identical = serial.arms.size() == wide.arms.size() &&
        serial.mpcVsCracSaving == wide.mpcVsCracSaving;
    for (std::size_t i = 0; identical && i < serial.arms.size();
         ++i)
        identical = sameArm(serial.arms[i], wide.arms[i]);

    const auto &crac = serial.arms[0];
    const auto &hw = serial.arms[1];
    const auto &eco = serial.arms[2];
    const auto &mpc = serial.arms[3];
    bool beats = serial.mpcVsCracSaving >= min_saving;
    bool wall_ok = wall_s <= max_wall_s;

    std::cout << "=== tts::plant: 4-backend race, " << servers
              << " servers, " << formatFixed(days, 1)
              << " days ===\n\n";
    AsciiTable t({"backend", "electric (kWh)", "net ($/yr)",
                  "reuse ($)", "retention"});
    for (const auto &arm : serial.arms)
        t.addRow({arm.backend,
                  formatFixed(arm.electricEnergyJ / 3.6e6, 2),
                  formatFixed(arm.yearlyNetCostUsd, 1),
                  formatFixed(arm.reuseCreditUsd, 2),
                  formatFixed(arm.throughputRetention, 4)});
    t.print(std::cout);
    std::cout << "\nwall clock 1t / 8t:      "
              << formatFixed(wall_s, 2) << " s / "
              << formatFixed(wall_8t_s, 2) << " s\n";
    std::cout << "bit-identical 1t vs 8t:  "
              << (identical ? "yes" : "NO") << "\n";
    std::cout << "mpc vs crac saving:      "
              << formatFixed(serial.mpcVsCracSaving * 100.0, 2)
              << "% (" << (beats ? "meets" : "MISSES") << " the "
              << formatFixed(min_saving * 100.0, 0)
              << "% floor)\n";
    std::cout << "mpc buffer discharge:    "
              << formatFixed(mpc.bufferDischargeJ / 3.6e6, 2)
              << " kWh\n\n";

    if (!wall_ok)
        std::cout << "FAIL: wall clock exceeded "
                  << formatFixed(max_wall_s, 0) << " s budget\n";
    if (!identical)
        std::cout << "FAIL: 1t and 8t races are not bit-identical\n";
    if (!beats)
        std::cout << "FAIL: MPC missed the saving floor\n";

    std::map<std::string, double> json{
        {"servers", static_cast<double>(servers)},
        {"days", days},
        {"wall_s", wall_s},
        {"wall_8t_s", wall_8t_s},
        {"arms_identical", identical ? 1.0 : 0.0},
        {"crac_yearly_usd", crac.yearlyNetCostUsd},
        {"hot_water_yearly_usd", hw.yearlyNetCostUsd},
        {"economizer_yearly_usd", eco.yearlyNetCostUsd},
        {"mpc_yearly_usd", mpc.yearlyNetCostUsd},
        {"mpc_vs_crac_saving", serial.mpcVsCracSaving},
        {"mpc_buffer_discharge_kwh", mpc.bufferDischargeJ / 3.6e6},
        {"hw_reuse_credit_usd", hw.reuseCreditUsd},
        {"mpc_beats_crac", beats ? 1.0 : 0.0},
    };
    std::cout << writeKvJson(json);
    if (!out_file.empty())
        writeKvJsonFile(out_file, json);
    return identical && beats && wall_ok ? 0 : 1;
}
