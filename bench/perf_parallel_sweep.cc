/**
 * @file
 * Performance bench for tts::exec: a 24-point melting-temperature
 * sweep (the Section 5.1 optimizer's inner loop) run serially and
 * through the thread pool, reporting wall-clock speedup and checking
 * that both orderings produce bit-identical peaks.
 *
 * Emits machine-readable flat JSON on stdout after the human-readable
 * table (and, with --out=FILE, to the file CI tracks as
 * BENCH_sweep.json), so the speedup can be followed over time:
 *
 *     {"parallel_s": ..., "points": 24, "serial_s": ...,
 *      "speedup": ..., "serial_threads": 1, "parallel_threads": ...,
 *      "identical": 1}
 *
 * The parallel lane honours TTS_THREADS when set and otherwise uses
 * at least two threads even on a single-core runner, so the recorded
 * speedup always compares genuinely different widths; the
 * identical-results check is meaningful at any width (and oversub-
 * scription on one core should cost ~nothing with coarse tasks).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/cooling_study.hh"
#include "exec/parallel.hh"
#include "obs/obs.hh"
#include "util/cli.hh"
#include "util/kv_json.hh"
#include "util/table.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"

int
main(int argc, char **argv)
{
    using namespace tts;
    using namespace tts::core;
    using Clock = std::chrono::steady_clock;

    std::string out_file;
    cli::Parser p("perf_parallel_sweep",
                  "Serial vs. parallel melting-temperature sweep "
                  "speedup and determinism check.");
    p.addString("out", &out_file,
                "also write the kv-json here (BENCH_sweep.json)");
    switch (p.parse(argc - 1, argv + 1)) {
      case cli::Status::Help:
        std::fputs(p.helpText().c_str(), stdout);
        return 0;
      case cli::Status::Error:
        std::fprintf(stderr, "%s\n", p.error().c_str());
        return 2;
      case cli::Status::Ok:
        break;
    }

    // One-day trace on a coarse grid: each point costs ~100 ms, so
    // the serial sweep is seconds, not minutes.
    workload::GoogleTraceParams tp;
    tp.durationS = units::days(1.0);
    auto trace = workload::makeGoogleTrace(tp);
    auto spec = server::rd330Spec();

    CoolingConfig opts;
    opts.cluster.controlIntervalS = 900.0;
    opts.cluster.thermalStepS = 15.0;

    std::vector<double> candidates;
    for (double m = 40.0; candidates.size() < 24; m += 0.5)
        candidates.push_back(m);

    auto sweep_with = [&](const exec::ThreadPool &pool) {
        return pool.map(candidates, [&](double melt) {
            CoolingConfig o = opts;
            o.run.meltTempC = melt;
            return runCoolingStudy(spec, trace, o).peakWithWaxW;
        });
    };

    // Explicit TTS_THREADS wins; otherwise never run the "parallel"
    // lane at width 1 (a single-core box would silently rerun the
    // serial sweep and record a meaningless ~1.0x speedup).
    std::size_t parallel_threads = exec::defaultThreadCount();
    if (!std::getenv("TTS_THREADS"))
        parallel_threads =
            std::max<std::size_t>(2, exec::hardwareThreads());

    exec::ThreadPool serial_pool(1);
    exec::ThreadPool parallel_pool(parallel_threads);

    auto t0 = Clock::now();
    auto serial = sweep_with(serial_pool);
    auto t1 = Clock::now();
    auto parallel = sweep_with(parallel_pool);
    auto t2 = Clock::now();

    double serial_s =
        std::chrono::duration<double>(t1 - t0).count();
    double parallel_s =
        std::chrono::duration<double>(t2 - t1).count();

    bool identical = serial.size() == parallel.size();
    for (std::size_t i = 0; identical && i < serial.size(); ++i)
        identical = serial[i] == parallel[i];

    std::cout << "=== tts::exec: 24-point melting-temperature sweep "
                 "(1U, one-day trace) ===\n\n";
    AsciiTable t({"mode", "threads", "wall (s)"});
    t.addRow({"serial", "1", formatFixed(serial_s, 2)});
    t.addRow({"parallel",
              formatFixed(
                  static_cast<double>(parallel_pool.threadCount()),
                  0),
              formatFixed(parallel_s, 2)});
    t.print(std::cout);
    std::cout << "\nspeedup:            "
              << formatFixed(serial_s / parallel_s, 2) << "x\n";
    std::cout << "identical results:  "
              << (identical ? "yes" : "NO") << "\n\n";

    // Where the time goes: rerun one parallel sweep with the obs
    // profiler live.  Kept out of the timed passes above so the
    // kv-json series stays comparable across history.
    obs::resetForTest();
    obs::setEnabled(true);
    sweep_with(parallel_pool);
    obs::setEnabled(false);
    obs::drainEvents(); // Profiling only; discard the trace.
    std::cout << "profile of one instrumented parallel sweep:\n";
    obs::writeProfileTable(std::cout);
    obs::resetForTest();
    std::cout << "\n";

    std::map<std::string, double> json{
        {"points", static_cast<double>(candidates.size())},
        {"serial_threads", 1.0},
        {"parallel_threads",
         static_cast<double>(parallel_pool.threadCount())},
        {"serial_s", serial_s},
        {"parallel_s", parallel_s},
        {"speedup", serial_s / parallel_s},
        {"identical", identical ? 1.0 : 0.0},
    };
    std::cout << writeKvJson(json);
    if (!out_file.empty())
        writeKvJsonFile(out_file, json);
    return identical ? 0 : 1;
}
