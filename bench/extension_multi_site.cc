/**
 * @file
 * Extension: geographic shifting vs. thermal time shifting.
 *
 * Section 5.2 names "relocating work to other datacenters" as the
 * alternative to downclocking; the related work covers geographic
 * balancing.  This bench runs two equal 1U sites six time zones
 * apart and compares four configurations: neither technique, PCM
 * only, geographic shifting only (30 % of load relocatable), and
 * both.  The plant-sizing metric is each site's own peak cooling
 * load (every site needs its own plant).
 */

#include <iostream>
#include <vector>

#include "datacenter/cluster.hh"
#include "datacenter/multi_site.hh"
#include "exec/parallel.hh"
#include "util/table.hh"
#include "workload/google_trace.hh"

int
main()
{
    using namespace tts;
    using namespace tts::datacenter;
    using server::WaxConfig;

    auto spec = server::rd330Spec();
    workload::GoogleTraceParams base;
    auto east = workload::makeGoogleTrace(base);
    auto west =
        workload::makeGoogleTrace(shiftedSiteParams(base, 6.0));
    auto [east_geo, west_geo] = geoBalance(east, west, 0.30);

    ClusterRunOptions run;
    auto site_peak = [&](const workload::WorkloadTrace &trace,
                         const WaxConfig &wax) {
        Cluster c(spec, wax);
        return c.run(trace, run).peakCoolingLoad();
    };

    struct Config
    {
        const char *name;
        const workload::WorkloadTrace *a;
        const workload::WorkloadTrace *b;
        WaxConfig wax;
    };
    // The geo-balanced trace is flatter, so the wax wants a lower
    // melting point there: re-tune with a quick local sweep.  The
    // candidate evaluations fan out (TTS_THREADS); the argmin scan
    // below keeps the serial lowest-temperature tie-break.
    std::vector<double> melt_candidates;
    for (double m = spec.defaultMeltTempC - 4.0;
         m <= spec.defaultMeltTempC + 1.0 + 1e-9; m += 1.0)
        melt_candidates.push_back(m);
    auto melt_peaks = exec::parallel_map(
        melt_candidates, [&](double m) {
            return site_peak(east_geo, WaxConfig::withMeltTemp(m));
        });
    double best_melt = spec.defaultMeltTempC;
    double best_peak = 1e300;
    for (std::size_t i = 0; i < melt_candidates.size(); ++i) {
        if (melt_peaks[i] < best_peak) {
            best_peak = melt_peaks[i];
            best_melt = melt_candidates[i];
        }
    }

    Config configs[5] = {
        {"neither", &east, &west, WaxConfig::none()},
        {"PCM only", &east, &west, WaxConfig::paper()},
        {"geo only (30%)", &east_geo, &west_geo,
         WaxConfig::none()},
        {"PCM + geo", &east_geo, &west_geo, WaxConfig::paper()},
        {"PCM (re-tuned) + geo", &east_geo, &west_geo,
         WaxConfig::withMeltTemp(best_melt)},
    };

    std::cout << "=== Extension: two 1U sites, 6 time zones apart "
                 "(1008 servers each) ===\n\n";
    AsciiTable t({"configuration", "east peak (kW)",
                  "west peak (kW)", "worst site (kW)",
                  "vs. neither (%)"});
    double worst0 = 0.0;
    for (const auto &cfg : configs) {
        // Both sites of a configuration run concurrently.
        auto runs = runSites(spec, cfg.wax, {*cfg.a, *cfg.b});
        double pa = runs[0].peakCoolingLoad() / 1e3;
        double pb = runs[1].peakCoolingLoad() / 1e3;
        double worst = std::max(pa, pb);
        if (worst0 == 0.0)
            worst0 = worst;
        t.addRow({cfg.name, formatFixed(pa, 1),
                  formatFixed(pb, 1), formatFixed(worst, 1),
                  formatFixed(100.0 * (1.0 - worst / worst0), 1)});
    }
    t.print(std::cout);

    std::cout << "\n(re-tuned melting point for the flattened "
                 "trace: "
              << formatFixed(best_melt, 1) << " C vs. "
              << formatFixed(spec.defaultMeltTempC, 1)
              << " C default)\n";
    std::cout << "\nreading: geographic shifting flattens each "
                 "site's diurnal swing (the sites' peaks\nare "
                 "offset, so each can absorb the other's crest); "
                 "PCM then shaves what remains.\nThe techniques "
                 "compose because they act on different axes - "
                 "space and time.\n";
    return 0;
}
