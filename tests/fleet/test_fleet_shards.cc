/**
 * @file
 * Shard-boundary edge cases: degenerate fleets (empty, singleton),
 * populations that do not divide the shard count (prime sizes,
 * 100 servers over 7 shards), and more shards than servers.  Every
 * case must run and produce shard-width-invariant results.
 */

#include <gtest/gtest.h>

#include "fleet/fleet.hh"
#include "server/server_spec.hh"
#include "util/error.hh"
#include "workload/trace.hh"

namespace tts {
namespace fleet {
namespace {

FleetConfig
shardConfig(std::size_t servers, std::size_t shards)
{
    FleetConfig cfg;
    cfg.run.serverCount = servers;
    cfg.run.utilization = 0.65;
    cfg.durationS = 3600.0;
    cfg.controlIntervalS = 300.0;
    cfg.thermalStepS = 60.0;
    cfg.shardCount = shards;
    cfg.perturb.eventsPerServerDay = 12.0;
    return cfg;
}

FleetResult
runShardCase(std::size_t servers, std::size_t shards)
{
    FleetSim sim(server::rd330Spec(), workload::WorkloadTrace{},
                 shardConfig(servers, shards));
    EXPECT_EQ(sim.shardCount(), shards);
    EXPECT_TRUE(sim.run());
    return sim.take();
}

TEST(FleetShards, EmptyFleetRunsToCompletion)
{
    FleetResult r = runShardCase(0, 8);
    EXPECT_EQ(r.serverCount, 0u);
    EXPECT_EQ(r.serverSteps, 0u);
    EXPECT_EQ(r.materializedRows, 0u);
    ASSERT_FALSE(r.coolingLoadW.empty());
    EXPECT_EQ(r.coolingLoadW.max(), 0.0);
    EXPECT_EQ(r.peakItPowerW, 0.0);
    // Two empty fleets agree on the (time-only) digest.
    FleetResult r2 = runShardCase(0, 3);
    EXPECT_EQ(r.stateDigest, r2.stateDigest);
}

TEST(FleetShards, SingleServerFleetIsShardInvariant)
{
    FleetResult a = runShardCase(1, 1);
    FleetResult b = runShardCase(1, 8);
    EXPECT_EQ(a.serverCount, 1u);
    EXPECT_EQ(a.stateDigest, b.stateDigest);
    EXPECT_EQ(a.coolingLoadW.values(), b.coolingLoadW.values());
    EXPECT_GT(a.peakItPowerW, 0.0);
}

TEST(FleetShards, PrimeFleetSizeIsShardInvariant)
{
    FleetResult a = runShardCase(97, 1);
    FleetResult b = runShardCase(97, 8);
    FleetResult c = runShardCase(97, 64);
    ASSERT_GT(a.materializedRows, 0u);
    EXPECT_EQ(a.stateDigest, b.stateDigest);
    EXPECT_EQ(a.stateDigest, c.stateDigest);
    EXPECT_EQ(a.coolingLoadW.values(), b.coolingLoadW.values());
    EXPECT_EQ(a.coolingLoadW.values(), c.coolingLoadW.values());
}

TEST(FleetShards, IndivisibleShardCountIsShardInvariant)
{
    // 100 servers over 7 shards: ceil chunk of 15 leaves the last
    // shard short - the ranges must still cover exactly [0, 100).
    FleetResult a = runShardCase(100, 7);
    FleetResult b = runShardCase(100, 1);
    EXPECT_EQ(a.stateDigest, b.stateDigest);
    EXPECT_EQ(a.itPowerW.values(), b.itPowerW.values());
}

TEST(FleetShards, MoreShardsThanServers)
{
    FleetResult a = runShardCase(5, 64);
    FleetResult b = runShardCase(5, 1);
    EXPECT_EQ(a.stateDigest, b.stateDigest);
    EXPECT_EQ(a.coolingLoadW.values(), b.coolingLoadW.values());
}

TEST(FleetShards, DefaultShardCountIsEight)
{
    FleetConfig cfg = shardConfig(16, 0);
    FleetSim sim(server::rd330Spec(), workload::WorkloadTrace{},
                 cfg);
    EXPECT_EQ(sim.shardCount(), 8u);
}

TEST(FleetShards, ExtraEventOutsideFleetIsRejected)
{
    FleetConfig cfg = shardConfig(4, 2);
    cfg.extraEvents = {
        {10.0, 4, PerturbKind::UtilizationDelta, 0.1}};
    EXPECT_THROW(FleetSim(server::rd330Spec(),
                          workload::WorkloadTrace{}, cfg),
                 Error);
}

} // namespace
} // namespace fleet
} // namespace tts
