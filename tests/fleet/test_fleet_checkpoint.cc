/**
 * @file
 * Fleet kill-and-resume at warehouse scale: a 40k-server transient
 * interrupted every half hour of simulated time (fresh FleetSim per
 * chunk, simulating a new process restoring the checkpoint file)
 * must finish bit-identical to an uninterrupted run, at 1 and 8
 * worker threads.  Mirrors tests/guard/test_checkpoint_resume.cc for
 * the resilience runner.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "exec/parallel.hh"
#include "fleet/fleet.hh"
#include "server/server_spec.hh"
#include "util/error.hh"
#include "workload/trace.hh"

namespace tts {
namespace fleet {
namespace {

const char *kCkptPath = "fleet_resume_test.ckpt";

FleetConfig
warehouseConfig()
{
    FleetConfig cfg;
    cfg.run.serverCount = 40320;
    cfg.run.utilization = 0.7;
    cfg.durationS = 2.0 * 3600.0;
    cfg.controlIntervalS = 300.0;
    cfg.thermalStepS = 60.0;
    // ~350 expected perturbed rows: enough to exercise row
    // save/restore without drowning the test in integration time.
    cfg.perturb.eventsPerServerDay = 0.1;
    return cfg;
}

FleetResult
uninterruptedRun(std::size_t threads)
{
    exec::setGlobalThreads(threads);
    FleetSim sim(server::rd330Spec(), workload::WorkloadTrace{},
                 warehouseConfig());
    EXPECT_TRUE(sim.run());
    FleetResult r = sim.take();
    exec::setGlobalThreads(1);
    return r;
}

/** Run in ~30-simulated-minute chunks, new FleetSim per chunk. */
FleetResult
chunkedRun(std::size_t threads)
{
    std::remove(kCkptPath);
    exec::setGlobalThreads(threads);
    core::CheckpointPolicy policy;
    policy.path = kCkptPath;
    policy.checkpointEveryS = 900.0;
    policy.stopAfterS = 1800.0;
    FleetResult out;
    int chunks = 0;
    for (;;) {
        FleetSim sim(server::rd330Spec(), workload::WorkloadTrace{},
                     warehouseConfig());
        ++chunks;
        EXPECT_LE(chunks, 16) << "resume loop not converging";
        if (sim.run(policy)) {
            out = sim.take();
            break;
        }
    }
    EXPECT_GE(chunks, 3) << "kill interval never triggered";
    exec::setGlobalThreads(1);
    std::remove(kCkptPath);
    return out;
}

TEST(FleetCheckpoint, WarehouseResumeIsBitIdentical)
{
    FleetResult ref = uninterruptedRun(1);
    ASSERT_EQ(ref.serverCount, 40320u);
    ASSERT_GT(ref.materializedRows, 0u);
    ASSERT_GT(ref.dedupeFactor(), 10.0);

    FleetResult serial = chunkedRun(1);
    EXPECT_EQ(serial.stateDigest, ref.stateDigest);
    EXPECT_EQ(serial.materializedRows, ref.materializedRows);
    EXPECT_EQ(serial.eventsApplied, ref.eventsApplied);
    EXPECT_EQ(serial.coolingLoadW.times(), ref.coolingLoadW.times());
    EXPECT_EQ(serial.coolingLoadW.values(),
              ref.coolingLoadW.values());
    EXPECT_EQ(serial.itPowerW.values(), ref.itPowerW.values());
    EXPECT_EQ(serial.meltFraction.values(),
              ref.meltFraction.values());
    EXPECT_EQ(serial.peakCoolingW, ref.peakCoolingW);
    EXPECT_EQ(serial.coolingEnergyJ, ref.coolingEnergyJ);

    FleetResult wide = chunkedRun(8);
    EXPECT_EQ(wide.stateDigest, ref.stateDigest);
    EXPECT_EQ(wide.coolingLoadW.values(), ref.coolingLoadW.values());
    EXPECT_EQ(wide.coolingEnergyJ, ref.coolingEnergyJ);
}

TEST(FleetCheckpoint, RestoreRejectsMismatchedConfiguration)
{
    std::remove(kCkptPath);
    FleetConfig cfg = warehouseConfig();
    cfg.run.serverCount = 64;
    cfg.perturb.eventsPerServerDay = 0.0;
    FleetSim sim(server::rd330Spec(), workload::WorkloadTrace{},
                 cfg);
    sim.step();
    sim.save(kCkptPath);

    FleetConfig other = cfg;
    other.run.serverCount = 65;
    FleetSim bigger(server::rd330Spec(), workload::WorkloadTrace{},
                    other);
    EXPECT_THROW(bigger.restore(kCkptPath), Error);

    FleetConfig reseeded = cfg;
    reseeded.seed ^= 1;
    FleetSim wrong_seed(server::rd330Spec(),
                        workload::WorkloadTrace{}, reseeded);
    EXPECT_THROW(wrong_seed.restore(kCkptPath), Error);
    std::remove(kCkptPath);
}

TEST(FleetCheckpoint, SaveRestoreRoundTripsMidRun)
{
    std::remove(kCkptPath);
    FleetConfig cfg = warehouseConfig();
    cfg.run.serverCount = 128;
    cfg.extraEvents = {
        {400.0, 17, PerturbKind::FanFailure, 0.0},
        {700.0, 90, PerturbKind::InletDrift, 3.0},
    };
    FleetSim a(server::rd330Spec(), workload::WorkloadTrace{}, cfg);
    for (int i = 0; i < 4; ++i)
        a.step();
    a.save(kCkptPath);

    FleetSim b(server::rd330Spec(), workload::WorkloadTrace{}, cfg);
    b.restore(kCkptPath);
    EXPECT_EQ(b.timeS(), a.timeS());
    EXPECT_EQ(b.materializedCount(), a.materializedCount());
    EXPECT_EQ(b.stateDigest(), a.stateDigest());

    while (!a.done())
        a.step();
    while (!b.done())
        b.step();
    EXPECT_EQ(b.stateDigest(), a.stateDigest());
    std::remove(kCkptPath);
}

} // namespace
} // namespace fleet
} // namespace tts
