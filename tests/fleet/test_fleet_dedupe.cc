/**
 * @file
 * Archetype-dedupe property tests.
 *
 * The dedupe bet is that an unperturbed server is bit-identical to
 * its arena baseline *forever*, so aliasing it is exact.  These tests
 * pin the property from both sides: a gratuitously materialized row
 * stays bit-identical to the baseline through a whole run, and every
 * perturbation kind forces materialization and genuine divergence.
 * The dedupe path is also cross-checked against the naive
 * every-row-private reference path.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "fleet/fleet.hh"
#include "server/server_spec.hh"
#include "workload/trace.hh"

namespace tts {
namespace fleet {
namespace {

FleetConfig
quietConfig(std::size_t servers = 48)
{
    FleetConfig cfg;
    cfg.run.serverCount = servers;
    cfg.run.utilization = 0.7;
    cfg.durationS = 2.0 * 3600.0;
    cfg.controlIntervalS = 300.0;
    cfg.thermalStepS = 60.0;
    cfg.perturb.eventsPerServerDay = 0.0;
    return cfg;
}

TEST(FleetDedupe, QuietFleetStaysFullyAliased)
{
    FleetSim sim(server::rd330Spec(), workload::WorkloadTrace{},
                 quietConfig());
    ASSERT_TRUE(sim.run());
    FleetResult r = sim.take();
    EXPECT_EQ(r.materializedRows, 0u);
    EXPECT_EQ(r.eventsApplied, 0u);
    // 48 logical servers integrate as one baseline row.
    EXPECT_NEAR(r.dedupeFactor(), 48.0, 1e-9);
}

TEST(FleetDedupe, MaterializedCloneStaysBitIdenticalToBaseline)
{
    FleetSim aliased(server::rd330Spec(), workload::WorkloadTrace{},
                     quietConfig());
    FleetSim cloned(server::rd330Spec(), workload::WorkloadTrace{},
                    quietConfig());
    cloned.materializeForTest(5);
    EXPECT_TRUE(cloned.isMaterialized(5));
    while (!aliased.done())
        aliased.step();
    while (!cloned.done())
        cloned.step();
    // The private row advanced through its own integrator, the
    // aliased rows through the shared baseline - still equal.
    EXPECT_EQ(cloned.serverDigest(5), cloned.serverDigest(4));
    EXPECT_EQ(cloned.stateDigest(), aliased.stateDigest());
    EXPECT_EQ(cloned.materializedCount(), 1u);
}

TEST(FleetDedupe, EveryPerturbationKindForcesDivergence)
{
    FleetConfig cfg = quietConfig();
    cfg.extraEvents = {
        {600.0, 3, PerturbKind::UtilizationDelta, 0.2},
        {600.0, 7, PerturbKind::InletDrift, 4.0},
        {600.0, 11, PerturbKind::FanFailure, 0.0},
    };
    FleetSim sim(server::rd330Spec(), workload::WorkloadTrace{},
                 cfg);
    while (!sim.done())
        sim.step();

    EXPECT_EQ(sim.materializedCount(), 3u);
    EXPECT_EQ(sim.eventsApplied(), 3u);
    std::uint64_t baseline_digest = sim.serverDigest(0);
    for (std::uint32_t s : {3u, 7u, 11u}) {
        SCOPED_TRACE("server " + std::to_string(s));
        EXPECT_TRUE(sim.isMaterialized(s));
        EXPECT_NE(sim.serverDigest(s), baseline_digest);
        EXPECT_FALSE(sim.serverPerturbState(s).isBaseline());
    }
    EXPECT_FALSE(sim.isMaterialized(4));
    EXPECT_EQ(sim.serverPerturbState(3).utilDelta, 0.2);
    EXPECT_EQ(sim.serverPerturbState(7).inletDeltaC, 4.0);
    EXPECT_TRUE(sim.serverPerturbState(11).fanPinned);
    // The fan-failed server runs pinned to the DVFS floor.
    EXPECT_EQ(sim.serverView(11).frequency(),
              server::rd330Spec().cpu.minFreqGHz);
}

TEST(FleetDedupe, DedupeMatchesNaivePerServerReference)
{
    FleetConfig cfg = quietConfig(32);
    cfg.perturb.eventsPerServerDay = 4.0;
    cfg.extraEvents = {
        {900.0, 2, PerturbKind::UtilizationDelta, -0.15},
        {1800.0, 30, PerturbKind::FanFailure, 0.0},
    };

    FleetConfig naive_cfg = cfg;
    naive_cfg.dedupe = false;

    FleetSim dedupe(server::rd330Spec(), workload::WorkloadTrace{},
                    cfg);
    FleetSim naive(server::rd330Spec(), workload::WorkloadTrace{},
                   naive_cfg);
    ASSERT_TRUE(dedupe.run());
    ASSERT_TRUE(naive.run());

    // Per-server state is bit-identical: the digest covers every
    // server's enthalpies, PCM latches, and operating point.
    EXPECT_EQ(naive.materializedCount(), 32u);
    EXPECT_EQ(dedupe.stateDigest(), naive.stateDigest());

    // Aggregates sum in different shapes (aliased-count multiply vs
    // 32 additions), so compare to tight relative tolerance instead
    // of bit equality.
    FleetResult rd = dedupe.take();
    FleetResult rn = naive.take();
    ASSERT_EQ(rd.coolingLoadW.size(), rn.coolingLoadW.size());
    for (std::size_t i = 0; i < rd.coolingLoadW.size(); ++i) {
        double a = rd.coolingLoadW.values()[i];
        double b = rn.coolingLoadW.values()[i];
        EXPECT_NEAR(a, b, 1e-9 * std::abs(b));
    }
    EXPECT_NEAR(rd.coolingEnergyJ, rn.coolingEnergyJ,
                1e-9 * rn.coolingEnergyJ);
    EXPECT_GT(rd.dedupeFactor(), 1.5);
    EXPECT_NEAR(rn.dedupeFactor(), 32.0 / 33.0, 1e-9);
}

TEST(FleetDedupe, MixedPlatformsSplitIntoArenas)
{
    FleetConfig cfg = quietConfig(32);
    cfg.mixedPlatforms = true;
    FleetSim sim(server::rd330Spec(), workload::WorkloadTrace{},
                 cfg);
    ASSERT_EQ(sim.arenas().size(), 3u);
    // 32 = 11 + 11 + 10, contiguous and disjoint.
    std::uint32_t next = 0;
    std::uint32_t total = 0;
    for (const auto &a : sim.arenas()) {
        EXPECT_EQ(a->firstServer(), next);
        next += a->count();
        total += a->count();
    }
    EXPECT_EQ(total, 32u);
    ASSERT_TRUE(sim.run());
    FleetResult r = sim.take();
    // Three baseline rows integrate for 32 logical servers.
    EXPECT_NEAR(r.dedupeFactor(), 32.0 / 3.0, 1e-9);
}

} // namespace
} // namespace fleet
} // namespace tts
