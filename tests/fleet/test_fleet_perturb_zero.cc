/**
 * @file
 * Locks the dedupe fast path: a perturbation rate of zero must yield
 * a fleet digest bit-identical to a schedule-free run, regardless of
 * the seed or the (unused) magnitude knobs - the opt oracle depends
 * on this to keep candidate evaluations fully deduplicated.
 */

#include <gtest/gtest.h>

#include "fleet/fleet.hh"
#include "server/server_spec.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"

namespace tts {
namespace fleet {
namespace {

workload::WorkloadTrace
shortTrace()
{
    workload::GoogleTraceParams p;
    p.durationS = units::days(1.0);
    p.sampleIntervalS = 900.0;
    return workload::makeGoogleTrace(p);
}

FleetConfig
baseConfig()
{
    FleetConfig cfg;
    cfg.run.serverCount = 24;
    cfg.durationS = units::days(1.0);
    cfg.controlIntervalS = 300.0;
    cfg.thermalStepS = 60.0;
    return cfg;
}

std::uint64_t
digestOf(const FleetConfig &cfg)
{
    FleetSim sim(server::x4470Spec(), shortTrace(), cfg);
    sim.run();
    return sim.stateDigest();
}

TEST(FleetPerturbZero, RateZeroMatchesScheduleFreeRun)
{
    // Reference: the default model (rate 0, default magnitudes).
    std::uint64_t reference = digestOf(baseConfig());

    // Rate 0 with aggressive magnitude knobs: the magnitudes must be
    // dead weight - no events are ever drawn.
    FleetConfig loud = baseConfig();
    loud.perturb.eventsPerServerDay = 0.0;
    loud.perturb.utilDeltaSigma = 0.5;
    loud.perturb.inletDriftSigmaC = 10.0;
    loud.perturb.fanFailureWeight = 1.0;
    EXPECT_EQ(digestOf(loud), reference);

    // The seed only feeds the schedule generator; with rate 0 it
    // must not matter either.
    for (std::uint64_t seed : {0x1ULL, 0xdeadbeefULL, 0x715f1ee7ULL}) {
        FleetConfig cfg = baseConfig();
        cfg.seed = seed;
        EXPECT_EQ(digestOf(cfg), reference) << "seed " << seed;
    }
}

TEST(FleetPerturbZero, RateZeroKeepsTheFleetFullyDeduped)
{
    FleetConfig cfg = baseConfig();
    cfg.perturb.eventsPerServerDay = 0.0;
    FleetSim sim(server::x4470Spec(), shortTrace(), cfg);
    EXPECT_TRUE(sim.events().empty());
    sim.run();
    auto r = sim.take();
    EXPECT_EQ(r.materializedRows, 0u);
    EXPECT_EQ(r.eventsApplied, 0u);
    // Every logical step was served by the shared baseline rows.
    EXPECT_GT(r.dedupeFactor(), 1.0);
}

TEST(FleetPerturbZero, NonzeroRateActuallyPerturbs)
{
    // Guard the guard: the same fixture with a hot rate must diverge,
    // or the zero-rate equalities above prove nothing.
    FleetConfig cfg = baseConfig();
    cfg.perturb.eventsPerServerDay = 2.0;
    FleetSim sim(server::x4470Spec(), shortTrace(), cfg);
    EXPECT_FALSE(sim.events().empty());
    sim.run();
    EXPECT_NE(sim.stateDigest(), digestOf(baseConfig()));
}

} // namespace
} // namespace fleet
} // namespace tts
