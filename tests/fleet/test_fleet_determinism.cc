/**
 * @file
 * Fleet determinism matrix: one configuration run at every
 * combination of {1, 4, 16} pool threads x {1, 8, 64} shards must
 * produce bit-identical series, peaks, and state digests.  The
 * contract holds because all randomness is keyed per server
 * (Rng::forStream) and aggregation runs in canonical (arena, server)
 * order - neither the pool width nor the shard width appears
 * anywhere in the arithmetic.
 */

#include <gtest/gtest.h>

#include <vector>

#include "exec/parallel.hh"
#include "fleet/fleet.hh"
#include "server/server_spec.hh"
#include "workload/trace.hh"

namespace tts {
namespace fleet {
namespace {

FleetConfig
matrixConfig(std::size_t shards)
{
    FleetConfig cfg;
    cfg.run.serverCount = 96;
    cfg.run.utilization = 0.6;
    cfg.durationS = 3.0 * 3600.0;
    cfg.controlIntervalS = 300.0;
    cfg.thermalStepS = 60.0;
    cfg.shardCount = shards;
    cfg.perturb.eventsPerServerDay = 6.0;
    return cfg;
}

FleetResult
runMatrixCell(std::size_t threads, std::size_t shards)
{
    exec::setGlobalThreads(threads);
    FleetSim sim(server::rd330Spec(), workload::WorkloadTrace{},
                 matrixConfig(shards));
    EXPECT_TRUE(sim.run());
    FleetResult r = sim.take();
    exec::setGlobalThreads(1);
    return r;
}

void
expectSameSeries(const TimeSeries &a, const TimeSeries &b)
{
    EXPECT_EQ(a.times(), b.times());
    EXPECT_EQ(a.values(), b.values());
}

TEST(FleetDeterminism, ThreadByShardMatrixIsBitIdentical)
{
    const std::vector<std::size_t> threads = {1, 4, 16};
    const std::vector<std::size_t> shards = {1, 8, 64};

    FleetResult ref = runMatrixCell(1, 1);
    ASSERT_GT(ref.eventsApplied, 0u);
    ASSERT_GT(ref.materializedRows, 0u);
    ASSERT_LT(ref.materializedRows, ref.serverCount);

    for (std::size_t t : threads) {
        for (std::size_t s : shards) {
            if (t == 1 && s == 1)
                continue;
            SCOPED_TRACE("threads=" + std::to_string(t) +
                         " shards=" + std::to_string(s));
            FleetResult r = runMatrixCell(t, s);
            EXPECT_EQ(r.stateDigest, ref.stateDigest);
            EXPECT_EQ(r.materializedRows, ref.materializedRows);
            EXPECT_EQ(r.eventsApplied, ref.eventsApplied);
            EXPECT_EQ(r.peakCoolingW, ref.peakCoolingW);
            EXPECT_EQ(r.peakItPowerW, ref.peakItPowerW);
            EXPECT_EQ(r.coolingEnergyJ, ref.coolingEnergyJ);
            expectSameSeries(r.coolingLoadW, ref.coolingLoadW);
            expectSameSeries(r.itPowerW, ref.itPowerW);
            expectSameSeries(r.meltFraction, ref.meltFraction);
        }
    }
}

TEST(FleetDeterminism, RepeatedRunIsBitIdentical)
{
    FleetResult a = runMatrixCell(4, 8);
    FleetResult b = runMatrixCell(4, 8);
    EXPECT_EQ(a.stateDigest, b.stateDigest);
    expectSameSeries(a.coolingLoadW, b.coolingLoadW);
}

TEST(FleetDeterminism, PerturbationScheduleIsShardInvariant)
{
    // The schedule is drawn before stepping from per-server
    // sub-streams; two sims with different shard widths must see the
    // exact same event list.
    FleetSim a(server::rd330Spec(), workload::WorkloadTrace{},
               matrixConfig(1));
    FleetSim b(server::rd330Spec(), workload::WorkloadTrace{},
               matrixConfig(64));
    ASSERT_EQ(a.events().size(), b.events().size());
    for (std::size_t i = 0; i < a.events().size(); ++i) {
        EXPECT_EQ(a.events()[i].timeS, b.events()[i].timeS);
        EXPECT_EQ(a.events()[i].server, b.events()[i].server);
        EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
        EXPECT_EQ(a.events()[i].value, b.events()[i].value);
    }
}

} // namespace
} // namespace fleet
} // namespace tts
