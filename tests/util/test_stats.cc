/** @file Tests for statistics helpers. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/error.hh"
#include "util/stats.hh"

namespace tts {
namespace {

TEST(RunningStats, EmptyState)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue)
{
    RunningStats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, StddevIsSqrtVariance)
{
    RunningStats s;
    s.add(1.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.stddev(), std::sqrt(s.variance()));
}

TEST(RunningStats, NegativeValuesTracked)
{
    RunningStats s;
    s.add(-10.0);
    s.add(10.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), -10.0);
}

TEST(RunningStats, ResetClearsState)
{
    RunningStats s;
    s.add(1.0);
    s.add(2.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(RunningStats, StableOnLargeOffsets)
{
    // Welford should survive a large common offset.
    RunningStats s;
    for (double x : {1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0})
        s.add(x);
    EXPECT_NEAR(s.mean(), 1e9 + 10.0, 1e-3);
    EXPECT_NEAR(s.variance(), 30.0, 1e-6);
}

TEST(Percentile, MedianOfOddCount)
{
    EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(Percentile, Extremes)
{
    std::vector<double> v{5.0, 1.0, 9.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
}

TEST(Percentile, InterpolatesBetweenRanks)
{
    EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25.0), 2.5);
}

TEST(Percentile, SingleElement)
{
    EXPECT_DOUBLE_EQ(percentile({42.0}, 99.0), 42.0);
}

TEST(Percentile, RejectsBadInput)
{
    EXPECT_THROW(percentile({}, 50.0), FatalError);
    EXPECT_THROW(percentile({1.0}, -1.0), FatalError);
    EXPECT_THROW(percentile({1.0}, 101.0), FatalError);
}

TEST(MeanAbsoluteDifference, KnownValue)
{
    EXPECT_DOUBLE_EQ(
        meanAbsoluteDifference({1.0, 2.0, 3.0}, {2.0, 2.0, 1.0}),
        1.0);
}

TEST(MeanAbsoluteDifference, ZeroForIdentical)
{
    std::vector<double> v{1.0, -2.0, 3.5};
    EXPECT_DOUBLE_EQ(meanAbsoluteDifference(v, v), 0.0);
}

TEST(MeanAbsoluteDifference, RejectsMismatchedSizes)
{
    EXPECT_THROW(meanAbsoluteDifference({1.0}, {1.0, 2.0}),
                 FatalError);
    EXPECT_THROW(meanAbsoluteDifference({}, {}), FatalError);
}

TEST(PearsonCorrelation, PerfectPositive)
{
    EXPECT_NEAR(pearsonCorrelation({1.0, 2.0, 3.0},
                                   {10.0, 20.0, 30.0}),
                1.0, 1e-12);
}

TEST(PearsonCorrelation, PerfectNegative)
{
    EXPECT_NEAR(pearsonCorrelation({1.0, 2.0, 3.0},
                                   {3.0, 2.0, 1.0}),
                -1.0, 1e-12);
}

TEST(PearsonCorrelation, NearZeroForOrthogonal)
{
    EXPECT_NEAR(pearsonCorrelation({1.0, 2.0, 3.0, 4.0},
                                   {1.0, -1.0, -1.0, 1.0}),
                0.0, 1e-12);
}

TEST(PearsonCorrelation, RejectsZeroVariance)
{
    EXPECT_THROW(pearsonCorrelation({1.0, 1.0}, {1.0, 2.0}),
                 FatalError);
}

TEST(Histogram, EmptyState)
{
    Histogram h({1.0, 2.0});
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.bucketCount(), 3u);
    for (std::size_t i = 0; i < h.bucketCount(); ++i)
        EXPECT_EQ(h.countInBucket(i), 0u);
}

TEST(Histogram, BucketsAreCumulativeUpperBounds)
{
    Histogram h({0.0, 2.0, 4.0});
    // Exactly on a bound lands in that bound's bucket ("le"
    // semantics); above every bound lands in the overflow cell.
    h.add(-1.0); // <= 0
    h.add(0.0);  // <= 0
    h.add(1.0);  // <= 2
    h.add(2.0);  // <= 2
    h.add(3.0);  // <= 4
    h.add(9.0);  // overflow
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.countInBucket(0), 2u);
    EXPECT_EQ(h.countInBucket(1), 2u);
    EXPECT_EQ(h.countInBucket(2), 1u);
    EXPECT_EQ(h.countInBucket(3), 1u);
    EXPECT_DOUBLE_EQ(h.min(), -1.0);
    EXPECT_DOUBLE_EQ(h.max(), 9.0);
    EXPECT_DOUBLE_EQ(h.sum(), 14.0);
    EXPECT_DOUBLE_EQ(h.upperBound(2), 4.0);
    EXPECT_TRUE(std::isinf(h.upperBound(3)));
}

TEST(Histogram, MergeAddsCountsAndExtremes)
{
    Histogram a({1.0, 10.0});
    Histogram b({1.0, 10.0});
    a.add(0.5);
    a.add(5.0);
    b.add(20.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.countInBucket(0), 1u);
    EXPECT_EQ(a.countInBucket(1), 1u);
    EXPECT_EQ(a.countInBucket(2), 1u);
    EXPECT_DOUBLE_EQ(a.min(), 0.5);
    EXPECT_DOUBLE_EQ(a.max(), 20.0);
    EXPECT_DOUBLE_EQ(a.sum(), 25.5);
}

TEST(Histogram, MergeWithEmptyKeepsExtremes)
{
    Histogram a({1.0});
    Histogram b({1.0});
    a.add(3.0);
    a.merge(b); // empty other must not clobber min/max
    EXPECT_DOUBLE_EQ(a.min(), 3.0);
    EXPECT_DOUBLE_EQ(a.max(), 3.0);
    b.merge(a);
    EXPECT_DOUBLE_EQ(b.min(), 3.0);
    EXPECT_EQ(b.count(), 1u);
}

TEST(Histogram, ResetKeepsLayout)
{
    Histogram h({1.0, 2.0});
    h.add(1.5);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucketCount(), 3u);
    EXPECT_EQ(h.countInBucket(1), 0u);
}

TEST(Histogram, RejectsBadConstruction)
{
    EXPECT_THROW(Histogram({}), FatalError);
    EXPECT_THROW(Histogram({1.0, 1.0}), FatalError);
    EXPECT_THROW(Histogram({2.0, 1.0}), FatalError);
    EXPECT_THROW(
        Histogram({std::numeric_limits<double>::infinity()}),
        FatalError);
}

TEST(Histogram, RejectsNonFiniteObservations)
{
    Histogram h({1.0});
    EXPECT_THROW(h.add(std::nan("")), FatalError);
}

TEST(Histogram, RejectsMismatchedMerge)
{
    Histogram a({1.0});
    Histogram b({2.0});
    EXPECT_THROW(a.merge(b), FatalError);
}

} // namespace
} // namespace tts
