/** @file Tests for statistics helpers. */

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hh"
#include "util/stats.hh"

namespace tts {
namespace {

TEST(RunningStats, EmptyState)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue)
{
    RunningStats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, StddevIsSqrtVariance)
{
    RunningStats s;
    s.add(1.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.stddev(), std::sqrt(s.variance()));
}

TEST(RunningStats, NegativeValuesTracked)
{
    RunningStats s;
    s.add(-10.0);
    s.add(10.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), -10.0);
}

TEST(RunningStats, ResetClearsState)
{
    RunningStats s;
    s.add(1.0);
    s.add(2.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(RunningStats, StableOnLargeOffsets)
{
    // Welford should survive a large common offset.
    RunningStats s;
    for (double x : {1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0})
        s.add(x);
    EXPECT_NEAR(s.mean(), 1e9 + 10.0, 1e-3);
    EXPECT_NEAR(s.variance(), 30.0, 1e-6);
}

TEST(Percentile, MedianOfOddCount)
{
    EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(Percentile, Extremes)
{
    std::vector<double> v{5.0, 1.0, 9.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
}

TEST(Percentile, InterpolatesBetweenRanks)
{
    EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25.0), 2.5);
}

TEST(Percentile, SingleElement)
{
    EXPECT_DOUBLE_EQ(percentile({42.0}, 99.0), 42.0);
}

TEST(Percentile, RejectsBadInput)
{
    EXPECT_THROW(percentile({}, 50.0), FatalError);
    EXPECT_THROW(percentile({1.0}, -1.0), FatalError);
    EXPECT_THROW(percentile({1.0}, 101.0), FatalError);
}

TEST(MeanAbsoluteDifference, KnownValue)
{
    EXPECT_DOUBLE_EQ(
        meanAbsoluteDifference({1.0, 2.0, 3.0}, {2.0, 2.0, 1.0}),
        1.0);
}

TEST(MeanAbsoluteDifference, ZeroForIdentical)
{
    std::vector<double> v{1.0, -2.0, 3.5};
    EXPECT_DOUBLE_EQ(meanAbsoluteDifference(v, v), 0.0);
}

TEST(MeanAbsoluteDifference, RejectsMismatchedSizes)
{
    EXPECT_THROW(meanAbsoluteDifference({1.0}, {1.0, 2.0}),
                 FatalError);
    EXPECT_THROW(meanAbsoluteDifference({}, {}), FatalError);
}

TEST(PearsonCorrelation, PerfectPositive)
{
    EXPECT_NEAR(pearsonCorrelation({1.0, 2.0, 3.0},
                                   {10.0, 20.0, 30.0}),
                1.0, 1e-12);
}

TEST(PearsonCorrelation, PerfectNegative)
{
    EXPECT_NEAR(pearsonCorrelation({1.0, 2.0, 3.0},
                                   {3.0, 2.0, 1.0}),
                -1.0, 1e-12);
}

TEST(PearsonCorrelation, NearZeroForOrthogonal)
{
    EXPECT_NEAR(pearsonCorrelation({1.0, 2.0, 3.0, 4.0},
                                   {1.0, -1.0, -1.0, 1.0}),
                0.0, 1e-12);
}

TEST(PearsonCorrelation, RejectsZeroVariance)
{
    EXPECT_THROW(pearsonCorrelation({1.0, 1.0}, {1.0, 2.0}),
                 FatalError);
}

} // namespace
} // namespace tts
