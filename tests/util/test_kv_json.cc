/** @file Tests for the flat key/value JSON used by the golden file. */

#include <cmath>
#include <gtest/gtest.h>
#include <limits>

#include "util/error.hh"
#include "util/kv_json.hh"

namespace tts {
namespace {

TEST(KvJson, RoundTripsExactDoubles)
{
    std::map<std::string, double> kv{
        {"a", 1.0},
        {"b", 0.083927817053314313},     // 17 significant digits.
        {"c", -2.5e-7},
        {"d", 1e300},
        {"count", 4894.0},
    };
    auto parsed = parseKvJson(writeKvJson(kv));
    ASSERT_EQ(parsed.size(), kv.size());
    for (const auto &[key, value] : kv) {
        ASSERT_TRUE(parsed.count(key)) << key;
        // Bit-exact: %.17g is enough to reconstruct any double.
        EXPECT_EQ(parsed.at(key), value) << key;
    }
}

TEST(KvJson, EmptyObject)
{
    EXPECT_TRUE(parseKvJson("{}").empty());
    EXPECT_TRUE(parseKvJson(" \n{ \t } ").empty());
    auto parsed = parseKvJson(writeKvJson({}));
    EXPECT_TRUE(parsed.empty());
}

TEST(KvJson, AcceptsArbitraryWhitespace)
{
    auto kv = parseKvJson("{\n  \"x\"  :\t 1.5 ,\n\"y\":2\n}\n");
    ASSERT_EQ(kv.size(), 2u);
    EXPECT_DOUBLE_EQ(kv.at("x"), 1.5);
    EXPECT_DOUBLE_EQ(kv.at("y"), 2.0);
}

TEST(KvJson, ParsesScientificNotation)
{
    auto kv = parseKvJson("{\"a\": 1.25e-3, \"b\": -4E+2}");
    EXPECT_DOUBLE_EQ(kv.at("a"), 1.25e-3);
    EXPECT_DOUBLE_EQ(kv.at("b"), -400.0);
}

TEST(KvJson, RejectsMalformedInput)
{
    EXPECT_THROW(parseKvJson(""), FatalError);
    EXPECT_THROW(parseKvJson("["), FatalError);
    EXPECT_THROW(parseKvJson("{\"a\"}"), FatalError);
    EXPECT_THROW(parseKvJson("{\"a\": }"), FatalError);
    EXPECT_THROW(parseKvJson("{\"a\": 1,}"), FatalError);
    EXPECT_THROW(parseKvJson("{\"a\": 1"), FatalError);
    EXPECT_THROW(parseKvJson("{\"a\": 1} x"), FatalError);
    EXPECT_THROW(parseKvJson("{\"a\": \"str\"}"), FatalError);
    EXPECT_THROW(parseKvJson("{\"a\": {\"b\": 1}}"), FatalError);
}

TEST(KvJson, RejectsDuplicateKeys)
{
    EXPECT_THROW(parseKvJson("{\"a\": 1, \"a\": 2}"), FatalError);
}

TEST(KvJson, FileRoundTrip)
{
    std::map<std::string, double> kv{{"pi", 3.14159}, {"n", -7.0}};
    std::string path = testing::TempDir() + "kv_json_test.json";
    writeKvJsonFile(path, kv);
    auto parsed = readKvJsonFile(path);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed.at("pi"), kv.at("pi"));
    EXPECT_EQ(parsed.at("n"), kv.at("n"));
}

TEST(KvJson, RejectsNonFiniteValuesNamingTheKey)
{
    // A NaN would serialize as the unparseable literal "nan" and
    // silently corrupt the golden file; refuse at write time.
    std::map<std::string, double> kv{
        {"fine", 1.0},
        {"poisoned_key", std::nan("")},
    };
    try {
        writeKvJson(kv);
        FAIL() << "NaN value was serialized";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("poisoned_key"),
                  std::string::npos);
    }
    kv["poisoned_key"] =
        std::numeric_limits<double>::infinity();
    EXPECT_THROW(writeKvJson(kv), FatalError);
    kv["poisoned_key"] =
        -std::numeric_limits<double>::infinity();
    EXPECT_THROW(writeKvJson(kv), FatalError);
}

TEST(KvJson, MissingFileThrows)
{
    EXPECT_THROW(readKvJsonFile("/nonexistent/golden.json"),
                 FatalError);
}

TEST(KvJson, RejectsOversizedInputBeforeParsing)
{
    std::string big = "{\"a\": 1}";
    big.append(200, ' ');
    EXPECT_NO_THROW(parseKvJson(big));
    try {
        parseKvJson(big, 64);
        FAIL() << "oversized input accepted";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("208 bytes"), std::string::npos) << what;
        EXPECT_NE(what.find("64-byte limit"), std::string::npos)
            << what;
    }
    EXPECT_THROW(parseKvAnyJson(big, 64), FatalError);
}

TEST(KvJson, UnterminatedStringNamesItsStartingByteOffset)
{
    try {
        parseKvJson("{\"a\": 1, \"unfinished");
        FAIL() << "unterminated string accepted";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("unterminated string"),
                  std::string::npos)
            << what;
        // The opening quote sits at byte 9.
        EXPECT_NE(what.find("byte offset 9"), std::string::npos)
            << what;
    }
}

TEST(KvJson, DiagnosticsCarryByteOffsets)
{
    auto offsetNamed = [](const std::string &text) {
        try {
            parseKvAnyJson(text);
            return false; // accepted: the EXPECT below fails
        } catch (const FatalError &e) {
            return std::string(e.what()).find("byte offset") !=
                std::string::npos;
        }
    };
    EXPECT_TRUE(offsetNamed("nope"));
    EXPECT_TRUE(offsetNamed("{\"a\" 1}"));
    EXPECT_TRUE(offsetNamed("{\"a\": x}"));
    EXPECT_TRUE(offsetNamed("{\"a\": 1,, \"b\": 2}"));
    EXPECT_TRUE(offsetNamed("{\"a\": 1} trailing"));
    EXPECT_TRUE(offsetNamed("{\"a\": \"b\\\"c\"}")); // escapes
    EXPECT_TRUE(offsetNamed("{\"a\": 1, \"a\": 2}")); // duplicate
}

TEST(KvJson, AnyMapRoundTripsMixedValues)
{
    KvAnyMap kv;
    kv["study"] = KvValue::string("outage");
    kv["ratio"] = KvValue::number(0.083927817053314313);
    kv["empty"] = KvValue::string("");
    KvAnyMap parsed = parseKvAnyJson(writeKvAnyJson(kv));
    EXPECT_EQ(parsed, kv);
}

TEST(KvJson, AnyMapWriterRefusesUnescapableStrings)
{
    for (const char *bad : {"has \"quotes\"", "back\\slash",
                            "new\nline", "tab\there"}) {
        KvAnyMap kv;
        kv["k"] = KvValue::string(bad);
        EXPECT_THROW(writeKvAnyJson(kv), FatalError) << bad;
    }
}

TEST(KvJson, NumberOnlyParserStillRejectsStringsWithAnOffset)
{
    try {
        parseKvJson("{\"a\": \"str\"}");
        FAIL() << "string value accepted by the numbers-only parser";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("byte offset 6"),
                  std::string::npos)
            << e.what();
    }
}

} // namespace
} // namespace tts
