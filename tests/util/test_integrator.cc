/** @file Tests for the ODE steppers. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "guard/numerics.hh"
#include "util/error.hh"
#include "util/integrator.hh"

namespace tts {
namespace {

/** dy/dt = -y, y(0) = 1 -> y(t) = exp(-t). */
const OdeRhs decay = [](double, const std::vector<double> &y,
                        std::vector<double> &dy) {
    dy.resize(y.size());
    for (std::size_t i = 0; i < y.size(); ++i)
        dy[i] = -y[i];
};

/** dy/dt = cos(t), y(0) = 0 -> y(t) = sin(t). */
const OdeRhs cosine = [](double t, const std::vector<double> &,
                         std::vector<double> &dy) {
    dy.assign(1, std::cos(t));
};

std::unique_ptr<Integrator>
makeStepper(const std::string &name)
{
    if (name == "euler")
        return std::make_unique<ForwardEuler>();
    if (name == "midpoint")
        return std::make_unique<Midpoint>();
    return std::make_unique<RungeKutta4>();
}

class IntegratorSweep
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(IntegratorSweep, SolvesExponentialDecay)
{
    auto stepper = makeStepper(GetParam());
    std::vector<double> y{1.0};
    integrate(*stepper, decay, 0.0, 1.0, 1e-3, y);
    // Euler is first order; the higher-order steppers are far
    // tighter but share the coarse bound here.
    EXPECT_NEAR(y[0], std::exp(-1.0), 5e-4);
}

TEST_P(IntegratorSweep, SolvesSine)
{
    auto stepper = makeStepper(GetParam());
    std::vector<double> y{0.0};
    integrate(*stepper, cosine, 0.0, 2.0, 1e-3, y);
    EXPECT_NEAR(y[0], std::sin(2.0), 1e-3);
}

TEST_P(IntegratorSweep, FinalStepLandsExactlyOnT1)
{
    auto stepper = makeStepper(GetParam());
    std::vector<double> y{0.0};
    double last_t = -1.0;
    // dt = 0.3 does not divide 1.0; the observer must still see 1.0.
    integrate(*stepper, cosine, 0.0, 1.0, 0.3, y,
              [&](double t, const std::vector<double> &) {
                  last_t = t;
              });
    EXPECT_DOUBLE_EQ(last_t, 1.0);
}

TEST_P(IntegratorSweep, ObserverSeesInitialState)
{
    auto stepper = makeStepper(GetParam());
    std::vector<double> y{7.0};
    double first_value = 0.0;
    bool first = true;
    integrate(*stepper, decay, 0.0, 0.5, 0.1, y,
              [&](double, const std::vector<double> &s) {
                  if (first) {
                      first_value = s[0];
                      first = false;
                  }
              });
    EXPECT_DOUBLE_EQ(first_value, 7.0);
}

TEST_P(IntegratorSweep, MultiDimensionalSystem)
{
    // Harmonic oscillator: x'' = -x as a 2-state system.
    auto stepper = makeStepper(GetParam());
    OdeRhs osc = [](double, const std::vector<double> &y,
                    std::vector<double> &dy) {
        dy.resize(2);
        dy[0] = y[1];
        dy[1] = -y[0];
    };
    std::vector<double> y{1.0, 0.0};
    integrate(*stepper, osc, 0.0, M_PI, 1e-3, y);
    EXPECT_NEAR(y[0], -1.0, 5e-3);
    EXPECT_NEAR(y[1], 0.0, 5e-3);
}

INSTANTIATE_TEST_SUITE_P(AllSteppers, IntegratorSweep,
                         ::testing::Values("euler", "midpoint",
                                           "rk4"));

TEST(Integrator, Rk4ConvergesAtFourthOrder)
{
    RungeKutta4 rk;
    auto error_at = [&](double dt) {
        std::vector<double> y{1.0};
        integrate(rk, decay, 0.0, 1.0, dt, y);
        return std::abs(y[0] - std::exp(-1.0));
    };
    double e1 = error_at(0.1);
    double e2 = error_at(0.05);
    // Halving dt should cut the error by ~2^4 = 16.
    EXPECT_GT(e1 / e2, 12.0);
}

TEST(Integrator, EulerConvergesAtFirstOrder)
{
    ForwardEuler fe;
    auto error_at = [&](double dt) {
        std::vector<double> y{1.0};
        integrate(fe, decay, 0.0, 1.0, dt, y);
        return std::abs(y[0] - std::exp(-1.0));
    };
    double ratio = error_at(0.01) / error_at(0.005);
    EXPECT_NEAR(ratio, 2.0, 0.3);
}

TEST(Integrator, RejectsNonPositiveDt)
{
    RungeKutta4 rk;
    std::vector<double> y{1.0};
    EXPECT_THROW(integrate(rk, decay, 0.0, 1.0, 0.0, y), FatalError);
    EXPECT_THROW(integrate(rk, decay, 0.0, 1.0, -1.0, y), FatalError);
}

TEST(Integrator, RejectsReversedInterval)
{
    RungeKutta4 rk;
    std::vector<double> y{1.0};
    EXPECT_THROW(integrate(rk, decay, 1.0, 0.0, 0.1, y), FatalError);
}

TEST(Integrator, ZeroSpanIsNoop)
{
    RungeKutta4 rk;
    std::vector<double> y{3.0};
    integrate(rk, decay, 2.0, 2.0, 0.1, y);
    EXPECT_DOUBLE_EQ(y[0], 3.0);
}

TEST(Integrator, NonMultipleSpanEndsExactlyOnT1)
{
    // 1.0 is not a binary multiple of 0.1: ten accumulated steps
    // land at 0.9999999999999999, and without the final-step snap
    // the loop used to take an extra ~1e-16 step (an 11th observer
    // call at a time indistinguishable from t1).
    RungeKutta4 rk;
    std::vector<double> y{1.0};
    std::vector<double> times;
    integrate(rk, decay, 0.0, 1.0, 0.1, y,
              [&](double t, const std::vector<double> &) {
                  times.push_back(t);
              });
    ASSERT_EQ(times.size(), 11u);  // t0 plus exactly ten steps.
    EXPECT_EQ(times.back(), 1.0);  // Bit-exact, not just approximate.
    for (std::size_t i = 1; i < times.size(); ++i)
        EXPECT_GT(times[i], times[i - 1]);
    // RK4 at dt=0.1 carries a ~3e-7 global error on this problem;
    // the bound only needs to catch a skipped or doubled step.
    EXPECT_NEAR(y[0], std::exp(-1.0), 1e-6);
}

TEST(Integrator, ShortenedFinalStepCoversRemainder)
{
    // Span 0.35 with dt 0.1: three full steps plus a 0.05 remainder.
    RungeKutta4 rk;
    std::vector<double> y{1.0};
    std::vector<double> times;
    integrate(rk, decay, 0.0, 0.35, 0.1, y,
              [&](double t, const std::vector<double> &) {
                  times.push_back(t);
              });
    ASSERT_EQ(times.size(), 5u);
    EXPECT_EQ(times.back(), 0.35);
    EXPECT_NEAR(y[0], std::exp(-0.35), 1e-6);
}

TEST(Integrator, StepUnderflowIsAFatalError)
{
    // dt so small relative to t that t + dt == t: the loop cannot
    // advance and must fail loudly instead of spinning forever.
    // The span must be wider than one ulp of t0 (2.0 at 1e16) or
    // t1 rounds back onto t0 and the loop never runs.
    RungeKutta4 rk;
    std::vector<double> y{1.0};
    EXPECT_THROW(integrate(rk, decay, 1e16, 1e16 + 4.0, 1e-6, y),
                 FatalError);
}

TEST(Integrator, NonFiniteStateNamesTheOffendingIndex)
{
    RungeKutta4 rk;
    std::vector<double> y{1.0, 1.0};
    const OdeRhs poisoned =
        [](double t, const std::vector<double> &state,
           std::vector<double> &dy) {
            dy.assign(state.size(), -1.0);
            if (t >= 0.5)
                dy[1] = std::numeric_limits<double>::quiet_NaN();
        };
    try {
        integrate(rk, poisoned, 0.0, 1.0, 0.1, y);
        FAIL() << "NaN state was not detected";
    } catch (const guard::NumericsError &e) {
        EXPECT_EQ(e.stateIndex(), 1);
        EXPECT_NE(std::string(e.what()).find("non-finite"),
                  std::string::npos);
    }
}

TEST(Integrator, NamesAreDistinct)
{
    ForwardEuler fe;
    Midpoint mp;
    RungeKutta4 rk;
    EXPECT_STRNE(fe.name(), mp.name());
    EXPECT_STRNE(mp.name(), rk.name());
}

} // namespace
} // namespace tts
