/** @file Tests for the deterministic PRNG. */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hh"
#include "util/random.hh"
#include "util/stats.hh"

namespace tts {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    RunningStats s;
    for (int i = 0; i < 50000; ++i)
        s.add(rng.uniform());
    EXPECT_NEAR(s.mean(), 0.5, 0.01);
    EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(17);
    RunningStats s;
    for (int i = 0; i < 50000; ++i)
        s.add(rng.normal(10.0, 2.0));
    EXPECT_NEAR(s.mean(), 10.0, 0.05);
    EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate)
{
    Rng rng(19);
    RunningStats s;
    for (int i = 0; i < 50000; ++i)
        s.add(rng.exponential(4.0));
    EXPECT_NEAR(s.mean(), 0.25, 0.01);
}

TEST(Rng, ExponentialIsPositive)
{
    Rng rng(23);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, ExponentialRejectsBadRate)
{
    Rng rng(29);
    EXPECT_THROW(rng.exponential(0.0), FatalError);
    EXPECT_THROW(rng.exponential(-1.0), FatalError);
}

class RngPoissonSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(RngPoissonSweep, MeanAndVarianceMatch)
{
    double mean = GetParam();
    Rng rng(31);
    RunningStats s;
    for (int i = 0; i < 20000; ++i)
        s.add(static_cast<double>(rng.poisson(mean)));
    EXPECT_NEAR(s.mean(), mean, 0.05 * mean + 0.05);
    EXPECT_NEAR(s.variance(), mean, 0.12 * mean + 0.1);
}

INSTANTIATE_TEST_SUITE_P(Means, RngPoissonSweep,
                         ::testing::Values(0.5, 2.0, 10.0, 50.0,
                                           200.0));

TEST(Rng, PoissonZeroMeanIsZero)
{
    Rng rng(37);
    EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, UniformIntInRange)
{
    Rng rng(41);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.uniformInt(7), 7u);
}

TEST(Rng, UniformIntCoversAllValues)
{
    Rng rng(43);
    std::vector<int> counts(5, 0);
    for (int i = 0; i < 5000; ++i)
        ++counts[rng.uniformInt(5)];
    for (int c : counts)
        EXPECT_GT(c, 800);
}

TEST(Rng, UniformIntRejectsZero)
{
    Rng rng(47);
    EXPECT_THROW(rng.uniformInt(0), FatalError);
}

TEST(Rng, StateRoundTripResumesStreamExactly)
{
    Rng rng(99);
    for (int i = 0; i < 37; ++i)
        rng.next();
    Rng::State snap = rng.state();
    std::vector<std::uint64_t> expected;
    for (int i = 0; i < 64; ++i)
        expected.push_back(rng.next());

    Rng other(1);  // Different seed: setState must fully overwrite.
    other.setState(snap);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(other.next(), expected[i]) << i;
}

TEST(Rng, StateCapturesBoxMullerSpare)
{
    // normal() draws two variates and banks one; a snapshot between
    // the pair must restore the banked spare, not redraw it.
    Rng rng(1234);
    rng.normal();  // Consumes one of the pair, banks the other.
    Rng::State snap = rng.state();
    double expected_spare = rng.normal();
    double expected_next = rng.normal();

    Rng resumed(5678);
    resumed.setState(snap);
    EXPECT_EQ(resumed.normal(), expected_spare);
    EXPECT_EQ(resumed.normal(), expected_next);
}

} // namespace
} // namespace tts
