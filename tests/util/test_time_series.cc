/** @file Tests for the TimeSeries container. */

#include <gtest/gtest.h>

#include "util/error.hh"
#include "util/time_series.hh"

namespace tts {
namespace {

TimeSeries
rampSeries()
{
    TimeSeries s("ramp");
    s.append(0.0, 0.0);
    s.append(10.0, 10.0);
    s.append(20.0, 0.0);
    return s;
}

TEST(TimeSeries, AppendAndSize)
{
    auto s = rampSeries();
    EXPECT_EQ(s.size(), 3u);
    EXPECT_FALSE(s.empty());
    EXPECT_EQ(s.name(), "ramp");
}

TEST(TimeSeries, RejectsNonIncreasingTime)
{
    TimeSeries s;
    s.append(1.0, 0.0);
    EXPECT_THROW(s.append(1.0, 1.0), FatalError);
    EXPECT_THROW(s.append(0.5, 1.0), FatalError);
}

TEST(TimeSeries, LinearInterpolation)
{
    auto s = rampSeries();
    EXPECT_DOUBLE_EQ(s.at(5.0), 5.0);
    EXPECT_DOUBLE_EQ(s.at(15.0), 5.0);
}

TEST(TimeSeries, ClampsOutsideSpan)
{
    auto s = rampSeries();
    EXPECT_DOUBLE_EQ(s.at(-100.0), 0.0);
    EXPECT_DOUBLE_EQ(s.at(1000.0), 0.0);
}

TEST(TimeSeries, MinMaxArgMax)
{
    auto s = rampSeries();
    EXPECT_DOUBLE_EQ(s.max(), 10.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.argMax(), 10.0);
}

TEST(TimeSeries, StartEndTimes)
{
    auto s = rampSeries();
    EXPECT_DOUBLE_EQ(s.startTime(), 0.0);
    EXPECT_DOUBLE_EQ(s.endTime(), 20.0);
}

TEST(TimeSeries, MeanOfTriangleIsHalfPeak)
{
    auto s = rampSeries();
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
}

TEST(TimeSeries, IntegralOfTriangle)
{
    auto s = rampSeries();
    EXPECT_DOUBLE_EQ(s.integral(0.0, 20.0), 100.0);
    EXPECT_DOUBLE_EQ(s.integral(0.0, 10.0), 50.0);
}

TEST(TimeSeries, IntegralSubInterval)
{
    auto s = rampSeries();
    // 4..6: trapezoid with heights 4 and 6 over width 2.
    EXPECT_DOUBLE_EQ(s.integral(4.0, 6.0), 10.0);
}

TEST(TimeSeries, IntegralReversedNegates)
{
    auto s = rampSeries();
    EXPECT_DOUBLE_EQ(s.integral(20.0, 0.0), -100.0);
}

TEST(TimeSeries, FirstCrossingAbove)
{
    auto s = rampSeries();
    EXPECT_DOUBLE_EQ(s.firstCrossingAbove(5.0), 5.0);
    EXPECT_DOUBLE_EQ(s.firstCrossingAbove(0.0), 0.0);
    EXPECT_LT(s.firstCrossingAbove(11.0), 0.0);
}

TEST(TimeSeries, TimeAboveLevel)
{
    auto s = rampSeries();
    // Above 5 between t = 5 and t = 15.
    EXPECT_DOUBLE_EQ(s.timeAbove(5.0), 10.0);
    EXPECT_DOUBLE_EQ(s.timeAbove(100.0), 0.0);
    EXPECT_DOUBLE_EQ(s.timeAbove(-1.0), 20.0);
}

TEST(TimeSeries, ScaledMultipliesValues)
{
    auto s = rampSeries().scaled(3.0);
    EXPECT_DOUBLE_EQ(s.max(), 30.0);
    EXPECT_DOUBLE_EQ(s.at(5.0), 15.0);
    EXPECT_EQ(s.size(), 3u);
}

TEST(TimeSeries, ResampledHitsEnds)
{
    auto s = rampSeries().resampled(3.0);
    EXPECT_DOUBLE_EQ(s.startTime(), 0.0);
    EXPECT_DOUBLE_EQ(s.endTime(), 20.0);
    EXPECT_DOUBLE_EQ(s.at(5.0), 5.0);
}

TEST(TimeSeries, ResampledRejectsBadDt)
{
    auto s = rampSeries();
    EXPECT_THROW(s.resampled(0.0), FatalError);
}

TEST(TimeSeries, CombineSum)
{
    TimeSeries a, b;
    a.append(0.0, 1.0);
    a.append(10.0, 3.0);
    b.append(5.0, 10.0);
    b.append(15.0, 20.0);
    auto sum = TimeSeries::combine(
        a, b, [](double x, double y) { return x + y; }, "sum");
    EXPECT_EQ(sum.name(), "sum");
    EXPECT_EQ(sum.size(), 4u);
    EXPECT_DOUBLE_EQ(sum.at(5.0), 2.0 + 10.0);
    EXPECT_DOUBLE_EQ(sum.at(10.0), 3.0 + 15.0);
}

TEST(TimeSeries, EmptySeriesThrows)
{
    TimeSeries s;
    EXPECT_THROW(s.at(0.0), FatalError);
    EXPECT_THROW(s.max(), FatalError);
    EXPECT_THROW(s.startTime(), FatalError);
}

/** Property sweep: integral over [a, b] plus [b, c] equals [a, c]. */
class TimeSeriesIntegralSplit
    : public ::testing::TestWithParam<double>
{
};

TEST_P(TimeSeriesIntegralSplit, IntegralIsAdditive)
{
    auto s = rampSeries();
    double b = GetParam();
    double whole = s.integral(0.0, 20.0);
    double split = s.integral(0.0, b) + s.integral(b, 20.0);
    EXPECT_NEAR(whole, split, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(SplitPoints, TimeSeriesIntegralSplit,
                         ::testing::Values(1.0, 5.0, 9.99, 10.0,
                                           13.7, 19.5));

} // namespace
} // namespace tts
