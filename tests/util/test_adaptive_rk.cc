/** @file Tests for the adaptive Bogacki-Shampine 3(2) stepper. */

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hh"
#include "util/integrator.hh"

namespace tts {
namespace {

const OdeRhs decay = [](double, const std::vector<double> &y,
                        std::vector<double> &dy) {
    dy.resize(y.size());
    for (std::size_t i = 0; i < y.size(); ++i)
        dy[i] = -y[i];
};

TEST(AdaptiveRk23, SolvesExponentialDecay)
{
    AdaptiveRk23 ark(1e-8, 1e-10);
    std::vector<double> y{1.0};
    ark.integrate(decay, 0.0, 3.0, y);
    EXPECT_NEAR(y[0], std::exp(-3.0), 1e-6);
}

TEST(AdaptiveRk23, TighterToleranceIsMoreAccurate)
{
    auto solve = [&](double rtol) {
        AdaptiveRk23 ark(rtol, rtol * 1e-3);
        std::vector<double> y{1.0};
        ark.integrate(decay, 0.0, 2.0, y);
        return std::abs(y[0] - std::exp(-2.0));
    };
    EXPECT_LT(solve(1e-9), solve(1e-4));
}

TEST(AdaptiveRk23, TighterToleranceTakesMoreSteps)
{
    std::vector<double> y1{1.0}, y2{1.0};
    AdaptiveRk23 loose(1e-3, 1e-6);
    AdaptiveRk23 tight(1e-9, 1e-12);
    auto s1 = loose.integrate(decay, 0.0, 5.0, y1);
    auto s2 = tight.integrate(decay, 0.0, 5.0, y2);
    EXPECT_GT(s2, s1);
}

TEST(AdaptiveRk23, StepShrinksAtTransient)
{
    // A kink-like forcing: dy/dt jumps at t = 5.  The controller
    // must reject steps around the jump, not blow through it.
    OdeRhs kick = [](double t, const std::vector<double> &y,
                     std::vector<double> &dy) {
        dy.assign(1, (t < 5.0 ? 0.0 : 100.0) - y[0]);
    };
    AdaptiveRk23 ark(1e-7, 1e-9);
    std::vector<double> y{0.0};
    ark.integrate(kick, 0.0, 10.0, y, 2.0);
    // Exact: 100 (1 - exp(-(10-5))).
    EXPECT_NEAR(y[0], 100.0 * (1.0 - std::exp(-5.0)), 1e-2);
}

TEST(AdaptiveRk23, SmoothProblemGrowsTheStep)
{
    // Over a long smooth decay the controller needs far fewer steps
    // than a fixed-step RK4 at the small-step accuracy.
    AdaptiveRk23 ark(1e-6, 1e-9);
    std::vector<double> y{1.0};
    auto steps = ark.integrate(decay, 0.0, 1000.0, y, 0.1);
    EXPECT_LT(steps, 2000u);  // Fixed dt = 0.1 would take 10,000.
    EXPECT_NEAR(y[0], 0.0, 1e-6);
}

TEST(AdaptiveRk23, ObserverSeesMonotoneTimes)
{
    AdaptiveRk23 ark;
    std::vector<double> y{1.0};
    double prev = -1.0;
    double last = 0.0;
    ark.integrate(decay, 0.0, 1.0, y, 0.0,
                  [&](double t, const std::vector<double> &) {
                      EXPECT_GT(t, prev);
                      prev = t;
                      last = t;
                  });
    EXPECT_DOUBLE_EQ(last, 1.0);
}

TEST(AdaptiveRk23, ZeroSpanIsNoop)
{
    AdaptiveRk23 ark;
    std::vector<double> y{4.0};
    EXPECT_EQ(ark.integrate(decay, 1.0, 1.0, y), 0u);
    EXPECT_DOUBLE_EQ(y[0], 4.0);
}

TEST(AdaptiveRk23, MultiDimensionalOscillator)
{
    OdeRhs osc = [](double, const std::vector<double> &y,
                    std::vector<double> &dy) {
        dy.resize(2);
        dy[0] = y[1];
        dy[1] = -y[0];
    };
    AdaptiveRk23 ark(1e-8, 1e-10);
    std::vector<double> y{1.0, 0.0};
    ark.integrate(osc, 0.0, 2.0 * M_PI, y);
    EXPECT_NEAR(y[0], 1.0, 1e-4);
    EXPECT_NEAR(y[1], 0.0, 1e-4);
}

TEST(AdaptiveRk23, RejectsBadArguments)
{
    EXPECT_THROW(AdaptiveRk23(0.0, 1e-9), FatalError);
    EXPECT_THROW(AdaptiveRk23(1e-6, -1.0), FatalError);
    AdaptiveRk23 ark;
    std::vector<double> y{1.0};
    EXPECT_THROW(ark.integrate(decay, 1.0, 0.0, y), FatalError);
}

TEST(AdaptiveRk23, ReportsRejections)
{
    OdeRhs kick = [](double t, const std::vector<double> &y,
                     std::vector<double> &dy) {
        dy.assign(1, (t < 5.0 ? 0.0 : 100.0) - y[0]);
    };
    AdaptiveRk23 ark(1e-9, 1e-12);
    std::vector<double> y{0.0};
    ark.integrate(kick, 0.0, 10.0, y, 4.0);
    EXPECT_GT(ark.rejectedSteps(), 0u);
}

} // namespace
} // namespace tts
