/**
 * @file
 * Unit tests for the typed command-line parser (util/cli).
 */

#include <gtest/gtest.h>

#include "util/cli.hh"
#include "util/error.hh"

namespace tts {
namespace {

TEST(Cli, DefaultsSurviveEmptyArgs)
{
    double melt = 44.5;
    bool csv = false;
    std::string out = "a.json";
    cli::Parser p("prog");
    p.addDouble("melt", &melt, "melt temp");
    p.addFlag("csv", &csv, "emit csv");
    p.addString("out", &out, "output path");
    EXPECT_EQ(p.parse({}), cli::Status::Ok);
    EXPECT_EQ(melt, 44.5);
    EXPECT_FALSE(csv);
    EXPECT_EQ(out, "a.json");
}

TEST(Cli, ParsesTypedValues)
{
    double melt = 0.0;
    int platform = 0;
    std::size_t servers = 0;
    bool csv = false;
    std::string out;
    cli::Parser p("prog");
    p.addDouble("melt", &melt, "");
    p.addInt("platform", &platform, "");
    p.addSize("servers", &servers, "");
    p.addFlag("csv", &csv, "");
    p.addString("out", &out, "");
    EXPECT_EQ(p.parse({"--melt=45.25", "--platform=-2",
                       "--servers=1008", "--csv",
                       "--out=dir/x.json"}),
              cli::Status::Ok);
    EXPECT_EQ(melt, 45.25);
    EXPECT_EQ(platform, -2);
    EXPECT_EQ(servers, 1008u);
    EXPECT_TRUE(csv);
    EXPECT_EQ(out, "dir/x.json");
}

TEST(Cli, BooleanAcceptsExplicitValues)
{
    bool csv = true;
    cli::Parser p("prog");
    p.addFlag("csv", &csv, "");
    EXPECT_EQ(p.parse({"--csv=false"}), cli::Status::Ok);
    EXPECT_FALSE(csv);
    EXPECT_EQ(p.parse({"--csv=1"}), cli::Status::Ok);
    EXPECT_TRUE(csv);
    EXPECT_EQ(p.parse({"--csv=maybe"}), cli::Status::Error);
    EXPECT_NE(p.error().find("--csv"), std::string::npos);
}

TEST(Cli, MalformedNumbersAreErrorsNotZeros)
{
    double melt = 44.0;
    cli::Parser p("prog");
    p.addDouble("melt", &melt, "");
    EXPECT_EQ(p.parse({"--melt=4x"}), cli::Status::Error);
    EXPECT_NE(p.error().find("bad number"), std::string::npos);
    EXPECT_EQ(p.parse({"--melt="}), cli::Status::Error);
    // The old atof()-based parsers silently read 0.0 here.
}

TEST(Cli, IntRangeAndSignChecks)
{
    int platform = 0;
    std::size_t n = 0;
    cli::Parser p("prog");
    p.addInt("platform", &platform, "");
    p.addSize("servers", &n, "");
    EXPECT_EQ(p.parse({"--platform=9999999999999"}),
              cli::Status::Error);
    EXPECT_EQ(p.parse({"--servers=-5"}), cli::Status::Error);
}

TEST(Cli, UnknownFlagSuggestsClosest)
{
    double melt = 0.0;
    std::string scenario;
    cli::Parser p("prog");
    p.addDouble("melt", &melt, "");
    p.addString("scenario", &scenario, "");
    EXPECT_EQ(p.parse({"--mlet=44"}), cli::Status::Error);
    EXPECT_NE(p.error().find("unknown flag '--mlet'"),
              std::string::npos);
    EXPECT_NE(p.error().find("did you mean '--melt'"),
              std::string::npos);

    // Distant typos get no suggestion, just the unknown-flag error.
    EXPECT_EQ(p.parse({"--completely-unrelated=1"}),
              cli::Status::Error);
    EXPECT_EQ(p.error().find("did you mean"), std::string::npos);
}

TEST(Cli, ValuedFlagWithoutValueIsError)
{
    double melt = 0.0;
    cli::Parser p("prog");
    p.addDouble("melt", &melt, "");
    EXPECT_EQ(p.parse({"--melt"}), cli::Status::Error);
    EXPECT_NE(p.error().find("needs a value"), std::string::npos);
}

TEST(Cli, HelpShortCircuits)
{
    double melt = 1.0;
    cli::Parser p("prog", "Example tool");
    p.addDouble("melt", &melt, "melting temperature (C)");
    EXPECT_EQ(p.parse({"--help"}), cli::Status::Help);
    EXPECT_EQ(p.parse({"-h"}), cli::Status::Help);
    // Even with bad flags after it.
    EXPECT_EQ(p.parse({"--help", "--nope=1"}), cli::Status::Help);
}

TEST(Cli, HelpTextListsFlagsDefaultsAndChoices)
{
    double melt = 44.5;
    bool csv = false;
    std::string fmt = "jsonl";
    cli::Parser p("prog", "Example tool");
    p.addDouble("melt", &melt, "melting temperature (C)");
    p.addFlag("csv", &csv, "emit csv");
    p.addChoice("trace-format", &fmt, {"jsonl", "chrome"},
                "trace format");
    std::string h = p.helpText();
    EXPECT_NE(h.find("usage: prog"), std::string::npos);
    EXPECT_NE(h.find("Example tool"), std::string::npos);
    EXPECT_NE(h.find("--melt=<v>"), std::string::npos);
    EXPECT_NE(h.find("melting temperature (C)"), std::string::npos);
    EXPECT_NE(h.find("default 44.5"), std::string::npos);
    EXPECT_NE(h.find("jsonl|chrome"), std::string::npos);
    EXPECT_NE(h.find("--help"), std::string::npos);
}

TEST(Cli, ChoiceRejectsOutOfSet)
{
    std::string fmt = "jsonl";
    cli::Parser p("prog");
    p.addChoice("trace-format", &fmt, {"jsonl", "chrome"}, "");
    EXPECT_EQ(p.parse({"--trace-format=chrome"}), cli::Status::Ok);
    EXPECT_EQ(fmt, "chrome");
    EXPECT_EQ(p.parse({"--trace-format=xml"}), cli::Status::Error);
    EXPECT_NE(p.error().find("jsonl|chrome"), std::string::npos);
}

TEST(Cli, PositionalsConsumedInOrderExtrasError)
{
    std::string first, second;
    cli::Parser p("prog");
    p.addPositional("output", &first, "output path");
    p.addPositional("input", &second, "input path");
    EXPECT_EQ(p.parse({"a.json"}), cli::Status::Ok);
    EXPECT_EQ(first, "a.json");
    EXPECT_TRUE(second.empty());
    EXPECT_EQ(p.parse({"b.json", "c.json", "d.json"}),
              cli::Status::Error);
    EXPECT_NE(p.error().find("unexpected argument"),
              std::string::npos);
}

TEST(Cli, DuplicateRegistrationThrows)
{
    double a = 0.0, b = 0.0;
    cli::Parser p("prog");
    p.addDouble("melt", &a, "");
    EXPECT_THROW(p.addDouble("melt", &b, ""), Error);
}

TEST(Cli, LastOccurrenceWins)
{
    double melt = 0.0;
    cli::Parser p("prog");
    p.addDouble("melt", &melt, "");
    EXPECT_EQ(p.parse({"--melt=40", "--melt=50"}), cli::Status::Ok);
    EXPECT_EQ(melt, 50.0);
}

} // namespace
} // namespace tts
