/** @file Tests for unit conversion helpers. */

#include <gtest/gtest.h>

#include "util/units.hh"

namespace tts {
namespace units {
namespace {

TEST(Units, TimeConversions)
{
    EXPECT_DOUBLE_EQ(minutes(2.0), 120.0);
    EXPECT_DOUBLE_EQ(hours(1.5), 5400.0);
    EXPECT_DOUBLE_EQ(days(2.0), 172800.0);
    EXPECT_DOUBLE_EQ(toHours(7200.0), 2.0);
}

TEST(Units, TimeRoundTrip)
{
    EXPECT_DOUBLE_EQ(toHours(hours(13.7)), 13.7);
}

TEST(Units, EnergyConversions)
{
    EXPECT_DOUBLE_EQ(kWh(1.0), 3.6e6);
    EXPECT_DOUBLE_EQ(toKWh(3.6e6), 1.0);
    EXPECT_DOUBLE_EQ(kJ(2.0), 2000.0);
}

TEST(Units, PowerConversions)
{
    EXPECT_DOUBLE_EQ(kW(1.5), 1500.0);
    EXPECT_DOUBLE_EQ(MW(10.0), 1.0e7);
    EXPECT_DOUBLE_EQ(toKW(2500.0), 2.5);
}

TEST(Units, MassConversions)
{
    EXPECT_DOUBLE_EQ(grams(70.0), 0.070);
    EXPECT_DOUBLE_EQ(tons(1.0), 1000.0);
}

TEST(Units, VolumeConversions)
{
    EXPECT_DOUBLE_EQ(liters(1.2), 0.0012);
    EXPECT_DOUBLE_EQ(milliliters(90.0), 9.0e-5);
    EXPECT_DOUBLE_EQ(toLiters(0.004), 4.0);
    EXPECT_NEAR(cfm(1.0), 4.719474e-4, 1e-10);
}

TEST(Units, TemperatureConversions)
{
    EXPECT_DOUBLE_EQ(toKelvin(0.0), 273.15);
    EXPECT_DOUBLE_EQ(toCelsius(373.15), 100.0);
    EXPECT_DOUBLE_EQ(toCelsius(toKelvin(39.0)), 39.0);
}

TEST(Units, PhysicalConstantsSane)
{
    EXPECT_GT(airDensity, 1.0);
    EXPECT_LT(airDensity, 1.3);
    EXPECT_NEAR(airSpecificHeat, 1006.0, 10.0);
    // Paraffin expands on melting: liquid less dense than solid.
    EXPECT_LT(paraffinDensityLiquid, paraffinDensitySolid);
    EXPECT_GT(paraffinSpecificHeatLiquid,
              paraffinSpecificHeatSolid);
}

} // namespace
} // namespace units
} // namespace tts
