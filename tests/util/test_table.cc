/** @file Tests for ASCII table and CSV emission. */

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hh"
#include "util/table.hh"

namespace tts {
namespace {

TEST(AsciiTable, PrintsHeaderAndRows)
{
    AsciiTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "22"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(AsciiTable, AlignsColumns)
{
    AsciiTable t({"a", "b"});
    t.addRow({"longvalue", "x"});
    std::ostringstream os;
    t.print(os);
    // Header "a" should be padded to the width of "longvalue".
    std::string first_line =
        os.str().substr(0, os.str().find('\n'));
    EXPECT_GE(first_line.size(), std::string("longvalue  b").size());
}

TEST(AsciiTable, RejectsMismatchedRow)
{
    AsciiTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only one"}), FatalError);
}

TEST(AsciiTable, RejectsEmptyHeader)
{
    EXPECT_THROW(AsciiTable({}), FatalError);
}

TEST(CsvWriter, WritesHeaderOnConstruction)
{
    std::ostringstream os;
    CsvWriter csv(os, {"t", "x"});
    EXPECT_EQ(os.str(), "t,x\n");
}

TEST(CsvWriter, WritesNumericRows)
{
    std::ostringstream os;
    CsvWriter csv(os, {"t", "x"});
    csv.writeRow(std::vector<double>{1.0, 2.5});
    EXPECT_NE(os.str().find("1,2.5"), std::string::npos);
}

TEST(CsvWriter, WritesStringRows)
{
    std::ostringstream os;
    CsvWriter csv(os, {"k", "v"});
    csv.writeRow(std::vector<std::string>{"melt", "52C"});
    EXPECT_NE(os.str().find("melt,52C"), std::string::npos);
}

TEST(CsvWriter, RejectsColumnMismatch)
{
    std::ostringstream os;
    CsvWriter csv(os, {"a", "b"});
    EXPECT_THROW(csv.writeRow(std::vector<double>{1.0}), FatalError);
}

TEST(FormatFixed, RoundsToPrecision)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatFixed(2.0, 0), "2");
    EXPECT_EQ(formatFixed(-1.005, 1), "-1.0");
}

} // namespace
} // namespace tts
