/** @file Tests for PiecewiseLinear interpolation. */

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hh"
#include "util/interpolation.hh"

namespace tts {
namespace {

PiecewiseLinear
rampCurve()
{
    return PiecewiseLinear({{0.0, 0.0}, {1.0, 2.0}, {3.0, 2.0},
                            {4.0, 6.0}});
}

TEST(PiecewiseLinear, EvaluatesAtBreakpoints)
{
    auto f = rampCurve();
    EXPECT_DOUBLE_EQ(f(0.0), 0.0);
    EXPECT_DOUBLE_EQ(f(1.0), 2.0);
    EXPECT_DOUBLE_EQ(f(3.0), 2.0);
    EXPECT_DOUBLE_EQ(f(4.0), 6.0);
}

TEST(PiecewiseLinear, InterpolatesBetweenBreakpoints)
{
    auto f = rampCurve();
    EXPECT_DOUBLE_EQ(f(0.5), 1.0);
    EXPECT_DOUBLE_EQ(f(2.0), 2.0);
    EXPECT_DOUBLE_EQ(f(3.5), 4.0);
}

TEST(PiecewiseLinear, ClampsOutsideDomain)
{
    auto f = rampCurve();
    EXPECT_DOUBLE_EQ(f(-5.0), 0.0);
    EXPECT_DOUBLE_EQ(f(100.0), 6.0);
}

TEST(PiecewiseLinear, ConstructorSortsPoints)
{
    PiecewiseLinear f({{3.0, 9.0}, {1.0, 1.0}, {2.0, 4.0}});
    EXPECT_DOUBLE_EQ(f(1.5), 2.5);
    EXPECT_DOUBLE_EQ(f.minX(), 1.0);
    EXPECT_DOUBLE_EQ(f.maxX(), 3.0);
}

TEST(PiecewiseLinear, AddPointKeepsOrder)
{
    PiecewiseLinear f;
    f.addPoint(2.0, 4.0);
    f.addPoint(0.0, 0.0);
    f.addPoint(1.0, 2.0);
    EXPECT_DOUBLE_EQ(f(0.5), 1.0);
    EXPECT_EQ(f.size(), 3u);
}

TEST(PiecewiseLinear, RejectsDuplicateX)
{
    PiecewiseLinear f;
    f.addPoint(1.0, 1.0);
    EXPECT_THROW(f.addPoint(1.0, 2.0), FatalError);
    EXPECT_THROW(
        PiecewiseLinear({{1.0, 1.0}, {1.0, 2.0}}), FatalError);
}

TEST(PiecewiseLinear, EmptyCurveThrowsOnEval)
{
    PiecewiseLinear f;
    EXPECT_TRUE(f.empty());
    EXPECT_THROW(f(0.0), FatalError);
}

TEST(PiecewiseLinear, InverseOfMonotoneCurve)
{
    PiecewiseLinear f({{0.0, 10.0}, {2.0, 20.0}, {5.0, 50.0}});
    EXPECT_DOUBLE_EQ(f.inverse(10.0), 0.0);
    EXPECT_DOUBLE_EQ(f.inverse(15.0), 1.0);
    EXPECT_DOUBLE_EQ(f.inverse(35.0), 3.5);
    EXPECT_DOUBLE_EQ(f.inverse(50.0), 5.0);
}

TEST(PiecewiseLinear, InverseClampsOutsideRange)
{
    PiecewiseLinear f({{0.0, 10.0}, {5.0, 50.0}});
    EXPECT_DOUBLE_EQ(f.inverse(0.0), 0.0);
    EXPECT_DOUBLE_EQ(f.inverse(99.0), 5.0);
}

TEST(PiecewiseLinear, InverseRejectsNonMonotone)
{
    auto f = rampCurve();  // Flat segment -> not strictly increasing.
    EXPECT_THROW(f.inverse(2.0), FatalError);
}

TEST(PiecewiseLinear, InverseRoundTrip)
{
    PiecewiseLinear f({{-2.0, 1.0}, {0.0, 5.0}, {4.0, 9.0}});
    for (double x = -2.0; x <= 4.0; x += 0.37)
        EXPECT_NEAR(f.inverse(f(x)), x, 1e-12);
}

TEST(PiecewiseLinear, IntegralOfLinearSegment)
{
    PiecewiseLinear f({{0.0, 0.0}, {2.0, 4.0}});
    EXPECT_DOUBLE_EQ(f.integral(0.0, 2.0), 4.0);
    EXPECT_DOUBLE_EQ(f.integral(0.0, 1.0), 1.0);
}

TEST(PiecewiseLinear, IntegralAcrossBreakpoints)
{
    auto f = rampCurve();
    // 0..1: triangle area 1; 1..3: rectangle 4; 3..4: trapezoid 4.
    EXPECT_DOUBLE_EQ(f.integral(0.0, 4.0), 9.0);
}

TEST(PiecewiseLinear, IntegralReversedLimitsNegates)
{
    auto f = rampCurve();
    EXPECT_DOUBLE_EQ(f.integral(4.0, 0.0), -9.0);
}

TEST(PiecewiseLinear, IntegralExtrapolatedRegionIsFlat)
{
    PiecewiseLinear f({{0.0, 2.0}, {1.0, 2.0}});
    EXPECT_DOUBLE_EQ(f.integral(-1.0, 0.0), 2.0);
    EXPECT_DOUBLE_EQ(f.integral(1.0, 3.0), 4.0);
}

TEST(PiecewiseLinear, StrictlyIncreasingDetection)
{
    EXPECT_TRUE(PiecewiseLinear({{0.0, 0.0}, {1.0, 1.0}})
                    .strictlyIncreasing());
    EXPECT_FALSE(rampCurve().strictlyIncreasing());
}

} // namespace
} // namespace tts
