/** @file Tests for the error handling primitives. */

#include <gtest/gtest.h>

#include "util/error.hh"

namespace tts {
namespace {

TEST(Error, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config"), FatalError);
}

TEST(Error, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("broken invariant"), PanicError);
}

TEST(Error, FatalMessageIsPreserved)
{
    try {
        fatal("knob out of range");
        FAIL() << "fatal() returned";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("knob out of range"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("fatal"),
                  std::string::npos);
    }
}

TEST(Error, PanicMessageIsPreserved)
{
    try {
        panic("impossible state");
        FAIL() << "panic() returned";
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("impossible state"),
                  std::string::npos);
    }
}

TEST(Error, BothDeriveFromError)
{
    EXPECT_THROW(fatal("x"), Error);
    EXPECT_THROW(panic("x"), Error);
}

TEST(Error, RequirePassesOnTrue)
{
    EXPECT_NO_THROW(require(true, "never"));
}

TEST(Error, RequireThrowsOnFalse)
{
    EXPECT_THROW(require(false, "always"), FatalError);
}

TEST(Error, InvariantPassesOnTrue)
{
    EXPECT_NO_THROW(invariant(true, "never"));
}

TEST(Error, InvariantThrowsOnFalse)
{
    EXPECT_THROW(invariant(false, "always"), PanicError);
}

} // namespace
} // namespace tts
