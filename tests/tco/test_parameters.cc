/** @file Tests for the Table 2 TCO parameter set. */

#include <gtest/gtest.h>

#include "tco/parameters.hh"

namespace tts {
namespace tco {
namespace {

TEST(TcoParameters, DefaultsWithinTable2Ranges)
{
    TcoParameters p;
    EXPECT_DOUBLE_EQ(p.facilitySpacePerSqFt, 1.29);
    EXPECT_DOUBLE_EQ(p.upsPerServer, 0.13);
    EXPECT_GE(p.powerInfraPerKW, 15.9);
    EXPECT_LE(p.powerInfraPerKW, 16.2);
    EXPECT_DOUBLE_EQ(p.coolingInfraPerKW, 7.0);
    EXPECT_GE(p.restCapExPerKW, 19.4);
    EXPECT_LE(p.restCapExPerKW, 21.0);
    EXPECT_GE(p.dcInterestPerKW, 31.8);
    EXPECT_LE(p.dcInterestPerKW, 36.3);
    EXPECT_GE(p.datacenterOpExPerKW, 20.7);
    EXPECT_LE(p.datacenterOpExPerKW, 20.9);
    EXPECT_GE(p.serverEnergyOpExPerKW, 19.2);
    EXPECT_LE(p.serverEnergyOpExPerKW, 24.9);
    EXPECT_DOUBLE_EQ(p.serverPowerOpExPerKW, 12.0);
    EXPECT_DOUBLE_EQ(p.coolingEnergyOpExPerKW, 18.4);
    EXPECT_GE(p.restOpExPerKW, 5.7);
    EXPECT_LE(p.restOpExPerKW, 6.6);
}

class PlatformParamSweep : public ::testing::TestWithParam<int>
{
  protected:
    server::ServerSpec
    spec() const
    {
        switch (GetParam()) {
          case 0: return server::rd330Spec();
          case 1: return server::x4470Spec();
          default: return server::openComputeSpec();
        }
    }
};

TEST_P(PlatformParamSweep, PerKwRatesStayInTable2Ranges)
{
    auto p = parametersFor(spec());
    EXPECT_GE(p.powerInfraPerKW, 15.9);
    EXPECT_LE(p.powerInfraPerKW, 16.2);
    EXPECT_GE(p.restCapExPerKW, 19.4);
    EXPECT_LE(p.restCapExPerKW, 21.0);
    EXPECT_GE(p.dcInterestPerKW, 31.8);
    EXPECT_LE(p.dcInterestPerKW, 36.3);
    EXPECT_GE(p.serverEnergyOpExPerKW, 19.2);
    EXPECT_LE(p.serverEnergyOpExPerKW, 24.9);
}

TEST_P(PlatformParamSweep, ServerCapExIsCostOverLife)
{
    auto p = parametersFor(spec());
    EXPECT_NEAR(p.serverCapExPerServer,
                spec().serverCostUsd / 48.0, 1e-9);
}

TEST_P(PlatformParamSweep, WaxCapExTiny)
{
    // Table 2: WaxCapEx is "less than 0.1 % of the ServerCapEx"...
    auto p = parametersFor(spec());
    if (spec().waxLiters > 0.0) {
        EXPECT_GT(p.waxCapExPerServer, 0.0);
        // ...i.e. cents per month per server.
        EXPECT_LT(p.waxCapExPerServer,
                  0.005 * p.serverCapExPerServer);
    }
}

INSTANTIATE_TEST_SUITE_P(Platforms, PlatformParamSweep,
                         ::testing::Values(0, 1, 2));

TEST(TcoParameters, ServerCapExRangeMatchesTable2)
{
    // Table 2: ServerCapEx 42-146 $/server across the platforms.
    auto lo = parametersFor(server::rd330Spec());
    auto hi = parametersFor(server::x4470Spec());
    EXPECT_NEAR(lo.serverCapExPerServer, 42.0, 1.0);
    EXPECT_NEAR(hi.serverCapExPerServer, 146.0, 1.0);
}

TEST(TcoParameters, ServerInterestRangeMatchesTable2)
{
    // Table 2: ServerInterest 11.00-38.50 $/server.
    auto lo = parametersFor(server::rd330Spec());
    auto hi = parametersFor(server::x4470Spec());
    EXPECT_NEAR(lo.serverInterestPerServer, 11.0, 0.5);
    EXPECT_NEAR(hi.serverInterestPerServer, 38.5, 0.5);
}

TEST(TcoParameters, CoolingAttributedCapExSane)
{
    TcoParameters p;
    double rate = p.coolingAttributedCapExPerKW();
    // Cooling plant + its power infra + interest: high teens $/kW.
    EXPECT_GT(rate, 12.0);
    EXPECT_LT(rate, 25.0);
}

TEST(TcoParameters, WaxFreePlatformHasNoWaxCapEx)
{
    auto p = parametersFor(
        server::openComputeSpec(server::OcpLayout::Production));
    EXPECT_DOUBLE_EQ(p.waxCapExPerServer, 0.0);
}

} // namespace
} // namespace tco
} // namespace tts
