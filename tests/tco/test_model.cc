/** @file Tests for the Equation-1 TCO model and savings analyses. */

#include <gtest/gtest.h>

#include "tco/model.hh"
#include "util/error.hh"

namespace tts {
namespace tco {
namespace {

TcoModel
rd330Model()
{
    return TcoModel(parametersFor(server::rd330Spec()));
}

TEST(TcoModel, BreakdownSumsToTotal)
{
    auto b = rd330Model().monthly(10000.0, 54000, true);
    EXPECT_NEAR(b.totalPerMonth(),
                b.capitalPerMonth() + b.operationalPerMonth(),
                1e-9);
    EXPECT_NEAR(b.totalPerYear(), 12.0 * b.totalPerMonth(), 1e-6);
}

TEST(TcoModel, Equation1TermsAllPresent)
{
    auto b = rd330Model().monthly(10000.0, 54000, true);
    EXPECT_GT(b.facilitySpaceCapEx, 0.0);
    EXPECT_GT(b.upsCapEx, 0.0);
    EXPECT_GT(b.powerInfraCapEx, 0.0);
    EXPECT_GT(b.coolingInfraCapEx, 0.0);
    EXPECT_GT(b.restCapEx, 0.0);
    EXPECT_GT(b.dcInterest, 0.0);
    EXPECT_GT(b.serverCapEx, 0.0);
    EXPECT_GT(b.waxCapEx, 0.0);
    EXPECT_GT(b.serverInterest, 0.0);
    EXPECT_GT(b.datacenterOpEx, 0.0);
    EXPECT_GT(b.serverEnergyOpEx, 0.0);
    EXPECT_GT(b.serverPowerOpEx, 0.0);
    EXPECT_GT(b.coolingEnergyOpEx, 0.0);
    EXPECT_GT(b.restOpEx, 0.0);
}

TEST(TcoModel, WaxTermIsNegligibleShare)
{
    // The paper: WaxCapEx < 0.1 % of ServerCapEx.
    auto b = rd330Model().monthly(10000.0, 54000, true);
    EXPECT_LT(b.waxCapEx, 0.005 * b.serverCapEx);
}

TEST(TcoModel, WithoutWaxDropsWaxTerm)
{
    auto with = rd330Model().monthly(10000.0, 54000, true);
    auto without = rd330Model().monthly(10000.0, 54000, false);
    EXPECT_DOUBLE_EQ(without.waxCapEx, 0.0);
    EXPECT_LT(without.totalPerMonth(), with.totalPerMonth());
}

TEST(TcoModel, CoolingScaleOnlyTouchesCoolingInfra)
{
    auto full = rd330Model().monthly(10000.0, 54000, false, 1.0);
    auto small = rd330Model().monthly(10000.0, 54000, false, 0.9);
    EXPECT_NEAR(small.coolingInfraCapEx,
                0.9 * full.coolingInfraCapEx, 1e-9);
    EXPECT_DOUBLE_EQ(small.powerInfraCapEx, full.powerInfraCapEx);
    EXPECT_DOUBLE_EQ(small.serverCapEx, full.serverCapEx);
}

TEST(TcoModel, TcoLinearInCriticalPower)
{
    // The paper assumes most CapEx is linear in critical capacity.
    auto m = rd330Model();
    auto one = m.monthly(5000.0, 27000, false);
    auto two = m.monthly(10000.0, 54000, false);
    EXPECT_NEAR(two.totalPerMonth(), 2.0 * one.totalPerMonth(),
                1e-6);
}

TEST(TcoModel, CoolingSavingsMatchPaper2U)
{
    // Paper: 12 % smaller plant in the 2U facility saves ~$254k/yr.
    TcoModel m(parametersFor(server::x4470Spec()));
    double s = m.annualCoolingInfraSavings(10000.0, 0.12);
    EXPECT_NEAR(s, 254000.0, 30000.0);
}

TEST(TcoModel, CoolingSavingsMatchPaper1U)
{
    // Paper: 8.9 % with 1U servers saves ~$187k/yr.
    TcoModel m(parametersFor(server::rd330Spec()));
    double s = m.annualCoolingInfraSavings(10000.0, 0.089);
    EXPECT_NEAR(s, 187000.0, 25000.0);
}

TEST(TcoModel, CoolingSavingsLinearInReduction)
{
    auto m = rd330Model();
    EXPECT_NEAR(m.annualCoolingInfraSavings(10000.0, 0.10),
                2.0 * m.annualCoolingInfraSavings(10000.0, 0.05),
                1e-6);
    EXPECT_DOUBLE_EQ(m.annualCoolingInfraSavings(10000.0, 0.0),
                     0.0);
}

TEST(TcoModel, RetrofitSavingsMatchPaper)
{
    // Paper: $3.0-3.2M per year over the remaining 6-year plant
    // life, roughly platform-independent.
    for (auto spec : {server::rd330Spec(), server::x4470Spec(),
                      server::openComputeSpec()}) {
        TcoModel m(parametersFor(spec));
        double s = m.annualRetrofitSavings(10000.0, 6.0);
        EXPECT_GT(s, 2.8e6) << spec.name;
        EXPECT_LT(s, 3.4e6) << spec.name;
    }
}

TEST(TcoModel, RetrofitSavingsScaleWithRemainingLife)
{
    auto m = rd330Model();
    EXPECT_NEAR(m.annualRetrofitSavings(10000.0, 3.0),
                2.0 * m.annualRetrofitSavings(10000.0, 6.0), 1e-6);
}

TEST(TcoModel, RetrofitDwarfsNewBuildSavings)
{
    // The paper's key contrast: reusing a plant with remaining life
    // is worth an order of magnitude more than right-sizing a new
    // one.
    auto m = rd330Model();
    EXPECT_GT(m.annualRetrofitSavings(10000.0, 6.0),
              10.0 * m.annualCoolingInfraSavings(10000.0, 0.089));
}

TEST(TcoModel, TcoEfficiencyGainGrowsWithThroughput)
{
    auto m = rd330Model();
    double g1 = m.tcoEfficiencyGain(10000.0, 54000, 0.10);
    double g2 = m.tcoEfficiencyGain(10000.0, 54000, 0.33);
    double g3 = m.tcoEfficiencyGain(10000.0, 54000, 0.69);
    EXPECT_GT(g2, g1);
    EXPECT_GT(g3, g2);
    // At zero gain the wax is pure (tiny) cost.
    EXPECT_NEAR(m.tcoEfficiencyGain(10000.0, 54000, 0.0), 0.0,
                0.002);
}

TEST(TcoModel, TcoEfficiencyMatchesPaperAtPaperGains)
{
    // With the paper's Fig 12 gains, Eq 1 yields the paper's
    // Section 5.2 efficiency improvements (23 % / 39 % / 24 %).
    TcoModel m1(parametersFor(server::rd330Spec()));
    EXPECT_NEAR(m1.tcoEfficiencyGain(10000.0, 54 * 1008, 0.33),
                0.23, 0.04);
    TcoModel m2(parametersFor(server::x4470Spec()));
    EXPECT_NEAR(m2.tcoEfficiencyGain(10000.0, 19 * 1008, 0.69),
                0.39, 0.05);
    TcoModel m3(parametersFor(server::openComputeSpec()));
    EXPECT_NEAR(m3.tcoEfficiencyGain(10000.0, 29 * 1008, 0.34),
                0.24, 0.04);
}

TEST(TcoModel, RejectsBadArguments)
{
    auto m = rd330Model();
    EXPECT_THROW(m.monthly(0.0, 100), FatalError);
    EXPECT_THROW(m.monthly(100.0, 0), FatalError);
    EXPECT_THROW(m.annualCoolingInfraSavings(100.0, 1.0),
                 FatalError);
    EXPECT_THROW(m.annualRetrofitSavings(100.0, 0.0), FatalError);
    EXPECT_THROW(m.tcoEfficiencyGain(100.0, 10, -0.1), FatalError);
}

} // namespace
} // namespace tco
} // namespace tts
