/**
 * @file
 * LruMap tests: recency ordering, eviction, pointer stability
 * guarantees, and the oldest-first iteration the snapshot writer
 * depends on.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cache/lru.hh"

using namespace tts;

namespace {

std::vector<std::uint64_t>
lruOrder(const cache::LruMap<int> &m)
{
    std::vector<std::uint64_t> keys;
    m.forEachLru([&](std::uint64_t key, const int &) {
        keys.push_back(key);
    });
    return keys;
}

} // namespace

TEST(CacheLru, FindInsertAndSize)
{
    cache::LruMap<int> m(4);
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.capacity(), 4u);
    int out = 0;
    EXPECT_FALSE(m.find(1, &out));
    EXPECT_FALSE(m.insert(1, 10));
    EXPECT_TRUE(m.find(1, &out));
    EXPECT_EQ(out, 10);
    EXPECT_EQ(m.size(), 1u);
}

TEST(CacheLru, InsertingAnExistingKeyReplacesTheValue)
{
    cache::LruMap<int> m(4);
    m.insert(1, 10);
    EXPECT_FALSE(m.insert(1, 20));
    int out = 0;
    EXPECT_TRUE(m.find(1, &out));
    EXPECT_EQ(out, 20);
    EXPECT_EQ(m.size(), 1u);
}

TEST(CacheLru, EvictsTheLeastRecentlyUsedEntry)
{
    cache::LruMap<int> m(3);
    m.insert(1, 10);
    m.insert(2, 20);
    m.insert(3, 30);
    // Touch 1 so 2 becomes the oldest.
    int out = 0;
    EXPECT_TRUE(m.find(1, &out));
    EXPECT_TRUE(m.insert(4, 40)); // evicts 2
    EXPECT_FALSE(m.find(2, &out));
    EXPECT_TRUE(m.find(1, &out));
    EXPECT_TRUE(m.find(3, &out));
    EXPECT_TRUE(m.find(4, &out));
    EXPECT_EQ(m.size(), 3u);
}

TEST(CacheLru, TouchBumpsRecencyAndReturnsAMutablePointer)
{
    cache::LruMap<int> m(2);
    m.insert(1, 10);
    m.insert(2, 20);
    int *p = m.touch(1);
    ASSERT_NE(p, nullptr);
    *p = 11;
    EXPECT_EQ(m.touch(99), nullptr);
    EXPECT_TRUE(m.insert(3, 30)); // evicts 2, not the touched 1
    int out = 0;
    EXPECT_TRUE(m.find(1, &out));
    EXPECT_EQ(out, 11);
    EXPECT_FALSE(m.find(2, &out));
}

TEST(CacheLru, ForEachLruWalksOldestFirst)
{
    cache::LruMap<int> m(8);
    m.insert(1, 10);
    m.insert(2, 20);
    m.insert(3, 30);
    int out = 0;
    m.find(1, &out); // 1 is now the most recent
    EXPECT_EQ(lruOrder(m),
              (std::vector<std::uint64_t>{2, 3, 1}));
}

TEST(CacheLru, ReplayingForEachLruRebuildsTheSameOrder)
{
    // The snapshot writer persists oldest-first and the loader
    // re-inserts in file order; that round trip must be a fixed
    // point of the recency order.
    cache::LruMap<int> a(8);
    a.insert(5, 1);
    a.insert(9, 2);
    a.insert(2, 3);
    int out = 0;
    a.find(9, &out);
    cache::LruMap<int> b(8);
    a.forEachLru([&](std::uint64_t key, const int &value) {
        b.insert(key, value);
    });
    EXPECT_EQ(lruOrder(a), lruOrder(b));
}

TEST(CacheLru, ZeroCapacityClampsToOne)
{
    cache::LruMap<int> m(0);
    EXPECT_EQ(m.capacity(), 1u);
    m.insert(1, 10);
    EXPECT_TRUE(m.insert(2, 20));
    int out = 0;
    EXPECT_FALSE(m.find(1, &out));
    EXPECT_TRUE(m.find(2, &out));
}

TEST(CacheLru, ClearEmptiesTheMap)
{
    cache::LruMap<int> m(4);
    m.insert(1, 10);
    m.insert(2, 20);
    m.clear();
    EXPECT_EQ(m.size(), 0u);
    int out = 0;
    EXPECT_FALSE(m.find(1, &out));
    EXPECT_TRUE(lruOrder(m).empty());
}
