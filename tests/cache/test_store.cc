/**
 * @file
 * Unified-store tests: the serve-facing aliases are the tts::cache
 * types (one cache, not two copies), and the store composes with
 * the shared fingerprint so callers can key on fnv1a(canonical)
 * without any serve headers.
 */

#include <gtest/gtest.h>

#include <string>
#include <type_traits>

#include "cache/fingerprint.hh"
#include "cache/result_cache.hh"
#include "serve/cache.hh"

namespace tts {

// The serve names are aliases of the unified types, not parallel
// definitions: a daemon cache and an opt memo built from either
// header share one implementation and one snapshot format.
static_assert(std::is_same<serve::ResultCache,
                           cache::ResultCache>::value,
              "serve::ResultCache must alias tts::cache");
static_assert(std::is_same<serve::CacheConfig,
                           cache::CacheConfig>::value,
              "serve::CacheConfig must alias tts::cache");
static_assert(std::is_same<serve::CacheLoadOutcome,
                           cache::CacheLoadOutcome>::value,
              "serve::CacheLoadOutcome must alias tts::cache");

} // namespace tts

using namespace tts;

TEST(CacheStore, KeysOnTheSharedFingerprintWithoutServeHeaders)
{
    cache::ResultCache store(cache::CacheConfig{});
    const std::string canonical = "opt-candidate 3 1 7\n";
    const std::uint64_t fp = cache::fnv1a(canonical);
    cache::Result value;
    value["opt.best_objective"] = 0.125;

    cache::Result out;
    EXPECT_FALSE(store.find(fp, canonical, &out));
    store.insert(fp, canonical, value);
    ASSERT_TRUE(store.find(fp, canonical, &out));
    EXPECT_EQ(out, value);
}

TEST(CacheStore, CollisionGuardComparesTheFullCanonicalText)
{
    cache::ResultCache store(cache::CacheConfig{});
    const std::string real = "tts-serve-request v1\nstudy cooling\n";
    cache::Result value;
    value["cooling.peak_kw"] = 42.0;
    store.insert(cache::fnv1a(real), real, value);

    // A forged lookup reusing the real fingerprint with different
    // text must miss and count a collision, never serve the value.
    cache::Result out;
    EXPECT_FALSE(
        store.find(cache::fnv1a(real), real + "forged tail\n", &out));
    EXPECT_EQ(store.counters().collisions, 1u);
    EXPECT_TRUE(store.find(cache::fnv1a(real), real, &out));
}
