/**
 * @file
 * FNV-1a fingerprint tests.  Every content-addressed store in the
 * tree (the serving daemon's result cache, the optimizer's memo)
 * keys on these exact bits, so the reference vectors here are
 * load-bearing: changing either constant or the byte order silently
 * re-keys every cache and rotates every golden fingerprint.
 */

#include <gtest/gtest.h>

#include <string>

#include "cache/fingerprint.hh"

using namespace tts;

TEST(CacheFingerprint, ConstantsAreTheCanonical64BitParameters)
{
    EXPECT_EQ(cache::kFnvOffsetBasis, 14695981039346656037ull);
    EXPECT_EQ(cache::kFnvPrime, 1099511628211ull);
}

TEST(CacheFingerprint, MatchesTheReferenceVectors)
{
    // The classic published 64-bit FNV-1a vectors.
    EXPECT_EQ(cache::fnv1a(""), 14695981039346656037ull);
    EXPECT_EQ(cache::fnv1a("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(cache::fnv1a("foobar"), 0x85944171f73967e8ull);
}

TEST(CacheFingerprint, EmbeddedNulBytesAreHashed)
{
    const std::string a("ab\0cd", 5);
    const std::string b("ab", 2);
    EXPECT_NE(cache::fnv1a(a), cache::fnv1a(b));
}

TEST(CacheFingerprint, MixU64MatchesByteWiseLittleEndianHashing)
{
    // fnv1aMixU64 must hash exactly the value's 8 little-endian
    // bytes: the optimizer's decision fingerprints were built on
    // that equivalence and are pinned by golden tests downstream.
    const std::uint64_t v = 0x0123456789abcdefull;
    std::string bytes;
    for (int i = 0; i < 8; ++i)
        bytes.push_back(
            static_cast<char>((v >> (8 * i)) & 0xff));
    EXPECT_EQ(cache::fnv1aMixU64(cache::kFnvOffsetBasis, v),
              cache::fnv1a(bytes));
}

TEST(CacheFingerprint, MixIsOrderSensitive)
{
    const std::uint64_t h0 = cache::kFnvOffsetBasis;
    EXPECT_NE(cache::fnv1aMixU64(cache::fnv1aMixU64(h0, 1), 2),
              cache::fnv1aMixU64(cache::fnv1aMixU64(h0, 2), 1));
}
