/** @file Tests for the PSU efficiency model. */

#include <gtest/gtest.h>

#include "server/psu_model.hh"
#include "util/error.hh"

namespace tts {
namespace server {
namespace {

PsuModel
rd330Psu()
{
    return PsuModel{0.80, 0.90, 180.0};
}

TEST(PsuModel, EfficiencyEndpoints)
{
    auto psu = rd330Psu();
    EXPECT_DOUBLE_EQ(psu.efficiencyAt(0.0), 0.80);
    EXPECT_DOUBLE_EQ(psu.efficiencyAt(180.0), 0.90);
}

TEST(PsuModel, EfficiencyClampsAboveRated)
{
    auto psu = rd330Psu();
    EXPECT_DOUBLE_EQ(psu.efficiencyAt(500.0), 0.90);
}

TEST(PsuModel, WallPowerExceedsDc)
{
    auto psu = rd330Psu();
    EXPECT_GT(psu.wallPower(100.0), 100.0);
    EXPECT_DOUBLE_EQ(psu.wallPower(0.0), 0.0);
}

TEST(PsuModel, LossIsWallMinusDc)
{
    auto psu = rd330Psu();
    double dc = 150.0;
    EXPECT_NEAR(psu.lossPower(dc), psu.wallPower(dc) - dc, 1e-12);
    EXPECT_GT(psu.lossPower(dc), 0.0);
}

TEST(PsuModel, DcFromWallRoundTrip)
{
    auto psu = rd330Psu();
    for (double dc : {10.0, 72.0, 150.0, 180.0}) {
        double wall = psu.wallPower(dc);
        EXPECT_NEAR(psu.dcFromWall(wall), dc, 1e-6) << dc;
    }
}

TEST(PsuModel, DcFromWallZero)
{
    EXPECT_DOUBLE_EQ(rd330Psu().dcFromWall(0.0), 0.0);
}

TEST(PsuModel, WallPowerIsMonotone)
{
    auto psu = rd330Psu();
    double prev = 0.0;
    for (double dc = 10.0; dc <= 250.0; dc += 10.0) {
        double w = psu.wallPower(dc);
        EXPECT_GT(w, prev);
        prev = w;
    }
}

TEST(PsuModel, HigherLoadIsMoreEfficient)
{
    auto psu = rd330Psu();
    double loss_frac_low = psu.lossPower(30.0) / 30.0;
    double loss_frac_high = psu.lossPower(170.0) / 170.0;
    EXPECT_GT(loss_frac_low, loss_frac_high);
}

TEST(PsuModel, RejectsBadInput)
{
    auto psu = rd330Psu();
    EXPECT_THROW(psu.efficiencyAt(-1.0), FatalError);
    EXPECT_THROW(psu.dcFromWall(-1.0), FatalError);
    PsuModel bad{0.8, 0.9, 0.0};
    EXPECT_THROW(bad.efficiencyAt(10.0), FatalError);
}

} // namespace
} // namespace server
} // namespace tts
