/** @file Tests for the fan bank model. */

#include <gtest/gtest.h>

#include "server/fan_model.hh"
#include "util/error.hh"

namespace tts {
namespace server {
namespace {

FanBank
rd330Fans()
{
    return FanBank{6, 12.0, 0.50, 0.75};
}

TEST(FanBank, SpeedEndpoints)
{
    auto fans = rd330Fans();
    EXPECT_DOUBLE_EQ(fans.speedAt(0.0), 0.50);
    EXPECT_DOUBLE_EQ(fans.speedAt(1.0), 0.75);
}

TEST(FanBank, SpeedLinearInUtilization)
{
    auto fans = rd330Fans();
    EXPECT_DOUBLE_EQ(fans.speedAt(0.5), 0.625);
}

TEST(FanBank, CubeLawPower)
{
    auto fans = rd330Fans();
    EXPECT_DOUBLE_EQ(fans.powerAt(1.0), 72.0);
    EXPECT_DOUBLE_EQ(fans.powerAt(0.5), 72.0 * 0.125);
    EXPECT_DOUBLE_EQ(fans.powerAt(0.0), 0.0);
}

TEST(FanBank, PowerMonotoneInSpeed)
{
    auto fans = rd330Fans();
    double prev = -1.0;
    for (double s = 0.0; s <= 1.0; s += 0.1) {
        double p = fans.powerAt(s);
        EXPECT_GT(p, prev);
        prev = p;
    }
}

TEST(FanBank, RejectsOutOfRange)
{
    auto fans = rd330Fans();
    EXPECT_THROW(fans.speedAt(-0.1), FatalError);
    EXPECT_THROW(fans.speedAt(1.1), FatalError);
    EXPECT_THROW(fans.powerAt(-0.1), FatalError);
    EXPECT_THROW(fans.powerAt(1.1), FatalError);
}

} // namespace
} // namespace server
} // namespace tts
