/** @file Tests for the assembled server model. */

#include <gtest/gtest.h>

#include "server/server_model.hh"
#include "util/error.hh"

namespace tts {
namespace server {
namespace {

class ServerModelPlatforms
    : public ::testing::TestWithParam<int>
{
  protected:
    ServerSpec
    spec() const
    {
        switch (GetParam()) {
          case 0: return rd330Spec();
          case 1: return x4470Spec();
          default: return openComputeSpec();
        }
    }
};

TEST_P(ServerModelPlatforms, WallPowerMatchesPublishedEnvelope)
{
    ServerModel m(spec());
    m.setLoad(0.0);
    EXPECT_NEAR(m.wallPower(), spec().idleWallPowerW, 0.5);
    m.setLoad(1.0);
    EXPECT_NEAR(m.wallPower(), spec().peakWallPowerW, 0.5);
}

TEST_P(ServerModelPlatforms, WallPowerMonotoneInUtilization)
{
    ServerModel m(spec());
    double prev = 0.0;
    for (double u = 0.0; u <= 1.0; u += 0.1) {
        m.setLoad(u);
        EXPECT_GT(m.wallPower(), prev);
        prev = m.wallPower();
    }
}

TEST_P(ServerModelPlatforms, SteadyStateCoolingEqualsWallPower)
{
    // In steady state all electrical input leaves as heat in the
    // exhaust air.
    ServerModel m(spec());
    for (double u : {0.0, 0.5, 1.0}) {
        m.setLoad(u);
        m.solveSteadyState();
        EXPECT_NEAR(m.coolingLoad(), m.wallPower(),
                    0.01 * m.wallPower())
            << "util " << u;
    }
}

TEST_P(ServerModelPlatforms, TemperaturesRiseWithLoad)
{
    ServerModel m(spec());
    m.setLoad(0.0);
    m.solveSteadyState();
    double idle_out = m.outletTemp();
    double idle_cpu = m.cpuJunctionTemp();
    m.setLoad(1.0);
    m.solveSteadyState();
    EXPECT_GT(m.outletTemp(), idle_out);
    EXPECT_GT(m.cpuJunctionTemp(), idle_cpu + 10.0);
}

TEST_P(ServerModelPlatforms, JunctionHotterThanCase)
{
    ServerModel m(spec());
    m.setLoad(1.0);
    m.solveSteadyState();
    EXPECT_GT(m.cpuJunctionTemp(), m.cpuCaseTemp());
}

TEST_P(ServerModelPlatforms, DownclockingReducesPowerAndThroughput)
{
    ServerModel m(spec());
    m.setLoad(1.0, spec().cpu.nominalFreqGHz);
    double p_full = m.wallPower();
    double t_full = m.throughput();
    m.setLoad(1.0, spec().cpu.minFreqGHz);
    EXPECT_LT(m.wallPower(), p_full);
    EXPECT_NEAR(m.throughput() / t_full,
                spec().cpu.minFreqGHz / spec().cpu.nominalFreqGHz,
                1e-9);
}

TEST_P(ServerModelPlatforms, PaperWaxConfigHasLatentCapacity)
{
    ServerModel m(spec(), WaxConfig::paper());
    ASSERT_TRUE(m.hasWax());
    // Latent capacity = liters x density x 200 J/g.
    double expect = spec().waxLiters * 0.8 * 200.0 * 1000.0;
    EXPECT_NEAR(m.waxLatentCapacity(), expect, 0.1 * expect);
}

TEST_P(ServerModelPlatforms, WaxMeltsAtFullLoadSolidAtIdle)
{
    ServerModel m(spec(), WaxConfig::paper());
    m.setLoad(0.0);
    m.solveSteadyState();
    EXPECT_LT(m.waxMeltFraction(), 0.05);
    m.setLoad(1.0);
    m.solveSteadyState();
    EXPECT_GT(m.waxMeltFraction(), 0.95);
}

TEST_P(ServerModelPlatforms, MeltingWaxStoresHeat)
{
    ServerModel m(spec(), WaxConfig::paper());
    m.setLoad(0.0);
    m.solveSteadyState();
    m.setLoad(1.0);
    m.advance(1800.0, 2.0);
    // While melting, the cooling load lags the wall power.
    EXPECT_GT(m.heatStorageRate(), 0.0);
    EXPECT_GT(m.waxStoredEnergy(), 0.0);
}

TEST_P(ServerModelPlatforms, PlaceboBlocksAirButStoresLittle)
{
    ServerModel wax(spec(), WaxConfig::paper());
    ServerModel placebo(spec(), WaxConfig::placebo());
    EXPECT_DOUBLE_EQ(wax.blockage(), placebo.blockage());
    EXPECT_FALSE(placebo.hasWax());
    EXPECT_DOUBLE_EQ(placebo.waxStoredEnergy(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Platforms, ServerModelPlatforms,
                         ::testing::Values(0, 1, 2));

TEST(ServerModel, BlockageMatchesPaperFor1U)
{
    ServerModel m(rd330Spec(), WaxConfig::paper());
    EXPECT_NEAR(m.blockage(), 0.70, 0.01);  // Paper: 70 %.
}

TEST(ServerModel, BlockageMatchesPaperFor2U)
{
    ServerModel m(x4470Spec(), WaxConfig::paper());
    EXPECT_NEAR(m.blockage(), 0.69, 0.01);  // Paper: 69 %.
}

TEST(ServerModel, OcpWaxAddsNoBlockage)
{
    // Figure 9: wax replaces existing inhibitors.
    ServerModel m(openComputeSpec(), WaxConfig::paper());
    EXPECT_DOUBLE_EQ(m.blockage(), 0.0);
}

TEST(ServerModel, OcpProductionHasNoBay)
{
    ServerModel m(openComputeSpec(OcpLayout::Production),
                  WaxConfig::paper());
    EXPECT_FALSE(m.hasWax());
    EXPECT_FALSE(m.hasBay());
}

TEST(ServerModel, BlockageRaisesOutletTemp)
{
    // The Fig 7 effect at the deployment blockage.
    ServerModel stock(rd330Spec());
    ServerModel boxed(rd330Spec(), WaxConfig::placebo());
    stock.setLoad(1.0);
    stock.solveSteadyState();
    boxed.setLoad(1.0);
    boxed.solveSteadyState();
    EXPECT_GT(boxed.outletTemp(), stock.outletTemp());
}

TEST(ServerModel, CustomWaxOverridesDefaults)
{
    WaxConfig cfg = WaxConfig::custom(0.5, 45.0, 2);
    ServerModel m(rd330Spec(), cfg);
    ASSERT_TRUE(m.hasWax());
    EXPECT_NEAR(m.wax()->meltTempC(), 45.0, 1e-12);
    EXPECT_NEAR(m.waxLatentCapacity(), 0.5 * 0.8 * 200e3, 0.02e5);
}

TEST(ServerModel, ExplicitBoxGeometryUsed)
{
    WaxConfig cfg;
    cfg.mode = WaxConfig::Mode::Wax;
    cfg.meltTempC = 39.0;
    cfg.boxCount = 1;
    pcm::BoxSpec box;
    box.lengthM = 0.12;
    box.widthM = 0.08;
    box.heightM = 0.014;
    cfg.explicitBox = box;
    ServerModel m(rd330Spec(), cfg);
    ASSERT_TRUE(m.hasWax());
    // ~90 ml of wax -> ~70 g.
    double mass_kg = m.waxLatentCapacity() / 200e3;
    EXPECT_NEAR(mass_kg, 0.070, 0.015);
    // A single small box blocks only a few percent.
    EXPECT_LT(m.blockage(), 0.10);
}

TEST(ServerModel, MiscResidualIsNonNegative)
{
    for (auto spec : {rd330Spec(), x4470Spec(), openComputeSpec()}) {
        ServerModel m(spec);
        EXPECT_GE(m.miscPower(0.0), 0.0) << spec.name;
        EXPECT_GE(m.miscPower(1.0), 0.0) << spec.name;
    }
}

TEST(ServerModel, RejectsBadLoad)
{
    ServerModel m(rd330Spec());
    EXPECT_THROW(m.setLoad(-0.1), FatalError);
    EXPECT_THROW(m.setLoad(1.1), FatalError);
}

TEST(ServerModel, WaxAccessorsRequireWax)
{
    ServerModel m(rd330Spec());
    EXPECT_THROW(m.waxTemp(), FatalError);
    EXPECT_THROW(m.waxMeltFraction(), FatalError);
    EXPECT_THROW(m.bayNodeTemp(), FatalError);
}

} // namespace
} // namespace server
} // namespace tts
