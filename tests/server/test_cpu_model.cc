/** @file Tests for the CPU power/DVFS model. */

#include <gtest/gtest.h>

#include "server/cpu_model.hh"
#include "util/error.hh"

namespace tts {
namespace server {
namespace {

CpuPowerModel
rd330Cpu()
{
    return CpuPowerModel{6.0, 46.0, 2.4, 1.6};
}

TEST(CpuPowerModel, IdleAndPeakEndpoints)
{
    auto cpu = rd330Cpu();
    EXPECT_DOUBLE_EQ(cpu.power(0.0, 2.4), 6.0);
    EXPECT_DOUBLE_EQ(cpu.power(1.0, 2.4), 46.0);
}

TEST(CpuPowerModel, LinearInUtilization)
{
    auto cpu = rd330Cpu();
    EXPECT_DOUBLE_EQ(cpu.power(0.5, 2.4), 26.0);
}

TEST(CpuPowerModel, DownclockingSavesPower)
{
    auto cpu = rd330Cpu();
    EXPECT_LT(cpu.power(1.0, 1.6), cpu.power(1.0, 2.4));
    // f x V^2 scaling: 1.6/2.4 * 0.8^2 = 0.4267 of the active part.
    double active = cpu.power(1.0, 1.6) - cpu.idlePowerW;
    EXPECT_NEAR(active, 40.0 * (1.6 / 2.4) * 0.64, 1e-9);
}

TEST(CpuPowerModel, PowerMonotoneInFrequency)
{
    auto cpu = rd330Cpu();
    double prev = 0.0;
    for (double f = 1.6; f <= 2.4; f += 0.1) {
        double p = cpu.power(0.8, f);
        EXPECT_GT(p, prev);
        prev = p;
    }
}

TEST(CpuPowerModel, FrequencyClamping)
{
    auto cpu = rd330Cpu();
    EXPECT_DOUBLE_EQ(cpu.clampFreq(3.0), 2.4);
    EXPECT_DOUBLE_EQ(cpu.clampFreq(1.0), 1.6);
    EXPECT_DOUBLE_EQ(cpu.power(1.0, 9.9), cpu.power(1.0, 2.4));
}

TEST(CpuPowerModel, VoltageInterpolation)
{
    auto cpu = rd330Cpu();
    EXPECT_DOUBLE_EQ(cpu.voltageAt(2.4), 1.0);
    EXPECT_DOUBLE_EQ(cpu.voltageAt(1.6), 0.8);
    EXPECT_DOUBLE_EQ(cpu.voltageAt(2.0), 0.9);
}

TEST(CpuPowerModel, ThroughputScaleIsFrequencyRatio)
{
    auto cpu = rd330Cpu();
    EXPECT_DOUBLE_EQ(cpu.throughputScale(2.4), 1.0);
    EXPECT_NEAR(cpu.throughputScale(1.6), 1.6 / 2.4, 1e-12);
    EXPECT_DOUBLE_EQ(cpu.throughputScale(99.0), 1.0);
}

TEST(CpuPowerModel, MaxFreqForGenerousBudget)
{
    auto cpu = rd330Cpu();
    EXPECT_DOUBLE_EQ(cpu.maxFreqForPower(100.0, 1.0), 2.4);
}

TEST(CpuPowerModel, MaxFreqForTinyBudget)
{
    auto cpu = rd330Cpu();
    EXPECT_DOUBLE_EQ(cpu.maxFreqForPower(1.0, 1.0), 1.6);
}

TEST(CpuPowerModel, MaxFreqForIntermediateBudget)
{
    auto cpu = rd330Cpu();
    double budget = 30.0;
    double f = cpu.maxFreqForPower(budget, 1.0);
    EXPECT_GT(f, 1.6);
    EXPECT_LT(f, 2.4);
    EXPECT_LE(cpu.power(1.0, f), budget + 1e-6);
    EXPECT_GT(cpu.power(1.0, f + 0.01), budget);
}

TEST(CpuPowerModel, RejectsBadUtilization)
{
    auto cpu = rd330Cpu();
    EXPECT_THROW(cpu.power(-0.1, 2.4), FatalError);
    EXPECT_THROW(cpu.power(1.1, 2.4), FatalError);
}

class CpuUtilSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(CpuUtilSweep, DownclockedPowerNeverExceedsNominal)
{
    auto cpu = rd330Cpu();
    double u = GetParam();
    for (double f = 1.6; f <= 2.4; f += 0.2)
        EXPECT_LE(cpu.power(u, f), cpu.power(u, 2.4) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Utils, CpuUtilSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75,
                                           0.95, 1.0));

} // namespace
} // namespace server
} // namespace tts
