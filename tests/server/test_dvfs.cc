/** @file Tests for the DVFS thermal-cap governor. */

#include <gtest/gtest.h>

#include "server/dvfs.hh"
#include "util/error.hh"

namespace tts {
namespace server {
namespace {

TEST(DvfsGovernor, GenerousBudgetKeepsNominal)
{
    DvfsGovernor gov(rd330Spec());
    auto d = gov.decide(1.0, 500.0);
    EXPECT_DOUBLE_EQ(d.freqGHz, 2.4);
    EXPECT_FALSE(d.throttled);
}

TEST(DvfsGovernor, TinyBudgetFallsToFloor)
{
    DvfsGovernor gov(rd330Spec());
    auto d = gov.decide(1.0, 50.0);
    EXPECT_DOUBLE_EQ(d.freqGHz, 1.6);
    EXPECT_TRUE(d.throttled);
    // The paper's behavior: clamp at the floor even if the budget is
    // still exceeded there.
    EXPECT_GT(d.wallPowerW, 50.0);
}

TEST(DvfsGovernor, IntermediateBudgetBisects)
{
    DvfsGovernor gov(rd330Spec());
    double budget = 170.0;  // Between idle and peak wall power.
    auto d = gov.decide(1.0, budget);
    EXPECT_GT(d.freqGHz, 1.6);
    EXPECT_LT(d.freqGHz, 2.4);
    EXPECT_TRUE(d.throttled);
    EXPECT_LE(d.wallPowerW, budget + 0.01);
    // The governor maximizes: slightly above the chosen frequency
    // must violate the budget.
    EXPECT_GT(gov.wallPowerAt(1.0, d.freqGHz + 0.02), budget);
}

TEST(DvfsGovernor, LowerUtilizationNeedsLessThrottling)
{
    DvfsGovernor gov(rd330Spec());
    double budget = 160.0;
    auto busy = gov.decide(1.0, budget);
    auto calm = gov.decide(0.5, budget);
    EXPECT_GE(calm.freqGHz, busy.freqGHz);
}

TEST(DvfsGovernor, WallPowerAtMatchesServerModel)
{
    DvfsGovernor gov(x4470Spec());
    ServerModel m(x4470Spec());
    m.setLoad(0.8, 2.0);
    EXPECT_NEAR(gov.wallPowerAt(0.8, 2.0), m.wallPower(), 1e-9);
}

TEST(DvfsGovernor, RejectsBadBudget)
{
    DvfsGovernor gov(rd330Spec());
    EXPECT_THROW(gov.decide(1.0, 0.0), FatalError);
    EXPECT_THROW(gov.decide(1.0, -5.0), FatalError);
}

class DvfsBudgetSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(DvfsBudgetSweep, DecisionRespectsBudgetWhenFeasible)
{
    DvfsGovernor gov(x4470Spec());
    double budget = GetParam();
    auto d = gov.decide(0.95, budget);
    double floor_power = gov.wallPowerAt(0.95, 1.6);
    if (budget >= floor_power)
        EXPECT_LE(d.wallPowerW, budget + 0.01);
    else
        EXPECT_DOUBLE_EQ(d.freqGHz, 1.6);
}

INSTANTIATE_TEST_SUITE_P(Budgets, DvfsBudgetSweep,
                         ::testing::Values(100.0, 300.0, 400.0,
                                           480.0, 556.0, 800.0));

} // namespace
} // namespace server
} // namespace tts
