/** @file Tests for the platform specifications. */

#include <gtest/gtest.h>

#include "server/server_spec.hh"
#include "util/error.hh"

namespace tts {
namespace server {
namespace {

TEST(ServerSpec, AllPaperPlatformsValidate)
{
    EXPECT_NO_THROW(rd330Spec().validate());
    EXPECT_NO_THROW(x4470Spec().validate());
    EXPECT_NO_THROW(
        openComputeSpec(OcpLayout::Production).validate());
    EXPECT_NO_THROW(
        openComputeSpec(OcpLayout::InhibitorWax).validate());
    EXPECT_NO_THROW(
        openComputeSpec(OcpLayout::FutureSsd).validate());
}

TEST(ServerSpec, Rd330MatchesPaperMeasurements)
{
    auto s = rd330Spec();
    EXPECT_EQ(s.sockets, 2u);
    EXPECT_EQ(s.coresPerSocket, 6u);
    EXPECT_DOUBLE_EQ(s.cpu.idlePowerW, 6.0);   // 6 W idle / socket.
    EXPECT_DOUBLE_EQ(s.cpu.peakPowerW, 46.0);  // 46 W loaded.
    EXPECT_DOUBLE_EQ(s.cpu.nominalFreqGHz, 2.4);
    EXPECT_DOUBLE_EQ(s.idleWallPowerW, 90.0);
    EXPECT_DOUBLE_EQ(s.peakWallPowerW, 185.0);
    EXPECT_EQ(s.dram.count, 10u);              // 10 DIMMs.
    EXPECT_DOUBLE_EQ(s.waxLiters, 1.2);        // Figure 6.
    EXPECT_NEAR(s.maxWaxBlockage, 0.70, 1e-9); // Fig 7a.
    EXPECT_DOUBLE_EQ(s.serverCostUsd, 2000.0);
}

TEST(ServerSpec, X4470MatchesPaper)
{
    auto s = x4470Spec();
    EXPECT_EQ(s.sockets, 4u);
    EXPECT_EQ(s.coresPerSocket, 8u);
    EXPECT_NEAR(s.peakWallPowerW * 0.9, 500.0, 10.0);  // 500 W DC.
    EXPECT_DOUBLE_EQ(s.waxLiters, 4.0);        // Four 1 l boxes.
    EXPECT_NEAR(s.maxWaxBlockage, 0.69, 1e-9); // Paper: 69 %.
    EXPECT_DOUBLE_EQ(s.serverCostUsd, 7000.0);
    EXPECT_EQ(s.serversPerRack, 20u);          // 2U form factor.
}

TEST(ServerSpec, OcpMatchesPaper)
{
    auto s = openComputeSpec(OcpLayout::FutureSsd);
    EXPECT_EQ(s.sockets, 2u);
    EXPECT_DOUBLE_EQ(s.idleWallPowerW, 100.0);
    EXPECT_DOUBLE_EQ(s.peakWallPowerW, 300.0);
    EXPECT_DOUBLE_EQ(s.waxLiters, 1.5);        // Figure 9 (c).
    EXPECT_DOUBLE_EQ(s.waxBlockageOverride, 0.0);
    EXPECT_DOUBLE_EQ(s.serverCostUsd, 4000.0);
    EXPECT_EQ(s.hdd.count, 4u);                // Redundant HDDs.
    EXPECT_EQ(s.ssd.count, 2u);                // PCIe SSDs.
}

TEST(ServerSpec, OcpLayoutsDifferInWax)
{
    auto prod = openComputeSpec(OcpLayout::Production);
    auto inhib = openComputeSpec(OcpLayout::InhibitorWax);
    auto future = openComputeSpec(OcpLayout::FutureSsd);
    EXPECT_DOUBLE_EQ(prod.waxLiters, 0.0);
    EXPECT_DOUBLE_EQ(inhib.waxLiters, 0.5);    // Figure 9 (b).
    EXPECT_DOUBLE_EQ(future.waxLiters, 1.5);   // Figure 9 (c).
}

TEST(ServerSpec, FanCurvePassesThroughCalibrationPoint)
{
    for (auto s : {rd330Spec(), x4470Spec(), openComputeSpec()}) {
        auto fan = s.fanCurve();
        EXPECT_NEAR(fan.pressureAt(s.nominalFlowM3s),
                    s.refPressurePa, 1e-6)
            << s.name;
    }
}

TEST(ServerSpec, AirflowModelReproducesNominalFlow)
{
    for (auto s : {rd330Spec(), x4470Spec(), openComputeSpec()}) {
        auto m = s.makeAirflow();
        EXPECT_NEAR(m.flow(), s.nominalFlowM3s, 1e-9) << s.name;
    }
}

TEST(ServerSpec, FanStiffnessOrderingMatchesFig7)
{
    // Fig 7: the 1U shrugs off blockage, the 2U tolerates ~60 %,
    // the Open Compute blade collapses immediately.
    EXPECT_GT(rd330Spec().fanStiffness, x4470Spec().fanStiffness);
    EXPECT_GT(x4470Spec().fanStiffness,
              openComputeSpec().fanStiffness);
}

TEST(ServerSpec, PeakPowerOrdering)
{
    // High-throughput 2U is the most power-dense platform.
    EXPECT_GT(x4470Spec().peakWallPowerW,
              openComputeSpec().peakWallPowerW);
    EXPECT_GT(openComputeSpec().peakWallPowerW,
              rd330Spec().peakWallPowerW);
}

TEST(ServerSpec, ComponentBankPowerLinear)
{
    ComponentBank bank{10, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(bank.power(0.0), 10.0);
    EXPECT_DOUBLE_EQ(bank.power(1.0), 20.0);
    EXPECT_DOUBLE_EQ(bank.power(0.5), 15.0);
}

TEST(ServerSpec, ValidateCatchesInconsistency)
{
    auto s = rd330Spec();
    s.peakWallPowerW = 50.0;  // Below idle.
    EXPECT_THROW(s.validate(), FatalError);

    s = rd330Spec();
    s.fanStiffness = 0.5;
    EXPECT_THROW(s.fanCurve(), FatalError);
}

} // namespace
} // namespace server
} // namespace tts
