/**
 * @file
 * Property tests for the search: per-restart best cost is monotone
 * non-increasing, the returned optimum is locally minimal among its
 * full neighbor set, and the global best never loses to anything the
 * walk visited.
 */

#include <gtest/gtest.h>
#include <limits>

#include "opt_test_util.hh"
#include "tco/parameters.hh"

namespace tts {
namespace opt {
namespace {

TEST(OptProperties, RestartBestIsMonotoneNonIncreasing)
{
    SearchSpace space = fastSpace();
    OptOptions opts = fastOptions();
    opts.restarts = 3;
    OptResult r = optimizeWaxPlacement(space, fastTrace(), opts);

    // Within each restart the running best can only improve.
    for (std::size_t rs = 0; rs < opts.restarts; ++rs) {
        double prev = std::numeric_limits<double>::infinity();
        bool seen = false;
        for (const OptTracePoint &p : r.trace) {
            if (p.restart != rs)
                continue;
            EXPECT_LE(p.restartBestCost, prev)
                << "restart " << rs << " iteration " << p.iteration;
            EXPECT_LE(p.restartBestCost, p.currentCost)
                << "restart " << rs << " iteration " << p.iteration;
            prev = p.restartBestCost;
            seen = true;
        }
        EXPECT_TRUE(seen) << "restart " << rs << " left no trace";
        // The reported per-restart best is the final running best.
        EXPECT_EQ(r.restartBest[rs], prev);
    }
}

TEST(OptProperties, ReturnedOptimumIsLocallyMinimal)
{
    SearchSpace space = fastSpace();
    OptOptions opts = fastOptions();
    OptResult r = optimizeWaxPlacement(space, fastTrace(), opts);

    // Re-evaluate every neighbor of the returned best through the
    // bare oracle (no memo, no engine) - none may beat it, or the
    // polish stage's local-minimality guarantee is broken.
    for (const Candidate &n : neighbors(space, r.best)) {
        EvalOutcome out =
            evaluateCandidate(space, n, fastTrace(), opts);
        EXPECT_GE(costOf(out, opts.objective), r.bestCost);
    }
}

TEST(OptProperties, BestNeverLosesToTheVisitedWalk)
{
    SearchSpace space = fastSpace();
    OptOptions opts = fastOptions();
    OptResult r = optimizeWaxPlacement(space, fastTrace(), opts);

    for (const OptTracePoint &p : r.trace) {
        EXPECT_LE(r.bestCost, p.currentCost);
        EXPECT_LE(r.bestCost, p.restartBestCost);
    }
    for (double rb : r.restartBest)
        EXPECT_LE(r.bestCost, rb);
}

TEST(OptProperties, BestCostMatchesAFreshEvaluation)
{
    SearchSpace space = fastSpace();
    OptOptions opts = fastOptions();
    OptResult r = optimizeWaxPlacement(space, fastTrace(), opts);

    // The reported cost is a real oracle value for the reported
    // candidate, not a stale accumulator.
    EvalOutcome out =
        evaluateCandidate(space, r.best, fastTrace(), opts);
    EXPECT_EQ(costOf(out, opts.objective), r.bestCost);
    EXPECT_EQ(out.peakCoolingW, r.bestOutcome.peakCoolingW);
}

TEST(OptProperties, TcoObjectiveChargesForWax)
{
    SearchSpace space = fastSpace();
    OptOptions opts = fastOptions();

    // Same peak => more wax must cost more under the TCO objective.
    Candidate paper = paperCandidate(space);
    EvalOutcome out =
        evaluateCandidate(space, paper, fastTrace(), opts);
    EXPECT_GT(out.tcoUsdPerYear, 0.0);

    Candidate none = paper;
    none.arch[0].massStep = 0;
    EvalOutcome bare =
        evaluateCandidate(space, none, fastTrace(), opts);
    // No wax: the TCO is purely the peak's cooling capital.  With
    // wax the peak shrinks but the charge is billed; both parts must
    // show up in the difference.
    double peak_part_paper = out.tcoUsdPerYear -
        (out.peakCoolingW / 1e3) * 12.0 *
            tco::parametersFor(space.archetypes[0].spec)
                .coolingAttributedCapExPerKW();
    double peak_part_bare = bare.tcoUsdPerYear -
        (bare.peakCoolingW / 1e3) * 12.0 *
            tco::parametersFor(space.archetypes[0].spec)
                .coolingAttributedCapExPerKW();
    EXPECT_GT(peak_part_paper, 0.0); // Wax billed.
    EXPECT_NEAR(peak_part_bare, 0.0, 1e-9); // No wax, no bill.
}

} // namespace
} // namespace opt
} // namespace tts
