/**
 * @file
 * Search-space unit tests: canonicalization, fingerprints,
 * feasibility against the PCM sizing model, neighbor enumeration,
 * and seeded random draws.
 */

#include <gtest/gtest.h>
#include <set>

#include "opt_test_util.hh"
#include "util/error.hh"

namespace tts {
namespace opt {
namespace {

TEST(OptSpace, PaperCandidateIsFeasibleAndOnGrid)
{
    SearchSpace space = fastSpace();
    Candidate c = paperCandidate(space);
    EXPECT_TRUE(feasible(space, c));
    // 2U X4470: 4.0 l of paraffin, mass snapped to the 0.5 kg grid.
    EXPECT_GT(massKgOf(space, c, 0), 0.0);
    EXPECT_NEAR(massKgOf(space, c, 0),
                space.archetypes[0].paperMassKg, 0.5);
    EXPECT_EQ(c.policy, 0);
}

TEST(OptSpace, CanonicalPinsZeroMassCoordinates)
{
    SearchSpace space = fastSpace();
    Candidate a = paperCandidate(space);
    a.arch[0].massStep = 0;
    a.arch[0].meltStep = 3;
    Candidate b = paperCandidate(space);
    b.arch[0].massStep = 0;
    b.arch[0].meltStep = 7;
    // No wax: the melt coordinate is meaningless, so both decode to
    // the same fleet and must share one canonical form / memo slot.
    EXPECT_TRUE(canonical(space, a) == canonical(space, b));
    EXPECT_EQ(fingerprint(space, a), fingerprint(space, b));
    // With wax they are distinct.
    a.arch[0].massStep = b.arch[0].massStep = 2;
    EXPECT_NE(fingerprint(space, a), fingerprint(space, b));
}

TEST(OptSpace, NeighborsAreFeasibleDedupedAndExcludeBase)
{
    SearchSpace space = fastSpace();
    Candidate base = paperCandidate(space);
    auto ns = neighbors(space, base);
    ASSERT_FALSE(ns.empty());
    std::set<std::uint64_t> fps;
    for (const Candidate &n : ns) {
        EXPECT_TRUE(feasible(space, n));
        EXPECT_FALSE(n == base);
        EXPECT_TRUE(
            fps.insert(fingerprint(space, n)).second)
            << "duplicate neighbor";
        // Exactly one coordinate moved by one step.
        int moved = std::abs(n.arch[0].massStep -
                             base.arch[0].massStep) +
            std::abs(n.arch[0].boxes - base.arch[0].boxes) +
            std::abs(n.arch[0].meltStep - base.arch[0].meltStep) +
            std::abs(n.policy - base.policy);
        EXPECT_EQ(moved, 1);
    }
}

TEST(OptSpace, FeasibilityFollowsTheBlockageCap)
{
    SearchSpace space = fastSpace();
    Candidate c = paperCandidate(space);
    // Zero mass is always feasible.
    c.arch[0].massStep = 0;
    EXPECT_TRUE(feasible(space, canonical(space, c)));
    // The axis max was derived from massCapFactor, but the sizing
    // model has the final word: past the cap sizeBank refuses, so an
    // out-of-range step is infeasible outright.
    c = paperCandidate(space);
    c.arch[0].massStep = space.archetypes[0].maxMassSteps + 1;
    EXPECT_FALSE(feasible(space, c));
}

TEST(OptSpace, SizeCountsCanonicalForms)
{
    SearchSpace space = fastSpace();
    const ArchetypeAxis &a = space.archetypes[0];
    std::uint64_t boxes =
        static_cast<std::uint64_t>(a.maxBoxes - a.minBoxes + 1);
    std::uint64_t melts = static_cast<std::uint64_t>(a.meltSteps);
    std::uint64_t positive =
        static_cast<std::uint64_t>(a.maxMassSteps - a.minMassSteps);
    // minMassSteps == 0 on an unlocked axis: one zero-mass form plus
    // the positive grid.
    ASSERT_EQ(a.minMassSteps, 0);
    EXPECT_EQ(space.size(), 1 + positive * boxes * melts);
}

TEST(OptSpace, RandomDrawsAreSeededAndFeasible)
{
    SearchSpace space = fastSpace();
    Rng a = Rng::forStream(42, 7);
    Rng b = Rng::forStream(42, 7);
    for (int i = 0; i < 32; ++i) {
        Candidate ca = randomCandidate(space, a);
        Candidate cb = randomCandidate(space, b);
        EXPECT_TRUE(ca == cb) << "draw " << i;
        EXPECT_TRUE(feasible(space, ca));
    }
    // A different stream diverges somewhere in 32 draws.
    Rng c = Rng::forStream(42, 8);
    bool differs = false;
    Rng a2 = Rng::forStream(42, 7);
    for (int i = 0; i < 32 && !differs; ++i)
        differs = !(randomCandidate(space, a2) ==
                    randomCandidate(space, c));
    EXPECT_TRUE(differs);
}

TEST(OptSpace, DecodeMatchesTheGrid)
{
    SearchSpace space = fastSpace();
    Candidate c = paperCandidate(space);
    c.arch[0].massStep = 3;
    c.arch[0].meltStep = 2;
    EXPECT_DOUBLE_EQ(massKgOf(space, c, 0),
                     3.0 * space.opts.massStepKg);
    EXPECT_DOUBLE_EQ(meltTempCOf(space, c, 0),
                     space.meltMinC + 2.0 * space.opts.meltStepC);
    EXPECT_DOUBLE_EQ(
        litersOf(space, c, 0),
        massKgOf(space, c, 0) /
            space.opts.material.densitySolidGPerMl);
    server::WaxConfig wax = waxConfigOf(space, c, 0, 0.75);
    EXPECT_DOUBLE_EQ(wax.meltTempC, meltTempCOf(space, c, 0));
    EXPECT_DOUBLE_EQ(wax.meltWindowC, 0.75);
    c.arch[0].massStep = 0;
    EXPECT_DOUBLE_EQ(massKgOf(space, c, 0), 0.0);
}

TEST(OptSpace, RejectsBadOptions)
{
    EXPECT_THROW(makeSearchSpace({}, SpaceOptions{}), FatalError);

    SpaceOptions so;
    so.massStepKg = 0.0;
    EXPECT_THROW(makeSearchSpace({server::x4470Spec()}, so),
                 FatalError);

    so = SpaceOptions{};
    so.meltStepC = -1.0;
    EXPECT_THROW(makeSearchSpace({server::x4470Spec()}, so),
                 FatalError);

    // Melt window entirely outside the material's range.
    so = SpaceOptions{};
    so.meltMinC = 90.0;
    so.meltMaxC = 95.0;
    EXPECT_THROW(makeSearchSpace({server::x4470Spec()}, so),
                 FatalError);
}

} // namespace
} // namespace opt
} // namespace tts
