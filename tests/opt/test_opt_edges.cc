/**
 * @file
 * Annealing-schedule and configuration edge cases: zero budget, a
 * single-candidate space, an all-ties cost surface, and option
 * validation.
 */

#include <gtest/gtest.h>

#include "opt_test_util.hh"
#include "util/error.hh"

namespace tts {
namespace opt {
namespace {

TEST(OptEdges, ZeroBudgetReturnsTheSeedCandidate)
{
    SearchSpace space = fastSpace();
    OptOptions opts = fastOptions();
    opts.budget = 0;
    opts.restarts = 1;
    opts.polish = false;
    OptResult r = optimizeWaxPlacement(space, fastTrace(), opts);

    EXPECT_TRUE(r.best == paperCandidate(space));
    EXPECT_EQ(r.evaluations, 1u); // The restart's initial only.
    EXPECT_LE(r.oracleCalls, 2u); // Baseline + initial.
    ASSERT_EQ(r.trace.size(), 1u);
    EXPECT_EQ(r.trace[0].currentCost, r.bestCost);
    EXPECT_EQ(r.restartBest.size(), 1u);
    EXPECT_EQ(r.restartBest[0], r.bestCost);
}

TEST(OptEdges, SingleCandidateSpaceConverges)
{
    // Lock every axis and shrink the melt window to one point: the
    // space has exactly one candidate.
    SpaceOptions so;
    so.meltMinC = 54.0;
    so.meltMaxC = 54.0;
    so.lockMass = true;
    so.lockBoxes = true;
    so.lockPolicy = true;
    SearchSpace space = makeSearchSpace({server::x4470Spec()}, so);
    ASSERT_EQ(space.size(), 1u);
    EXPECT_TRUE(neighbors(space, paperCandidate(space)).empty());

    OptOptions opts = fastOptions();
    opts.budget = 8;
    OptResult r = optimizeWaxPlacement(space, fastTrace(), opts);

    EXPECT_TRUE(r.best == paperCandidate(space));
    // Every proposal is the same candidate: one real evaluation,
    // everything else memoized.
    EXPECT_LE(r.oracleCalls, 2u); // Baseline + the candidate.
    EXPECT_GT(r.memoHits, 0u);
    EXPECT_EQ(r.polishRounds, 0u);
}

TEST(OptEdges, AllTiesKeepTheFirstAchiever)
{
    // Single archetype, all axes locked except the placement policy:
    // with one archetype every policy collapses to uniform weights,
    // so all three candidates cost exactly the same.  Ties must
    // resolve deterministically to the first achiever - the paper
    // (Uniform) seed.
    SpaceOptions so;
    so.meltMinC = 54.0;
    so.meltMaxC = 54.0;
    so.lockMass = true;
    so.lockBoxes = true;
    so.lockPolicy = false;
    SearchSpace space = makeSearchSpace({server::x4470Spec()}, so);
    ASSERT_EQ(space.size(), 3u); // The three policies.

    OptOptions opts = fastOptions();
    opts.budget = 12;
    OptResult r = optimizeWaxPlacement(space, fastTrace(), opts);

    EXPECT_EQ(r.policy, "uniform");
    EXPECT_EQ(r.bestCost, r.trace[0].currentCost);
    // Ties are never "improvements": the walk may wander across the
    // tied policies, but the running best must stay flat.
    for (const OptTracePoint &p : r.trace)
        EXPECT_EQ(p.restartBestCost, r.bestCost);
    EXPECT_EQ(r.polishRounds, 0u);
}

TEST(OptEdges, GreedyCoolingAtZeroTemperature)
{
    // initialTempFrac = 0 degenerates annealing to pure greedy
    // descent: still deterministic, still returns a local minimum.
    SearchSpace space = fastSpace();
    OptOptions opts = fastOptions();
    opts.initialTempFrac = 0.0;
    OptResult r = optimizeWaxPlacement(space, fastTrace(), opts);
    for (const Candidate &n : neighbors(space, r.best)) {
        EvalOutcome out =
            evaluateCandidate(space, n, fastTrace(), opts);
        EXPECT_GE(costOf(out, opts.objective), r.bestCost);
    }
}

TEST(OptEdges, RejectsBadOptions)
{
    SearchSpace space = fastSpace();
    auto trace = fastTrace();

    OptOptions opts = fastOptions();
    opts.restarts = 0;
    EXPECT_THROW(optimizeWaxPlacement(space, trace, opts),
                 FatalError);

    opts = fastOptions();
    opts.batchSize = 0;
    EXPECT_THROW(optimizeWaxPlacement(space, trace, opts),
                 FatalError);

    opts = fastOptions();
    opts.coolingRate = 0.0;
    EXPECT_THROW(optimizeWaxPlacement(space, trace, opts),
                 FatalError);

    // Space/fleet archetype mismatch: one-archetype space over a
    // mixed three-platform oracle.
    opts = fastOptions();
    opts.fleet.mixedPlatforms = true;
    EXPECT_THROW(optimizeWaxPlacement(space, trace, opts),
                 FatalError);
}

TEST(OptEdges, ObjectiveNamesRoundTrip)
{
    EXPECT_EQ(objectiveFromName("peak"), Objective::PeakCooling);
    EXPECT_EQ(objectiveFromName("tco"), Objective::Tco);
    EXPECT_STREQ(objectiveName(Objective::PeakCooling), "peak");
    EXPECT_STREQ(objectiveName(Objective::Tco), "tco");
    EXPECT_THROW(objectiveFromName("bogus"), FatalError);
}

} // namespace
} // namespace opt
} // namespace tts
