/**
 * @file
 * Shared fixture for the tts::opt test battery: a fleet oracle small
 * enough that a full search runs in well under a second, on the real
 * Google trace shape.
 */

#ifndef TTS_TESTS_OPT_OPT_TEST_UTIL_HH
#define TTS_TESTS_OPT_OPT_TEST_UTIL_HH

#include "opt/engine.hh"
#include "opt/space.hh"
#include "server/server_spec.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"

namespace tts {
namespace opt {

/** One-day trace at coarse sampling (fast, still diurnal). */
inline workload::WorkloadTrace
fastTrace()
{
    workload::GoogleTraceParams p;
    p.durationS = units::days(1.0);
    p.sampleIntervalS = 900.0;
    return workload::makeGoogleTrace(p);
}

/** A trimmed 2U search space: 11 melt points, tight box radius. */
inline SearchSpace
fastSpace()
{
    SpaceOptions o;
    o.meltMinC = 48.0;
    o.meltMaxC = 58.0;
    o.meltStepC = 1.0;
    o.boxRadius = 2;
    o.lockPolicy = true; // Single archetype: placement is moot.
    return makeSearchSpace({server::x4470Spec()}, o);
}

/** Cheap oracle: 16 servers, one day, coarse steps. */
inline OptOptions
fastOptions()
{
    OptOptions o;
    o.budget = 24;
    o.restarts = 2;
    o.batchSize = 6;
    o.fleet.run.serverCount = 16;
    o.fleet.durationS = units::days(1.0);
    o.fleet.controlIntervalS = 300.0;
    o.fleet.thermalStepS = 60.0;
    return o;
}

} // namespace opt
} // namespace tts

#endif // TTS_TESTS_OPT_OPT_TEST_UTIL_HH
