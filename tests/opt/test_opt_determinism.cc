/**
 * @file
 * The headline test surface: the full wax-placement search is
 * bit-identical at any thread count, and the memo changes how many
 * fleet transients run - never what the search returns.
 */

#include <gtest/gtest.h>

#include "exec/parallel.hh"
#include "opt_test_util.hh"

namespace tts {
namespace opt {
namespace {

/** Every comparison is exact - identical doubles or the engine's
 *  determinism contract is broken. */
void
expectIdentical(const OptResult &a, const OptResult &b)
{
    EXPECT_TRUE(a.best == b.best);
    EXPECT_EQ(a.bestCost, b.bestCost);
    EXPECT_EQ(a.bestOutcome.peakCoolingW, b.bestOutcome.peakCoolingW);
    EXPECT_EQ(a.bestOutcome.coolingEnergyJ,
              b.bestOutcome.coolingEnergyJ);
    EXPECT_EQ(a.bestOutcome.tcoUsdPerYear, b.bestOutcome.tcoUsdPerYear);
    EXPECT_EQ(a.baselineCost, b.baselineCost);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.evaluations, b.evaluations);
    EXPECT_EQ(a.oracleCalls, b.oracleCalls);
    EXPECT_EQ(a.memoHits, b.memoHits);
    EXPECT_EQ(a.polishRounds, b.polishRounds);
    ASSERT_EQ(a.restartBest.size(), b.restartBest.size());
    for (std::size_t i = 0; i < a.restartBest.size(); ++i)
        EXPECT_EQ(a.restartBest[i], b.restartBest[i]) << i;
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_EQ(a.trace[i].restart, b.trace[i].restart) << i;
        EXPECT_EQ(a.trace[i].iteration, b.trace[i].iteration) << i;
        EXPECT_EQ(a.trace[i].evaluations, b.trace[i].evaluations)
            << i;
        EXPECT_EQ(a.trace[i].currentCost, b.trace[i].currentCost)
            << i;
        EXPECT_EQ(a.trace[i].restartBestCost,
                  b.trace[i].restartBestCost)
            << i;
        EXPECT_EQ(a.trace[i].temperature, b.trace[i].temperature)
            << i;
    }
    ASSERT_EQ(a.choice.size(), b.choice.size());
    for (std::size_t i = 0; i < a.choice.size(); ++i) {
        EXPECT_EQ(a.choice[i].massKg, b.choice[i].massKg) << i;
        EXPECT_EQ(a.choice[i].boxes, b.choice[i].boxes) << i;
        EXPECT_EQ(a.choice[i].meltTempC, b.choice[i].meltTempC) << i;
    }
}

OptResult
runAtThreads(std::size_t threads, std::size_t restarts)
{
    SearchSpace space = fastSpace();
    OptOptions opts = fastOptions();
    opts.restarts = restarts;
    exec::setGlobalThreads(threads);
    OptResult r = optimizeWaxPlacement(space, fastTrace(), opts);
    exec::setGlobalThreads(exec::defaultThreadCount());
    return r;
}

TEST(OptDeterminism, BitIdenticalAcrossThreadCounts)
{
    for (std::size_t restarts : {1u, 4u}) {
        OptResult serial = runAtThreads(1, restarts);
        for (std::size_t threads : {4u, 8u}) {
            OptResult parallel = runAtThreads(threads, restarts);
            expectIdentical(serial, parallel);
        }
    }
}

TEST(OptDeterminism, MemoOnAndOffWalkTheSameTrajectory)
{
    SearchSpace space = fastSpace();
    auto trace = fastTrace();

    OptOptions on = fastOptions();
    on.useMemo = true;
    OptResult with_memo = optimizeWaxPlacement(space, trace, on);

    OptOptions off = fastOptions();
    off.useMemo = false;
    OptResult without_memo = optimizeWaxPlacement(space, trace, off);

    // The budget counts logical evaluations, so the walks and the
    // results are identical except for the oracle/memo counters.
    EXPECT_TRUE(with_memo.best == without_memo.best);
    EXPECT_EQ(with_memo.bestCost, without_memo.bestCost);
    EXPECT_EQ(with_memo.evaluations, without_memo.evaluations);
    ASSERT_EQ(with_memo.trace.size(), without_memo.trace.size());
    for (std::size_t i = 0; i < with_memo.trace.size(); ++i) {
        EXPECT_EQ(with_memo.trace[i].currentCost,
                  without_memo.trace[i].currentCost)
            << i;
        EXPECT_EQ(with_memo.trace[i].restartBestCost,
                  without_memo.trace[i].restartBestCost)
            << i;
    }

    // The memo must have actually saved work on a 24-proposal walk
    // over an 11-melt neighborhood.
    EXPECT_GT(with_memo.memoHits, 0u);
    EXPECT_EQ(without_memo.memoHits, 0u);
    EXPECT_LT(with_memo.oracleCalls, without_memo.oracleCalls);
}

TEST(OptDeterminism, TinyMemoCapacityOnlyChangesCounters)
{
    SearchSpace space = fastSpace();
    auto trace = fastTrace();

    OptOptions big = fastOptions();
    OptResult roomy = optimizeWaxPlacement(space, trace, big);

    OptOptions small = fastOptions();
    small.memoCapacity = 2; // Constant eviction pressure.
    OptResult tight = optimizeWaxPlacement(space, trace, small);

    EXPECT_TRUE(roomy.best == tight.best);
    EXPECT_EQ(roomy.bestCost, tight.bestCost);
    EXPECT_EQ(roomy.evaluations, tight.evaluations);
    EXPECT_GE(tight.oracleCalls, roomy.oracleCalls);
}

TEST(OptDeterminism, DifferentSeedsSearchDifferently)
{
    SearchSpace space = fastSpace();
    auto trace = fastTrace();

    OptOptions a = fastOptions();
    OptOptions b = fastOptions();
    b.seed = a.seed + 1;
    OptResult ra = optimizeWaxPlacement(space, trace, a);
    OptResult rb = optimizeWaxPlacement(space, trace, b);

    // Same budget, same space - but the walks must differ somewhere
    // (identical whole traces would mean the seed is ignored).
    bool differs = ra.trace.size() != rb.trace.size();
    for (std::size_t i = 0;
         !differs && i < ra.trace.size(); ++i)
        differs = ra.trace[i].currentCost != rb.trace[i].currentCost;
    EXPECT_TRUE(differs);
}

} // namespace
} // namespace opt
} // namespace tts
