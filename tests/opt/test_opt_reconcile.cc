/**
 * @file
 * Regression reconciliation: on the single-archetype case with mass,
 * boxes, and policy locked, the fleet-oracle search reduces to a
 * melting-temperature sweep - and must agree with the existing
 * core::melting_optimizer about where the optimum sits, within one
 * grid step.  The two paths share no oracle code (cluster study with
 * a warmup day vs. cold-start fleet transient), so agreement here
 * pins the physics, not an implementation detail.
 */

#include <gtest/gtest.h>
#include <cmath>
#include <limits>

#include "core/melting_optimizer.hh"
#include "opt_test_util.hh"

namespace tts {
namespace opt {
namespace {

constexpr double kStepC = 2.0;

/** Melt-only 1U space on the shared 44-58 C grid. */
SearchSpace
meltOnlySpace()
{
    SpaceOptions so;
    so.meltMinC = 44.0;
    so.meltMaxC = 58.0;
    so.meltStepC = kStepC;
    so.lockMass = true;
    so.lockBoxes = true;
    so.lockPolicy = true;
    return makeSearchSpace({server::rd330Spec()}, so);
}

/** Two-day fleet oracle: day one plays the warmup the cluster study
 *  gets explicitly, so the peak lands on a warmed fleet. */
OptOptions
reconcileOptions()
{
    OptOptions o;
    o.fleet.run.serverCount = 8;
    o.fleet.durationS = units::days(2.0);
    o.fleet.controlIntervalS = 900.0;
    o.fleet.thermalStepS = 15.0;
    return o;
}

workload::WorkloadTrace
twoDayTrace()
{
    workload::GoogleTraceParams p;
    p.durationS = units::days(2.0);
    p.sampleIntervalS = 900.0;
    return workload::makeGoogleTrace(p);
}

TEST(OptReconcile, AgreesWithMeltingOptimizerWithinOneStep)
{
    // Side A: the existing single-cluster melting optimizer.
    core::MeltOptimizerOptions mo;
    mo.stepC = kStepC;
    mo.minC = 44.0;
    mo.maxC = 58.0;
    mo.study.cluster.controlIntervalS = 900.0;
    mo.study.cluster.thermalStepS = 15.0;
    mo.study.cluster.warmupDays = 1;
    auto cluster = core::optimizeMeltingTemp(
        server::rd330Spec(), fastTrace(), pcm::commercialParaffin(),
        mo);

    // Side B: enumerate the same melt grid through the fleet oracle.
    SearchSpace space = meltOnlySpace();
    OptOptions opts = reconcileOptions();
    auto trace = twoDayTrace();
    Candidate c = paperCandidate(space);
    double best_melt = 0.0;
    double best_peak = std::numeric_limits<double>::infinity();
    for (int m = 0; m < space.archetypes[0].meltSteps; ++m) {
        c.arch[0].meltStep = m;
        EvalOutcome out = evaluateCandidate(space, c, trace, opts);
        if (out.peakCoolingW < best_peak) {
            best_peak = out.peakCoolingW;
            best_melt = meltTempCOf(space, c, 0);
        }
    }

    EXPECT_NEAR(best_melt, cluster.meltTempC, kStepC + 1e-9)
        << "fleet oracle and melting optimizer disagree by more "
           "than one grid step";
}

TEST(OptReconcile, SearchFindsTheEnumeratedOptimum)
{
    SearchSpace space = meltOnlySpace();
    OptOptions opts = reconcileOptions();
    opts.budget = 16;
    opts.restarts = 2;
    auto trace = twoDayTrace();

    // Ground truth by brute force over the 8-point grid.
    Candidate c = paperCandidate(space);
    double best_peak = std::numeric_limits<double>::infinity();
    double best_melt = 0.0;
    for (int m = 0; m < space.archetypes[0].meltSteps; ++m) {
        c.arch[0].meltStep = m;
        EvalOutcome out = evaluateCandidate(space, c, trace, opts);
        if (out.peakCoolingW < best_peak) {
            best_peak = out.peakCoolingW;
            best_melt = meltTempCOf(space, c, 0);
        }
    }

    OptResult r = optimizeWaxPlacement(space, trace, opts);
    EXPECT_NEAR(r.choice[0].meltTempC, best_melt, kStepC + 1e-9);
    EXPECT_LE(r.bestCost, best_peak * (1.0 + 1e-12) + 1e-9);
}

} // namespace
} // namespace opt
} // namespace tts
