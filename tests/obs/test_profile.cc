/** @file Tests for scoped profiling timers. */

#include <gtest/gtest.h>

#include <sstream>

#include "exec/parallel.hh"
#include "obs/obs.hh"

namespace tts {
namespace obs {
namespace {

class ProfileTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setEnabled(false);
        resetForTest();
    }
    void TearDown() override
    {
        setEnabled(false);
        resetForTest();
    }
};

TEST_F(ProfileTest, DisabledScopeRecordsNothing)
{
    {
        Scope scope("test.profile.noop");
    }
    auto snap = profileSnapshot();
    EXPECT_EQ(snap.count("test.profile.noop"), 0u);
}

TEST_F(ProfileTest, EnabledScopeAggregatesCalls)
{
    setEnabled(true);
    for (int i = 0; i < 3; ++i) {
        Scope scope("test.profile.phase");
    }
    auto snap = profileSnapshot();
    ASSERT_EQ(snap.count("test.profile.phase"), 1u);
    const PhaseStat &s = snap.at("test.profile.phase");
    EXPECT_EQ(s.calls, 3u);
    EXPECT_GE(s.totalNs, s.maxNs);
}

TEST_F(ProfileTest, EnableStateLatchedAtConstruction)
{
    setEnabled(true);
    {
        Scope scope("test.profile.latched");
        // Disabling mid-scope must not lose the record (phase_ was
        // latched when the scope opened).
        setEnabled(false);
    }
    auto snap = profileSnapshot();
    EXPECT_EQ(snap.count("test.profile.latched"), 1u);
}

TEST_F(ProfileTest, WorkerThreadTimesMergeAfterRegion)
{
    setEnabled(true);
    exec::ThreadPool pool(4);
    pool.forIndex(8, [](std::size_t) {
        Scope scope("test.profile.worker");
    });
    // Workers are joined at region end, so their per-thread tables
    // have merged by the time forIndex returns.
    auto snap = profileSnapshot();
    ASSERT_EQ(snap.count("test.profile.worker"), 1u);
    EXPECT_EQ(snap.at("test.profile.worker").calls, 8u);
}

TEST_F(ProfileTest, TableListsPhases)
{
    setEnabled(true);
    {
        Scope scope("test.profile.table");
    }
    std::ostringstream out;
    writeProfileTable(out);
    EXPECT_NE(out.str().find("test.profile.table"),
              std::string::npos);
    EXPECT_NE(out.str().find("calls"), std::string::npos);
}

} // namespace
} // namespace obs
} // namespace tts
