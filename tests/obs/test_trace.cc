/** @file Tests for the structured trace sink. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "exec/parallel.hh"
#include "obs/obs.hh"
#include "pcm/material.hh"
#include "pcm/pcm_element.hh"
#include "thermal/network.hh"

namespace tts {
namespace obs {
namespace {

class TraceTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setEnabled(false);
        resetForTest();
    }
    void TearDown() override
    {
        setEnabled(false);
        resetForTest();
    }
};

TEST_F(TraceTest, DisabledEmissionIsDropped)
{
    int evaluations = 0;
    auto name = [&]() {
        ++evaluations;
        return std::string("x");
    };
    TTS_OBS_EVENT(EventKind::PhaseBegin, 1.0, name(), 0.0, -1);
    emitEvent(EventKind::PhaseEnd, 2.0, "y");
    EXPECT_TRUE(drainEvents().empty());
    EXPECT_EQ(evaluations, 0); // Macro must not evaluate args.
}

TEST_F(TraceTest, MainLineEventsKeepEmissionOrder)
{
    setEnabled(true);
    emitEvent(EventKind::PhaseBegin, 0.0, "a", 1.5, 3);
    emitEvent(EventKind::PhaseEnd, 10.0, "b");
    auto events = drainEvents();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].region, 0u);
    EXPECT_EQ(events[0].task, 0u);
    EXPECT_EQ(events[0].seq, 0u);
    EXPECT_EQ(events[0].kind, EventKind::PhaseBegin);
    EXPECT_EQ(events[0].name, "a");
    EXPECT_DOUBLE_EQ(events[0].value, 1.5);
    EXPECT_EQ(events[0].target, 3);
    EXPECT_EQ(events[1].seq, 1u);
    // Drain moved everything out.
    EXPECT_TRUE(drainEvents().empty());
}

TEST_F(TraceTest, TaskScopeBindsStreamIdentity)
{
    setEnabled(true);
    std::uint64_t region = beginRegion();
    EXPECT_EQ(region, 1u);
    EXPECT_FALSE(inTaskScope());
    {
        TaskScope scope(region, 7);
        EXPECT_TRUE(inTaskScope());
        emitEvent(EventKind::PhaseBegin, 0.0, "in-task");
    }
    EXPECT_FALSE(inTaskScope());
    emitEvent(EventKind::PhaseEnd, 0.0, "main-line");
    auto events = drainEvents();
    ASSERT_EQ(events.size(), 2u);
    // Sorted by (region, task, seq): main stream (0,0) first.
    EXPECT_EQ(events[0].name, "main-line");
    EXPECT_EQ(events[1].region, 1u);
    EXPECT_EQ(events[1].task, 7u);
    EXPECT_EQ(events[1].seq, 0u);
}

TEST_F(TraceTest, ParallelForIndexTraceIsThreadCountInvariant)
{
    auto emit_grid = [](std::size_t threads) {
        resetForTest();
        setEnabled(true);
        exec::ThreadPool pool(threads);
        pool.forIndex(16, [](std::size_t i) {
            emitEvent(EventKind::PhaseBegin,
                      static_cast<double>(i), "task", 0.0,
                      static_cast<std::int64_t>(i));
            emitEvent(EventKind::PhaseEnd,
                      static_cast<double>(i) + 0.5, "task");
        });
        std::ostringstream out;
        writeJsonl(out, drainEvents());
        setEnabled(false);
        return out.str();
    };
    std::string serial = emit_grid(1);
    std::string parallel = emit_grid(8);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

TEST_F(TraceTest, JsonlUsesFixedKeyOrder)
{
    setEnabled(true);
    emitEvent(EventKind::FaultInjected, 1.5, "server_crash", 2.0, 4);
    std::ostringstream out;
    writeJsonl(out, drainEvents());
    EXPECT_EQ(out.str(),
              "{\"rg\":0,\"tk\":0,\"sq\":0,\"t\":1.5,"
              "\"kind\":\"fault.injected\","
              "\"name\":\"server_crash\",\"v\":2,\"tgt\":4}\n");
}

TEST_F(TraceTest, JsonlEscapesStrings)
{
    setEnabled(true);
    emitEvent(EventKind::PhaseBegin, 0.0, "a\"b\\c\nd");
    std::ostringstream out;
    writeJsonl(out, drainEvents());
    EXPECT_NE(out.str().find("a\\\"b\\\\c\\nd"), std::string::npos);
}

TEST_F(TraceTest, ChromeTraceIsWellFormed)
{
    setEnabled(true);
    emitEvent(EventKind::MeltOnset, 2.0, "with_wax/srv/wax", 0.1, 5);
    std::ostringstream out;
    writeChromeTrace(out, drainEvents());
    const std::string doc = out.str();
    EXPECT_EQ(doc.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(doc.find("\"name\":\"melt.onset with_wax/srv/wax\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(doc.find("\"ts\":2000000"), std::string::npos);
    EXPECT_NE(doc.find("\"displayTimeUnit\":\"ms\"}"),
              std::string::npos);
}

TEST_F(TraceTest, EventKindNamesAreStable)
{
    EXPECT_STREQ(eventKindName(EventKind::MeltOnset), "melt.onset");
    EXPECT_STREQ(eventKindName(EventKind::GuardRetry), "guard.retry");
    EXPECT_STREQ(eventKindName(EventKind::CheckpointSave),
                 "checkpoint.save");
    EXPECT_STREQ(eventKindName(EventKind::JobDispatch),
                 "job.dispatch");
}

// --- Instrumented-subsystem emission --------------------------------

thermal::AirflowModel
testAirflow()
{
    thermal::FanCurve fan{400.0, 0.02};
    return thermal::AirflowModel(fan, 0.010, 0.019);
}

TEST_F(TraceTest, WaxNetworkEmitsMeltTransitions)
{
    thermal::ServerThermalNetwork net(testAirflow(), 2, 25.0);
    int cpu = net.addCapacityNode(
        "cpu", 500.0, thermal::ConvectiveCoupling{6.0, 0.53, 0.8}, 0,
        25.0);
    pcm::BoxSpec box;
    box.lengthM = 0.1;
    box.widthM = 0.08;
    box.heightM = 0.02;
    pcm::ContainerBank bank(box, 2, 0.019);
    pcm::PcmElement wax(pcm::commercialParaffin(), bank, 40.0, 25.0);
    net.addPcmNode("wax", &wax, 1);
    net.setZonePlumeFraction(1, 0.4);
    net.setNodePower(cpu, 250.0);
    net.setObsLabel("test/srv");

    setEnabled(true);
    for (int i = 0; i < 24; ++i)
        net.advance(600.0, 1.0);
    ASSERT_GT(wax.meltFraction(), 0.0);

    auto events = drainEvents();
    std::vector<TraceEvent> onsets;
    for (const auto &e : events) {
        if (e.kind == EventKind::MeltOnset)
            onsets.push_back(e);
    }
    ASSERT_EQ(onsets.size(), 1u); // Exactly one onset per melt.
    EXPECT_EQ(onsets[0].name, "test/srv/wax");
    EXPECT_GT(onsets[0].value, 0.0);
    EXPECT_GT(onsets[0].timeS, 0.0);
    // Metrics registry saw the advance steps too.
    EXPECT_EQ(registry().counter("thermal.advance.steps").value(),
              24u * 600u);
}

TEST_F(TraceTest, GuardRetryEmitsEvent)
{
    thermal::ServerThermalNetwork net(testAirflow(), 1, 25.0);
    int n = net.addCapacityNode(
        "cpu", 500.0, thermal::ConvectiveCoupling{5.0, 0.53, 0.8}, 0,
        25.0);
    net.setNodePower(n, 60.0);
    net.setGuardTestCorruptor(
        [](std::vector<double> &aug) { aug[0] += 1e12; },
        /*once=*/true);
    setEnabled(true);
    net.setObsClock(120.0);
    net.advance(60.0, 1.0);

    auto events = drainEvents();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, EventKind::GuardRetry);
    EXPECT_DOUBLE_EQ(events[0].timeS, 120.0);
    EXPECT_GT(events[0].value, 0.0); // Audit residual magnitude.
    EXPECT_EQ(registry().counter("thermal.advance.steps").value(),
              60u + 60u); // Retry steps at dt/2 count when accepted.
}

} // namespace
} // namespace obs
} // namespace tts
