/** @file Tests for the obs metrics registry. */

#include <gtest/gtest.h>

#include "exec/parallel.hh"
#include "obs/obs.hh"

namespace tts {
namespace obs {
namespace {

/** Every test starts from disabled collection and empty sinks. */
class MetricsTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setEnabled(false);
        resetForTest();
    }
    void TearDown() override
    {
        setEnabled(false);
        resetForTest();
    }
};

TEST_F(MetricsTest, CounterAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST_F(MetricsTest, GaugeIsLastWriteWins)
{
    Gauge g;
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    g.set(3.5);
    g.set(-1.25);
    EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST_F(MetricsTest, RegistryHandsOutStableReferences)
{
    Counter &a = registry().counter("test.metrics.stable");
    a.add(7);
    Counter &b = registry().counter("test.metrics.stable");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.value(), 7u);
}

TEST_F(MetricsTest, HistogramCellSnapshotIsACopy)
{
    HistogramCell cell({1.0, 2.0});
    cell.observe(0.5);
    Histogram snap = cell.snapshot();
    cell.observe(1.5);
    EXPECT_EQ(snap.count(), 1u);
    EXPECT_EQ(cell.snapshot().count(), 2u);
}

TEST_F(MetricsTest, SnapshotFlattensEveryInstrument)
{
    registry().counter("test.snap.counter").add(3);
    registry().gauge("test.snap.gauge").set(2.5);
    HistogramCell &h =
        registry().histogram("test.snap.hist", {1.0, 10.0});
    h.observe(0.5);
    h.observe(5.0);
    h.observe(50.0);

    auto kv = registry().snapshot();
    EXPECT_DOUBLE_EQ(kv.at("test.snap.counter"), 3.0);
    EXPECT_DOUBLE_EQ(kv.at("test.snap.gauge"), 2.5);
    EXPECT_DOUBLE_EQ(kv.at("test.snap.hist.count"), 3.0);
    EXPECT_DOUBLE_EQ(kv.at("test.snap.hist.sum"), 55.5);
    EXPECT_DOUBLE_EQ(kv.at("test.snap.hist.min"), 0.5);
    EXPECT_DOUBLE_EQ(kv.at("test.snap.hist.max"), 50.0);
    // Bucket keys are cumulative ("le" semantics).
    EXPECT_DOUBLE_EQ(kv.at("test.snap.hist.le.1"), 1.0);
    EXPECT_DOUBLE_EQ(kv.at("test.snap.hist.le.10"), 2.0);
    EXPECT_DOUBLE_EQ(kv.at("test.snap.hist.le.inf"), 3.0);
}

TEST_F(MetricsTest, ResetZeroesButKeepsNames)
{
    Counter &c = registry().counter("test.reset.counter");
    c.add(9);
    registry().reset();
    EXPECT_EQ(c.value(), 0u);
    auto kv = registry().snapshot();
    EXPECT_DOUBLE_EQ(kv.at("test.reset.counter"), 0.0);
}

TEST_F(MetricsTest, HistogramBoundsFixedOnFirstCreation)
{
    HistogramCell &a =
        registry().histogram("test.bounds.hist", {1.0, 2.0});
    HistogramCell &b =
        registry().histogram("test.bounds.hist", {99.0});
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.snapshot().bucketCount(), 3u);
}

TEST_F(MetricsTest, MacrosSkipWorkWhenDisabled)
{
    Counter &c = registry().counter("test.macro.counter");
    int evaluations = 0;
    auto cost = [&]() {
        ++evaluations;
        return std::uint64_t{1};
    };
    TTS_OBS_COUNT(c, cost());
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(evaluations, 0);

    setEnabled(true);
    TTS_OBS_COUNT(c, cost());
    EXPECT_EQ(c.value(), 1u);
    EXPECT_EQ(evaluations, 1);
}

TEST_F(MetricsTest, ConcurrentAddsAreLossless)
{
    Counter &c = registry().counter("test.concurrent.counter");
    setEnabled(true);
    exec::ThreadPool pool(8);
    pool.forIndex(1000, [&](std::size_t) { c.add(1); });
    EXPECT_EQ(c.value(), 1000u);
}

} // namespace
} // namespace obs
} // namespace tts
