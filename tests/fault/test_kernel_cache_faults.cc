/**
 * @file
 * Cached vs. reference thermal kernel across the canonical fault
 * grid.
 *
 * The optimized kernel (airflow operating-point memo + SoA network
 * caches) must be bit-identical to the pre-refactor reference
 * arithmetic under every canonical fault scenario - plant trips, fan
 * failures, sensor drift, crash storms - because those are exactly
 * the events that mutate the cached state mid-run.  Any stale cache
 * shows up here as a ULP-level diff in a golden metric.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/resilience_study.hh"
#include "thermal/kernel_config.hh"

namespace tts {
namespace core {
namespace {

/** Restores the process-wide kernel config on scope exit. */
class KernelConfigGuard
{
  public:
    KernelConfigGuard() : saved_(thermal::defaultKernelConfig()) {}
    ~KernelConfigGuard() { thermal::setDefaultKernelConfig(saved_); }

  private:
    thermal::KernelConfig saved_;
};

TEST(KernelCacheFaults, CanonicalGridBitIdenticalToReference)
{
    KernelConfigGuard guard;

    thermal::setDefaultKernelConfig(thermal::KernelConfig{});
    std::map<std::string, double> cached = resilienceGoldenValues();

    thermal::setDefaultKernelConfig(
        thermal::referenceKernelConfig());
    std::map<std::string, double> reference =
        resilienceGoldenValues();

    ASSERT_EQ(cached.size(), reference.size());
    for (const auto &kv : cached) {
        auto it = reference.find(kv.first);
        ASSERT_NE(it, reference.end()) << kv.first;
        // Exact double equality: the caches replay identical
        // deterministic computations, so even the last ULP matches.
        EXPECT_EQ(kv.second, it->second) << kv.first;
    }
}

TEST(KernelCacheFaults, FanStormScenarioBitIdenticalPerArm)
{
    KernelConfigGuard guard;
    auto spec = server::rd330Spec();
    ResilienceConfig opt;
    opt.cluster.serverCount = 16;
    auto scenarios = canonicalScenarios(opt.cluster.serverCount);
    const ResilienceScenario *storm = nullptr;
    for (const auto &s : scenarios)
        if (s.name == "crash_fan_storm")
            storm = &s;
    ASSERT_NE(storm, nullptr);

    thermal::setDefaultKernelConfig(thermal::KernelConfig{});
    auto cached = runResilienceStudy(spec, *storm, opt);

    thermal::setDefaultKernelConfig(
        thermal::referenceKernelConfig());
    auto reference = runResilienceStudy(spec, *storm, opt);

    // Fan failures pin fan speed mid-run; a memo that survived the
    // event would skew the whole trajectory from that step on.
    EXPECT_EQ(cached.noWax.rideThroughS,
              reference.noWax.rideThroughS);
    EXPECT_EQ(cached.withWax.rideThroughS,
              reference.withWax.rideThroughS);
    EXPECT_EQ(cached.noWax.throughputRetention,
              reference.noWax.throughputRetention);
    EXPECT_EQ(cached.withWax.throughputRetention,
              reference.withWax.throughputRetention);
    EXPECT_EQ(cached.noWax.throttledS, reference.noWax.throttledS);
    EXPECT_EQ(cached.withWax.throttledS,
              reference.withWax.throttledS);
    ASSERT_EQ(cached.withWax.roomAirC.values().size(),
              reference.withWax.roomAirC.values().size());
    for (std::size_t i = 0;
         i < cached.withWax.roomAirC.values().size(); ++i)
        EXPECT_EQ(cached.withWax.roomAirC.values()[i],
                  reference.withWax.roomAirC.values()[i]);
}

} // namespace
} // namespace core
} // namespace tts
