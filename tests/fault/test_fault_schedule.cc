/**
 * @file
 * Tests for the fault-injection schedule and injector: event
 * ordering, generation determinism, serialization round-trips, and
 * the injector's degraded-state bookkeeping.
 */

#include <gtest/gtest.h>

#include "fault/fault_injector.hh"
#include "fault/fault_schedule.hh"
#include "util/error.hh"

namespace tts {
namespace fault {
namespace {

TEST(FaultSchedule, KeepsEventsSortedByTime)
{
    FaultSchedule s;
    s.add(300.0, FaultKind::ServerCrash, 2);
    s.add(100.0, FaultKind::CoolingTrip, FaultEvent::noTarget,
          0.5);
    s.add(200.0, FaultKind::FanFailure, 0);

    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(s.events()[0].timeS, 100.0);
    EXPECT_EQ(s.events()[1].timeS, 200.0);
    EXPECT_EQ(s.events()[2].timeS, 300.0);
}

TEST(FaultSchedule, RecoverySortsBeforeFailureAtEqualTime)
{
    // Pessimistic tie order: recover then crash leaves the server
    // down, regardless of insertion order.
    FaultSchedule s;
    s.add(60.0, FaultKind::ServerCrash, 0);
    s.add(60.0, FaultKind::ServerRecover, 0);
    EXPECT_EQ(s.events()[0].kind, FaultKind::ServerRecover);
    EXPECT_EQ(s.events()[1].kind, FaultKind::ServerCrash);

    FaultInjector inj(s, 4, 25.0);
    inj.advanceTo(60.0);
    EXPECT_FALSE(inj.serverAlive(0));
}

TEST(FaultSchedule, ValidatesEvents)
{
    FaultSchedule s;
    // Negative / non-finite time.
    EXPECT_THROW(s.add(-1.0, FaultKind::ServerCrash, 0),
                 FatalError);
    // Per-server kind without a target.
    EXPECT_THROW(s.add(0.0, FaultKind::ServerCrash), FatalError);
    // Plant-wide kind with a target.
    EXPECT_THROW(s.add(0.0, FaultKind::CoolingTrip, 3, 0.5),
                 FatalError);
    // Cooling fraction out of (0, 1].
    EXPECT_THROW(s.add(0.0, FaultKind::CoolingTrip,
                       FaultEvent::noTarget, 0.0),
                 FatalError);
    EXPECT_THROW(s.add(0.0, FaultKind::CoolingTrip,
                       FaultEvent::noTarget, 1.5),
                 FatalError);
    EXPECT_TRUE(s.empty());
}

TEST(FaultSchedule, SerializationRoundTripsBitForBit)
{
    FaultProfile p;
    p.serverCrashPerHour = 0.5;
    p.fanFailurePerHour = 0.25;
    p.coolingTripPerHour = 1.0;
    p.coolingTripFraction = 0.375;
    p.sensorDriftPerHour = 2.0;
    p.sensorDropoutPerHour = 1.5;
    p.traceGapPerHour = 3.0;
    auto original = generateSchedule(p, 7200.0, 16, 7);
    ASSERT_FALSE(original.empty());

    auto restored = FaultSchedule::parse(original.serialize());
    ASSERT_EQ(restored.size(), original.size());
    EXPECT_TRUE(restored == original);
    // And a second hop is a fixed point.
    EXPECT_EQ(restored.serialize(), original.serialize());
}

TEST(FaultSchedule, ParseRejectsMalformedInput)
{
    EXPECT_THROW(FaultSchedule::parse(""), FatalError);
    EXPECT_THROW(FaultSchedule::parse("not-a-schedule\n"),
                 FatalError);
    const std::string header = "tts-fault-schedule v1\n";
    EXPECT_THROW(
        FaultSchedule::parse(header + "quantum_flip - 10 0\n"),
        FatalError);
    EXPECT_THROW(
        FaultSchedule::parse(header + "server_crash x 10 0\n"),
        FatalError);
    EXPECT_THROW(
        FaultSchedule::parse(header + "server_crash 0 10\n"),
        FatalError);
    EXPECT_THROW(
        FaultSchedule::parse(header +
                             "server_crash 0 10 0 extra\n"),
        FatalError);
    // Valid line still parses after the failures above.
    auto ok = FaultSchedule::parse(header + "server_crash 3 10 0\n");
    ASSERT_EQ(ok.size(), 1u);
    EXPECT_EQ(ok.events()[0].target, 3u);
}

TEST(FaultSchedule, GenerationIsDeterministicPerSeed)
{
    FaultProfile p;
    p.serverCrashPerHour = 1.0;
    p.coolingTripPerHour = 0.5;
    p.coolingTripFraction = 0.5;
    p.traceGapPerHour = 1.0;

    auto a = generateSchedule(p, 3600.0, 8, 42);
    auto b = generateSchedule(p, 3600.0, 8, 42);
    auto c = generateSchedule(p, 3600.0, 8, 43);
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a == c);
    EXPECT_FALSE(a.empty());
}

TEST(FaultSchedule, ProcessStreamsAreIndependent)
{
    // Adding a second fault process must not perturb the first
    // one's events (each draws from its own Rng::forStream).
    FaultProfile crash_only;
    crash_only.serverCrashPerHour = 1.0;
    FaultProfile crash_and_cooling = crash_only;
    crash_and_cooling.coolingTripPerHour = 2.0;
    crash_and_cooling.coolingTripFraction = 0.5;

    auto a = generateSchedule(crash_only, 3600.0, 8, 42);
    auto b = generateSchedule(crash_and_cooling, 3600.0, 8, 42);

    std::vector<FaultEvent> crashes_a, crashes_b;
    for (const auto &e : a.events())
        if (kindTargetsServer(e.kind))
            crashes_a.push_back(e);
    for (const auto &e : b.events())
        if (kindTargetsServer(e.kind))
            crashes_b.push_back(e);
    EXPECT_EQ(crashes_a, crashes_b);
}

TEST(FaultSchedule, GeneratedRepairsFollowTheirFailure)
{
    FaultProfile p;
    p.serverCrashPerHour = 2.0;
    p.serverRepairMeanS = 300.0;
    auto s = generateSchedule(p, 7200.0, 4, 11);

    // Per server: strictly alternating crash/recover.
    for (std::size_t target = 0; target < 4; ++target) {
        bool down = false;
        for (const auto &e : s.events()) {
            if (e.target != target)
                continue;
            if (e.kind == FaultKind::ServerCrash) {
                EXPECT_FALSE(down);
                down = true;
            } else if (e.kind == FaultKind::ServerRecover) {
                EXPECT_TRUE(down);
                down = false;
            }
        }
    }
}

TEST(FaultInjector, TracksServerAndFanState)
{
    FaultSchedule s;
    s.add(10.0, FaultKind::ServerCrash, 1);
    s.add(20.0, FaultKind::FanFailure, 0);
    s.add(30.0, FaultKind::ServerRecover, 1);
    s.add(40.0, FaultKind::FanRepair, 0);

    FaultInjector inj(s, 3, 25.0);
    EXPECT_EQ(inj.aliveServers(), 3u);

    inj.advanceTo(15.0);
    EXPECT_FALSE(inj.serverAlive(1));
    EXPECT_EQ(inj.aliveServers(), 2u);

    inj.advanceTo(25.0);
    EXPECT_TRUE(inj.fanFailed(0));
    EXPECT_EQ(inj.aliveFanFailed(), 1u);

    inj.advanceTo(45.0);
    EXPECT_TRUE(inj.serverAlive(1));
    EXPECT_FALSE(inj.fanFailed(0));
    EXPECT_EQ(inj.eventsApplied(), 4u);
}

TEST(FaultInjector, CoolingCapacityComposesAndClamps)
{
    FaultSchedule s;
    s.add(10.0, FaultKind::CoolingTrip, FaultEvent::noTarget, 0.6);
    s.add(20.0, FaultKind::CoolingTrip, FaultEvent::noTarget, 0.6);
    s.add(30.0, FaultKind::CoolingRestore, FaultEvent::noTarget,
          0.6);
    s.add(40.0, FaultKind::CoolingRestore, FaultEvent::noTarget,
          0.6);

    FaultInjector inj(s, 1, 25.0);
    EXPECT_DOUBLE_EQ(inj.coolingCapacityFraction(), 1.0);
    inj.advanceTo(10.0);
    EXPECT_NEAR(inj.coolingCapacityFraction(), 0.4, 1e-12);
    inj.advanceTo(20.0); // 120 % lost clamps to zero capacity.
    EXPECT_DOUBLE_EQ(inj.coolingCapacityFraction(), 0.0);
    inj.advanceTo(30.0);
    EXPECT_NEAR(inj.coolingCapacityFraction(), 0.4, 1e-12);
    inj.advanceTo(40.0);
    EXPECT_DOUBLE_EQ(inj.coolingCapacityFraction(), 1.0);
}

TEST(FaultInjector, SensorDriftsAndHoldsLastDuringDropout)
{
    FaultSchedule s;
    s.add(10.0, FaultKind::SensorDrift, FaultEvent::noTarget,
          -2.0);
    s.add(20.0, FaultKind::SensorDropout);
    s.add(30.0, FaultKind::SensorRestore);

    FaultInjector inj(s, 1, 25.0);
    EXPECT_DOUBLE_EQ(inj.senseInlet(25.0), 25.0);

    inj.advanceTo(15.0);
    EXPECT_DOUBLE_EQ(inj.senseInlet(30.0), 28.0); // Drifted -2 C.

    inj.advanceTo(25.0);
    EXPECT_FALSE(inj.sensorValid());
    // Dropout: the reading is stuck at the last reported value no
    // matter what the room does.
    EXPECT_DOUBLE_EQ(inj.senseInlet(40.0), 28.0);
    EXPECT_DOUBLE_EQ(inj.senseInlet(44.0), 28.0);

    inj.advanceTo(35.0);
    EXPECT_TRUE(inj.sensorValid());
    EXPECT_DOUBLE_EQ(inj.senseInlet(40.0), 38.0); // Drift intact.
}

TEST(FaultInjector, DropoutBeforeFirstReadingHoldsInitial)
{
    FaultSchedule s;
    s.add(0.0, FaultKind::SensorDropout);
    FaultInjector inj(s, 1, 25.0);
    inj.advanceTo(5.0);
    EXPECT_DOUBLE_EQ(inj.senseInlet(99.0), 25.0);
}

TEST(FaultInjector, TraceGapsNest)
{
    FaultSchedule s;
    s.add(10.0, FaultKind::TraceGapStart);
    s.add(20.0, FaultKind::TraceGapStart);
    s.add(30.0, FaultKind::TraceGapEnd);
    s.add(40.0, FaultKind::TraceGapEnd);

    FaultInjector inj(s, 1, 25.0);
    EXPECT_FALSE(inj.traceGapActive());
    inj.advanceTo(15.0);
    EXPECT_TRUE(inj.traceGapActive());
    inj.advanceTo(35.0); // One gap still open.
    EXPECT_TRUE(inj.traceGapActive());
    inj.advanceTo(45.0);
    EXPECT_FALSE(inj.traceGapActive());
}

TEST(FaultInjector, RejectsBadUsage)
{
    FaultSchedule s;
    s.add(10.0, FaultKind::ServerCrash, 5);
    // Event targets a server outside the cluster.
    EXPECT_THROW(FaultInjector(s, 4, 25.0), FatalError);

    FaultSchedule ok;
    ok.add(10.0, FaultKind::ServerCrash, 0);
    FaultInjector inj(ok, 4, 25.0);
    inj.advanceTo(20.0);
    // Time cannot move backwards.
    EXPECT_THROW(inj.advanceTo(10.0), FatalError);
}

} // namespace
} // namespace fault
} // namespace tts
