/**
 * @file
 * Resilience-study tests: the three canonical fault scenarios are
 * pinned in tests/data/golden.json (regenerate with tools/tts_golden
 * when a change is intentional), plus physical sanity checks on the
 * wax-vs-no-wax comparison and the fault-injected cluster accounting.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "core/resilience_study.hh"
#include "server/server_spec.hh"
#include "util/error.hh"
#include "util/kv_json.hh"

#ifndef TTS_GOLDEN_JSON
#error "TTS_GOLDEN_JSON must point at the checked-in golden file"
#endif

using namespace tts;
using namespace tts::core;

namespace {

/** Recompute the resilience golden slice once (the grid takes a
 *  couple of seconds). */
const std::map<std::string, double> &
computed()
{
    static const std::map<std::string, double> values =
        resilienceGoldenValues();
    return values;
}

/** The canonical scenario grid run once, shared across tests. */
const std::vector<ResilienceResult> &
canonicalResults()
{
    static const std::vector<ResilienceResult> results = [] {
        ResilienceConfig opt;
        auto scenarios =
            canonicalScenarios(opt.cluster.serverCount);
        return runResilienceGrid(server::rd330Spec(), scenarios,
                                 opt);
    }();
    return results;
}

} // namespace

TEST(ResilienceStudy, CanonicalScenariosArePinnedInGoldenFile)
{
    auto golden = readKvJsonFile(TTS_GOLDEN_JSON);
    const auto &now = computed();

    // Every recomputed key must exist in the golden file and every
    // pinned resilience.* key must still be computed.
    std::size_t pinned = 0;
    for (const auto &[key, value] : golden) {
        if (key.rfind("resilience.", 0) != 0)
            continue;
        ++pinned;
        EXPECT_TRUE(now.count(key))
            << "golden key \"" << key << "\" no longer computed";
    }
    EXPECT_EQ(pinned, now.size())
        << "resilience key set changed; regenerate golden.json "
        << "with tools/tts_golden";

    for (const auto &[key, value] : now) {
        auto it = golden.find(key);
        ASSERT_NE(it, golden.end())
            << "new value \"" << key
            << "\" missing from golden file";
        EXPECT_NEAR(value, it->second,
                    1e-6 * std::abs(it->second) + 1e-12)
            << "resilience golden drifted: " << key;
    }
}

TEST(ResilienceStudy, CoversThreeCanonicalScenarios)
{
    auto scenarios = canonicalScenarios(48);
    ASSERT_EQ(scenarios.size(), 3u);
    EXPECT_EQ(scenarios[0].name, "plant_trip_total");
    EXPECT_EQ(scenarios[1].name, "partial_trip_sensor_drift");
    EXPECT_EQ(scenarios[2].name, "crash_fan_storm");
    for (const auto &s : scenarios)
        EXPECT_FALSE(s.faults.empty()) << s.name;
}

TEST(ResilienceStudy, WaxExtendsTotalPlantTripRideThrough)
{
    const auto &r = canonicalResults()[0];
    ASSERT_EQ(r.scenario, "plant_trip_total");

    // Losing the whole plant must eventually cross the limit in
    // both arms, and the wax arm must last strictly longer.
    EXPECT_TRUE(r.noWax.hitLimit);
    EXPECT_TRUE(r.withWax.hitLimit);
    EXPECT_GT(r.extraRideThroughS(), 0.0);
    EXPECT_GT(r.withWax.rideThroughS, r.noWax.rideThroughS);
    // Wax buys work too: more throughput retained to the horizon.
    EXPECT_GE(r.retentionGain(), 0.0);
    // The wax actually melted during the emergency.
    double peak_melt = 0.0;
    for (double m : r.withWax.waxMelt.values())
        peak_melt = std::max(peak_melt, m);
    EXPECT_GT(peak_melt, 0.05);
}

TEST(ResilienceStudy, ArmsReportCoherentMetrics)
{
    auto scenarios = canonicalScenarios(48);
    const auto &results = canonicalResults();
    ASSERT_EQ(results.size(), scenarios.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        for (const auto *arm : {&r.noWax, &r.withWax}) {
            // Censored runs report exactly the horizon; hits report
            // no more than it (a hit at t=horizon still counts).
            if (arm->hitLimit)
                EXPECT_LE(arm->rideThroughS, scenarios[i].horizonS)
                    << r.scenario;
            else
                EXPECT_EQ(arm->rideThroughS, scenarios[i].horizonS)
                    << r.scenario;
            EXPECT_GE(arm->throughputRetention, 0.0) << r.scenario;
            EXPECT_LE(arm->throughputRetention, 1.0 + 1e-9)
                << r.scenario;
            EXPECT_GE(arm->throttledS, 0.0) << r.scenario;
            EXPECT_FALSE(arm->roomAirC.values().empty())
                << r.scenario;
        }
        // Cluster accounting partition holds under faults.
        EXPECT_EQ(r.cluster.offeredJobs,
                  r.cluster.completedJobs + r.cluster.droppedJobs +
                      r.cluster.residualJobs)
            << r.scenario;
        EXPECT_LE(r.cluster.crashKilledJobs, r.cluster.droppedJobs)
            << r.scenario;
    }
}

TEST(ResilienceStudy, SensorDriftDelaysThrottle)
{
    // The drifting-sensor scenario reads 3 C low, so the emergency
    // throttle engages later than the true temperature warrants; the
    // sensed series must sit below the true room air during drift.
    const auto &r = canonicalResults()[1];
    ASSERT_EQ(r.scenario, "partial_trip_sensor_drift");
    const auto &true_c = r.noWax.roomAirC.values();
    const auto &sensed_c = r.noWax.sensedInletC.values();
    ASSERT_EQ(true_c.size(), sensed_c.size());
    std::size_t low_readings = 0;
    for (std::size_t i = 0; i < true_c.size(); ++i)
        if (sensed_c[i] < true_c[i] - 1.0)
            ++low_readings;
    EXPECT_GT(low_readings, true_c.size() / 2);
}

TEST(ResilienceStudy, CrashStormShowsClusterDegradation)
{
    const auto &r = canonicalResults()[2];
    ASSERT_EQ(r.scenario, "crash_fan_storm");
    EXPECT_GT(r.cluster.faultEventsApplied, 0u);
    EXPECT_GT(r.cluster.completedJobs, 0u);
    // completedByServer must tally with the cluster total.
    std::uint64_t by_server = 0;
    for (auto c : r.cluster.completedByServer)
        by_server += c;
    EXPECT_EQ(by_server, r.cluster.completedJobs);
}

TEST(ResilienceStudy, NoFaultScenarioIsCensoredWithFullRetention)
{
    ResilienceScenario calm;
    calm.name = "calm";
    calm.faults.add(10.0, fault::FaultKind::SensorDropout);
    calm.faults.add(20.0, fault::FaultKind::SensorRestore);
    calm.utilization = 0.5;
    calm.horizonS = 1800.0;

    ResilienceConfig opt;
    opt.cluster.serverCount = 16;
    opt.cluster.slotsPerServer = 4;
    auto r = runResilienceStudy(server::rd330Spec(), calm, opt);

    for (const auto *arm : {&r.noWax, &r.withWax}) {
        EXPECT_FALSE(arm->hitLimit);
        // Censored: reports exactly the horizon, never beyond.
        EXPECT_EQ(arm->rideThroughS, calm.horizonS);
        EXPECT_NEAR(arm->throughputRetention, 1.0, 1e-6);
        EXPECT_EQ(arm->throttledS, 0.0);
    }
    EXPECT_EQ(r.extraRideThroughS(), 0.0);
}

TEST(ResilienceStudy, RejectsBadInputs)
{
    ResilienceScenario s;
    s.name = "bad";
    s.faults.add(10.0, fault::FaultKind::CoolingTrip,
                 fault::FaultEvent::noTarget, 1.0);

    ResilienceConfig opt;
    opt.stepS = 0.0;
    EXPECT_THROW(runResilienceStudy(server::rd330Spec(), s, opt),
                 FatalError);

    opt = ResilienceConfig{};
    s.utilization = 1.5;
    EXPECT_THROW(runResilienceStudy(server::rd330Spec(), s, opt),
                 FatalError);

    s.utilization = 0.75;
    s.horizonS = -1.0;
    EXPECT_THROW(runResilienceStudy(server::rd330Spec(), s, opt),
                 FatalError);
}
