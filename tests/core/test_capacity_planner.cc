/** @file Tests for the Section 5.1 capacity planner. */

#include <gtest/gtest.h>

#include "core/capacity_planner.hh"
#include "util/error.hh"

namespace tts {
namespace core {
namespace {

TEST(CapacityPlanner, PaperHeadlineNumbers1U)
{
    auto plan = planCapacity(server::rd330Spec(), 0.089);
    // Paper: $187k/yr smaller plant, ~4,940 extra servers, ~$3.0M
    // retrofit.
    EXPECT_NEAR(plan.smallerPlantSavingsPerYear, 187000.0, 30000.0);
    EXPECT_NEAR(static_cast<double>(plan.extraServers), 4940.0,
                900.0);
    EXPECT_NEAR(plan.retrofitSavingsPerYear, 3.0e6, 0.3e6);
}

TEST(CapacityPlanner, PaperHeadlineNumbers2U)
{
    datacenter::DatacenterConfig cfg;
    cfg.provisionedPerServerW = 500.0;
    auto plan = planCapacity(server::x4470Spec(), 0.12, cfg);
    EXPECT_NEAR(plan.smallerPlantSavingsPerYear, 254000.0, 30000.0);
    EXPECT_NEAR(static_cast<double>(plan.extraServers), 2920.0,
                500.0);
    EXPECT_NEAR(plan.retrofitSavingsPerYear, 3.2e6, 0.3e6);
}

TEST(CapacityPlanner, PaperHeadlineNumbersOcp)
{
    auto plan = planCapacity(server::openComputeSpec(), 0.083);
    EXPECT_NEAR(plan.smallerPlantSavingsPerYear, 174000.0, 30000.0);
    EXPECT_NEAR(static_cast<double>(plan.extraServers), 2770.0,
                600.0);
    EXPECT_NEAR(plan.retrofitSavingsPerYear, 3.1e6, 0.3e6);
}

TEST(CapacityPlanner, ExtraServerFractionConsistent)
{
    auto plan = planCapacity(server::rd330Spec(), 0.10);
    EXPECT_NEAR(plan.extraServerFraction,
                static_cast<double>(plan.extraServers) /
                    static_cast<double>(plan.servers),
                1e-12);
}

TEST(CapacityPlanner, SavingsGrowWithReduction)
{
    auto a = planCapacity(server::rd330Spec(), 0.05);
    auto b = planCapacity(server::rd330Spec(), 0.10);
    EXPECT_GT(b.smallerPlantSavingsPerYear,
              a.smallerPlantSavingsPerYear);
    EXPECT_GT(b.extraServers, a.extraServers);
}

TEST(CapacityPlanner, PlanRecordsFacility)
{
    auto plan = planCapacity(server::rd330Spec(), 0.089);
    EXPECT_DOUBLE_EQ(plan.criticalPowerW, 10.0e6);
    EXPECT_GT(plan.clusters, 40u);
    EXPECT_EQ(plan.servers, plan.clusters * 1008u);
    EXPECT_EQ(plan.platform, server::rd330Spec().name);
}

TEST(CapacityPlanner, RejectsBadReduction)
{
    EXPECT_THROW(planCapacity(server::rd330Spec(), 1.0),
                 FatalError);
    EXPECT_THROW(planCapacity(server::rd330Spec(), -0.1),
                 FatalError);
}

} // namespace
} // namespace core
} // namespace tts
