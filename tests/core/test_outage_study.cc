/** @file Tests for the cooling-outage ride-through study. */

#include <gtest/gtest.h>

#include "core/outage_study.hh"
#include "util/error.hh"

namespace tts {
namespace core {
namespace {

OutageConfig
fastOptions()
{
    OutageConfig o;
    o.stepS = 10.0;
    o.maxDurationS = 3.0 * 3600.0;
    return o;
}

TEST(OutageStudy, RoomHeatsAndHitsLimitWithoutCooling)
{
    auto r = runOutageStudy(server::rd330Spec(), fastOptions());
    EXPECT_TRUE(r.noWax.hitLimit);
    EXPECT_GT(r.noWax.roomAirC.max(),
              fastOptions().room.limitC);
    // Minutes-to-hours scale, not seconds.
    EXPECT_GT(r.noWax.rideThroughS, 300.0);
}

TEST(OutageStudy, WaxExtendsRideThrough)
{
    auto r = runOutageStudy(server::rd330Spec(), fastOptions());
    EXPECT_GT(r.extraRideThroughS(), 300.0);  // > 5 minutes.
}

TEST(OutageStudy, WaxMeltsDuringTheOutage)
{
    auto r = runOutageStudy(server::rd330Spec(), fastOptions());
    EXPECT_GT(r.withWax.waxMelt.values().back(), 0.5);
    EXPECT_LT(r.withWax.waxMelt.values().front(), 0.1);
}

TEST(OutageStudy, RoomAirIsMonotoneNonDecreasingEarly)
{
    auto r = runOutageStudy(server::rd330Spec(), fastOptions());
    const auto &air = r.noWax.roomAirC;
    for (std::size_t i = 1; i < std::min<std::size_t>(air.size(),
                                                      30);
         ++i)
        EXPECT_GE(air.values()[i] + 1e-9, air.values()[i - 1]);
}

TEST(OutageStudy, ResidualCoolingBuysTime)
{
    auto base = fastOptions();
    auto partial = fastOptions();
    partial.residualCoolingFraction = 0.5;
    auto r_none = runOutageStudy(server::rd330Spec(), base);
    auto r_half = runOutageStudy(server::rd330Spec(), partial);
    EXPECT_GT(r_half.noWax.rideThroughS,
              r_none.noWax.rideThroughS);
}

TEST(OutageStudy, LowerUtilizationBuysTime)
{
    auto busy = fastOptions();
    busy.run.utilization = 0.95;
    auto calm = fastOptions();
    calm.run.utilization = 0.40;
    auto r_busy = runOutageStudy(server::rd330Spec(), busy);
    auto r_calm = runOutageStudy(server::rd330Spec(), calm);
    EXPECT_GT(r_calm.noWax.rideThroughS,
              r_busy.noWax.rideThroughS);
}

TEST(OutageStudy, BiggerChargeBuysMoreTime)
{
    // 2U servers carry 4 l each; per watt they hold more latent
    // energy than the 1U's 1.2 l, so the extra ride-through per
    // server-watt is larger.
    auto opts = fastOptions();
    auto r1 = runOutageStudy(server::rd330Spec(), opts);
    auto r2 = runOutageStudy(server::x4470Spec(), opts);
    EXPECT_GT(r2.extraRideThroughS(), 0.5 *
              r1.extraRideThroughS());
}

TEST(OutageStudy, CensoredRunReportsExactlyTheHorizon)
{
    // Regression: rideThroughS used to conflate "never hit the
    // limit" with "hit exactly at the horizon" and could overshoot
    // the horizon by a partial step.  hitLimit is authoritative;
    // a censored trajectory reports exactly maxDurationS even when
    // the step does not divide it.
    auto o = fastOptions();
    o.run.utilization = 0.30;
    o.residualCoolingFraction = 0.6;
    o.maxDurationS = 605.0; // Not a multiple of stepS = 10.
    auto r = runOutageStudy(server::rd330Spec(), o);

    for (const auto *arm : {&r.noWax, &r.withWax}) {
        ASSERT_FALSE(arm->hitLimit);
        EXPECT_TRUE(arm->censored());
        EXPECT_EQ(arm->rideThroughS, o.maxDurationS);
    }
    // Neither arm hit: no extra ride-through can be claimed.
    EXPECT_EQ(r.extraRideThroughS(), 0.0);
}

TEST(OutageStudy, HitAtTheHorizonIsNotCensored)
{
    // The converse: an arm that does hit the limit reports the
    // crossing time and censored() is false.
    auto r = runOutageStudy(server::rd330Spec(), fastOptions());
    ASSERT_TRUE(r.noWax.hitLimit);
    EXPECT_FALSE(r.noWax.censored());
    EXPECT_LE(r.noWax.rideThroughS, fastOptions().maxDurationS);
    EXPECT_GT(r.noWax.rideThroughS, 0.0);
}

TEST(OutageStudy, RejectsBadOptions)
{
    auto o = fastOptions();
    o.run.serverCount = 0;
    EXPECT_THROW(runOutageStudy(server::rd330Spec(), o),
                 FatalError);
    o = fastOptions();
    o.run.utilization = 1.5;
    EXPECT_THROW(runOutageStudy(server::rd330Spec(), o),
                 FatalError);
    o = fastOptions();
    o.residualCoolingFraction = 1.0;
    EXPECT_THROW(runOutageStudy(server::rd330Spec(), o),
                 FatalError);
}

} // namespace
} // namespace core
} // namespace tts
