/** @file Tests for the melting-temperature optimizer. */

#include <gtest/gtest.h>

#include "util/error.hh"
#include "core/melting_optimizer.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"

namespace tts {
namespace core {
namespace {

workload::WorkloadTrace
fastTrace()
{
    workload::GoogleTraceParams p;
    p.durationS = units::days(1.0);
    p.sampleIntervalS = 900.0;
    return workload::makeGoogleTrace(p);
}

MeltOptimizerOptions
fastOptions(double step = 2.0)
{
    MeltOptimizerOptions o;
    o.stepC = step;
    o.minC = 44.0;
    o.maxC = 58.0;
    o.study.cluster.controlIntervalS = 900.0;
    o.study.cluster.thermalStepS = 15.0;
    o.study.cluster.warmupDays = 1;
    return o;
}

TEST(MeltOptimizer, FindsAReduction)
{
    auto opt = optimizeMeltingTemp(server::rd330Spec(), fastTrace(),
                                   pcm::commercialParaffin(),
                                   fastOptions());
    EXPECT_GT(opt.peakReduction, 0.03);
    EXPECT_GE(opt.meltTempC, 44.0);
    EXPECT_LE(opt.meltTempC, 58.0);
}

TEST(MeltOptimizer, SweepCoversRange)
{
    auto opt = optimizeMeltingTemp(server::rd330Spec(), fastTrace(),
                                   pcm::commercialParaffin(),
                                   fastOptions());
    EXPECT_EQ(opt.sweep.size(), 8u);  // 44..58 step 2.
    EXPECT_DOUBLE_EQ(opt.sweep.front().meltTempC, 44.0);
    EXPECT_DOUBLE_EQ(opt.sweep.back().meltTempC, 58.0);
}

TEST(MeltOptimizer, OptimumIsSweepMinimum)
{
    auto opt = optimizeMeltingTemp(server::rd330Spec(), fastTrace(),
                                   pcm::commercialParaffin(),
                                   fastOptions());
    for (const auto &pt : opt.sweep)
        EXPECT_GE(pt.peakCoolingLoadW + 1e-6,
                  (1.0 - opt.peakReduction) *
                      opt.sweep.front().peakCoolingLoadW /
                      (1.0 - opt.sweep.front().peakReduction) *
                      (1.0 - 1e-12))
            << "non-minimal optimum";
    // Direct check: reduction at the reported optimum equals the
    // best in the sweep.
    double best = 0.0;
    for (const auto &pt : opt.sweep)
        best = std::max(best, pt.peakReduction);
    EXPECT_NEAR(opt.peakReduction, best, 1e-12);
}

TEST(MeltOptimizer, OnsetNearSeventyFivePercentLoad)
{
    // The paper: "the best wax typically begins to melt when a
    // server exceeds 75 % load."
    auto opt = optimizeMeltingTemp(server::rd330Spec(), fastTrace(),
                                   pcm::commercialParaffin(),
                                   fastOptions(1.0));
    double onset = -1.0;
    for (const auto &pt : opt.sweep) {
        if (pt.meltTempC == opt.meltTempC)
            onset = pt.meltOnsetUtilization;
    }
    EXPECT_GT(onset, 0.55);
    EXPECT_LT(onset, 0.95);
}

TEST(MeltOptimizer, RespectsMaterialRange)
{
    // Eicosane melts at exactly 36.6 C; the sweep window 44-58 C
    // does not intersect it.
    EXPECT_THROW(
        optimizeMeltingTemp(server::rd330Spec(), fastTrace(),
                            pcm::eicosane(), fastOptions()),
        FatalError);
}

TEST(MeltOptimizer, RejectsBadStep)
{
    auto o = fastOptions();
    o.stepC = 0.0;
    EXPECT_THROW(optimizeMeltingTemp(server::rd330Spec(),
                                     fastTrace(),
                                     pcm::commercialParaffin(), o),
                 FatalError);
}

} // namespace
} // namespace core
} // namespace tts
