/** @file Tests for the Section 5.2 constrained-throughput study. */

#include <gtest/gtest.h>

#include "util/error.hh"
#include "core/throughput_study.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"

namespace tts {
namespace core {
namespace {

workload::WorkloadTrace
fastTrace()
{
    workload::GoogleTraceParams p;
    p.durationS = units::days(1.0);
    p.sampleIntervalS = 900.0;
    return workload::makeGoogleTrace(p);
}

ThroughputConfig
fastOptions(const server::ServerSpec &spec)
{
    ThroughputConfig o;
    o.coolingCapacityFraction = calibratedCapacityFraction(spec);
    o.controlIntervalS = 900.0;
    o.thermalStepS = 15.0;
    o.warmupDays = 1;
    return o;
}

TEST(ThroughputStudy, WaxIncreasesPeakThroughput)
{
    auto spec = server::rd330Spec();
    auto r = runThroughputStudy(spec, fastTrace(),
                                fastOptions(spec));
    EXPECT_GT(r.throughputGain(), 0.08);
    EXPECT_GT(r.peakWithWax, 1.0);
    EXPECT_DOUBLE_EQ(r.peakNoWax, 1.0);
}

TEST(ThroughputStudy, IdealBoundsBothClusters)
{
    auto spec = server::rd330Spec();
    auto r = runThroughputStudy(spec, fastTrace(),
                                fastOptions(spec));
    for (std::size_t i = 0; i < r.ideal.size(); i += 4) {
        double t = r.ideal.times()[i];
        EXPECT_LE(r.noWax.at(t), r.ideal.at(t) + 0.02);
        EXPECT_LE(r.withWax.at(t), r.ideal.at(t) + 0.02);
    }
}

TEST(ThroughputStudy, WaxDelaysThermalLimit)
{
    auto spec = server::rd330Spec();
    auto r = runThroughputStudy(spec, fastTrace(),
                                fastOptions(spec));
    EXPECT_GT(r.delayHours, 0.5);
}

TEST(ThroughputStudy, NoWaxClusterRespectsCapacity)
{
    auto spec = server::rd330Spec();
    auto r = runThroughputStudy(spec, fastTrace(),
                                fastOptions(spec));
    double per_cluster_cap = r.capacityW;
    // Sampled cooling stays near or below the plant capacity
    // (transients from thermal mass allowed a small excursion).
    EXPECT_LT(r.noWaxCoolingW.max(), 1.06 * per_cluster_cap);
}

TEST(ThroughputStudy, GovernorDownclocksUnderPressure)
{
    auto spec = server::rd330Spec();
    auto r = runThroughputStudy(spec, fastTrace(),
                                fastOptions(spec));
    EXPECT_LT(r.noWaxFreq.min(), spec.cpu.nominalFreqGHz - 0.1);
    EXPECT_GE(r.noWaxFreq.min(), spec.cpu.minFreqGHz - 1e-9);
}

TEST(ThroughputStudy, WaxClusterHoldsHigherClocks)
{
    auto spec = server::rd330Spec();
    auto r = runThroughputStudy(spec, fastTrace(),
                                fastOptions(spec));
    // During the constrained window, the wax cluster's frequency
    // dominates the no-wax cluster's.
    double t_peak = r.ideal.argMax();
    bool higher_somewhere = false;
    for (double t = t_peak - units::hours(3.0);
         t <= t_peak + units::hours(1.0); t += 900.0) {
        higher_somewhere |=
            r.withWaxFreq.at(t) > r.noWaxFreq.at(t) + 0.1;
    }
    EXPECT_TRUE(higher_somewhere);
}

TEST(ThroughputStudy, WaxMeltsDuringConstrainedWindow)
{
    auto spec = server::rd330Spec();
    auto r = runThroughputStudy(spec, fastTrace(),
                                fastOptions(spec));
    EXPECT_GT(r.waxMelt.max(), 0.9);
    EXPECT_GT(r.meltTempC, 40.0);
    EXPECT_LT(r.meltTempC, 60.0);
}

TEST(ThroughputStudy, WaxReducesDeniedWork)
{
    // The paper's framing: without wax the denied work must be
    // relocated to other datacenters; the wax absorbs part of it.
    auto spec = server::rd330Spec();
    auto r = runThroughputStudy(spec, fastTrace(),
                                fastOptions(spec));
    EXPECT_GT(r.deniedWorkFractionNoWax, 0.01);
    EXPECT_LT(r.deniedWorkFractionWithWax,
              r.deniedWorkFractionNoWax);
    EXPECT_GE(r.deniedWorkFractionWithWax, 0.0);
}

TEST(ThroughputStudy, UnconstrainedPlantMeansNoGain)
{
    auto spec = server::rd330Spec();
    auto o = fastOptions(spec);
    o.coolingCapacityFraction = 1.0;  // Fully subscribed plant.
    auto r = runThroughputStudy(spec, fastTrace(), o);
    // Nothing ever throttles; wax cannot improve on ideal.
    EXPECT_NEAR(r.peakIdeal, 1.0, 0.02);
    EXPECT_LT(r.throughputGain(), 0.02);
}

TEST(ThroughputStudy, CalibratedFractionsPerPlatform)
{
    // The 2U facility is the most oversubscribed in the paper's
    // narrative (largest gain).
    EXPECT_LT(calibratedCapacityFraction(server::x4470Spec()),
              calibratedCapacityFraction(server::rd330Spec()));
    EXPECT_LT(calibratedCapacityFraction(server::x4470Spec()),
              calibratedCapacityFraction(server::openComputeSpec()));
}

TEST(ThroughputStudy, RejectsBadOptions)
{
    ThroughputConfig o;
    o.coolingCapacityFraction = 0.0;
    EXPECT_THROW(runThroughputStudy(server::rd330Spec(),
                                    fastTrace(), o),
                 FatalError);
    o.coolingCapacityFraction = 1.5;
    EXPECT_THROW(runThroughputStudy(server::rd330Spec(),
                                    fastTrace(), o),
                 FatalError);
}

} // namespace
} // namespace core
} // namespace tts
