/**
 * @file
 * Unit tests for SensitivityRow::spread() / reoptimizedSpread() -
 * the arithmetic the sensitivity report builds its conclusions on,
 * checked in isolation (no cluster runs).
 */

#include <gtest/gtest.h>

#include "core/sensitivity.hh"

namespace tts {
namespace core {
namespace {

SensitivityRow
row(double low, double nominal, double high)
{
    SensitivityRow r;
    r.name = "test";
    r.reductionLow = low;
    r.reductionNominal = nominal;
    r.reductionHigh = high;
    return r;
}

TEST(SensitivityRow, SpreadIsMaxDeviationFromNominal)
{
    EXPECT_DOUBLE_EQ(row(0.06, 0.09, 0.10).spread(), 0.03);
    EXPECT_DOUBLE_EQ(row(0.08, 0.09, 0.13).spread(), 0.04);
}

TEST(SensitivityRow, SpreadIsSymmetricInSign)
{
    // A perturbation that *helps* counts as much as one that hurts:
    // spread measures model fragility, not direction.
    EXPECT_DOUBLE_EQ(row(0.12, 0.09, 0.09).spread(), 0.03);
    EXPECT_DOUBLE_EQ(row(0.09, 0.09, 0.05).spread(), 0.04);
}

TEST(SensitivityRow, DegenerateAllEqualGivesZeroSpread)
{
    // nominal == low == high: an insensitive knob must read exactly
    // zero, not accumulate rounding noise.
    EXPECT_DOUBLE_EQ(row(0.09, 0.09, 0.09).spread(), 0.0);
    EXPECT_DOUBLE_EQ(row(0.0, 0.0, 0.0).spread(), 0.0);
}

TEST(SensitivityRow, DefaultConstructedRowIsZero)
{
    SensitivityRow r;
    EXPECT_DOUBLE_EQ(r.spread(), 0.0);
    EXPECT_DOUBLE_EQ(r.reoptimizedSpread(), 0.0);
}

TEST(SensitivityRow, ReoptimizedSpreadUsesReoptimizedEnds)
{
    SensitivityRow r = row(0.05, 0.09, 0.14);
    r.reoptimizedLow = 0.08;
    r.reoptimizedHigh = 0.10;
    // Raw spread reads 0.05; after re-optimization the ends pull
    // back toward nominal and the spread shrinks to 0.01.
    EXPECT_NEAR(r.spread(), 0.05, 1e-15);
    EXPECT_NEAR(r.reoptimizedSpread(), 0.01, 1e-15);
}

TEST(SensitivityRow, ReoptimizedSpreadStillAgainstRawNominal)
{
    // The baseline of both spreads is the *calibrated* nominal: the
    // re-optimized ends are compared against it, not against each
    // other.
    SensitivityRow r = row(0.0, 0.10, 0.0);
    r.reoptimizedLow = 0.04;
    r.reoptimizedHigh = 0.16;
    EXPECT_DOUBLE_EQ(r.reoptimizedSpread(), 0.06);
}

TEST(SensitivityRow, NegativeReductionsHandled)
{
    // A perturbation can make the wax *hurt* (negative reduction);
    // the distance arithmetic must not assume positivity.
    SensitivityRow r = row(-0.02, 0.09, 0.10);
    EXPECT_DOUBLE_EQ(r.spread(), 0.11);
}

} // namespace
} // namespace core
} // namespace tts
