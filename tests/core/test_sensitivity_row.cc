/**
 * @file
 * Unit tests for SensitivityRow::spread() / reoptimizedSpread() -
 * the arithmetic the sensitivity report builds its conclusions on,
 * checked in isolation (no cluster runs).
 */

#include <gtest/gtest.h>

#include "core/sensitivity.hh"

namespace tts {
namespace core {
namespace {

SensitivityRow
row(double low, double nominal, double high)
{
    SensitivityRow r;
    r.name = "test";
    r.reductionLow = low;
    r.reductionNominal = nominal;
    r.reductionHigh = high;
    return r;
}

TEST(SensitivityRow, SpreadIsMaxDeviationFromNominal)
{
    EXPECT_DOUBLE_EQ(row(0.06, 0.09, 0.10).spread(), 0.03);
    EXPECT_DOUBLE_EQ(row(0.08, 0.09, 0.13).spread(), 0.04);
}

TEST(SensitivityRow, SpreadIsSymmetricInSign)
{
    // A perturbation that *helps* counts as much as one that hurts:
    // spread measures model fragility, not direction.
    EXPECT_DOUBLE_EQ(row(0.12, 0.09, 0.09).spread(), 0.03);
    EXPECT_DOUBLE_EQ(row(0.09, 0.09, 0.05).spread(), 0.04);
}

TEST(SensitivityRow, DegenerateAllEqualGivesZeroSpread)
{
    // nominal == low == high: an insensitive knob must read exactly
    // zero, not accumulate rounding noise.
    EXPECT_DOUBLE_EQ(row(0.09, 0.09, 0.09).spread(), 0.0);
    EXPECT_DOUBLE_EQ(row(0.0, 0.0, 0.0).spread(), 0.0);
}

TEST(SensitivityRow, DefaultConstructedRowIsZero)
{
    SensitivityRow r;
    EXPECT_DOUBLE_EQ(r.spread(), 0.0);
    EXPECT_DOUBLE_EQ(r.reoptimizedSpread(), 0.0);
}

TEST(SensitivityRow, ReoptimizedSpreadUsesReoptimizedEnds)
{
    SensitivityRow r = row(0.05, 0.09, 0.14);
    r.reoptimizedLow = 0.08;
    r.reoptimizedHigh = 0.10;
    // Raw spread reads 0.05; after re-optimization the ends pull
    // back toward nominal and the spread shrinks to 0.01.
    EXPECT_NEAR(r.spread(), 0.05, 1e-15);
    EXPECT_NEAR(r.reoptimizedSpread(), 0.01, 1e-15);
}

TEST(SensitivityRow, ReoptimizedSpreadStillAgainstRawNominal)
{
    // The baseline of both spreads is the *calibrated* nominal: the
    // re-optimized ends are compared against it, not against each
    // other.
    SensitivityRow r = row(0.0, 0.10, 0.0);
    r.reoptimizedLow = 0.04;
    r.reoptimizedHigh = 0.16;
    EXPECT_DOUBLE_EQ(r.reoptimizedSpread(), 0.06);
}

TEST(SensitivityRow, NegativeReductionsHandled)
{
    // A perturbation can make the wax *hurt* (negative reduction);
    // the distance arithmetic must not assume positivity.
    SensitivityRow r = row(-0.02, 0.09, 0.10);
    EXPECT_DOUBLE_EQ(r.spread(), 0.11);
}

TEST(SensitivityRow, SpreadHistogramBucketsKnobs)
{
    std::vector<SensitivityRow> rows{
        row(0.088, 0.09, 0.091),  // spread 0.002 -> <= 0.005
        row(0.083, 0.09, 0.092),  // spread 0.007 -> <= 0.01
        row(0.05, 0.09, 0.10),    // spread 0.04  -> <= 0.05
        row(-0.02, 0.09, 0.09),   // spread 0.11  -> overflow
    };
    Histogram h = spreadHistogram(rows);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.bucketCount(), 5u);
    EXPECT_EQ(h.countInBucket(0), 1u);
    EXPECT_EQ(h.countInBucket(1), 1u);
    EXPECT_EQ(h.countInBucket(2), 0u);
    EXPECT_EQ(h.countInBucket(3), 1u);
    EXPECT_EQ(h.countInBucket(4), 1u);
}

TEST(SensitivityRow, SpreadHistogramReoptimizedMode)
{
    SensitivityRow r = row(0.02, 0.09, 0.16); // raw spread 0.07
    r.reoptimizedLow = 0.089;
    r.reoptimizedHigh = 0.091; // re-opt spread 0.001
    Histogram raw = spreadHistogram({r}, false);
    Histogram reopt = spreadHistogram({r}, true);
    EXPECT_EQ(raw.countInBucket(4), 1u);   // Overflow (> 0.05).
    EXPECT_EQ(reopt.countInBucket(0), 1u); // Tightest bucket.
}

} // namespace
} // namespace core
} // namespace tts
