/** @file Tests for the Figure 4 model-validation harness. */

#include <gtest/gtest.h>

#include "core/validation.hh"
#include "util/units.hh"

namespace tts {
namespace core {
namespace {

/** Shortened but structurally identical validation run. */
ValidationOptions
fastOptions()
{
    ValidationOptions o;
    o.loadHours = 6.0;
    o.idleHoursAfter = 6.0;
    o.sampleIntervalS = 300.0;
    o.shells = 4;
    return o;
}

class ValidationFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        result_ = new ValidationResult(runValidation(fastOptions()));
    }

    static void
    TearDownTestSuite()
    {
        delete result_;
        result_ = nullptr;
    }

    static ValidationResult *result_;
};

ValidationResult *ValidationFixture::result_ = nullptr;

TEST_F(ValidationFixture, WallPowerMatchesMeasurement)
{
    // Paper Section 3: 90 W idle -> 185 W fully loaded.
    EXPECT_NEAR(result_->idleWallW, 90.0, 1.0);
    EXPECT_NEAR(result_->loadWallW, 185.0, 1.0);
}

TEST_F(ValidationFixture, PackageTemperaturesMatchMeasurement)
{
    // Paper Section 3: package 42 C idle -> 76 C loaded.
    EXPECT_NEAR(result_->idlePackageC, 42.0, 3.0);
    EXPECT_NEAR(result_->loadPackageC, 76.0, 5.0);
}

TEST_F(ValidationFixture, SteadyStateAgreementLikePaper)
{
    // Paper Figure 4 (c): mean difference 0.22 C between the real
    // server and the Icepak model on the loaded steady state.
    EXPECT_LT(result_->steadyStateMeanDiffC, 0.5);
    EXPECT_LT(result_->steadyStatePlaceboDiffC, 0.5);
}

TEST_F(ValidationFixture, TransientTracesStronglyCorrelated)
{
    EXPECT_GT(result_->traceCorrelation, 0.98);
}

TEST_F(ValidationFixture, WaxCoolsDuringMelt)
{
    // Paper: "the wax reduces temperatures for two hours while the
    // wax melts".
    EXPECT_GT(result_->waxCoolingEffectHours, 0.8);
    EXPECT_LT(result_->waxCoolingEffectHours, 5.0);
}

TEST_F(ValidationFixture, WaxWarmsDuringFreeze)
{
    // ...and "increases temperatures ... while the wax freezes".
    EXPECT_GT(result_->waxWarmingEffectHours, 0.8);
}

TEST_F(ValidationFixture, MeltHappensInBothModels)
{
    EXPECT_GT(result_->realMelt.max(), 0.9);
    EXPECT_GT(result_->modelMelt.max(), 0.9);
}

TEST_F(ValidationFixture, WaxBelowPlaceboWhileMelting)
{
    // Half an hour into the load phase the wax box area reads
    // cooler than the placebo area.
    double t = units::hours(1.5);
    EXPECT_LT(result_->realWax.at(t),
              result_->realPlacebo.at(t));
    EXPECT_LT(result_->modelWax.at(t),
              result_->modelPlacebo.at(t));
}

TEST_F(ValidationFixture, WaxAbovePlaceboWhileFreezing)
{
    // Half an hour after load-off the stored heat keeps the wax
    // area warmer.
    double t = units::hours(1.0 + 6.0 + 0.5);
    EXPECT_GT(result_->realWax.at(t),
              result_->realPlacebo.at(t));
    EXPECT_GT(result_->modelWax.at(t),
              result_->modelPlacebo.at(t));
}

TEST_F(ValidationFixture, TracesCoverWholeSchedule)
{
    double expected_end = units::hours(1.0 + 6.0 + 6.0);
    EXPECT_NEAR(result_->realWax.endTime(), expected_end, 301.0);
    EXPECT_EQ(result_->realWax.size(), result_->modelWax.size());
}

TEST(Validation, NoiseSeedChangesRealTraceOnly)
{
    auto o = fastOptions();
    o.loadHours = 2.0;
    o.idleHoursAfter = 1.0;
    auto a = runValidation(o);
    o.seed = 1234;
    auto b = runValidation(o);
    // Model traces (noise-free) identical; real traces differ.
    EXPECT_DOUBLE_EQ(a.modelWax.at(units::hours(2.0)),
                     b.modelWax.at(units::hours(2.0)));
    bool differs = false;
    for (std::size_t i = 0; i < a.realWax.size(); ++i) {
        differs |= a.realWax.values()[i] != b.realWax.values()[i];
    }
    EXPECT_TRUE(differs);
}

TEST(Validation, MoreShellsSlowMelting)
{
    // Conduction-limited melting: a finer discretization cannot melt
    // faster than a lumped charge.
    auto o = fastOptions();
    o.loadHours = 3.0;
    o.idleHoursAfter = 0.5;
    o.shells = 1;
    auto lumped = runValidation(o);
    o.shells = 8;
    auto shelled = runValidation(o);
    double t = units::hours(2.0);
    EXPECT_LE(shelled.realMelt.at(t), lumped.realMelt.at(t) + 0.05);
}

} // namespace
} // namespace core
} // namespace tts
