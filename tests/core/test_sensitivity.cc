/** @file Tests for the calibration-sensitivity harness. */

#include <gtest/gtest.h>

#include "core/sensitivity.hh"
#include "util/error.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"

namespace tts {
namespace core {
namespace {

workload::WorkloadTrace
fastTrace()
{
    workload::GoogleTraceParams p;
    p.durationS = units::days(1.0);
    p.sampleIntervalS = 900.0;
    return workload::makeGoogleTrace(p);
}

CoolingConfig
fastOptions()
{
    CoolingConfig o;
    o.cluster.controlIntervalS = 900.0;
    o.cluster.thermalStepS = 20.0;
    return o;
}

TEST(Sensitivity, KnobSetCoversDesignDisclosures)
{
    auto knobs = calibrationKnobs();
    EXPECT_GE(knobs.size(), 6u);
    bool has_plume = false, has_fusion = false;
    for (const auto &k : knobs) {
        has_plume |= k.name.find("plume") != std::string::npos;
        has_fusion |= k.name.find("fusion") != std::string::npos;
    }
    EXPECT_TRUE(has_plume);
    EXPECT_TRUE(has_fusion);
}

TEST(Sensitivity, SingleKnobSweepRuns)
{
    std::vector<SensitivityParameter> one = {
        {"wax heat of fusion",
         [](server::ServerSpec &, server::WaxConfig &w, double f) {
             w.material.heatOfFusionJPerG *= f;
         }}};
    auto rows = runSensitivity(server::rd330Spec(), fastTrace(),
                               0.2, one, fastOptions());
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_GT(rows[0].reductionNominal, 0.02);
    // Less latent heat -> less (or equal) shaving.
    EXPECT_LE(rows[0].reductionLow,
              rows[0].reductionNominal + 0.005);
    EXPECT_GT(rows[0].reductionLow, 0.0);
    EXPECT_GE(rows[0].spread(), 0.0);
}

TEST(Sensitivity, InertKnobHasNoEffect)
{
    std::vector<SensitivityParameter> inert = {
        {"no-op", [](server::ServerSpec &, server::WaxConfig &,
                     double) {}}};
    auto rows = runSensitivity(server::rd330Spec(), fastTrace(),
                               0.1, inert, fastOptions());
    EXPECT_NEAR(rows[0].reductionLow, rows[0].reductionNominal,
                1e-9);
    EXPECT_NEAR(rows[0].reductionHigh, rows[0].reductionNominal,
                1e-9);
}

TEST(Sensitivity, ReoptimizationNeverLosesToFixedWax)
{
    std::vector<SensitivityParameter> one = {
        {"nominal airflow",
         [](server::ServerSpec &s, server::WaxConfig &, double f) {
             s.nominalFlowM3s *= f;
         }}};
    auto rows = runSensitivity(server::rd330Spec(), fastTrace(),
                               0.1, one, fastOptions(),
                               /*reoptimize=*/true);
    EXPECT_GE(rows[0].reoptimizedLow,
              rows[0].reductionLow - 1e-9);
    EXPECT_GE(rows[0].reoptimizedHigh,
              rows[0].reductionHigh - 1e-9);
    EXPECT_LE(rows[0].reoptimizedSpread(),
              rows[0].spread() + 1e-9);
}

TEST(Sensitivity, RejectsBadArguments)
{
    EXPECT_THROW(runSensitivity(server::rd330Spec(), fastTrace(),
                                0.0),
                 FatalError);
    EXPECT_THROW(runSensitivity(server::rd330Spec(), fastTrace(),
                                0.1, {}),
                 FatalError);
}

} // namespace
} // namespace core
} // namespace tts
