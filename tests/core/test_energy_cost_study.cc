/** @file Tests for the cooling energy-cost study. */

#include <gtest/gtest.h>

#include "core/energy_cost_study.hh"
#include "util/error.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"

namespace tts {
namespace core {
namespace {

class EnergyCostFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        workload::GoogleTraceParams tp;
        tp.durationS = units::days(1.0);
        tp.sampleIntervalS = 900.0;
        auto trace = workload::makeGoogleTrace(tp);
        CoolingConfig opts;
        opts.cluster.controlIntervalS = 900.0;
        opts.cluster.thermalStepS = 15.0;
        study_ = new CoolingStudyResult(
            runCoolingStudy(server::rd330Spec(), trace, opts));
    }

    static void
    TearDownTestSuite()
    {
        delete study_;
        study_ = nullptr;
    }

    static CoolingStudyResult *study_;
};

CoolingStudyResult *EnergyCostFixture::study_ = nullptr;

TEST_F(EnergyCostFixture, CostsArePositiveAndOrdered)
{
    auto r = priceCoolingEnergy(*study_);
    EXPECT_GT(r.flatCostNoWax, 0.0);
    EXPECT_GT(r.flatCostWithWax, 0.0);
    // The economizer always removes joules at least as cheaply as
    // the flat-COP plant.
    EXPECT_LT(r.economizerCostNoWax, r.flatCostNoWax);
    EXPECT_LT(r.economizerCostWithWax, r.flatCostWithWax);
}

TEST_F(EnergyCostFixture, WaxShiftsEnergyToCheaperHours)
{
    // The Figure 1 "power is cheaper off-peak" advantage: with the
    // same total heat, moving part of it to night lowers the bill.
    auto r = priceCoolingEnergy(*study_);
    EXPECT_GT(r.flatSaving(), 0.0);
}

TEST_F(EnergyCostFixture, SavingsScaleWithClusters)
{
    EnergyCostOptions one;
    one.clusters = 1;
    EnergyCostOptions many;
    many.clusters = 50;
    auto a = priceCoolingEnergy(*study_, one);
    auto b = priceCoolingEnergy(*study_, many);
    EXPECT_NEAR(b.flatCostNoWax, 50.0 * a.flatCostNoWax,
                0.01 * b.flatCostNoWax);
}

TEST_F(EnergyCostFixture, FlatTariffRemovesTheSaving)
{
    // With equal peak/off-peak prices and a flat COP, time shifting
    // cannot change the bill (energy is conserved over the cycle).
    EnergyCostOptions opts;
    opts.tariff.peakPricePerKWh = 0.10;
    opts.tariff.offPeakPricePerKWh = 0.10;
    auto r = priceCoolingEnergy(*study_, opts);
    EXPECT_NEAR(r.flatSaving(), 0.0,
                0.005 * r.flatCostNoWax);
}

TEST_F(EnergyCostFixture, RejectsBadOptions)
{
    EnergyCostOptions opts;
    opts.flatCop = 0.0;
    EXPECT_THROW(priceCoolingEnergy(*study_, opts), FatalError);
    opts = EnergyCostOptions{};
    opts.clusters = 0;
    EXPECT_THROW(priceCoolingEnergy(*study_, opts), FatalError);
}

} // namespace
} // namespace core
} // namespace tts
