/** @file Tests for the Section 5.1 cooling-load study. */

#include <gtest/gtest.h>

#include "core/cooling_study.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"

namespace tts {
namespace core {
namespace {

workload::WorkloadTrace
fastTrace()
{
    workload::GoogleTraceParams p;
    p.durationS = units::days(1.0);
    p.sampleIntervalS = 900.0;
    return workload::makeGoogleTrace(p);
}

CoolingConfig
fastOptions()
{
    CoolingConfig o;
    o.cluster.controlIntervalS = 900.0;
    o.cluster.thermalStepS = 15.0;
    o.cluster.warmupDays = 1;
    return o;
}

TEST(CoolingStudy, WaxReducesPeakFor1U)
{
    auto r = runCoolingStudy(server::rd330Spec(), fastTrace(),
                             fastOptions());
    EXPECT_GT(r.peakReduction(), 0.04);
    EXPECT_LT(r.peakReduction(), 0.20);
    EXPECT_LT(r.peakWithWaxW, r.peakBaselineW);
}

TEST(CoolingStudy, DefaultMeltTempComesFromSpec)
{
    auto r = runCoolingStudy(server::rd330Spec(), fastTrace(),
                             fastOptions());
    EXPECT_DOUBLE_EQ(r.meltTempC,
                     server::rd330Spec().defaultMeltTempC);
}

TEST(CoolingStudy, ExplicitMeltTempOverrides)
{
    auto o = fastOptions();
    o.run.meltTempC = 45.0;
    auto r = runCoolingStudy(server::rd330Spec(), fastTrace(), o);
    EXPECT_DOUBLE_EQ(r.meltTempC, 45.0);
}

TEST(CoolingStudy, BadMeltTempGivesNoReduction)
{
    // Wax that never melts is dead weight: peaks nearly equal.
    auto o = fastOptions();
    o.run.meltTempC = 60.0;
    auto r = runCoolingStudy(server::rd330Spec(), fastTrace(), o);
    EXPECT_LT(r.peakReduction(), 0.02);
}

TEST(CoolingStudy, WaxResolidifiesDaily)
{
    auto r = runCoolingStudy(server::rd330Spec(), fastTrace(),
                             fastOptions());
    EXPECT_TRUE(r.resolidifiesDaily());
}

TEST(CoolingStudy, ReleaseWindowIsHours)
{
    // The paper: elevated cooling for 6-9 h per day while the wax
    // refreezes.  Accept a broad band on the fast grid.
    auto r = runCoolingStudy(server::rd330Spec(), fastTrace(),
                             fastOptions());
    EXPECT_GT(r.resolidifyHours(), 2.0);
    EXPECT_LT(r.resolidifyHours(), 14.0);
}

TEST(CoolingStudy, ReductionOrderingAcrossPlatforms)
{
    // Paper ordering: 2U (12 %) > 1U (8.9 %) > OCP (8.3 %).
    auto r1 = runCoolingStudy(server::rd330Spec(), fastTrace(),
                              fastOptions());
    auto r2 = runCoolingStudy(server::x4470Spec(), fastTrace(),
                              fastOptions());
    auto r3 = runCoolingStudy(server::openComputeSpec(),
                              fastTrace(), fastOptions());
    EXPECT_GT(r2.peakReduction(), r1.peakReduction());
    EXPECT_GT(r1.peakReduction(), r3.peakReduction() - 0.01);
}

TEST(CoolingStudy, BaselinePeakScalesWithServerCount)
{
    auto o = fastOptions();
    o.run.serverCount = 504;
    auto half = runCoolingStudy(server::rd330Spec(), fastTrace(),
                                o);
    o.run.serverCount = 1008;
    auto full = runCoolingStudy(server::rd330Spec(), fastTrace(),
                                o);
    EXPECT_NEAR(full.peakBaselineW, 2.0 * half.peakBaselineW,
                0.01 * full.peakBaselineW);
}

} // namespace
} // namespace core
} // namespace tts
