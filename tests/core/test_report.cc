/** @file Tests for CSV/markdown result export. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/report.hh"
#include "util/error.hh"

namespace tts {
namespace core {
namespace {

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TimeSeries
ramp(const char *name)
{
    TimeSeries s(name);
    s.append(0.0, 1.0);
    s.append(1800.0, 2.0);
    s.append(3600.0, 3.0);
    return s;
}

TEST(Report, WritesHeaderAndRows)
{
    auto a = ramp("alpha");
    auto b = ramp("beta");
    auto path = tempPath("series.csv");
    writeSeriesCsv(path, {&a, &b}, 900.0);
    auto text = slurp(path);
    EXPECT_NE(text.find("t_hours,alpha,beta"), std::string::npos);
    // 0 .. 3600 at 900 s -> 5 rows + header.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 6);
    std::remove(path.c_str());
}

TEST(Report, ResamplesOntoGrid)
{
    auto a = ramp("a");
    auto path = tempPath("grid.csv");
    writeSeriesCsv(path, {&a}, 1800.0);
    auto text = slurp(path);
    // Midpoint value interpolated: t = 0.5 h -> 2.
    EXPECT_NE(text.find("0.5,2"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Report, UnnamedSeriesGetPlaceholder)
{
    TimeSeries s;
    s.append(0.0, 1.0);
    s.append(10.0, 2.0);
    auto path = tempPath("unnamed.csv");
    writeSeriesCsv(path, {&s}, 5.0);
    EXPECT_NE(slurp(path).find("t_hours,series"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(Report, RejectsBadInput)
{
    auto a = ramp("a");
    EXPECT_THROW(writeSeriesCsv(tempPath("x.csv"), {}), FatalError);
    EXPECT_THROW(writeSeriesCsv(tempPath("x.csv"), {&a}, 0.0),
                 FatalError);
    TimeSeries empty;
    EXPECT_THROW(writeSeriesCsv(tempPath("x.csv"), {&empty}),
                 FatalError);
    EXPECT_THROW(
        writeSeriesCsv("/nonexistent-dir/x.csv", {&a}),
        FatalError);
}

} // namespace
} // namespace core
} // namespace tts
