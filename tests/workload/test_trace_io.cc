/** @file Tests for workload trace CSV I/O. */

#include <gtest/gtest.h>

#include <iterator>
#include <sstream>

#include "util/error.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"
#include "workload/trace_io.hh"

namespace tts {
namespace workload {
namespace {

TEST(TraceIo, RoundTripPreservesTrace)
{
    GoogleTraceParams p;
    p.durationS = units::days(1.0);
    p.sampleIntervalS = 1800.0;
    auto original = makeGoogleTrace(p);

    std::stringstream buf;
    writeTraceCsv(buf, original);
    auto loaded = readTraceCsv(buf);

    ASSERT_EQ(loaded.size(), original.size());
    for (double t = 0.0; t <= original.endTime();
         t += units::hours(3.0)) {
        EXPECT_NEAR(loaded.totalAt(t), original.totalAt(t), 1e-6);
        for (auto c : allJobClasses)
            EXPECT_NEAR(loaded.classAt(c, t),
                        original.classAt(c, t), 1e-6);
    }
}

TEST(TraceIo, ParsesHandWrittenCsv)
{
    std::stringstream in(
        "t_hours,Orkut,Search,FBmr\n"
        "0,0.1,0.2,0.3\n"
        "1,0.2,0.3,0.4\n"
        "2,0.1,0.2,0.3\n");
    auto t = readTraceCsv(in);
    EXPECT_EQ(t.size(), 3u);
    EXPECT_NEAR(t.totalAt(units::hours(1.0)), 0.9, 1e-12);
    EXPECT_NEAR(t.classAt(JobClass::WebSearch, units::hours(0.0)),
                0.2, 1e-12);
}

TEST(TraceIo, ColumnsMayBeReordered)
{
    std::stringstream in(
        "t_hours,FBmr,Search,Orkut\n"
        "0,0.3,0.2,0.1\n"
        "1,0.4,0.3,0.2\n");
    auto t = readTraceCsv(in);
    EXPECT_NEAR(t.classAt(JobClass::MapReduce, 0.0), 0.3, 1e-12);
    EXPECT_NEAR(t.classAt(JobClass::Orkut, 0.0), 0.1, 1e-12);
}

TEST(TraceIo, IgnoresExtraTotalColumn)
{
    std::stringstream in(
        "t_hours,Orkut,Search,FBmr,Total\n"
        "0,0.1,0.2,0.3,0.6\n"
        "1,0.2,0.3,0.4,0.9\n");
    auto t = readTraceCsv(in);
    EXPECT_NEAR(t.totalAt(0.0), 0.6, 1e-12);
}

TEST(TraceIo, SkipsBlankLines)
{
    std::stringstream in(
        "t_hours,Orkut,Search,FBmr\n"
        "0,0.1,0.2,0.3\n"
        "\n"
        "1,0.2,0.3,0.4\n");
    EXPECT_EQ(readTraceCsv(in).size(), 2u);
}

TEST(TraceIo, RejectsMissingClassColumn)
{
    std::stringstream in(
        "t_hours,Orkut,Search\n"
        "0,0.1,0.2\n"
        "1,0.2,0.3\n");
    EXPECT_THROW(readTraceCsv(in), FatalError);
}

TEST(TraceIo, RejectsBadHeader)
{
    std::stringstream in("hour,Orkut,Search,FBmr\n0,1,1,1\n");
    EXPECT_THROW(readTraceCsv(in), FatalError);
}

TEST(TraceIo, RejectsNonNumericCell)
{
    std::stringstream in(
        "t_hours,Orkut,Search,FBmr\n"
        "0,0.1,abc,0.3\n"
        "1,0.2,0.3,0.4\n");
    EXPECT_THROW(readTraceCsv(in), FatalError);
}

TEST(TraceIo, RejectsNonIncreasingTime)
{
    std::stringstream in(
        "t_hours,Orkut,Search,FBmr\n"
        "1,0.1,0.2,0.3\n"
        "1,0.2,0.3,0.4\n");
    EXPECT_THROW(readTraceCsv(in), FatalError);
}

TEST(TraceIo, RejectsSingleRow)
{
    std::stringstream in(
        "t_hours,Orkut,Search,FBmr\n"
        "0,0.1,0.2,0.3\n");
    EXPECT_THROW(readTraceCsv(in), FatalError);
}

TEST(TraceIo, RejectsEmptyInput)
{
    std::stringstream in("");
    EXPECT_THROW(readTraceCsv(in), FatalError);
}

// Fuzz-style corpus: every malformed input a cut-off download or a
// corrupted sensor export can produce must die with a FatalError
// carrying a line number - never an out-of-range index, a silent
// NaN in the trace, or an accepted partial row.
TEST(TraceIo, MalformedCorpusAllRejectedWithoutCrashing)
{
    const char *corpus[] = {
        // Truncated data row (fewer cells than the header).
        "t_hours,Orkut,Search,FBmr\n"
        "0,0.1,0.2,0.3\n"
        "1,0.2,0.3\n",
        // Row cut mid-cell.
        "t_hours,Orkut,Search,FBmr\n"
        "0,0.1,0.2,0.3\n"
        "1,0.2,0.\n",
        // Empty cell in the middle.
        "t_hours,Orkut,Search,FBmr\n"
        "0,0.1,,0.3\n"
        "1,0.2,0.3,0.4\n",
        // NaN utilization.
        "t_hours,Orkut,Search,FBmr\n"
        "0,0.1,nan,0.3\n"
        "1,0.2,0.3,0.4\n",
        // Infinite utilization.
        "t_hours,Orkut,Search,FBmr\n"
        "0,0.1,inf,0.3\n"
        "1,0.2,0.3,0.4\n",
        // Negative utilization.
        "t_hours,Orkut,Search,FBmr\n"
        "0,0.1,-0.2,0.3\n"
        "1,0.2,0.3,0.4\n",
        // NaN timestamp.
        "t_hours,Orkut,Search,FBmr\n"
        "nan,0.1,0.2,0.3\n"
        "1,0.2,0.3,0.4\n",
        // Out-of-order timestamps.
        "t_hours,Orkut,Search,FBmr\n"
        "0,0.1,0.2,0.3\n"
        "2,0.2,0.3,0.4\n"
        "1,0.2,0.3,0.4\n",
        // Trailing garbage glued to a number.
        "t_hours,Orkut,Search,FBmr\n"
        "0,0.1,0.2x,0.3\n"
        "1,0.2,0.3,0.4\n",
        // Header only, then noise.
        "t_hours,Orkut,Search,FBmr\n"
        ",,,\n",
        // Binary junk where the header should be.
        "\x01\x02\x03\n0,0.1,0.2,0.3\n",
    };
    for (std::size_t i = 0; i < std::size(corpus); ++i) {
        std::stringstream in(corpus[i]);
        EXPECT_THROW(readTraceCsv(in), FatalError)
            << "corpus entry " << i << " was accepted:\n"
            << corpus[i];
    }
}

TEST(TraceIo, ErrorsCarryTheOffendingLineNumber)
{
    std::stringstream in(
        "t_hours,Orkut,Search,FBmr\n"
        "0,0.1,0.2,0.3\n"
        "1,0.2,-0.3,0.4\n");
    try {
        readTraceCsv(in);
        FAIL() << "negative load accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TraceIo, LoadRejectsMissingFile)
{
    EXPECT_THROW(loadTrace("/nonexistent/trace.csv"), FatalError);
}

TEST(TraceIo, SaveAndLoadFile)
{
    GoogleTraceParams p;
    p.durationS = units::hours(6.0);
    p.sampleIntervalS = 1800.0;
    auto t = makeGoogleTrace(p);
    std::string path =
        std::string(::testing::TempDir()) + "trace.csv";
    saveTrace(path, t);
    auto loaded = loadTrace(path);
    EXPECT_EQ(loaded.size(), t.size());
    std::remove(path.c_str());
}

} // namespace
} // namespace workload
} // namespace tts
