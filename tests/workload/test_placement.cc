/**
 * @file
 * Placement-policy tests: weight conservation, skew directions,
 * degenerate collapse to uniform, and the smooth weighted
 * round-robin balancer's frequency and save/restore contracts.
 */

#include <gtest/gtest.h>
#include <numeric>

#include "util/error.hh"
#include "workload/placement.hh"

namespace tts {
namespace workload {
namespace {

std::vector<ArchetypeLoadTraits>
mixedTraits()
{
    // Shaped like the paper fleet: 1U (small wax), 2U (big wax),
    // OCP (medium wax), with distinct power slopes.
    return {
        {100, 0.24e6, 90.0, 185.0},
        {100, 0.80e6, 150.0, 320.0},
        {100, 0.30e6, 80.0, 160.0},
    };
}

double
weightedLoad(const std::vector<ArchetypeLoadTraits> &traits,
             const std::vector<double> &w)
{
    double sum = 0.0;
    for (std::size_t i = 0; i < traits.size(); ++i)
        sum += static_cast<double>(traits[i].count) * w[i];
    return sum;
}

TEST(Placement, WeightsConserveTotalLoad)
{
    auto traits = mixedTraits();
    double population = 300.0;
    for (PlacementPolicy p : allPlacementPolicies()) {
        auto w = placementWeights(p, traits);
        ASSERT_EQ(w.size(), traits.size());
        EXPECT_NEAR(weightedLoad(traits, w), population, 1e-9)
            << placementPolicyName(p);
        for (double x : w) {
            EXPECT_GT(x, 0.0);
        }
    }
}

TEST(Placement, UniformIsExactlyUniform)
{
    auto w = placementWeights(PlacementPolicy::Uniform, mixedTraits());
    for (double x : w)
        EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(Placement, WaxAwareSkewsTowardLatentCapacity)
{
    auto traits = mixedTraits();
    auto w = placementWeights(PlacementPolicy::WaxAware, traits);
    // The 2U archetype has the most wax per server: it must carry
    // the highest weight; the 1U the least.
    EXPECT_GT(w[1], w[0]);
    EXPECT_GT(w[1], w[2]);
    EXPECT_GT(w[2], w[0]);
}

TEST(Placement, EfficiencyFirstSkewsTowardFlatSlope)
{
    auto traits = mixedTraits();
    // Power slopes (peak - idle): 95, 170, 80 W per unit load; the
    // OCP archetype is cheapest to load up.
    auto w =
        placementWeights(PlacementPolicy::EfficiencyFirst, traits);
    EXPECT_GT(w[2], w[0]);
    EXPECT_GT(w[0], w[1]);
}

TEST(Placement, FlatTraitsCollapseToUniform)
{
    std::vector<ArchetypeLoadTraits> flat(
        3, ArchetypeLoadTraits{50, 0.5e6, 100.0, 200.0});
    for (PlacementPolicy p : allPlacementPolicies()) {
        auto w = placementWeights(p, flat);
        for (double x : w)
            EXPECT_DOUBLE_EQ(x, 1.0) << placementPolicyName(p);
    }
    // Waxless fleet: latent capacity all zero, WaxAware must not
    // divide by it.
    std::vector<ArchetypeLoadTraits> waxless = mixedTraits();
    for (auto &t : waxless)
        t.latentCapacityJ = 0.0;
    auto w = placementWeights(PlacementPolicy::WaxAware, waxless);
    for (double x : w)
        EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(Placement, NamesRoundTripAndReject)
{
    for (PlacementPolicy p : allPlacementPolicies())
        EXPECT_EQ(placementPolicyFromName(placementPolicyName(p)), p);
    EXPECT_THROW(placementPolicyFromName("bogus"), FatalError);
    EXPECT_THROW(placementWeights(PlacementPolicy::Uniform, {}),
                 FatalError);
}

TEST(Placement, ExpandedWeightsFollowArchetypeOrder)
{
    std::vector<ArchetypeLoadTraits> traits = {
        {2, 0.2e6, 90.0, 185.0},
        {3, 0.8e6, 150.0, 320.0},
    };
    auto w = placementWeights(PlacementPolicy::WaxAware, traits);
    auto per_server = expandArchetypeWeights(traits, w);
    ASSERT_EQ(per_server.size(), 5u);
    EXPECT_DOUBLE_EQ(per_server[0], w[0]);
    EXPECT_DOUBLE_EQ(per_server[1], w[0]);
    EXPECT_DOUBLE_EQ(per_server[2], w[1]);
    EXPECT_DOUBLE_EQ(per_server[4], w[1]);
}

TEST(Placement, SmoothWrrMatchesWeightFrequencies)
{
    // Weights 3:2:1 over 600 picks: exactly 300/200/100, and the
    // running spread between ideal and actual share stays within one
    // pick (the smooth-WRR property).
    WeightedRoundRobinBalancer wrr({3.0, 2.0, 1.0});
    std::vector<std::size_t> depths(3, 0);
    std::vector<int> picks(3, 0);
    const int n = 600;
    for (int i = 1; i <= n; ++i) {
        std::size_t s = wrr.pick(depths);
        ASSERT_LT(s, 3u);
        ++picks[s];
        double ideal = static_cast<double>(i) *
            wrr.weights()[s] / 6.0;
        EXPECT_LE(std::abs(picks[s] - ideal), 1.0 + 1e-9)
            << "pick " << i;
    }
    EXPECT_EQ(picks[0], 300);
    EXPECT_EQ(picks[1], 200);
    EXPECT_EQ(picks[2], 100);
}

TEST(Placement, WrrSaveRestoreRoundTrips)
{
    WeightedRoundRobinBalancer a({3.0, 2.0, 1.0});
    std::vector<std::size_t> depths(3, 0);
    for (int i = 0; i < 7; ++i)
        a.pick(depths);

    std::vector<std::uint64_t> blob;
    a.saveState(blob);

    WeightedRoundRobinBalancer b({3.0, 2.0, 1.0});
    std::size_t pos = 0;
    b.restoreState(blob, pos);
    EXPECT_EQ(pos, blob.size());

    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a.pick(depths), b.pick(depths)) << i;
}

} // namespace
} // namespace workload
} // namespace tts
