/** @file Tests for the synthetic Google trace generator (Fig 10). */

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"

namespace tts {
namespace workload {
namespace {

TEST(GoogleTrace, DefaultNormalization)
{
    auto t = makeGoogleTrace();
    // The paper's normalization: 50 % average, 95 % peak.
    EXPECT_NEAR(t.mean(), 0.50, 1e-6);
    EXPECT_NEAR(t.peak(), 0.95, 1e-6);
}

TEST(GoogleTrace, SpansTwoDays)
{
    auto t = makeGoogleTrace();
    EXPECT_DOUBLE_EQ(t.startTime(), 0.0);
    EXPECT_NEAR(t.endTime(), units::days(2.0), 301.0);
}

TEST(GoogleTrace, Deterministic)
{
    auto a = makeGoogleTrace();
    auto b = makeGoogleTrace();
    ASSERT_EQ(a.size(), b.size());
    for (double at : {0.0, 40000.0, 120000.0})
        EXPECT_DOUBLE_EQ(a.totalAt(at), b.totalAt(at));
}

TEST(GoogleTrace, SeedChangesTrace)
{
    GoogleTraceParams p;
    p.seed = 99;
    auto a = makeGoogleTrace();
    auto b = makeGoogleTrace(p);
    bool differs = false;
    for (double at = 0.0; at < units::days(2.0); at += 3600.0)
        differs |= std::abs(a.totalAt(at) - b.totalAt(at)) > 1e-6;
    EXPECT_TRUE(differs);
}

TEST(GoogleTrace, DiurnalShape)
{
    auto t = makeGoogleTrace();
    // Mid-day (14:00) far above the pre-dawn trough (04:00).
    double peak_day1 = t.totalAt(units::hours(14.0));
    double trough_day1 = t.totalAt(units::hours(4.0));
    EXPECT_GT(peak_day1, 0.8);
    EXPECT_LT(trough_day1, 0.4);
}

TEST(GoogleTrace, BothDaysPeakAtMidday)
{
    auto t = makeGoogleTrace();
    for (int day = 0; day < 2; ++day) {
        double base = units::days(day);
        EXPECT_GT(t.totalAt(base + units::hours(14.0)),
                  t.totalAt(base + units::hours(4.0)) + 0.3);
    }
}

TEST(GoogleTrace, SearchPeaksAfternoonOrkutEvening)
{
    auto t = makeGoogleTrace();
    const auto &search = t.series(JobClass::WebSearch);
    const auto &orkut = t.series(JobClass::Orkut);
    // Search at 14:00 dominates its own 20:00 value; Orkut the
    // opposite (evening social peak).
    EXPECT_GT(search.at(units::hours(14.0)),
              search.at(units::hours(20.0)));
    EXPECT_GT(orkut.at(units::hours(19.5)),
              orkut.at(units::hours(12.0)));
}

TEST(GoogleTrace, MapReduceIsFlattest)
{
    auto t = makeGoogleTrace();
    auto relative_swing = [&](JobClass c) {
        const auto &s = t.series(c);
        return (s.max() - s.min()) / s.mean();
    };
    EXPECT_LT(relative_swing(JobClass::MapReduce),
              relative_swing(JobClass::WebSearch));
    EXPECT_LT(relative_swing(JobClass::MapReduce),
              relative_swing(JobClass::Orkut));
}

TEST(GoogleTrace, AllValuesInUnitRange)
{
    auto t = makeGoogleTrace();
    EXPECT_GE(t.total().min(), 0.0);
    EXPECT_LE(t.peak(), 1.0);
}

TEST(GoogleTrace, NightLoadMatchesPaperBand)
{
    // Figure 10: nighttime load sits around 25-35 %.
    auto t = makeGoogleTrace();
    double night = t.totalAt(units::hours(4.0));
    EXPECT_GT(night, 0.15);
    EXPECT_LT(night, 0.45);
}

TEST(GoogleTrace, CustomTargetsRespected)
{
    GoogleTraceParams p;
    p.targetMean = 0.4;
    p.targetPeak = 0.8;
    auto t = makeGoogleTrace(p);
    EXPECT_NEAR(t.mean(), 0.4, 1e-6);
    EXPECT_NEAR(t.peak(), 0.8, 1e-6);
}

TEST(GoogleTrace, CustomDurationAndInterval)
{
    GoogleTraceParams p;
    p.durationS = units::days(1.0);
    p.sampleIntervalS = 600.0;
    auto t = makeGoogleTrace(p);
    EXPECT_NEAR(t.endTime(), units::days(1.0), 601.0);
    EXPECT_NEAR(t.mean(), 0.5, 1e-6);
}

TEST(GoogleTrace, PeakIsNarrowEnoughForThermalShifting)
{
    // The wax sizing logic depends on the time spent near peak; the
    // default trace stays above 80 % of peak for only a few hours a
    // day (Figure 10's mid-day spike).
    auto t = makeGoogleTrace();
    double above = t.total().timeAbove(0.8 * 0.95);
    EXPECT_LT(above, units::hours(10.0));  // Over two days.
    EXPECT_GT(above, units::hours(1.0));
}

TEST(GoogleTrace, WeekendFactorDipsInteractiveLoad)
{
    GoogleTraceParams p;
    p.durationS = units::days(7.0);
    p.sampleIntervalS = 900.0;
    p.startDayOfWeek = 0;          // Monday start.
    p.weekendFactor = 0.6;
    p.dayJitter = 0.0;
    p.noise = 0.0;
    auto t = makeGoogleTrace(p);
    // Saturday (day 5) mid-day total below Wednesday's.
    double wed = t.totalAt(units::days(2.0) + units::hours(14.0));
    double sat = t.totalAt(units::days(5.0) + units::hours(14.0));
    EXPECT_LT(sat, wed - 0.05);
}

TEST(GoogleTrace, WeekendSparesBatchWork)
{
    GoogleTraceParams p;
    p.durationS = units::days(7.0);
    p.sampleIntervalS = 900.0;
    p.startDayOfWeek = 0;
    p.weekendFactor = 0.5;
    p.dayJitter = 0.0;
    p.noise = 0.0;
    auto t = makeGoogleTrace(p);
    double wed_s = t.classAt(JobClass::WebSearch,
                             units::days(2.0) + units::hours(14.0));
    double sat_s = t.classAt(JobClass::WebSearch,
                             units::days(5.0) + units::hours(14.0));
    double wed_m = t.classAt(JobClass::MapReduce,
                             units::days(2.0) + units::hours(13.0));
    double sat_m = t.classAt(JobClass::MapReduce,
                             units::days(5.0) + units::hours(13.0));
    // Search dips much more than MapReduce on the weekend (the
    // per-instant normalization lets some of the dip bleed into
    // the batch class).
    EXPECT_LT(sat_s / wed_s, 0.9);
    EXPECT_GT(sat_m / wed_m, 0.90);
}

TEST(GoogleTrace, DefaultTwoWeekdaysUnaffectedByWeekendFactor)
{
    // The paper's Nov 17-18, 2010 (Wed-Thu) span contains no
    // weekend, so the factor must not change the default trace.
    GoogleTraceParams p;
    p.weekendFactor = 0.5;
    auto a = makeGoogleTrace();
    auto b = makeGoogleTrace(p);
    EXPECT_DOUBLE_EQ(a.totalAt(units::hours(14.0)),
                     b.totalAt(units::hours(14.0)));
}

TEST(GoogleTrace, RejectsBadWeekendParams)
{
    GoogleTraceParams p;
    p.weekendFactor = 0.0;
    EXPECT_THROW(makeGoogleTrace(p), tts::FatalError);
    p = GoogleTraceParams{};
    p.startDayOfWeek = 7;
    EXPECT_THROW(makeGoogleTrace(p), tts::FatalError);
}

} // namespace
} // namespace workload
} // namespace tts
