/**
 * @file
 * Accounting invariants of the DCSim-style cluster simulator.
 *
 * The performance tests in test_dcsim.cc check that the simulator
 * behaves like the queueing system it models; these tests check that
 * its bookkeeping cannot lie, across many seeds:
 *
 *   - conservation: every offered job is completed, dropped, or still
 *     in the system when the trace ends - no job is both, none
 *     vanishes;
 *   - the offered arrival count matches the trace's integrated load
 *     within Poisson confidence bounds;
 *   - no FIFO queue ever exceeds queueCapPerServer;
 *   - round-robin keeps per-server utilization uniform at every
 *     seed, not just the one the performance test happens to use.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "util/units.hh"
#include "workload/dcsim.hh"
#include "workload/google_trace.hh"

namespace tts {
namespace workload {
namespace {

WorkloadTrace
flatTrace(double util, double duration = 3600.0)
{
    WorkloadTrace t;
    double per_class = util / 3.0;
    t.append(0.0, {per_class, per_class, per_class});
    t.append(duration, {per_class, per_class, per_class});
    return t;
}

DcSimConfig
configForSeed(std::uint64_t seed)
{
    DcSimConfig c;
    c.serverCount = 16;
    c.slotsPerServer = 8;
    c.meanServiceTimeS = 10.0;
    c.statsIntervalS = 60.0;
    c.seed = seed;
    return c;
}

TEST(DcSimInvariants, EveryOfferedJobIsAccountedFor)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        ClusterSim sim(configForSeed(seed));
        auto r = sim.run(flatTrace(0.7));
        // A job is exactly one of completed, dropped, or residual:
        // the three disjoint counters must partition the offered set.
        EXPECT_EQ(r.offeredJobs,
                  r.completedJobs + r.droppedJobs + r.residualJobs)
            << "seed " << seed;
        // At 70 % load with deep queues nothing should drop, so
        // completions cannot exceed offers.
        EXPECT_EQ(r.droppedJobs, 0u) << "seed " << seed;
        EXPECT_LE(r.completedJobs, r.offeredJobs) << "seed " << seed;
    }
}

TEST(DcSimInvariants, AccountingHoldsUnderOverloadAndDrops)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        auto cfg = configForSeed(seed);
        cfg.queueCapPerServer = 4;
        ClusterSim sim(cfg);
        auto r = sim.run(flatTrace(1.5)); // 150 % of capacity.
        EXPECT_GT(r.droppedJobs, 0u) << "seed " << seed;
        EXPECT_EQ(r.offeredJobs,
                  r.completedJobs + r.droppedJobs + r.residualJobs)
            << "seed " << seed;
    }
}

TEST(DcSimInvariants, OfferedLoadMatchesTraceWithinPoissonBounds)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        auto cfg = configForSeed(seed);
        double util = 0.6;
        double duration = 7200.0;
        ClusterSim sim(cfg);
        auto r = sim.run(flatTrace(util, duration));

        // lambda = util * servers * slots / service time; the offered
        // count is Poisson(lambda * T), so a 5-sigma band around the
        // mean catches a broken thinning loop without being flaky.
        double expected = util *
            static_cast<double>(cfg.serverCount) *
            static_cast<double>(cfg.slotsPerServer) /
            cfg.meanServiceTimeS * duration;
        double sigma = std::sqrt(expected);
        EXPECT_NEAR(static_cast<double>(r.offeredJobs), expected,
                    5.0 * sigma)
            << "seed " << seed;
    }
}

TEST(DcSimInvariants, QueueDepthNeverExceedsCap)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        auto cfg = configForSeed(seed);
        cfg.queueCapPerServer = 6;
        ClusterSim sim(cfg);
        // Overload hard enough that queues saturate.
        auto r = sim.run(flatTrace(1.8));
        EXPECT_LE(r.maxQueueDepth, cfg.queueCapPerServer)
            << "seed " << seed;
        // And the cap was actually exercised, or the bound above
        // tested nothing.
        EXPECT_EQ(r.maxQueueDepth, cfg.queueCapPerServer)
            << "seed " << seed;
    }
}

TEST(DcSimInvariants, RoundRobinUniformAcrossSeeds)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        ClusterSim sim(configForSeed(seed));
        auto r = sim.run(flatTrace(0.6));
        EXPECT_LT(r.utilizationSpread(), 0.08) << "seed " << seed;
    }
}

TEST(DcSimInvariants, DiurnalTraceConservesJobsToo)
{
    // The invariants hold on the real (time-varying) trace, where
    // the thinning branch actually rejects arrivals.
    GoogleTraceParams p;
    p.durationS = units::days(1.0);
    p.sampleIntervalS = 600.0;
    auto trace = makeGoogleTrace(p);
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        ClusterSim sim(configForSeed(seed));
        auto r = sim.run(trace);
        EXPECT_EQ(r.offeredJobs,
                  r.completedJobs + r.droppedJobs + r.residualJobs)
            << "seed " << seed;
        EXPECT_GT(r.offeredJobs, 0u);
    }
}

} // namespace
} // namespace workload
} // namespace tts
