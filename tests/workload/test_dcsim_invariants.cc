/**
 * @file
 * Accounting invariants of the DCSim-style cluster simulator.
 *
 * The performance tests in test_dcsim.cc check that the simulator
 * behaves like the queueing system it models; these tests check that
 * its bookkeeping cannot lie, across many seeds:
 *
 *   - conservation: every offered job is completed, dropped, or still
 *     in the system when the trace ends - no job is both, none
 *     vanishes;
 *   - the offered arrival count matches the trace's integrated load
 *     within Poisson confidence bounds;
 *   - no FIFO queue ever exceeds queueCapPerServer;
 *   - round-robin keeps per-server utilization uniform at every
 *     seed, not just the one the performance test happens to use;
 *   - the same bookkeeping survives randomized fault injection:
 *     crashes, recoveries, and trace gaps cannot make a job vanish
 *     or be double-counted, and a dead server completes nothing.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "fault/fault_schedule.hh"
#include "util/units.hh"
#include "workload/dcsim.hh"
#include "workload/google_trace.hh"

namespace tts {
namespace workload {
namespace {

WorkloadTrace
flatTrace(double util, double duration = 3600.0)
{
    WorkloadTrace t;
    double per_class = util / 3.0;
    t.append(0.0, {per_class, per_class, per_class});
    t.append(duration, {per_class, per_class, per_class});
    return t;
}

DcSimConfig
configForSeed(std::uint64_t seed)
{
    DcSimConfig c;
    c.serverCount = 16;
    c.slotsPerServer = 8;
    c.meanServiceTimeS = 10.0;
    c.statsIntervalS = 60.0;
    c.seed = seed;
    return c;
}

TEST(DcSimInvariants, EveryOfferedJobIsAccountedFor)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        ClusterSim sim(configForSeed(seed));
        auto r = sim.run(flatTrace(0.7));
        // A job is exactly one of completed, dropped, or residual:
        // the three disjoint counters must partition the offered set.
        EXPECT_EQ(r.offeredJobs,
                  r.completedJobs + r.droppedJobs + r.residualJobs)
            << "seed " << seed;
        // At 70 % load with deep queues nothing should drop, so
        // completions cannot exceed offers.
        EXPECT_EQ(r.droppedJobs, 0u) << "seed " << seed;
        EXPECT_LE(r.completedJobs, r.offeredJobs) << "seed " << seed;
    }
}

TEST(DcSimInvariants, AccountingHoldsUnderOverloadAndDrops)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        auto cfg = configForSeed(seed);
        cfg.queueCapPerServer = 4;
        ClusterSim sim(cfg);
        auto r = sim.run(flatTrace(1.5)); // 150 % of capacity.
        EXPECT_GT(r.droppedJobs, 0u) << "seed " << seed;
        EXPECT_EQ(r.offeredJobs,
                  r.completedJobs + r.droppedJobs + r.residualJobs)
            << "seed " << seed;
    }
}

TEST(DcSimInvariants, OfferedLoadMatchesTraceWithinPoissonBounds)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        auto cfg = configForSeed(seed);
        double util = 0.6;
        double duration = 7200.0;
        ClusterSim sim(cfg);
        auto r = sim.run(flatTrace(util, duration));

        // lambda = util * servers * slots / service time; the offered
        // count is Poisson(lambda * T), so a 5-sigma band around the
        // mean catches a broken thinning loop without being flaky.
        double expected = util *
            static_cast<double>(cfg.serverCount) *
            static_cast<double>(cfg.slotsPerServer) /
            cfg.meanServiceTimeS * duration;
        double sigma = std::sqrt(expected);
        EXPECT_NEAR(static_cast<double>(r.offeredJobs), expected,
                    5.0 * sigma)
            << "seed " << seed;
    }
}

TEST(DcSimInvariants, QueueDepthNeverExceedsCap)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        auto cfg = configForSeed(seed);
        cfg.queueCapPerServer = 6;
        ClusterSim sim(cfg);
        // Overload hard enough that queues saturate.
        auto r = sim.run(flatTrace(1.8));
        EXPECT_LE(r.maxQueueDepth, cfg.queueCapPerServer)
            << "seed " << seed;
        // And the cap was actually exercised, or the bound above
        // tested nothing.
        EXPECT_EQ(r.maxQueueDepth, cfg.queueCapPerServer)
            << "seed " << seed;
    }
}

TEST(DcSimInvariants, RoundRobinUniformAcrossSeeds)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        ClusterSim sim(configForSeed(seed));
        auto r = sim.run(flatTrace(0.6));
        EXPECT_LT(r.utilizationSpread(), 0.08) << "seed " << seed;
    }
}

TEST(DcSimInvariants, DiurnalTraceConservesJobsToo)
{
    // The invariants hold on the real (time-varying) trace, where
    // the thinning branch actually rejects arrivals.
    GoogleTraceParams p;
    p.durationS = units::days(1.0);
    p.sampleIntervalS = 600.0;
    auto trace = makeGoogleTrace(p);
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        ClusterSim sim(configForSeed(seed));
        auto r = sim.run(trace);
        EXPECT_EQ(r.offeredJobs,
                  r.completedJobs + r.droppedJobs + r.residualJobs)
            << "seed " << seed;
        EXPECT_GT(r.offeredJobs, 0u);
    }
}

fault::FaultSchedule
randomFaults(std::uint64_t seed, std::size_t server_count,
             double horizon_s)
{
    fault::FaultProfile p;
    p.serverCrashPerHour = 2.0;
    p.serverRepairMeanS = 300.0;
    p.traceGapPerHour = 2.0;
    p.traceGapMeanS = 120.0;
    // Thermal kinds ride along to prove the cluster sim skips them
    // without disturbing its accounting.
    p.coolingTripPerHour = 1.0;
    p.coolingTripFraction = 0.5;
    p.sensorDropoutPerHour = 1.0;
    return fault::generateSchedule(p, horizon_s, server_count,
                                   seed);
}

TEST(DcSimFaultInvariants, AccountingPartitionsUnderRandomFaults)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        auto cfg = configForSeed(seed);
        auto faults = randomFaults(seed * 101, cfg.serverCount,
                                   3600.0);
        ClusterSim sim(cfg);
        auto r = sim.run(flatTrace(0.8), &faults);

        EXPECT_EQ(r.offeredJobs,
                  r.completedJobs + r.droppedJobs + r.residualJobs)
            << "seed " << seed;
        EXPECT_LE(r.crashKilledJobs, r.droppedJobs)
            << "seed " << seed;
        EXPECT_LE(r.rejectedNoAliveServer, r.droppedJobs)
            << "seed " << seed;

        // Per-server completions tally with the cluster total.
        std::uint64_t by_server = 0;
        for (auto c : r.completedByServer)
            by_server += c;
        EXPECT_EQ(by_server, r.completedJobs) << "seed " << seed;

        // Utilization is a fraction of slots at every sample.
        for (double v : r.clusterUtilization.values()) {
            EXPECT_GE(v, 0.0) << "seed " << seed;
            EXPECT_LE(v, 1.0) << "seed " << seed;
        }
    }
}

TEST(DcSimFaultInvariants, DeadServerCompletesNothing)
{
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        auto cfg = configForSeed(seed);
        fault::FaultSchedule faults;
        // Server 3 dies before any arrival and never recovers.
        faults.add(0.0, fault::FaultKind::ServerCrash, 3);
        ClusterSim sim(cfg);
        auto r = sim.run(flatTrace(0.8), &faults);

        ASSERT_EQ(r.completedByServer.size(), cfg.serverCount);
        EXPECT_EQ(r.completedByServer[3], 0u) << "seed " << seed;
        // The balancer re-dispatched around the dead server.
        EXPECT_GT(r.completedJobs, 0u) << "seed " << seed;
        EXPECT_EQ(r.offeredJobs,
                  r.completedJobs + r.droppedJobs + r.residualJobs)
            << "seed " << seed;
    }
}

TEST(DcSimFaultInvariants, MidRunCrashKillsInFlightJobsExactly)
{
    auto cfg = configForSeed(7);
    fault::FaultSchedule faults;
    faults.add(1800.0, fault::FaultKind::ServerCrash, 0);
    ClusterSim sim(cfg);
    auto r = sim.run(flatTrace(0.9), &faults);

    // At 90 % load the victim had work in flight: the kill counter
    // is live and every dropped job here came from the crash.
    EXPECT_GT(r.crashKilledJobs, 0u);
    EXPECT_EQ(r.droppedJobs, r.crashKilledJobs);
    EXPECT_EQ(r.offeredJobs,
              r.completedJobs + r.droppedJobs + r.residualJobs);
    EXPECT_EQ(r.faultEventsApplied, 1u);
}

TEST(DcSimFaultInvariants, AllServersDeadRejectsArrivals)
{
    auto cfg = configForSeed(3);
    fault::FaultSchedule faults;
    for (std::size_t s = 0; s < cfg.serverCount; ++s)
        faults.add(600.0, fault::FaultKind::ServerCrash, s);
    ClusterSim sim(cfg);
    auto r = sim.run(flatTrace(0.7), &faults);

    EXPECT_GT(r.rejectedNoAliveServer, 0u);
    // Nothing completes after the massacre and nothing lingers.
    EXPECT_EQ(r.residualJobs, 0u);
    EXPECT_EQ(r.offeredJobs,
              r.completedJobs + r.droppedJobs + r.residualJobs);
}

TEST(DcSimFaultInvariants, TraceGapSuppressesOffers)
{
    auto cfg = configForSeed(5);
    // Dark input for the middle half of the run.
    fault::FaultSchedule faults;
    faults.add(900.0, fault::FaultKind::TraceGapStart);
    faults.add(2700.0, fault::FaultKind::TraceGapEnd);
    ClusterSim sim(cfg);
    auto gap = sim.run(flatTrace(0.7), &faults);
    ClusterSim base_sim(cfg);
    auto base = base_sim.run(flatTrace(0.7));

    // The gap's would-be jobs are never offered: roughly half the
    // fault-free volume, and far fewer than a no-gap run.
    EXPECT_LT(gap.offeredJobs, base.offeredJobs * 3 / 4);
    EXPECT_GT(gap.offeredJobs, 0u);
    EXPECT_EQ(gap.offeredJobs,
              gap.completedJobs + gap.droppedJobs +
                  gap.residualJobs);
}

TEST(DcSimFaultInvariants, NullScheduleMatchesLegacyPathExactly)
{
    // run(trace) and run(trace, nullptr) and an empty schedule all
    // draw the same RNG stream: bit-identical results.
    auto cfg = configForSeed(11);
    fault::FaultSchedule empty;
    auto a = ClusterSim(cfg).run(flatTrace(0.7));
    auto b = ClusterSim(cfg).run(flatTrace(0.7), nullptr);
    auto c = ClusterSim(cfg).run(flatTrace(0.7), &empty);

    for (const auto &r : {b, c}) {
        EXPECT_EQ(a.offeredJobs, r.offeredJobs);
        EXPECT_EQ(a.completedJobs, r.completedJobs);
        EXPECT_EQ(a.droppedJobs, r.droppedJobs);
        EXPECT_EQ(a.residualJobs, r.residualJobs);
        EXPECT_EQ(a.clusterUtilization.values(),
                  r.clusterUtilization.values());
    }
}

} // namespace
} // namespace workload
} // namespace tts
