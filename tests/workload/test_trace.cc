/** @file Tests for the multi-class workload trace. */

#include <gtest/gtest.h>

#include "util/error.hh"
#include "workload/trace.hh"

namespace tts {
namespace workload {
namespace {

WorkloadTrace
simpleTrace()
{
    WorkloadTrace t;
    t.append(0.0, {0.1, 0.2, 0.3});
    t.append(100.0, {0.2, 0.4, 0.6});
    t.append(200.0, {0.1, 0.2, 0.3});
    return t;
}

TEST(WorkloadTrace, TotalIsSumOfClasses)
{
    auto t = simpleTrace();
    EXPECT_NEAR(t.totalAt(0.0), 0.6, 1e-12);
    EXPECT_NEAR(t.totalAt(100.0), 1.2, 1e-12);
}

TEST(WorkloadTrace, ClassLookupInterpolates)
{
    auto t = simpleTrace();
    EXPECT_NEAR(t.classAt(allJobClasses[0], 50.0), 0.15, 1e-12);
}

TEST(WorkloadTrace, ClassSharesSumToOne)
{
    auto t = simpleTrace();
    double share = 0.0;
    for (auto c : allJobClasses)
        share += t.classShareAt(c, 42.0);
    EXPECT_NEAR(share, 1.0, 1e-12);
}

TEST(WorkloadTrace, PeakAndMean)
{
    auto t = simpleTrace();
    EXPECT_NEAR(t.peak(), 1.2, 1e-12);
    EXPECT_GT(t.mean(), 0.6);
    EXPECT_LT(t.mean(), 1.2);
}

TEST(WorkloadTrace, RejectsNegativeClassLoad)
{
    WorkloadTrace t;
    EXPECT_THROW(t.append(0.0, {-0.1, 0.2, 0.3}), FatalError);
}

TEST(WorkloadTrace, NormalizeHitsTargets)
{
    auto t = simpleTrace();
    t.normalize(0.5, 0.95);
    EXPECT_NEAR(t.mean(), 0.5, 1e-9);
    EXPECT_NEAR(t.peak(), 0.95, 1e-9);
}

TEST(WorkloadTrace, NormalizePreservesClassSums)
{
    auto t = simpleTrace();
    t.normalize(0.5, 0.95);
    for (double at : {0.0, 37.0, 100.0, 150.0}) {
        double sum = 0.0;
        for (auto c : allJobClasses)
            sum += t.classAt(c, at);
        EXPECT_NEAR(sum, t.totalAt(at), 1e-9) << at;
    }
}

TEST(WorkloadTrace, NormalizePreservesClassMix)
{
    auto t = simpleTrace();
    double share_before = t.classShareAt(allJobClasses[2], 100.0);
    t.normalize(0.5, 0.95);
    EXPECT_NEAR(t.classShareAt(allJobClasses[2], 100.0),
                share_before, 1e-9);
}

TEST(WorkloadTrace, NormalizeKeepsValuesNonNegative)
{
    auto t = simpleTrace();
    t.normalize(0.5, 0.95);
    for (auto c : allJobClasses) {
        for (double v : t.series(c).values())
            EXPECT_GE(v, 0.0);
    }
}

TEST(WorkloadTrace, NormalizeRejectsInfeasibleTargets)
{
    auto t = simpleTrace();
    // Stretching a mild trace to an extreme peak/mean ratio pushes
    // the trough below zero.
    EXPECT_THROW(t.normalize(0.1, 0.95), FatalError);
}

TEST(WorkloadTrace, NormalizeRejectsDegenerateArguments)
{
    auto t = simpleTrace();
    EXPECT_THROW(t.normalize(0.9, 0.5), FatalError);
    EXPECT_THROW(t.normalize(0.0, 0.5), FatalError);
}

TEST(WorkloadTrace, SeriesNamesMatchFigure10)
{
    WorkloadTrace t;
    t.append(0.0, {0.1, 0.1, 0.1});
    EXPECT_EQ(t.series(JobClass::Orkut).name(), "Orkut");
    EXPECT_EQ(t.series(JobClass::WebSearch).name(), "Search");
    EXPECT_EQ(t.series(JobClass::MapReduce).name(), "FBmr");
    EXPECT_EQ(t.total().name(), "Total");
}

TEST(JobClass, ToStringMatchesLegend)
{
    EXPECT_EQ(toString(JobClass::WebSearch), "Search");
    EXPECT_EQ(toString(JobClass::Orkut), "Orkut");
    EXPECT_EQ(toString(JobClass::MapReduce), "FBmr");
}

} // namespace
} // namespace workload
} // namespace tts
