/** @file Tests for the DCSim-style cluster simulator. */

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "guard/checkpoint.hh"
#include "util/error.hh"
#include "util/units.hh"
#include "workload/dcsim.hh"
#include "workload/google_trace.hh"

namespace tts {
namespace workload {
namespace {

/** A flat trace at the given utilization, one hour long. */
WorkloadTrace
flatTrace(double util, double duration = 3600.0)
{
    WorkloadTrace t;
    double per_class = util / 3.0;
    t.append(0.0, {per_class, per_class, per_class});
    t.append(duration, {per_class, per_class, per_class});
    return t;
}

DcSimConfig
smallConfig()
{
    DcSimConfig c;
    c.serverCount = 16;
    c.slotsPerServer = 8;
    c.meanServiceTimeS = 10.0;
    c.statsIntervalS = 60.0;
    c.seed = 7;
    return c;
}

TEST(ClusterSim, AchievedUtilizationTracksOffered)
{
    ClusterSim sim(smallConfig());
    auto r = sim.run(flatTrace(0.5));
    // Mean busy-slot fraction should approach the offered load.
    double mean = 0.0;
    for (double u : r.perServerUtilization)
        mean += u;
    mean /= static_cast<double>(r.perServerUtilization.size());
    EXPECT_NEAR(mean, 0.5, 0.05);
}

TEST(ClusterSim, ThroughputMatchesArrivalRate)
{
    auto cfg = smallConfig();
    ClusterSim sim(cfg);
    auto r = sim.run(flatTrace(0.5));
    // Offered: 0.5 * 16 * 8 / 10 = 6.4 jobs/s over 3600 s.
    double expected = 0.5 * 16.0 * 8.0 / 10.0 * 3600.0;
    EXPECT_NEAR(static_cast<double>(r.completedJobs), expected,
                0.08 * expected);
    EXPECT_EQ(r.droppedJobs, 0u);
}

TEST(ClusterSim, RoundRobinKeepsServersUniform)
{
    // The property the paper's representative-server scale-out
    // model relies on.
    ClusterSim sim(smallConfig());
    auto r = sim.run(flatTrace(0.6));
    EXPECT_LT(r.utilizationSpread(), 0.06);
}

TEST(ClusterSim, LatencyNearServiceTimeWhenUnderloaded)
{
    ClusterSim sim(smallConfig());
    auto r = sim.run(flatTrace(0.3));
    // Almost no queueing at 30 % load.
    EXPECT_NEAR(r.latency.mean(), 10.0, 2.0);
}

TEST(ClusterSim, OverloadQueuesAndDrops)
{
    auto cfg = smallConfig();
    cfg.queueCapPerServer = 4;
    ClusterSim sim(cfg);
    // Offered load above capacity; drops must appear.
    WorkloadTrace t;
    t.append(0.0, {0.5, 0.5, 0.5});
    t.append(3600.0, {0.5, 0.5, 0.5});
    auto r = sim.run(t);
    EXPECT_GT(r.droppedJobs, 0u);
    EXPECT_GT(r.latency.mean(), 10.0);
}

TEST(ClusterSim, HigherLoadRaisesLatency)
{
    ClusterSim a(smallConfig()), b(smallConfig());
    auto low = a.run(flatTrace(0.3));
    auto high = b.run(flatTrace(0.9));
    EXPECT_GT(high.latency.mean(), low.latency.mean());
}

TEST(ClusterSim, ClassMixFollowsTrace)
{
    // A trace with 2:1:1 class weights should produce completions in
    // roughly that proportion.
    WorkloadTrace t;
    t.append(0.0, {0.3, 0.15, 0.15});
    t.append(3600.0, {0.3, 0.15, 0.15});
    ClusterSim sim(smallConfig());
    auto r = sim.run(t);
    double total = static_cast<double>(r.completedJobs);
    EXPECT_NEAR(r.completedByClass[0] / total, 0.5, 0.05);
    EXPECT_NEAR(r.completedByClass[1] / total, 0.25, 0.05);
    EXPECT_NEAR(r.completedByClass[2] / total, 0.25, 0.05);
}

TEST(ClusterSim, DeterministicForSameSeed)
{
    ClusterSim a(smallConfig()), b(smallConfig());
    auto ra = a.run(flatTrace(0.5));
    auto rb = b.run(flatTrace(0.5));
    EXPECT_EQ(ra.completedJobs, rb.completedJobs);
    EXPECT_DOUBLE_EQ(ra.latency.mean(), rb.latency.mean());
}

TEST(ClusterSim, UtilizationSeriesFollowsDiurnalTrace)
{
    GoogleTraceParams p;
    p.durationS = units::days(1.0);
    p.sampleIntervalS = 600.0;
    auto trace = makeGoogleTrace(p);

    auto cfg = smallConfig();
    cfg.statsIntervalS = 1800.0;
    ClusterSim sim(cfg);
    auto r = sim.run(trace);
    // Cluster utilization at mid-day must exceed the pre-dawn value.
    EXPECT_GT(r.clusterUtilization.at(units::hours(14.0)),
              r.clusterUtilization.at(units::hours(4.0)) + 0.2);
}

TEST(ClusterSim, LeastLoadedBalancerAlsoUniform)
{
    ClusterSim sim(smallConfig(),
                   std::make_unique<LeastLoadedBalancer>());
    auto r = sim.run(flatTrace(0.6));
    EXPECT_LT(r.utilizationSpread(), 0.06);
}

TEST(ClusterSim, RandomBalancerHasMoreSpreadThanRoundRobin)
{
    auto cfg = smallConfig();
    cfg.seed = 11;
    ClusterSim rr(cfg);
    ClusterSim rnd(cfg, std::make_unique<RandomBalancer>(3));
    auto r_rr = rr.run(flatTrace(0.6));
    auto r_rnd = rnd.run(flatTrace(0.6));
    EXPECT_LE(r_rr.utilizationSpread(),
              r_rnd.utilizationSpread() + 0.01);
}

TEST(ClusterSim, RackMetricsAggregateServers)
{
    auto cfg = smallConfig();
    cfg.serversPerRack = 4;     // 16 servers -> 4 racks.
    ClusterSim sim(cfg);
    auto r = sim.run(flatTrace(0.5));
    ASSERT_EQ(r.perRackUtilization.size(), 4u);
    // Each rack's mean equals the mean of its servers.
    double rack0 = 0.0;
    for (int i = 0; i < 4; ++i)
        rack0 += r.perServerUtilization[i];
    EXPECT_NEAR(r.perRackUtilization[0], rack0 / 4.0, 1e-12);
}

TEST(ClusterSim, RackSpreadTighterThanServerSpread)
{
    // Aggregation averages out per-server noise.
    auto cfg = smallConfig();
    cfg.serversPerRack = 8;
    ClusterSim sim(cfg);
    auto r = sim.run(flatTrace(0.6));
    EXPECT_LE(r.rackUtilizationSpread(),
              r.utilizationSpread() + 1e-12);
}

TEST(ClusterSim, PartialLastRack)
{
    auto cfg = smallConfig();
    cfg.serverCount = 10;
    cfg.serversPerRack = 4;     // Racks of 4, 4, 2.
    ClusterSim sim(cfg);
    auto r = sim.run(flatTrace(0.5));
    EXPECT_EQ(r.perRackUtilization.size(), 3u);
}

TEST(ClusterSim, RejectsBadConfig)
{
    DcSimConfig c;
    c.serverCount = 0;
    EXPECT_THROW(ClusterSim sim(c), FatalError);
    c = DcSimConfig{};
    c.meanServiceTimeS = 0.0;
    EXPECT_THROW(ClusterSim sim(c), FatalError);
}

TEST(ClusterSim, RejectsShortTrace)
{
    ClusterSim sim(smallConfig());
    WorkloadTrace t;
    t.append(0.0, {0.1, 0.1, 0.1});
    EXPECT_THROW(sim.run(t), FatalError);
}

void
expectSameResult(const DcSimResult &a, const DcSimResult &b)
{
    EXPECT_EQ(a.clusterUtilization.times(),
              b.clusterUtilization.times());
    EXPECT_EQ(a.clusterUtilization.values(),
              b.clusterUtilization.values());
    EXPECT_EQ(a.throughput.values(), b.throughput.values());
    EXPECT_EQ(a.perServerUtilization, b.perServerUtilization);
    EXPECT_EQ(a.perRackUtilization, b.perRackUtilization);
    EXPECT_EQ(a.completedJobs, b.completedJobs);
    EXPECT_EQ(a.droppedJobs, b.droppedJobs);
    EXPECT_EQ(a.offeredJobs, b.offeredJobs);
    EXPECT_EQ(a.residualJobs, b.residualJobs);
    EXPECT_EQ(a.maxQueueDepth, b.maxQueueDepth);
    EXPECT_EQ(a.completedByServer, b.completedByServer);
    EXPECT_EQ(a.latency.count(), b.latency.count());
    EXPECT_EQ(a.latency.mean(), b.latency.mean());
    EXPECT_EQ(a.latency.max(), b.latency.max());
}

TEST(ClusterSimEngine, PausedRunMatchesUninterruptedBitwise)
{
    auto trace = flatTrace(0.6);
    ClusterSim reference(smallConfig());
    DcSimResult want = reference.run(trace);

    // Same simulation, paused every 100 simulated seconds.
    RoundRobinBalancer balancer;
    ClusterSimEngine engine(smallConfig(), &balancer, trace,
                            nullptr);
    double t_stop = 100.0;
    while (!engine.runUntil(t_stop))
        t_stop += 100.0;
    expectSameResult(engine.take(), want);
}

TEST(ClusterSimEngine, SaveRestoreRoundTripsMidRun)
{
    auto trace = flatTrace(0.7);

    // Run A: pause mid-run, checkpoint, keep going to the end.
    RoundRobinBalancer bal_a;
    ClusterSimEngine a(smallConfig(), &bal_a, trace, nullptr);
    ASSERT_FALSE(a.runUntil(1700.0));
    guard::CheckpointWriter w;
    a.save(w);
    std::string doc = w.finish();
    ASSERT_TRUE(a.runUntil(
        std::numeric_limits<double>::infinity()));
    DcSimResult want = a.take();

    // Run B: a fresh engine restored from the checkpoint.
    RoundRobinBalancer bal_b;
    ClusterSimEngine b(smallConfig(), &bal_b, trace, nullptr);
    guard::CheckpointReader r(doc, "test");
    b.restore(r);
    r.expectEnd();
    ASSERT_TRUE(b.runUntil(
        std::numeric_limits<double>::infinity()));
    expectSameResult(b.take(), want);
}

TEST(ClusterSimEngine, RestoreRejectsCorruptDocument)
{
    auto trace = flatTrace(0.5);
    RoundRobinBalancer bal;
    ClusterSimEngine a(smallConfig(), &bal, trace, nullptr);
    ASSERT_FALSE(a.runUntil(500.0));
    guard::CheckpointWriter w;
    a.save(w);
    std::string doc = w.finish();
    std::size_t digit = doc.find("rng.s = 4 ");
    ASSERT_NE(digit, std::string::npos);
    doc[digit + 10] = doc[digit + 10] == '1' ? '2' : '1';

    RoundRobinBalancer bal_b;
    ClusterSimEngine b(smallConfig(), &bal_b, trace, nullptr);
    EXPECT_THROW(
        {
            guard::CheckpointReader r(doc, "test");
            b.restore(r);
        },
        FatalError);
}

} // namespace
} // namespace workload
} // namespace tts
