/** @file Tests for load balancing policies. */

#include <gtest/gtest.h>

#include "workload/load_balancer.hh"

namespace tts {
namespace workload {
namespace {

TEST(RoundRobin, CyclesThroughServers)
{
    RoundRobinBalancer rr;
    std::vector<std::size_t> depths(4, 0);
    for (std::size_t i = 0; i < 12; ++i)
        EXPECT_EQ(rr.pick(depths), i % 4);
}

TEST(RoundRobin, IgnoresQueueDepths)
{
    RoundRobinBalancer rr;
    std::vector<std::size_t> depths{100, 0, 0};
    EXPECT_EQ(rr.pick(depths), 0u);
    EXPECT_EQ(rr.pick(depths), 1u);
}

TEST(RoundRobin, UniformAssignment)
{
    RoundRobinBalancer rr;
    std::vector<std::size_t> depths(7, 0);
    std::vector<int> counts(7, 0);
    for (int i = 0; i < 7000; ++i)
        ++counts[rr.pick(depths)];
    for (int c : counts)
        EXPECT_EQ(c, 1000);
}

TEST(RandomBalancer, StaysInRange)
{
    RandomBalancer rb(5);
    std::vector<std::size_t> depths(5, 0);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rb.pick(depths), 5u);
}

TEST(RandomBalancer, RoughlyUniform)
{
    RandomBalancer rb(7);
    std::vector<std::size_t> depths(4, 0);
    std::vector<int> counts(4, 0);
    for (int i = 0; i < 8000; ++i)
        ++counts[rb.pick(depths)];
    for (int c : counts)
        EXPECT_NEAR(c, 2000, 300);
}

TEST(LeastLoaded, PicksShortestQueue)
{
    LeastLoadedBalancer ll;
    std::vector<std::size_t> depths{3, 1, 4, 1};
    EXPECT_EQ(ll.pick(depths), 1u);  // First of the ties.
}

TEST(LeastLoaded, EmptyServersPreferred)
{
    LeastLoadedBalancer ll;
    std::vector<std::size_t> depths{5, 0, 2};
    EXPECT_EQ(ll.pick(depths), 1u);
}

TEST(Balancers, NamesAreDistinct)
{
    RoundRobinBalancer rr;
    RandomBalancer rb(1);
    LeastLoadedBalancer ll;
    EXPECT_STRNE(rr.name(), rb.name());
    EXPECT_STRNE(rb.name(), ll.name());
}

} // namespace
} // namespace workload
} // namespace tts
