/** @file Tests for the CRC-protected checkpoint format. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "guard/checkpoint.hh"
#include "util/error.hh"

namespace tts {
namespace guard {
namespace {

TEST(Crc32, MatchesTheStandardCheckValue)
{
    // The canonical CRC-32 (IEEE 802.3) check value.
    EXPECT_EQ(crc32("123456789"), 0xcbf43926u);
    EXPECT_EQ(crc32(""), 0x00000000u);
}

TEST(Checkpoint, RoundTripsEveryValueType)
{
    CheckpointWriter w;
    w.section("alpha");
    w.put("pi", 3.14159265358979312);
    w.put("tiny", 2.2250738585072014e-308);  // DBL_MIN.
    w.put("negzero", -0.0);
    w.putU64("big", 18446744073709551615ull);
    w.putI64("neg", -42);
    w.putBool("yes", true);
    w.putBool("no", false);
    w.putToken("name", "crash_fan_storm");
    w.putVector("vals", {1.0, -2.5e-7, 0.083927817053314313});
    w.putVector("empty", {});
    w.section("beta");
    w.putU64Vector("ids", {0, 7, 18446744073709551615ull});

    CheckpointReader r(w.finish(), "test");
    r.expectSection("alpha");
    EXPECT_EQ(r.expect("pi"), 3.14159265358979312);
    EXPECT_EQ(r.expect("tiny"), 2.2250738585072014e-308);
    EXPECT_EQ(r.expect("negzero"), 0.0);
    EXPECT_EQ(r.expectU64("big"), 18446744073709551615ull);
    EXPECT_EQ(r.expectI64("neg"), -42);
    EXPECT_TRUE(r.expectBool("yes"));
    EXPECT_FALSE(r.expectBool("no"));
    EXPECT_EQ(r.expectToken("name"), "crash_fan_storm");
    std::vector<double> vals = r.expectVector("vals");
    ASSERT_EQ(vals.size(), 3u);
    EXPECT_EQ(vals[2], 0.083927817053314313);  // Bit-exact.
    EXPECT_TRUE(r.expectVector("empty").empty());
    EXPECT_TRUE(r.peekSection("beta"));
    EXPECT_FALSE(r.peekSection("gamma"));
    r.expectSection("beta");
    std::vector<std::uint64_t> ids = r.expectU64Vector("ids");
    ASSERT_EQ(ids.size(), 3u);
    EXPECT_EQ(ids[2], 18446744073709551615ull);
    r.expectEnd();
}

TEST(Checkpoint, SingleBitCorruptionIsDetected)
{
    CheckpointWriter w;
    w.section("s");
    w.put("value", 1234.5);
    std::string doc = w.finish();
    std::size_t pos = doc.find("1234.5");
    ASSERT_NE(pos, std::string::npos);
    doc[pos] = '7';
    try {
        CheckpointReader r(doc, "test");
        FAIL() << "corrupt document accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("crc"),
                  std::string::npos);
    }
}

TEST(Checkpoint, CrcMismatchNamesExpectedAndActualValues)
{
    // A one-byte flip must be rejected with a diagnostic carrying
    // both sides of the comparison: the CRC stored in the trailer
    // and the CRC computed over the (corrupted) body.  "Mismatch"
    // alone leaves an operator unable to tell a damaged body from a
    // damaged trailer.
    CheckpointWriter w;
    w.section("s");
    w.put("value", 1234.5);
    std::string doc = w.finish();
    std::size_t pos = doc.find("1234.5");
    ASSERT_NE(pos, std::string::npos);
    doc[pos] = '7';

    // Recompute both sides independently of the reader.
    std::size_t trailer = doc.rfind("crc32 ");
    ASSERT_NE(trailer, std::string::npos);
    const std::string expected_hex = doc.substr(trailer + 6, 8);
    char actual_hex[16];
    std::snprintf(actual_hex, sizeof(actual_hex), "%08x",
                  crc32(doc.substr(0, trailer)));
    ASSERT_NE(expected_hex, actual_hex);

    try {
        CheckpointReader r(doc, "diag-test");
        FAIL() << "corrupt document accepted";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("expected " + expected_hex),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find(std::string("actual ") + actual_hex),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("diag-test"), std::string::npos) << msg;
    }
}

TEST(Checkpoint, TruncationIsDetected)
{
    CheckpointWriter w;
    w.section("s");
    for (int i = 0; i < 10; ++i)
        w.put("k" + std::to_string(i), i * 1.5);
    std::string doc = w.finish();
    // Drop a middle line but keep the valid-looking trailer.
    std::size_t a = doc.find("k4 = ");
    std::size_t b = doc.find("k5 = ");
    ASSERT_NE(a, std::string::npos);
    std::string truncated = doc.substr(0, a) + doc.substr(b);
    EXPECT_THROW(CheckpointReader r(truncated, "test"), FatalError);
}

TEST(Checkpoint, UnsupportedVersionIsRejected)
{
    // Hand-build a v999 document with a valid CRC: the version
    // check, not the CRC check, must reject it.
    std::string body = "tts-checkpoint v999\nsection s\n";
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%08x", crc32(body));
    std::string doc = body + "crc32 " + buf + "\n";
    try {
        CheckpointReader r(doc, "test");
        FAIL() << "future version accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("header"),
                  std::string::npos);
    }
}

TEST(Checkpoint, MissingTrailerIsRejected)
{
    EXPECT_THROW(CheckpointReader r("tts-checkpoint v1\n", "test"),
                 FatalError);
}

TEST(Checkpoint, ReaderEnforcesKeyAndSectionOrder)
{
    CheckpointWriter w;
    w.section("s");
    w.put("a", 1.0);
    w.put("b", 2.0);
    std::string doc = w.finish();

    CheckpointReader r1(doc, "test");
    EXPECT_THROW(r1.expectSection("wrong"), FatalError);

    CheckpointReader r2(doc, "test");
    r2.expectSection("s");
    EXPECT_THROW(r2.expect("b"), FatalError);  // Out of order.

    CheckpointReader r3(doc, "test");
    r3.expectSection("s");
    EXPECT_EQ(r3.expect("a"), 1.0);
    EXPECT_THROW(r3.expectEnd(), FatalError);  // Unread content.
}

TEST(Checkpoint, ReaderRejectsTypeConfusion)
{
    CheckpointWriter w;
    w.section("s");
    w.put("fractional", 1.5);
    w.putToken("word", "hello");
    std::string doc = w.finish();
    CheckpointReader r(doc, "test");
    r.expectSection("s");
    EXPECT_THROW(r.expectU64("fractional"), FatalError);
    // After the throw the reader is unusable by contract; build a
    // fresh one to check the bool path.
    CheckpointReader r2(doc, "test");
    r2.expectSection("s");
    r2.expect("fractional");
    EXPECT_THROW(r2.expectBool("word"), FatalError);
}

TEST(Checkpoint, TokensMustNotContainWhitespace)
{
    CheckpointWriter w;
    EXPECT_THROW(w.putToken("k", "two words"), FatalError);
    EXPECT_THROW(w.putToken("k", "tab\tseparated"), FatalError);
}

TEST(Checkpoint, VectorLengthMismatchIsRejected)
{
    // A vector claiming more entries than present must not read into
    // the following line.
    std::string body =
        "tts-checkpoint v1\nsection s\nv = 3 1.0 2.0\nnext = 9\n";
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%08x", crc32(body));
    CheckpointReader r(body + "crc32 " + buf + "\n", "test");
    r.expectSection("s");
    EXPECT_THROW(r.expectVector("v"), FatalError);
}

TEST(Checkpoint, FileRoundTripIsAtomicAndExact)
{
    const std::string path =
        testing::TempDir() + "/tts_checkpoint_test.tts";
    CheckpointWriter w;
    w.section("s");
    w.put("x", 0.1 + 0.2);  // 0.30000000000000004 round-trips.
    writeCheckpointFile(path, w.finish());
    // The temp staging file must not linger after the rename.
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());

    CheckpointReader r(readCheckpointFile(path), path);
    r.expectSection("s");
    EXPECT_EQ(r.expect("x"), 0.1 + 0.2);
    r.expectEnd();
    std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileThrows)
{
    EXPECT_THROW(
        readCheckpointFile("/nonexistent/path/checkpoint.tts"),
        FatalError);
}

} // namespace
} // namespace guard
} // namespace tts
