/**
 * @file
 * Kill-and-resume integration tests: a resilience run interrupted at
 * a checkpoint boundary and resumed in a fresh runner (simulating a
 * new process) must produce a result bit-identical to an
 * uninterrupted run, at 1 and 8 worker threads; likewise a
 * checkpointed sweep capped mid-way and rerun against its journal.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/resilience_study.hh"
#include "exec/parallel.hh"
#include "exec/sweep_resume.hh"
#include "fault/fault_schedule.hh"
#include "server/server_spec.hh"
#include "util/error.hh"

namespace tts {
namespace core {
namespace {

/** A scenario small enough to restart a dozen times in a test. */
ResilienceScenario
smallScenario()
{
    ResilienceScenario s;
    s.name = "resume_test";
    s.horizonS = 1800.0;
    s.utilization = 0.8;
    s.faults.add(300.0, fault::FaultKind::CoolingTrip,
                 fault::FaultEvent::noTarget, 1.0);
    return s;
}

ResilienceConfig
smallOptions()
{
    ResilienceConfig opt;
    opt.run.serverCount = 64;
    opt.cluster.serverCount = 8;
    opt.stepS = 10.0;
    return opt;
}

void
expectSameSeries(const TimeSeries &a, const TimeSeries &b)
{
    EXPECT_EQ(a.times(), b.times());
    EXPECT_EQ(a.values(), b.values());
}

void
expectSameArm(const ResilienceArm &a, const ResilienceArm &b)
{
    expectSameSeries(a.roomAirC, b.roomAirC);
    expectSameSeries(a.sensedInletC, b.sensedInletC);
    expectSameSeries(a.waxMelt, b.waxMelt);
    expectSameSeries(a.throughputRel, b.throughputRel);
    EXPECT_EQ(a.rideThroughS, b.rideThroughS);
    EXPECT_EQ(a.hitLimit, b.hitLimit);
    EXPECT_EQ(a.throughputRetention, b.throughputRetention);
    EXPECT_EQ(a.throttledS, b.throttledS);
    EXPECT_EQ(a.guard.advances, b.guard.advances);
    EXPECT_EQ(a.guard.steps, b.guard.steps);
    EXPECT_EQ(a.guard.audits, b.guard.audits);
    EXPECT_EQ(a.guard.sentinelTrips, b.guard.sentinelTrips);
    EXPECT_EQ(a.guard.auditTrips, b.guard.auditTrips);
    EXPECT_EQ(a.guard.retries, b.guard.retries);
    EXPECT_EQ(a.guard.fallbacks, b.guard.fallbacks);
    EXPECT_EQ(a.guard.worstResidualJ, b.guard.worstResidualJ);
}

void
expectSameResult(const ResilienceResult &a, const ResilienceResult &b)
{
    EXPECT_EQ(a.scenario, b.scenario);
    expectSameArm(a.noWax, b.noWax);
    expectSameArm(a.withWax, b.withWax);
    expectSameSeries(a.cluster.clusterUtilization,
                     b.cluster.clusterUtilization);
    EXPECT_EQ(a.cluster.completedJobs, b.cluster.completedJobs);
    EXPECT_EQ(a.cluster.droppedJobs, b.cluster.droppedJobs);
    EXPECT_EQ(a.cluster.offeredJobs, b.cluster.offeredJobs);
    EXPECT_EQ(a.cluster.residualJobs, b.cluster.residualJobs);
    EXPECT_EQ(a.cluster.perServerUtilization,
              b.cluster.perServerUtilization);
    EXPECT_EQ(a.cluster.latency.count(), b.cluster.latency.count());
    EXPECT_EQ(a.cluster.latency.mean(), b.cluster.latency.mean());
}

/**
 * Run the small scenario killed every 350 simulated seconds, with a
 * fresh runner per attempt (nothing carries over but the checkpoint
 * file), and return the final result.
 */
ResilienceResult
chunkedRun(const std::string &path)
{
    std::remove(path.c_str());
    CheckpointPolicy policy;
    policy.path = path;
    policy.checkpointEveryS = 200.0;
    policy.stopAfterS = 350.0;

    // Both thermal arms plus the cluster phase advance ~5400
    // simulated seconds in total; cap the restarts defensively.
    for (int attempt = 0; attempt < 40; ++attempt) {
        ResilienceRunner runner(server::rd330Spec(), smallScenario(),
                                smallOptions());
        if (runner.run(policy)) {
            std::remove(path.c_str());
            return runner.take();
        }
    }
    ADD_FAILURE() << "scenario did not finish within 40 restarts";
    std::remove(path.c_str());
    return ResilienceResult{};
}

TEST(CheckpointResume, KilledRunnerResumesBitIdentically)
{
    const ResilienceResult want = runResilienceStudy(
        server::rd330Spec(), smallScenario(), smallOptions());
    // The trip must bite (the room heats), so the checkpoint carries
    // a non-trivial injector cursor and thermal state.
    ASSERT_GT(want.noWax.roomAirC.values().back(),
              want.noWax.roomAirC.values().front() + 1.0);

    const std::string base = testing::TempDir() + "/tts_resume_";
    exec::setGlobalThreads(1);
    expectSameResult(chunkedRun(base + "t1.tts"), want);
    exec::setGlobalThreads(8);
    expectSameResult(chunkedRun(base + "t8.tts"), want);
    exec::setGlobalThreads(1);
}

TEST(CheckpointResume, RunnerRefusesAForeignCheckpoint)
{
    const std::string path =
        testing::TempDir() + "/tts_resume_foreign.tts";
    std::remove(path.c_str());

    // Checkpoint scenario A, then try to resume scenario B from it.
    CheckpointPolicy policy;
    policy.path = path;
    policy.stopAfterS = 350.0;
    ResilienceRunner a(server::rd330Spec(), smallScenario(),
                       smallOptions());
    ASSERT_FALSE(a.run(policy));

    ResilienceScenario other = smallScenario();
    other.name = "some_other_scenario";
    ResilienceRunner b(server::rd330Spec(), other, smallOptions());
    EXPECT_THROW(b.run(policy), FatalError);
    std::remove(path.c_str());
}

TEST(CheckpointResume, CappedSweepResumesWithoutRerunningTasks)
{
    const std::size_t n = 7;
    std::atomic<int> calls{0};
    auto task = [&calls](std::size_t i) {
        ++calls;
        std::map<std::string, double> row;
        row["index"] = static_cast<double>(i);
        row["value"] = static_cast<double>(i * i) + 0.25;
        return row;
    };

    exec::SweepCheckpointOptions plain;  // No journal.
    exec::SweepResult want = exec::checkpointedMap(n, task, plain);
    ASSERT_TRUE(want.complete);
    EXPECT_EQ(calls.load(), static_cast<int>(n));

    const std::string path =
        testing::TempDir() + "/tts_resume_sweep.tts";
    std::remove(path.c_str());
    exec::SweepCheckpointOptions capped;
    capped.path = path;
    capped.maxTasks = 2;

    calls = 0;
    exec::setGlobalThreads(8);
    exec::SweepResult partial;
    int rounds = 0;
    do {
        partial = exec::checkpointedMap(n, task, capped);
        ++rounds;
        ASSERT_LE(rounds, 8) << "sweep failed to converge";
    } while (!partial.complete);
    exec::setGlobalThreads(1);

    // ceil(7 / 2) = 4 capped rounds, 7 task invocations total: the
    // journal, not re-execution, supplied completed rows.
    EXPECT_EQ(rounds, 4);
    EXPECT_EQ(calls.load(), static_cast<int>(n));
    ASSERT_EQ(partial.rows.size(), want.rows.size());
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(partial.rows[i], want.rows[i]) << i;

    // A fresh call against the finished journal re-runs nothing.
    calls = 0;
    exec::SweepCheckpointOptions finished;
    finished.path = path;
    exec::SweepResult again = exec::checkpointedMap(n, task, finished);
    EXPECT_TRUE(again.complete);
    EXPECT_EQ(calls.load(), 0);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(again.rows[i], want.rows[i]) << i;
    std::remove(path.c_str());
}

} // namespace
} // namespace core
} // namespace tts
