/**
 * @file
 * Convergence-order checks for the thermal steppers.
 *
 * The RK4 solve behind ServerThermalNetwork::advance() must actually
 * deliver fourth-order accuracy on the wax-bearing network - a silent
 * order collapse (a kink crossed mid-step, a stage fed the wrong
 * time) would not fail any physics test but would quietly inflate
 * every study's discretization error.  The order is measured by
 * dt-halving against a fine-step reference while the wax is held
 * inside its melt window, where the enthalpy-temperature curve is
 * smooth.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "pcm/material.hh"
#include "pcm/pcm_element.hh"
#include "thermal/network.hh"
#include "util/integrator.hh"

namespace tts {
namespace thermal {
namespace {

AirflowModel
testAirflow()
{
    FanCurve fan{400.0, 0.02};
    return AirflowModel(fan, 0.010, 0.019);
}

/**
 * A cpu node plus a wax bank in the downstream zone - the smallest
 * network where the PCM nonlinearity participates in the solve.
 * Members own the bank and element so the network's raw pointer
 * stays valid for the rig's lifetime.
 */
struct WaxRig
{
    pcm::ContainerBank bank;
    pcm::PcmElement wax;
    ServerThermalNetwork net;

    WaxRig()
        : bank(pcm::BoxSpec{0.1, 0.08, 0.02}, 2, 0.019),
          wax(pcm::commercialParaffin(), bank, 40.0, 25.0),
          net(testAirflow(), 2, 25.0)
    {
        int cpu = net.addCapacityNode(
            "cpu", 500.0, ConvectiveCoupling{6.0, 0.53, 0.8}, 0,
            25.0);
        net.addPcmNode("wax", &wax, 1);
        net.setZonePlumeFraction(1, 0.4);
        net.setNodePower(cpu, 250.0);
    }
};

TEST(ConvergenceOrder, NetworkRk4IsFourthOrderInsideTheMeltWindow)
{
    // Warm up until the wax sits mid-melt, away from the onset and
    // completion kinks where the order would legitimately drop.
    WaxRig warm;
    warm.net.advance(600.0, 4.0);
    ASSERT_GT(warm.wax.meltFraction(), 0.1);
    ASSERT_LT(warm.wax.meltFraction(), 0.8);
    const std::vector<double> h0 = warm.net.enthalpies();

    auto solve = [&h0](double dt) {
        WaxRig rig;
        rig.net.setEnthalpies(h0);
        rig.net.advance(64.0, dt);
        return rig.net.enthalpies();
    };
    const std::vector<double> ref = solve(0.25);
    auto errorAt = [&](double dt) {
        std::vector<double> h = solve(dt);
        double e = 0.0;
        for (std::size_t i = 0; i < h.size(); ++i)
            e = std::max(e, std::abs(h[i] - ref[i]));
        return e;
    };

    double e8 = errorAt(8.0);
    double e4 = errorAt(4.0);
    double e2 = errorAt(2.0);
    ASSERT_GT(e8, 0.0);
    ASSERT_GT(e4, 0.0);
    ASSERT_GT(e2, 0.0);
    // Halving dt must cut the error by ~2^4; accept >= 3 to leave
    // headroom for the reference's own error and FP noise.
    double order_84 = std::log2(e8 / e4);
    double order_42 = std::log2(e4 / e2);
    EXPECT_GT(order_84, 3.0)
        << "e8=" << e8 << " e4=" << e4 << " e2=" << e2;
    EXPECT_GT(order_42, 3.0)
        << "e8=" << e8 << " e4=" << e4 << " e2=" << e2;
}

TEST(ConvergenceOrder, AdaptiveMatchesFixedStepAcrossAMeltOnset)
{
    // A lumped mass whose heat capacity jumps 11x at 40 C - the
    // sharpest idealization of a melt onset.  A tight-tolerance
    // adaptive solve must land where a fine fixed-step RK4 solve
    // lands, while spending orders of magnitude fewer steps on the
    // smooth stretches either side of the kink.
    OdeRhs onset = [](double, const std::vector<double> &y,
                      std::vector<double> &dy) {
        double cap = y[0] < 40.0 ? 500.0 : 5500.0;
        dy.assign(1, 100.0 / cap);
    };

    std::vector<double> fixed{38.0};
    RungeKutta4 rk4;
    integrate(rk4, onset, 0.0, 200.0, 0.01, fixed);

    std::vector<double> adaptive{38.0};
    AdaptiveRk23 rk23(1e-10, 1e-12);
    std::size_t steps = rk23.integrate(onset, 0.0, 200.0, adaptive);

    // Exact: 10 s at 0.2 K/s to reach 40 C, then 190 s at 100/5500.
    double exact = 40.0 + 190.0 * 100.0 / 5500.0;
    EXPECT_NEAR(fixed[0], exact, 5e-3);
    EXPECT_NEAR(adaptive[0], fixed[0], 5e-3);
    EXPECT_LT(steps, 2000u);  // vs 20000 fixed steps.
}

} // namespace
} // namespace thermal
} // namespace tts
