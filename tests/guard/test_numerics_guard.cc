/** @file Tests for the guarded thermal advance (audit + retry). */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "guard/numerics.hh"
#include "thermal/network.hh"
#include "util/error.hh"

namespace tts {
namespace thermal {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

AirflowModel
testAirflow()
{
    FanCurve fan{400.0, 0.02};
    return AirflowModel(fan, 0.010, 0.019);
}

ConvectiveCoupling
coupling(double ua0)
{
    return ConvectiveCoupling{ua0, 0.53, 0.8};
}

/** Two-node network under constant power, ready to advance. */
ServerThermalNetwork
testNetwork()
{
    ServerThermalNetwork net(testAirflow(), 2, 25.0);
    int cpu = net.addCapacityNode("cpu", 500.0, coupling(5.0), 0,
                                  25.0);
    int dram = net.addCapacityNode("dram", 800.0, coupling(4.0), 1,
                                   25.0);
    net.setNodePower(cpu, 60.0);
    net.setNodePower(dram, 30.0);
    return net;
}

TEST(NumericsGuard, GuardedAdvanceIsBitIdenticalToUnguarded)
{
    ServerThermalNetwork guarded = testNetwork();
    ServerThermalNetwork bare = testNetwork();
    guard::GuardConfig off;
    off.enabled = false;
    bare.setGuardConfig(off);

    for (int i = 0; i < 20; ++i) {
        guarded.advance(60.0, 1.0);
        bare.advance(60.0, 1.0);
    }
    // The audit rides in an appended accumulator entry; the node
    // entries see the identical arithmetic, so a healthy guarded
    // solve is not merely close to the unguarded one - it is the
    // same to the last bit.
    EXPECT_EQ(guarded.enthalpies(), bare.enthalpies());
}

TEST(NumericsGuard, HealthyRunAuditsEveryIntervalAndNeverTrips)
{
    ServerThermalNetwork net = testNetwork();
    for (int i = 0; i < 5; ++i)
        net.advance(60.0, 1.0);
    const guard::GuardCounters &c = net.guardCounters();
    EXPECT_EQ(c.advances, 5u);
    EXPECT_EQ(c.audits, 5u);
    EXPECT_EQ(c.steps, 300u);  // 60 internal steps per interval.
    EXPECT_EQ(c.sentinelTrips, 0u);
    EXPECT_EQ(c.auditTrips, 0u);
    EXPECT_EQ(c.retries, 0u);
    EXPECT_EQ(c.fallbacks, 0u);
    // The residual of a healthy solve is pure FP rounding, orders of
    // magnitude below the audit tolerance.
    EXPECT_LT(c.worstResidualJ, 1e-3);
    if (c.worstResidualJ == 0.0)
        EXPECT_EQ(c.worstResidualTimeS, -1.0);
    else
        EXPECT_GE(c.worstResidualTimeS, 0.0);
}

TEST(NumericsGuard, NanCorruptionTripsSentinelAndRetries)
{
    ServerThermalNetwork net = testNetwork();
    net.setGuardTestCorruptor(
        [](std::vector<double> &aug) { aug[0] = kNan; },
        /*once=*/true);
    net.advance(60.0, 1.0);  // Must survive via retry.
    const guard::GuardCounters &c = net.guardCounters();
    EXPECT_EQ(c.sentinelTrips, 1u);
    EXPECT_EQ(c.auditTrips, 0u);
    EXPECT_EQ(c.retries, 1u);
    EXPECT_EQ(c.fallbacks, 0u);
    for (double h : net.enthalpies())
        EXPECT_TRUE(std::isfinite(h));
}

TEST(NumericsGuard, FiniteCorruptionTripsTheEnergyAudit)
{
    // A finite-but-wrong state is invisible to NaN checks; only the
    // conservation audit can see it.
    ServerThermalNetwork net = testNetwork();
    net.setGuardTestCorruptor(
        [](std::vector<double> &aug) { aug[0] += 1e12; },
        /*once=*/true);
    net.advance(60.0, 1.0);
    const guard::GuardCounters &c = net.guardCounters();
    EXPECT_EQ(c.auditTrips, 1u);
    EXPECT_EQ(c.sentinelTrips, 0u);
    EXPECT_EQ(c.retries, 1u);
    EXPECT_GE(c.worstResidualJ, 1e11);
}

TEST(NumericsGuard, PersistentCorruptionExhaustsAndNamesTheNode)
{
    ServerThermalNetwork net = testNetwork();
    net.setGuardTestCorruptor(
        [](std::vector<double> &aug) { aug[0] += 1e12; },
        /*once=*/false);
    try {
        net.advance(60.0, 1.0);
        FAIL() << "persistent corruption survived the guard";
    } catch (const guard::NumericsError &e) {
        EXPECT_EQ(e.node(), "cpu");  // Worst-moving node.
        EXPECT_NE(std::string(e.what()).find("retries exhausted"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("cpu"),
                  std::string::npos);
    }
    const guard::GuardCounters &c = net.guardCounters();
    EXPECT_EQ(c.retries,
              static_cast<std::uint64_t>(net.guardConfig().maxRetries));
    EXPECT_EQ(c.fallbacks, 1u);
    // Failed attempts must not leak into the committed state.
    for (double h : net.enthalpies())
        EXPECT_TRUE(std::isfinite(h));
}

TEST(NumericsGuard, AdaptiveFallbackRescuesAfterRetriesExhaust)
{
    ServerThermalNetwork net = testNetwork();
    const std::uint64_t budget = net.guardConfig().maxRetries + 1;
    auto calls = std::make_shared<std::uint64_t>(0);
    net.setGuardTestCorruptor(
        [calls, budget](std::vector<double> &aug) {
            if ((*calls)++ < budget)
                aug[0] = kNan;
        },
        /*once=*/false);
    net.advance(60.0, 1.0);  // Fixed-step attempts all poisoned.
    const guard::GuardCounters &c = net.guardCounters();
    EXPECT_EQ(c.retries,
              static_cast<std::uint64_t>(net.guardConfig().maxRetries));
    EXPECT_EQ(c.fallbacks, 1u);
    EXPECT_EQ(c.sentinelTrips, budget);
    for (double h : net.enthalpies())
        EXPECT_TRUE(std::isfinite(h));
}

TEST(NumericsGuard, ZeroRetriesNoFallbackFailsFast)
{
    ServerThermalNetwork net = testNetwork();
    guard::GuardConfig strict = net.guardConfig();
    strict.maxRetries = 0;
    strict.fallbackAdaptive = false;
    net.setGuardConfig(strict);
    net.setGuardTestCorruptor(
        [](std::vector<double> &aug) { aug[0] = kNan; },
        /*once=*/false);
    EXPECT_THROW(net.advance(60.0, 1.0), guard::NumericsError);
    EXPECT_EQ(net.guardCounters().retries, 0u);
    EXPECT_EQ(net.guardCounters().fallbacks, 0u);
}

TEST(NumericsGuard, AirWalkNamesANonFiniteNode)
{
    ServerThermalNetwork net = testNetwork();
    guard::GuardConfig off;
    off.enabled = false;
    net.setGuardConfig(off);
    std::vector<double> h = net.enthalpies();
    h[1] = kNan;  // "dram"
    net.setEnthalpies(h);
    try {
        net.advance(1.0, 1.0);
        FAIL() << "NaN enthalpy not detected";
    } catch (const guard::NumericsError &e) {
        EXPECT_EQ(e.node(), "dram");
        EXPECT_EQ(e.zone(), 1);
    }
}

TEST(NumericsGuard, ErrorCarriesDiagnosticFields)
{
    guard::NumericsError e("boom", "cpu", 2, 123.5, -7.25e3, 4);
    EXPECT_EQ(e.node(), "cpu");
    EXPECT_EQ(e.zone(), 2);
    EXPECT_EQ(e.timeS(), 123.5);
    EXPECT_EQ(e.residualJ(), -7.25e3);
    EXPECT_EQ(e.stateIndex(), 4);
    EXPECT_NE(std::string(e.what()).find("boom"),
              std::string::npos);
}

TEST(NumericsGuard, RolledBackAttemptsContributeNoAcceptedSteps)
{
    // Regression: the step counter used to accumulate before the
    // energy audit could reject the attempt, so a tripped interval
    // counted its rolled-back steps on top of the retry's.  An
    // advance(4, 1) whose first attempt trips must report only the
    // 8 accepted retry steps at dt/2 - not 4 + 8.
    ServerThermalNetwork net = testNetwork();
    net.setGuardTestCorruptor(
        [](std::vector<double> &aug) { aug[0] += 1e12; },
        /*once=*/true);
    net.advance(4.0, 1.0);
    const guard::GuardCounters &c = net.guardCounters();
    EXPECT_EQ(c.retries, 1u);
    EXPECT_EQ(c.auditTrips, 1u);
    EXPECT_EQ(c.steps, 8u);
}

TEST(NumericsGuard, DefaultConfigIsProcessWideButOverridable)
{
    guard::GuardConfig saved = guard::defaultGuardConfig();
    guard::GuardConfig custom = saved;
    custom.auditAtolJ = 123.0;
    guard::setDefaultGuardConfig(custom);
    // Networks built after the change pick it up.
    ServerThermalNetwork net = testNetwork();
    EXPECT_EQ(net.guardConfig().auditAtolJ, 123.0);
    guard::setDefaultGuardConfig(saved);
}

} // namespace
} // namespace thermal
} // namespace tts
