/**
 * @file
 * Cross-module property tests: physical invariants that must hold
 * for every platform and every wax configuration.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "server/server_model.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"

namespace tts {
namespace {

using server::ServerModel;
using server::ServerSpec;
using server::WaxConfig;

ServerSpec
specOf(int platform)
{
    switch (platform) {
      case 0: return server::rd330Spec();
      case 1: return server::x4470Spec();
      default: return server::openComputeSpec();
    }
}

WaxConfig
waxOf(int mode)
{
    switch (mode) {
      case 0: return WaxConfig::none();
      case 1: return WaxConfig::placebo();
      default: return WaxConfig::paper();
    }
}

/** (platform, wax mode) grid. */
class PhysicalInvariants
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    ServerModel
    make() const
    {
        return ServerModel(specOf(std::get<0>(GetParam())),
                           waxOf(std::get<1>(GetParam())));
    }
};

TEST_P(PhysicalInvariants, SteadyStateClosesEnergyBalance)
{
    auto m = make();
    for (double u : {0.0, 0.3, 0.7, 1.0}) {
        m.setLoad(u);
        m.solveSteadyState();
        EXPECT_NEAR(m.coolingLoad(), m.wallPower(),
                    0.01 * m.wallPower() + 0.5)
            << "util " << u;
    }
}

TEST_P(PhysicalInvariants, TransientEnergyClosure)
{
    // Over a load step, integrated (wall - cooling) equals the
    // change in stored enthalpy summed over every thermal node -
    // the first law for the whole server.
    auto m = make();
    m.setLoad(0.2);
    m.solveSteadyState();
    m.setLoad(0.9);

    auto total_enthalpy = [&]() {
        double h = 0.0;
        for (std::size_t i = 0; i < m.network().nodeCount(); ++i)
            h += m.network().nodeEnthalpy(static_cast<int>(i));
        return h;
    };

    double h0 = total_enthalpy();
    double stored = 0.0;
    const double dt = 30.0;
    for (int i = 0; i < 240; ++i) {  // Two hours.
        double before = m.coolingLoad();
        m.advance(dt, 5.0);
        double after = m.coolingLoad();
        stored += (m.wallPower() - 0.5 * (before + after)) * dt;
    }
    double dh = total_enthalpy() - h0;
    EXPECT_NEAR(stored, dh, 0.02 * std::abs(dh) + 2000.0);
}

TEST_P(PhysicalInvariants, TemperaturesStayPhysical)
{
    auto m = make();
    workload::GoogleTraceParams tp;
    tp.durationS = units::hours(30.0);
    tp.sampleIntervalS = 900.0;
    auto trace = workload::makeGoogleTrace(tp);
    for (double t = 0.0; t < tp.durationS; t += 900.0) {
        m.setLoad(trace.totalAt(t));
        m.advance(900.0, 15.0);
        EXPECT_GE(m.outletTemp(), m.spec().inletTempC - 0.5);
        EXPECT_LT(m.outletTemp(), 90.0);
        EXPECT_LT(m.cpuJunctionTemp(), 150.0);
        if (m.hasWax()) {
            EXPECT_GE(m.waxMeltFraction(), 0.0);
            EXPECT_LE(m.waxMeltFraction(), 1.0);
            EXPECT_GE(m.waxTemp(), m.spec().inletTempC - 1.0);
            EXPECT_LT(m.waxTemp(), 90.0);
        }
    }
}

TEST_P(PhysicalInvariants, MonotoneLoadMonotonePower)
{
    auto m = make();
    double prev = -1.0;
    for (double u = 0.0; u <= 1.0 + 1e-9; u += 0.05) {
        m.setLoad(std::min(u, 1.0));
        EXPECT_GT(m.wallPower(), prev);
        prev = m.wallPower();
    }
}

TEST_P(PhysicalInvariants, AdvanceMatchesSteadyStateEventually)
{
    auto m = make();
    m.setLoad(0.6);
    m.advance(units::hours(12.0), 10.0);
    double transient_outlet = m.outletTemp();
    auto ref = make();
    ref.setLoad(0.6);
    ref.solveSteadyState();
    EXPECT_NEAR(transient_outlet, ref.outletTemp(), 0.6);
}

std::string
gridName(const ::testing::TestParamInfo<std::tuple<int, int>> &info)
{
    static const char *platforms[] = {"1U", "2U", "OCP"};
    static const char *waxes[] = {"stock", "placebo", "wax"};
    return std::string(platforms[std::get<0>(info.param)]) + "_" +
        waxes[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PhysicalInvariants,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0, 1, 2)),
    gridName);

} // namespace
} // namespace tts
