/**
 * @file
 * Acceptance criterion for the fault subsystem: the full resilience
 * grid (FaultSchedule generation, fault-injected DCSim, and both
 * thermal arms) must be bit-for-bit identical at one and eight
 * threads.  No tolerance - the schedules are seeded per-stream and
 * the grid runs through tts::exec::parallel_map keyed by index, so
 * any drift means the determinism contract is broken.
 */

#include <gtest/gtest.h>
#include <map>
#include <string>

#include "core/resilience_study.hh"
#include "exec/parallel.hh"

using namespace tts;

TEST(FaultDeterminism, ResilienceGridIdenticalAtOneAndEightThreads)
{
    exec::setGlobalThreads(1);
    auto serial = core::resilienceGoldenValues();
    exec::setGlobalThreads(8);
    auto parallel = core::resilienceGoldenValues();
    exec::setGlobalThreads(exec::defaultThreadCount());

    ASSERT_FALSE(serial.empty());
    ASSERT_EQ(serial.size(), parallel.size());
    for (const auto &[key, value] : serial) {
        ASSERT_TRUE(parallel.count(key)) << key;
        // Exact bit equality, not NEAR.
        EXPECT_EQ(value, parallel.at(key)) << key;
    }
}

TEST(FaultDeterminism, GeneratedSchedulesIdenticalAcrossThreadCounts)
{
    // Schedule generation itself must not depend on the pool: the
    // canonical crash_fan_storm scenario is regenerated under both
    // thread settings and compared event-by-event.
    exec::setGlobalThreads(1);
    auto a = core::canonicalScenarios(48);
    exec::setGlobalThreads(8);
    auto b = core::canonicalScenarios(48);
    exec::setGlobalThreads(exec::defaultThreadCount());

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_TRUE(a[i].faults == b[i].faults) << a[i].name;
        EXPECT_EQ(a[i].faults.serialize(), b[i].faults.serialize())
            << a[i].name;
    }
}
