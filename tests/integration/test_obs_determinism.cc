/**
 * @file
 * Acceptance criteria for the obs subsystem:
 *
 *  1. Tracing is thread-count invariant: a faulted resilience grid
 *     run at 1 and 8 threads produces byte-identical sorted JSONL
 *     (events carry logical (region, task, seq) stream ids, never OS
 *     thread ids, and stamp simulation time, never wall time).
 *  2. Observing is non-perturbing: the pinned resilience golden keys
 *     are bit-identical with collection enabled.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/resilience_study.hh"
#include "exec/parallel.hh"
#include "fault/fault_schedule.hh"
#include "obs/obs.hh"
#include "server/server_spec.hh"
#include "util/kv_json.hh"

#ifndef TTS_GOLDEN_JSON
#error "TTS_GOLDEN_JSON must point at the checked-in golden file"
#endif

using namespace tts;

namespace {

/** A small faulted grid: cheap, but exercises every event source. */
std::vector<core::ResilienceScenario>
smallGrid()
{
    std::vector<core::ResilienceScenario> grid;

    core::ResilienceScenario trip;
    trip.name = "obs_trip";
    trip.faults.add(300.0, fault::FaultKind::CoolingTrip,
                    fault::FaultEvent::noTarget, 1.0);
    trip.utilization = 0.8;
    trip.horizonS = 1800.0;
    grid.push_back(trip);

    core::ResilienceScenario storm;
    storm.name = "obs_storm";
    storm.faults.add(60.0, fault::FaultKind::ServerCrash, 3);
    storm.faults.add(120.0, fault::FaultKind::FanFailure, 1);
    storm.faults.add(200.0, fault::FaultKind::SensorDrift,
                     fault::FaultEvent::noTarget, -2.0);
    storm.faults.add(400.0, fault::FaultKind::ServerRecover, 3);
    storm.utilization = 0.6;
    storm.horizonS = 1800.0;
    grid.push_back(storm);

    return grid;
}

core::ResilienceConfig
smallOptions()
{
    core::ResilienceConfig opt;
    opt.cluster.serverCount = 16;
    opt.cluster.slotsPerServer = 4;
    return opt;
}

/** Run the grid traced at `threads` and return the sorted JSONL. */
std::string
tracedRun(std::size_t threads)
{
    exec::setGlobalThreads(threads);
    obs::resetForTest();
    obs::setEnabled(true);
    auto results = core::runResilienceGrid(
        server::rd330Spec(), smallGrid(), smallOptions());
    obs::setEnabled(false);
    std::ostringstream out;
    obs::writeJsonl(out, obs::drainEvents());
    exec::setGlobalThreads(exec::defaultThreadCount());
    EXPECT_EQ(results.size(), 2u);
    return out.str();
}

} // namespace

TEST(ObsDeterminism, SortedJsonlIdenticalAtOneAndEightThreads)
{
    std::string serial = tracedRun(1);
    std::string parallel = tracedRun(8);

    ASSERT_FALSE(serial.empty());
    // Sanity: the trace saw the interesting event sources, not just
    // job dispatches.
    for (const char *needle :
         {"\"kind\":\"fault.injected\"", "\"kind\":\"phase.begin\"",
          "\"kind\":\"guard.counters\"",
          "\"kind\":\"job.dispatch\""})
        EXPECT_NE(serial.find(needle), std::string::npos) << needle;

    EXPECT_EQ(serial, parallel);
}

TEST(ObsDeterminism, GoldenResilienceKeysUnchangedWhileObserved)
{
    obs::resetForTest();
    obs::setEnabled(true);
    auto observed = core::resilienceGoldenValues();
    obs::setEnabled(false);
    obs::drainEvents(); // Discard; only the values matter here.

    auto golden = readKvJsonFile(TTS_GOLDEN_JSON);
    std::size_t checked = 0;
    for (const auto &[key, expected] : golden) {
        if (key.rfind("resilience.", 0) != 0)
            continue;
        ASSERT_TRUE(observed.count(key)) << key;
        // Bit-identical, not NEAR: enabling collection must never
        // perturb simulation arithmetic.
        EXPECT_EQ(observed.at(key), expected) << key;
        ++checked;
    }
    EXPECT_GT(checked, 0u);
}
