/**
 * @file
 * Golden-value regression harness (see core/golden.hh).
 *
 * Recomputes every pinned headline number and diffs it against the
 * checked-in tests/data/golden.json.  A failure here means a code
 * change moved a published result; if the move is intentional,
 * regenerate with `build/tools/tts_golden tests/data/golden.json`
 * and say so in the commit message.
 *
 * Also the determinism suite for tts::exec: the full golden map must
 * be bit-for-bit identical at one and eight threads, regardless of
 * how the per-platform studies interleave.
 */

#include <cmath>
#include <gtest/gtest.h>
#include <map>
#include <string>

#include "core/golden.hh"
#include "exec/parallel.hh"
#include "opt/golden.hh"
#include "plant/golden.hh"
#include "util/kv_json.hh"

#ifndef TTS_GOLDEN_JSON
#error "TTS_GOLDEN_JSON must point at the checked-in golden file"
#endif

using namespace tts;

namespace {

/** Everything tts_golden writes: core plus opt plus plant keys. */
std::map<std::string, double>
computeAll()
{
    std::map<std::string, double> values =
        core::computeGoldenValues();
    auto opt_values = opt::computeOptGoldenValues();
    values.insert(opt_values.begin(), opt_values.end());
    auto plant_values = plant::computePlantGoldenValues();
    values.insert(plant_values.begin(), plant_values.end());
    return values;
}

/** Recompute once and share across tests (the studies take ~4 s). */
const std::map<std::string, double> &
computed()
{
    static const std::map<std::string, double> values = computeAll();
    return values;
}

/**
 * Relative tolerance for one golden key.  Everything is pinned tight;
 * discrete quantities (server/cluster counts, suitability counts)
 * must match exactly since a whole unit of drift is a real change.
 */
double
relToleranceFor(const std::string &key)
{
    if (key.find("clusters") != std::string::npos ||
        key.find("servers") != std::string::npos ||
        key.find("count") != std::string::npos)
        return 0.0;
    return 1e-6;
}

} // namespace

TEST(GoldenValues, MatchesCheckedInFile)
{
    auto golden = readKvJsonFile(TTS_GOLDEN_JSON);
    const auto &now = computed();

    // Key sets must match exactly - a missing or extra key is a
    // schema change that needs a regenerated golden file.
    for (const auto &[key, value] : golden)
        EXPECT_TRUE(now.count(key))
            << "golden key \"" << key << "\" no longer computed";
    for (const auto &[key, value] : now)
        EXPECT_TRUE(golden.count(key))
            << "new value \"" << key << "\" missing from golden file "
            << "(regenerate with tools/tts_golden)";

    for (const auto &[key, expected] : golden) {
        auto it = now.find(key);
        if (it == now.end())
            continue; // already reported above
        double rel = relToleranceFor(key);
        EXPECT_NEAR(it->second, expected,
                    rel * std::abs(expected) + 1e-12)
            << "golden value drifted: " << key;
    }
}

/**
 * The paper's headline claims, held loosely: the golden file pins the
 * reproduction exactly; these bounds document how close it lands to
 * the published numbers and fail if a change walks away from them.
 */
TEST(GoldenValues, PaperHeadlineWindows)
{
    const auto &g = computed();

    // Section 5.1, Figure 11: peak cooling reductions 8.9/12/8.3 %.
    EXPECT_NEAR(g.at("cooling.1u.peak_reduction"), 0.089, 0.015);
    EXPECT_NEAR(g.at("cooling.2u.peak_reduction"), 0.120, 0.015);
    EXPECT_NEAR(g.at("cooling.ocp.peak_reduction"), 0.083, 0.015);

    // Wax recharges daily: 6-9 h windows per day in the paper; our
    // two-day totals land within a generous band of 2x that.
    for (const char *p : {"1u", "2u", "ocp"}) {
        double h =
            g.at(std::string("cooling.") + p + ".resolidify_h");
        EXPECT_GT(h, 4.0) << p;
        EXPECT_LT(h, 20.0) << p;
    }

    // Section 5.1 economics: +4,940/+2,920/+2,770 servers.
    EXPECT_NEAR(g.at("plan.1u.extra_servers"), 4940.0, 500.0);
    EXPECT_NEAR(g.at("plan.2u.extra_servers"), 2920.0, 500.0);
    EXPECT_NEAR(g.at("plan.ocp.extra_servers"), 2770.0, 500.0);
    EXPECT_NEAR(g.at("plan.1u.smaller_plant_savings_per_year"),
                187000.0, 25000.0);
    EXPECT_NEAR(g.at("plan.2u.smaller_plant_savings_per_year"),
                254000.0, 25000.0);
    EXPECT_NEAR(g.at("plan.ocp.smaller_plant_savings_per_year"),
                174000.0, 25000.0);

    // Section 5.2, Figure 12: throughput gains 33/69/34 %.  The 2U
    // gain is the known deviation (EXPERIMENTS.md): 4 l of paraffin
    // cannot hold the energy the published 69 % implies under a
    // diurnal trace, so the reproduction lands near 24 %.
    EXPECT_NEAR(g.at("throughput.1u.gain"), 0.33, 0.08);
    EXPECT_NEAR(g.at("throughput.2u.gain"), 0.24, 0.08);
    EXPECT_NEAR(g.at("throughput.ocp.gain"), 0.34, 0.08);
    for (const char *p : {"1u", "2u", "ocp"}) {
        EXPECT_GT(g.at(std::string("throughput.") + p + ".delay_h"),
                  0.5)
            << p;
        // PCM must strictly reduce the work denied by the limit.
        EXPECT_LT(
            g.at(std::string("throughput.") + p + ".denied_with_wax"),
            g.at(std::string("throughput.") + p + ".denied_no_wax"))
            << p;
    }

    // Table 1: commercial paraffin as deployed (200 J/g, $1,500/t),
    // eicosane two orders of magnitude pricier.
    EXPECT_DOUBLE_EQ(
        g.at("table1.commercial_paraffin.heat_of_fusion_j_per_g"),
        200.0);
    EXPECT_DOUBLE_EQ(
        g.at("table1.commercial_paraffin.price_per_ton_usd"),
        1500.0);
    EXPECT_DOUBLE_EQ(g.at("table1.eicosane.price_per_ton_usd"),
                     75000.0);

    // Table 2 ranges: ServerCapEx 42-146 $/server/month, wax capital
    // 0.06-0.16 $/server/month.
    for (const char *p : {"1u", "2u", "ocp"}) {
        double capex =
            g.at(std::string("table2.") + p +
                 ".server_capex_per_server");
        EXPECT_GE(capex, 41.0) << p;
        EXPECT_LE(capex, 146.0) << p;
        double wax_capex =
            g.at(std::string("table2.") + p +
                 ".wax_capex_per_server");
        EXPECT_GE(wax_capex, 0.06) << p;
        EXPECT_LE(wax_capex, 0.16) << p;
    }
}

/**
 * The tentpole acceptance bar: the pinned wax-placement search must
 * find a configuration whose fleet peak cooling load beats the
 * paper's uniform 2U deployment on the same oracle.
 */
TEST(GoldenValues, OptSearchBeatsUniform2U)
{
    const auto &g = computed();
    EXPECT_EQ(g.at("opt.2u.beats_uniform"), 1.0);
    EXPECT_LT(g.at("opt.2u.best_peak_kw"),
              g.at("opt.2u.baseline_peak_kw"));
    EXPECT_GT(g.at("opt.2u.peak_reduction_vs_uniform"), 0.0);
    // The memo earned its keep on the pinned search.
    EXPECT_GT(g.at("opt.2u.memo_hit_count"), 0.0);
}

/**
 * tts::exec determinism: the entire golden map, computed through the
 * parallel engine, must be bit-for-bit identical at one and eight
 * threads.  No tolerance - identical doubles or the engine's
 * contract is broken.
 */
TEST(GoldenValues, IdenticalAtOneAndEightThreads)
{
    exec::setGlobalThreads(1);
    auto serial = computeAll();
    exec::setGlobalThreads(8);
    auto parallel = computeAll();
    exec::setGlobalThreads(exec::defaultThreadCount());

    ASSERT_EQ(serial.size(), parallel.size());
    for (const auto &[key, value] : serial) {
        ASSERT_TRUE(parallel.count(key)) << key;
        // Exact bit equality, not NEAR.
        EXPECT_EQ(value, parallel.at(key)) << key;
    }
}
