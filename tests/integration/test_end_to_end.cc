/** @file End-to-end integration tests across all modules. */

#include <gtest/gtest.h>

#include "core/thermal_time_shifting.hh"
#include "util/units.hh"
#include "workload/dcsim.hh"

namespace tts {
namespace core {
namespace {

TEST(EndToEnd, VersionIsSet)
{
    EXPECT_STRNE(version(), "");
}

TEST(EndToEnd, PaperPlatformsAreThree)
{
    auto specs = paperPlatforms();
    ASSERT_EQ(specs.size(), 3u);
    EXPECT_NE(specs[0].name.find("1U"), std::string::npos);
    EXPECT_NE(specs[1].name.find("2U"), std::string::npos);
    EXPECT_NE(specs[2].name.find("Open Compute"),
              std::string::npos);
}

TEST(EndToEnd, FullPipelineFor1U)
{
    // One-day fast-grid run of the full Section 5 pipeline.
    workload::GoogleTraceParams tp;
    tp.durationS = units::days(1.0);
    tp.sampleIntervalS = 900.0;
    auto trace = workload::makeGoogleTrace(tp);

    PlatformConfig opts;
    opts.optimizeMelt = false;  // Spec default; optimizer has its
                                // own tests.
    opts.cooling.cluster.controlIntervalS = 900.0;
    opts.cooling.cluster.thermalStepS = 15.0;

    auto study = runPlatformStudy(server::rd330Spec(), trace, opts);

    // Section 5.1: a peak reduction and positive economics.
    EXPECT_GT(study.cooling.peakReduction(), 0.04);
    EXPECT_GT(study.plan.smallerPlantSavingsPerYear, 80000.0);
    EXPECT_GT(study.plan.extraServers, 1000u);
    EXPECT_GT(study.plan.retrofitSavingsPerYear, 2.0e6);

    // Section 5.2: a throughput gain and a TCO-efficiency gain.
    EXPECT_GT(study.throughput.throughputGain(), 0.05);
    EXPECT_GT(study.tcoEfficiencyGain, 0.03);
    EXPECT_GT(study.throughput.delayHours, 0.0);

    // The melting temperature is a valid paraffin pick.
    EXPECT_GE(study.meltTempC, 39.0);
    EXPECT_LE(study.meltTempC, 60.0);
}

TEST(EndToEnd, DcsimUtilizationFeedsThermalModel)
{
    // The event simulator's measured utilization, fed back as a
    // (single-class) trace, produces a cluster cooling load close to
    // driving the thermal model with the analytic trace directly.
    workload::GoogleTraceParams tp;
    tp.durationS = units::days(1.0);
    tp.sampleIntervalS = 900.0;
    auto trace = workload::makeGoogleTrace(tp);

    workload::DcSimConfig cfg;
    cfg.serverCount = 24;
    cfg.slotsPerServer = 12;
    cfg.meanServiceTimeS = 60.0;
    cfg.statsIntervalS = 1800.0;
    workload::ClusterSim sim(cfg);
    auto result = sim.run(trace);

    workload::WorkloadTrace measured;
    for (std::size_t i = 0; i < result.clusterUtilization.size();
         ++i) {
        double u = result.clusterUtilization.values()[i];
        measured.append(result.clusterUtilization.times()[i],
                        {u / 3.0, u / 3.0, u / 3.0});
    }

    datacenter::ClusterRunOptions ro;
    ro.controlIntervalS = 1800.0;
    ro.thermalStepS = 30.0;
    datacenter::Cluster direct(server::rd330Spec(),
                               server::WaxConfig::none(), 1008);
    datacenter::Cluster via_sim(server::rd330Spec(),
                                server::WaxConfig::none(), 1008);
    auto r_direct = direct.run(trace, ro);
    auto r_sim = via_sim.run(measured, ro);
    EXPECT_NEAR(r_sim.peakCoolingLoad(),
                r_direct.peakCoolingLoad(),
                0.06 * r_direct.peakCoolingLoad());
}

TEST(EndToEnd, WaxNeverRaisesPeakCoolingBeyondPlacebo)
{
    // Safety property: against a placebo cluster with identical
    // blockage, adding latent storage can only shave the peak.
    workload::GoogleTraceParams tp;
    tp.durationS = units::days(1.0);
    tp.sampleIntervalS = 900.0;
    auto trace = workload::makeGoogleTrace(tp);

    datacenter::ClusterRunOptions ro;
    ro.controlIntervalS = 900.0;
    ro.thermalStepS = 15.0;
    datacenter::Cluster placebo(server::rd330Spec(),
                                server::WaxConfig::placebo(), 1008);
    datacenter::Cluster waxed(server::rd330Spec(),
                              server::WaxConfig::paper(), 1008);
    auto rp = placebo.run(trace, ro);
    auto rw = waxed.run(trace, ro);
    EXPECT_LE(rw.peakCoolingLoad(),
              rp.peakCoolingLoad() * 1.005);
}

TEST(EndToEnd, TwoDayRunIsPeriodic)
{
    // After warm-up, day 1 and day 2 of a jitter-free two-day trace
    // produce nearly identical wax trajectories (daily recharge).
    workload::GoogleTraceParams tp;
    tp.dayJitter = 0.0;
    tp.noise = 0.0;
    auto trace = workload::makeGoogleTrace(tp);
    datacenter::ClusterRunOptions ro;
    ro.controlIntervalS = 1800.0;
    ro.thermalStepS = 30.0;
    datacenter::Cluster c(server::rd330Spec(),
                          server::WaxConfig::paper(), 1008);
    auto r = c.run(trace, ro);
    for (double h = 2.0; h < 24.0; h += 4.0) {
        double d1 = r.waxMeltFraction.at(units::hours(h));
        double d2 = r.waxMeltFraction.at(units::hours(h + 24.0));
        EXPECT_NEAR(d1, d2, 0.22) << "hour " << h;
    }
}

} // namespace
} // namespace core
} // namespace tts
