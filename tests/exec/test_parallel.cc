/** @file Tests for the deterministic parallel executor. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "exec/parallel.hh"
#include "util/error.hh"
#include "util/random.hh"

namespace tts {
namespace exec {
namespace {

TEST(Parallel, DefaultThreadCountHonorsEnv)
{
    ::setenv("TTS_THREADS", "3", 1);
    EXPECT_EQ(defaultThreadCount(), 3u);
    ::setenv("TTS_THREADS", "not-a-number", 1);
    EXPECT_EQ(defaultThreadCount(), hardwareThreads());
    ::setenv("TTS_THREADS", "0", 1);
    EXPECT_EQ(defaultThreadCount(), hardwareThreads());
    ::unsetenv("TTS_THREADS");
    EXPECT_EQ(defaultThreadCount(), hardwareThreads());
}

TEST(Parallel, RejectsZeroThreads)
{
    EXPECT_THROW(ThreadPool(0), FatalError);
    EXPECT_THROW(setGlobalThreads(0), FatalError);
}

TEST(Parallel, EveryIndexRunsExactlyOnce)
{
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
        ThreadPool pool(threads);
        const std::size_t n = 100;
        std::vector<std::atomic<int>> hits(n);
        pool.forIndex(n, [&](std::size_t i) { ++hits[i]; });
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(Parallel, MapPreservesInputOrdering)
{
    std::vector<int> items(64);
    std::iota(items.begin(), items.end(), 0);
    for (std::size_t threads : {1u, 5u}) {
        ThreadPool pool(threads);
        auto out = pool.map(items, [](int x) { return 3 * x + 1; });
        ASSERT_EQ(out.size(), items.size());
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], 3 * static_cast<int>(i) + 1);
    }
}

TEST(Parallel, SerialAndParallelResultsAreIdentical)
{
    // Per-task RNG streams: the values drawn depend only on the task
    // index, so every thread count produces bit-identical output.
    auto run = [](std::size_t threads) {
        ThreadPool pool(threads);
        std::vector<double> out(40);
        pool.forIndex(out.size(), [&](std::size_t i) {
            Rng rng = Rng::forStream(1234, i);
            double acc = 0.0;
            for (int k = 0; k < 100; ++k)
                acc += rng.normal();
            out[i] = acc;
        });
        return out;
    };
    auto serial = run(1);
    for (std::size_t threads : {2u, 4u, 8u})
        EXPECT_EQ(serial, run(threads)) << threads << " threads";
}

TEST(Parallel, PropagatesLowestIndexException)
{
    ThreadPool pool(4);
    try {
        pool.forIndex(32, [&](std::size_t i) {
            if (i % 7 == 3)  // Throws at 3, 10, 17, 24, 31.
                throw std::runtime_error(
                    "task " + std::to_string(i));
        });
        FAIL() << "forIndex swallowed the exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "task 3");
    }
}

TEST(Parallel, SerialFallbackStopsAtFirstThrow)
{
    ThreadPool pool(1);
    std::vector<int> ran;
    EXPECT_THROW(pool.forIndex(10,
                               [&](std::size_t i) {
                                   ran.push_back(
                                       static_cast<int>(i));
                                   if (i == 2)
                                       throw std::runtime_error("x");
                               }),
                 std::runtime_error);
    EXPECT_EQ(ran, (std::vector<int>{0, 1, 2}));
}

TEST(Parallel, NestedRegionsRunSerially)
{
    // An inner region inside a task must not recruit more threads
    // (no oversubscription, no deadlock) and must keep the inner
    // serial ordering.
    ThreadPool pool(4);
    std::vector<std::vector<int>> inner_order(8);
    pool.forIndex(8, [&](std::size_t i) {
        pool.forIndex(5, [&](std::size_t j) {
            inner_order[i].push_back(static_cast<int>(j));
        });
    });
    for (const auto &order : inner_order)
        EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Parallel, EmptyAndSingletonRegions)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.forIndex(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.forIndex(1, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 1);
    EXPECT_TRUE(pool.map(std::vector<int>{},
                         [](int x) { return x; }).empty());
}

TEST(Parallel, GlobalPoolResizes)
{
    std::size_t before = globalPool().threadCount();
    setGlobalThreads(2);
    EXPECT_EQ(globalPool().threadCount(), 2u);
    std::vector<int> items{1, 2, 3};
    auto out = parallel_map(items, [](int x) { return x * x; });
    EXPECT_EQ(out, (std::vector<int>{1, 4, 9}));
    setGlobalThreads(before);
}

TEST(Parallel, RngStreamsAreDecorrelatedAndStable)
{
    // Distinct streams of one seed produce distinct sequences;
    // the same (seed, stream) pair is reproducible.
    std::set<std::uint64_t> firsts;
    for (std::uint64_t s = 0; s < 64; ++s) {
        Rng a = Rng::forStream(42, s);
        Rng b = Rng::forStream(42, s);
        std::uint64_t v = a.next();
        EXPECT_EQ(v, b.next());
        firsts.insert(v);
    }
    EXPECT_EQ(firsts.size(), 64u);
    // A stream differs from the plain generator with the same seed.
    EXPECT_NE(Rng::forStream(42, 0).next(), Rng(42).next());
}

} // namespace
} // namespace exec
} // namespace tts
