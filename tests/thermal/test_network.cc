/** @file Tests for the zone-based server thermal network. */

#include <gtest/gtest.h>

#include <cmath>

#include "pcm/material.hh"
#include "pcm/pcm_element.hh"
#include "thermal/network.hh"
#include "util/error.hh"
#include "util/units.hh"

namespace tts {
namespace thermal {
namespace {

AirflowModel
testAirflow()
{
    FanCurve fan{400.0, 0.02};
    return AirflowModel(fan, 0.010, 0.019);
}

ConvectiveCoupling
coupling(double ua0)
{
    return ConvectiveCoupling{ua0, 0.53, 0.8};
}

TEST(ConvectiveCoupling, PowerLawInVelocity)
{
    ConvectiveCoupling c{10.0, 2.0, 0.8};
    EXPECT_DOUBLE_EQ(c.ua(2.0), 10.0);
    EXPECT_NEAR(c.ua(4.0), 10.0 * std::pow(2.0, 0.8), 1e-9);
    EXPECT_GT(c.ua(0.0), 0.0);  // Natural-convection floor.
}

TEST(Network, SingleNodeSteadyState)
{
    ServerThermalNetwork net(testAirflow(), 1, 25.0);
    int n = net.addCapacityNode("cpu", 1000.0, coupling(5.0), 0,
                                25.0);
    net.setNodePower(n, 50.0);
    net.solveSteadyState();
    // T = T_air_local + P / UA; zone 0 local air == inlet.
    double ua = coupling(5.0).ua(net.airflow().ductVelocity());
    EXPECT_NEAR(net.nodeTemperature(n), 25.0 + 50.0 / ua, 1e-6);
}

TEST(Network, SteadyStateOutletBalancesEnergy)
{
    ServerThermalNetwork net(testAirflow(), 3, 25.0);
    int a = net.addCapacityNode("a", 500.0, coupling(3.0), 0, 25.0);
    int b = net.addCapacityNode("b", 800.0, coupling(4.0), 1, 25.0);
    net.setNodePower(a, 60.0);
    net.setNodePower(b, 90.0);
    net.setDirectAirPower(2, 30.0);
    net.solveSteadyState();
    double mcp = net.airflow().massFlow() * units::airSpecificHeat;
    EXPECT_NEAR(net.outletTemp(),
                25.0 + 180.0 / mcp, 1e-6);
    EXPECT_NEAR(net.airHeatRate(), 180.0, 1e-6);
    EXPECT_NEAR(net.totalInputPower(), 180.0, 1e-12);
}

TEST(Network, TransientConservesEnergy)
{
    ServerThermalNetwork net(testAirflow(), 2, 25.0);
    int a = net.addCapacityNode("a", 2000.0, coupling(3.0), 0, 25.0);
    int b = net.addCapacityNode("b", 3000.0, coupling(5.0), 1, 25.0);
    net.setNodePower(a, 100.0);
    net.setNodePower(b, 50.0);

    double h0 = net.nodeEnthalpy(a) + net.nodeEnthalpy(b);
    // Integrate absorbed heat = input - advected, sampled finely.
    double absorbed = 0.0;
    for (int i = 0; i < 600; ++i) {
        double q_air = net.airHeatRate();
        net.advance(1.0, 0.25);
        double q_air2 = net.airHeatRate();
        absorbed += (150.0 - 0.5 * (q_air + q_air2)) * 1.0;
    }
    double h1 = net.nodeEnthalpy(a) + net.nodeEnthalpy(b);
    EXPECT_NEAR(h1 - h0, absorbed, std::abs(absorbed) * 0.01 + 1.0);
}

TEST(Network, TransientApproachesSteadyState)
{
    ServerThermalNetwork net(testAirflow(), 1, 25.0);
    int n = net.addCapacityNode("n", 500.0, coupling(5.0), 0, 25.0);
    net.setNodePower(n, 40.0);

    ServerThermalNetwork ref(testAirflow(), 1, 25.0);
    int rn = ref.addCapacityNode("n", 500.0, coupling(5.0), 0, 25.0);
    ref.setNodePower(rn, 40.0);
    ref.solveSteadyState();

    net.advance(3600.0, 1.0);
    EXPECT_NEAR(net.nodeTemperature(n), ref.nodeTemperature(rn),
                0.01);
}

TEST(Network, DownstreamZonesSeeWarmerAir)
{
    ServerThermalNetwork net(testAirflow(), 3, 25.0);
    int a = net.addCapacityNode("a", 500.0, coupling(5.0), 0, 25.0);
    net.setNodePower(a, 100.0);
    net.solveSteadyState();
    EXPECT_DOUBLE_EQ(net.zoneAirTemp(0), 25.0);
    EXPECT_GT(net.zoneAirTemp(1), 25.0);
    EXPECT_NEAR(net.zoneAirTemp(1), net.zoneAirTemp(2), 1e-9);
}

TEST(Network, PlumeRaisesLocalTemperature)
{
    auto build = [&](double plume) {
        ServerThermalNetwork net(testAirflow(), 3, 25.0);
        int cpu = net.addCapacityNode("cpu", 500.0, coupling(5.0),
                                      1, 25.0);
        net.setNodePower(cpu, 100.0);
        net.setZonePlumeFraction(2, plume);
        net.solveSteadyState();
        return net.zoneAirTemp(2);
    };
    double mixed = build(1.0);
    double plumed = build(0.5);
    EXPECT_GT(plumed, mixed);
}

TEST(Network, PlumeDoesNotChangeEnergyBalance)
{
    auto outlet = [&](double plume) {
        ServerThermalNetwork net(testAirflow(), 3, 25.0);
        int cpu = net.addCapacityNode("cpu", 500.0, coupling(5.0),
                                      1, 25.0);
        net.setNodePower(cpu, 100.0);
        net.setZonePlumeFraction(2, plume);
        net.solveSteadyState();
        return net.airHeatRate();
    };
    EXPECT_NEAR(outlet(1.0), outlet(0.4), 1e-6);
}

TEST(Network, ConductionLinkEqualizesNodes)
{
    ServerThermalNetwork net(testAirflow(), 1, 25.0);
    int hot = net.addCapacityNode("hot", 500.0, coupling(2.0), 0,
                                  25.0);
    int cold = net.addCapacityNode("cold", 500.0, coupling(2.0), 0,
                                   25.0);
    net.setNodePower(hot, 60.0);
    net.addConduction(hot, cold, 10.0);
    net.solveSteadyState();
    // Without the link, cold would sit at the inlet temperature.
    EXPECT_GT(net.nodeTemperature(cold), 26.0);
    EXPECT_GT(net.nodeTemperature(hot), net.nodeTemperature(cold));
}

TEST(Network, PcmNodeMeltsUnderLoad)
{
    AirflowModel airflow = testAirflow();
    ServerThermalNetwork net(airflow, 2, 25.0);
    int cpu = net.addCapacityNode("cpu", 500.0, coupling(6.0), 0,
                                  25.0);
    pcm::BoxSpec box;
    box.lengthM = 0.1;
    box.widthM = 0.08;
    box.heightM = 0.02;
    pcm::ContainerBank bank(box, 2, 0.019);
    pcm::PcmElement wax(pcm::commercialParaffin(), bank, 40.0, 25.0);
    int wn = net.addPcmNode("wax", &wax, 1);
    net.setZonePlumeFraction(1, 0.4);
    net.setNodePower(cpu, 250.0);
    net.advance(4.0 * 3600.0, 1.0);
    EXPECT_GT(wax.meltFraction(), 0.5);
    EXPECT_GT(net.nodeTemperature(wn), 39.0);
    // The element's state is kept in sync with the network.
    EXPECT_DOUBLE_EQ(wax.storedEnthalpy(), net.nodeEnthalpy(wn));
}

TEST(Network, MeltingWaxReducesAirHeatRate)
{
    auto run = [&](bool with_wax) {
        ServerThermalNetwork net(testAirflow(), 2, 25.0);
        int cpu = net.addCapacityNode("cpu", 500.0, coupling(6.0),
                                      0, 25.0);
        net.setNodePower(cpu, 250.0);
        static pcm::BoxSpec box{0.1, 0.08, 0.02};
        static pcm::ContainerBank bank(box, 2, 0.019);
        pcm::PcmElement wax(pcm::commercialParaffin(), bank, 40.0,
                            25.0);
        if (with_wax)
            net.addPcmNode("wax", &wax, 1);
        net.advance(600.0, 1.0);
        // Warm-up done; measure while the wax melts.
        net.advance(1800.0, 1.0);
        return net.airHeatRate();
    };
    EXPECT_LT(run(true), run(false));
}

TEST(Network, AirDecoupledNodeOnlyConducts)
{
    ServerThermalNetwork net(testAirflow(), 1, 25.0);
    int outer = net.addCapacityNode("outer", 500.0, coupling(5.0),
                                    0, 25.0);
    pcm::BoxSpec box{0.1, 0.08, 0.02};
    static pcm::ContainerBank bank(box, 1, 0.019);
    pcm::PcmElement inner(pcm::commercialParaffin(), bank, 45.0,
                          25.0);
    int in = net.addPcmNode("inner", &inner, 0,
                            /*air_coupled=*/false);
    net.addConduction(outer, in, 1.0);
    net.setNodePower(outer, 80.0);
    net.advance(3600.0, 1.0);
    // The inner node warms only through the link, lagging outer.
    EXPECT_GT(net.nodeTemperature(in), 25.5);
    EXPECT_LT(net.nodeTemperature(in), net.nodeTemperature(outer));
}

TEST(Network, SupercooledPcmNodeDelaysReleaseInNetwork)
{
    // Melt two wax nodes fully, then hold the bay air BETWEEN the
    // supercooled plateau (42 C) and the melting plateau (45 C): a
    // plain charge starts freezing there, a supercooled one stays
    // fully liquid.
    auto run = [&](double supercooling) {
        AirflowModel airflow = testAirflow();
        ServerThermalNetwork net(airflow, 2, 25.0);
        int cpu = net.addCapacityNode("cpu", 500.0, coupling(6.0),
                                      0, 25.0);
        pcm::BoxSpec box;
        box.lengthM = 0.1;
        box.widthM = 0.08;
        box.heightM = 0.02;
        pcm::ContainerBank bank(box, 2, 0.019);
        pcm::PcmElement wax(pcm::commercialParaffin(), bank, 45.0,
                            25.0, 0.5, supercooling);
        wax.setFreezeConductanceFactor(1.0);  // Isolate nucleation.
        net.addPcmNode("wax", &wax, 1);
        net.setZonePlumeFraction(1, 0.4);
        net.setNodePower(cpu, 300.0);        // Melt fully.
        net.advance(6.0 * 3600.0, 1.0);
        EXPECT_DOUBLE_EQ(wax.meltFraction(), 1.0)
            << "sc " << supercooling;
        net.setNodePower(cpu, 85.0);         // Bay settles ~43 C.
        net.advance(3.0 * 3600.0, 1.0);
        return wax.meltFraction();
    };
    double plain = run(0.0);
    double supercooled = run(3.0);
    EXPECT_LT(plain, 0.999);                 // Started freezing.
    EXPECT_DOUBLE_EQ(supercooled, 1.0);      // Still liquid.
}

TEST(Network, FindNodeByName)
{
    ServerThermalNetwork net(testAirflow(), 1, 25.0);
    int a = net.addCapacityNode("alpha", 100.0, coupling(1.0), 0,
                                25.0);
    EXPECT_EQ(net.findNode("alpha"), a);
    EXPECT_EQ(net.findNode("missing"), -1);
    EXPECT_EQ(net.nodeName(a), "alpha");
}

TEST(Network, InletTempShiftsEverything)
{
    ServerThermalNetwork net(testAirflow(), 1, 25.0);
    int n = net.addCapacityNode("n", 100.0, coupling(5.0), 0, 25.0);
    net.setNodePower(n, 50.0);
    net.solveSteadyState();
    double t1 = net.nodeTemperature(n);
    net.setInletTemp(35.0);
    net.solveSteadyState();
    EXPECT_NEAR(net.nodeTemperature(n), t1 + 10.0, 1e-6);
}

TEST(Network, RejectsBadConfiguration)
{
    ServerThermalNetwork net(testAirflow(), 2, 25.0);
    EXPECT_THROW(net.addCapacityNode("x", 0.0, coupling(1.0), 0,
                                     25.0),
                 FatalError);
    EXPECT_THROW(net.addCapacityNode("x", 1.0, coupling(1.0), 5,
                                     25.0),
                 FatalError);
    int n = net.addCapacityNode("n", 100.0, coupling(1.0), 0, 25.0);
    EXPECT_THROW(net.setNodePower(n, -1.0), FatalError);
    EXPECT_THROW(net.setNodePower(99, 1.0), FatalError);
    EXPECT_THROW(net.addConduction(n, n, 1.0), FatalError);
    EXPECT_THROW(net.setZonePlumeFraction(0, 0.0), FatalError);
    EXPECT_THROW(net.setZonePlumeFraction(9, 0.5), FatalError);
    EXPECT_THROW(net.setDirectAirPower(7, 1.0), FatalError);
}

} // namespace
} // namespace thermal
} // namespace tts
