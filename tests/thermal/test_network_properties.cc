/**
 * @file
 * Property-based tests for the zone thermal network: 100 seeded
 * random networks (Rng::forStream) checked against the closed
 * forms the upstream-walk model implies, instead of point values:
 *
 *   - steady state conserves energy: airHeatRate == totalInputPower;
 *   - the mixed-stream temperature rises zone over zone by exactly
 *     Q_zone / (m_dot cp), so the outlet follows in closed form;
 *   - an air-coupled node with no conduction links settles at
 *     T_zone + P / UA(v) (local heat balance);
 *   - more power never cools a node (monotonicity);
 *   - advance() relaxes to the same fixed point solveSteadyState
 *     finds.
 */

#include <cmath>
#include <gtest/gtest.h>
#include <string>
#include <vector>

#include "thermal/airflow.hh"
#include "thermal/network.hh"
#include "util/random.hh"
#include "util/units.hh"

using namespace tts;
using namespace tts::thermal;

namespace {

constexpr std::uint64_t kSeed = 0x74686d6e6574ULL;
constexpr int kCases = 100;

struct RandomNetwork
{
    AirflowModel airflow;
    ServerThermalNetwork net;
    std::vector<int> nodes;
    std::vector<double> powers;
    std::size_t zones;
};

/**
 * Build a random but well-posed network: 2-5 zones, 1-3 nodes per
 * zone, no conduction links, fully mixed air (the closed forms below
 * assume both).
 */
RandomNetwork
makeRandom(Rng &rng)
{
    FanCurve fan{rng.uniform(40.0, 120.0), rng.uniform(0.04, 0.12)};
    double nominal = fan.maxFlowM3s * rng.uniform(0.3, 0.7);
    double duct_area = rng.uniform(0.008, 0.04);
    AirflowModel airflow(fan, nominal, duct_area);

    std::size_t zones = 2 + rng.uniformInt(4);
    double inlet = rng.uniform(18.0, 30.0);
    RandomNetwork r{airflow,
                    ServerThermalNetwork(airflow, zones, inlet),
                    {},
                    {},
                    zones};

    for (std::size_t z = 0; z < zones; ++z) {
        std::size_t count = 1 + rng.uniformInt(3);
        for (std::size_t k = 0; k < count; ++k) {
            ConvectiveCoupling cpl;
            cpl.ua0 = rng.uniform(0.5, 8.0);
            cpl.refVelocity = 2.0;
            cpl.exponent = 0.8;
            int id = r.net.addCapacityNode(
                "n" + std::to_string(z) + "_" + std::to_string(k),
                rng.uniform(200.0, 5000.0), cpl, z, inlet);
            double p = rng.uniform(0.0, 60.0);
            r.net.setNodePower(id, p);
            r.nodes.push_back(id);
            r.powers.push_back(p);
        }
        if (rng.uniform() < 0.3)
            r.net.setDirectAirPower(z, rng.uniform(0.0, 15.0));
    }
    return r;
}

} // namespace

TEST(NetworkProperties, SteadyStateConservesEnergy)
{
    for (int c = 0; c < kCases; ++c) {
        Rng rng = Rng::forStream(kSeed, c);
        RandomNetwork r = makeRandom(rng);
        r.net.solveSteadyState();
        double in = r.net.totalInputPower();
        EXPECT_NEAR(r.net.airHeatRate(), in, 1e-6 * in + 1e-9)
            << "case " << c;
    }
}

TEST(NetworkProperties, MixedStreamFollowsUpstreamWalk)
{
    for (int c = 0; c < kCases; ++c) {
        Rng rng = Rng::forStream(kSeed + 1, c);
        RandomNetwork r = makeRandom(rng);
        r.net.solveSteadyState();

        double mcp =
            r.net.airflow().massFlow() * units::airSpecificHeat;
        // At steady state every node passes its input power straight
        // to the air, so the rise across zone z is the power landing
        // in that zone over m_dot cp.
        std::vector<double> zone_power(r.zones, 0.0);
        for (std::size_t i = 0; i < r.nodes.size(); ++i) {
            // Node i sits in the zone encoded in its name.
            std::string name = r.net.nodeName(r.nodes[i]);
            std::size_t z = std::stoul(name.substr(1));
            zone_power[z] += r.powers[i];
        }
        for (std::size_t z = 0; z < r.zones; ++z)
            zone_power[z] += r.net.directAirPower(z);

        double t = r.net.inletTemp();
        for (std::size_t z = 0; z < r.zones; ++z) {
            EXPECT_NEAR(r.net.zoneMixedTemp(z), t, 1e-6)
                << "case " << c << " zone " << z;
            t += zone_power[z] / mcp;
        }
        EXPECT_NEAR(r.net.outletTemp(), t, 1e-6) << "case " << c;
    }
}

TEST(NetworkProperties, NodeSettlesAtLocalBalance)
{
    for (int c = 0; c < kCases; ++c) {
        Rng rng = Rng::forStream(kSeed + 2, c);
        RandomNetwork r = makeRandom(rng);
        r.net.solveSteadyState();

        double v = r.net.airflow().ductVelocity();
        for (std::size_t i = 0; i < r.nodes.size(); ++i) {
            std::string name = r.net.nodeName(r.nodes[i]);
            std::size_t z = std::stoul(name.substr(1));
            // Reconstruct UA(v) from the same correlation the node
            // was built with is not possible here (the coupling was
            // random), so assert the balance in the other direction:
            // the temperature excess over the zone air must be
            // positive iff the node is powered, and the implied
            // conductance P / dT must be velocity-independent of the
            // node's position in the stream (finite and positive).
            double dt = r.net.nodeTemperature(r.nodes[i]) -
                r.net.zoneAirTemp(z);
            if (r.powers[i] > 0.0) {
                EXPECT_GT(dt, 0.0) << "case " << c << " " << name;
                double ua = r.powers[i] / dt;
                EXPECT_TRUE(std::isfinite(ua));
                EXPECT_GT(ua, 0.0);
            } else {
                EXPECT_NEAR(dt, 0.0, 1e-6)
                    << "case " << c << " " << name;
            }
        }
        (void)v;
    }
}

TEST(NetworkProperties, MorePowerNeverCoolsANode)
{
    for (int c = 0; c < kCases; ++c) {
        Rng rng = Rng::forStream(kSeed + 3, c);
        RandomNetwork r = makeRandom(rng);
        r.net.solveSteadyState();
        std::size_t pick = rng.uniformInt(r.nodes.size());
        std::vector<double> before(r.nodes.size());
        for (std::size_t i = 0; i < r.nodes.size(); ++i)
            before[i] = r.net.nodeTemperature(r.nodes[i]);

        r.net.setNodePower(r.nodes[pick],
                           r.powers[pick] + rng.uniform(5.0, 40.0));
        r.net.solveSteadyState();
        for (std::size_t i = 0; i < r.nodes.size(); ++i)
            EXPECT_GE(r.net.nodeTemperature(r.nodes[i]) - before[i],
                      -1e-9)
                << "case " << c << " node " << i;
    }
}

TEST(NetworkProperties, AdvanceRelaxesToSteadyState)
{
    // 20 cases, not 100: each integrates a transient.
    for (int c = 0; c < 20; ++c) {
        Rng rng = Rng::forStream(kSeed + 4, c);
        RandomNetwork r = makeRandom(rng);

        // Longest time constant in the build is C/UA_min; integrate
        // ~12 of them so the slowest node has converged.
        // dt = 5 s is well under the fastest node's C/UA (~20 s).
        double tau = 5000.0 / 0.3;
        r.net.advance(12.0 * tau, 5.0);
        std::vector<double> relaxed(r.nodes.size());
        for (std::size_t i = 0; i < r.nodes.size(); ++i)
            relaxed[i] = r.net.nodeTemperature(r.nodes[i]);

        r.net.solveSteadyState();
        for (std::size_t i = 0; i < r.nodes.size(); ++i)
            EXPECT_NEAR(relaxed[i],
                        r.net.nodeTemperature(r.nodes[i]), 0.05)
                << "case " << c << " node " << i;
    }
}
