/**
 * @file
 * Regression tests for the airflow operating-point memo.
 *
 * The memo must never be observable: a fault event that changes fan
 * state or duct blockage invalidates it within the same step, and a
 * memoized model tracks an unmemoized twin bit-for-bit through any
 * mutation sequence.  These pin the cache-invalidation rules the
 * fault injector relies on (a fan-failure event pins the fan speed
 * and must see the new operating point immediately).
 */

#include <gtest/gtest.h>

#include "thermal/airflow.hh"
#include "thermal/kernel_config.hh"

namespace tts {
namespace thermal {
namespace {

AirflowModel
makeModel(bool memo)
{
    AirflowModel m(FanCurve{200.0, 0.02}, 0.015, 0.01);
    m.setMemoEnabled(memo);
    return m;
}

TEST(AirflowMemo, RepeatedQueriesHitTheMemoAndKeepTheValue)
{
    auto cached = makeModel(true);
    auto reference = makeModel(false);
    double first = cached.flow();
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(cached.flow(), first);
    EXPECT_EQ(cached.flow(), reference.flow());
    EXPECT_EQ(cached.revision(), reference.revision());
}

TEST(AirflowMemo, SameValueSetKeepsRevisionAndCache)
{
    auto m = makeModel(true);
    (void)m.flow();
    std::uint64_t rev = m.revision();
    // ServerModel::setLoad re-sets the fan speed every control step;
    // a no-op set must not look like a fault event to downstream
    // caches.
    m.setFanSpeed(m.fanSpeed());
    m.setBlockage(m.blockage());
    EXPECT_EQ(m.revision(), rev);
}

TEST(AirflowMemo, FanEventInvalidatesSameStep)
{
    auto cached = makeModel(true);
    auto reference = makeModel(false);
    // Warm the memo at the healthy operating point.
    (void)cached.flow();
    std::uint64_t rev = cached.revision();

    // A fan-bank failure drops the fan to 40 % mid-run.  The very
    // next query must already be the degraded operating point.
    cached.setFanSpeed(0.4);
    reference.setFanSpeed(0.4);
    EXPECT_GT(cached.revision(), rev);
    EXPECT_EQ(cached.flow(), reference.flow());
    EXPECT_EQ(cached.massFlow(), reference.massFlow());
}

TEST(AirflowMemo, BlockageEventInvalidatesSameStep)
{
    auto cached = makeModel(true);
    auto reference = makeModel(false);
    (void)cached.flow();
    std::uint64_t rev = cached.revision();

    cached.setBlockage(0.3);
    reference.setBlockage(0.3);
    EXPECT_GT(cached.revision(), rev);
    EXPECT_EQ(cached.flow(), reference.flow());
    EXPECT_EQ(cached.velocityAtBlockage(),
              reference.velocityAtBlockage());
}

TEST(AirflowMemo, LockstepMutationSequenceIsBitIdentical)
{
    auto cached = makeModel(true);
    auto reference = makeModel(false);
    // A deterministic storm of fan and blockage events, with
    // repeated queries between them to exercise warm-memo reads.
    const double speeds[] = {1.0, 0.7, 0.7, 0.4, 1.0, 0.55};
    const double blockages[] = {0.0, 0.1, 0.25, 0.25, 0.05, 0.4};
    for (int round = 0; round < 3; ++round) {
        for (std::size_t i = 0; i < 6; ++i) {
            cached.setFanSpeed(speeds[i]);
            reference.setFanSpeed(speeds[i]);
            cached.setBlockage(blockages[i]);
            reference.setBlockage(blockages[i]);
            for (int q = 0; q < 2; ++q) {
                EXPECT_EQ(cached.flow(), reference.flow());
                EXPECT_EQ(cached.massFlow(), reference.massFlow());
                EXPECT_EQ(cached.velocityAtBlockage(),
                          reference.velocityAtBlockage());
                EXPECT_EQ(cached.ductVelocity(),
                          reference.ductVelocity());
            }
        }
    }
    EXPECT_EQ(cached.revision(), reference.revision());
}

TEST(AirflowMemo, DefaultComesFromKernelConfig)
{
    KernelConfig saved = defaultKernelConfig();
    setDefaultKernelConfig(referenceKernelConfig());
    AirflowModel off(FanCurve{200.0, 0.02}, 0.015, 0.01);
    EXPECT_FALSE(off.memoEnabled());
    setDefaultKernelConfig(saved);
    AirflowModel on(FanCurve{200.0, 0.02}, 0.015, 0.01);
    EXPECT_EQ(on.memoEnabled(), saved.airflowMemo);
    EXPECT_EQ(off.flow(), on.flow());
}

} // namespace
} // namespace thermal
} // namespace tts
