/** @file Tests for the fan-curve / impedance airflow model. */

#include <gtest/gtest.h>

#include <cmath>

#include "thermal/airflow.hh"
#include "util/error.hh"
#include "util/units.hh"

namespace tts {
namespace thermal {
namespace {

FanCurve
stdFan()
{
    return FanCurve{200.0, 0.02};
}

TEST(FanCurve, EndpointsAtFullSpeed)
{
    auto f = stdFan();
    EXPECT_DOUBLE_EQ(f.pressureAt(0.0), 200.0);
    EXPECT_DOUBLE_EQ(f.pressureAt(0.02), 0.0);
}

TEST(FanCurve, NegativeBeyondFreeDelivery)
{
    EXPECT_LT(stdFan().pressureAt(0.03), 0.0);
}

TEST(FanCurve, FanLawsScaleSpeed)
{
    auto f = stdFan();
    // At half speed: pressure x 1/4, free flow x 1/2.
    EXPECT_DOUBLE_EQ(f.pressureAt(0.0, 0.5), 50.0);
    EXPECT_DOUBLE_EQ(f.pressureAt(0.01, 0.5), 0.0);
}

TEST(OperatingPoint, LiesOnBothCurves)
{
    auto f = stdFan();
    double k = 1.0e6;
    double q = solveOperatingPoint(f, k);
    EXPECT_NEAR(f.pressureAt(q), k * q * q, 1e-9);
    EXPECT_GT(q, 0.0);
    EXPECT_LT(q, f.maxFlowM3s);
}

TEST(OperatingPoint, HigherImpedanceLowersFlow)
{
    auto f = stdFan();
    EXPECT_GT(solveOperatingPoint(f, 1e5),
              solveOperatingPoint(f, 1e6));
}

TEST(OperatingPoint, FlowScalesWithSpeedAtFixedImpedance)
{
    // Classic fan law: with a fixed system curve, Q scales with n.
    auto f = stdFan();
    double k = 5e5;
    double q_full = solveOperatingPoint(f, k, 1.0);
    double q_half = solveOperatingPoint(f, k, 0.5);
    EXPECT_NEAR(q_half / q_full, 0.5, 1e-9);
}

TEST(OperatingPoint, RejectsBadArguments)
{
    auto f = stdFan();
    EXPECT_THROW(solveOperatingPoint(f, 0.0), FatalError);
    EXPECT_THROW(solveOperatingPoint(f, 1e5, 0.0), FatalError);
    EXPECT_THROW(solveOperatingPoint(f, 1e5, 1.5), FatalError);
}

AirflowModel
stdModel()
{
    return AirflowModel(stdFan(), 0.012, 0.019);
}

TEST(AirflowModel, CalibratesToNominalFlow)
{
    auto m = stdModel();
    EXPECT_NEAR(m.flow(), 0.012, 1e-12);
}

TEST(AirflowModel, MassFlowUsesAirDensity)
{
    auto m = stdModel();
    EXPECT_NEAR(m.massFlow(), 0.012 * units::airDensity, 1e-9);
}

TEST(AirflowModel, BlockageReducesFlow)
{
    auto m = stdModel();
    double q0 = m.flow();
    m.setBlockage(0.5);
    double q50 = m.flow();
    m.setBlockage(0.9);
    double q90 = m.flow();
    EXPECT_GT(q0, q50);
    EXPECT_GT(q50, q90);
    EXPECT_GT(q90, 0.0);
}

TEST(AirflowModel, VelocityRisesThroughConstriction)
{
    auto m = stdModel();
    double v0 = m.velocityAtBlockage();
    m.setBlockage(0.7);
    // Flow drops but the open area drops faster.
    EXPECT_GT(m.velocityAtBlockage(), v0);
    EXPECT_LT(m.ductVelocity(), v0);
}

TEST(AirflowModel, FanSpeedScalesFlow)
{
    auto m = stdModel();
    double q_full = m.flow();
    m.setFanSpeed(0.5);
    EXPECT_NEAR(m.flow(), 0.5 * q_full, 1e-12);
}

TEST(AirflowModel, ZeroBlockageRestoresNominal)
{
    auto m = stdModel();
    m.setBlockage(0.6);
    m.setBlockage(0.0);
    EXPECT_NEAR(m.flow(), 0.012, 1e-12);
}

TEST(AirflowModel, RejectsBadInput)
{
    auto m = stdModel();
    EXPECT_THROW(m.setBlockage(-0.1), FatalError);
    EXPECT_THROW(m.setBlockage(1.0), FatalError);
    EXPECT_THROW(m.setFanSpeed(0.0), FatalError);
    EXPECT_THROW(m.setFanSpeed(1.1), FatalError);
    EXPECT_THROW(AirflowModel(stdFan(), 0.03, 0.019), FatalError);
    EXPECT_THROW(AirflowModel(stdFan(), 0.012, 0.0), FatalError);
}

/**
 * Property sweep over blockage: flow decreases monotonically and the
 * operating point always satisfies both curves.
 */
class BlockageSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(BlockageSweep, OperatingPointConsistent)
{
    auto m = stdModel();
    m.setBlockage(GetParam());
    double q = m.flow();
    double open = 1.0 - GetParam();
    double k = m.baseImpedance() / (open * open);
    EXPECT_NEAR(m.fan().pressureAt(q), k * q * q, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Fractions, BlockageSweep,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.69,
                                           0.8, 0.9, 0.95));

TEST(AirflowModel, StiffFansResistBlockageMore)
{
    // The Fig 7 shape knob: higher pressure headroom keeps flow up.
    FanCurve soft{100.0, 0.024};   // Pmax ~ 2x the nominal drop.
    FanCurve stiff{1000.0, 0.013}; // Pmax ~ 20x.
    AirflowModel m_soft(soft, 0.012, 0.019);
    AirflowModel m_stiff(stiff, 0.012, 0.019);
    m_soft.setBlockage(0.7);
    m_stiff.setBlockage(0.7);
    EXPECT_GT(m_stiff.flow() / 0.012, m_soft.flow() / 0.012);
}

} // namespace
} // namespace thermal
} // namespace tts
