/**
 * @file
 * Manifest warming tests: header validation, warm/hit/fail
 * accounting, batcher-mediated warming of fleet entries, and the
 * warm-start contract (the first post-warm client hits the cache
 * with a bit-identical result).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/daemon.hh"
#include "serve/eval.hh"
#include "serve/manifest.hh"
#include "util/error.hh"

using namespace tts;
using namespace tts::serve;

namespace {

std::string
outageLine(double horizon)
{
    std::ostringstream doc;
    doc << "{\"study\": \"outage\", \"servers\": 8, \"horizon_s\": "
        << horizon << "}";
    return doc.str();
}

std::string
fleetLine(std::size_t servers)
{
    std::ostringstream doc;
    doc << "{\"study\": \"fleet\", \"servers\": " << servers
        << ", \"days\": 0.25}";
    return doc.str();
}

} // namespace

TEST(ServeManifest, MissingHeaderIsFatalWithALineNumber)
{
    Daemon daemon(DaemonConfig{});
    std::istringstream in("{\"study\": \"outage\"}\n");
    try {
        warmFromManifest(in, daemon, "bad.manifest");
        FAIL() << "headerless manifest accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("bad.manifest:1"),
                  std::string::npos)
            << e.what();
    }
    std::istringstream empty("");
    EXPECT_THROW(warmFromManifest(empty, daemon), FatalError);
}

TEST(ServeManifest, CommentsAndBlankLinesAreSkipped)
{
    Daemon daemon(DaemonConfig{});
    std::istringstream in("tts-serve-manifest v1\n"
                          "\n"
                          "# the dashboard's one panel\n"
                          "  # indented comment\n" +
                          outageLine(60.0) + "\n\n");
    const WarmStats warm = warmFromManifest(in, daemon);
    EXPECT_EQ(warm.entries, 1u);
    EXPECT_EQ(warm.warmed, 1u);
    EXPECT_EQ(warm.failed, 0u);
}

TEST(ServeManifest, HeaderOnlyManifestWarmsNothing)
{
    Daemon daemon(DaemonConfig{});
    std::istringstream in("tts-serve-manifest v1\n# empty\n");
    const WarmStats warm = warmFromManifest(in, daemon);
    EXPECT_EQ(warm.entries, 0u);
    EXPECT_EQ(warm.warmed, 0u);
}

TEST(ServeManifest, BadEntriesAreCountedWithLineNumbersNeverFatal)
{
    Daemon daemon(DaemonConfig{});
    std::istringstream in("tts-serve-manifest v1\n" +
                          outageLine(60.0) + "\n"
                          "{\"study\": \"astrology\"}\n" +
                          outageLine(90.0) + "\n");
    const WarmStats warm = warmFromManifest(in, daemon);
    EXPECT_EQ(warm.entries, 3u);
    EXPECT_EQ(warm.warmed, 2u);
    EXPECT_EQ(warm.failed, 1u);
    ASSERT_EQ(warm.failures.size(), 1u);
    EXPECT_NE(warm.failures[0].find("line 3"), std::string::npos)
        << warm.failures[0];
    EXPECT_NE(warm.failures[0].find("malformed"),
              std::string::npos)
        << warm.failures[0];
}

TEST(ServeManifest, DuplicateEntriesCountAsAlreadyCached)
{
    Daemon daemon(DaemonConfig{});
    std::istringstream in("tts-serve-manifest v1\n" +
                          outageLine(60.0) + "\n" +
                          outageLine(60.0) + "\n");
    const WarmStats warm = warmFromManifest(in, daemon);
    EXPECT_EQ(warm.entries, 2u);
    EXPECT_EQ(warm.warmed + warm.alreadyCached, 2u);
    EXPECT_GE(warm.alreadyCached, 1u);
    EXPECT_EQ(warm.failed, 0u);
}

TEST(ServeManifest, WarmedEntriesServeAsBitIdenticalCacheHits)
{
    const std::string doc = outageLine(120.0);
    const Result baseline = evaluate(parseRequest(doc));
    DaemonConfig config;
    config.workers = 2;
    Daemon daemon(config);
    std::istringstream in("tts-serve-manifest v1\n" + doc + "\n");
    const WarmStats warm = warmFromManifest(in, daemon);
    EXPECT_EQ(warm.warmed, 1u);
    const Reply r = daemon.call(doc);
    ASSERT_TRUE(r.ok) << r.detail;
    EXPECT_TRUE(r.cacheHit)
        << "the manifest entry did not pre-warm the cache";
    EXPECT_EQ(r.result, baseline);
}

TEST(ServeManifest, FleetEntriesWarmThroughTheMissBatcher)
{
    // Four fleet entries submitted together must collect into
    // shared sweeps, not four separate dispatches.
    DaemonConfig config;
    config.workers = 4;
    config.batch.windowMs = 50.0;
    config.batch.maxBatch = 4;
    Daemon daemon(config);
    std::ostringstream text;
    text << "tts-serve-manifest v1\n";
    for (std::size_t servers : {8u, 12u, 16u, 20u})
        text << fleetLine(servers) << "\n";
    std::istringstream in(text.str());
    const WarmStats warm = warmFromManifest(in, daemon);
    EXPECT_EQ(warm.entries, 4u);
    EXPECT_EQ(warm.warmed, 4u);
    EXPECT_EQ(warm.failed, 0u);
    const BatchStats batch = daemon.batchStats();
    EXPECT_EQ(batch.jobs, 4u);
    EXPECT_LT(batch.sweeps, 4u)
        << "warming dispatched every miss individually";
    // The warmed entries answer as cache hits, bit-identical.
    const Result baseline =
        evaluate(parseRequest(fleetLine(8)));
    const Reply r = daemon.call(fleetLine(8));
    ASSERT_TRUE(r.ok) << r.detail;
    EXPECT_TRUE(r.cacheHit);
    EXPECT_EQ(r.result, baseline);
}

TEST(ServeManifest, FileVariantReportsMissingFiles)
{
    Daemon daemon(DaemonConfig{});
    EXPECT_THROW(
        warmManifestFile("/nonexistent/missing.manifest", daemon),
        FatalError);
    const std::string path =
        testing::TempDir() + "/tts_warm.manifest";
    {
        std::ofstream f(path);
        f << "tts-serve-manifest v1\n" << outageLine(60.0) << "\n";
    }
    const WarmStats warm = warmManifestFile(path, daemon);
    EXPECT_EQ(warm.warmed, 1u);
    std::remove(path.c_str());
}
