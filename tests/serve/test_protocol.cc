/**
 * @file
 * Wire-protocol tests: request parsing (including the hostile-input
 * fuzz corpus), canonicalization/fingerprinting, reply round trips,
 * and the length-prefixed framing layer.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <iterator>
#include <sstream>
#include <streambuf>
#include <thread>

#include "serve/protocol.hh"
#include "util/error.hh"

using namespace tts;
using namespace tts::serve;

TEST(ServeProtocol, ErrorKindNamesRoundTrip)
{
    for (ErrorKind k :
         {ErrorKind::Malformed, ErrorKind::UnsupportedVersion,
          ErrorKind::Overloaded, ErrorKind::DeadlineExceeded,
          ErrorKind::WorkerFailed, ErrorKind::Shutdown}) {
        EXPECT_EQ(errorKindFromString(toString(k)), k);
    }
    EXPECT_THROW(errorKindFromString("nope"), FatalError);
}

TEST(ServeProtocol, DefaultRequestRoundTrips)
{
    const Request def;
    EXPECT_EQ(parseRequest(writeRequest(def)), def);
}

TEST(ServeProtocol, CustomRequestRoundTripsIncludingFaultText)
{
    Request r;
    r.study = "resilience";
    r.platform = 2;
    r.servers = 96;
    r.days = 2.5;
    r.meltC = 45.0;
    r.waxLiters = 12.25;
    r.utilization = 0.875;
    r.horizonS = 7200.0;
    r.scenario = "crash_fan_storm";
    r.faults = "tts-fault-schedule v1\n"
               "at 600 plant_trip magnitude=1 duration=900\n"
               "at 1800 fan_failure magnitude=0.5 duration=600\n";
    r.deadlineMs = 250.0;
    EXPECT_EQ(parseRequest(writeRequest(r)), r);
}

TEST(ServeProtocol, OmittedKeysFingerprintLikeSpelledOutDefaults)
{
    const Request def;
    EXPECT_EQ(fingerprint(parseRequest("{}")), fingerprint(def));
    EXPECT_EQ(fingerprint(parseRequest(writeRequest(def))),
              fingerprint(def));
}

TEST(ServeProtocol, DeadlineDoesNotChangeTheFingerprint)
{
    Request a;
    Request b = a;
    b.deadlineMs = 500.0;
    EXPECT_EQ(canonicalText(a), canonicalText(b));
    EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(ServeProtocol, ResultAffectingFieldsChangeTheFingerprint)
{
    const Request base;
    auto differs = [&](Request changed) {
        EXPECT_NE(fingerprint(changed), fingerprint(base));
    };
    Request r = base;
    r.study = "outage";
    differs(r);
    r = base;
    r.platform = 1;
    differs(r);
    r = base;
    r.waxLiters = 16.0;
    differs(r);
    r = base;
    r.utilization = 0.5;
    differs(r);
    r = base;
    r.faults = "tts-fault-schedule v1\n";
    differs(r);
}

TEST(ServeProtocol, PlantFieldsRoundTripWithInlineWeather)
{
    Request r;
    r.study = "plant";
    r.plantBackend = "economizer";
    r.weather = "t_hours,ambient_c\n0,11.5\n12,24\n24,11.5\n";
    EXPECT_EQ(parseRequest(writeRequest(r)), r);
}

TEST(ServeProtocol, PlantDefaultsLeaveOldFingerprintsUnchanged)
{
    // Pre-plant clients never sent plant_backend/weather; the new
    // fields must only reach the canonical text when non-default,
    // or every cached fingerprint in the fleet would rotate.
    const Request def;
    EXPECT_EQ(canonicalText(def).find("plant_backend"),
              std::string::npos);
    EXPECT_EQ(canonicalText(def).find("weather"),
              std::string::npos);
    Request spelled = def;
    spelled.plantBackend = "crac";
    EXPECT_EQ(fingerprint(spelled), fingerprint(def));

    Request mpc = def;
    mpc.plantBackend = "mpc";
    EXPECT_NE(fingerprint(mpc), fingerprint(def));
    Request weather = def;
    weather.weather = "t_hours,ambient_c\n0,5\n24,5\n";
    EXPECT_NE(fingerprint(weather), fingerprint(def));
}

TEST(ServeProtocol, UnknownPlantBackendIsRejected)
{
    EXPECT_THROW(parseRequest("{\"study\": \"plant\", "
                              "\"plant_backend\": \"swamp_cooler\"}"),
                 FatalError);
    Request ok = parseRequest(
        "{\"study\": \"plant\", \"plant_backend\": \"hot_water\"}");
    EXPECT_EQ(ok.plantBackend, "hot_water");
}

TEST(ServeProtocol, ExplicitProtoOneIsAcceptedAndFingerprintStable)
{
    // `proto` is versioning metadata, not request content: spelling
    // out the default must not move the fingerprint, or every
    // pre-versioning cache entry in the fleet would rotate.
    const Request def;
    const Request spelled = parseRequest("{\"proto\": 1}");
    EXPECT_EQ(spelled, def);
    EXPECT_EQ(canonicalText(spelled), canonicalText(def));
    EXPECT_EQ(canonicalText(def).find("proto"), std::string::npos);
    EXPECT_EQ(fingerprint(spelled), fingerprint(def));
}

TEST(ServeProtocol, FutureProtoIsUnsupportedVersionNotMalformed)
{
    // A clean v2 request - even one carrying keys this build has
    // never heard of - must be rejected with the actionable typed
    // error, checked before any other field.
    EXPECT_THROW(parseRequest("{\"proto\": 2}"),
                 UnsupportedVersionError);
    EXPECT_THROW(
        parseRequest("{\"proto\": 2, \"quantum_mode\": \"on\"}"),
        UnsupportedVersionError);
    EXPECT_THROW(parseRequest("{\"proto\": 3000000}"),
                 UnsupportedVersionError);
    // Nonsense proto values are malformed, not a version problem.
    EXPECT_THROW(parseRequest("{\"proto\": 0}"), FatalError);
    EXPECT_THROW(parseRequest("{\"proto\": 1.5}"), FatalError);
    EXPECT_THROW(parseRequest("{\"proto\": -1}"), FatalError);
    EXPECT_THROW(parseRequest("{\"proto\": \"one\"}"), FatalError);
    try {
        parseRequest("{\"proto\": 2}");
        FAIL() << "future proto accepted";
    } catch (const UnsupportedVersionError &e) {
        EXPECT_NE(std::string(e.what()).find("proto"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ServeProtocol, PinnedFingerprintsAreByteStable)
{
    // Golden fingerprints computed before the proto/fleet/optimize
    // fields existed.  If any of these move, every persisted cache
    // snapshot and every cross-version client is invalidated - a
    // wire-compatibility break, not a refactor.
    const Request def;
    EXPECT_EQ(fingerprint(def), fingerprint(parseRequest("{}")));
    const std::uint64_t def_fp = fingerprint(def);
    Request outage = def;
    outage.study = "outage";
    const std::uint64_t outage_fp = fingerprint(outage);
    EXPECT_NE(def_fp, outage_fp);
    // The canonical text preamble is pinned: field renames or
    // reordering would silently re-key every cache.
    const std::string text = canonicalText(def);
    EXPECT_EQ(text.find("tts-serve-request v1\n"), 0u);
    EXPECT_NE(text.find("study cooling\n"), std::string::npos);
    EXPECT_NE(text.find("platform 0\n"), std::string::npos);
    // New-in-PR-10 fields stay out of default canonical text.
    for (const char *absent :
         {"proto", "placement", "objective", "budget", "restarts",
          "opt_seed"}) {
        EXPECT_EQ(text.find(absent), std::string::npos)
            << absent << " leaked into the default canonical text";
    }
}

TEST(ServeProtocol, FleetRequestRoundTripsWithPlacement)
{
    Request r;
    r.study = "fleet";
    r.servers = 32;
    r.days = 0.5;
    r.placement = "wax-aware";
    EXPECT_EQ(parseRequest(writeRequest(r)), r);
    // Placement is result-affecting for fleet studies.
    Request uniform = r;
    uniform.placement = "uniform";
    EXPECT_NE(fingerprint(r), fingerprint(uniform));
}

TEST(ServeProtocol, OptimizeRequestRoundTripsWithSearchKnobs)
{
    Request r;
    r.study = "optimize";
    r.budget = 8;
    r.restarts = 2;
    r.objective = "tco";
    r.optSeed = 12345;
    EXPECT_EQ(parseRequest(writeRequest(r)), r);
    // Every search knob steers the trajectory, so each must move
    // the fingerprint.
    const std::uint64_t base = fingerprint(r);
    Request changed = r;
    changed.budget = 9;
    EXPECT_NE(fingerprint(changed), base);
    changed = r;
    changed.restarts = 3;
    EXPECT_NE(fingerprint(changed), base);
    changed = r;
    changed.objective = "peak";
    EXPECT_NE(fingerprint(changed), base);
    changed = r;
    changed.optSeed = 54321;
    EXPECT_NE(fingerprint(changed), base);
}

TEST(ServeProtocol, NewStudyFieldsAreValidated)
{
    EXPECT_THROW(parseRequest("{\"study\": \"fleet\", "
                              "\"placement\": \"psychic\"}"),
                 FatalError);
    EXPECT_THROW(parseRequest("{\"study\": \"optimize\", "
                              "\"objective\": \"vibes\"}"),
                 FatalError);
    EXPECT_THROW(
        parseRequest("{\"study\": \"optimize\", \"budget\": 0}"),
        FatalError);
    EXPECT_THROW(
        parseRequest("{\"study\": \"optimize\", \"budget\": 5000}"),
        FatalError);
    EXPECT_THROW(
        parseRequest("{\"study\": \"optimize\", \"restarts\": 0}"),
        FatalError);
    EXPECT_THROW(parseRequest("{\"study\": \"optimize\", "
                              "\"opt_seed\": -1}"),
                 FatalError);
    EXPECT_THROW(parseRequest("{\"study\": \"optimize\", "
                              "\"opt_seed\": 0.5}"),
                 FatalError);
}

TEST(ServeProtocol, Fnv1aMatchesTheReferenceVectors)
{
    // Offset basis and the classic "a" test vector for 64-bit
    // FNV-1a; getting either wrong silently re-keys every cache.
    EXPECT_EQ(fnv1a(""), 14695981039346656037ull);
    EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cull);
}

// Fuzz-style corpus: every malformed request a hostile or buggy
// client can send must die with a FatalError the daemon converts to
// a typed `malformed` reply - never a crash, never a silent default.
TEST(ServeProtocol, MalformedCorpusAllRejectedWithoutCrashing)
{
    const char *corpus[] = {
        // Not JSON at all.
        "",
        "   ",
        "hello",
        "\x01\x02\x03\xff",
        // Structurally broken documents.
        "{",
        "}",
        "{\"study\"}",
        "{\"study\":}",
        "{\"study\": \"cooling\"",
        "{\"study\": \"cooling\",}",
        "{\"study\": \"cooling\"} trailing",
        "{\"study\": \"coo",
        "{\"study\": \"cooling\\\"\"}",
        "{\"a\": {\"b\": 1}}",
        "{\"a\": [1, 2]}",
        "{1: 2}",
        // Unknown vocabulary.
        "{\"studyy\": \"cooling\"}",
        "{\"study\": \"cool\"}",
        "{\"scenario\": \"plant_trip_total\", \"bogus\": 1}",
        // Type confusion.
        "{\"study\": 3}",
        "{\"platform\": \"one\"}",
        "{\"servers\": \"many\"}",
        // Out-of-range values.
        "{\"platform\": 9}",
        "{\"platform\": -1}",
        "{\"servers\": 0}",
        "{\"servers\": 1.5}",
        "{\"servers\": -4}",
        "{\"servers\": 2000000}",
        "{\"days\": 0}",
        "{\"days\": 64}",
        "{\"days\": -1}",
        "{\"melt_c\": 400}",
        "{\"wax_l\": -2}",
        "{\"wax_l\": 100}",
        "{\"util\": 1.5}",
        "{\"util\": -0.1}",
        "{\"horizon_s\": -60}",
        "{\"deadline_ms\": -5}",
        // Number syntax abuse.
        "{\"days\": 1e999}",
        "{\"days\": 0x10}",
        "{\"days\": nan}",
        "{\"days\": 1..5}",
        "{\"days\": --1}",
    };
    for (std::size_t i = 0; i < std::size(corpus); ++i) {
        EXPECT_THROW(parseRequest(corpus[i]), FatalError)
            << "corpus entry " << i << " was accepted:\n"
            << corpus[i];
    }
}

TEST(ServeProtocol, UnterminatedStringDiagnosticCarriesByteOffset)
{
    try {
        parseRequest("{\"study\": \"coo");
        FAIL() << "unterminated string accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("byte offset"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ServeProtocol, OversizedRequestRejectedUpFront)
{
    std::string big = "{\"study\": \"cooling\"}";
    big.append(100000, ' ');
    try {
        parseRequest(big, 64 * 1024);
        FAIL() << "oversized request accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("exceeds"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ServeProtocol, OkReplyRoundTrips)
{
    Result result;
    result["outage.ride_with_wax_s"] = 1234.0625;
    result["outage.ride_no_wax_s"] = 700.03125;
    Reply r = Reply::okReply(0xdeadbeefcafef00dull, true, 0.0,
                             result);
    Reply back = Reply::fromJson(r.toJson());
    EXPECT_TRUE(back.ok);
    EXPECT_TRUE(back.cacheHit);
    EXPECT_EQ(back.fingerprintValue, r.fingerprintValue);
    EXPECT_EQ(back.result, result);
}

TEST(ServeProtocol, ErrorReplyRoundTripsWithSanitizedDetail)
{
    Reply r = Reply::errorReply(
        ErrorKind::Overloaded, "queue \"full\"\nat byte \x01", 7);
    Reply back = Reply::fromJson(r.toJson());
    EXPECT_FALSE(back.ok);
    EXPECT_EQ(back.error, ErrorKind::Overloaded);
    EXPECT_EQ(back.fingerprintValue, 7u);
    // Hostile bytes inside the detail are replaced, never echoed.
    EXPECT_EQ(back.detail.find('"'), std::string::npos);
    EXPECT_EQ(back.detail.find('\n'), std::string::npos);
    EXPECT_NE(back.detail.find("queue ?full?"), std::string::npos);
}

TEST(ServeProtocol, NonDottedResultKeyIsAnInvariantViolation)
{
    Result result;
    result["status"] = 1.0; // would collide with the envelope
    Reply r = Reply::okReply(1, false, 0.0, result);
    EXPECT_THROW(r.toJson(), PanicError);
}

TEST(ServeFraming, RoundTripsArbitraryPayloadBytes)
{
    std::stringstream s;
    const std::string payload =
        std::string("line one\nline two\n\x00\x01\xfe binary", 31);
    writeFrame(s, payload);
    writeFrame(s, "");
    writeFrame(s, "{\"study\": \"cooling\"}");
    FrameResult a = readFrame(s);
    ASSERT_EQ(a.status, FrameStatus::Ok);
    EXPECT_EQ(a.payload, payload);
    FrameResult b = readFrame(s);
    ASSERT_EQ(b.status, FrameStatus::Ok);
    EXPECT_EQ(b.payload, "");
    FrameResult c = readFrame(s);
    ASSERT_EQ(c.status, FrameStatus::Ok);
    EXPECT_EQ(c.payload, "{\"study\": \"cooling\"}");
    EXPECT_EQ(readFrame(s).status, FrameStatus::Eof);
}

TEST(ServeFraming, EmptyStreamIsCleanEof)
{
    std::stringstream s;
    EXPECT_EQ(readFrame(s).status, FrameStatus::Eof);
}

TEST(ServeFraming, BadHeadersAreMalformedAndUnrecoverable)
{
    const char *bad[] = {
        "GET / HTTP/1.1\n",
        "tts-frame\n",
        "tts-frame \n",
        "tts-frame twelve\n",
        "tts-frame 12x\n",
        "tts-frame 99999999999999999999999999\n",
    };
    for (const char *header : bad) {
        std::stringstream s(header);
        FrameResult r = readFrame(s);
        EXPECT_EQ(r.status, FrameStatus::Malformed) << header;
        EXPECT_FALSE(r.recoverable) << header;
        EXPECT_FALSE(r.diagnostic.empty()) << header;
    }
}

TEST(ServeFraming, OversizedFrameIsDrainedAndRecoverable)
{
    FrameLimits limits;
    limits.maxPayloadBytes = 16;
    std::stringstream s;
    s << "tts-frame 64\n" << std::string(64, 'x');
    writeFrame(s, "after", limits);

    FrameResult big = readFrame(s, limits);
    EXPECT_EQ(big.status, FrameStatus::Malformed);
    EXPECT_TRUE(big.recoverable);
    EXPECT_NE(big.diagnostic.find("exceeds"), std::string::npos);

    // The oversized payload was drained; the stream is resynced.
    FrameResult next = readFrame(s, limits);
    ASSERT_EQ(next.status, FrameStatus::Ok);
    EXPECT_EQ(next.payload, "after");
}

TEST(ServeFraming, OversizedFrameOnATruncatedStreamIsUnrecoverable)
{
    FrameLimits limits;
    limits.maxPayloadBytes = 16;
    std::stringstream s;
    s << "tts-frame 64\n" << std::string(10, 'x');
    FrameResult r = readFrame(s, limits);
    EXPECT_EQ(r.status, FrameStatus::Malformed);
    EXPECT_FALSE(r.recoverable);
}

TEST(ServeFraming, TruncatedPayloadIsMalformedWithByteCounts)
{
    std::stringstream s;
    s << "tts-frame 20\nonly twelve!";
    FrameResult r = readFrame(s);
    EXPECT_EQ(r.status, FrameStatus::Malformed);
    EXPECT_FALSE(r.recoverable);
    EXPECT_NE(r.diagnostic.find("12 of 20"), std::string::npos)
        << r.diagnostic;
}

TEST(ServeFraming, PayloadExactlyAtTheLimitIsAccepted)
{
    FrameLimits limits;
    limits.maxPayloadBytes = 8;
    std::stringstream s;
    writeFrame(s, "12345678", limits);
    EXPECT_EQ(readFrame(s, limits).status, FrameStatus::Ok);
    EXPECT_THROW(writeFrame(s, "123456789", limits), FatalError);
}

namespace {

/**
 * A streambuf that dribbles its string out a few bytes per
 * underflow, stalling once mid-payload - the slow-client shape.
 */
class DribbleBuf : public std::streambuf
{
  public:
    DribbleBuf(std::string text, std::size_t chunk, double stall_ms)
        : text_(std::move(text)), chunk_(chunk),
          stallMs_(stall_ms)
    {
    }

  protected:
    int_type underflow() override
    {
        if (pos_ >= text_.size())
            return traits_type::eof();
        if (!stalled_ && pos_ >= text_.size() / 2) {
            stalled_ = true;
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(
                    stallMs_));
        }
        const std::size_t n =
            std::min(chunk_, text_.size() - pos_);
        setg(text_.data() + pos_, text_.data() + pos_,
             text_.data() + pos_ + n);
        pos_ += n;
        return traits_type::to_int_type(*gptr());
    }

  private:
    std::string text_;
    std::size_t chunk_;
    double stallMs_;
    std::size_t pos_ = 0;
    bool stalled_ = false;
};

} // namespace

TEST(ServeFraming, SlowClientDribbleStillDeliversCompleteFrames)
{
    std::ostringstream wire;
    writeFrame(wire, "{\"study\": \"cooling\"}");
    writeFrame(wire, "{\"study\": \"outage\"}");
    DribbleBuf buf(wire.str(), 3, 2.0);
    std::istream in(&buf);
    FrameResult a = readFrame(in);
    ASSERT_EQ(a.status, FrameStatus::Ok);
    EXPECT_EQ(a.payload, "{\"study\": \"cooling\"}");
    FrameResult b = readFrame(in);
    ASSERT_EQ(b.status, FrameStatus::Ok);
    EXPECT_EQ(b.payload, "{\"study\": \"outage\"}");
    EXPECT_EQ(readFrame(in).status, FrameStatus::Eof);
}
