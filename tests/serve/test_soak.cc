/**
 * @file
 * Fault-injection soak: one deterministic hostile session against a
 * live daemon - duplicated scenario requests interleaved with
 * malformed payloads, oversized and truncated frames, and injected
 * worker crashes - asserting the robustness invariants the serving
 * layer promises:
 *
 *  - zero crashes: the whole session runs to completion;
 *  - every request is answered or cleanly rejected with a typed
 *    error from the degradation ladder;
 *  - every successful reply is bit-identical to a daemon-free
 *    evaluation of the same request (cache hits included);
 *  - the cache snapshot survives a restart, and a corrupted
 *    snapshot is quarantined without losing the service.
 *
 * The same seeded ServeFaultPlan drives the session at 1 and 8
 * workers, so the hostile schedule itself is identical at both
 * widths.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "serve/daemon.hh"
#include "serve/eval.hh"
#include "util/error.hh"
#include "util/random.hh"

using namespace tts;
using namespace tts::serve;

namespace {

/** The faithful request pool: 16 distinct quick outage studies. */
std::vector<std::string>
requestPool()
{
    std::vector<std::string> docs;
    for (double horizon : {60.0, 90.0, 120.0, 150.0}) {
        for (double util : {0.6, 0.9}) {
            for (double wax : {0.0, 8.0}) {
                Request r;
                r.study = "outage";
                r.servers = 8;
                r.horizonS = horizon;
                r.utilization = util;
                r.waxLiters = wax;
                docs.push_back(writeRequest(r));
            }
        }
    }
    return docs;
}

const char *kMalformedPool[] = {
    "",
    "not json at all",
    "{\"study\": \"astrology\"}",
    "{\"study\": \"coo",
    "{\"servers\": -4}",
    "{\"bogus\": 1}",
    "{\"util\": 2}",
    "\x01\x02\xff\xfe",
};

std::string
tempPath(const std::string &name)
{
    const std::string path = testing::TempDir() + "/" + name;
    std::remove(path.c_str());
    std::remove((path + ".corrupt").c_str());
    return path;
}

void
runSoak(std::size_t workers)
{
    const std::size_t kRequests = 120;
    ServeFaultProfile profile;
    profile.workerCrashPerRequest = 0.12;
    profile.workerCrashAttempts = 1;
    profile.malformedPerRequest = 0.10;
    profile.oversizedPerRequest = 0.05;
    profile.truncatedPerRequest = 0.05;
    profile.slowClientPerRequest = 0.05;
    profile.slowClientStallMs = 0.0;
    profile.seed = 0x50a50a50; // shared across widths: same schedule
    const ServeFaultPlan plan =
        ServeFaultPlan::generate(profile, kRequests);
    ASSERT_GT(plan.countOf(RequestFault::Malformed), 0u);
    ASSERT_GT(plan.countOf(RequestFault::Oversized), 0u);
    ASSERT_GT(plan.countOf(RequestFault::Truncated), 0u);
    ASSERT_GT(plan.crashedRequests(), 0u);

    // Daemon-free baseline for the bit-identity assertion.
    const std::vector<std::string> pool = requestPool();
    std::vector<Result> baseline;
    for (const std::string &doc : pool)
        baseline.push_back(evaluate(parseRequest(doc)));

    DaemonConfig config;
    config.workers = workers;
    config.queueCapacity = 8;
    config.retryBudget = 3;
    config.retryBackoffBaseMs = 0.2;
    config.cache.capacity = 64;
    config.cache.path = tempPath(
        "tts_serve_soak_w" + std::to_string(workers) + ".ckpt");
    Daemon daemon(config, plan);
    EXPECT_EQ(daemon.cacheLoadOutcome(), CacheLoadOutcome::Fresh);

    // Build the hostile byte stream.  slots[k] records which pool
    // entry reply k must answer (-1 for injected garbage, whose
    // reply must be a typed malformed error).  Truncated frames
    // desync a stream by design, so each gets its own session
    // after the main one.
    FrameLimits limits;
    limits.maxPayloadBytes = 2048;
    Rng pick = Rng::forStream(profile.seed, 9001);
    std::ostringstream wire;
    std::vector<int> slots;
    std::size_t truncated_sessions = 0;
    for (std::size_t i = 0; i < kRequests; ++i) {
        switch (plan.requestFault(i)) {
          case RequestFault::None:
          case RequestFault::SlowClient:
          // This profile never draws Disconnect (the socket soak in
          // test_mux.cc covers it); keep the stream faithful.
          case RequestFault::Disconnect: {
            const int which =
                static_cast<int>(pick.uniformInt(pool.size()));
            writeFrame(wire, pool[static_cast<std::size_t>(which)],
                       limits);
            slots.push_back(which);
            break;
          }
          case RequestFault::Malformed:
            writeFrame(wire,
                       kMalformedPool[i % std::size(kMalformedPool)],
                       limits);
            slots.push_back(-1);
            break;
          case RequestFault::Oversized:
            wire << "tts-frame " << (limits.maxPayloadBytes + 32)
                 << "\n"
                 << std::string(limits.maxPayloadBytes + 32, 'x');
            slots.push_back(-1);
            break;
          case RequestFault::Truncated:
            ++truncated_sessions;
            break;
        }
    }

    StreamOptions options;
    options.limits = limits;
    // Let the client overrun admission so the overloaded rung of
    // the ladder is reachable under real pressure.
    options.pipelineWindow = 32;
    std::istringstream in(wire.str());
    std::ostringstream out;
    const StreamStats ss = serveStream(in, out, daemon, options);
    EXPECT_FALSE(ss.aborted);
    EXPECT_EQ(ss.framesMalformed,
              plan.countOf(RequestFault::Oversized));
    EXPECT_EQ(ss.repliesWritten, slots.size());

    // Every slot got exactly one reply, in order, and each reply is
    // either bit-identical to the baseline or a typed rejection.
    std::istringstream replies(out.str());
    FrameLimits reply_limits;
    reply_limits.maxPayloadBytes = 1u << 20;
    std::size_t ok_replies = 0;
    std::size_t overloaded = 0;
    for (std::size_t k = 0; k < slots.size(); ++k) {
        const FrameResult f = readFrame(replies, reply_limits);
        ASSERT_EQ(f.status, FrameStatus::Ok) << "reply " << k;
        const Reply r = Reply::fromJson(f.payload);
        if (slots[k] < 0) {
            ASSERT_FALSE(r.ok) << "garbage slot " << k
                               << " got an ok reply";
            // Usually rejected as malformed - but garbage that
            // lands while the queue is full is shed before it is
            // ever parsed, which is just as clean an answer.
            EXPECT_TRUE(r.error == ErrorKind::Malformed ||
                        r.error == ErrorKind::Overloaded)
                << "slot " << k << ": " << r.detail;
            if (r.error == ErrorKind::Overloaded)
                ++overloaded;
            continue;
        }
        if (r.ok) {
            ++ok_replies;
            EXPECT_EQ(
                r.result,
                baseline[static_cast<std::size_t>(slots[k])])
                << "reply " << k
                << " is not bit-identical to a fresh evaluation";
        } else {
            // The only legitimate rejection of a faithful request
            // in this session is admission-control shedding: no
            // deadlines are set and the crash depth (1) is inside
            // the retry budget (3).
            EXPECT_EQ(r.error, ErrorKind::Overloaded)
                << "reply " << k << ": " << r.detail;
            ++overloaded;
        }
    }
    EXPECT_EQ(readFrame(replies, reply_limits).status,
              FrameStatus::Eof);
    EXPECT_GT(ok_replies, 0u);

    // Truncated frames get their own sessions: each is answered
    // with a typed error, then the (unrecoverable) session ends.
    for (std::size_t t = 0; t < truncated_sessions; ++t) {
        std::istringstream bad_in("tts-frame 64\nonly-a-few-bytes");
        std::ostringstream bad_out;
        const StreamStats bs =
            serveStream(bad_in, bad_out, daemon, options);
        EXPECT_TRUE(bs.aborted);
        EXPECT_EQ(bs.repliesWritten, 1u);
        std::istringstream bad_replies(bad_out.str());
        const Reply r = Reply::fromJson(
            readFrame(bad_replies, reply_limits).payload);
        ASSERT_FALSE(r.ok);
        EXPECT_EQ(r.error, ErrorKind::Malformed);
    }

    // Accounting invariants: everything submitted was answered,
    // nothing fell off the retry ladder, and the cache never
    // re-evaluated a resident entry.
    const DaemonStats stats = daemon.stats();
    EXPECT_EQ(stats.repliesOk + stats.repliesError,
              stats.submitted);
    EXPECT_EQ(stats.shed, static_cast<std::uint64_t>(overloaded));
    EXPECT_EQ(stats.workerFailed, 0u);
    EXPECT_EQ(stats.deadlineExceeded, 0u);
    EXPECT_LE(stats.evaluations, pool.size());
    const auto cache = daemon.cacheCounters();
    EXPECT_EQ(cache.collisions, 0u);
    EXPECT_GT(cache.hits + stats.coalesced, 0u);

    // Restart: the snapshot persisted on shutdown warms the next
    // daemon, whose first answer is a cache hit bit-identical to
    // the baseline.
    daemon.shutdown();
    {
        Daemon warmed(config);
        EXPECT_EQ(warmed.cacheLoadOutcome(),
                  CacheLoadOutcome::Loaded);
        const Reply r = warmed.call(pool.front());
        ASSERT_TRUE(r.ok) << r.detail;
        EXPECT_TRUE(r.cacheHit);
        EXPECT_EQ(r.result, baseline.front());
    }

    // Corrupt the snapshot: the next daemon quarantines it and
    // still serves correct (freshly evaluated) answers.
    {
        std::string doc;
        {
            std::ifstream f(config.cache.path, std::ios::binary);
            std::ostringstream buf;
            buf << f.rdbuf();
            doc = buf.str();
        }
        ASSERT_FALSE(doc.empty());
        doc[doc.size() / 2] ^= 0x20;
        std::ofstream f(config.cache.path, std::ios::binary);
        f << doc;
    }
    {
        Daemon scarred(config);
        EXPECT_EQ(scarred.cacheLoadOutcome(),
                  CacheLoadOutcome::Quarantined);
        const Reply r = scarred.call(pool.front());
        ASSERT_TRUE(r.ok) << r.detail;
        EXPECT_FALSE(r.cacheHit);
        EXPECT_EQ(r.result, baseline.front());
    }
    std::remove(config.cache.path.c_str());
    std::remove((config.cache.path + ".corrupt").c_str());
}

/** An output sink that dies after `budget` bytes, like a client
 *  whose socket closed mid-pipeline. */
struct FailAfterBuf : std::streambuf
{
    explicit FailAfterBuf(std::size_t budget) : budget_(budget) {}

    int
    overflow(int ch) override
    {
        if (budget_ == 0)
            return traits_type::eof();
        --budget_;
        return ch;
    }

  private:
    std::size_t budget_;
};

} // namespace

TEST(ServeSoak, ClientDisconnectMidPipelineDoesNotPoisonTheWorkers)
{
    // Eight requests pipelined four deep; the client vanishes while
    // the first reply is going out.  The session must abort cleanly,
    // every accepted evaluation must still complete (warming the
    // shared cache), and the worker pool must stay healthy.
    const std::vector<std::string> pool = requestPool();
    DaemonConfig config;
    config.workers = 4;
    config.queueCapacity = 16;
    Daemon daemon(config);

    std::ostringstream wire;
    for (std::size_t i = 0; i < 8; ++i)
        writeFrame(wire, pool[i]);
    std::istringstream in(wire.str());
    FailAfterBuf sink(8); // dies inside the first reply frame
    std::ostream out(&sink);
    StreamOptions options;
    options.pipelineWindow = 4;
    const StreamStats ss = serveStream(in, out, daemon, options);
    EXPECT_TRUE(ss.aborted);
    EXPECT_EQ(ss.framesOk, 4u) << "kept reading a dead client";
    EXPECT_LE(ss.repliesWritten, 1u);

    // Nothing was orphaned: every accepted request was answered
    // (into the void), none fell off the ladder.
    const DaemonStats stats = daemon.stats();
    EXPECT_EQ(stats.submitted, 4u);
    EXPECT_EQ(stats.repliesOk + stats.repliesError,
              stats.submitted);
    EXPECT_EQ(stats.workerFailed, 0u);

    // The disconnected client's in-flight work warmed the shared
    // cache for everyone else...
    for (std::size_t i = 0; i < 4; ++i) {
        const Reply r = daemon.call(pool[i]);
        ASSERT_TRUE(r.ok) << r.detail;
        EXPECT_TRUE(r.cacheHit)
            << "request " << i
            << " was dropped instead of completed";
    }
    // ...and the pool still serves fresh work.
    const Reply fresh = daemon.call(pool[8]);
    ASSERT_TRUE(fresh.ok) << fresh.detail;
    EXPECT_FALSE(fresh.cacheHit);
}

TEST(ServeSoak, HostileSessionHoldsInvariantsWithOneWorker)
{
    runSoak(1);
}

TEST(ServeSoak, HostileSessionHoldsInvariantsWithEightWorkers)
{
    runSoak(8);
}
