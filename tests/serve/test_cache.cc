/**
 * @file
 * ResultCache tests: LRU eviction at tiny capacity, the fingerprint
 * collision guard, crash-safe persistence round trips, and
 * quarantine of corrupted snapshots.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "serve/cache.hh"
#include "serve/protocol.hh"
#include "util/error.hh"

using namespace tts;
using namespace tts::serve;

namespace {

Result
resultOf(double seed)
{
    Result r;
    // Deliberately awkward doubles: persistence must round-trip
    // them bit-exactly through the %.17g checkpoint format.
    r["outage.ride_with_wax_s"] = seed * (1.0 / 3.0);
    r["outage.ride_no_wax_s"] = seed + 0.1;
    r["outage.extra_ride_s"] = seed * 1e-7;
    return r;
}

std::string
tempPath(const std::string &name)
{
    const std::string path = testing::TempDir() + "/" + name;
    std::remove(path.c_str());
    std::remove((path + ".corrupt").c_str());
    return path;
}

} // namespace

TEST(ServeCache, MissThenHitThenCounters)
{
    ResultCache cache(CacheConfig{});
    Result out;
    EXPECT_FALSE(cache.find(1, "canon-1", &out));
    cache.insert(1, "canon-1", resultOf(10.0));
    ASSERT_TRUE(cache.find(1, "canon-1", &out));
    EXPECT_EQ(out, resultOf(10.0));
    const auto c = cache.counters();
    EXPECT_EQ(c.hits, 1u);
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.inserts, 1u);
    EXPECT_EQ(c.evictions, 0u);
}

TEST(ServeCache, EvictsLeastRecentlyUsedAtTinyCapacity)
{
    CacheConfig config;
    config.capacity = 2;
    ResultCache cache(config);
    cache.insert(1, "a", resultOf(1.0));
    cache.insert(2, "b", resultOf(2.0));
    Result out;
    // Touch 1 so 2 becomes the LRU victim.
    ASSERT_TRUE(cache.find(1, "a", &out));
    cache.insert(3, "c", resultOf(3.0));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_TRUE(cache.find(1, "a", &out));
    EXPECT_FALSE(cache.find(2, "b", &out));
    EXPECT_TRUE(cache.find(3, "c", &out));
    EXPECT_EQ(cache.counters().evictions, 1u);
}

TEST(ServeCache, ReinsertRefreshesInsteadOfEvicting)
{
    CacheConfig config;
    config.capacity = 2;
    ResultCache cache(config);
    cache.insert(1, "a", resultOf(1.0));
    cache.insert(2, "b", resultOf(2.0));
    cache.insert(1, "a", resultOf(9.0));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.counters().evictions, 0u);
    Result out;
    ASSERT_TRUE(cache.find(1, "a", &out));
    EXPECT_EQ(out, resultOf(9.0));
}

TEST(ServeCache, FingerprintCollisionDegradesToAMiss)
{
    ResultCache cache(CacheConfig{});
    cache.insert(42, "the real canonical text", resultOf(1.0));
    Result out;
    // Same fingerprint, different request: must NOT serve the
    // stored numbers.
    EXPECT_FALSE(cache.find(42, "an impostor with the same fp",
                            &out));
    EXPECT_EQ(cache.counters().collisions, 1u);
    // The real request still hits.
    EXPECT_TRUE(cache.find(42, "the real canonical text", &out));
}

TEST(ServeCache, PersistenceRoundTripsBitExactly)
{
    CacheConfig config;
    config.path = tempPath("tts_serve_cache_rt.ckpt");
    ResultCache a(config);
    EXPECT_EQ(a.load(), CacheLoadOutcome::Fresh);
    a.insert(7, "canon-7", resultOf(7.0));
    a.insert(8, "canon with spaces\nand a newline", resultOf(8.0));
    a.persist();

    ResultCache b(config);
    EXPECT_EQ(b.load(), CacheLoadOutcome::Loaded);
    EXPECT_EQ(b.size(), 2u);
    Result out;
    ASSERT_TRUE(b.find(7, "canon-7", &out));
    EXPECT_EQ(out, resultOf(7.0));
    ASSERT_TRUE(
        b.find(8, "canon with spaces\nand a newline", &out));
    EXPECT_EQ(out, resultOf(8.0));
    std::remove(config.path.c_str());
}

TEST(ServeCache, LoadTruncatesToCapacityKeepingTheMostRecent)
{
    CacheConfig writer;
    writer.path = tempPath("tts_serve_cache_cap.ckpt");
    writer.capacity = 8;
    ResultCache a(writer);
    a.insert(1, "a", resultOf(1.0));
    a.insert(2, "b", resultOf(2.0));
    a.insert(3, "c", resultOf(3.0));
    a.persist();

    CacheConfig reader = writer;
    reader.capacity = 2;
    ResultCache b(reader);
    EXPECT_EQ(b.load(), CacheLoadOutcome::Loaded);
    EXPECT_EQ(b.size(), 2u);
    Result out;
    // Snapshots replay oldest-first, so the oldest entry fell off.
    EXPECT_FALSE(b.find(1, "a", &out));
    EXPECT_TRUE(b.find(2, "b", &out));
    EXPECT_TRUE(b.find(3, "c", &out));
    std::remove(writer.path.c_str());
}

TEST(ServeCache, AutoPersistEveryNInsertsBoundsTheCrashWindow)
{
    CacheConfig config;
    config.path = tempPath("tts_serve_cache_auto.ckpt");
    config.persistEveryInserts = 2;
    ResultCache a(config);
    a.insert(1, "a", resultOf(1.0));
    {
        std::ifstream f(config.path);
        EXPECT_FALSE(f.good()) << "persisted too early";
    }
    a.insert(2, "b", resultOf(2.0));
    // Simulate a crash here: no shutdown persist, but the snapshot
    // already holds both entries.
    ResultCache b(config);
    EXPECT_EQ(b.load(), CacheLoadOutcome::Loaded);
    EXPECT_EQ(b.size(), 2u);
    std::remove(config.path.c_str());
}

TEST(ServeCache, CorruptSnapshotIsQuarantinedNotFatal)
{
    CacheConfig config;
    config.path = tempPath("tts_serve_cache_bad.ckpt");
    ResultCache a(config);
    a.insert(7, "canon-7", resultOf(7.0));
    a.persist();

    // Flip one payload byte; the CRC-32 trailer catches it.
    std::string doc;
    {
        std::ifstream f(config.path, std::ios::binary);
        std::ostringstream buf;
        buf << f.rdbuf();
        doc = buf.str();
    }
    const std::size_t at = doc.find("canon");
    ASSERT_NE(at, std::string::npos);
    doc[at] ^= 0x01;
    {
        std::ofstream f(config.path, std::ios::binary);
        f << doc;
    }

    ResultCache b(config);
    EXPECT_EQ(b.load(), CacheLoadOutcome::Quarantined);
    EXPECT_EQ(b.size(), 0u);
    // The damaged file moved aside for post-mortem...
    std::ifstream corrupt(config.path + ".corrupt");
    EXPECT_TRUE(corrupt.good());
    std::ifstream original(config.path);
    EXPECT_FALSE(original.good());
    // ...and the cache keeps working: insert, persist, reload.
    b.insert(9, "canon-9", resultOf(9.0));
    b.persist();
    ResultCache c(config);
    EXPECT_EQ(c.load(), CacheLoadOutcome::Loaded);
    EXPECT_EQ(c.size(), 1u);
    std::remove(config.path.c_str());
    std::remove((config.path + ".corrupt").c_str());
}

TEST(ServeCache, TruncatedSnapshotIsQuarantinedToo)
{
    CacheConfig config;
    config.path = tempPath("tts_serve_cache_trunc.ckpt");
    ResultCache a(config);
    a.insert(7, "canon-7", resultOf(7.0));
    a.persist();
    std::string doc;
    {
        std::ifstream f(config.path, std::ios::binary);
        std::ostringstream buf;
        buf << f.rdbuf();
        doc = buf.str();
    }
    {
        std::ofstream f(config.path, std::ios::binary);
        f << doc.substr(0, doc.size() / 2);
    }
    ResultCache b(config);
    EXPECT_EQ(b.load(), CacheLoadOutcome::Quarantined);
    std::remove(config.path.c_str());
    std::remove((config.path + ".corrupt").c_str());
}

TEST(ServeCache, MissingPathIsFreshAndPersistIsANoOpWithoutAPath)
{
    ResultCache transient(CacheConfig{});
    EXPECT_EQ(transient.load(), CacheLoadOutcome::Fresh);
    transient.insert(1, "a", resultOf(1.0));
    transient.persist(); // no path: must not throw or write
    EXPECT_EQ(transient.counters().persists, 0u);

    CacheConfig config;
    config.path = tempPath("tts_serve_cache_missing.ckpt");
    ResultCache fresh(config);
    EXPECT_EQ(fresh.load(), CacheLoadOutcome::Fresh);
}

TEST(ServeCache, RejectsZeroCapacity)
{
    CacheConfig config;
    config.capacity = 0;
    EXPECT_THROW(ResultCache cache(config), FatalError);
}
