/**
 * @file
 * SessionMux tests: concurrent framed sessions over socketpairs
 * against one shared daemon - in-order replies per session, slow
 * readers isolated to themselves, disconnects that never poison the
 * pool, and the 8-session x 8-worker soak the tentpole promises
 * (zero crashes, typed replies, every ok reply bit-identical to a
 * daemon-free baseline).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "serve/daemon.hh"
#include "serve/eval.hh"
#include "serve/fault.hh"
#include "serve/mux.hh"
#include "serve/protocol.hh"
#include "util/random.hh"

using namespace tts;
using namespace tts::serve;

namespace {

/** A connected stream pair; [0] goes to the mux, [1] is ours. */
struct Pair
{
    int mux = -1;
    int mine = -1;

    Pair()
    {
        int fds[2];
        EXPECT_EQ(
            ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0)
            << std::strerror(errno);
        mux = fds[0];
        mine = fds[1];
    }

    ~Pair()
    {
        if (mine >= 0)
            ::close(mine);
    }
};

/** Blocking full write of one framed payload to `fd`. */
void
sendFrame(int fd, const std::string &payload)
{
    std::string wire = "tts-frame ";
    wire += std::to_string(payload.size());
    wire += '\n';
    wire += payload;
    std::size_t off = 0;
    while (off < wire.size()) {
        const ssize_t n =
            ::write(fd, wire.data() + off, wire.size() - off);
        ASSERT_GT(n, 0) << std::strerror(errno);
        off += static_cast<std::size_t>(n);
    }
}

/** Blocking read of one reply frame from `fd`. */
Reply
recvReply(int fd)
{
    auto readByte = [&](char *c) {
        const ssize_t n = ::read(fd, c, 1);
        if (n != 1)
            throw Error("reply stream ended early");
        return true;
    };
    std::string header;
    char c = 0;
    while (readByte(&c) && c != '\n')
        header.push_back(c);
    const std::string tag = "tts-frame ";
    if (header.compare(0, tag.size(), tag) != 0)
        throw Error("bad reply header: " + header);
    const std::size_t len = std::stoul(header.substr(tag.size()));
    std::string payload(len, '\0');
    std::size_t off = 0;
    while (off < len) {
        const ssize_t n =
            ::read(fd, &payload[off], len - off);
        if (n <= 0)
            throw Error("reply payload ended early");
        off += static_cast<std::size_t>(n);
    }
    return Reply::fromJson(payload);
}

/** The session request pool: cheap distinct outage studies. */
std::vector<std::string>
outagePool(std::size_t n)
{
    std::vector<std::string> docs;
    for (std::size_t i = 0; i < n; ++i) {
        Request r;
        r.study = "outage";
        r.servers = 8;
        r.horizonS = 60.0 + 15.0 * static_cast<double>(i);
        docs.push_back(writeRequest(r));
    }
    return docs;
}

/** Run the mux on its own thread until `sessions` close. */
struct MuxRunner
{
    SessionMux mux;
    std::thread thread;

    MuxRunner(Daemon &daemon, MuxOptions options)
        : mux(daemon, options)
    {
        thread = std::thread([this] { mux.run(); });
    }

    ~MuxRunner()
    {
        mux.stop();
        if (thread.joinable())
            thread.join();
    }
};

} // namespace

TEST(ServeMux, SingleSessionRoundTripsInOrder)
{
    Daemon daemon(DaemonConfig{});
    const std::vector<std::string> pool = outagePool(4);
    std::vector<Result> baseline;
    for (const std::string &doc : pool)
        baseline.push_back(evaluate(parseRequest(doc)));

    MuxOptions options;
    options.exitAfterSessions = 1;
    MuxRunner runner(daemon, options);
    Pair pair;
    runner.mux.adopt(pair.mux);
    for (const std::string &doc : pool)
        sendFrame(pair.mine, doc);
    ::shutdown(pair.mine, SHUT_WR);
    for (std::size_t i = 0; i < pool.size(); ++i) {
        const Reply r = recvReply(pair.mine);
        ASSERT_TRUE(r.ok) << r.detail;
        EXPECT_EQ(r.result, baseline[i])
            << "reply " << i << " out of order or wrong";
    }
    runner.thread.join();
    const MuxStats stats = runner.mux.stats();
    EXPECT_EQ(stats.sessionsAccepted, 1u);
    EXPECT_EQ(stats.sessionsClosed, 1u);
    EXPECT_EQ(stats.framesOk, pool.size());
    EXPECT_EQ(stats.repliesWritten, pool.size());
    EXPECT_EQ(stats.repliesDiscarded, 0u);
}

TEST(ServeMux, MalformedFramesGetTypedRepliesInTheirSlots)
{
    Daemon daemon(DaemonConfig{});
    MuxOptions options;
    options.exitAfterSessions = 1;
    options.limits.maxPayloadBytes = 1024;
    MuxRunner runner(daemon, options);
    Pair pair;
    runner.mux.adopt(pair.mux);

    const std::string good = outagePool(1)[0];
    sendFrame(pair.mine, good);
    sendFrame(pair.mine, "this is not a request");
    // An oversized frame is drained and the session stays in sync.
    const std::string big(2048, 'x');
    sendFrame(pair.mine, big);
    sendFrame(pair.mine, good);
    ::shutdown(pair.mine, SHUT_WR);

    const Reply r0 = recvReply(pair.mine);
    EXPECT_TRUE(r0.ok) << r0.detail;
    const Reply r1 = recvReply(pair.mine);
    EXPECT_FALSE(r1.ok);
    EXPECT_EQ(r1.error, ErrorKind::Malformed);
    const Reply r2 = recvReply(pair.mine);
    EXPECT_FALSE(r2.ok);
    EXPECT_EQ(r2.error, ErrorKind::Malformed);
    const Reply r3 = recvReply(pair.mine);
    EXPECT_TRUE(r3.ok) << r3.detail;
    EXPECT_TRUE(r3.cacheHit);
    runner.thread.join();
}

TEST(ServeMux, DisconnectMidPipelineDiscardsRepliesNotWork)
{
    DaemonConfig config;
    config.workers = 2;
    Daemon daemon(config);
    MuxOptions options;
    options.exitAfterSessions = 1;
    MuxRunner runner(daemon, options);
    const std::vector<std::string> pool = outagePool(3);
    {
        Pair pair;
        runner.mux.adopt(pair.mux);
        for (const std::string &doc : pool)
            sendFrame(pair.mine, doc);
        // Hang up without reading a single reply.
        ::close(pair.mine);
        pair.mine = -1;
    }
    runner.thread.join();
    // Every accepted request still ran to completion...
    daemon.drain();
    const DaemonStats stats = daemon.stats();
    EXPECT_EQ(stats.repliesOk + stats.repliesError,
              stats.submitted);
    EXPECT_EQ(stats.workerFailed, 0u);
    // ...and the daemon still serves the next client, now warm.
    const Reply r = daemon.call(pool[0]);
    ASSERT_TRUE(r.ok) << r.detail;
    EXPECT_TRUE(r.cacheHit);
}

TEST(ServeMux, SlowReaderOnlySlowsItself)
{
    DaemonConfig config;
    config.workers = 4;
    Daemon daemon(config);
    MuxOptions options;
    options.exitAfterSessions = 2;
    MuxRunner runner(daemon, options);
    const std::vector<std::string> pool = outagePool(4);

    Pair slow;
    Pair fast;
    runner.mux.adopt(slow.mux);
    runner.mux.adopt(fast.mux);
    // The slow session floods requests and reads nothing yet; its
    // replies must pile up in *its* buffers only.
    for (int round = 0; round < 4; ++round)
        for (const std::string &doc : pool)
            sendFrame(slow.mine, doc);
    // The fast session gets all its replies while the slow one is
    // still not reading.
    for (const std::string &doc : pool)
        sendFrame(fast.mine, doc);
    ::shutdown(fast.mine, SHUT_WR);
    for (std::size_t i = 0; i < pool.size(); ++i) {
        const Reply r = recvReply(fast.mine);
        EXPECT_TRUE(r.ok) << r.detail;
    }
    // Now drain the slow session; every reply arrives, in order.
    ::shutdown(slow.mine, SHUT_WR);
    for (std::size_t k = 0; k < 4 * pool.size(); ++k) {
        const Reply r = recvReply(slow.mine);
        EXPECT_TRUE(r.ok) << r.detail;
    }
    runner.thread.join();
    const MuxStats stats = runner.mux.stats();
    EXPECT_EQ(stats.sessionsClosed, 2u);
    EXPECT_EQ(stats.repliesWritten, 5 * pool.size());
}

TEST(ServeMux, RefusesAdoptionsPastMaxSessions)
{
    Daemon daemon(DaemonConfig{});
    MuxOptions options;
    options.maxSessions = 1;
    options.exitAfterSessions = 1;
    MuxRunner runner(daemon, options);
    Pair first;
    Pair second;
    runner.mux.adopt(first.mux);
    // Wait until the first adoption lands so the order is fixed.
    while (runner.mux.stats().sessionsAccepted == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    runner.mux.adopt(second.mux);
    while (runner.mux.stats().sessionsRefused == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    // The refused client sees EOF, not a hang.
    char c;
    EXPECT_EQ(::read(second.mine, &c, 1), 0);
    ::shutdown(first.mine, SHUT_WR);
    runner.thread.join();
    EXPECT_EQ(runner.mux.stats().sessionsRefused, 1u);
}

namespace {

/**
 * The multi-client soak: `sessions` concurrent framed sessions
 * against one daemon at `workers` width, with the serve fault
 * plan's multi-client draws (malformed payloads, disconnects, slow
 * readers, injected worker crashes) woven through the traffic.
 */
void
runMultiClientSoak(std::size_t sessions, std::size_t workers)
{
    const std::size_t kPerSession = 12;
    ServeFaultProfile profile;
    profile.workerCrashPerRequest = 0.10;
    profile.malformedPerRequest = 0.10;
    profile.disconnectPerRequest = 0.05;
    profile.slowSessionPerSession = 0.25;
    profile.seed = 0x10ad5e55;
    const ServeFaultPlan plan = ServeFaultPlan::generate(
        profile, sessions * kPerSession, sessions);
    ASSERT_GT(plan.countOf(RequestFault::Malformed), 0u);
    ASSERT_GT(plan.countOf(RequestFault::Disconnect), 0u);
    ASSERT_GT(plan.slowSessions(), 0u);
    ASSERT_GT(plan.crashedRequests(), 0u);

    const std::vector<std::string> pool = outagePool(8);
    std::vector<Result> baseline;
    for (const std::string &doc : pool)
        baseline.push_back(evaluate(parseRequest(doc)));

    DaemonConfig config;
    config.workers = workers;
    config.queueCapacity = 64;
    config.retryBudget = 3;
    config.retryBackoffBaseMs = 0.1;
    Daemon daemon(config, plan);
    MuxOptions options;
    options.maxSessions = sessions;
    options.exitAfterSessions = sessions;
    MuxRunner runner(daemon, options);

    std::vector<std::thread> clients;
    std::atomic<std::size_t> ok_replies{0};
    std::atomic<std::size_t> typed_errors{0};
    std::atomic<bool> failed{false};
    for (std::size_t s = 0; s < sessions; ++s) {
        int fds[2];
        ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        runner.mux.adopt(fds[0]);
        const int mine = fds[1];
        clients.emplace_back([&, s, mine] {
            Rng pick = Rng::forStream(profile.seed, 7000 + s);
            std::vector<int> slots;
            bool disconnected = false;
            for (std::size_t k = 0; k < kPerSession; ++k) {
                const std::size_t i = s * kPerSession + k;
                switch (plan.requestFault(i)) {
                  case RequestFault::Malformed:
                    sendFrame(mine, "garbage request " +
                                        std::to_string(i));
                    slots.push_back(-1);
                    break;
                  case RequestFault::Disconnect: {
                    const int which = static_cast<int>(
                        pick.uniformInt(pool.size()));
                    sendFrame(
                        mine,
                        pool[static_cast<std::size_t>(which)]);
                    disconnected = true;
                    break;
                  }
                  default: {
                    const int which = static_cast<int>(
                        pick.uniformInt(pool.size()));
                    sendFrame(
                        mine,
                        pool[static_cast<std::size_t>(which)]);
                    slots.push_back(which);
                    break;
                  }
                }
                if (disconnected)
                    break;
            }
            if (disconnected) {
                // Hang up with replies still in flight: the mux
                // must discard them without disturbing anyone.
                ::close(mine);
                return;
            }
            ::shutdown(mine, SHUT_WR);
            const bool slow = plan.slowSession(s);
            for (std::size_t k = 0; k < slots.size(); ++k) {
                if (slow && k % 3 == 0)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(2));
                try {
                    const Reply r = recvReply(mine);
                    if (slots[k] < 0) {
                        if (r.ok ||
                            r.error != ErrorKind::Malformed)
                            failed = true;
                        ++typed_errors;
                    } else if (r.ok) {
                        ++ok_replies;
                        if (r.result !=
                            baseline[static_cast<std::size_t>(
                                slots[k])])
                            failed = true;
                    } else {
                        // Overloaded is the only legitimate typed
                        // rejection of faithful traffic here.
                        if (r.error != ErrorKind::Overloaded)
                            failed = true;
                        ++typed_errors;
                    }
                } catch (const Error &) {
                    failed = true;
                }
            }
            ::close(mine);
        });
    }
    for (std::thread &t : clients)
        t.join();
    runner.thread.join();
    daemon.drain();

    EXPECT_FALSE(failed.load())
        << "a session saw a wrong, out-of-order, or missing reply";
    EXPECT_GT(ok_replies.load(), 0u);
    const MuxStats mux_stats = runner.mux.stats();
    EXPECT_EQ(mux_stats.sessionsAccepted, sessions);
    EXPECT_EQ(mux_stats.sessionsClosed, sessions);
    const DaemonStats stats = daemon.stats();
    EXPECT_EQ(stats.repliesOk + stats.repliesError,
              stats.submitted);
    EXPECT_EQ(stats.workerFailed, 0u);
    EXPECT_EQ(daemon.cacheCounters().collisions, 0u);
}

} // namespace

TEST(ServeMux, MultiClientSoakEightSessionsEightWorkers)
{
    runMultiClientSoak(8, 8);
}

TEST(ServeMux, MultiClientSoakEightSessionsOneWorker)
{
    runMultiClientSoak(8, 1);
}
