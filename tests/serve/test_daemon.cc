/**
 * @file
 * Daemon behavior tests: the degradation ladder (cache hit,
 * coalescing, deadline, shed, retry, worker_failed, shutdown),
 * cache-hit bit-identity with fresh evaluations at 1 and 8 workers,
 * and the ordered reply stream.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "serve/daemon.hh"
#include "serve/eval.hh"
#include "util/error.hh"

using namespace tts;
using namespace tts::serve;

namespace {

/** A fast outage request (seconds of sim time, ms of wall time). */
std::string
quickRequest(double horizon_s = 120.0, double util = 0.9,
             double wax_l = 0.0)
{
    Request r;
    r.study = "outage";
    r.servers = 8;
    r.horizonS = horizon_s;
    r.utilization = util;
    r.waxLiters = wax_l;
    return writeRequest(r);
}

/** Plan where the first `crashed` sequences fail `attempts` times. */
ServeFaultPlan
crashPlan(std::size_t crashed, std::size_t attempts)
{
    ServeFaultProfile profile;
    profile.workerCrashPerRequest = 1.0;
    profile.workerCrashAttempts = attempts;
    return ServeFaultPlan::generate(profile, crashed);
}

/** Wait until the daemon's worker is busy retrying (it popped the
 *  blocker job and entered its backoff sleep). */
void
awaitWorkerBusy(Daemon &daemon)
{
    for (int spin = 0; spin < 2000; ++spin) {
        if (daemon.stats().retries >= 1)
            return;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    FAIL() << "worker never picked up the blocker job";
}

} // namespace

TEST(ServeDaemon, AnswersAQuickRequest)
{
    DaemonConfig config;
    config.workers = 2;
    Daemon daemon(config);
    const Reply reply = daemon.call(quickRequest());
    ASSERT_TRUE(reply.ok) << reply.detail;
    EXPECT_FALSE(reply.cacheHit);
    EXPECT_EQ(reply.fingerprintValue,
              fingerprint(parseRequest(quickRequest())));
    EXPECT_EQ(reply.result.count("outage.ride_with_wax_s"), 1u);
    EXPECT_GT(reply.evalMs, 0.0);
    const DaemonStats stats = daemon.stats();
    EXPECT_EQ(stats.submitted, 1u);
    EXPECT_EQ(stats.repliesOk, 1u);
    EXPECT_EQ(stats.evaluations, 1u);
}

TEST(ServeDaemon, CacheHitIsBitIdenticalToTheFreshEvaluation)
{
    DaemonConfig config;
    config.workers = 2;
    Daemon daemon(config);
    const Reply fresh = daemon.call(quickRequest());
    const Reply hit = daemon.call(quickRequest());
    ASSERT_TRUE(fresh.ok);
    ASSERT_TRUE(hit.ok);
    EXPECT_FALSE(fresh.cacheHit);
    EXPECT_TRUE(hit.cacheHit);
    EXPECT_EQ(hit.evalMs, 0.0);
    // Bit-identity: the maps compare equal double-for-double.
    EXPECT_EQ(hit.result, fresh.result);
    // And both match a direct, daemon-free evaluation.
    EXPECT_EQ(fresh.result,
              evaluate(parseRequest(quickRequest())));
    EXPECT_EQ(daemon.stats().evaluations, 1u);
}

TEST(ServeDaemon, ResultsIdenticalAtOneAndEightWorkers)
{
    std::vector<std::string> docs = {
        quickRequest(120.0, 0.9, 0.0),
        quickRequest(120.0, 0.9, 8.0),
        quickRequest(180.0, 0.6, 0.0),
    };
    std::vector<Result> at1, at8;
    {
        DaemonConfig config;
        config.workers = 1;
        Daemon daemon(config);
        for (const auto &doc : docs) {
            Reply r = daemon.call(doc);
            ASSERT_TRUE(r.ok) << r.detail;
            at1.push_back(r.result);
        }
    }
    {
        DaemonConfig config;
        config.workers = 8;
        Daemon daemon(config);
        for (const auto &doc : docs) {
            Reply r = daemon.call(doc);
            ASSERT_TRUE(r.ok) << r.detail;
            at8.push_back(r.result);
        }
    }
    EXPECT_EQ(at1, at8);
}

TEST(ServeDaemon, MalformedRequestGetsATypedReplyAndServiceContinues)
{
    DaemonConfig config;
    config.workers = 1;
    Daemon daemon(config);
    const Reply bad = daemon.call("{\"study\": \"astrology\"}");
    ASSERT_FALSE(bad.ok);
    EXPECT_EQ(bad.error, ErrorKind::Malformed);
    EXPECT_NE(bad.detail.find("study"), std::string::npos);
    const Reply good = daemon.call(quickRequest());
    EXPECT_TRUE(good.ok);
    EXPECT_EQ(daemon.stats().malformed, 1u);
}

TEST(ServeDaemon, UnknownScenarioIsMalformedNotWorkerFailed)
{
    DaemonConfig config;
    config.workers = 1;
    Daemon daemon(config);
    Request r;
    r.study = "resilience";
    r.scenario = "volcano";
    const Reply reply = daemon.call(writeRequest(r));
    ASSERT_FALSE(reply.ok);
    EXPECT_EQ(reply.error, ErrorKind::Malformed);
    EXPECT_NE(reply.detail.find("volcano"), std::string::npos);
}

TEST(ServeDaemon, TransientCrashIsRetriedWithinTheBudget)
{
    DaemonConfig config;
    config.workers = 1;
    config.retryBudget = 3;
    config.retryBackoffBaseMs = 0.1;
    // Sequence 0 fails its first attempt, then succeeds.
    Daemon daemon(config, crashPlan(1, 1));
    const Reply reply = daemon.call(quickRequest());
    ASSERT_TRUE(reply.ok) << reply.detail;
    const DaemonStats stats = daemon.stats();
    EXPECT_EQ(stats.retries, 1u);
    EXPECT_EQ(stats.evaluations, 1u);
    EXPECT_EQ(stats.workerFailed, 0u);
}

TEST(ServeDaemon, CrashPastTheBudgetIsWorkerFailed)
{
    DaemonConfig config;
    config.workers = 1;
    config.retryBudget = 2;
    config.retryBackoffBaseMs = 0.1;
    // Sequence 0 fails five attempts - more than the budget allows.
    Daemon daemon(config, crashPlan(1, 5));
    const Reply reply = daemon.call(quickRequest());
    ASSERT_FALSE(reply.ok);
    EXPECT_EQ(reply.error, ErrorKind::WorkerFailed);
    EXPECT_NE(reply.detail.find("injected worker crash"),
              std::string::npos);
    EXPECT_EQ(daemon.stats().workerFailed, 1u);
    EXPECT_EQ(daemon.stats().retries, 2u);
    // The failure was per-request: the next request (sequence 1,
    // beyond the plan) runs clean.
    EXPECT_TRUE(daemon.call(quickRequest(150.0)).ok);
}

TEST(ServeDaemon, OverCapacitySubmitsAreShedWithTypedReplies)
{
    DaemonConfig config;
    config.workers = 1;
    config.queueCapacity = 1;
    config.retryBudget = 8;
    config.retryBackoffBaseMs = 30.0;
    // The blocker (sequence 0) keeps the only worker busy in
    // retry-backoff sleeps (30+60+120 ms) while we overfill the
    // queue.
    Daemon daemon(config, crashPlan(1, 3));
    auto blocker = daemon.submit(quickRequest());
    awaitWorkerBusy(daemon);
    auto queued = daemon.submit(quickRequest(130.0));
    auto shed1 = daemon.submit(quickRequest(140.0));
    auto shed2 = daemon.submit(quickRequest(150.0));
    const Reply s1 = shed1.get();
    const Reply s2 = shed2.get();
    ASSERT_FALSE(s1.ok);
    EXPECT_EQ(s1.error, ErrorKind::Overloaded);
    EXPECT_NE(s1.detail.find("capacity 1"), std::string::npos);
    EXPECT_EQ(s2.error, ErrorKind::Overloaded);
    EXPECT_TRUE(blocker.get().ok);
    EXPECT_TRUE(queued.get().ok);
    const DaemonStats stats = daemon.stats();
    EXPECT_EQ(stats.shed, 2u);
    EXPECT_EQ(stats.accepted, 2u);
    EXPECT_EQ(stats.repliesOk + stats.repliesError,
              stats.submitted);
}

TEST(ServeDaemon, ExpiredDeadlineIsRejectedBeforeEvaluation)
{
    DaemonConfig config;
    config.workers = 1;
    config.queueCapacity = 8;
    config.retryBudget = 8;
    config.retryBackoffBaseMs = 30.0;
    Daemon daemon(config, crashPlan(1, 3));
    auto blocker = daemon.submit(quickRequest());
    awaitWorkerBusy(daemon);
    // Queued behind the blocker with a 1 microsecond deadline: by
    // the time a worker frees up it has long expired.
    Request r = parseRequest(quickRequest(140.0));
    r.deadlineMs = 0.001;
    auto late = daemon.submit(writeRequest(r));
    const Reply reply = late.get();
    ASSERT_FALSE(reply.ok);
    EXPECT_EQ(reply.error, ErrorKind::DeadlineExceeded);
    EXPECT_EQ(reply.fingerprintValue, fingerprint(r));
    EXPECT_TRUE(blocker.get().ok);
    EXPECT_EQ(daemon.stats().deadlineExceeded, 1u);
    EXPECT_EQ(daemon.stats().evaluations, 1u);
}

TEST(ServeDaemon, CachedAnswersAreServedEvenPastTheDeadline)
{
    DaemonConfig config;
    config.workers = 1;
    Daemon daemon(config);
    ASSERT_TRUE(daemon.call(quickRequest()).ok);
    // Deadlines bound time-to-evaluate; a cached copy is free.
    Request r = parseRequest(quickRequest());
    r.deadlineMs = 0.0000001;
    const Reply reply = daemon.call(writeRequest(r));
    ASSERT_TRUE(reply.ok) << reply.detail;
    EXPECT_TRUE(reply.cacheHit);
}

TEST(ServeDaemon, IdenticalInFlightRequestsCoalesceToOneEvaluation)
{
    DaemonConfig config;
    config.workers = 4;
    config.retryBudget = 4;
    config.retryBackoffBaseMs = 40.0;
    // The leader (sequence 0) spends >= 40 ms in backoff before its
    // successful attempt - a wide window for the duplicates to land
    // on other workers and join its flight.
    Daemon daemon(config, crashPlan(1, 1));
    std::vector<std::future<Reply>> futures;
    for (int i = 0; i < 4; ++i)
        futures.push_back(daemon.submit(quickRequest()));
    std::vector<Reply> replies;
    for (auto &f : futures)
        replies.push_back(f.get());
    for (const Reply &r : replies) {
        ASSERT_TRUE(r.ok) << r.detail;
        EXPECT_EQ(r.result, replies.front().result);
    }
    const DaemonStats stats = daemon.stats();
    EXPECT_EQ(stats.evaluations, 1u)
        << "duplicates re-evaluated instead of coalescing";
    // Everyone but the leader saw a shared answer.
    std::size_t shared = 0;
    for (const Reply &r : replies)
        if (r.cacheHit)
            ++shared;
    EXPECT_EQ(shared, 3u);
}

TEST(ServeDaemon, ShutdownAnswersEverythingThenRejectsNewWork)
{
    DaemonConfig config;
    config.workers = 2;
    Daemon daemon(config);
    std::vector<std::future<Reply>> futures;
    for (int i = 0; i < 6; ++i)
        futures.push_back(
            daemon.submit(quickRequest(100.0 + 10.0 * i)));
    daemon.shutdown();
    for (auto &f : futures)
        EXPECT_TRUE(f.get().ok);
    const Reply late = daemon.call(quickRequest());
    ASSERT_FALSE(late.ok);
    EXPECT_EQ(late.error, ErrorKind::Shutdown);
    const DaemonStats stats = daemon.stats();
    EXPECT_EQ(stats.repliesOk + stats.repliesError,
              stats.submitted);
}

TEST(ServeDaemon, OptimizeStudyIsServedAndMemoizedLikeAnyOther)
{
    // The new "optimize" request kind: a trimmed tts::opt search
    // answered through the same unified cache as every study.
    Request r;
    r.study = "optimize";
    r.servers = 8;
    r.days = 0.25;
    r.budget = 4;
    const std::string doc = writeRequest(r);
    const Result baseline = evaluate(parseRequest(doc));

    DaemonConfig config;
    config.workers = 2;
    Daemon daemon(config);
    const Reply fresh = daemon.call(doc);
    ASSERT_TRUE(fresh.ok) << fresh.detail;
    EXPECT_FALSE(fresh.cacheHit);
    EXPECT_EQ(fresh.result.count("opt.best_cost"), 1u);
    EXPECT_EQ(fresh.result.count("opt.melt_c"), 1u);
    EXPECT_EQ(fresh.result, baseline);
    const Reply memo = daemon.call(doc);
    ASSERT_TRUE(memo.ok);
    EXPECT_TRUE(memo.cacheHit);
    EXPECT_EQ(memo.result, baseline);
    EXPECT_EQ(daemon.stats().evaluations, 1u);

    // Different search knobs are a different cache line.
    Request wider = r;
    wider.budget = 6;
    const Reply other = daemon.call(writeRequest(wider));
    ASSERT_TRUE(other.ok) << other.detail;
    EXPECT_FALSE(other.cacheHit);
}

TEST(ServeDaemon, FutureProtoGetsATypedUnsupportedVersionReply)
{
    DaemonConfig config;
    config.workers = 1;
    Daemon daemon(config);
    const Reply reply =
        daemon.call("{\"study\": \"outage\", \"proto\": 2}");
    ASSERT_FALSE(reply.ok);
    EXPECT_EQ(reply.error, ErrorKind::UnsupportedVersion);
    EXPECT_NE(reply.detail.find("proto"), std::string::npos);
    // Distinct from malformed: the counters tell operators clients
    // are ahead of the daemon, not broken.
    const DaemonStats stats = daemon.stats();
    EXPECT_EQ(stats.unsupportedVersion, 1u);
    EXPECT_EQ(stats.malformed, 0u);
    EXPECT_EQ(stats.toMap().at("serve.unsupported_version"), 1.0);
    // Service continues, and explicit proto 1 is just v1.
    const Reply v1 = daemon.call(
        "{\"study\": \"outage\", \"servers\": 8, "
        "\"horizon_s\": 120, \"proto\": 1}");
    EXPECT_TRUE(v1.ok) << v1.detail;
}

TEST(ServeDaemon, SubmitAsyncDeliversTheReplyThroughTheCallback)
{
    DaemonConfig config;
    config.workers = 2;
    Daemon daemon(config);
    std::mutex mu;
    std::condition_variable cv;
    std::vector<Reply> got;
    const std::size_t n = 4;
    for (std::size_t i = 0; i < n; ++i)
        daemon.submitAsync(
            quickRequest(100.0 + 10.0 * i), [&](Reply reply) {
                std::lock_guard<std::mutex> lock(mu);
                got.push_back(std::move(reply));
                cv.notify_all();
            });
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(60),
                            [&] { return got.size() == n; }));
    for (const Reply &r : got)
        EXPECT_TRUE(r.ok) << r.detail;
    // Rejections (here: shutdown) ride the same callback path.
    daemon.shutdown();
    bool called = false;
    daemon.submitAsync(quickRequest(), [&](Reply reply) {
        called = true;
        EXPECT_FALSE(reply.ok);
        EXPECT_EQ(reply.error, ErrorKind::Shutdown);
    });
    EXPECT_TRUE(called);
}

TEST(ServeDaemon, StatsMapUsesTheServeNamespace)
{
    DaemonConfig config;
    config.workers = 1;
    Daemon daemon(config);
    daemon.call(quickRequest());
    const auto map = daemon.stats().toMap();
    EXPECT_EQ(map.at("serve.submitted"), 1.0);
    EXPECT_EQ(map.at("serve.replies_ok"), 1.0);
    EXPECT_EQ(map.count("serve.shed"), 1u);
    EXPECT_EQ(map.count("serve.queue_peak"), 1u);
}

TEST(ServeStream, RepliesArriveInRequestOrderWithTypedErrors)
{
    DaemonConfig config;
    config.workers = 2;
    Daemon daemon(config);
    std::stringstream in;
    writeFrame(in, quickRequest());
    writeFrame(in, "this is not json");
    writeFrame(in, quickRequest()); // duplicate: cache or coalesce
    std::stringstream out;
    const StreamStats stats = serveStream(in, out, daemon);
    EXPECT_EQ(stats.framesOk, 3u);
    EXPECT_EQ(stats.framesMalformed, 0u);
    EXPECT_EQ(stats.repliesWritten, 3u);
    EXPECT_FALSE(stats.aborted);

    FrameResult f1 = readFrame(out);
    ASSERT_EQ(f1.status, FrameStatus::Ok);
    const Reply r1 = Reply::fromJson(f1.payload);
    EXPECT_TRUE(r1.ok);
    FrameResult f2 = readFrame(out);
    ASSERT_EQ(f2.status, FrameStatus::Ok);
    const Reply r2 = Reply::fromJson(f2.payload);
    ASSERT_FALSE(r2.ok);
    EXPECT_EQ(r2.error, ErrorKind::Malformed);
    FrameResult f3 = readFrame(out);
    ASSERT_EQ(f3.status, FrameStatus::Ok);
    const Reply r3 = Reply::fromJson(f3.payload);
    EXPECT_TRUE(r3.ok);
    EXPECT_EQ(r3.result, r1.result);
    EXPECT_EQ(readFrame(out).status, FrameStatus::Eof);
}

TEST(ServeStream, OversizedFrameGetsAnErrorReplyAndServiceContinues)
{
    DaemonConfig config;
    config.workers = 1;
    Daemon daemon(config);
    StreamOptions options;
    options.limits.maxPayloadBytes = 512;
    std::stringstream in;
    in << "tts-frame 1000\n" << std::string(1000, 'x');
    writeFrame(in, quickRequest(), FrameLimits{512});
    std::stringstream out;
    const StreamStats stats = serveStream(in, out, daemon, options);
    EXPECT_EQ(stats.framesMalformed, 1u);
    EXPECT_EQ(stats.framesOk, 1u);
    EXPECT_FALSE(stats.aborted);
    const Reply r1 = Reply::fromJson(readFrame(out).payload);
    ASSERT_FALSE(r1.ok);
    EXPECT_EQ(r1.error, ErrorKind::Malformed);
    const Reply r2 = Reply::fromJson(readFrame(out).payload);
    EXPECT_TRUE(r2.ok) << r2.detail;
}

TEST(ServeStream, UnrecoverableFrameEndsTheSessionAfterTheReply)
{
    DaemonConfig config;
    config.workers = 1;
    Daemon daemon(config);
    std::stringstream in;
    writeFrame(in, quickRequest());
    in << "tts-frame 50\nshort"; // truncated: unrecoverable
    std::stringstream out;
    const StreamStats stats = serveStream(in, out, daemon);
    EXPECT_TRUE(stats.aborted);
    EXPECT_EQ(stats.repliesWritten, 2u);
    const Reply r1 = Reply::fromJson(readFrame(out).payload);
    EXPECT_TRUE(r1.ok);
    const Reply r2 = Reply::fromJson(readFrame(out).payload);
    ASSERT_FALSE(r2.ok);
    EXPECT_EQ(r2.error, ErrorKind::Malformed);
}
