/**
 * @file
 * MissBatcher tests: the cross-request batching edges the tentpole
 * promises - a window of one, all-hits traffic that never sweeps,
 * duplicate canonicals coalescing inside one window, and the
 * bit-identity of batched vs individual evaluation at 1 and 8
 * workers.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "serve/batch.hh"
#include "serve/daemon.hh"
#include "serve/eval.hh"
#include "util/error.hh"

using namespace tts;
using namespace tts::serve;

namespace {

/** A fleet request pool small enough to sweep in a test. */
std::vector<Request>
fleetPool(std::size_t n)
{
    std::vector<Request> reqs;
    for (std::size_t i = 0; i < n; ++i) {
        Request r;
        r.study = "fleet";
        r.servers = 8 + 4 * i;
        r.days = 0.25;
        reqs.push_back(r);
    }
    return reqs;
}

/** A sweep stub that records batch compositions. */
struct RecordingSweep
{
    std::vector<std::vector<std::string>> batches;
    std::mutex mu;

    MissBatcher::Sweep fn()
    {
        return [this](const std::vector<Request> &reqs) {
            {
                std::lock_guard<std::mutex> lock(mu);
                std::vector<std::string> canon;
                for (const Request &r : reqs)
                    canon.push_back(canonicalText(r));
                batches.push_back(std::move(canon));
            }
            std::vector<Result> out;
            for (const Request &r : reqs) {
                Result one;
                one["fleet.servers"] =
                    static_cast<double>(r.servers);
                out.push_back(std::move(one));
            }
            return out;
        };
    }
};

} // namespace

TEST(ServeBatch, OptionsAreValidated)
{
    BatchOptions bad;
    bad.windowMs = -1.0;
    EXPECT_THROW(MissBatcher b(bad), FatalError);
    bad = BatchOptions{};
    bad.maxBatch = 0;
    EXPECT_THROW(MissBatcher b(bad), FatalError);
}

TEST(ServeBatch, WindowOfOneEvaluatesEveryMissIndividually)
{
    // maxBatch = 1 (and likewise windowMs = 0) must degenerate to
    // one sweep per request - no window ever opens.
    for (bool zeroWindow : {false, true}) {
        RecordingSweep rec;
        BatchOptions options;
        if (zeroWindow)
            options.windowMs = 0.0;
        else
            options.maxBatch = 1;
        MissBatcher batcher(options, rec.fn());
        const std::vector<Request> pool = fleetPool(3);
        for (const Request &r : pool)
            batcher.evaluate(r, canonicalText(r));
        const BatchStats stats = batcher.stats();
        EXPECT_EQ(stats.sweeps, 3u);
        EXPECT_EQ(stats.jobs, 3u);
        EXPECT_EQ(stats.requests, 3u);
        EXPECT_EQ(stats.coalesced, 0u);
        EXPECT_EQ(stats.largestBatch, 1u);
        ASSERT_EQ(rec.batches.size(), 3u);
        for (const auto &batch : rec.batches)
            EXPECT_EQ(batch.size(), 1u);
    }
}

TEST(ServeBatch, ConcurrentMissesShareOneSweep)
{
    RecordingSweep rec;
    BatchOptions options;
    options.windowMs = 1000.0; // generous: the batch closes on fill
    options.maxBatch = 4;
    MissBatcher batcher(options, rec.fn());
    const std::vector<Request> pool = fleetPool(4);
    std::vector<std::future<Result>> futs;
    for (const Request &r : pool)
        futs.push_back(std::async(std::launch::async, [&, r] {
            return batcher.evaluate(r, canonicalText(r));
        }));
    for (std::size_t i = 0; i < pool.size(); ++i) {
        const Result got = futs[i].get();
        EXPECT_EQ(got.at("fleet.servers"),
                  static_cast<double>(pool[i].servers))
            << "request " << i
            << " got another request's result back";
    }
    const BatchStats stats = batcher.stats();
    EXPECT_EQ(stats.requests, 4u);
    EXPECT_EQ(stats.jobs, 4u);
    // All four were in flight together, so at most two windows can
    // have formed (the leader's fill target is 4; a straggler that
    // missed the first window leads its own).
    EXPECT_LE(stats.sweeps, 2u);
    EXPECT_GE(stats.largestBatch, 2u);
}

TEST(ServeBatch, DuplicateCanonicalsInOneWindowCoalesce)
{
    RecordingSweep rec;
    BatchOptions options;
    options.windowMs = 500.0;
    options.maxBatch = 8;
    MissBatcher batcher(options, rec.fn());
    Request r = fleetPool(1)[0];
    const std::string canon = canonicalText(r);

    // The leader holds the window open; members sending the same
    // canonical must fold onto its single job.
    std::vector<std::future<Result>> futs;
    for (int i = 0; i < 3; ++i)
        futs.push_back(std::async(std::launch::async, [&] {
            return batcher.evaluate(r, canon);
        }));
    std::vector<Result> results;
    for (auto &f : futs)
        results.push_back(f.get());
    for (const Result &got : results)
        EXPECT_EQ(got.at("fleet.servers"),
                  static_cast<double>(r.servers));

    const BatchStats stats = batcher.stats();
    EXPECT_EQ(stats.requests, 3u);
    // However the threads raced into windows, no window may carry
    // the same canonical twice.
    for (const auto &batch : rec.batches) {
        for (std::size_t i = 0; i < batch.size(); ++i)
            for (std::size_t j = i + 1; j < batch.size(); ++j)
                EXPECT_NE(batch[i], batch[j])
                    << "duplicate canonical in one sweep";
    }
    EXPECT_EQ(stats.jobs + stats.coalesced, stats.requests);
}

TEST(ServeBatch, SweepFailurePropagatesToEveryMember)
{
    BatchOptions options;
    options.windowMs = 200.0;
    options.maxBatch = 2;
    MissBatcher batcher(
        options,
        [](const std::vector<Request> &) -> std::vector<Result> {
            throw TransientWorkerFailure("sweep died");
        });
    const std::vector<Request> pool = fleetPool(2);
    std::vector<std::future<Result>> futs;
    for (const Request &r : pool)
        futs.push_back(std::async(std::launch::async, [&, r] {
            return batcher.evaluate(r, canonicalText(r));
        }));
    for (auto &f : futs)
        EXPECT_THROW(f.get(), TransientWorkerFailure);
}

TEST(ServeBatch, BatchedResultsAreBitIdenticalToIndividualEvals)
{
    // The real sweep, batched 4-wide, against individual
    // daemon-free evaluations of the same requests.
    const std::vector<Request> pool = fleetPool(4);
    std::vector<Result> individual;
    for (const Request &r : pool)
        individual.push_back(evaluate(r));

    BatchOptions options;
    options.windowMs = 1000.0;
    options.maxBatch = pool.size();
    MissBatcher batcher(options);
    std::vector<std::future<Result>> futs;
    for (const Request &r : pool)
        futs.push_back(std::async(std::launch::async, [&, r] {
            return batcher.evaluate(r, canonicalText(r));
        }));
    for (std::size_t i = 0; i < pool.size(); ++i)
        EXPECT_EQ(futs[i].get(), individual[i])
            << "batched result " << i
            << " differs from its individual evaluation";
    EXPECT_GE(batcher.stats().largestBatch, 2u);
}

namespace {

/** Drive identical fleet traffic through a daemon at `workers`
 *  width and assert every reply matches the daemon-free baseline. */
void
runBatchedDaemon(std::size_t workers)
{
    const std::vector<Request> pool = fleetPool(4);
    std::vector<Result> baseline;
    for (const Request &r : pool)
        baseline.push_back(evaluate(r));

    DaemonConfig config;
    config.workers = workers;
    config.queueCapacity = 32;
    config.batch.windowMs = 5.0;
    config.batch.maxBatch = 4;
    Daemon daemon(config);
    std::vector<std::future<Reply>> futs;
    for (int round = 0; round < 2; ++round)
        for (const Request &r : pool)
            futs.push_back(daemon.submit(writeRequest(r)));
    for (std::size_t k = 0; k < futs.size(); ++k) {
        const Reply reply = futs[k].get();
        ASSERT_TRUE(reply.ok) << reply.detail;
        EXPECT_EQ(reply.result, baseline[k % pool.size()])
            << "daemon reply " << k
            << " differs from the daemon-free baseline at "
            << workers << " workers";
    }
    daemon.shutdown();
    const BatchStats stats = daemon.batchStats();
    // Only misses reach the batcher; round 2 is all cache hits.
    EXPECT_LE(stats.jobs, pool.size());
    EXPECT_EQ(stats.jobs + stats.coalesced, stats.requests);
}

} // namespace

TEST(ServeBatch, DaemonRepliesBitIdenticalWithOneWorker)
{
    runBatchedDaemon(1);
}

TEST(ServeBatch, DaemonRepliesBitIdenticalWithEightWorkers)
{
    runBatchedDaemon(8);
}

TEST(ServeBatch, AllHitsTrafficNeverReachesTheBatcher)
{
    const std::vector<Request> pool = fleetPool(2);
    DaemonConfig config;
    config.workers = 2;
    config.batch.windowMs = 5.0;
    Daemon daemon(config);
    // Warm serially, then hammer the warm entries concurrently.
    for (const Request &r : pool) {
        const Reply reply = daemon.call(writeRequest(r));
        ASSERT_TRUE(reply.ok) << reply.detail;
    }
    const BatchStats warm = daemon.batchStats();
    std::vector<std::future<Reply>> futs;
    for (int round = 0; round < 4; ++round)
        for (const Request &r : pool)
            futs.push_back(daemon.submit(writeRequest(r)));
    for (auto &f : futs) {
        const Reply reply = f.get();
        ASSERT_TRUE(reply.ok) << reply.detail;
        EXPECT_TRUE(reply.cacheHit);
    }
    // A hit is answered at the cache rung: no new sweeps, no new
    // batcher traffic.
    const BatchStats after = daemon.batchStats();
    EXPECT_EQ(after.sweeps, warm.sweeps);
    EXPECT_EQ(after.requests, warm.requests);
    daemon.shutdown();
}
