/** @file Tests for the heterogeneous facility model. */

#include <gtest/gtest.h>

#include "datacenter/mixed_facility.hh"
#include "util/error.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"

namespace tts {
namespace datacenter {
namespace {

using server::WaxConfig;

workload::WorkloadTrace
fastTrace()
{
    workload::GoogleTraceParams p;
    p.durationS = units::days(1.0);
    p.sampleIntervalS = 900.0;
    return workload::makeGoogleTrace(p);
}

ClusterRunOptions
fastOptions()
{
    ClusterRunOptions o;
    o.controlIntervalS = 900.0;
    o.thermalStepS = 15.0;
    return o;
}

TEST(MixedFacility, ServerCountSumsPools)
{
    MixedFacility f({{server::rd330Spec(), WaxConfig::none(), 3},
                     {server::x4470Spec(), WaxConfig::none(), 2}});
    EXPECT_EQ(f.serverCount(), 5u * 1008u);
}

TEST(MixedFacility, AggregateEqualsSumOfPools)
{
    MixedFacility f({{server::rd330Spec(), WaxConfig::none(), 2},
                     {server::x4470Spec(), WaxConfig::none(), 1}});
    auto r = f.run(fastTrace(), fastOptions());
    ASSERT_EQ(r.poolCoolingW.size(), 2u);
    double t = units::hours(14.0);
    EXPECT_NEAR(r.coolingLoadW.at(t),
                r.poolCoolingW[0].at(t) + r.poolCoolingW[1].at(t),
                1.0);
}

TEST(MixedFacility, SinglePoolMatchesCluster)
{
    MixedFacility f({{server::rd330Spec(), WaxConfig::none(), 1}});
    auto fr = f.run(fastTrace(), fastOptions());
    Cluster c(server::rd330Spec(), WaxConfig::none());
    auto cr = c.run(fastTrace(), fastOptions());
    EXPECT_NEAR(fr.peakCoolingLoad(), cr.peakCoolingLoad(),
                0.01 * cr.peakCoolingLoad());
}

TEST(MixedFacility, WaxShavesTheSharedPeak)
{
    std::vector<FacilityPool> stock = {
        {server::rd330Spec(), WaxConfig::none(), 2},
        {server::x4470Spec(), WaxConfig::none(), 1}};
    std::vector<FacilityPool> waxed = {
        {server::rd330Spec(), WaxConfig::paper(), 2},
        {server::x4470Spec(), WaxConfig::paper(), 1}};
    auto r0 = MixedFacility(stock).run(fastTrace(), fastOptions());
    auto r1 = MixedFacility(waxed).run(fastTrace(), fastOptions());
    EXPECT_LT(r1.peakCoolingLoad(), r0.peakCoolingLoad());
}

TEST(MixedFacility, RejectsBadPools)
{
    EXPECT_THROW(MixedFacility f({}), FatalError);
    EXPECT_THROW(
        MixedFacility f({{server::rd330Spec(), WaxConfig::none(),
                          0}}),
        FatalError);
}

} // namespace
} // namespace datacenter
} // namespace tts
