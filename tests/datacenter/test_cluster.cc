/** @file Tests for the cluster scale-out model. */

#include <gtest/gtest.h>

#include "datacenter/cluster.hh"
#include "util/error.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"

namespace tts {
namespace datacenter {
namespace {

using server::WaxConfig;

/** One fast day at coarse resolution for unit tests. */
workload::WorkloadTrace
fastTrace()
{
    workload::GoogleTraceParams p;
    p.durationS = units::days(1.0);
    p.sampleIntervalS = 900.0;
    return workload::makeGoogleTrace(p);
}

ClusterRunOptions
fastOptions()
{
    ClusterRunOptions o;
    o.controlIntervalS = 900.0;
    o.thermalStepS = 15.0;
    o.warmupDays = 1;
    return o;
}

TEST(Cluster, PeakWallPowerScalesWithCount)
{
    Cluster c(server::rd330Spec(), WaxConfig::none(), 100);
    EXPECT_NEAR(c.peakWallPower(), 100.0 * 185.0, 100.0);
    EXPECT_EQ(c.serverCount(), 100u);
}

TEST(Cluster, DefaultSizeMatchesPaper)
{
    Cluster c(server::rd330Spec(), WaxConfig::none());
    EXPECT_EQ(c.serverCount(), 1008u);  // The paper's cluster size.
}

TEST(Cluster, CoolingLoadTracksTrace)
{
    Cluster c(server::rd330Spec(), WaxConfig::none(), 1008);
    auto r = c.run(fastTrace(), fastOptions());
    // Peak cooling near mid-day, trough at night.
    EXPECT_GT(r.coolingLoadW.at(units::hours(14.0)),
              r.coolingLoadW.at(units::hours(4.0)));
    // Magnitude: between idle and peak cluster wall power.
    EXPECT_GT(r.peakCoolingLoad(), 1008.0 * 90.0);
    EXPECT_LT(r.peakCoolingLoad(), 1008.0 * 186.0);
}

TEST(Cluster, StockClusterCoolingMatchesItPower)
{
    // Without wax, storage effects are small: cooling stays within
    // a few percent of IT power everywhere.
    Cluster c(server::rd330Spec(), WaxConfig::none(), 1008);
    auto r = c.run(fastTrace(), fastOptions());
    for (std::size_t i = 0; i < r.coolingLoadW.size(); i += 8) {
        double cool = r.coolingLoadW.values()[i];
        double it = r.itPowerW.values()[i];
        EXPECT_NEAR(cool, it, 0.08 * it);
    }
}

TEST(Cluster, WaxReducesPeakCoolingLoad)
{
    Cluster base(server::rd330Spec(), WaxConfig::none(), 1008);
    Cluster waxed(server::rd330Spec(), WaxConfig::paper(), 1008);
    auto rb = base.run(fastTrace(), fastOptions());
    auto rw = waxed.run(fastTrace(), fastOptions());
    EXPECT_LT(rw.peakCoolingLoad(), rb.peakCoolingLoad());
}

TEST(Cluster, WaxMeltsDuringPeakFreezesAtNight)
{
    Cluster c(server::rd330Spec(), WaxConfig::paper(), 1008);
    auto r = c.run(fastTrace(), fastOptions());
    EXPECT_GT(r.waxMeltFraction.max(), 0.5);
    // By the pre-dawn trough the charge is solid again.
    EXPECT_LT(r.waxMeltFraction.at(units::hours(8.0)), 0.1);
}

TEST(Cluster, EnergyConservedOverCycle)
{
    // Integrated cooling equals integrated IT power up to the change
    // in stored energy (wax + server mass).
    Cluster c(server::rd330Spec(), WaxConfig::paper(), 1008);
    auto r = c.run(fastTrace(), fastOptions());
    double t0 = r.coolingLoadW.startTime();
    double t1 = r.coolingLoadW.endTime();
    double cooled = r.coolingLoadW.integral(t0, t1);
    double supplied = r.itPowerW.integral(t0, t1);
    EXPECT_NEAR(cooled, supplied, 0.02 * supplied);
}

TEST(Cluster, ThroughputFollowsUtilization)
{
    Cluster c(server::rd330Spec(), WaxConfig::none(), 1008);
    auto trace = fastTrace();
    auto r = c.run(trace, fastOptions());
    EXPECT_NEAR(r.throughput.max(), trace.peak(), 0.02);
}

TEST(Cluster, FrequencyPolicyApplies)
{
    Cluster c(server::rd330Spec(), WaxConfig::none(), 1008);
    auto opts = fastOptions();
    opts.freqPolicy = [](double, double) { return 1.6; };
    auto r = c.run(fastTrace(), opts);
    // Downclocked: throughput scaled by 1.6 / 2.4.
    EXPECT_NEAR(r.throughput.max(), 0.95 * 1.6 / 2.4, 0.03);
}

TEST(Cluster, RecordsDiagnosticsSeries)
{
    Cluster c(server::x4470Spec(), WaxConfig::paper(), 100);
    auto r = c.run(fastTrace(), fastOptions());
    EXPECT_GT(r.outletTempC.size(), 10u);
    EXPECT_GT(r.waxBayTempC.max(), r.waxBayTempC.min() + 3.0);
    EXPECT_GT(r.waxStoredJ.max(), 0.0);
}

TEST(Cluster, SolverStepConverged)
{
    // Peak cooling must be insensitive to halving the steps: the
    // evidence that the production grid is numerically converged.
    Cluster coarse(server::rd330Spec(), WaxConfig::paper(), 1008);
    Cluster fine(server::rd330Spec(), WaxConfig::paper(), 1008);
    ClusterRunOptions a = fastOptions();
    ClusterRunOptions b = fastOptions();
    b.controlIntervalS = a.controlIntervalS / 2.0;
    b.thermalStepS = a.thermalStepS / 3.0;
    double pa = coarse.run(fastTrace(), a).peakCoolingLoad();
    double pb = fine.run(fastTrace(), b).peakCoolingLoad();
    EXPECT_NEAR(pa, pb, 0.005 * pa);
}

TEST(Cluster, RejectsBadOptions)
{
    Cluster c(server::rd330Spec(), WaxConfig::none(), 10);
    ClusterRunOptions o;
    o.controlIntervalS = 0.0;
    EXPECT_THROW(c.run(fastTrace(), o), FatalError);
    EXPECT_THROW(Cluster(server::rd330Spec(), WaxConfig::none(), 0),
                 FatalError);
}

} // namespace
} // namespace datacenter
} // namespace tts
