/** @file Tests for the machine-room thermal model. */

#include <gtest/gtest.h>

#include "datacenter/room_model.hh"
#include "util/error.hh"
#include "util/units.hh"

namespace tts {
namespace datacenter {
namespace {

RoomConfig
smallRoom()
{
    RoomConfig c;
    c.airVolumeM3 = 100.0;
    c.buildingMassJPerK = 5.0e6;
    c.massCouplingWPerK = 500.0;
    return c;
}

TEST(RoomModel, StartsAtSetpointEquilibrium)
{
    RoomModel room(smallRoom());
    EXPECT_DOUBLE_EQ(room.airTemp(), 25.0);
    EXPECT_DOUBLE_EQ(room.massTemp(), 25.0);
    EXPECT_FALSE(room.overLimit());
}

TEST(RoomModel, BalancedFlowsHoldTemperature)
{
    RoomModel room(smallRoom());
    room.step(600.0, 50000.0, 50000.0);
    EXPECT_NEAR(room.airTemp(), 25.0, 1e-9);
}

TEST(RoomModel, ExcessHeatWarmsAir)
{
    RoomModel room(smallRoom());
    room.step(60.0, 50000.0, 0.0);
    EXPECT_GT(room.airTemp(), 25.0);
    EXPECT_GT(room.airTemp(), room.massTemp());
}

TEST(RoomModel, BuildingMassLagsAndBuffers)
{
    // With more building mass, the air heats more slowly once the
    // coupling starts dumping heat into the mass.
    RoomConfig light = smallRoom();
    RoomConfig heavy = smallRoom();
    heavy.buildingMassJPerK = 50.0e6;
    heavy.massCouplingWPerK = 5000.0;
    RoomModel a(light), b(heavy);
    for (int i = 0; i < 600; ++i) {
        a.step(1.0, 50000.0, 0.0);
        b.step(1.0, 50000.0, 0.0);
    }
    EXPECT_GT(a.airTemp(), b.airTemp());
}

TEST(RoomModel, EnergyConservedIntoBothNodes)
{
    RoomModel room(smallRoom());
    const double q = 30000.0;
    const double t_total = 1200.0;
    for (int i = 0; i < 1200; ++i)
        room.step(1.0, q, 0.0);
    double e_air = room.airCapacity() * (room.airTemp() - 25.0);
    double e_mass = smallRoom().buildingMassJPerK *
        (room.massTemp() - 25.0);
    EXPECT_NEAR(e_air + e_mass, q * t_total,
                0.01 * q * t_total);
}

TEST(RoomModel, OverLimitTriggersAboveLimit)
{
    RoomConfig cfg = smallRoom();
    cfg.limitC = 30.0;
    RoomModel room(cfg);
    while (!room.overLimit())
        room.step(10.0, 100000.0, 0.0);
    EXPECT_GT(room.airTemp(), 30.0);
}

TEST(RoomModel, CoolingBelowLoadCoolsBack)
{
    RoomModel room(smallRoom());
    for (int i = 0; i < 300; ++i)
        room.step(1.0, 50000.0, 0.0);
    double hot = room.airTemp();
    for (int i = 0; i < 300; ++i)
        room.step(1.0, 10000.0, 50000.0);
    EXPECT_LT(room.airTemp(), hot);
}

TEST(RoomModel, RejectsBadConfig)
{
    RoomConfig c = smallRoom();
    c.airVolumeM3 = 0.0;
    EXPECT_THROW(RoomModel room(c), FatalError);
    c = smallRoom();
    c.limitC = c.setpointC;
    EXPECT_THROW(RoomModel room(c), FatalError);
    RoomModel ok(smallRoom());
    EXPECT_THROW(ok.step(0.0, 1.0, 1.0), FatalError);
    EXPECT_THROW(ok.step(1.0, -1.0, 0.0), FatalError);
}

} // namespace
} // namespace datacenter
} // namespace tts
