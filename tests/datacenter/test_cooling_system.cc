/** @file Tests for the cooling plant and tariff models. */

#include <gtest/gtest.h>

#include "datacenter/cooling_system.hh"
#include "util/error.hh"
#include "util/units.hh"

namespace tts {
namespace datacenter {
namespace {

TEST(ElectricityTariff, PeakWindowMatchesPaper)
{
    // 7 AM - 7 PM peak (Figure 1's framing), $0.13 / $0.08 per kWh.
    ElectricityTariff t;
    EXPECT_FALSE(t.isPeak(units::hours(3.0)));
    EXPECT_TRUE(t.isPeak(units::hours(7.0)));
    EXPECT_TRUE(t.isPeak(units::hours(12.0)));
    EXPECT_FALSE(t.isPeak(units::hours(19.0)));
    EXPECT_FALSE(t.isPeak(units::hours(23.0)));
}

TEST(ElectricityTariff, PricesMatchPaper)
{
    ElectricityTariff t;
    EXPECT_DOUBLE_EQ(t.priceAt(units::hours(12.0)), 0.13);
    EXPECT_DOUBLE_EQ(t.priceAt(units::hours(2.0)), 0.08);
}

TEST(ElectricityTariff, WrapsAcrossDays)
{
    ElectricityTariff t;
    EXPECT_TRUE(t.isPeak(units::days(1.0) + units::hours(10.0)));
    EXPECT_FALSE(t.isPeak(units::days(1.0) + units::hours(22.0)));
}

TEST(ElectricityTariff, OvernightPeakWindow)
{
    ElectricityTariff t;
    t.peakStartHour = 22.0;
    t.peakEndHour = 6.0;
    EXPECT_TRUE(t.isPeak(units::hours(23.0)));
    EXPECT_TRUE(t.isPeak(units::hours(3.0)));
    EXPECT_FALSE(t.isPeak(units::hours(12.0)));
}

TEST(ElectricityTariff, CostOfConstantPower)
{
    ElectricityTariff t;
    TimeSeries p("w");
    p.append(0.0, 1000.0);                     // 1 kW all day.
    p.append(units::days(1.0), 1000.0);
    // 12 h at 0.13 + 12 h at 0.08 = 2.52 $/day.
    EXPECT_NEAR(t.costOf(p), 12.0 * 0.13 + 12.0 * 0.08, 0.03);
}

TEST(ElectricityTariff, PeakOnlyPowerCostsMore)
{
    ElectricityTariff t;
    TimeSeries peaky("w"), nighty("w");
    // Same energy, different placement.
    peaky.append(0.0, 0.0);
    peaky.append(units::hours(10.0), 0.0);
    peaky.append(units::hours(10.0) + 1.0, 1000.0);
    peaky.append(units::hours(14.0), 1000.0);
    peaky.append(units::hours(14.0) + 1.0, 0.0);
    peaky.append(units::days(1.0), 0.0);

    nighty.append(0.0, 0.0);
    nighty.append(units::hours(1.0), 0.0);
    nighty.append(units::hours(1.0) + 1.0, 1000.0);
    nighty.append(units::hours(5.0), 1000.0);
    nighty.append(units::hours(5.0) + 1.0, 0.0);
    nighty.append(units::days(1.0), 0.0);

    EXPECT_GT(t.costOf(peaky), t.costOf(nighty));
}

TEST(CoolingSystem, UtilizationAndOverload)
{
    CoolingSystem plant(100000.0);
    EXPECT_DOUBLE_EQ(plant.utilization(50000.0), 0.5);
    EXPECT_FALSE(plant.overloaded(100000.0));
    EXPECT_TRUE(plant.overloaded(100001.0));
}

TEST(CoolingSystem, ElectricPowerUsesCop)
{
    CoolingSystem plant(100000.0, 4.0);
    EXPECT_DOUBLE_EQ(plant.electricPower(80000.0), 20000.0);
}

TEST(CoolingSystem, ElectricSeriesMapsLoad)
{
    CoolingSystem plant(1e6, 2.0);
    TimeSeries load("w");
    load.append(0.0, 1000.0);
    load.append(100.0, 3000.0);
    auto elec = plant.electricSeries(load);
    EXPECT_DOUBLE_EQ(elec.at(0.0), 500.0);
    EXPECT_DOUBLE_EQ(elec.at(100.0), 1500.0);
}

TEST(CoolingSystem, EnergyCostCombinesCopAndTariff)
{
    CoolingSystem plant(1e6, 3.5);
    ElectricityTariff tariff;
    TimeSeries load("w");
    load.append(0.0, 350000.0);  // -> 100 kW electric.
    load.append(units::days(1.0), 350000.0);
    double expected = 100.0 * (12.0 * 0.13 + 12.0 * 0.08);
    EXPECT_NEAR(plant.energyCost(load, tariff), expected,
                0.01 * expected);
}

TEST(PueSeries, ComputesRatio)
{
    TimeSeries it("it"), cool("cool");
    it.append(0.0, 100000.0);
    it.append(100.0, 200000.0);
    cool.append(0.0, 30000.0);
    cool.append(100.0, 50000.0);
    auto pue = pueSeries(it, cool);
    EXPECT_NEAR(pue.at(0.0), 1.3, 1e-12);
    EXPECT_NEAR(pue.at(100.0), 1.25, 1e-12);
    EXPECT_EQ(pue.name(), "pue");
}

TEST(PueSeries, AlwaysAtLeastOne)
{
    TimeSeries it("it"), cool("cool");
    it.append(0.0, 100.0);
    it.append(10.0, 100.0);
    cool.append(0.0, 0.0);
    cool.append(10.0, 0.0);
    auto pue = pueSeries(it, cool);
    EXPECT_DOUBLE_EQ(pue.min(), 1.0);
}

TEST(PueSeries, RejectsEmptyInput)
{
    TimeSeries it("it"), cool("cool");
    EXPECT_THROW(pueSeries(it, cool), FatalError);
}

TEST(CoolingSystem, RejectsBadArguments)
{
    EXPECT_THROW(CoolingSystem(0.0), FatalError);
    EXPECT_THROW(CoolingSystem(1e5, 0.0), FatalError);
    CoolingSystem plant(1e5);
    EXPECT_THROW(plant.utilization(-1.0), FatalError);
    EXPECT_THROW(plant.electricPower(-1.0), FatalError);
}

} // namespace
} // namespace datacenter
} // namespace tts
