/** @file Tests for the 10 MW datacenter topology. */

#include <gtest/gtest.h>

#include "datacenter/datacenter.hh"
#include "util/error.hh"

namespace tts {
namespace datacenter {
namespace {

TEST(Datacenter, ClusterCountsNearPaper)
{
    // The paper: 55 clusters of 1U, 19 of 2U, 29 of OCP at 10 MW.
    // Ours derive from the modeled peak wall power; they land within
    // a few clusters of the published counts.
    Datacenter dc1(server::rd330Spec());
    EXPECT_NEAR(static_cast<double>(dc1.clusterCount()), 55.0, 3.0);

    DatacenterConfig cfg2;
    cfg2.provisionedPerServerW = 500.0;  // Paper: 500 W after PSU.
    Datacenter dc2(server::x4470Spec(), cfg2);
    EXPECT_NEAR(static_cast<double>(dc2.clusterCount()), 19.0, 1.0);

    Datacenter dc3(server::openComputeSpec());
    EXPECT_NEAR(static_cast<double>(dc3.clusterCount()), 29.0, 5.0);
}

TEST(Datacenter, ServerCountIsClustersTimes1008)
{
    Datacenter dc(server::rd330Spec());
    EXPECT_EQ(dc.serverCount(), dc.clusterCount() * 1008u);
}

TEST(Datacenter, OverrideWinsOverDerivation)
{
    DatacenterConfig cfg;
    cfg.clusterCountOverride = 55;
    Datacenter dc(server::rd330Spec(), cfg);
    EXPECT_EQ(dc.clusterCount(), 55u);
}

TEST(Datacenter, ProvisionedPerServerDefaultsToPeakWall)
{
    Datacenter dc(server::rd330Spec());
    EXPECT_DOUBLE_EQ(dc.provisionedPerServer(), 185.0);
}

TEST(Datacenter, ScaleToDatacenterMultiplies)
{
    Datacenter dc(server::rd330Spec());
    TimeSeries cluster("w");
    cluster.append(0.0, 100.0);
    cluster.append(10.0, 200.0);
    auto scaled = dc.scaleToDatacenter(cluster);
    EXPECT_DOUBLE_EQ(
        scaled.at(0.0),
        100.0 * static_cast<double>(dc.clusterCount()));
}

TEST(Datacenter, ExtraServersFromCoolingReduction)
{
    DatacenterConfig cfg;
    cfg.clusterCountOverride = 50;
    Datacenter dc(server::rd330Spec(), cfg);
    // r / (1 - r) scaling: 10 % reduction -> ~11.1 % more servers.
    std::size_t extra = dc.extraServersForCoolingReduction(0.10);
    double frac = static_cast<double>(extra) /
        static_cast<double>(dc.serverCount());
    EXPECT_NEAR(frac, 0.111, 0.002);
}

TEST(Datacenter, PaperHeadlineServerAdditions)
{
    // Paper Section 5.1: 12 % reduction in the 2U datacenter lets
    // 14.6 % more servers in (0.12 / 0.88 = 13.6 %, and the paper's
    // own rounding gives 14.6 %; we accept the model's value).
    DatacenterConfig cfg;
    cfg.provisionedPerServerW = 500.0;
    Datacenter dc(server::x4470Spec(), cfg);
    std::size_t extra = dc.extraServersForCoolingReduction(0.12);
    double frac = static_cast<double>(extra) /
        static_cast<double>(dc.serverCount());
    EXPECT_NEAR(frac, 0.136, 0.01);
    EXPECT_GT(extra, 2000u);
}

TEST(Datacenter, ZeroReductionAddsNothing)
{
    Datacenter dc(server::rd330Spec());
    EXPECT_EQ(dc.extraServersForCoolingReduction(0.0), 0u);
}

TEST(Datacenter, RejectsBadConfig)
{
    DatacenterConfig cfg;
    cfg.criticalPowerW = 0.0;
    EXPECT_THROW(Datacenter(server::rd330Spec(), cfg), FatalError);

    cfg = DatacenterConfig{};
    cfg.criticalPowerW = 1000.0;  // Too small for one cluster.
    EXPECT_THROW(Datacenter(server::rd330Spec(), cfg), FatalError);

    Datacenter dc(server::rd330Spec());
    EXPECT_THROW(dc.extraServersForCoolingReduction(1.0),
                 FatalError);
    EXPECT_THROW(dc.extraServersForCoolingReduction(-0.1),
                 FatalError);
}

} // namespace
} // namespace datacenter
} // namespace tts
