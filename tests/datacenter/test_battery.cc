/** @file Tests for the UPS battery peak-shaving bank. */

#include <gtest/gtest.h>

#include "datacenter/battery.hh"
#include "util/error.hh"
#include "util/units.hh"

namespace tts {
namespace datacenter {
namespace {

BatteryConfig
smallBank()
{
    BatteryConfig c;
    c.energyCapacityJ = 3.6e6;      // 1 kWh.
    c.maxDischargeW = 2000.0;
    c.maxChargeW = 1000.0;
    return c;
}

TimeSeries
peakyDemand()
{
    TimeSeries d("w");
    d.append(0.0, 500.0);
    d.append(1000.0, 500.0);
    d.append(1500.0, 2000.0);   // Peak above a 1 kW cap.
    d.append(2500.0, 2000.0);
    d.append(3000.0, 500.0);
    d.append(6000.0, 500.0);
    return d;
}

TEST(BatteryBank, StartsFull)
{
    BatteryBank b(smallBank());
    EXPECT_DOUBLE_EQ(b.stateOfCharge(), 1.0);
    EXPECT_DOUBLE_EQ(b.storedEnergy(), 3.6e6);
}

TEST(BatteryBank, DischargeCoversExcess)
{
    BatteryBank b(smallBank());
    double grid = b.step(10.0, 1500.0, 1000.0);
    EXPECT_DOUBLE_EQ(grid, 1000.0);
    EXPECT_LT(b.storedEnergy(), 3.6e6);
}

TEST(BatteryBank, DischargeLimitedByPowerRating)
{
    BatteryBank b(smallBank());
    double grid = b.step(10.0, 5000.0, 1000.0);
    // Can only shave 2 kW of the 4 kW excess.
    EXPECT_DOUBLE_EQ(grid, 3000.0);
}

TEST(BatteryBank, EmptyBatteryCannotShave)
{
    auto cfg = smallBank();
    cfg.initialSoc = 0.0;
    BatteryBank b(cfg);
    double grid = b.step(10.0, 1500.0, 1000.0);
    EXPECT_DOUBLE_EQ(grid, 1500.0);
}

TEST(BatteryBank, RechargesWithHeadroom)
{
    auto cfg = smallBank();
    cfg.initialSoc = 0.5;
    BatteryBank b(cfg);
    double grid = b.step(10.0, 200.0, 1000.0);
    EXPECT_GT(grid, 200.0);         // Charging draw added.
    EXPECT_LE(grid, 1000.0 + 1e-9); // Never above the cap.
    EXPECT_GT(b.stateOfCharge(), 0.5);
}

TEST(BatteryBank, ChargeRespectsEfficiency)
{
    auto cfg = smallBank();
    cfg.initialSoc = 0.0;
    cfg.roundTripEfficiency = 0.8;
    BatteryBank b(cfg);
    double grid = b.step(10.0, 0.0, 1000.0);
    // Grid supplies charge power; stored = power * eta * dt.
    EXPECT_DOUBLE_EQ(grid, 1000.0);
    EXPECT_NEAR(b.storedEnergy(), 1000.0 * 0.8 * 10.0, 1e-9);
}

TEST(BatteryBank, NeverOvercharges)
{
    BatteryBank b(smallBank());
    for (int i = 0; i < 100; ++i)
        b.step(100.0, 0.0, 1000.0);
    EXPECT_LE(b.stateOfCharge(), 1.0 + 1e-12);
}

TEST(BatteryBank, ShaveReducesPeak)
{
    BatteryBank b(smallBank());
    auto r = b.shave(peakyDemand(), 1000.0);
    EXPECT_DOUBLE_EQ(r.peakDemandW, 2000.0);
    EXPECT_NEAR(r.peakGridW, 1000.0, 1e-6);
    EXPECT_NEAR(r.peakReduction(), 0.5, 1e-6);
    EXPECT_DOUBLE_EQ(r.capViolationS, 0.0);
}

TEST(BatteryBank, UndersizedBankViolatesCap)
{
    auto cfg = smallBank();
    cfg.energyCapacityJ = 1.0e5;  // Tiny.
    BatteryBank b(cfg);
    auto r = b.shave(peakyDemand(), 1000.0);
    EXPECT_GT(r.capViolationS, 0.0);
    EXPECT_GT(r.peakGridW, 1000.0);
}

TEST(BatteryBank, SocSeriesRecorded)
{
    BatteryBank b(smallBank());
    auto r = b.shave(peakyDemand(), 1000.0);
    EXPECT_EQ(r.stateOfCharge.size(), peakyDemand().size());
    // Discharged during the peak, recharged afterwards.
    EXPECT_LT(r.stateOfCharge.min(), 1.0);
    EXPECT_GT(r.stateOfCharge.values().back(),
              r.stateOfCharge.min());
}

TEST(BatteryBank, RejectsBadConfig)
{
    auto cfg = smallBank();
    cfg.energyCapacityJ = 0.0;
    EXPECT_THROW(BatteryBank b(cfg), FatalError);
    cfg = smallBank();
    cfg.roundTripEfficiency = 0.0;
    EXPECT_THROW(BatteryBank b(cfg), FatalError);
    BatteryBank ok(smallBank());
    EXPECT_THROW(ok.step(0.0, 1.0, 1.0), FatalError);
}

} // namespace
} // namespace datacenter
} // namespace tts
