/** @file Tests for multi-site geographic load shifting. */

#include <gtest/gtest.h>

#include "datacenter/multi_site.hh"
#include "util/error.hh"
#include "util/units.hh"

namespace tts {
namespace datacenter {
namespace {

workload::GoogleTraceParams
fastParams()
{
    workload::GoogleTraceParams p;
    p.durationS = units::days(1.0);
    p.sampleIntervalS = 900.0;
    p.dayJitter = 0.0;
    p.noise = 0.0;
    return p;
}

TEST(MultiSite, ShiftedParamsMovePeaks)
{
    auto base = fastParams();
    auto west = shiftedSiteParams(base, 3.0);
    EXPECT_DOUBLE_EQ(west.search.peakHour,
                     base.search.peakHour + 3.0);
    EXPECT_DOUBLE_EQ(west.orkut.peakHour,
                     base.orkut.peakHour + 3.0);
}

TEST(MultiSite, ShiftWrapsAroundMidnight)
{
    auto base = fastParams();
    auto p = shiftedSiteParams(base, 8.0);
    // Orkut 19.5 + 8 -> 3.5.
    EXPECT_NEAR(p.orkut.peakHour, 3.5, 1e-9);
    auto q = shiftedSiteParams(base, -20.0);
    EXPECT_GE(q.search.peakHour, 0.0);
    EXPECT_LT(q.search.peakHour, 24.0);
}

TEST(MultiSite, ShiftedTracePeaksLater)
{
    auto east = workload::makeGoogleTrace(fastParams());
    auto west = workload::makeGoogleTrace(
        shiftedSiteParams(fastParams(), 6.0));
    double east_peak_t = east.total().argMax();
    double west_peak_t = west.total().argMax();
    EXPECT_GT(west_peak_t, east_peak_t + units::hours(3.0));
}

TEST(MultiSite, BalanceConservesTotalLoad)
{
    auto a = workload::makeGoogleTrace(fastParams());
    auto b = workload::makeGoogleTrace(
        shiftedSiteParams(fastParams(), 6.0));
    auto [a2, b2] = geoBalance(a, b, 0.3);
    for (double t = 0.0; t <= a.endTime();
         t += units::hours(2.0)) {
        EXPECT_NEAR(a2.totalAt(t) + b2.totalAt(t),
                    a.totalAt(t) + b.totalAt(t), 1e-9)
            << "at " << t;
    }
}

TEST(MultiSite, BalanceReducesPeakOfBusierSite)
{
    auto a = workload::makeGoogleTrace(fastParams());
    auto b = workload::makeGoogleTrace(
        shiftedSiteParams(fastParams(), 6.0));
    auto [a2, b2] = geoBalance(a, b, 0.3);
    EXPECT_LT(a2.peak(), a.peak());
    EXPECT_LT(b2.peak(), b.peak());
}

TEST(MultiSite, ZeroShiftIsIdentity)
{
    auto a = workload::makeGoogleTrace(fastParams());
    auto b = workload::makeGoogleTrace(
        shiftedSiteParams(fastParams(), 6.0));
    auto [a2, b2] = geoBalance(a, b, 0.0);
    for (double t = 0.0; t <= a.endTime(); t += units::hours(3.0))
        EXPECT_NEAR(a2.totalAt(t), a.totalAt(t), 1e-9);
}

TEST(MultiSite, FullShiftEqualizesSites)
{
    auto a = workload::makeGoogleTrace(fastParams());
    auto b = workload::makeGoogleTrace(
        shiftedSiteParams(fastParams(), 6.0));
    auto [a2, b2] = geoBalance(a, b, 1.0);
    for (double t = units::hours(2.0); t <= a.endTime();
         t += units::hours(3.0)) {
        EXPECT_NEAR(a2.totalAt(t), b2.totalAt(t), 1e-6)
            << "at " << t;
    }
}

TEST(MultiSite, BalancePreservesClassMix)
{
    auto a = workload::makeGoogleTrace(fastParams());
    auto b = workload::makeGoogleTrace(
        shiftedSiteParams(fastParams(), 6.0));
    double share_before = a.classShareAt(
        workload::JobClass::WebSearch, units::hours(14.0));
    auto [a2, b2] = geoBalance(a, b, 0.4);
    EXPECT_NEAR(a2.classShareAt(workload::JobClass::WebSearch,
                                units::hours(14.0)),
                share_before, 1e-9);
}

TEST(MultiSite, RejectsBadShiftFraction)
{
    auto a = workload::makeGoogleTrace(fastParams());
    EXPECT_THROW(geoBalance(a, a, -0.1), FatalError);
    EXPECT_THROW(geoBalance(a, a, 1.5), FatalError);
}

} // namespace
} // namespace datacenter
} // namespace tts
