/** @file Tests for the chilled-water TES comparator. */

#include <gtest/gtest.h>

#include "datacenter/chilled_water.hh"
#include "util/error.hh"
#include "util/units.hh"

namespace tts {
namespace datacenter {
namespace {

ChilledWaterConfig
smallTank()
{
    ChilledWaterConfig c;
    c.volumeM3 = 1.0;           // ~41.8 MJ at 10 K swing.
    c.maxDischargeW = 50000.0;
    c.maxRechargeW = 20000.0;
    c.pumpPowerW = 500.0;
    return c;
}

TimeSeries
peakyLoad()
{
    TimeSeries d("w");
    d.append(0.0, 10000.0);
    d.append(3600.0, 10000.0);
    d.append(4000.0, 40000.0);
    d.append(7600.0, 40000.0);   // 1 h peak.
    d.append(8000.0, 10000.0);
    d.append(30000.0, 10000.0);
    return d;
}

TEST(ChilledWaterTank, CapacityFromVolumeAndSwing)
{
    ChilledWaterTank tank(smallTank());
    EXPECT_NEAR(tank.capacity(), 1.0 * 998.0 * 4186.0 * 10.0,
                1.0);
    EXPECT_NEAR(tank.stored(), tank.capacity(), 1e-6);
}

TEST(ChilledWaterTank, ShavesPeakToCap)
{
    // The one-hour 15 kW excess needs 54 MJ; a 2 m^3 tank at 10 K
    // swing holds ~84 MJ.
    auto cfg = smallTank();
    cfg.volumeM3 = 2.0;
    ChilledWaterTank tank(cfg);
    auto r = tank.shave(peakyLoad(), 25000.0);
    EXPECT_DOUBLE_EQ(r.peakLoadW, 40000.0);
    EXPECT_LE(r.peakPlantW, 25000.0 + 1e-6);
    EXPECT_NEAR(r.peakReduction(), 0.375, 1e-6);
}

TEST(ChilledWaterTank, RechargesOffPeak)
{
    ChilledWaterTank tank(smallTank());
    auto r = tank.shave(peakyLoad(), 25000.0);
    // After the long off-peak tail the tank is full again (modulo
    // standby loss the policy keeps topping up).
    EXPECT_GT(r.storedJ.values().back(),
              0.9 * tank.capacity());
    EXPECT_LT(r.storedJ.min(), 0.8 * tank.capacity());
}

TEST(ChilledWaterTank, PumpEnergyAccrues)
{
    ChilledWaterTank tank(smallTank());
    auto r = tank.shave(peakyLoad(), 25000.0);
    EXPECT_GT(r.pumpEnergyJ, 0.0);
}

TEST(ChilledWaterTank, StandbyLossAccrues)
{
    // A flat load below the cap: the tank just stands by and leaks.
    auto cfg = smallTank();
    cfg.standbyLossPerDay = 0.10;
    ChilledWaterTank tank(cfg);
    TimeSeries flat("w");
    flat.append(0.0, 1000.0);
    flat.append(units::days(1.0), 1000.0);
    auto r = tank.shave(flat.resampled(600.0), 500000.0);
    EXPECT_GT(r.standbyLossJ, 0.0);
}

TEST(ChilledWaterTank, ZeroLossTankKeepsEverything)
{
    auto cfg = smallTank();
    cfg.standbyLossPerDay = 0.0;
    ChilledWaterTank tank(cfg);
    TimeSeries flat("w");
    flat.append(0.0, 30000.0);
    flat.append(600.0, 30000.0);
    auto r = tank.shave(flat, 30000.0);
    EXPECT_DOUBLE_EQ(r.standbyLossJ, 0.0);
}

TEST(ChilledWaterTank, EmptyTankStopsShaving)
{
    auto cfg = smallTank();
    cfg.volumeM3 = 0.05;  // ~2 MJ: drains in ~2 min at 15 kW.
    ChilledWaterTank tank(cfg);
    auto r = tank.shave(peakyLoad(), 25000.0);
    EXPECT_GT(r.peakPlantW, 25000.0);
}

TEST(ChilledWaterTank, RejectsBadConfig)
{
    auto cfg = smallTank();
    cfg.volumeM3 = 0.0;
    EXPECT_THROW(ChilledWaterTank t(cfg), FatalError);
    cfg = smallTank();
    cfg.standbyLossPerDay = 1.0;
    EXPECT_THROW(ChilledWaterTank t(cfg), FatalError);
}

} // namespace
} // namespace datacenter
} // namespace tts
