/** @file Tests for the ambient model and economizer plant. */

#include <cmath>
#include <gtest/gtest.h>
#include <limits>

#include "datacenter/free_cooling.hh"
#include "util/error.hh"
#include "util/units.hh"

namespace tts {
namespace datacenter {
namespace {

TEST(AmbientModel, PeaksAtConfiguredHour)
{
    AmbientModel a;
    EXPECT_NEAR(a.at(units::hours(15.0)), a.meanC + a.amplitudeC,
                1e-9);
    EXPECT_NEAR(a.at(units::hours(3.0)), a.meanC - a.amplitudeC,
                1e-9);
    EXPECT_NEAR(a.troughHour(), 3.0, 1e-12);
}

TEST(AmbientModel, MeanOverDayIsMean)
{
    AmbientModel a;
    double sum = 0.0;
    int n = 0;
    for (double h = 0.0; h < 24.0; h += 0.25, ++n)
        sum += a.at(units::hours(h));
    EXPECT_NEAR(sum / n, a.meanC, 0.01);
}

TEST(AmbientModel, RepeatsDaily)
{
    AmbientModel a;
    EXPECT_NEAR(a.at(units::hours(10.0)),
                a.at(units::days(3.0) + units::hours(10.0)), 1e-9);
}

TEST(Economizer, MechanicalCopAtHotAmbient)
{
    EconomizerCoolingModel e;
    EXPECT_DOUBLE_EQ(e.copAt(40.0), e.mechanicalCop);
    EXPECT_DOUBLE_EQ(e.copAt(e.returnAirC), e.mechanicalCop);
}

TEST(Economizer, CopImprovesAsAmbientFalls)
{
    EconomizerCoolingModel e;
    EXPECT_GT(e.copAt(20.0), e.copAt(30.0));
    EXPECT_GT(e.copAt(12.0), e.copAt(20.0));
}

TEST(Economizer, FreeCoolingBelowChangeover)
{
    EconomizerCoolingModel e;
    EXPECT_DOUBLE_EQ(e.copAt(5.0), e.freeCop);
    EXPECT_DOUBLE_EQ(e.copAt(e.freeCoolingBelowC), e.freeCop);
}

TEST(Economizer, CopNeverExceedsFreeCop)
{
    EconomizerCoolingModel e;
    e.copPerDegree = 10.0;  // Absurdly strong assist.
    EXPECT_LE(e.copAt(11.0), e.freeCop);
}

TEST(Economizer, ElectricPowerUsesEffectiveCop)
{
    EconomizerCoolingModel e;
    EXPECT_NEAR(e.electricPower(35000.0, 40.0),
                35000.0 / e.mechanicalCop, 1e-9);
    EXPECT_NEAR(e.electricPower(35000.0, 5.0),
                35000.0 / e.freeCop, 1e-9);
    EXPECT_THROW(e.electricPower(-1.0, 20.0), FatalError);
}

TEST(Economizer, NightLoadIsCheaperThanDayLoad)
{
    // The Figure 1 argument: the same joules cost less electricity
    // at night because the economizer assist is stronger.
    EconomizerCoolingModel e;
    AmbientModel ambient;
    TimeSeries day("w"), night("w");
    day.append(units::hours(12.0), 1000.0);
    day.append(units::hours(16.0), 1000.0);
    night.append(units::hours(0.0), 1000.0);
    night.append(units::hours(4.0), 1000.0);
    EXPECT_LT(e.electricEnergy(night, ambient),
              e.electricEnergy(day, ambient));
}

TEST(Economizer, RejectsNonFiniteAmbient)
{
    EconomizerCoolingModel e;
    EXPECT_THROW(e.copAt(std::nan("")), FatalError);
    EXPECT_THROW(e.copAt(std::numeric_limits<double>::infinity()),
                 FatalError);
    EXPECT_THROW(e.electricPower(1000.0, std::nan("")), FatalError);
}

TEST(Economizer, RejectsDegenerateModel)
{
    {
        EconomizerCoolingModel e;
        e.mechanicalCop = 0.0;
        EXPECT_THROW(e.copAt(20.0), FatalError);
    }
    {
        EconomizerCoolingModel e;
        e.mechanicalCop = -3.5;
        EXPECT_THROW(e.copAt(20.0), FatalError);
    }
    {
        EconomizerCoolingModel e;
        e.freeCop = 0.0;
        EXPECT_THROW(e.copAt(20.0), FatalError);
    }
    {
        EconomizerCoolingModel e;
        e.copPerDegree = -0.25;
        EXPECT_THROW(e.copAt(20.0), FatalError);
    }
    {
        EconomizerCoolingModel e;
        e.returnAirC = std::nan("");
        EXPECT_THROW(e.copAt(20.0), FatalError);
    }
    {
        EconomizerCoolingModel e;
        e.freeCoolingBelowC = std::nan("");
        EXPECT_THROW(e.copAt(20.0), FatalError);
    }
}

TEST(Economizer, RejectsNonFiniteLoad)
{
    EconomizerCoolingModel e;
    EXPECT_THROW(e.electricPower(std::nan(""), 20.0), FatalError);
    EXPECT_THROW(
        e.electricPower(std::numeric_limits<double>::infinity(),
                        20.0),
        FatalError);
}

TEST(Economizer, DefaultArithmeticUnchanged)
{
    // Pin the default model's arithmetic: the edge-case guards must
    // not move any in-range result.
    EconomizerCoolingModel e;
    EXPECT_DOUBLE_EQ(e.copAt(20.0), 3.5 + 0.25 * 15.0);
    EXPECT_DOUBLE_EQ(e.copAt(10.0 + 1e-9),
                     3.5 + 0.25 * (35.0 - (10.0 + 1e-9)));
    EXPECT_DOUBLE_EQ(e.electricPower(7000.0, 20.0),
                     7000.0 / (3.5 + 0.25 * 15.0));
}

TEST(Economizer, ElectricSeriesMatchesPointwise)
{
    EconomizerCoolingModel e;
    AmbientModel ambient;
    TimeSeries load("w");
    load.append(0.0, 70000.0);
    load.append(units::hours(6.0), 35000.0);
    auto elec = e.electricSeries(load, ambient);
    ASSERT_EQ(elec.size(), 2u);
    EXPECT_NEAR(elec.values()[0],
                e.electricPower(70000.0, ambient.at(0.0)), 1e-9);
}

} // namespace
} // namespace datacenter
} // namespace tts
