/** @file Tests for the cycling-stability degradation model. */

#include <gtest/gtest.h>

#include "pcm/stability.hh"

namespace tts {
namespace pcm {
namespace {

TEST(StabilityModel, FreshMaterialKeepsEverything)
{
    for (auto s : {Stability::Poor, Stability::Good,
                   Stability::VeryGood, Stability::Excellent}) {
        StabilityModel m(s);
        EXPECT_NEAR(m.retention(0), 1.0, 1e-12);
    }
}

TEST(StabilityModel, RetentionIsMonotoneDecreasing)
{
    StabilityModel m(Stability::VeryGood);
    double prev = 1.0;
    for (std::uint64_t n : {1u, 10u, 100u, 1000u, 100000u}) {
        double r = m.retention(n);
        EXPECT_LE(r, prev);
        prev = r;
    }
}

TEST(StabilityModel, RetentionNeverBelowFloor)
{
    for (auto s : {Stability::Poor, Stability::Good,
                   Stability::VeryGood, Stability::Excellent}) {
        StabilityModel m(s);
        EXPECT_GE(m.retention(100000000ULL), m.floor() - 1e-12);
        EXPECT_GT(m.retention(100000000ULL), 0.0);
    }
}

TEST(StabilityModel, PoorDegradesFastPerPaper)
{
    // Section 2.1: poor materials degrade "in as few as 100 cycles".
    StabilityModel poor(Stability::Poor);
    EXPECT_LT(poor.retention(100), 0.75);
}

TEST(StabilityModel, ExcellentNegligibleAtThousandCycles)
{
    // Section 2.1: paraffin shows negligible deviation after more
    // than 1,000 melting cycles.
    StabilityModel exc(Stability::Excellent);
    EXPECT_GT(exc.retention(1000), 0.99);
}

TEST(StabilityModel, OrderingAcrossRatings)
{
    std::uint64_t n = 2000;
    StabilityModel poor(Stability::Poor);
    StabilityModel good(Stability::Good);
    StabilityModel very_good(Stability::VeryGood);
    StabilityModel excellent(Stability::Excellent);
    EXPECT_LT(poor.retention(n), good.retention(n));
    EXPECT_LT(good.retention(n), very_good.retention(n));
    EXPECT_LT(very_good.retention(n), excellent.retention(n));
}

TEST(StabilityModel, UnknownIsConservative)
{
    StabilityModel unknown(Stability::Unknown);
    StabilityModel poor(Stability::Poor);
    EXPECT_DOUBLE_EQ(unknown.retention(500), poor.retention(500));
}

TEST(StabilityModel, EffectiveHeatOfFusionScales)
{
    StabilityModel m(Stability::VeryGood);
    double eff = m.effectiveHeatOfFusion(200.0, 365);
    EXPECT_NEAR(eff, 200.0 * m.retention(365), 1e-12);
}

TEST(StabilityModel, CyclesForYears)
{
    EXPECT_EQ(StabilityModel::cyclesForYears(0.0), 0u);
    EXPECT_EQ(StabilityModel::cyclesForYears(1.0), 365u);
    EXPECT_EQ(StabilityModel::cyclesForYears(4.0), 1461u);
    EXPECT_EQ(StabilityModel::cyclesForYears(-2.0), 0u);
}

TEST(StabilityModel, FourYearServerLifeKeepsMostCapacity)
{
    // The deployment argument: over the 4-year server life (1,461
    // daily cycles), commercial paraffin keeps > 95 %.
    StabilityModel m(Stability::VeryGood);
    EXPECT_GT(m.retention(StabilityModel::cyclesForYears(4.0)),
              0.95);
}

} // namespace
} // namespace pcm
} // namespace tts
