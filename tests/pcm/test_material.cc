/** @file Tests for the PCM material database (Table 1). */

#include <gtest/gtest.h>

#include "pcm/material.hh"

namespace tts {
namespace pcm {
namespace {

TEST(Material, Table1HasFiveFamilies)
{
    auto rows = table1Families();
    ASSERT_EQ(rows.size(), 5u);
}

TEST(Material, Table1ValuesMatchPaper)
{
    auto rows = table1Families();
    // Row order follows the paper's Table 1.
    EXPECT_EQ(rows[0].name, "Salt Hydrates");
    EXPECT_DOUBLE_EQ(rows[0].meltingTempMinC, 25.0);
    EXPECT_DOUBLE_EQ(rows[0].meltingTempMaxC, 70.0);
    EXPECT_TRUE(rows[0].corrosive);
    EXPECT_EQ(rows[0].stability, Stability::Poor);

    EXPECT_EQ(rows[1].name, "Metal Alloys");
    EXPECT_GE(rows[1].meltingTempMinC, 300.0);
    EXPECT_FALSE(rows[1].corrosive);

    EXPECT_EQ(rows[2].name, "Fatty Acids");
    EXPECT_TRUE(rows[2].corrosive);
    EXPECT_EQ(rows[2].stability, Stability::Unknown);

    EXPECT_EQ(rows[3].name, "n-Paraffins");
    EXPECT_EQ(rows[3].stability, Stability::Excellent);
    EXPECT_EQ(rows[3].conductivity, Conductivity::VeryLow);

    EXPECT_EQ(rows[4].name, "Commercial Paraffins");
    EXPECT_DOUBLE_EQ(rows[4].heatOfFusionJPerG, 200.0);
    EXPECT_DOUBLE_EQ(rows[4].meltingTempMinC, 40.0);
    EXPECT_DOUBLE_EQ(rows[4].meltingTempMaxC, 60.0);
}

TEST(Material, EicosaneMatchesPaper)
{
    auto e = eicosane();
    EXPECT_DOUBLE_EQ(e.heatOfFusionJPerG, 247.0);
    EXPECT_DOUBLE_EQ(e.meltingTempMinC, 36.6);
    EXPECT_DOUBLE_EQ(e.pricePerTonUsd, 75000.0);
}

TEST(Material, CommercialParaffinMatchesPaper)
{
    auto c = commercialParaffin();
    EXPECT_DOUBLE_EQ(c.heatOfFusionJPerG, 200.0);
    // $1,000-2,000/ton quotes; the model uses the midpoint.
    EXPECT_GE(c.pricePerTonUsd, 1000.0);
    EXPECT_LE(c.pricePerTonUsd, 2000.0);
    EXPECT_FALSE(c.corrosive);
}

TEST(Material, EnergyDensityIsFusionTimesDensity)
{
    auto c = commercialParaffin();
    EXPECT_DOUBLE_EQ(c.energyDensityJPerMl(),
                     c.heatOfFusionJPerG * c.densitySolidGPerMl);
}

TEST(Material, MeltsInRangeIntersection)
{
    auto c = commercialParaffin();  // 39-60 C.
    EXPECT_TRUE(c.meltsInRange(30.0, 60.0));
    EXPECT_TRUE(c.meltsInRange(55.0, 80.0));
    EXPECT_FALSE(c.meltsInRange(0.0, 20.0));
    EXPECT_FALSE(c.meltsInRange(70.0, 90.0));
}

TEST(Material, SuitabilityScreenMatchesSection21)
{
    // Section 2.1's conclusion: paraffins are suitable, everything
    // else is not (corrosive, conductive, unstable, or melts outside
    // the datacenter window).
    for (const auto &m : table1Families()) {
        bool paraffin = m.family == Family::NParaffin ||
            m.family == Family::CommercialParaffin;
        EXPECT_EQ(suitableForDatacenter(m), paraffin)
            << m.name;
    }
    EXPECT_TRUE(suitableForDatacenter(eicosane()));
    EXPECT_TRUE(suitableForDatacenter(commercialParaffin()));
}

TEST(Material, MetalAlloysFailOnMeltingPoint)
{
    auto rows = table1Families();
    // Even ignoring conductivity, the alloys melt far too hot.
    EXPECT_FALSE(rows[1].meltsInRange(30.0, 60.0));
}

TEST(Material, RankPutsSuitableFirst)
{
    auto ranked = rankForDatacenter(table1Families());
    ASSERT_EQ(ranked.size(), 5u);
    EXPECT_TRUE(suitableForDatacenter(ranked[0]));
    EXPECT_TRUE(suitableForDatacenter(ranked[1]));
    EXPECT_FALSE(suitableForDatacenter(ranked[2]));
}

TEST(Material, CommercialParaffinBeatsEicosaneOnValue)
{
    // 50x cheaper for 20 % lower fusion -> far more joules/dollar.
    auto ranked =
        rankForDatacenter({eicosane(), commercialParaffin()});
    EXPECT_EQ(ranked[0].name, "Commercial Paraffin");
}

TEST(Material, EnumToStringRoundTrips)
{
    EXPECT_EQ(toString(Family::NParaffin), "n-Paraffins");
    EXPECT_EQ(toString(Stability::VeryGood), "Very Good");
    EXPECT_EQ(toString(Conductivity::VeryLow), "Very Low");
}

} // namespace
} // namespace pcm
} // namespace tts
