/** @file Tests for the stateful PCM element. */

#include <gtest/gtest.h>

#include "pcm/container.hh"
#include "pcm/material.hh"
#include "pcm/pcm_element.hh"
#include "util/error.hh"

namespace tts {
namespace pcm {
namespace {

ContainerBank
smallBank()
{
    BoxSpec b;
    b.lengthM = 0.12;
    b.widthM = 0.08;
    b.heightM = 0.014;
    return ContainerBank(b, 1, 0.019);
}

PcmElement
makeElement(double melt = 45.0, double initial = 25.0)
{
    return PcmElement(commercialParaffin(), smallBank(), melt,
                      initial);
}

TEST(PcmElement, StartsAtInitialTemperature)
{
    auto e = makeElement();
    EXPECT_NEAR(e.temperature(), 25.0, 1e-9);
    EXPECT_DOUBLE_EQ(e.meltFraction(), 0.0);
    EXPECT_DOUBLE_EQ(e.storedEnergy(), 0.0);
}

TEST(PcmElement, RejectsMeltOutsideMaterialRange)
{
    // Commercial paraffin: 39-60 C.
    EXPECT_THROW(makeElement(30.0), FatalError);
    EXPECT_THROW(makeElement(70.0), FatalError);
    EXPECT_NO_THROW(makeElement(39.0));
    EXPECT_NO_THROW(makeElement(60.0));
}

TEST(PcmElement, HeatFlowSignConvention)
{
    auto e = makeElement();
    EXPECT_GT(e.heatFlowFromAir(40.0, 1.0), 0.0);   // Air hotter.
    EXPECT_LT(e.heatFlowFromAir(10.0, 1.0), 0.0);   // Air cooler.
    EXPECT_NEAR(e.heatFlowFromAir(25.0, 1.0), 0.0, 1e-9);
}

TEST(PcmElement, FreezeConductanceIsDerated)
{
    auto e = makeElement();
    double absorb_ua = e.effectiveConductance(40.0, 1.0);
    double release_ua = e.effectiveConductance(10.0, 1.0);
    EXPECT_NEAR(release_ua / absorb_ua,
                PcmElement::defaultFreezeFactor, 1e-9);
}

TEST(PcmElement, SetFreezeFactorValidated)
{
    auto e = makeElement();
    e.setFreezeConductanceFactor(1.0);
    EXPECT_DOUBLE_EQ(e.effectiveConductance(10.0, 1.0),
                     e.effectiveConductance(40.0, 1.0));
    EXPECT_THROW(e.setFreezeConductanceFactor(0.0), FatalError);
    EXPECT_THROW(e.setFreezeConductanceFactor(1.5), FatalError);
}

TEST(PcmElement, StepWarmsTowardAir)
{
    auto e = makeElement();
    e.step(600.0, 40.0, 1.0);
    EXPECT_GT(e.temperature(), 25.0);
    EXPECT_LE(e.temperature(), 40.0 + 1e-9);
    EXPECT_GT(e.storedEnergy(), 0.0);
}

TEST(PcmElement, StepNeverOvershootsAirTemp)
{
    auto e = makeElement();
    // Huge step: sub-stepping must keep the wax at or below the
    // driving temperature.
    e.step(3600.0 * 50.0, 42.0, 2.0);
    EXPECT_LE(e.temperature(), 42.0 + 1e-6);
    EXPECT_NEAR(e.temperature(), 42.0, 0.1);
}

TEST(PcmElement, MeltsFullyUnderHotAir)
{
    auto e = makeElement(45.0);
    e.step(3600.0 * 100.0, 55.0, 2.0);
    EXPECT_DOUBLE_EQ(e.meltFraction(), 1.0);
    EXPECT_GE(e.storedEnergy(), e.latentCapacity());
}

TEST(PcmElement, EnergyBookkeepingMatchesStep)
{
    auto e = makeElement();
    double absorbed = 0.0;
    for (int i = 0; i < 100; ++i)
        absorbed += e.step(60.0, 50.0, 1.5);
    EXPECT_NEAR(absorbed, e.storedEnergy(), 1e-6);
}

TEST(PcmElement, LatentCapacityMatchesMassAndFusion)
{
    auto e = makeElement();
    double mass =
        smallBank().waxMass(commercialParaffin().densitySolidGPerMl *
                            1000.0);
    EXPECT_NEAR(e.latentCapacity(), mass * 200.0 * 1000.0, 1.0);
}

TEST(PcmElement, CycleCounterCountsFullCycles)
{
    auto e = makeElement(45.0);
    EXPECT_EQ(e.cycleCount(), 0u);
    for (int day = 0; day < 3; ++day) {
        e.step(3600.0 * 100.0, 55.0, 2.0);  // Melt fully.
        EXPECT_DOUBLE_EQ(e.meltFraction(), 1.0);
        e.step(3600.0 * 200.0, 25.0, 2.0);  // Freeze fully.
        EXPECT_DOUBLE_EQ(e.meltFraction(), 0.0);
        EXPECT_EQ(e.cycleCount(),
                  static_cast<std::uint64_t>(day + 1));
    }
}

TEST(PcmElement, PartialMeltIsNotACycle)
{
    auto e = makeElement(45.0);
    // Warm into the plateau but not through it, then cool.
    while (e.meltFraction() < 0.4)
        e.step(60.0, 46.0, 2.0);
    e.step(3600.0 * 200.0, 25.0, 2.0);
    EXPECT_EQ(e.cycleCount(), 0u);
}

TEST(PcmElement, SetEnthalpySyncsState)
{
    auto e = makeElement(45.0);
    double h_melted = e.curve().liquidusEnthalpy() + 1000.0;
    e.setEnthalpy(h_melted);
    EXPECT_DOUBLE_EQ(e.meltFraction(), 1.0);
    double h_solid = e.curve().solidusEnthalpy() - 1000.0;
    e.setEnthalpy(h_solid);
    EXPECT_DOUBLE_EQ(e.meltFraction(), 0.0);
    EXPECT_EQ(e.cycleCount(), 1u);
}

TEST(PcmElement, AgedLatentCapacityShrinks)
{
    auto e = makeElement();
    double fresh = e.agedLatentCapacity(0);
    double aged = e.agedLatentCapacity(100000);
    EXPECT_NEAR(fresh, e.latentCapacity(), 1e-6);
    EXPECT_LT(aged, fresh);
    EXPECT_GT(aged, 0.0);
}

TEST(PcmElement, ParaffinAgesSlowly)
{
    // Very Good stability: after 1,000 daily cycles (~3 years),
    // the charge keeps almost all of its capacity.
    auto e = makeElement();
    EXPECT_GT(e.agedLatentCapacity(1000) / e.latentCapacity(),
              0.97);
}

TEST(PcmElement, StepRejectsBadDt)
{
    auto e = makeElement();
    EXPECT_THROW(e.step(0.0, 40.0, 1.0), FatalError);
    EXPECT_THROW(e.step(-1.0, 40.0, 1.0), FatalError);
}

PcmElement
supercooledElement(double sc)
{
    return PcmElement(commercialParaffin(), smallBank(), 45.0, 25.0,
                      2.0, sc);
}

TEST(PcmSupercooling, DisabledByDefault)
{
    auto e = makeElement();
    EXPECT_DOUBLE_EQ(e.supercoolingC(), 0.0);
    EXPECT_FALSE(e.onFreezingBranch());
    // Active curve is the melting curve.
    EXPECT_EQ(&e.activeCurve(), &e.curve());
}

TEST(PcmSupercooling, RejectsNegativeDepth)
{
    EXPECT_THROW(supercooledElement(-1.0), FatalError);
}

TEST(PcmSupercooling, SwitchesBranchOnFullMelt)
{
    auto e = supercooledElement(3.0);
    EXPECT_FALSE(e.onFreezingBranch());
    e.step(3600.0 * 100.0, 55.0, 2.0);
    EXPECT_DOUBLE_EQ(e.meltFraction(), 1.0);
    EXPECT_TRUE(e.onFreezingBranch());
}

TEST(PcmSupercooling, LiquidCoolsBelowMeltBeforeFreezing)
{
    auto e = supercooledElement(3.0);
    e.step(3600.0 * 100.0, 55.0, 2.0);   // Fully melt.
    // Cool gently to just below the melting point: a supercooled
    // charge stays (almost fully) liquid there.
    e.step(3600.0 * 100.0, 44.0, 2.0);
    EXPECT_GT(e.meltFraction(), 0.9);
    EXPECT_LT(e.temperature(), 45.0);
    // A non-supercooled charge would have started freezing.
    auto plain = makeElement(45.0);
    plain.step(3600.0 * 100.0, 55.0, 2.0);
    plain.step(3600.0 * 100.0, 44.0, 2.0);
    EXPECT_LT(plain.meltFraction(), 0.7);
}

TEST(PcmSupercooling, FreezesOnTheLowerPlateau)
{
    auto e = supercooledElement(3.0);
    e.step(3600.0 * 100.0, 55.0, 2.0);
    // Drive well below the supercooled plateau: solidifies fully.
    e.step(3600.0 * 300.0, 25.0, 2.0);
    EXPECT_DOUBLE_EQ(e.meltFraction(), 0.0);
    EXPECT_FALSE(e.onFreezingBranch());
    EXPECT_EQ(e.cycleCount(), 1u);
}

TEST(PcmSupercooling, RemeltUsesMeltingCurveAgain)
{
    auto e = supercooledElement(3.0);
    e.step(3600.0 * 100.0, 55.0, 2.0);
    e.step(3600.0 * 300.0, 25.0, 2.0);
    // Second melt: onset back at the (higher) melting plateau.
    e.step(600.0, 43.5, 2.0);
    EXPECT_LT(e.meltFraction(), 0.05);  // 43.5 < solidus 44.
    e.step(3600.0 * 100.0, 47.0, 2.0);
    EXPECT_DOUBLE_EQ(e.meltFraction(), 1.0);
    EXPECT_EQ(e.cycleCount(), 1u);
}

TEST(PcmSupercooling, HysteresisDelaysRelease)
{
    // Against the same mild cool-down drive, a supercooled charge
    // has a smaller temperature difference to the air and therefore
    // holds its energy longer.
    auto plain = makeElement(45.0);
    auto sc = supercooledElement(2.5);
    plain.step(3600.0 * 100.0, 55.0, 2.0);
    sc.step(3600.0 * 100.0, 55.0, 2.0);
    for (int i = 0; i < 60; ++i) {
        plain.step(60.0, 42.5, 1.0);
        sc.step(60.0, 42.5, 1.0);
    }
    EXPECT_GT(sc.meltFraction(), plain.meltFraction());
}

} // namespace
} // namespace pcm
} // namespace tts
