/** @file Tests for wax container geometry and banks. */

#include <gtest/gtest.h>

#include <cmath>

#include "pcm/container.hh"
#include "util/error.hh"

namespace tts {
namespace pcm {
namespace {

BoxSpec
literBox()
{
    BoxSpec b;
    b.lengthM = 0.20;
    b.widthM = 0.10;
    b.heightM = 0.06;
    return b;
}

TEST(BoxSpec, ExteriorVolume)
{
    EXPECT_NEAR(literBox().exteriorVolume(), 1.2e-3, 1e-12);
}

TEST(BoxSpec, InteriorSmallerThanExterior)
{
    auto b = literBox();
    EXPECT_LT(b.interiorVolume(), b.exteriorVolume());
    EXPECT_GT(b.interiorVolume(), 0.0);
}

TEST(BoxSpec, WaxVolumeLeavesHeadspace)
{
    auto b = literBox();
    EXPECT_NEAR(b.waxVolume(), 0.9 * b.interiorVolume(), 1e-15);
}

TEST(BoxSpec, SurfaceAreaOfCuboid)
{
    auto b = literBox();
    double expected = 2.0 * (0.20 * 0.10 + 0.20 * 0.06 +
                             0.10 * 0.06);
    EXPECT_NEAR(b.surfaceArea(), expected, 1e-12);
}

TEST(BoxSpec, FrontalAreaIsWidthTimesHeight)
{
    EXPECT_NEAR(literBox().frontalArea(), 0.10 * 0.06, 1e-12);
}

TEST(BoxSpec, ShellMassPositive)
{
    EXPECT_GT(literBox().shellMass(), 0.0);
    // A 1.5 mm aluminum shell around a ~1 l box weighs a few
    // hundred grams.
    EXPECT_LT(literBox().shellMass(), 1.0);
}

TEST(BoxSpec, DegenerateInteriorIsZero)
{
    BoxSpec b;
    b.lengthM = 0.002;
    b.widthM = 0.002;
    b.heightM = 0.002;
    b.wallThicknessM = 0.0015;
    EXPECT_DOUBLE_EQ(b.interiorVolume(), 0.0);
}

TEST(ContainerBank, AggregatesBoxes)
{
    ContainerBank bank(literBox(), 4, 0.04);
    EXPECT_EQ(bank.count(), 4u);
    EXPECT_NEAR(bank.waxVolume(), 4.0 * literBox().waxVolume(),
                1e-15);
    EXPECT_NEAR(bank.surfaceArea(),
                4.0 * literBox().surfaceArea(), 1e-12);
    EXPECT_NEAR(bank.shellMass(), 4.0 * literBox().shellMass(),
                1e-12);
}

TEST(ContainerBank, WaxMassFromDensity)
{
    ContainerBank bank(literBox(), 1, 0.04);
    EXPECT_NEAR(bank.waxMass(800.0), bank.waxVolume() * 800.0,
                1e-12);
    EXPECT_THROW(bank.waxMass(0.0), FatalError);
}

TEST(ContainerBank, BlockageFraction)
{
    ContainerBank bank(literBox(), 2, 0.04);
    EXPECT_NEAR(bank.blockageFraction(),
                2.0 * 0.10 * 0.06 / 0.04, 1e-12);
}

TEST(ContainerBank, RejectsFullBlockage)
{
    // Two boxes fully covering the duct.
    EXPECT_THROW(ContainerBank(literBox(), 10, 0.01), FatalError);
}

TEST(ContainerBank, ConductanceGrowsWithVelocity)
{
    ContainerBank bank(literBox(), 1, 0.04);
    EXPECT_LT(bank.conductanceAt(0.5), bank.conductanceAt(1.0));
    EXPECT_LT(bank.conductanceAt(1.0), bank.conductanceAt(2.0));
}

TEST(ContainerBank, ConductanceFollowsPowerLaw)
{
    ContainerBank bank(literBox(), 1, 0.04);
    double r = bank.conductanceAt(2.0) / bank.conductanceAt(1.0);
    EXPECT_NEAR(r, std::pow(2.0, 0.8), 1e-9);
}

TEST(ContainerBank, ConductanceHasNaturalConvectionFloor)
{
    ContainerBank bank(literBox(), 1, 0.04);
    EXPECT_GT(bank.conductanceAt(0.0), 0.0);
    EXPECT_DOUBLE_EQ(bank.conductanceAt(0.0),
                     bank.conductanceAt(0.01));
}

TEST(ContainerBank, RejectsBadArguments)
{
    EXPECT_THROW(ContainerBank(literBox(), 0, 0.04), FatalError);
    EXPECT_THROW(ContainerBank(literBox(), 1, 0.0), FatalError);
    auto b = literBox();
    b.fillFraction = 0.0;
    EXPECT_THROW(ContainerBank(b, 1, 0.04), FatalError);
}

TEST(SizeBank, HitsVolumeTarget)
{
    // 1.2 liters in a 1U duct, 70 % blockage cap, 6 boxes.
    auto bank = sizeBank(1.2e-3, 0.019, 0.04, 0.70, 6);
    EXPECT_NEAR(bank.waxVolume(), 1.2e-3, 1e-6);
    EXPECT_EQ(bank.count(), 6u);
}

TEST(SizeBank, RespectsBlockageCap)
{
    auto bank = sizeBank(1.2e-3, 0.019, 0.04, 0.70, 6);
    EXPECT_LE(bank.blockageFraction(), 0.70 + 1e-9);
}

class SizeBankSweep
    : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(SizeBankSweep, MoreBoxesMoreSurface)
{
    std::size_t n = GetParam();
    auto a = sizeBank(4.0e-3, 0.038, 0.08, 0.69, n);
    auto b = sizeBank(4.0e-3, 0.038, 0.08, 0.69, n + 4);
    // Splitting the same charge across more boxes increases the
    // air-contact area (the paper's melting-speed lever).
    EXPECT_GT(b.surfaceArea(), a.surfaceArea());
    EXPECT_NEAR(a.waxVolume(), b.waxVolume(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Counts, SizeBankSweep,
                         ::testing::Values(2, 4, 8, 12));

TEST(SizeBank, RejectsImpossibleRequests)
{
    // Volume needing boxes deeper than a server.
    EXPECT_THROW(sizeBank(50.0e-3, 0.019, 0.04, 0.70, 2),
                 FatalError);
    EXPECT_THROW(sizeBank(0.0, 0.019, 0.04, 0.70, 2), FatalError);
    EXPECT_THROW(sizeBank(1e-3, 0.019, 0.04, 0.0, 2), FatalError);
}

} // namespace
} // namespace pcm
} // namespace tts
