/**
 * @file
 * Property-based tests for the enthalpy-temperature model: 100 seeded
 * random parameter sets (Rng::forStream keeps every case
 * reproducible independent of execution order), each checked against
 * the invariants the thermal solver relies on rather than point
 * values:
 *
 *   - H(T) is strictly increasing, so temperature(h) is well defined;
 *   - temperature(enthalpy(T)) == T across the whole range, including
 *     inside the melt window (round-trip inversion);
 *   - melt fraction is 0 below the solidus, 1 above the liquidus, and
 *     monotone in between;
 *   - the latent plateau holds exactly latentHeat * mass joules;
 *   - a PcmElement melt/freeze round trip conserves energy: the heat
 *     absorbed on the way up equals the heat released on the way
 *     down, and the element returns to its initial enthalpy.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "pcm/enthalpy_model.hh"
#include "pcm/material.hh"
#include "pcm/pcm_element.hh"
#include "util/random.hh"

using namespace tts;
using namespace tts::pcm;

namespace {

constexpr std::uint64_t kSeed = 0x7c7370636d70726fULL;
constexpr int kCases = 100;

/** Random but physically sensible curve parameters for one case. */
EnthalpyParams
randomParams(Rng &rng)
{
    EnthalpyParams p;
    p.massKg = rng.uniform(0.2, 20.0);
    p.cpSolid = rng.uniform(1200.0, 3500.0);
    p.cpLiquid = rng.uniform(1200.0, 3500.0);
    p.latentHeat = rng.uniform(80e3, 300e3);
    p.meltTempC = rng.uniform(35.0, 58.0);
    p.meltWindowC = rng.uniform(0.5, 5.0);
    p.extraCapacity = rng.uniform(0.0, 2000.0);
    return p;
}

} // namespace

TEST(EnthalpyProperties, CurveIsStrictlyIncreasing)
{
    for (int c = 0; c < kCases; ++c) {
        Rng rng = Rng::forStream(kSeed, c);
        EnthalpyCurve curve(randomParams(rng));
        double prev = curve.enthalpyAt(-10.0);
        for (double t = -9.5; t <= 90.0; t += 0.5) {
            double h = curve.enthalpyAt(t);
            EXPECT_GT(h, prev)
                << "case " << c << " at t=" << t;
            prev = h;
        }
    }
}

TEST(EnthalpyProperties, TemperatureEnthalpyRoundTrip)
{
    for (int c = 0; c < kCases; ++c) {
        Rng rng = Rng::forStream(kSeed + 1, c);
        EnthalpyParams p = randomParams(rng);
        EnthalpyCurve curve(p);
        // Probe random temperatures, biased to land inside the melt
        // window half the time (the hard region for inversion).
        for (int k = 0; k < 20; ++k) {
            double t = (k % 2 == 0)
                ? rng.uniform(0.0, 85.0)
                : rng.uniform(p.meltTempC - p.meltWindowC,
                              p.meltTempC + p.meltWindowC);
            double h = curve.enthalpyAt(t);
            EXPECT_NEAR(curve.temperatureAt(h), t, 1e-7)
                << "case " << c;
        }
    }
}

TEST(EnthalpyProperties, MeltFractionMonotoneAndSaturating)
{
    for (int c = 0; c < kCases; ++c) {
        Rng rng = Rng::forStream(kSeed + 2, c);
        EnthalpyParams p = randomParams(rng);
        EnthalpyCurve curve(p);

        EXPECT_DOUBLE_EQ(
            curve.meltFraction(
                curve.enthalpyAt(curve.solidusTempC() - 1.0)),
            0.0)
            << "case " << c;
        EXPECT_DOUBLE_EQ(
            curve.meltFraction(
                curve.enthalpyAt(curve.liquidusTempC() + 1.0)),
            1.0)
            << "case " << c;

        double prev = -1.0;
        for (int k = 0; k <= 50; ++k) {
            double h = curve.solidusEnthalpy() +
                (curve.liquidusEnthalpy() -
                 curve.solidusEnthalpy()) *
                    k / 50.0;
            double f = curve.meltFraction(h);
            EXPECT_GE(f, prev) << "case " << c;
            EXPECT_GE(f, 0.0);
            EXPECT_LE(f, 1.0);
            prev = f;
        }
    }
}

TEST(EnthalpyProperties, LatentPlateauHoldsExactCapacity)
{
    for (int c = 0; c < kCases; ++c) {
        Rng rng = Rng::forStream(kSeed + 3, c);
        EnthalpyParams p = randomParams(rng);
        EnthalpyCurve curve(p);
        double plateau =
            curve.liquidusEnthalpy() - curve.solidusEnthalpy();
        // The window also stores sensible heat; latent capacity is
        // the dominant part and must be exactly latentHeat * mass.
        EXPECT_NEAR(curve.latentCapacity(),
                    p.latentHeat * p.massKg,
                    1e-6 * p.latentHeat * p.massKg)
            << "case " << c;
        EXPECT_GE(plateau, curve.latentCapacity()) << "case " << c;
    }
}

TEST(EnthalpyProperties, MeltFreezeRoundTripConservesEnergy)
{
    for (int c = 0; c < kCases; ++c) {
        Rng rng = Rng::forStream(kSeed + 4, c);

        Material wax = commercialParaffin();
        // ~2 l of wax split across four boxes in a 1U-scale duct.
        BoxSpec box;
        box.lengthM = 0.15;
        box.widthM = 0.10;
        box.heightM = 0.04;
        ContainerBank bank(box, 4, 0.025);
        double melt = rng.uniform(42.0, 55.0);
        double start = rng.uniform(20.0, 30.0);
        PcmElement el(wax, bank, melt, start);

        double h0 = el.storedEnthalpy();
        double absorbed = 0.0;

        // Drive hot air past the wax until it is fully melted, then
        // cold air until it returns to the start temperature.
        double hot = melt + rng.uniform(8.0, 20.0);
        double v = rng.uniform(1.0, 6.0);
        for (int i = 0; i < 500000 && el.meltFraction() < 1.0; ++i)
            absorbed += el.step(5.0, hot, v);
        ASSERT_DOUBLE_EQ(el.meltFraction(), 1.0) << "case " << c;
        EXPECT_GT(absorbed, el.latentCapacity()) << "case " << c;

        double released = 0.0;
        for (int i = 0;
             i < 2000000 && el.temperature() > start + 1e-4; ++i)
            released -= el.step(5.0, start, v);
        ASSERT_LE(el.temperature(), start + 1e-3) << "case " << c;

        // First law: net enthalpy change == absorbed - released.
        EXPECT_NEAR(el.storedEnthalpy() - h0, absorbed - released,
                    1e-6 * std::abs(absorbed) + 1e-6)
            << "case " << c;
        // And the state itself is back where it started (to the
        // tolerance the temperature stop-criterion allows).
        EXPECT_NEAR(el.storedEnthalpy(), h0,
                    2e-3 * el.curve().latentCapacity())
            << "case " << c;
    }
}
