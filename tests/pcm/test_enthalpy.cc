/** @file Tests for the enthalpy-temperature PCM model. */

#include <gtest/gtest.h>

#include "pcm/enthalpy_model.hh"
#include "util/error.hh"

namespace tts {
namespace pcm {
namespace {

EnthalpyParams
standardParams()
{
    EnthalpyParams p;
    p.massKg = 1.0;
    p.cpSolid = 2100.0;
    p.cpLiquid = 2400.0;
    p.latentHeat = 200000.0;
    p.meltTempC = 50.0;
    p.meltWindowC = 2.0;
    return p;
}

TEST(EnthalpyCurve, TemperatureRoundTrip)
{
    EnthalpyCurve c(standardParams());
    for (double t = -10.0; t <= 120.0; t += 3.7) {
        EXPECT_NEAR(c.temperatureAt(c.enthalpyAt(t)), t, 1e-9)
            << "at " << t;
    }
}

TEST(EnthalpyCurve, EnthalpyIsMonotone)
{
    EnthalpyCurve c(standardParams());
    double prev = c.enthalpyAt(-20.0);
    for (double t = -19.0; t <= 150.0; t += 1.0) {
        double h = c.enthalpyAt(t);
        EXPECT_GT(h, prev);
        prev = h;
    }
}

TEST(EnthalpyCurve, LatentCapacityIsMassTimesLatent)
{
    EnthalpyCurve c(standardParams());
    EXPECT_DOUBLE_EQ(c.latentCapacity(), 200000.0);
}

TEST(EnthalpyCurve, PlateauSpansLatentPlusSensible)
{
    EnthalpyCurve c(standardParams());
    double dh = c.liquidusEnthalpy() - c.solidusEnthalpy();
    // Latent heat plus ~average cp across the 2 C window.
    double sensible = 0.5 * (2100.0 + 2400.0) * 2.0;
    EXPECT_NEAR(dh, 200000.0 + sensible, 1e-6);
}

TEST(EnthalpyCurve, MeltFractionBounds)
{
    EnthalpyCurve c(standardParams());
    EXPECT_DOUBLE_EQ(c.meltFraction(c.enthalpyAt(20.0)), 0.0);
    EXPECT_DOUBLE_EQ(c.meltFraction(c.enthalpyAt(80.0)), 1.0);
}

TEST(EnthalpyCurve, MeltFractionHalfAtCenter)
{
    EnthalpyCurve c(standardParams());
    double mid = 0.5 * (c.solidusEnthalpy() + c.liquidusEnthalpy());
    EXPECT_NEAR(c.meltFraction(mid), 0.5, 1e-12);
    EXPECT_NEAR(c.temperatureAt(mid), 50.0, 1e-9);
}

TEST(EnthalpyCurve, SolidusLiquidusBracketMeltTemp)
{
    EnthalpyCurve c(standardParams());
    EXPECT_DOUBLE_EQ(c.solidusTempC(), 49.0);
    EXPECT_DOUBLE_EQ(c.liquidusTempC(), 51.0);
}

TEST(EnthalpyCurve, EffectiveCapacityRegions)
{
    EnthalpyCurve c(standardParams());
    EXPECT_DOUBLE_EQ(c.effectiveHeatCapacity(20.0), 2100.0);
    EXPECT_DOUBLE_EQ(c.effectiveHeatCapacity(80.0), 2400.0);
    // Inside the window, the latent term dominates.
    EXPECT_GT(c.effectiveHeatCapacity(50.0), 100000.0);
}

TEST(EnthalpyCurve, ExtraCapacityShiftsAllRegions)
{
    auto p = standardParams();
    p.extraCapacity = 500.0;  // e.g. the aluminum shell.
    EnthalpyCurve c(p);
    EXPECT_DOUBLE_EQ(c.effectiveHeatCapacity(20.0), 2600.0);
    EXPECT_DOUBLE_EQ(c.effectiveHeatCapacity(80.0), 2900.0);
}

TEST(EnthalpyCurve, EnergyToMeltFromAmbient)
{
    EnthalpyCurve c(standardParams());
    double e = c.enthalpyAt(51.0) - c.enthalpyAt(25.0);
    // Sensible 25 -> 49 C plus the full plateau.
    double expected = 2100.0 * 24.0 +
        (c.liquidusEnthalpy() - c.solidusEnthalpy());
    EXPECT_NEAR(e, expected, 1e-6);
}

TEST(EnthalpyCurve, NarrowWindowStillInvertible)
{
    auto p = standardParams();
    p.meltWindowC = 0.25;
    EnthalpyCurve c(p);
    EXPECT_NEAR(c.temperatureAt(c.enthalpyAt(50.0)), 50.0, 1e-9);
    EXPECT_NEAR(c.temperatureAt(c.enthalpyAt(50.1)), 50.1, 1e-9);
}

class EnthalpyMassSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(EnthalpyMassSweep, LatentScalesWithMass)
{
    auto p = standardParams();
    p.massKg = GetParam();
    EnthalpyCurve c(p);
    EXPECT_DOUBLE_EQ(c.latentCapacity(), 200000.0 * GetParam());
    // Round trip still exact.
    EXPECT_NEAR(c.temperatureAt(c.enthalpyAt(42.0)), 42.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Masses, EnthalpyMassSweep,
                         ::testing::Values(0.07, 0.96, 3.2, 100.0));

TEST(EnthalpyCurve, RejectsBadParams)
{
    auto p = standardParams();
    p.massKg = 0.0;
    EXPECT_THROW(EnthalpyCurve c(p), FatalError);
    p = standardParams();
    p.latentHeat = -1.0;
    EXPECT_THROW(EnthalpyCurve c(p), FatalError);
    p = standardParams();
    p.meltWindowC = 0.0;
    EXPECT_THROW(EnthalpyCurve c(p), FatalError);
    p = standardParams();
    p.extraCapacity = -5.0;
    EXPECT_THROW(EnthalpyCurve c(p), FatalError);
}

} // namespace
} // namespace pcm
} // namespace tts
