/** @file Tests for the wax procurement cost model (Section 2.1). */

#include <gtest/gtest.h>

#include "pcm/cost.hh"
#include "pcm/material.hh"
#include "util/error.hh"

namespace tts {
namespace pcm {
namespace {

TEST(Cost, EicosaneIsAbout50xCommercial)
{
    double ratio = priceRatio(eicosane(), commercialParaffin());
    EXPECT_NEAR(ratio, 50.0, 15.0);
}

TEST(Cost, CommercialFusionDeficitIsAbout20Percent)
{
    double deficit = fusionDeficit(eicosane(), commercialParaffin());
    EXPECT_NEAR(deficit, 0.19, 0.03);
}

TEST(Cost, EicosaneFleetCostExceedsMillionDollars)
{
    // Section 2.1: "even in a relatively small datacenter the cost
    // of equipping every server with eicosane would be over a
    // million dollars in wax costs alone."  20,000 servers with
    // 1.2 l each.
    auto cost = fleetWaxCost(eicosane(), 1.2, 20000, 0.0);
    EXPECT_GT(cost.totalCost, 1.0e6);
}

TEST(Cost, CommercialFleetIsCheap)
{
    auto cost = fleetWaxCost(commercialParaffin(), 1.2, 20000);
    EXPECT_LT(cost.totalCost, 120000.0);
}

TEST(Cost, MassFromDensityAndVolume)
{
    auto cost = fleetWaxCost(commercialParaffin(), 1.0, 1, 0.0);
    EXPECT_NEAR(cost.massPerServerKg,
                commercialParaffin().densitySolidGPerMl, 1e-12);
}

TEST(Cost, WaxCostScalesWithVolume)
{
    auto one = fleetWaxCost(commercialParaffin(), 1.0, 1, 0.0);
    auto four = fleetWaxCost(commercialParaffin(), 4.0, 1, 0.0);
    EXPECT_NEAR(four.waxCostPerServer,
                4.0 * one.waxCostPerServer, 1e-9);
}

TEST(Cost, TotalScalesWithServerCount)
{
    auto one = fleetWaxCost(commercialParaffin(), 1.2, 1);
    auto many = fleetWaxCost(commercialParaffin(), 1.2, 1008);
    EXPECT_NEAR(many.totalCost, 1008.0 * one.totalCost, 1e-6);
}

TEST(Cost, JoulesPerDollarFavorsCommercial)
{
    auto e = fleetWaxCost(eicosane(), 1.2, 1, 2.5);
    auto c = fleetWaxCost(commercialParaffin(), 1.2, 1, 2.5);
    EXPECT_GT(c.joulesPerDollar, 10.0 * e.joulesPerDollar);
}

TEST(Cost, RejectsBadArguments)
{
    EXPECT_THROW(fleetWaxCost(commercialParaffin(), 0.0, 10),
                 FatalError);
    EXPECT_THROW(fleetWaxCost(commercialParaffin(), 1.0, 0),
                 FatalError);
}

} // namespace
} // namespace pcm
} // namespace tts
