/**
 * @file
 * Plant runner tests: fault replay (pump failure, exchanger
 * fouling, weather gaps, cooling trips) must move the economics the
 * way physics says, a killed-and-resumed run must be bit-identical
 * to an uninterrupted one for every backend, and compareBackends
 * must not care how many threads it runs on.
 */

#include <cmath>
#include <cstdio>
#include <gtest/gtest.h>
#include <string>

#include "exec/parallel.hh"
#include "fault/fault_schedule.hh"
#include "plant/study.hh"
#include "util/error.hh"
#include "util/units.hh"

namespace tts {
namespace plant {
namespace {

/** One day of diurnal heat load on the 300 s cluster grid. */
PlantScenario
dayScenario()
{
    PlantScenario scenario;
    for (double t = 0.0; t <= units::days(1.0) + 1e-9; t += 300.0) {
        double hour = t / 3600.0;
        double phase = 2.0 * M_PI * (hour - 14.0) / 24.0;
        scenario.loadW.append(t,
                              60000.0 + 25000.0 * std::cos(phase));
    }
    return scenario;
}

/** The full menagerie: every plant-relevant fault kind fires. */
fault::FaultSchedule
stressSchedule()
{
    fault::FaultSchedule s;
    s.add(units::hours(2.0), fault::FaultKind::PumpFailure);
    s.add(units::hours(5.0), fault::FaultKind::PumpRepair);
    s.add(units::hours(7.0), fault::FaultKind::HxFouling,
          fault::FaultEvent::noTarget, 0.3);
    s.add(units::hours(9.0), fault::FaultKind::WeatherGapStart);
    s.add(units::hours(12.0), fault::FaultKind::WeatherGapEnd);
    s.add(units::hours(14.0), fault::FaultKind::CoolingTrip,
          fault::FaultEvent::noTarget, 0.5);
    s.add(units::hours(16.0), fault::FaultKind::CoolingRestore,
          fault::FaultEvent::noTarget, 0.5);
    s.add(units::hours(18.0), fault::FaultKind::HxDefoul,
          fault::FaultEvent::noTarget, 0.3);
    return s;
}

void
expectSameResult(const PlantResult &a, const PlantResult &b)
{
    EXPECT_EQ(a.backend, b.backend);
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.faultEventsApplied, b.faultEventsApplied);
    EXPECT_EQ(a.electricEnergyJ, b.electricEnergyJ);
    EXPECT_EQ(a.peakElectricW, b.peakElectricW);
    EXPECT_EQ(a.energyCostUsd, b.energyCostUsd);
    EXPECT_EQ(a.reusedEnergyJ, b.reusedEnergyJ);
    EXPECT_EQ(a.reuseCreditUsd, b.reuseCreditUsd);
    EXPECT_EQ(a.shedComputeJ, b.shedComputeJ);
    EXPECT_EQ(a.dvfsPenaltyUsd, b.dvfsPenaltyUsd);
    EXPECT_EQ(a.netCostUsd, b.netCostUsd);
    EXPECT_EQ(a.yearlyNetCostUsd, b.yearlyNetCostUsd);
    EXPECT_EQ(a.unservedJ, b.unservedJ);
    EXPECT_EQ(a.throughputRetention, b.throughputRetention);
    EXPECT_EQ(a.bufferDischargeJ, b.bufferDischargeJ);
    ASSERT_EQ(a.electricW.size(), b.electricW.size());
    for (std::size_t i = 0; i < a.electricW.size(); ++i) {
        EXPECT_EQ(a.electricW.times()[i], b.electricW.times()[i]);
        EXPECT_EQ(a.electricW.values()[i], b.electricW.values()[i]);
    }
}

TEST(RunPlant, RejectsMalformedScenario)
{
    PlantConfig config;
    {
        PlantScenario s;
        s.loadW.append(0.0, 1000.0);
        EXPECT_THROW(runPlant(s, config), FatalError);
    }
    {
        PlantScenario s;
        s.loadW.append(0.0, 1000.0);
        s.loadW.append(300.0, std::nan(""));
        EXPECT_THROW(runPlant(s, config), FatalError);
    }
    {
        auto s = dayScenario();
        s.serverCount = 0;
        EXPECT_THROW(runPlant(s, config), FatalError);
    }
}

TEST(RunPlant, PumpFailureRaisesHotWaterCost)
{
    auto clean = dayScenario();
    auto faulted = dayScenario();
    faulted.faults.add(units::hours(8.0),
                       fault::FaultKind::PumpFailure);
    faulted.faults.add(units::hours(14.0),
                       fault::FaultKind::PumpRepair);
    PlantConfig config;
    config.options.kind = BackendKind::HotWater;
    auto base = runPlant(clean, config);
    auto hit = runPlant(faulted, config);
    ASSERT_TRUE(base.finished);
    ASSERT_TRUE(hit.finished);
    EXPECT_EQ(hit.faultEventsApplied, 2u);
    EXPECT_EQ(base.faultEventsApplied, 0u);
    // Backup-chiller hours cost more and capture nothing.
    EXPECT_GT(hit.energyCostUsd, base.energyCostUsd);
    EXPECT_LT(hit.reusedEnergyJ, base.reusedEnergyJ);
    EXPECT_GT(hit.netCostUsd, base.netCostUsd);
}

TEST(RunPlant, FoulingErodesReuseCredit)
{
    auto clean = dayScenario();
    auto fouled = dayScenario();
    fouled.faults.add(units::hours(6.0),
                      fault::FaultKind::HxFouling,
                      fault::FaultEvent::noTarget, 0.4);
    PlantConfig config;
    config.options.kind = BackendKind::HotWater;
    auto base = runPlant(clean, config);
    auto hit = runPlant(fouled, config);
    EXPECT_LT(hit.reuseCreditUsd, base.reuseCreditUsd);
    EXPECT_GT(hit.netCostUsd, base.netCostUsd);
}

TEST(RunPlant, CoolingTripLeavesHeatUnserved)
{
    auto tripped = dayScenario();
    tripped.faults.add(units::hours(10.0),
                       fault::FaultKind::CoolingTrip,
                       fault::FaultEvent::noTarget, 0.5);
    tripped.faults.add(units::hours(12.0),
                       fault::FaultKind::CoolingRestore,
                       fault::FaultEvent::noTarget, 0.5);
    PlantConfig config;
    auto base = runPlant(dayScenario(), config);
    auto hit = runPlant(tripped, config);
    EXPECT_EQ(base.unservedJ, 0.0);
    EXPECT_GT(hit.unservedJ, 0.0);
    // Shedding load also sheds its electricity.
    EXPECT_LT(hit.electricEnergyJ, base.electricEnergyJ);
}

TEST(RunPlant, WeatherGapHoldsStaleAmbient)
{
    // The trace cools sharply at hour 6; a gap spanning the drop
    // keeps the economizer pricing off the stale warm reading, so
    // the gap run must cost more.  Cooling is cheap after hour 6
    // either way, but only the gap-free run sees it immediately.
    std::string weather = "t_hours,ambient_c\n0,25\n6,25\n6.5,2\n"
                          "24,2\n";
    auto clean = dayScenario();
    auto gapped = dayScenario();
    gapped.faults.add(units::hours(5.0),
                      fault::FaultKind::WeatherGapStart);
    gapped.faults.add(units::hours(18.0),
                      fault::FaultKind::WeatherGapEnd);
    PlantConfig config;
    config.options.kind = BackendKind::Economizer;
    config.weatherText = weather;
    auto base = runPlant(clean, config);
    auto hit = runPlant(gapped, config);
    ASSERT_TRUE(base.finished);
    ASSERT_TRUE(hit.finished);
    EXPECT_EQ(hit.faultEventsApplied, 2u);
    EXPECT_GT(hit.energyCostUsd, base.energyCostUsd);
}

TEST(RunPlant, InlineWeatherTakesPrecedenceOverPath)
{
    // weatherText wins, so the bogus path is never opened.
    auto scenario = dayScenario();
    PlantConfig config;
    config.options.kind = BackendKind::Economizer;
    config.options.weatherPath = "/nonexistent/weather.csv";
    config.weatherText = "t_hours,ambient_c\n0,5\n24,5\n";
    auto r = runPlant(scenario, config);
    ASSERT_TRUE(r.finished);
    // Constant 5 C is below the changeover: fans only, all day.
    EXPECT_DOUBLE_EQ(r.peakElectricW,
                     scenario.loadW.max() /
                         config.tuning.economizer.freeCop);
}

TEST(RunPlant, YearlyScalingUsesSpanDaysOverride)
{
    auto scenario = dayScenario();
    PlantConfig config;
    auto derived = runPlant(scenario, config);
    scenario.spanDays = 2.0;
    auto spanned = runPlant(scenario, config);
    EXPECT_EQ(spanned.netCostUsd, derived.netCostUsd);
    EXPECT_DOUBLE_EQ(spanned.yearlyNetCostUsd,
                     derived.yearlyNetCostUsd / 2.0);
}

TEST(RunPlant, KillResumeBitIdenticalForEveryBackend)
{
    auto scenario = dayScenario();
    scenario.faults = stressSchedule();
    for (auto kind : {BackendKind::Crac, BackendKind::HotWater,
                      BackendKind::Economizer, BackendKind::Mpc}) {
        PlantConfig config;
        config.options.kind = kind;
        auto uninterrupted = runPlant(scenario, config);
        ASSERT_TRUE(uninterrupted.finished) << toString(kind);

        std::string path = testing::TempDir() + "plant_resume_" +
            toString(kind) + ".ckpt";
        std::remove(path.c_str());
        PlantConfig chunked = config;
        chunked.checkpoint.path = path;
        chunked.checkpoint.checkpointEveryS = units::hours(1.0);
        chunked.checkpoint.stopAfterS = units::hours(4.0);
        PlantResult resumed;
        int attempts = 0;
        do {
            // Each attempt is a fresh process image: restore from
            // the file, run four more hours, get killed again.
            resumed = runPlant(scenario, chunked);
            ASSERT_LT(++attempts, 20) << toString(kind);
        } while (!resumed.finished);
        EXPECT_GT(attempts, 2) << toString(kind)
                               << ": pause never engaged";
        expectSameResult(uninterrupted, resumed);
        std::remove(path.c_str());
    }
}

TEST(RunPlant, CheckpointBackendMismatchIsFatal)
{
    auto scenario = dayScenario();
    std::string path =
        testing::TempDir() + "plant_mismatch.ckpt";
    std::remove(path.c_str());
    PlantConfig config;
    config.checkpoint.path = path;
    config.checkpoint.stopAfterS = units::hours(4.0);
    ASSERT_FALSE(runPlant(scenario, config).finished);
    // Resuming a CRAC checkpoint under the MPC backend must refuse.
    config.options.kind = BackendKind::Mpc;
    EXPECT_THROW(runPlant(scenario, config), FatalError);
    std::remove(path.c_str());
}

TEST(CompareBackends, BitIdenticalAtOneAndEightThreads)
{
    auto scenario = dayScenario();
    scenario.faults = stressSchedule();
    PlantConfig config;
    std::vector<BackendKind> kinds = {
        BackendKind::Crac, BackendKind::HotWater,
        BackendKind::Economizer, BackendKind::Mpc};

    exec::setGlobalThreads(1);
    auto serial = compareBackends(scenario, config, kinds);
    exec::setGlobalThreads(8);
    auto parallel = compareBackends(scenario, config, kinds);
    exec::setGlobalThreads(exec::defaultThreadCount());

    ASSERT_EQ(serial.arms.size(), parallel.arms.size());
    for (std::size_t i = 0; i < serial.arms.size(); ++i)
        expectSameResult(serial.arms[i], parallel.arms[i]);
    EXPECT_EQ(serial.mpcVsCracSaving, parallel.mpcVsCracSaving);
}

TEST(CompareBackends, RejectsEmptyKindList)
{
    PlantConfig config;
    EXPECT_THROW(compareBackends(dayScenario(), config, {}),
                 FatalError);
}

} // namespace
} // namespace plant
} // namespace tts
