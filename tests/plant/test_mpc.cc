/**
 * @file
 * MPC controller tests: the receding-horizon backend must actually
 * arbitrage (non-zero buffer discharge, beats the static CRAC plant
 * by a real margin), stay bit-identical run to run, pin the buffer
 * on degraded-plant steps, and round-trip its controller state
 * through a checkpoint.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "guard/checkpoint.hh"
#include "plant/backend.hh"
#include "plant/study.hh"
#include "util/error.hh"
#include "util/units.hh"

namespace tts {
namespace plant {
namespace {

/**
 * Two days of diurnal heat load on the 300 s cluster grid: daytime
 * peak in the tariff's peak window, cool trough at night, so both
 * arbitrage channels (price and weather) are live.
 */
PlantScenario
diurnalScenario()
{
    PlantScenario scenario;
    for (double t = 0.0; t <= units::days(2.0) + 1e-9; t += 300.0) {
        double hour = std::fmod(t / 3600.0, 24.0);
        double phase = 2.0 * M_PI * (hour - 14.0) / 24.0;
        scenario.loadW.append(t,
                              60000.0 + 25000.0 * std::cos(phase));
    }
    return scenario;
}

TimeSeries
forecastAmbient(const TimeSeries &load)
{
    datacenter::AmbientModel model;
    TimeSeries out("ambient_c");
    for (double t : load.times())
        out.append(t, model.at(t));
    return out;
}

TEST(MpcBackend, RejectsDegenerateTuning)
{
    {
        PlantTuning t;
        t.mpcHorizonSteps = 0;
        EXPECT_THROW(makeBackend(BackendKind::Mpc, t), FatalError);
    }
    {
        PlantTuning t;
        t.mpcBufferLevels = 0;
        EXPECT_THROW(makeBackend(BackendKind::Mpc, t), FatalError);
    }
    {
        PlantTuning t;
        t.mpcRoundTripEff = 0.0;
        EXPECT_THROW(makeBackend(BackendKind::Mpc, t), FatalError);
    }
    {
        PlantTuning t;
        t.mpcRoundTripEff = 1.5;
        EXPECT_THROW(makeBackend(BackendKind::Mpc, t), FatalError);
    }
    {
        PlantTuning t;
        t.mpcDvfsPenaltyPerKWh = -1.0;
        EXPECT_THROW(makeBackend(BackendKind::Mpc, t), FatalError);
    }
}

TEST(MpcBackend, RequiresForecastBeforeStepping)
{
    PlantTuning tuning;
    auto b = makeBackend(BackendKind::Mpc, tuning);
    PlantStep s;
    s.dtS = 300.0;
    s.heatLoadW = 1000.0;
    EXPECT_THROW(b->step(s), FatalError);
}

TEST(MpcBackend, RejectsMalformedForecast)
{
    PlantTuning tuning;
    auto b = makeBackend(BackendKind::Mpc, tuning);
    TimeSeries one("w");
    one.append(0.0, 1000.0);
    TimeSeries amb("c");
    amb.append(0.0, 18.0);
    EXPECT_THROW(b->setForecast(one, amb), FatalError);

    TimeSeries two("w");
    two.append(0.0, 1000.0);
    two.append(300.0, 1000.0);
    EXPECT_THROW(b->setForecast(two, amb), FatalError);
}

TEST(MpcBackend, DegradedPlantPinsTheBuffer)
{
    auto scenario = diurnalScenario();
    PlantTuning tuning;
    auto b = makeBackend(BackendKind::Mpc, tuning);
    b->setForecast(scenario.loadW, forecastAmbient(scenario.loadW));
    b->reset();

    // Run until the controller has banked some charge.
    double banked = 0.0;
    std::size_t i = 0;
    for (; i + 1 < scenario.loadW.size() && banked <= 0.0; ++i) {
        PlantStep s;
        s.timeS = scenario.loadW.times()[i];
        s.dtS = scenario.loadW.times()[i + 1] - s.timeS;
        s.heatLoadW = scenario.loadW.values()[i];
        s.ambientC = 12.0;
        banked = b->step(s).bufferJ;
    }
    ASSERT_GT(banked, 0.0) << "controller never charged";

    // A tripped plant must not move the buffer or shed via DVFS.
    PlantStep trip;
    trip.timeS = scenario.loadW.times()[i];
    trip.dtS = 300.0;
    trip.heatLoadW = scenario.loadW.values()[i];
    trip.ambientC = 12.0;
    trip.capacityFraction = 0.5;
    auto r = b->step(trip);
    EXPECT_EQ(r.bufferJ, banked);
    EXPECT_EQ(r.dischargedJ, 0.0);
    EXPECT_EQ(r.dvfsCap, 1.0);
    EXPECT_DOUBLE_EQ(r.servedW, trip.heatLoadW * 0.5);
}

TEST(MpcBackend, CheckpointRoundTripsControllerState)
{
    auto scenario = diurnalScenario();
    PlantTuning tuning;
    auto forecast_a = forecastAmbient(scenario.loadW);

    auto stepOne = [&](CoolingBackend &b, std::size_t i) {
        PlantStep s;
        s.timeS = scenario.loadW.times()[i];
        s.dtS = scenario.loadW.times()[i + 1] - s.timeS;
        s.heatLoadW = scenario.loadW.values()[i];
        s.ambientC = forecast_a.values()[i];
        return b.step(s);
    };

    auto a = makeBackend(BackendKind::Mpc, tuning);
    a->setForecast(scenario.loadW, forecast_a);
    a->reset();
    for (std::size_t i = 0; i < 50; ++i)
        stepOne(*a, i);

    guard::CheckpointWriter w;
    a->save(w);
    auto b = makeBackend(BackendKind::Mpc, tuning);
    b->setForecast(scenario.loadW, forecast_a);
    b->reset();
    guard::CheckpointReader r(w.finish());
    b->restore(r);
    r.expectEnd();

    // Continuations must be bit-identical.
    for (std::size_t i = 50; i < 120; ++i) {
        auto ra = stepOne(*a, i);
        auto rb = stepOne(*b, i);
        EXPECT_EQ(ra.electricW, rb.electricW) << i;
        EXPECT_EQ(ra.bufferJ, rb.bufferJ) << i;
        EXPECT_EQ(ra.dvfsCap, rb.dvfsCap) << i;
        EXPECT_EQ(ra.fanLevel, rb.fanLevel) << i;
    }
}

TEST(MpcStudy, RunIsBitIdenticalAcrossRepeats)
{
    auto scenario = diurnalScenario();
    PlantConfig config;
    config.options.kind = BackendKind::Mpc;
    auto a = runPlant(scenario, config);
    auto b = runPlant(scenario, config);
    ASSERT_TRUE(a.finished);
    EXPECT_EQ(a.electricEnergyJ, b.electricEnergyJ);
    EXPECT_EQ(a.netCostUsd, b.netCostUsd);
    EXPECT_EQ(a.bufferDischargeJ, b.bufferDischargeJ);
    ASSERT_EQ(a.electricW.size(), b.electricW.size());
    for (std::size_t i = 0; i < a.electricW.size(); ++i)
        EXPECT_EQ(a.electricW.values()[i], b.electricW.values()[i]);
}

TEST(MpcStudy, BeatsStaticCracWithMargin)
{
    // The ISSUE acceptance bar, on the fast synthetic scenario: the
    // controller must beat the static CRAC plant on yearly net cost
    // by a real margin, discharge the buffer (it arbitrages, not
    // just re-prices), and keep throughput essentially whole.
    auto scenario = diurnalScenario();
    PlantConfig config;
    auto cmp = compareBackends(
        scenario, config, {BackendKind::Crac, BackendKind::Mpc});
    ASSERT_EQ(cmp.arms.size(), 2u);
    const auto &crac = cmp.arms[0];
    const auto &mpc = cmp.arms[1];
    EXPECT_GT(cmp.mpcVsCracSaving, 0.05);
    EXPECT_LT(mpc.yearlyNetCostUsd, crac.yearlyNetCostUsd);
    EXPECT_GT(mpc.bufferDischargeJ, 0.0);
    EXPECT_GT(mpc.throughputRetention, 0.9);
    EXPECT_LE(mpc.throughputRetention, 1.0);
}

TEST(MpcStudy, BeatsPlainEconomizerViaArbitrage)
{
    // Against the economizer the controller shares the efficiency
    // model, so any win is pure melt/fan/DVFS scheduling.
    auto scenario = diurnalScenario();
    PlantConfig config;
    auto cmp = compareBackends(
        scenario, config,
        {BackendKind::Economizer, BackendKind::Mpc});
    ASSERT_EQ(cmp.arms.size(), 2u);
    EXPECT_LT(cmp.arms[1].yearlyNetCostUsd,
              cmp.arms[0].yearlyNetCostUsd);
}

} // namespace
} // namespace plant
} // namespace tts
