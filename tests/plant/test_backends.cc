/**
 * @file
 * Per-backend arithmetic tests: the CRAC adapter must be bit-exact
 * against datacenter::CoolingSystem (the default plant may not move
 * a single pre-plant golden), the hot-water loop must price capture,
 * pump failure, and fouling the way the file comment promises, and
 * the economizer must defer to EconomizerCoolingModel at the step's
 * ambient.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "datacenter/cooling_system.hh"
#include "plant/backend.hh"
#include "plant/study.hh"
#include "util/error.hh"
#include "util/units.hh"

namespace tts {
namespace plant {
namespace {

PlantStep
stepAt(double t_s, double load_w)
{
    PlantStep s;
    s.timeS = t_s;
    s.dtS = 60.0;
    s.heatLoadW = load_w;
    return s;
}

TEST(CracBackend, ElectricMatchesCoolingSystemExactly)
{
    PlantTuning tuning;
    auto b = makeBackend(BackendKind::Crac, tuning);
    datacenter::CoolingSystem legacy(1e6, tuning.cracCop);
    for (double load : {0.0, 123.456, 35000.0, 987654.321}) {
        auto r = b->step(stepAt(0.0, load));
        // Bit equality, not NEAR: the adapter must evaluate the very
        // expression CoolingSystem::electricSeries appends.
        EXPECT_EQ(r.electricW, legacy.electricPower(load)) << load;
        EXPECT_EQ(r.servedW, load);
        EXPECT_EQ(r.reusedW, 0.0);
    }
}

TEST(CracBackend, ClampsNegativeLoadLikeCoolingSystem)
{
    PlantTuning tuning;
    auto b = makeBackend(BackendKind::Crac, tuning);
    auto r = b->step(stepAt(0.0, -500.0));
    EXPECT_EQ(r.electricW, 0.0);
    EXPECT_EQ(r.servedW, 0.0);
}

TEST(CracBackend, CoolingTripShedsProportionally)
{
    PlantTuning tuning;
    auto b = makeBackend(BackendKind::Crac, tuning);
    PlantStep s = stepAt(0.0, 70000.0);
    s.capacityFraction = 0.4;
    auto r = b->step(s);
    EXPECT_DOUBLE_EQ(r.servedW, 70000.0 * 0.4);
    EXPECT_DOUBLE_EQ(r.electricW, 70000.0 * 0.4 / tuning.cracCop);
}

TEST(CracBackend, RunCostMatchesCoolingSystemEnergyCost)
{
    // The adapter-equivalence bar: a whole plant run priced under
    // the default backend must reproduce CoolingSystem::energyCost
    // bit for bit (same samples, same trapezoid, same tariff).
    PlantScenario scenario;
    for (double h = 0.0; h <= 48.0; h += 0.25)
        scenario.loadW.append(units::hours(h),
                              50000.0 + 20000.0 *
                                  std::sin(h * 2.0 * M_PI / 24.0));
    PlantConfig config;
    auto r = runPlant(scenario, config);
    ASSERT_TRUE(r.finished);
    EXPECT_EQ(r.backend, "crac");

    datacenter::CoolingSystem legacy(1e9, config.tuning.cracCop);
    EXPECT_EQ(r.energyCostUsd,
              legacy.energyCost(scenario.loadW,
                                config.tuning.tariff));

    // The recorded electric series is the legacy series verbatim.
    auto legacy_series = legacy.electricSeries(scenario.loadW);
    ASSERT_EQ(r.electricW.size(), legacy_series.size());
    for (std::size_t i = 0; i < legacy_series.size(); ++i) {
        EXPECT_EQ(r.electricW.times()[i], legacy_series.times()[i]);
        EXPECT_EQ(r.electricW.values()[i],
                  legacy_series.values()[i]);
    }
}

TEST(HotWaterBackend, CapturesEffectivenessFraction)
{
    PlantTuning tuning;
    auto b = makeBackend(BackendKind::HotWater, tuning);
    double load = 100000.0;
    auto r = b->step(stepAt(0.0, load));
    EXPECT_DOUBLE_EQ(r.reusedW, load * tuning.hwEffectiveness);
    double residual = load * (1.0 - tuning.hwEffectiveness);
    EXPECT_DOUBLE_EQ(r.electricW,
                     residual / tuning.hwMechanicalCop +
                         tuning.hwPumpFraction * load);
}

TEST(HotWaterBackend, PumpFailureFallsBackToBackupChiller)
{
    PlantTuning tuning;
    auto b = makeBackend(BackendKind::HotWater, tuning);
    PlantStep s = stepAt(0.0, 100000.0);
    s.pumpFailed = true;
    auto r = b->step(s);
    EXPECT_DOUBLE_EQ(r.electricW, 100000.0 / tuning.hwBackupCop);
    // Nothing captured, no pump overhead while the loop is down.
    EXPECT_EQ(r.reusedW, 0.0);
    // Backup mode is strictly more expensive than the healthy loop.
    EXPECT_GT(r.electricW,
              b->step(stepAt(60.0, 100000.0)).electricW);
}

TEST(HotWaterBackend, FoulingErodesCapture)
{
    PlantTuning tuning;
    auto b = makeBackend(BackendKind::HotWater, tuning);
    PlantStep s = stepAt(0.0, 100000.0);
    s.hxFouling = 0.3;
    auto r = b->step(s);
    EXPECT_DOUBLE_EQ(r.reusedW,
                     100000.0 * tuning.hwEffectiveness * 0.7);
    // Fouling beyond 1 clamps: a dead exchanger, not a heat source.
    s.hxFouling = 1.5;
    auto dead = b->step(s);
    EXPECT_EQ(dead.reusedW, 0.0);
    EXPECT_DOUBLE_EQ(dead.electricW,
                     100000.0 / tuning.hwMechanicalCop +
                         tuning.hwPumpFraction * 100000.0);
}

TEST(HotWaterBackend, RejectsDegenerateTuning)
{
    {
        PlantTuning t;
        t.hwEffectiveness = 0.0;
        EXPECT_THROW(makeBackend(BackendKind::HotWater, t),
                     FatalError);
    }
    {
        PlantTuning t;
        t.hwEffectiveness = 1.5;
        EXPECT_THROW(makeBackend(BackendKind::HotWater, t),
                     FatalError);
    }
    {
        PlantTuning t;
        t.hwBackupCop = 0.0;
        EXPECT_THROW(makeBackend(BackendKind::HotWater, t),
                     FatalError);
    }
    {
        PlantTuning t;
        t.hwPumpFraction = -0.01;
        EXPECT_THROW(makeBackend(BackendKind::HotWater, t),
                     FatalError);
    }
}

TEST(EconomizerBackend, PricesAtTheStepAmbient)
{
    PlantTuning tuning;
    auto b = makeBackend(BackendKind::Economizer, tuning);
    PlantStep s = stepAt(0.0, 50000.0);
    s.ambientC = 5.0; // Below changeover: fans only.
    EXPECT_DOUBLE_EQ(b->step(s).electricW,
                     50000.0 / tuning.economizer.freeCop);
    s.ambientC = 40.0; // Hot: plain mechanical COP.
    EXPECT_DOUBLE_EQ(b->step(s).electricW,
                     50000.0 / tuning.economizer.mechanicalCop);
    s.ambientC = 20.0;
    EXPECT_DOUBLE_EQ(
        b->step(s).electricW,
        tuning.economizer.electricPower(50000.0, 20.0));
}

TEST(EconomizerBackend, RejectsDegenerateModelUpFront)
{
    PlantTuning t;
    t.economizer.mechanicalCop = 0.0;
    EXPECT_THROW(makeBackend(BackendKind::Economizer, t),
                 FatalError);
}

TEST(MakeBackend, NamesMatchKinds)
{
    PlantTuning tuning;
    EXPECT_STREQ(makeBackend(BackendKind::Crac, tuning)->name(),
                 "crac");
    EXPECT_STREQ(makeBackend(BackendKind::HotWater, tuning)->name(),
                 "hot_water");
    EXPECT_STREQ(
        makeBackend(BackendKind::Economizer, tuning)->name(),
        "economizer");
    EXPECT_STREQ(makeBackend(BackendKind::Mpc, tuning)->name(),
                 "mpc");
}

TEST(BackendKindNames, RoundTripAndReject)
{
    for (auto kind : {BackendKind::Crac, BackendKind::HotWater,
                      BackendKind::Economizer, BackendKind::Mpc})
        EXPECT_EQ(backendKindFromString(toString(kind)), kind);
    EXPECT_THROW(backendKindFromString("chilled_beam"), FatalError);
    EXPECT_THROW(backendKindFromString(""), FatalError);
}

} // namespace
} // namespace plant
} // namespace tts
