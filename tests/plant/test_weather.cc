/**
 * @file
 * Weather-trace reader hardening: every malformed CSV a cut-off
 * download or a corrupted sensor export can produce must die with a
 * FatalError naming the offending line, never a silent skip, plus
 * the WeatherSource hold-last gap semantics the fault machinery
 * relies on.
 */

#include <gtest/gtest.h>

#include "datacenter/free_cooling.hh"
#include "plant/weather.hh"
#include "util/error.hh"
#include "util/units.hh"

namespace tts {
namespace plant {
namespace {

TEST(WeatherTrace, ParsesAndInterpolates)
{
    auto w = WeatherTrace::parse(
        "t_hours,ambient_c\n0,10\n1,12\n2,8\n");
    EXPECT_EQ(w.size(), 3u);
    EXPECT_DOUBLE_EQ(w.at(0.0), 10.0);
    EXPECT_DOUBLE_EQ(w.at(units::hours(0.5)), 11.0);
    EXPECT_DOUBLE_EQ(w.at(units::hours(2.0)), 8.0);
    // Times outside the span clamp to the end samples.
    EXPECT_DOUBLE_EQ(w.at(units::hours(5.0)), 8.0);
    EXPECT_DOUBLE_EQ(w.at(-100.0), 10.0);
}

TEST(WeatherTrace, AcceptsExtraColumnsAndBlankLines)
{
    auto w = WeatherTrace::parse(
        "t_hours,station,ambient_c\n0,a,10\n\n1,b,12\n");
    EXPECT_EQ(w.size(), 2u);
    EXPECT_DOUBLE_EQ(w.at(units::hours(1.0)), 12.0);
}

TEST(WeatherTrace, RejectsEmptyInput)
{
    EXPECT_THROW(WeatherTrace::parse(""), FatalError);
}

TEST(WeatherTrace, RejectsMissingAmbientColumn)
{
    EXPECT_THROW(WeatherTrace::parse("t_hours,temp\n0,10\n1,11\n"),
                 FatalError);
}

TEST(WeatherTrace, RejectsNonTimeFirstColumn)
{
    EXPECT_THROW(
        WeatherTrace::parse("station,ambient_c\n0,10\n1,11\n"),
        FatalError);
}

TEST(WeatherTrace, RejectsTruncatedRow)
{
    EXPECT_THROW(WeatherTrace::parse("t_hours,ambient_c\n0,10\n1\n"),
                 FatalError);
}

TEST(WeatherTrace, RejectsNonNumericCells)
{
    EXPECT_THROW(
        WeatherTrace::parse("t_hours,ambient_c\n0,10\nx,11\n"),
        FatalError);
    EXPECT_THROW(
        WeatherTrace::parse("t_hours,ambient_c\n0,10\n1,cold\n"),
        FatalError);
}

TEST(WeatherTrace, RejectsTrailingGarbage)
{
    EXPECT_THROW(
        WeatherTrace::parse("t_hours,ambient_c\n0,10\n1,11junk\n"),
        FatalError);
}

TEST(WeatherTrace, RejectsNonFiniteValues)
{
    EXPECT_THROW(
        WeatherTrace::parse("t_hours,ambient_c\n0,10\nnan,11\n"),
        FatalError);
    EXPECT_THROW(
        WeatherTrace::parse("t_hours,ambient_c\n0,10\n1,nan\n"),
        FatalError);
    EXPECT_THROW(
        WeatherTrace::parse("t_hours,ambient_c\n0,10\ninf,11\n"),
        FatalError);
}

TEST(WeatherTrace, RejectsUnsortedTimestamps)
{
    EXPECT_THROW(
        WeatherTrace::parse("t_hours,ambient_c\n0,10\n2,11\n1,12\n"),
        FatalError);
    // Duplicates count as out of order (strictly increasing).
    EXPECT_THROW(
        WeatherTrace::parse("t_hours,ambient_c\n0,10\n0,11\n"),
        FatalError);
}

TEST(WeatherTrace, RejectsImplausibleTemperatures)
{
    EXPECT_THROW(
        WeatherTrace::parse("t_hours,ambient_c\n0,10\n1,-120\n"),
        FatalError);
    EXPECT_THROW(
        WeatherTrace::parse("t_hours,ambient_c\n0,10\n1,99\n"),
        FatalError);
}

TEST(WeatherTrace, RejectsSingleRow)
{
    EXPECT_THROW(WeatherTrace::parse("t_hours,ambient_c\n0,10\n"),
                 FatalError);
}

TEST(WeatherTrace, DiagnosticNamesTheLine)
{
    try {
        WeatherTrace::parse("t_hours,ambient_c\n0,10\n1,11\n1.5\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 4"),
                  std::string::npos)
            << e.what();
    }
}

TEST(WeatherTrace, LoadRejectsMissingFile)
{
    EXPECT_THROW(WeatherTrace::load("/nonexistent/weather.csv"),
                 FatalError);
}

TEST(WeatherSource, TraceHoldsLastReadingDuringGap)
{
    WeatherSource src(WeatherTrace::parse(
        "t_hours,ambient_c\n0,10\n1,20\n2,30\n"));
    ASSERT_TRUE(src.fromTrace());
    EXPECT_DOUBLE_EQ(src.at(0.0), 10.0);
    EXPECT_DOUBLE_EQ(src.at(units::hours(1.0)), 20.0);
    // Gap: the 2 h reading is never taken; 20 C is held.
    EXPECT_DOUBLE_EQ(src.at(units::hours(2.0), true), 20.0);
    EXPECT_DOUBLE_EQ(src.heldC(), 20.0);
    // Gap ends: fresh readings resume.
    EXPECT_DOUBLE_EQ(src.at(units::hours(2.0)), 30.0);
}

TEST(WeatherSource, SinusoidHoldsLastReadingDuringGap)
{
    datacenter::AmbientModel model;
    WeatherSource src(model);
    ASSERT_FALSE(src.fromTrace());
    double c0 = src.at(units::hours(3.0));
    EXPECT_DOUBLE_EQ(c0, model.at(units::hours(3.0)));
    EXPECT_DOUBLE_EQ(src.at(units::hours(15.0), true), c0);
    EXPECT_NE(src.at(units::hours(15.0)), c0);
}

TEST(WeatherSource, HeldReadingRestoresFromCheckpoint)
{
    WeatherSource src(WeatherTrace::parse(
        "t_hours,ambient_c\n0,10\n1,20\n"));
    src.setHeldC(17.5);
    EXPECT_DOUBLE_EQ(src.at(units::hours(9.0), true), 17.5);
}

} // namespace
} // namespace plant
} // namespace tts
