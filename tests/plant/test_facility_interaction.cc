/**
 * @file
 * Plant backends against the facility models: the CRAC adapter must
 * stay bit-exact on a real mixed-facility cooling load (not just
 * synthetic series), a chilled-water TES shave must carry through
 * to the plant bill, and the hot-water loop must monetize facility
 * heat.  This is the seam the ISSUE calls out between tts::plant
 * and datacenter::{ChilledWaterTank, MixedFacility}.
 */

#include <gtest/gtest.h>

#include "datacenter/chilled_water.hh"
#include "datacenter/cooling_system.hh"
#include "datacenter/mixed_facility.hh"
#include "plant/study.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"

namespace tts {
namespace plant {
namespace {

using datacenter::ChilledWaterConfig;
using datacenter::ChilledWaterTank;
using datacenter::ClusterRunOptions;
using datacenter::MixedFacility;
using server::WaxConfig;

/** One day of a two-pool facility on a coarse, fast grid. */
const TimeSeries &
facilityLoad()
{
    static const TimeSeries load = [] {
        workload::GoogleTraceParams p;
        p.durationS = units::days(1.0);
        p.sampleIntervalS = 900.0;
        auto trace = workload::makeGoogleTrace(p);
        ClusterRunOptions o;
        o.controlIntervalS = 900.0;
        o.thermalStepS = 15.0;
        MixedFacility f(
            {{server::rd330Spec(), WaxConfig::paper(), 2},
             {server::x4470Spec(), WaxConfig::none(), 1}});
        return f.run(trace, o).coolingLoadW;
    }();
    return load;
}

TEST(FacilityInteraction, CracAdapterExactOnMixedFacilityLoad)
{
    PlantScenario scenario;
    scenario.loadW = facilityLoad();
    PlantConfig config;
    auto r = runPlant(scenario, config);
    ASSERT_TRUE(r.finished);

    datacenter::CoolingSystem legacy(1e9, config.tuning.cracCop);
    EXPECT_EQ(r.energyCostUsd,
              legacy.energyCost(scenario.loadW,
                                config.tuning.tariff));
    EXPECT_EQ(r.peakElectricW,
              legacy.electricPower(scenario.loadW.max()));
}

TEST(FacilityInteraction, TesShaveCarriesThroughToPlantBill)
{
    const TimeSeries &load = facilityLoad();
    ChilledWaterConfig cw;
    cw.volumeM3 = 50.0;
    cw.maxDischargeW = load.max();
    cw.maxRechargeW = load.max();
    ChilledWaterTank tank(cw);
    auto shaved = tank.shave(load, 0.9 * load.max());
    ASSERT_GT(shaved.peakReduction(), 0.0);

    PlantConfig config;
    PlantScenario raw, tes;
    raw.loadW = load;
    tes.loadW = shaved.plantLoadW;
    auto r_raw = runPlant(raw, config);
    auto r_tes = runPlant(tes, config);
    // The shaved plant peaks lower, and the peaks agree with the
    // TES model's own accounting through the CRAC COP.
    EXPECT_LT(r_tes.peakElectricW, r_raw.peakElectricW);
    EXPECT_DOUBLE_EQ(r_tes.peakElectricW,
                     shaved.peakPlantW / config.tuning.cracCop);
}

TEST(FacilityInteraction, HotWaterMonetizesFacilityHeat)
{
    PlantScenario scenario;
    scenario.loadW = facilityLoad();
    PlantConfig config;
    auto cmp = compareBackends(
        scenario, config,
        {BackendKind::Crac, BackendKind::HotWater});
    ASSERT_EQ(cmp.arms.size(), 2u);
    const auto &crac = cmp.arms[0];
    const auto &hw = cmp.arms[1];
    EXPECT_GT(hw.reuseCreditUsd, 0.0);
    EXPECT_GT(hw.reusedEnergyJ, 0.0);
    EXPECT_LT(hw.netCostUsd, crac.netCostUsd);
}

} // namespace
} // namespace plant
} // namespace tts
