#include "obs/trace.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <tuple>
#include <utility>

#include "obs/enabled.hh"
#include "util/error.hh"

namespace tts {
namespace obs {

struct TaskScope::Ctx
{
    std::uint64_t region = 0;
    std::uint64_t task = 0;
    std::uint64_t seq = 0;
    std::vector<TraceEvent> buf;
};

namespace {

using Ctx = TaskScope::Ctx;

std::mutex g_mu;
std::vector<TraceEvent> g_collected;        // Guarded by g_mu.
std::atomic<std::uint64_t> g_next_region{1};

thread_local Ctx *tl_ctx = nullptr;

void
flushCtx(Ctx &ctx)
{
    if (ctx.buf.empty())
        return;
    std::lock_guard<std::mutex> lock(g_mu);
    g_collected.insert(g_collected.end(),
                       std::make_move_iterator(ctx.buf.begin()),
                       std::make_move_iterator(ctx.buf.end()));
    ctx.buf.clear();
}

/**
 * Stream (region 0, task 0): main-line emission on threads that are
 * not inside a TaskScope.  Flushed on drain and at thread exit;
 * exec joins its recruits per region, so worker destructors run
 * before the launching thread can drain.
 */
struct MainCtx
{
    Ctx ctx;
    ~MainCtx() { flushCtx(ctx); }
};

Ctx &
mainCtx()
{
    thread_local MainCtx m;
    return m.ctx;
}

void
appendEscaped(std::string &out, const std::string &s)
{
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
    case EventKind::MeltOnset:
        return "melt.onset";
    case EventKind::MeltComplete:
        return "melt.complete";
    case EventKind::MeltRefrozen:
        return "melt.refrozen";
    case EventKind::ThrottleOn:
        return "dvfs.throttle_on";
    case EventKind::ThrottleOff:
        return "dvfs.throttle_off";
    case EventKind::FaultInjected:
        return "fault.injected";
    case EventKind::GuardRetry:
        return "guard.retry";
    case EventKind::GuardFallback:
        return "guard.fallback";
    case EventKind::GuardTrip:
        return "guard.trip";
    case EventKind::GuardCounters:
        return "guard.counters";
    case EventKind::CheckpointSave:
        return "checkpoint.save";
    case EventKind::CheckpointRestore:
        return "checkpoint.restore";
    case EventKind::JobDispatch:
        return "job.dispatch";
    case EventKind::JobCrashKill:
        return "job.crash_kill";
    case EventKind::OptStep:
        return "opt.step";
    case EventKind::PlantControl:
        return "plant.control";
    case EventKind::PhaseBegin:
        return "phase.begin";
    case EventKind::PhaseEnd:
        return "phase.end";
    }
    return "unknown";
}

void
emitEvent(EventKind kind, double time_s, const std::string &name,
          double value, std::int64_t target)
{
    if (!enabled())
        return;
    Ctx *ctx = tl_ctx ? tl_ctx : &mainCtx();
    TraceEvent e;
    e.region = ctx->region;
    e.task = ctx->task;
    e.seq = ctx->seq++;
    e.timeS = time_s;
    e.kind = kind;
    e.name = name;
    e.value = value;
    e.target = target;
    ctx->buf.push_back(std::move(e));
}

std::uint64_t
beginRegion()
{
    return g_next_region.fetch_add(1, std::memory_order_relaxed);
}

bool
inTaskScope()
{
    return tl_ctx != nullptr;
}

TaskScope::TaskScope(std::uint64_t region, std::uint64_t task)
    : ctx_(new Ctx), prev_(tl_ctx)
{
    ctx_->region = region;
    ctx_->task = task;
    tl_ctx = ctx_;
}

TaskScope::~TaskScope()
{
    flushCtx(*ctx_);
    tl_ctx = prev_;
    delete ctx_;
}

std::vector<TraceEvent>
drainEvents()
{
    flushCtx(mainCtx());
    std::vector<TraceEvent> out;
    {
        std::lock_guard<std::mutex> lock(g_mu);
        out.swap(g_collected);
    }
    std::sort(out.begin(), out.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  return std::tie(a.region, a.task, a.seq) <
                         std::tie(b.region, b.task, b.seq);
              });
    return out;
}

namespace detail {

void
resetTrace()
{
    {
        std::lock_guard<std::mutex> lock(g_mu);
        g_collected.clear();
    }
    g_next_region.store(1, std::memory_order_relaxed);
    Ctx &main = mainCtx();
    main.seq = 0;
    main.buf.clear();
}

} // namespace detail

void
writeJsonl(std::ostream &out, const std::vector<TraceEvent> &events)
{
    std::string line;
    for (const TraceEvent &e : events) {
        line.clear();
        line += "{\"rg\":";
        line += std::to_string(e.region);
        line += ",\"tk\":";
        line += std::to_string(e.task);
        line += ",\"sq\":";
        line += std::to_string(e.seq);
        line += ",\"t\":";
        line += formatDouble(e.timeS);
        line += ",\"kind\":\"";
        line += eventKindName(e.kind);
        line += "\",\"name\":\"";
        appendEscaped(line, e.name);
        line += "\",\"v\":";
        line += formatDouble(e.value);
        line += ",\"tgt\":";
        line += std::to_string(e.target);
        line += "}\n";
        out << line;
    }
}

void
writeChromeTrace(std::ostream &out,
                 const std::vector<TraceEvent> &events)
{
    // Instant events throughout: melt and throttle windows could be
    // drawn as durations, but Chrome "B"/"E" pairs require strict
    // stack nesting per track and PCM elements melt concurrently.
    // Instants render on every viewer and keep the exporter simple;
    // the JSONL format carries the same information losslessly.
    out << "{\"traceEvents\":[";
    bool first = true;
    std::string entry;
    for (const TraceEvent &e : events) {
        entry.clear();
        if (!first)
            entry += ",";
        first = false;
        entry += "\n{\"name\":\"";
        std::string label = eventKindName(e.kind);
        if (!e.name.empty()) {
            label += " ";
            label += e.name;
        }
        appendEscaped(entry, label);
        entry += "\",\"cat\":\"tts\",\"ph\":\"i\",\"s\":\"t\",";
        // Simulation seconds -> trace microseconds.
        entry += "\"ts\":";
        entry += formatDouble(e.timeS * 1e6);
        entry += ",\"pid\":";
        entry += std::to_string(e.region);
        entry += ",\"tid\":";
        entry += std::to_string(e.task);
        entry += ",\"args\":{\"v\":";
        entry += formatDouble(e.value);
        entry += ",\"tgt\":";
        entry += std::to_string(e.target);
        entry += ",\"sq\":";
        entry += std::to_string(e.seq);
        entry += "}}";
        out << entry;
    }
    out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void
writeTraceFile(const std::string &path, TraceFormat format)
{
    std::vector<TraceEvent> events = drainEvents();
    std::ofstream out(path);
    require(out.good(),
            "writeTraceFile: cannot open '" + path + "'");
    if (format == TraceFormat::Jsonl)
        writeJsonl(out, events);
    else
        writeChromeTrace(out, events);
    out.flush();
    require(out.good(), "writeTraceFile: write failed: '" + path +
                            "'");
}

} // namespace obs
} // namespace tts
