/**
 * @file
 * Metrics registry: named counters, gauges, and histograms.
 *
 * Instruments live for the lifetime of the process - the registry
 * hands out stable references that call sites may cache, so the hot
 * path is a relaxed atomic add with no lock and no lookup.  The
 * naming scheme is dotted lower_snake segments, subsystem first:
 * `thermal.advance.steps`, `dcsim.queue.depth`, `guard.retry.count`,
 * `fault.injected.total` (taxonomy in DESIGN.md section 12).
 */

#ifndef TTS_OBS_METRICS_HH
#define TTS_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/stats.hh"

namespace tts {
namespace obs {

namespace detail {
/** Total metric mutations (see metricUpdates()). */
extern std::atomic<std::uint64_t> g_metric_updates;
inline void
noteMetricUpdate()
{
    g_metric_updates.fetch_add(1, std::memory_order_relaxed);
}
} // namespace detail

/** Monotonic counter; add() is lock-free and thread-safe. */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        detail::noteMetricUpdate();
        v_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const
    {
        return v_.load(std::memory_order_relaxed);
    }
    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/** Last-write-wins scalar; set() is lock-free and thread-safe. */
class Gauge
{
  public:
    void set(double v)
    {
        detail::noteMetricUpdate();
        v_.store(v, std::memory_order_relaxed);
    }
    double value() const
    {
        return v_.load(std::memory_order_relaxed);
    }
    void reset() { v_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> v_{0.0};
};

/** Mutex-guarded tts::Histogram for concurrent observation. */
class HistogramCell
{
  public:
    explicit HistogramCell(std::vector<double> upper_bounds)
        : h_(std::move(upper_bounds))
    {
    }

    void observe(double x)
    {
        detail::noteMetricUpdate();
        std::lock_guard<std::mutex> lock(mu_);
        h_.add(x);
    }

    /** @return A copy of the current histogram state. */
    Histogram snapshot() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return h_;
    }

    void reset()
    {
        std::lock_guard<std::mutex> lock(mu_);
        h_.reset();
    }

  private:
    mutable std::mutex mu_;
    Histogram h_;
};

/**
 * Name -> instrument map.  Lookup takes a mutex; the returned
 * references stay valid forever (instruments are never removed), so
 * call sites fetch once and cache.
 */
class Registry
{
  public:
    /** Get or create the counter `name`. */
    Counter &counter(const std::string &name);
    /** Get or create the gauge `name`. */
    Gauge &gauge(const std::string &name);
    /**
     * Get or create the histogram `name`.  The bounds are used only
     * on first creation; later calls return the existing cell.
     */
    HistogramCell &histogram(const std::string &name,
                             const std::vector<double> &upper_bounds);

    /**
     * Flatten every instrument to scalar keys, ready for kv_json.
     * Counters and gauges keep their name; a histogram `h` expands
     * to `h.count`, `h.sum`, `h.min`, `h.max`, and one
     * `h.le.<bound>` cumulative count per bucket (`h.le.inf` for
     * the overflow bucket).
     */
    std::map<std::string, double> snapshot() const;

    /** Zero every instrument, keeping the registered names. */
    void reset();

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<HistogramCell>> histograms_;
};

/** The process-wide registry. */
Registry &registry();

/**
 * Total metric mutation calls (Counter::add, Gauge::set,
 * HistogramCell::observe) since the last Registry::reset().  Every
 * mutation crosses exactly one enabled-check in the shipping
 * configuration, so this is the count bench/extension_obs_overhead
 * projects the disabled cost from - summing counter *values* would
 * overstate batched add(n) sites.
 */
std::uint64_t metricUpdates();

} // namespace obs
} // namespace tts

#endif // TTS_OBS_METRICS_HH
