#include "obs/obs.hh"

namespace tts {
namespace obs {

namespace detail {

std::atomic<bool> g_enabled{false};

// Implemented in trace.cc / metrics.cc / profile.cc.
void resetTrace();
void resetProfile();

} // namespace detail

void
setEnabled(bool on)
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

void
resetForTest()
{
    detail::resetTrace();
    detail::resetProfile();
    registry().reset();
}

} // namespace obs
} // namespace tts
