#include "obs/metrics.hh"

#include <cstdio>

namespace tts {
namespace obs {

namespace detail {
std::atomic<std::uint64_t> g_metric_updates{0};
} // namespace detail

std::uint64_t
metricUpdates()
{
    return detail::g_metric_updates.load(std::memory_order_relaxed);
}

namespace {

/** Bucket-bound suffix: integral bounds print bare ("64"), others
 *  with %g ("0.5"); the overflow bucket is "inf". */
std::string
boundKey(double bound)
{
    char buf[32];
    if (bound == static_cast<double>(static_cast<long long>(bound)))
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(bound));
    else
        std::snprintf(buf, sizeof(buf), "%g", bound);
    return buf;
}

} // namespace

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<Counter> &slot = counters_[name];
    if (!slot)
        slot.reset(new Counter);
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<Gauge> &slot = gauges_[name];
    if (!slot)
        slot.reset(new Gauge);
    return *slot;
}

HistogramCell &
Registry::histogram(const std::string &name,
                    const std::vector<double> &upper_bounds)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<HistogramCell> &slot = histograms_[name];
    if (!slot)
        slot.reset(new HistogramCell(upper_bounds));
    return *slot;
}

std::map<std::string, double>
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, double> out;
    for (const auto &kv : counters_)
        out[kv.first] =
            static_cast<double>(kv.second->value());
    for (const auto &kv : gauges_)
        out[kv.first] = kv.second->value();
    for (const auto &kv : histograms_) {
        Histogram h = kv.second->snapshot();
        const std::string &base = kv.first;
        out[base + ".count"] = static_cast<double>(h.count());
        out[base + ".sum"] = h.sum();
        out[base + ".min"] = h.min();
        out[base + ".max"] = h.max();
        // Cumulative counts, Prometheus-style "le" semantics.
        std::size_t cum = 0;
        for (std::size_t i = 0; i < h.bucketCount(); ++i) {
            cum += h.countInBucket(i);
            std::string key = base + ".le.";
            key += i + 1 == h.bucketCount()
                       ? std::string("inf")
                       : boundKey(h.upperBound(i));
            out[key] = static_cast<double>(cum);
        }
    }
    return out;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &kv : counters_)
        kv.second->reset();
    for (auto &kv : gauges_)
        kv.second->reset();
    for (auto &kv : histograms_)
        kv.second->reset();
    detail::g_metric_updates.store(0, std::memory_order_relaxed);
}

Registry &
registry()
{
    static Registry r;
    return r;
}

} // namespace obs
} // namespace tts
