/**
 * @file
 * Scoped wall-clock profiling with per-thread aggregation.
 *
 * obs::Scope times a phase ("thermal.advance", "resilience.cluster")
 * into a thread-local table; tables merge into a global map when a
 * thread exits or a snapshot is taken.  Worker threads recruited by
 * exec::ThreadPool are joined at region end, so their contributions
 * are visible to the launching thread immediately afterwards.
 *
 * Wall-clock numbers are inherently nondeterministic, so they stay
 * out of the trace stream entirely - profiles are reported
 * separately (stderr tables, bench output) and never affect the
 * golden values or trace byte-equality.
 */

#ifndef TTS_OBS_PROFILE_HH
#define TTS_OBS_PROFILE_HH

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "obs/enabled.hh"

namespace tts {
namespace obs {

/** Aggregated timings for one phase label. */
struct PhaseStat
{
    std::uint64_t calls = 0;
    std::uint64_t totalNs = 0;
    std::uint64_t maxNs = 0;
};

namespace detail {
/** Fold one finished scope into the calling thread's table. */
void recordScope(const char *phase, std::uint64_t elapsed_ns);
} // namespace detail

/**
 * RAII phase timer.  When collection is disabled at construction the
 * scope is inert - no clock call, no table touch - so instrumenting
 * a hot loop costs one branch per iteration.
 *
 * @param phase Static label; the pointer must outlive the profile
 *     (string literals only).
 */
class Scope
{
  public:
    explicit Scope(const char *phase)
        : phase_(enabled() ? phase : nullptr)
    {
        if (phase_)
            t0_ = std::chrono::steady_clock::now();
    }

    ~Scope()
    {
        if (phase_)
            detail::recordScope(
                phase_,
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0_)
                        .count()));
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    const char *phase_;
    std::chrono::steady_clock::time_point t0_;
};

/**
 * Merge the global table with the calling thread's and return the
 * result.  Does not clear anything.
 */
std::map<std::string, PhaseStat> profileSnapshot();

/** Print profileSnapshot() as an aligned table, busiest phase first. */
void writeProfileTable(std::ostream &out);

} // namespace obs
} // namespace tts

#endif // TTS_OBS_PROFILE_HH
