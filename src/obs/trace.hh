/**
 * @file
 * Structured event tracing with deterministic stream identity.
 *
 * Events are typed (EventKind), stamped with *simulation* time, and
 * keyed by a logical stream id (region, task, seq) rather than an OS
 * thread id:
 *
 *  - `region` is allocated from a global counter when an exec
 *    parallel region starts (0 = main-line code outside any region).
 *    Allocation happens on the launching thread, before any worker
 *    runs, so the sequence of region ids is the same at any pool
 *    width.
 *  - `task` is the loop index the event was emitted under.
 *  - `seq` is a per-(region, task) emission counter.
 *
 * A task's events land in a thread-local buffer and are flushed into
 * the global collected list under a mutex when the TaskScope ends,
 * so emission itself never contends.  Sorting the drained events by
 * (region, task, seq) therefore yields byte-identical traces at 1
 * and 8 threads for the same seed.
 */

#ifndef TTS_OBS_TRACE_HH
#define TTS_OBS_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace tts {
namespace obs {

/** Event taxonomy; names via eventKindName() (DESIGN.md section 12). */
enum class EventKind
{
    MeltOnset,         //!< PCM element began absorbing latent heat.
    MeltComplete,      //!< PCM element fully molten.
    MeltRefrozen,      //!< PCM element returned to fully solid.
    ThrottleOn,        //!< DVFS emergency throttle engaged.
    ThrottleOff,       //!< DVFS emergency throttle released.
    FaultInjected,     //!< FaultInjector / DCSim applied an event.
    GuardRetry,        //!< Audit trip; advance retried at smaller dt.
    GuardFallback,     //!< Retries exhausted; adaptive fallback ran.
    GuardTrip,         //!< Fallback also failed; NumericsError thrown.
    GuardCounters,     //!< End-of-arm guard bookkeeping summary.
    CheckpointSave,    //!< Resilience checkpoint written.
    CheckpointRestore, //!< Resilience checkpoint restored.
    JobDispatch,       //!< DCSim job accepted onto a server.
    JobCrashKill,      //!< DCSim jobs killed by a server crash.
    PhaseBegin,        //!< Study phase started.
    PhaseEnd,          //!< Study phase finished.
    OptStep,           //!< Wax-placement search iteration sample.
    PlantControl,      //!< Cooling-plant backend control decision.
};

/** @return Stable dotted name, e.g. "melt.onset". */
const char *eventKindName(EventKind kind);

/** One trace record; see the file comment for the stream identity. */
struct TraceEvent
{
    std::uint64_t region = 0; //!< Parallel-region id (0 = main).
    std::uint64_t task = 0;   //!< Task index within the region.
    std::uint64_t seq = 0;    //!< Emission counter within the task.
    double timeS = 0.0;       //!< Simulation time, seconds.
    EventKind kind = EventKind::PhaseBegin;
    std::string name;         //!< Subject, e.g. "with_wax/srv/wax".
    double value = 0.0;       //!< Kind-specific payload.
    std::int64_t target = -1; //!< Server / attempt index, -1 = none.
};

/**
 * Record an event on the calling thread's current stream.  No-op
 * when collection is disabled; prefer the TTS_OBS_EVENT macro so the
 * argument expressions are not even evaluated in that case.
 */
void emitEvent(EventKind kind, double time_s, const std::string &name,
               double value = 0.0, std::int64_t target = -1);

/**
 * Allocate a fresh region id.  Call on the thread that launches a
 * parallel region, before any task runs.
 */
std::uint64_t beginRegion();

/** @return True if a TaskScope is active on this thread. */
bool inTaskScope();

/**
 * RAII stream binding for one task of a parallel region.  Installs a
 * thread-local (region, task) context with seq starting at 0; the
 * destructor flushes the task's events into the global list and
 * restores the previous context.
 */
class TaskScope
{
  public:
    TaskScope(std::uint64_t region, std::uint64_t task);
    ~TaskScope();

    TaskScope(const TaskScope &) = delete;
    TaskScope &operator=(const TaskScope &) = delete;

    struct Ctx;

  private:
    Ctx *ctx_;
    Ctx *prev_;
};

/**
 * Flush the calling thread's main-line buffer and move every
 * collected event out, sorted by (region, task, seq).  Worker-thread
 * buffers flush when their TaskScope (or thread) ends; exec joins
 * its recruits at region end, so after any forIndex returns their
 * events are already in the collected list.
 */
std::vector<TraceEvent> drainEvents();

/** On-disk encodings for writeTraceFile(). */
enum class TraceFormat
{
    Jsonl,  //!< One JSON object per line, fixed key order.
    Chrome, //!< Chrome trace_event JSON (chrome://tracing, Perfetto).
};

/** Serialize events (assumed sorted) as JSONL. */
void writeJsonl(std::ostream &out,
                const std::vector<TraceEvent> &events);

/** Serialize events as a Chrome trace_event document. */
void writeChromeTrace(std::ostream &out,
                      const std::vector<TraceEvent> &events);

/** Drain and write to `path`; throws FatalError on I/O failure. */
void writeTraceFile(const std::string &path, TraceFormat format);

} // namespace obs
} // namespace tts

#endif // TTS_OBS_TRACE_HH
