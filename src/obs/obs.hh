/**
 * @file
 * tts::obs - runtime-switched observability for the simulator.
 *
 * Umbrella header: master switch (enabled.hh), metrics registry
 * (metrics.hh), structured trace sink (trace.hh), and scoped
 * profiling (profile.hh), plus the emission macros instrumented
 * call sites use.
 *
 * Design contract: with collection disabled (the default) every
 * instrumented path costs one relaxed atomic load per macro and is
 * bit-identical to the uninstrumented simulator - no argument
 * evaluation, no allocation, no clock reads.  Enabling collection
 * never perturbs simulation arithmetic either; it only records.
 */

#ifndef TTS_OBS_OBS_HH
#define TTS_OBS_OBS_HH

#include "obs/enabled.hh"
#include "obs/metrics.hh"
#include "obs/profile.hh"
#include "obs/trace.hh"

namespace tts {
namespace obs {

/**
 * Clear every sink: trace buffers and region allocator, registry
 * values, and profile tables.  For tests and benches that run the
 * same simulation repeatedly in one process and compare output.
 */
void resetForTest();

} // namespace obs
} // namespace tts

/**
 * Emit a trace event when collection is enabled.  The arguments are
 * not evaluated on the disabled path.
 */
#define TTS_OBS_EVENT(kind, time_s, name, value, target)             \
    do {                                                             \
        if (::tts::obs::enabled())                                   \
            ::tts::obs::emitEvent((kind), (time_s), (name), (value), \
                                  (target));                         \
    } while (0)

/**
 * Bump a cached metrics instrument when collection is enabled.
 * `cell` is a Counter/Gauge/HistogramCell lvalue (fetch it from the
 * registry once - references stay valid forever).
 */
#define TTS_OBS_COUNT(cell, n)                                       \
    do {                                                             \
        if (::tts::obs::enabled())                                   \
            (cell).add(n);                                           \
    } while (0)

#define TTS_OBS_GAUGE(cell, v)                                       \
    do {                                                             \
        if (::tts::obs::enabled())                                   \
            (cell).set(v);                                           \
    } while (0)

#define TTS_OBS_OBSERVE(cell, x)                                     \
    do {                                                             \
        if (::tts::obs::enabled())                                   \
            (cell).observe(x);                                       \
    } while (0)

#endif // TTS_OBS_OBS_HH
