/**
 * @file
 * Observability master switch.
 *
 * Split out of obs.hh so the individual sinks (metrics, trace,
 * profile) can inline the check without pulling in each other.  The
 * disabled fast path is a single relaxed atomic load - cheap enough
 * to leave on every hot path in the simulator.
 */

#ifndef TTS_OBS_ENABLED_HH
#define TTS_OBS_ENABLED_HH

#include <atomic>

namespace tts {
namespace obs {

namespace detail {
extern std::atomic<bool> g_enabled;
} // namespace detail

/** @return True when observability collection is on (default off). */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/**
 * Turn collection on or off process-wide.  Toggling does not clear
 * any sink; use resetForTest() for a clean slate.
 */
void setEnabled(bool on);

} // namespace obs
} // namespace tts

#endif // TTS_OBS_ENABLED_HH
