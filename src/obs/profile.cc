#include "obs/profile.hh"

#include <algorithm>
#include <mutex>
#include <ostream>
#include <vector>

#include "util/table.hh"

namespace tts {
namespace obs {

namespace {

std::mutex g_mu;
std::map<std::string, PhaseStat> g_merged; // Guarded by g_mu.

void
fold(PhaseStat &into, const PhaseStat &from)
{
    into.calls += from.calls;
    into.totalNs += from.totalNs;
    into.maxNs = std::max(into.maxNs, from.maxNs);
}

void
mergeTable(const std::map<std::string, PhaseStat> &table)
{
    if (table.empty())
        return;
    std::lock_guard<std::mutex> lock(g_mu);
    for (const auto &kv : table)
        fold(g_merged[kv.first], kv.second);
}

/**
 * Per-thread phase table; merges into the global map when the
 * thread exits.  exec joins its recruits at region end, so worker
 * contributions are globally visible right after any forIndex.
 */
struct ThreadTable
{
    std::map<std::string, PhaseStat> stats;
    ~ThreadTable()
    {
        mergeTable(stats);
    }
};

ThreadTable &
threadTable()
{
    thread_local ThreadTable t;
    return t;
}

} // namespace

namespace detail {

void
recordScope(const char *phase, std::uint64_t elapsed_ns)
{
    PhaseStat &s = threadTable().stats[phase];
    ++s.calls;
    s.totalNs += elapsed_ns;
    s.maxNs = std::max(s.maxNs, elapsed_ns);
}

void
resetProfile()
{
    {
        std::lock_guard<std::mutex> lock(g_mu);
        g_merged.clear();
    }
    threadTable().stats.clear();
}

} // namespace detail

std::map<std::string, PhaseStat>
profileSnapshot()
{
    std::map<std::string, PhaseStat> out;
    {
        std::lock_guard<std::mutex> lock(g_mu);
        out = g_merged;
    }
    for (const auto &kv : threadTable().stats)
        fold(out[kv.first], kv.second);
    return out;
}

void
writeProfileTable(std::ostream &out)
{
    std::map<std::string, PhaseStat> snap = profileSnapshot();
    std::vector<std::pair<std::string, PhaseStat>> rows(
        snap.begin(), snap.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  if (a.second.totalNs != b.second.totalNs)
                      return a.second.totalNs > b.second.totalNs;
                  return a.first < b.first;
              });

    AsciiTable t({"phase", "calls", "total (ms)", "mean (us)",
                  "max (us)"});
    for (const auto &row : rows) {
        const PhaseStat &s = row.second;
        double total_ms = static_cast<double>(s.totalNs) / 1e6;
        double mean_us =
            s.calls ? static_cast<double>(s.totalNs) /
                          static_cast<double>(s.calls) / 1e3
                    : 0.0;
        double max_us = static_cast<double>(s.maxNs) / 1e3;
        t.addRow({row.first, std::to_string(s.calls),
                  formatFixed(total_ms, 2), formatFixed(mean_us, 2),
                  formatFixed(max_us, 2)});
    }
    t.print(out);
}

} // namespace obs
} // namespace tts
