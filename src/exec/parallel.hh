/**
 * @file
 * Deterministic parallel study execution.
 *
 * Every top-level study in this reproduction (the Section 5.1
 * cooling sweep, the melting-temperature optimizer, the sensitivity
 * harness, the multi-site benches) fans out independent ClusterModel
 * transients.  This module runs such fan-outs across threads while
 * keeping every reported number identical to serial execution:
 *
 *  - Results are stored by input index, so output ordering never
 *    depends on scheduling.
 *  - Tasks are dispatched from a single atomic counter (no work
 *    stealing, no per-thread queues); each index runs exactly once.
 *  - Tasks must depend only on their own index/item - any randomness
 *    comes from a per-task stream (Rng::forStream), never from a
 *    shared generator - so `threads == 1` and `threads == N` produce
 *    byte-for-byte identical results.
 *  - With one thread (or inside an already-parallel region) the
 *    region degenerates to the plain serial loop on the calling
 *    thread.
 *  - The first exception (lowest task index) is rethrown on the
 *    caller once the region drains.
 *
 * The worker threads are recruited per region: the tasks here are
 * coarse (a cluster transient is ~0.25 s), so thread start-up is
 * noise, and the design stays trivially exception-safe under TSan.
 *
 * Thread count resolution order: explicit ThreadPool argument >
 * `TTS_THREADS` environment variable > hardware concurrency.
 */

#ifndef TTS_EXEC_PARALLEL_HH
#define TTS_EXEC_PARALLEL_HH

#include <cstddef>
#include <functional>
#include <vector>

namespace tts {
namespace exec {

/** @return Hardware thread count (>= 1). */
std::size_t hardwareThreads();

/**
 * @return The thread count a default-constructed pool uses: the
 * `TTS_THREADS` environment variable if set to a positive integer,
 * else hardwareThreads().
 */
std::size_t defaultThreadCount();

/**
 * A deterministic fork-join executor of fixed width.
 *
 * forIndex(n, fn) runs fn(0) ... fn(n-1), each exactly once, across
 * up to threadCount() threads (the caller participates).  See the
 * file comment for the determinism contract.
 */
class ThreadPool
{
  public:
    /** @param threads Region width (>= 1); 1 means strictly serial. */
    explicit ThreadPool(std::size_t threads = defaultThreadCount());

    /** @return Region width. */
    std::size_t threadCount() const { return threads_; }

    /**
     * Run fn(i) for every i in [0, n).
     *
     * Serial fallback (plain in-order loop on the calling thread)
     * when threadCount() == 1, n <= 1, or the caller is itself a
     * task of an outer region (nested regions never oversubscribe).
     * Otherwise indices are handed out through an atomic counter and
     * results must be written to index-keyed slots by fn.  If any
     * task throws, the exception thrown by the lowest index is
     * rethrown here after all started tasks finish.
     */
    void forIndex(std::size_t n,
                  const std::function<void(std::size_t)> &fn) const;

    /**
     * Map items through fn, preserving input order.
     *
     * The result type must be default-constructible and
     * move-assignable (every study result type here is).
     */
    template <typename T, typename Fn>
    auto map(const std::vector<T> &items, Fn &&fn) const
        -> std::vector<decltype(fn(items[0]))>
    {
        std::vector<decltype(fn(items[0]))> out(items.size());
        forIndex(items.size(),
                 [&](std::size_t i) { out[i] = fn(items[i]); });
        return out;
    }

  private:
    std::size_t threads_;
};

/**
 * @return The process-wide pool used by the free functions below;
 * created on first use with defaultThreadCount() threads.
 */
const ThreadPool &globalPool();

/**
 * Resize the global pool (testing / tool hook, e.g. for a serial-vs-
 * parallel determinism check).  Not safe while a region is running.
 */
void setGlobalThreads(std::size_t threads);

/** forIndex on the global pool. */
void parallel_for_index(std::size_t n,
                        const std::function<void(std::size_t)> &fn);

/** map on the global pool. */
template <typename T, typename Fn>
auto
parallel_map(const std::vector<T> &items, Fn &&fn)
    -> std::vector<decltype(fn(items[0]))>
{
    return globalPool().map(items, std::forward<Fn>(fn));
}

} // namespace exec
} // namespace tts

#endif // TTS_EXEC_PARALLEL_HH
