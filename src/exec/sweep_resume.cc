#include "exec/sweep_resume.hh"

#include <algorithm>
#include <fstream>
#include <mutex>

#include "exec/parallel.hh"
#include "guard/checkpoint.hh"
#include "util/error.hh"

namespace tts {
namespace exec {

namespace {

bool
fileExists(const std::string &path)
{
    std::ifstream f(path);
    return f.good();
}

/** Serialize the journal: task count + every completed row. */
std::string
journalDocument(std::size_t n, const SweepResult &state)
{
    guard::CheckpointWriter w;
    w.section("sweep");
    w.putU64("tasks", n);
    std::uint64_t done_count = 0;
    for (bool d : state.done)
        done_count += d ? 1 : 0;
    w.putU64("completed", done_count);
    for (std::size_t i = 0; i < n; ++i) {
        if (!state.done[i])
            continue;
        w.section("task." + std::to_string(i));
        w.putU64("nkeys", state.rows[i].size());
        for (const auto &[key, value] : state.rows[i]) {
            w.putToken("key", key);
            w.put("val", value);
        }
    }
    return w.finish();
}

/** Load a journal written by journalDocument(). */
void
loadJournal(const std::string &path, std::size_t n, SweepResult &state)
{
    guard::CheckpointReader r(guard::readCheckpointFile(path), path);
    r.expectSection("sweep");
    std::uint64_t tasks = r.expectU64("tasks");
    require(tasks == n,
            path + ": journal describes " + std::to_string(tasks) +
                " tasks, sweep has " + std::to_string(n));
    r.expectU64("completed");
    for (std::size_t i = 0; i < n; ++i) {
        if (!r.peekSection("task." + std::to_string(i)))
            continue;
        r.expectSection("task." + std::to_string(i));
        std::uint64_t nkeys = r.expectU64("nkeys");
        std::map<std::string, double> row;
        for (std::uint64_t k = 0; k < nkeys; ++k) {
            std::string key = r.expectToken("key");
            row[key] = r.expect("val");
        }
        state.rows[i] = std::move(row);
        state.done[i] = true;
    }
    r.expectEnd();
}

} // namespace

SweepResult
checkpointedMap(
    std::size_t n,
    const std::function<std::map<std::string, double>(std::size_t)> &task,
    const SweepCheckpointOptions &options)
{
    SweepResult state;
    state.rows.resize(n);
    state.done.assign(n, false);

    const bool journaled = !options.path.empty();
    if (journaled && fileExists(options.path))
        loadJournal(options.path, n, state);

    // Pending tasks in ascending index order, so a capped (killed)
    // run completes a deterministic prefix of the remaining work at
    // any pool width.
    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < n; ++i) {
        if (!state.done[i])
            pending.push_back(i);
    }
    if (options.maxTasks > 0 && pending.size() > options.maxTasks)
        pending.resize(options.maxTasks);

    std::mutex store_mutex;
    parallel_for_index(pending.size(), [&](std::size_t j) {
        std::size_t i = pending[j];
        std::map<std::string, double> row = task(i);
        std::lock_guard<std::mutex> lock(store_mutex);
        state.rows[i] = std::move(row);
        state.done[i] = true;
        if (journaled) {
            guard::writeCheckpointFile(options.path,
                                       journalDocument(n, state));
        }
    });

    state.complete =
        std::all_of(state.done.begin(), state.done.end(),
                    [](bool d) { return d; });
    return state;
}

} // namespace exec
} // namespace tts
