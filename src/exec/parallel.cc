#include "exec/parallel.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/obs.hh"
#include "util/error.hh"

namespace tts {
namespace exec {

namespace {

/** True while the current thread is executing a region task. */
thread_local bool tl_in_region = false;

} // namespace

std::size_t
hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<std::size_t>(n);
}

std::size_t
defaultThreadCount()
{
    const char *env = std::getenv("TTS_THREADS");
    if (env && *env) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end && *end == '\0' && v >= 1)
            return static_cast<std::size_t>(v);
    }
    return hardwareThreads();
}

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(threads)
{
    require(threads >= 1, "ThreadPool: need at least one thread");
}

void
ThreadPool::forIndex(std::size_t n,
                     const std::function<void(std::size_t)> &fn) const
{
    if (n == 0)
        return;

    // Trace stream identity: allocate the region id here, on the
    // launching thread, so the allocation order is the same at any
    // pool width.  Nested loops (already inside a TaskScope) stay on
    // the enclosing task's stream - matching the parallel path,
    // where nested calls fall back to serial inside a worker task.
    bool traced = obs::enabled() && !obs::inTaskScope();
    std::uint64_t region = 0;
    if (traced) {
        static obs::Counter &region_count =
            obs::registry().counter("exec.region.count");
        static obs::Counter &task_count =
            obs::registry().counter("exec.task.count");
        region = obs::beginRegion();
        region_count.add(1);
        task_count.add(n);
    }

    if (threads_ == 1 || n == 1 || tl_in_region) {
        // Byte-for-byte the serial loop: in order, on this thread,
        // first exception aborts the remainder immediately.
        for (std::size_t i = 0; i < n; ++i) {
            if (traced) {
                obs::TaskScope scope(region, i);
                fn(i);
            } else {
                fn(i);
            }
        }
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex err_mu;
    std::size_t err_index = n;
    std::exception_ptr err;

    auto work = [&]() {
        tl_in_region = true;
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= n)
                break;
            try {
                if (traced) {
                    obs::TaskScope scope(region, i);
                    fn(i);
                } else {
                    fn(i);
                }
            } catch (...) {
                std::lock_guard<std::mutex> lk(err_mu);
                if (i < err_index) {
                    err_index = i;
                    err = std::current_exception();
                }
            }
        }
        tl_in_region = false;
    };

    std::size_t helpers = std::min(threads_, n) - 1;
    std::vector<std::thread> crew;
    crew.reserve(helpers);
    for (std::size_t k = 0; k < helpers; ++k)
        crew.emplace_back(work);
    work();  // The caller is the region's first thread.
    for (auto &t : crew)
        t.join();

    if (err)
        std::rethrow_exception(err);
}

namespace {

ThreadPool &
globalPoolStorage()
{
    static ThreadPool pool{defaultThreadCount()};
    return pool;
}

} // namespace

const ThreadPool &
globalPool()
{
    return globalPoolStorage();
}

void
setGlobalThreads(std::size_t threads)
{
    // A pool carries no threads between regions, so swapping the
    // width is a plain assignment; callers must not race with a
    // running region.
    globalPoolStorage() = ThreadPool(threads);
}

void
parallel_for_index(std::size_t n,
                   const std::function<void(std::size_t)> &fn)
{
    globalPool().forIndex(n, fn);
}

} // namespace exec
} // namespace tts
