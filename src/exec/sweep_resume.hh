/**
 * @file
 * Checkpointed parallel sweeps.
 *
 * A long sweep (hundreds of cluster transients) that dies at task
 * 180/200 should not restart from zero.  checkpointedMap() wraps the
 * deterministic parallel engine with a per-task completion journal:
 * each finished task's result row is flushed to a guard checkpoint
 * file, and a rerun against the same file skips every task already
 * journaled, producing results identical to an uninterrupted run.
 *
 * Determinism: tasks are index-keyed (the tts::exec contract), so a
 * task's result depends only on its index; which tasks ran in which
 * interrupted slice is immaterial.  The integration tests pin this
 * by killing a sweep mid-way (via maxTasks) and comparing the resumed
 * output at widths 1 and 8 to an uninterrupted run.
 *
 * Result rows are flat string->double maps - the same shape the
 * golden harness uses - which keeps the journal format trivial and
 * CRC-protected.
 */

#ifndef TTS_EXEC_SWEEP_RESUME_HH
#define TTS_EXEC_SWEEP_RESUME_HH

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace tts {
namespace exec {

/** Options for a checkpointed sweep. */
struct SweepCheckpointOptions
{
    /**
     * Journal path.  Empty disables journaling (plain parallel_map
     * behaviour).  An existing journal must describe the same task
     * count or the sweep refuses to resume (FatalError).
     */
    std::string path;
    /**
     * Stop after this many tasks have newly completed in this call
     * (0 = no cap).  Test hook simulating a killed run: pending
     * tasks are scheduled in ascending index order so a capped run
     * completes a deterministic prefix of the remaining work.
     */
    std::size_t maxTasks = 0;
};

/** Result of a checkpointed sweep call. */
struct SweepResult
{
    /** Per-task result rows; empty rows for tasks not yet run. */
    std::vector<std::map<std::string, double>> rows;
    /** Per-task completion flags. */
    std::vector<bool> done;
    /** True when every task has a journaled result. */
    bool complete = false;
};

/**
 * Run task(i) for every i in [0, n) not already journaled at
 * options.path, in parallel on the global pool, journaling each
 * completion; previously journaled rows are returned without
 * re-running their tasks.
 *
 * @param n       Total task count.
 * @param task    Index-keyed task; must obey the tts::exec
 *                determinism contract.
 * @param options Journal path and test caps.
 * @throws FatalError if an existing journal is corrupt or describes
 *         a different task count.
 */
SweepResult checkpointedMap(
    std::size_t n,
    const std::function<std::map<std::string, double>(std::size_t)> &task,
    const SweepCheckpointOptions &options);

} // namespace exec
} // namespace tts

#endif // TTS_EXEC_SWEEP_RESUME_HH
