#include "core/capacity_planner.hh"

#include "util/error.hh"
#include "util/units.hh"

namespace tts {
namespace core {

CapacityPlan
planCapacity(const server::ServerSpec &spec, double peak_reduction,
             const datacenter::DatacenterConfig &dc_config)
{
    require(peak_reduction >= 0.0 && peak_reduction < 1.0,
            "planCapacity: reduction must be in [0, 1)");

    datacenter::Datacenter dc(spec, dc_config);
    tco::TcoModel tco_model(tco::parametersFor(spec));
    double critical_kw = units::toKW(dc_config.criticalPowerW);

    CapacityPlan plan;
    plan.platform = spec.name;
    plan.criticalPowerW = dc_config.criticalPowerW;
    plan.clusters = dc.clusterCount();
    plan.servers = dc.serverCount();
    plan.peakReduction = peak_reduction;
    plan.smallerPlantSavingsPerYear =
        tco_model.annualCoolingInfraSavings(critical_kw,
                                            peak_reduction);
    plan.extraServers =
        dc.extraServersForCoolingReduction(peak_reduction);
    plan.extraServerFraction =
        static_cast<double>(plan.extraServers) /
        static_cast<double>(plan.servers);
    plan.retrofitSavingsPerYear =
        tco_model.annualRetrofitSavings(critical_kw);
    return plan;
}

} // namespace core
} // namespace tts
