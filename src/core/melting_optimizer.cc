#include "core/melting_optimizer.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace tts {
namespace core {

namespace {

/**
 * Utilization at the instant the wax first passes 2 % melted, read
 * off the recorded cluster run; negative if it never melts.
 */
double
meltOnsetUtil(const datacenter::ClusterRunResult &run,
              const workload::WorkloadTrace &trace)
{
    double t = run.waxMeltFraction.firstCrossingAbove(0.02);
    if (t < 0.0)
        return -1.0;
    return trace.totalAt(t);
}

} // namespace

MeltOptimum
optimizeMeltingTemp(const server::ServerSpec &spec,
                    const workload::WorkloadTrace &trace,
                    const pcm::Material &material,
                    const MeltOptimizerOptions &options)
{
    require(options.stepC > 0.0,
            "optimizeMeltingTemp: step must be > 0");
    double lo = std::max(options.minC, material.meltingTempMinC);
    double hi = std::min(options.maxC, material.meltingTempMaxC);
    require(lo <= hi, "optimizeMeltingTemp: material has no melting "
            "temperature in the requested range");

    // One shared baseline run (wax-independent).
    datacenter::Cluster base_cluster(spec, server::WaxConfig::none(),
                                     options.study.serverCount);
    auto baseline = base_cluster.run(trace, options.study.run);
    double peak_base = baseline.peakCoolingLoad();
    invariant(peak_base > 0.0,
              "optimizeMeltingTemp: degenerate baseline");

    MeltOptimum out;
    double best_peak = peak_base;
    for (double melt = lo; melt <= hi + 1e-9;
         melt += options.stepC) {
        server::WaxConfig wax = server::WaxConfig::withMeltTemp(melt);
        wax.material = material;
        datacenter::Cluster cluster(spec, wax,
                                    options.study.serverCount);
        auto run = cluster.run(trace, options.study.run);
        MeltSweepPoint pt;
        pt.meltTempC = melt;
        pt.peakCoolingLoadW = run.peakCoolingLoad();
        pt.peakReduction =
            (peak_base - pt.peakCoolingLoadW) / peak_base;
        pt.meltOnsetUtilization = meltOnsetUtil(run, trace);
        out.sweep.push_back(pt);
        if (pt.peakCoolingLoadW < best_peak) {
            best_peak = pt.peakCoolingLoadW;
            out.meltTempC = melt;
            out.peakReduction = pt.peakReduction;
        }
    }
    require(out.meltTempC > 0.0,
            "optimizeMeltingTemp: no candidate reduced the peak "
            "cooling load");
    return out;
}

} // namespace core
} // namespace tts
