#include "core/melting_optimizer.hh"

#include <algorithm>
#include <cmath>

#include "exec/parallel.hh"
#include "util/error.hh"

namespace tts {
namespace core {

namespace {

/**
 * Utilization at the instant the wax first passes 2 % melted, read
 * off the recorded cluster run; negative if it never melts.
 */
double
meltOnsetUtil(const datacenter::ClusterRunResult &run,
              const workload::WorkloadTrace &trace)
{
    double t = run.waxMeltFraction.firstCrossingAbove(0.02);
    if (t < 0.0)
        return -1.0;
    return trace.totalAt(t);
}

} // namespace

MeltOptimum
optimizeMeltingTemp(const server::ServerSpec &spec,
                    const workload::WorkloadTrace &trace,
                    const pcm::Material &material,
                    const MeltOptimizerOptions &options)
{
    require(options.stepC > 0.0,
            "optimizeMeltingTemp: step must be > 0");
    double lo = std::max(options.minC, material.meltingTempMinC);
    double hi = std::min(options.maxC, material.meltingTempMaxC);
    require(lo <= hi, "optimizeMeltingTemp: material has no melting "
            "temperature in the requested range");

    // One shared baseline run (wax-independent).
    datacenter::Cluster base_cluster(spec, server::WaxConfig::none(),
                                     options.study.run.serverCount);
    auto baseline = base_cluster.run(trace, options.study.cluster);
    double peak_base = baseline.peakCoolingLoad();
    invariant(peak_base > 0.0,
              "optimizeMeltingTemp: degenerate baseline");

    std::vector<double> candidates;
    for (double melt = lo; melt <= hi + 1e-9;
         melt += options.stepC)
        candidates.push_back(melt);

    // Every candidate's cluster transient is independent; fan them
    // out and keep the sweep in candidate order so the argmin scan
    // below matches the serial code exactly (ties break toward the
    // lower melting temperature).
    MeltOptimum out;
    out.sweep = exec::parallel_map(candidates, [&](double melt) {
        server::WaxConfig wax = server::WaxConfig::withMeltTemp(melt);
        wax.material = material;
        datacenter::Cluster cluster(spec, wax,
                                    options.study.run.serverCount);
        auto run = cluster.run(trace, options.study.cluster);
        MeltSweepPoint pt;
        pt.meltTempC = melt;
        pt.peakCoolingLoadW = run.peakCoolingLoad();
        pt.peakReduction =
            (peak_base - pt.peakCoolingLoadW) / peak_base;
        pt.meltOnsetUtilization = meltOnsetUtil(run, trace);
        return pt;
    });

    double best_peak = peak_base;
    for (const auto &pt : out.sweep) {
        if (pt.peakCoolingLoadW < best_peak) {
            best_peak = pt.peakCoolingLoadW;
            out.meltTempC = pt.meltTempC;
            out.peakReduction = pt.peakReduction;
        }
    }
    require(out.meltTempC > 0.0,
            "optimizeMeltingTemp: no candidate reduced the peak "
            "cooling load");
    return out;
}

} // namespace core
} // namespace tts
