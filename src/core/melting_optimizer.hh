/**
 * @file
 * Melting-temperature optimizer.
 *
 * The paper: "The range of melting temperature available in
 * commercial grade paraffin allows us to select one with an optimal
 * melting threshold to reduce the peak cooling load of each cluster,
 * and the best melting temperature is determined [by] the shape and
 * length of the load trace: for the Google trace, we find that the
 * best wax typically begins to melt when a server exceeds 75% load."
 *
 * This module sweeps candidate melting temperatures over the
 * material's available range and returns the one minimizing the peak
 * cluster cooling load.
 */

#ifndef TTS_CORE_MELTING_OPTIMIZER_HH
#define TTS_CORE_MELTING_OPTIMIZER_HH

#include <vector>

#include "core/cooling_study.hh"
#include "pcm/material.hh"
#include "server/server_spec.hh"
#include "workload/trace.hh"

namespace tts {
namespace core {

/** One point of the melting-temperature sweep. */
struct MeltSweepPoint
{
    /** Candidate melting temperature (C). */
    double meltTempC;
    /** Peak cluster cooling load with wax at this temperature (W). */
    double peakCoolingLoadW;
    /** Fractional reduction vs. the no-wax baseline. */
    double peakReduction;
    /**
     * Server utilization at which this wax starts melting (melt
     * fraction first exceeds 2 %), from the recorded run; negative
     * if it never melts.
     */
    double meltOnsetUtilization;
};

/** Optimizer output. */
struct MeltOptimum
{
    /** Best melting temperature (C). */
    double meltTempC = 0.0;
    /** Peak reduction at the optimum. */
    double peakReduction = 0.0;
    /** The full sweep (for the ablation bench). */
    std::vector<MeltSweepPoint> sweep;
};

/** Optimizer options. */
struct MeltOptimizerOptions
{
    /** Sweep granularity (C). */
    double stepC = 0.5;
    /** Restrict to the material's available range intersected with
     *  [minC, maxC]. */
    double minC = 30.0;
    double maxC = 60.0;
    /** Study configuration applied to every candidate. */
    CoolingConfig study;
};

/**
 * Sweep melting temperatures and pick the peak-minimizing one.
 *
 * @param spec     Platform.
 * @param trace    Load trace.
 * @param material PCM; candidate temperatures respect its range.
 * @param options  Sweep options.
 */
MeltOptimum optimizeMeltingTemp(
    const server::ServerSpec &spec,
    const workload::WorkloadTrace &trace,
    const pcm::Material &material = pcm::commercialParaffin(),
    const MeltOptimizerOptions &options = MeltOptimizerOptions{});

} // namespace core
} // namespace tts

#endif // TTS_CORE_MELTING_OPTIMIZER_HH
