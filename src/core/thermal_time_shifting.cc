#include "core/thermal_time_shifting.hh"

#include "exec/parallel.hh"
#include "tco/model.hh"
#include "util/units.hh"

namespace tts {
namespace core {

const char *
version()
{
    return "1.0.0";
}

std::vector<server::ServerSpec>
paperPlatforms()
{
    return {server::rd330Spec(), server::x4470Spec(),
            server::openComputeSpec(server::OcpLayout::FutureSsd)};
}

PlatformStudy
runPlatformStudy(const server::ServerSpec &spec,
                 const workload::WorkloadTrace &trace,
                 const PlatformConfig &options)
{
    PlatformStudy out;
    out.spec = spec;

    if (options.optimizeMelt) {
        MeltOptimizerOptions mo;
        mo.stepC = options.meltStepC;
        mo.study = options.cooling;
        MeltOptimum opt = optimizeMeltingTemp(
            spec, trace, pcm::commercialParaffin(), mo);
        out.meltTempC = opt.meltTempC;
    } else {
        out.meltTempC = spec.defaultMeltTempC;
    }

    CoolingConfig cs = options.cooling;
    cs.run.meltTempC = out.meltTempC;
    out.cooling = runCoolingStudy(spec, trace, cs);
    out.plan = planCapacity(spec, out.cooling.peakReduction());

    // The constrained study picks its own melting point: a throttled
    // cluster runs cooler than the fully-subscribed one, so the
    // Section 5.1 optimum would never melt there.
    ThroughputConfig ts;
    ts.run.serverCount = cs.run.serverCount;
    ts.controlIntervalS = cs.cluster.controlIntervalS;
    ts.thermalStepS = cs.cluster.thermalStepS;
    ts.warmupDays = cs.cluster.warmupDays;
    ts.coolingCapacityFraction = options.capacityFraction > 0.0
        ? options.capacityFraction
        : calibratedCapacityFraction(spec);
    out.throughput = runThroughputStudy(spec, trace, ts);

    tco::TcoModel tco_model(tco::parametersFor(spec));
    out.tcoEfficiencyGain = tco_model.tcoEfficiencyGain(
        units::toKW(10.0e6),
        datacenter::Datacenter(spec).serverCount(),
        out.throughput.throughputGain());
    return out;
}

std::vector<PlatformStudy>
runPlatformStudies(const std::vector<server::ServerSpec> &specs,
                   const workload::WorkloadTrace &trace,
                   const PlatformConfig &options)
{
    return exec::parallel_map(
        specs, [&](const server::ServerSpec &spec) {
            return runPlatformStudy(spec, trace, options);
        });
}

} // namespace core
} // namespace tts
