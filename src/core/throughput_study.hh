/**
 * @file
 * Section 5.2 experiment: PCM to increase throughput in a thermally
 * constrained (oversubscribed) datacenter.
 *
 * The cooling plant is deliberately smaller than the cluster's peak
 * heat output.  A governor holds each server at the highest
 * (frequency, utilization) point whose predicted cooling load fits
 * the per-server share of the plant capacity: frequency is reduced
 * first (down to the 1.6 GHz floor the paper uses), then utilization
 * is shed (the paper's "job relocation").  With wax, melting PCM
 * absorbs part of the heat, letting servers hold higher clocks until
 * the wax saturates - which is exactly the paper's Figure 12.
 */

#ifndef TTS_CORE_THROUGHPUT_STUDY_HH
#define TTS_CORE_THROUGHPUT_STUDY_HH

#include "core/run_config.hh"
#include "server/server_model.hh"
#include "server/server_spec.hh"
#include "util/time_series.hh"
#include "workload/trace.hh"

namespace tts {
namespace core {

/** Thermally-constrained study configuration. */
struct ThroughputConfig
{
    /** Shared run knobs (serverCount, meltTempC, ...). */
    RunConfig run;
    /**
     * Cooling plant capacity as a fraction of the cluster's peak
     * wall power at 100 % utilization and nominal frequency.  This
     * is the oversubscription knob; the paper implies a different
     * value per platform (its Figure 12 gains differ).
     */
    double coolingCapacityFraction = 0.85;
    /** Governor control interval (s). */
    double controlIntervalS = 300.0;
    /** Inner thermal step (s). */
    double thermalStepS = 5.0;
    /** Warm-up days before recording. */
    int warmupDays = 1;
};

/** Results (throughputs normalized to the no-wax peak == 1.0). */
struct ThroughputStudyResult
{
    /** Demanded throughput with no thermal limit. */
    TimeSeries ideal;
    /** Delivered throughput without wax. */
    TimeSeries noWax;
    /** Delivered throughput with wax. */
    TimeSeries withWax;
    /** Cluster cooling load without wax (W). */
    TimeSeries noWaxCoolingW;
    /** Cluster cooling load with wax (W). */
    TimeSeries withWaxCoolingW;
    /** Frequency chosen by the governor without wax (GHz). */
    TimeSeries noWaxFreq;
    /** Frequency chosen by the governor with wax (GHz). */
    TimeSeries withWaxFreq;
    /** Wax melt fraction. */
    TimeSeries waxMelt;

    /** Plant capacity (W). */
    double capacityW = 0.0;
    /** Melting temperature used for the constrained study (C). */
    double meltTempC = 0.0;
    /** Absolute throughput equal to normalized 1.0. */
    double normalization = 0.0;
    /** Peak normalized throughput, ideal. */
    double peakIdeal = 0.0;
    /** Peak normalized throughput, no wax (== 1 by construction). */
    double peakNoWax = 0.0;
    /** Peak normalized throughput, with wax. */
    double peakWithWax = 0.0;
    /** Hours by which wax delays the onset of throttling. */
    double delayHours = 0.0;
    /**
     * Work denied by the thermal limit without wax, as a fraction
     * of total demanded work - what must be relocated to other
     * datacenters or dropped (the paper's alternative to
     * downclocking).
     */
    double deniedWorkFractionNoWax = 0.0;
    /** Same with wax. */
    double deniedWorkFractionWithWax = 0.0;

    /** @return Fractional peak-throughput gain from PCM. */
    double throughputGain() const
    {
        return peakWithWax / peakNoWax - 1.0;
    }
};

/**
 * Run the Section 5.2 study.
 *
 * @param spec    Platform.
 * @param trace   Normalized load trace.
 * @param options Study options.
 */
ThroughputStudyResult runThroughputStudy(
    const server::ServerSpec &spec,
    const workload::WorkloadTrace &trace,
    const ThroughputConfig &options = ThroughputConfig{});

/**
 * The per-platform oversubscription fractions calibrated so the
 * study reproduces the paper's Figure 12 gains (33 % / 69 % / 34 %).
 *
 * @param spec Platform (matched by name family).
 */
double calibratedCapacityFraction(const server::ServerSpec &spec);

} // namespace core
} // namespace tts

#endif // TTS_CORE_THROUGHPUT_STUDY_HH
