/**
 * @file
 * Section 5.1 experiment: PCM to reduce peak cooling load.
 *
 * Runs a cluster of one platform over the load trace twice - stock
 * and with wax - and reports the peak cooling load reduction, the
 * re-solidify window, and the derived deployment options (smaller
 * plant or extra servers).
 */

#ifndef TTS_CORE_COOLING_STUDY_HH
#define TTS_CORE_COOLING_STUDY_HH

#include "core/run_config.hh"
#include "datacenter/cluster.hh"
#include "server/server_model.hh"
#include "server/server_spec.hh"
#include "workload/trace.hh"

namespace tts {
namespace core {

/** Cooling-load study configuration. */
struct CoolingConfig
{
    /** Shared run knobs (serverCount, meltTempC, ...). */
    RunConfig run;
    /** Cluster run options (steps, warm-up). */
    datacenter::ClusterRunOptions cluster;
};

/** Results of the cooling-load study for one platform. */
struct CoolingStudyResult
{
    /** Cluster cooling load without wax (W). */
    datacenter::ClusterRunResult baseline;
    /** Cluster cooling load with wax (W). */
    datacenter::ClusterRunResult withWax;
    /** Peak cooling load without wax (W). */
    double peakBaselineW = 0.0;
    /** Peak cooling load with wax (W). */
    double peakWithWaxW = 0.0;
    /** Melting temperature used (C). */
    double meltTempC = 0.0;

    /** @return Fractional peak cooling-load reduction. */
    double peakReduction() const;

    /**
     * @return Duration of the re-solidify window (h): total time the
     * waxed cluster's cooling load exceeds the baseline's at the same
     * instant (the wax releasing its stored heat off-peak).
     */
    double resolidifyHours() const;

    /**
     * @return True if the wax returns to (nearly) solid by the end
     * of each 24 h cycle, i.e. the thermal battery recharges daily.
     */
    bool resolidifiesDaily(double tolerance = 0.05) const;
};

/**
 * Run the Section 5.1 study.
 *
 * @param spec    Platform.
 * @param trace   Normalized load trace (Figure 10 style).
 * @param options Study options.
 */
CoolingStudyResult runCoolingStudy(
    const server::ServerSpec &spec,
    const workload::WorkloadTrace &trace,
    const CoolingConfig &options = CoolingConfig{});

} // namespace core
} // namespace tts

#endif // TTS_CORE_COOLING_STUDY_HH
