#include "core/resilience_study.hh"

#include <cmath>

#include "exec/parallel.hh"
#include "fault/fault_injector.hh"
#include "server/server_model.hh"
#include "util/error.hh"

namespace tts {
namespace core {

namespace {

/** Flat two-sample trace holding the scenario utilization. */
workload::WorkloadTrace
flatTrace(double util, double horizon_s)
{
    workload::WorkloadTrace t;
    double per_class = util / 3.0;
    t.append(0.0, {per_class, per_class, per_class});
    t.append(horizon_s, {per_class, per_class, per_class});
    return t;
}

/**
 * Thermal arm: room + two representative servers (healthy and
 * fan-failed) under the scenario's plant/sensor/fan events, with
 * sensed-inlet emergency throttling.
 */
ResilienceArm
runThermalArm(const server::ServerSpec &spec,
              const server::WaxConfig &wax,
              const ResilienceScenario &scenario,
              const ResilienceStudyOptions &opt)
{
    server::ServerModel srv(spec, wax);
    // The fan-failed population cannot move its design airflow, so
    // it is pinned at the DVFS floor for the whole scenario - the
    // same graceful-degradation choice iDataCool-style operations
    // make when a cooling loop degrades.
    server::ServerModel fan_srv(spec, wax);
    datacenter::RoomModel room(opt.room);
    fault::FaultInjector inj(scenario.faults,
                             opt.cluster.serverCount,
                             opt.room.setpointC);

    const double u = scenario.utilization;
    const double floor_ghz = spec.cpu.minFreqGHz;
    const double throttle_at = opt.room.limitC -
        opt.throttleMarginC;
    const double n = static_cast<double>(opt.serverCount);
    const double sample =
        static_cast<double>(opt.cluster.serverCount);

    srv.network().setInletTemp(opt.room.setpointC);
    srv.setLoad(u);
    srv.solveSteadyState();
    fan_srv.network().setInletTemp(opt.room.setpointC);
    fan_srv.setLoad(u, floor_ghz);
    fan_srv.solveSteadyState();

    ResilienceArm arm;
    arm.roomAirC.setName("room_air_c");
    arm.sensedInletC.setName("sensed_inlet_c");
    arm.waxMelt.setName("wax_melt");
    arm.throughputRel.setName("throughput_rel");

    double t = 0.0;
    bool throttled = false;
    double work_integral = 0.0;

    arm.roomAirC.append(t, room.airTemp());
    arm.sensedInletC.append(t, inj.senseInlet(room.airTemp()));
    arm.waxMelt.append(t, srv.hasWax() ? srv.waxMeltFraction()
                                       : 0.0);
    arm.throughputRel.append(t, u);

    while (t < scenario.horizonS) {
        inj.advanceTo(t);
        double sensed = inj.senseInlet(room.airTemp());
        if (!throttled && sensed >= throttle_at)
            throttled = true;
        else if (throttled &&
                 sensed <= throttle_at - opt.throttleHysteresisC)
            throttled = false;

        srv.setLoad(u, throttled ? floor_ghz : 0.0);
        srv.network().setInletTemp(room.airTemp());
        srv.advance(opt.stepS, opt.stepS);
        fan_srv.setLoad(u, floor_ghz);
        fan_srv.network().setInletTemp(room.airTemp());
        fan_srv.advance(opt.stepS, opt.stepS);

        double alive_frac =
            static_cast<double>(inj.aliveServers()) / sample;
        double fan_frac =
            static_cast<double>(inj.aliveFanFailed()) / sample;
        double healthy_frac = alive_frac - fan_frac;

        double rejected = n * (healthy_frac * srv.coolingLoad() +
                               fan_frac * fan_srv.coolingLoad());
        double removed =
            inj.coolingCapacityFraction() * rejected;
        room.step(opt.stepS, rejected, removed);

        double tp = healthy_frac * srv.throughput() +
            fan_frac * fan_srv.throughput();
        work_integral += tp * opt.stepS;
        if (throttled)
            arm.throttledS += opt.stepS;

        t += opt.stepS;
        arm.roomAirC.append(t, room.airTemp());
        arm.sensedInletC.append(t, inj.senseInlet(room.airTemp()));
        arm.waxMelt.append(
            t, srv.hasWax() ? srv.waxMeltFraction() : 0.0);
        arm.throughputRel.append(t, tp);
        if (room.overLimit()) {
            arm.hitLimit = true;
            break;
        }
    }

    // hitLimit authoritative, as in the outage study: censored runs
    // report exactly the horizon.  Work past the limit is zero (the
    // room forced a shutdown).
    arm.rideThroughS = arm.hitLimit ? t : scenario.horizonS;
    arm.throughputRetention =
        work_integral / (u * scenario.horizonS);
    return arm;
}

} // namespace

ResilienceResult
runResilienceStudy(const server::ServerSpec &spec,
                   const ResilienceScenario &scenario,
                   const ResilienceStudyOptions &options)
{
    require(!scenario.name.empty(),
            "runResilienceStudy: scenario needs a name");
    require(scenario.utilization > 0.0 &&
            scenario.utilization <= 1.0,
            "runResilienceStudy: utilization must be in (0, 1]");
    require(scenario.horizonS > 0.0 && options.stepS > 0.0,
            "runResilienceStudy: bad horizon or step");
    require(options.serverCount >= 1 &&
            options.cluster.serverCount >= 1,
            "runResilienceStudy: need servers");
    require(options.throttleMarginC > 0.0 &&
            options.throttleHysteresisC >= 0.0,
            "runResilienceStudy: bad throttle thresholds");

    ResilienceResult out;
    out.scenario = scenario.name;
    out.noWax = runThermalArm(spec, server::WaxConfig::placebo(),
                              scenario, options);
    server::WaxConfig wax = options.meltTempC > 0.0
        ? server::WaxConfig::withMeltTemp(options.meltTempC)
        : server::WaxConfig::paper();
    out.withWax = runThermalArm(spec, wax, scenario, options);

    workload::ClusterSim sim(options.cluster);
    out.cluster = sim.run(
        flatTrace(scenario.utilization, scenario.horizonS),
        &scenario.faults);
    return out;
}

std::vector<ResilienceResult>
runResilienceGrid(const server::ServerSpec &spec,
                  const std::vector<ResilienceScenario> &scenarios,
                  const ResilienceStudyOptions &options)
{
    return exec::parallel_map(
        scenarios, [&](const ResilienceScenario &s) {
            return runResilienceStudy(spec, s, options);
        });
}

std::vector<ResilienceScenario>
canonicalScenarios(std::size_t sample_server_count)
{
    using fault::FaultKind;
    std::vector<ResilienceScenario> out;

    {
        ResilienceScenario s;
        s.name = "plant_trip_total";
        // Four-hour horizon: the emergency throttle stretches the
        // ride-through well past the unthrottled ~100 min, and both
        // arms must still hit the limit for the comparison to bite.
        s.horizonS = 4.0 * 3600.0;
        s.faults.add(600.0, FaultKind::CoolingTrip,
                     fault::FaultEvent::noTarget, 1.0);
        out.push_back(std::move(s));
    }
    {
        ResilienceScenario s;
        s.name = "partial_trip_sensor_drift";
        // The sensor reads 3 C low from the start, so the emergency
        // throttle fires late; 85 % of the plant trips 10 minutes
        // in and is restored at t = 110 min.  Run hot (90 %
        // utilization) so the drifted threshold is reachable.
        s.utilization = 0.9;
        s.faults.add(0.0, FaultKind::SensorDrift,
                     fault::FaultEvent::noTarget, -3.0);
        s.faults.add(600.0, FaultKind::CoolingTrip,
                     fault::FaultEvent::noTarget, 0.85);
        s.faults.add(6600.0, FaultKind::CoolingRestore,
                     fault::FaultEvent::noTarget, 0.85);
        out.push_back(std::move(s));
    }
    {
        ResilienceScenario s;
        s.name = "crash_fan_storm";
        fault::FaultProfile p;
        p.serverCrashPerHour = 0.25;
        p.serverRepairMeanS = 900.0;
        p.fanFailurePerHour = 0.10;
        p.fanRepairMeanS = 1800.0;
        p.coolingTripPerHour = 0.5;
        p.coolingTripFraction = 0.5;
        p.coolingRepairMeanS = 1800.0;
        p.sensorDropoutPerHour = 1.0;
        p.sensorDropoutMeanS = 600.0;
        p.traceGapPerHour = 1.0;
        p.traceGapMeanS = 180.0;
        s.faults = fault::generateSchedule(
            p, s.horizonS, sample_server_count, 2025);
        out.push_back(std::move(s));
    }
    return out;
}

std::map<std::string, double>
resilienceGoldenValues()
{
    ResilienceStudyOptions opt;
    auto scenarios = canonicalScenarios(opt.cluster.serverCount);
    auto results =
        runResilienceGrid(server::rd330Spec(), scenarios, opt);

    std::map<std::string, double> g;
    for (const auto &r : results) {
        const std::string p = "resilience." + r.scenario + ".";
        g[p + "ride_no_wax_s"] = r.noWax.rideThroughS;
        g[p + "ride_with_wax_s"] = r.withWax.rideThroughS;
        g[p + "extra_ride_s"] = r.extraRideThroughS();
        g[p + "hit_limit_no_wax"] = r.noWax.hitLimit ? 1.0 : 0.0;
        g[p + "hit_limit_with_wax"] =
            r.withWax.hitLimit ? 1.0 : 0.0;
        g[p + "retention_no_wax"] = r.noWax.throughputRetention;
        g[p + "retention_with_wax"] =
            r.withWax.throughputRetention;
        g[p + "retention_gain"] = r.retentionGain();
        g[p + "throttled_no_wax_s"] = r.noWax.throttledS;
        g[p + "throttled_with_wax_s"] = r.withWax.throttledS;
        g[p + "cluster_offered"] =
            static_cast<double>(r.cluster.offeredJobs);
        g[p + "cluster_completed"] =
            static_cast<double>(r.cluster.completedJobs);
        g[p + "cluster_dropped"] =
            static_cast<double>(r.cluster.droppedJobs);
        g[p + "cluster_killed"] =
            static_cast<double>(r.cluster.crashKilledJobs);
        g[p + "cluster_residual"] =
            static_cast<double>(r.cluster.residualJobs);
        g[p + "fault_events"] =
            static_cast<double>(r.cluster.faultEventsApplied);
    }
    return g;
}

} // namespace core
} // namespace tts
