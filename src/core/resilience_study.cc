#include "core/resilience_study.hh"

#include <cmath>
#include <fstream>
#include <limits>

#include "exec/parallel.hh"
#include "fault/fault_injector.hh"
#include "guard/checkpoint.hh"
#include "guard/numerics.hh"
#include "obs/obs.hh"
#include "server/server_model.hh"
#include "util/error.hh"

namespace tts {
namespace core {

namespace {

/** Flat two-sample trace holding the scenario utilization. */
workload::WorkloadTrace
flatTrace(double util, double horizon_s)
{
    workload::WorkloadTrace t;
    double per_class = util / 3.0;
    t.append(0.0, {per_class, per_class, per_class});
    t.append(horizon_s, {per_class, per_class, per_class});
    return t;
}

bool
fileExists(const std::string &path)
{
    std::ifstream f(path);
    return f.good();
}

void
saveCounters(guard::CheckpointWriter &w, const std::string &key,
             const guard::GuardCounters &c)
{
    w.putU64Vector(key, {c.advances, c.steps, c.audits,
                         c.sentinelTrips, c.auditTrips, c.retries,
                         c.fallbacks});
    w.put(key + ".worst_residual_j", c.worstResidualJ);
    w.put(key + ".worst_residual_t", c.worstResidualTimeS);
}

guard::GuardCounters
restoreCounters(guard::CheckpointReader &r, const std::string &key)
{
    std::vector<std::uint64_t> v = r.expectU64Vector(key);
    require(v.size() == 7, "resilience checkpoint: bad guard "
                           "counters for " + key);
    guard::GuardCounters c;
    c.advances = v[0];
    c.steps = v[1];
    c.audits = v[2];
    c.sentinelTrips = v[3];
    c.auditTrips = v[4];
    c.retries = v[5];
    c.fallbacks = v[6];
    c.worstResidualJ = r.expect(key + ".worst_residual_j");
    c.worstResidualTimeS = r.expect(key + ".worst_residual_t");
    return c;
}

void
saveSeries(guard::CheckpointWriter &w, const std::string &key,
           const TimeSeries &s)
{
    w.putVector(key + ".times", s.times());
    w.putVector(key + ".values", s.values());
}

TimeSeries
restoreSeries(guard::CheckpointReader &r, const std::string &key,
              const std::string &name)
{
    std::vector<double> times = r.expectVector(key + ".times");
    std::vector<double> values = r.expectVector(key + ".values");
    require(times.size() == values.size(),
            "resilience checkpoint: ragged series " + key);
    TimeSeries s(name);
    for (std::size_t i = 0; i < times.size(); ++i)
        s.append(times[i], values[i]);
    return s;
}

void
saveArm(guard::CheckpointWriter &w, const ResilienceArm &a)
{
    saveSeries(w, "room_air", a.roomAirC);
    saveSeries(w, "sensed_inlet", a.sensedInletC);
    saveSeries(w, "wax_melt", a.waxMelt);
    saveSeries(w, "throughput", a.throughputRel);
    w.put("ride_through_s", a.rideThroughS);
    w.putBool("hit_limit", a.hitLimit);
    w.put("retention", a.throughputRetention);
    w.put("throttled_s", a.throttledS);
    saveCounters(w, "guard", a.guard);
}

ResilienceArm
restoreArm(guard::CheckpointReader &r)
{
    ResilienceArm a;
    a.roomAirC = restoreSeries(r, "room_air", "room_air_c");
    a.sensedInletC =
        restoreSeries(r, "sensed_inlet", "sensed_inlet_c");
    a.waxMelt = restoreSeries(r, "wax_melt", "wax_melt");
    a.throughputRel =
        restoreSeries(r, "throughput", "throughput_rel");
    a.rideThroughS = r.expect("ride_through_s");
    a.hitLimit = r.expectBool("hit_limit");
    a.throughputRetention = r.expect("retention");
    a.throttledS = r.expect("throttled_s");
    a.guard = restoreCounters(r, "guard");
    return a;
}

/** Serialize one server model's evolving thermal state. */
void
saveServer(guard::CheckpointWriter &w, const std::string &key,
           const server::ServerModel &m)
{
    w.putVector(key + ".h", m.network().enthalpies());
    w.putBool(key + ".has_wax", m.hasWax());
    if (m.hasWax()) {
        pcm::PcmElement::ThermalState ts = m.wax()->thermalState();
        w.put(key + ".wax.h", ts.enthalpyJ);
        w.putBool(key + ".wax.freezing", ts.freezingBranch);
        w.putBool(key + ".wax.was_melted", ts.wasMelted);
        w.putU64(key + ".wax.cycles", ts.cycles);
    }
    saveCounters(w, key + ".guard", m.network().guardCounters());
}

void
restoreServer(guard::CheckpointReader &r, const std::string &key,
              server::ServerModel &m)
{
    m.network().setEnthalpies(r.expectVector(key + ".h"));
    bool has_wax = r.expectBool(key + ".has_wax");
    require(has_wax == m.hasWax(),
            "resilience checkpoint: wax configuration mismatch for " +
                key);
    if (has_wax) {
        pcm::PcmElement::ThermalState ts;
        ts.enthalpyJ = r.expect(key + ".wax.h");
        ts.freezingBranch = r.expectBool(key + ".wax.freezing");
        ts.wasMelted = r.expectBool(key + ".wax.was_melted");
        ts.cycles = r.expectU64(key + ".wax.cycles");
        m.wax()->restoreThermalState(ts);
    }
    m.network().setGuardCounters(
        restoreCounters(r, key + ".guard"));
}

/**
 * Thermal arm (room + two representative servers under the
 * scenario's plant/sensor/fan events with sensed-inlet emergency
 * throttling) reshaped as a step machine: the loop body of the
 * original closed-form run is step(), all loop state is members, and
 * save()/restore() snapshot every evolving quantity so a resumed arm
 * replays the identical arithmetic.
 */
class ThermalArmSim
{
  public:
    ThermalArmSim(const server::ServerSpec &spec,
                  const server::WaxConfig &wax,
                  const ResilienceScenario &scenario,
                  const ResilienceConfig &opt)
        : scenario_(scenario), opt_(opt), srv_(spec, wax),
          // The fan-failed population cannot move its design
          // airflow, so it is pinned at the DVFS floor for the whole
          // scenario - the same graceful-degradation choice
          // iDataCool-style operations make when a cooling loop
          // degrades.
          fan_srv_(spec, wax), room_(opt.room),
          inj_(scenario.faults, opt.cluster.serverCount,
               opt.room.setpointC),
          u_(scenario.utilization),
          floor_ghz_(spec.cpu.minFreqGHz),
          throttle_at_(opt.room.limitC - opt.throttleMarginC),
          n_(static_cast<double>(opt.run.serverCount)),
          sample_(static_cast<double>(opt.cluster.serverCount))
    {
        srv_.network().setInletTemp(opt_.room.setpointC);
        srv_.setLoad(u_);
        srv_.solveSteadyState();
        fan_srv_.network().setInletTemp(opt_.room.setpointC);
        fan_srv_.setLoad(u_, floor_ghz_);
        fan_srv_.solveSteadyState();

        label_ = srv_.hasWax() ? "with_wax" : "no_wax";
        srv_.network().setObsLabel(label_ + "/srv");
        fan_srv_.network().setObsLabel(label_ + "/fan_srv");
        TTS_OBS_EVENT(obs::EventKind::PhaseBegin, t_,
                      "resilience.arm." + label_, u_, -1);

        arm_.roomAirC.setName("room_air_c");
        arm_.sensedInletC.setName("sensed_inlet_c");
        arm_.waxMelt.setName("wax_melt");
        arm_.throughputRel.setName("throughput_rel");

        arm_.roomAirC.append(t_, room_.airTemp());
        arm_.sensedInletC.append(t_, inj_.senseInlet(room_.airTemp()));
        arm_.waxMelt.append(t_, srv_.hasWax() ? srv_.waxMeltFraction()
                                              : 0.0);
        arm_.throughputRel.append(t_, u_);
    }

    bool done() const { return done_; }

    /** One thermal step.  @return Simulated seconds advanced. */
    double
    step()
    {
        invariant(!done_, "ThermalArmSim::step: already done");
        obs::Scope scope("resilience.thermal");
        inj_.advanceTo(t_);
        double sensed = inj_.senseInlet(room_.airTemp());
        if (!throttled_ && sensed >= throttle_at_) {
            throttled_ = true;
            TTS_OBS_EVENT(obs::EventKind::ThrottleOn, t_,
                          label_ + "/dvfs", sensed, -1);
        } else if (throttled_ &&
                   sensed <= throttle_at_ -
                                 opt_.throttleHysteresisC) {
            throttled_ = false;
            TTS_OBS_EVENT(obs::EventKind::ThrottleOff, t_,
                          label_ + "/dvfs", sensed, -1);
        }

        srv_.setLoad(u_, throttled_ ? floor_ghz_ : 0.0);
        srv_.network().setInletTemp(room_.airTemp());
        srv_.network().setObsClock(t_);
        fan_srv_.setLoad(u_, floor_ghz_);
        fan_srv_.network().setInletTemp(room_.airTemp());
        fan_srv_.network().setObsClock(t_);
        server::advanceServers({&srv_, &fan_srv_}, opt_.stepS,
                               opt_.stepS);

        double alive_frac =
            static_cast<double>(inj_.aliveServers()) / sample_;
        double fan_frac =
            static_cast<double>(inj_.aliveFanFailed()) / sample_;
        double healthy_frac = alive_frac - fan_frac;

        double rejected = n_ * (healthy_frac * srv_.coolingLoad() +
                                fan_frac * fan_srv_.coolingLoad());
        double removed = inj_.coolingCapacityFraction() * rejected;
        room_.step(opt_.stepS, rejected, removed);

        double tp = healthy_frac * srv_.throughput() +
            fan_frac * fan_srv_.throughput();
        work_integral_ += tp * opt_.stepS;
        if (throttled_)
            arm_.throttledS += opt_.stepS;

        t_ += opt_.stepS;
        arm_.roomAirC.append(t_, room_.airTemp());
        arm_.sensedInletC.append(t_, inj_.senseInlet(room_.airTemp()));
        arm_.waxMelt.append(
            t_, srv_.hasWax() ? srv_.waxMeltFraction() : 0.0);
        arm_.throughputRel.append(t_, tp);
        if (room_.overLimit()) {
            arm_.hitLimit = true;
            done_ = true;
        } else if (!(t_ < scenario_.horizonS)) {
            done_ = true;
        }
        return opt_.stepS;
    }

    /** Final accounting; call once, after done(). */
    ResilienceArm
    take()
    {
        invariant(done_, "ThermalArmSim::take: arm not finished");
        // hitLimit authoritative, as in the outage study: censored
        // runs report exactly the horizon.  Work past the limit is
        // zero (the room forced a shutdown).
        arm_.rideThroughS = arm_.hitLimit ? t_ : scenario_.horizonS;
        arm_.throughputRetention =
            work_integral_ / (u_ * scenario_.horizonS);
        arm_.guard = srv_.network().guardCounters();
        arm_.guard.merge(fan_srv_.network().guardCounters());
        guard::publishCounters(arm_.guard);
        TTS_OBS_EVENT(obs::EventKind::GuardCounters, t_,
                      label_ + "/guard",
                      static_cast<double>(arm_.guard.audits),
                      static_cast<std::int64_t>(
                          arm_.guard.sentinelTrips +
                          arm_.guard.auditTrips));
        TTS_OBS_EVENT(obs::EventKind::PhaseEnd, t_,
                      "resilience.arm." + label_, arm_.rideThroughS,
                      arm_.hitLimit ? 1 : 0);
        return std::move(arm_);
    }

    void
    save(guard::CheckpointWriter &w) const
    {
        w.section("thermal");
        saveArm(w, arm_);
        w.put("t", t_);
        w.putBool("throttled", throttled_);
        w.put("work_integral", work_integral_);
        saveServer(w, "srv", srv_);
        saveServer(w, "fan_srv", fan_srv_);
        w.put("room.air_c", room_.airTemp());
        w.put("room.mass_c", room_.massTemp());
        fault::FaultInjector::State st = inj_.state();
        w.putU64("inj.next", st.next);
        w.put("inj.now", st.now);
        std::vector<std::uint64_t> bits;
        for (bool b : st.serverDown)
            bits.push_back(b ? 1 : 0);
        w.putU64Vector("inj.server_down", bits);
        bits.clear();
        for (bool b : st.fanFailed)
            bits.push_back(b ? 1 : 0);
        w.putU64Vector("inj.fan_failed", bits);
        w.putU64("inj.alive", st.aliveCount);
        w.put("inj.cooling_lost", st.coolingLostFraction);
        w.put("inj.sensor_bias_c", st.sensorBiasC);
        w.putBool("inj.sensor_valid", st.sensorValid);
        w.put("inj.held_reading_c", st.heldReadingC);
        w.putI64("inj.gap_depth", st.traceGapDepth);
        w.putBool("inj.pump_failed", st.pumpFailed);
        w.put("inj.hx_fouling", st.hxFoulingFraction);
        w.putI64("inj.weather_gap_depth", st.weatherGapDepth);
    }

    void
    restore(guard::CheckpointReader &r)
    {
        r.expectSection("thermal");
        arm_ = restoreArm(r);
        t_ = r.expect("t");
        throttled_ = r.expectBool("throttled");
        work_integral_ = r.expect("work_integral");
        restoreServer(r, "srv", srv_);
        restoreServer(r, "fan_srv", fan_srv_);
        double air = r.expect("room.air_c");
        double mass = r.expect("room.mass_c");
        room_.setState(air, mass);
        fault::FaultInjector::State st = inj_.state();
        st.next = static_cast<std::size_t>(r.expectU64("inj.next"));
        st.now = r.expect("inj.now");
        std::vector<std::uint64_t> bits =
            r.expectU64Vector("inj.server_down");
        require(bits.size() == st.serverDown.size(),
                "resilience checkpoint: injector population "
                "mismatch");
        for (std::size_t i = 0; i < bits.size(); ++i)
            st.serverDown[i] = bits[i] != 0;
        bits = r.expectU64Vector("inj.fan_failed");
        require(bits.size() == st.fanFailed.size(),
                "resilience checkpoint: injector population "
                "mismatch");
        for (std::size_t i = 0; i < bits.size(); ++i)
            st.fanFailed[i] = bits[i] != 0;
        st.aliveCount = static_cast<std::size_t>(
            r.expectU64("inj.alive"));
        st.coolingLostFraction = r.expect("inj.cooling_lost");
        st.sensorBiasC = r.expect("inj.sensor_bias_c");
        st.sensorValid = r.expectBool("inj.sensor_valid");
        st.heldReadingC = r.expect("inj.held_reading_c");
        st.traceGapDepth = static_cast<int>(
            r.expectI64("inj.gap_depth"));
        st.pumpFailed = r.expectBool("inj.pump_failed");
        st.hxFoulingFraction = r.expect("inj.hx_fouling");
        st.weatherGapDepth = static_cast<int>(
            r.expectI64("inj.weather_gap_depth"));
        inj_.restoreState(st);
        done_ = false;
    }

  private:
    ResilienceScenario scenario_;
    ResilienceConfig opt_;
    server::ServerModel srv_;
    server::ServerModel fan_srv_;
    datacenter::RoomModel room_;
    fault::FaultInjector inj_;
    double u_;
    double floor_ghz_;
    double throttle_at_;
    double n_;
    double sample_;

    ResilienceArm arm_;
    std::string label_;      //!< "no_wax" / "with_wax" (obs only).
    double t_ = 0.0;
    bool throttled_ = false;
    double work_integral_ = 0.0;
    bool done_ = false;
};

} // namespace

/** Phase machine: no-wax arm -> with-wax arm -> cluster -> done. */
struct ResilienceRunner::Impl
{
    enum Phase
    {
        kArmNoWax = 0,
        kArmWithWax = 1,
        kCluster = 2,
        kDone = 3,
    };

    server::ServerSpec spec;
    ResilienceScenario scenario;
    ResilienceConfig opt;
    workload::WorkloadTrace trace;
    workload::RoundRobinBalancer balancer;

    int phase = kArmNoWax;
    ResilienceResult out;
    std::unique_ptr<ThermalArmSim> arm;
    std::unique_ptr<workload::ClusterSimEngine> engine;
    double cluster_target = 0.0;
    bool taken = false;

    Impl(const server::ServerSpec &sp, const ResilienceScenario &sc,
         const ResilienceConfig &op)
        : spec(sp), scenario(sc), opt(op),
          trace(flatTrace(sc.utilization, sc.horizonS))
    {
        out.scenario = scenario.name;
        arm = std::make_unique<ThermalArmSim>(
            spec, waxFor(kArmNoWax), scenario, opt);
    }

    server::WaxConfig
    waxFor(int ph) const
    {
        if (ph == kArmNoWax)
            return server::WaxConfig::placebo();
        return opt.run.meltTempC > 0.0
            ? server::WaxConfig::withMeltTemp(opt.run.meltTempC)
            : server::WaxConfig::paper();
    }

    void
    makeEngine()
    {
        engine = std::make_unique<workload::ClusterSimEngine>(
            opt.cluster, &balancer, trace, &scenario.faults);
        cluster_target = trace.startTime();
        TTS_OBS_EVENT(obs::EventKind::PhaseBegin, cluster_target,
                      "resilience.cluster", scenario.utilization,
                      -1);
    }

    /**
     * Advance one slice: a single thermal step, or up to chunk_s of
     * cluster events.  @return Simulated seconds advanced.
     */
    double
    advanceOnce(double chunk_s)
    {
        if (phase == kArmNoWax || phase == kArmWithWax) {
            double d = arm->step();
            if (arm->done()) {
                if (phase == kArmNoWax) {
                    out.noWax = arm->take();
                    phase = kArmWithWax;
                    arm = std::make_unique<ThermalArmSim>(
                        spec, waxFor(kArmWithWax), scenario, opt);
                } else {
                    out.withWax = arm->take();
                    arm.reset();
                    phase = kCluster;
                    makeEngine();
                }
            }
            return d;
        }
        invariant(phase == kCluster,
                  "ResilienceRunner: advance past completion");
        obs::Scope scope("resilience.cluster");
        double before = cluster_target;
        cluster_target = std::min(cluster_target + chunk_s,
                                  engine->traceEnd());
        engine->runUntil(cluster_target);
        if (engine->finished()) {
            TTS_OBS_EVENT(obs::EventKind::PhaseEnd,
                          engine->traceEnd(), "resilience.cluster",
                          0.0, -1);
            out.cluster = engine->take();
            engine.reset();
            phase = kDone;
        }
        return cluster_target - before;
    }

    void
    saveFile(const std::string &path) const
    {
        obs::Scope scope("resilience.checkpoint_io");
        guard::CheckpointWriter w;
        w.section("resilience");
        w.putToken("scenario", scenario.name);
        w.putI64("phase", phase);
        if (phase >= kArmWithWax) {
            w.section("arm.no_wax");
            saveArm(w, out.noWax);
        }
        if (phase >= kCluster) {
            w.section("arm.with_wax");
            saveArm(w, out.withWax);
        }
        if (phase <= kArmWithWax) {
            arm->save(w);
        } else {
            w.put("cluster_target", cluster_target);
            engine->save(w);
        }
        guard::writeCheckpointFile(path, w.finish());
    }

    void
    restoreFile(const std::string &path)
    {
        guard::CheckpointReader r(guard::readCheckpointFile(path),
                                  path);
        r.expectSection("resilience");
        std::string name = r.expectToken("scenario");
        require(name == scenario.name,
                path + ": checkpoint is for scenario '" + name +
                    "', runner is for '" + scenario.name + "'");
        int ph = static_cast<int>(r.expectI64("phase"));
        require(ph >= kArmNoWax && ph <= kCluster,
                path + ": bad phase in checkpoint");
        phase = ph;
        if (phase >= kArmWithWax) {
            r.expectSection("arm.no_wax");
            out.noWax = restoreArm(r);
        }
        if (phase >= kCluster) {
            r.expectSection("arm.with_wax");
            out.withWax = restoreArm(r);
        }
        if (phase <= kArmWithWax) {
            arm = std::make_unique<ThermalArmSim>(
                spec, waxFor(phase), scenario, opt);
            arm->restore(r);
            engine.reset();
        } else {
            // makeEngine() resets cluster_target to the trace start;
            // reapply the restored value after it runs.
            double target = r.expect("cluster_target");
            makeEngine();
            engine->restore(r);
            cluster_target = target;
            arm.reset();
        }
        r.expectEnd();
    }
};

ResilienceRunner::ResilienceRunner(const server::ServerSpec &spec,
                                   const ResilienceScenario &scenario,
                                   const ResilienceConfig &options)
{
    require(!scenario.name.empty(),
            "runResilienceStudy: scenario needs a name");
    require(scenario.utilization > 0.0 &&
            scenario.utilization <= 1.0,
            "runResilienceStudy: utilization must be in (0, 1]");
    require(scenario.horizonS > 0.0 && options.stepS > 0.0,
            "runResilienceStudy: bad horizon or step");
    require(options.run.serverCount >= 1 &&
            options.cluster.serverCount >= 1,
            "runResilienceStudy: need servers");
    require(options.throttleMarginC > 0.0 &&
            options.throttleHysteresisC >= 0.0,
            "runResilienceStudy: bad throttle thresholds");
    impl_ = std::make_unique<Impl>(spec, scenario, options);
}

ResilienceRunner::~ResilienceRunner() = default;

bool
ResilienceRunner::run(const CheckpointPolicy &policy)
{
    invariant(!impl_->taken, "ResilienceRunner::run: after take()");
    const bool journaled = !policy.path.empty();
    require(!journaled || policy.checkpointEveryS > 0.0,
            "ResilienceRunner: checkpointEveryS must be > 0");
    if (journaled && fileExists(policy.path)) {
        impl_->restoreFile(policy.path);
        TTS_OBS_EVENT(obs::EventKind::CheckpointRestore, 0.0,
                      impl_->scenario.name, 0.0, impl_->phase);
    }

    const double chunk =
        policy.checkpointEveryS > 0.0 ? policy.checkpointEveryS
                                      : 900.0;
    double advanced = 0.0;
    double since_checkpoint = 0.0;
    while (impl_->phase != Impl::kDone) {
        double d = impl_->advanceOnce(chunk);
        advanced += d;
        since_checkpoint += d;
        if (impl_->phase == Impl::kDone)
            break;
        if (policy.stopAfterS >= 0.0 && advanced >= policy.stopAfterS) {
            if (journaled) {
                impl_->saveFile(policy.path);
                TTS_OBS_EVENT(obs::EventKind::CheckpointSave,
                              advanced, impl_->scenario.name,
                              since_checkpoint, impl_->phase);
            }
            return false;
        }
        if (journaled && since_checkpoint >= chunk) {
            impl_->saveFile(policy.path);
            TTS_OBS_EVENT(obs::EventKind::CheckpointSave, advanced,
                          impl_->scenario.name, since_checkpoint,
                          impl_->phase);
            since_checkpoint = 0.0;
        }
    }
    return true;
}

ResilienceResult
ResilienceRunner::take()
{
    require(impl_->phase == Impl::kDone,
            "ResilienceRunner::take: run not finished");
    invariant(!impl_->taken, "ResilienceRunner::take: called twice");
    impl_->taken = true;
    return std::move(impl_->out);
}

ResilienceResult
runResilienceStudy(const server::ServerSpec &spec,
                   const ResilienceScenario &scenario,
                   const ResilienceConfig &options)
{
    ResilienceRunner runner(spec, scenario, options);
    runner.run();
    return runner.take();
}

std::vector<ResilienceResult>
runResilienceGrid(const server::ServerSpec &spec,
                  const std::vector<ResilienceScenario> &scenarios,
                  const ResilienceConfig &options)
{
    return exec::parallel_map(
        scenarios, [&](const ResilienceScenario &s) {
            return runResilienceStudy(spec, s, options);
        });
}

std::vector<ResilienceScenario>
canonicalScenarios(std::size_t sample_server_count)
{
    using fault::FaultKind;
    std::vector<ResilienceScenario> out;

    {
        ResilienceScenario s;
        s.name = "plant_trip_total";
        // Four-hour horizon: the emergency throttle stretches the
        // ride-through well past the unthrottled ~100 min, and both
        // arms must still hit the limit for the comparison to bite.
        s.horizonS = 4.0 * 3600.0;
        s.faults.add(600.0, FaultKind::CoolingTrip,
                     fault::FaultEvent::noTarget, 1.0);
        out.push_back(std::move(s));
    }
    {
        ResilienceScenario s;
        s.name = "partial_trip_sensor_drift";
        // The sensor reads 3 C low from the start, so the emergency
        // throttle fires late; 85 % of the plant trips 10 minutes
        // in and is restored at t = 110 min.  Run hot (90 %
        // utilization) so the drifted threshold is reachable.
        s.utilization = 0.9;
        s.faults.add(0.0, FaultKind::SensorDrift,
                     fault::FaultEvent::noTarget, -3.0);
        s.faults.add(600.0, FaultKind::CoolingTrip,
                     fault::FaultEvent::noTarget, 0.85);
        s.faults.add(6600.0, FaultKind::CoolingRestore,
                     fault::FaultEvent::noTarget, 0.85);
        out.push_back(std::move(s));
    }
    {
        ResilienceScenario s;
        s.name = "crash_fan_storm";
        fault::FaultProfile p;
        p.serverCrashPerHour = 0.25;
        p.serverRepairMeanS = 900.0;
        p.fanFailurePerHour = 0.10;
        p.fanRepairMeanS = 1800.0;
        p.coolingTripPerHour = 0.5;
        p.coolingTripFraction = 0.5;
        p.coolingRepairMeanS = 1800.0;
        p.sensorDropoutPerHour = 1.0;
        p.sensorDropoutMeanS = 600.0;
        p.traceGapPerHour = 1.0;
        p.traceGapMeanS = 180.0;
        s.faults = fault::generateSchedule(
            p, s.horizonS, sample_server_count, 2025);
        out.push_back(std::move(s));
    }
    return out;
}

std::map<std::string, double>
resilienceGoldenValues()
{
    ResilienceConfig opt;
    auto scenarios = canonicalScenarios(opt.cluster.serverCount);
    auto results =
        runResilienceGrid(server::rd330Spec(), scenarios, opt);

    std::map<std::string, double> g;
    for (const auto &r : results) {
        const std::string p = "resilience." + r.scenario + ".";
        g[p + "ride_no_wax_s"] = r.noWax.rideThroughS;
        g[p + "ride_with_wax_s"] = r.withWax.rideThroughS;
        g[p + "extra_ride_s"] = r.extraRideThroughS();
        g[p + "hit_limit_no_wax"] = r.noWax.hitLimit ? 1.0 : 0.0;
        g[p + "hit_limit_with_wax"] =
            r.withWax.hitLimit ? 1.0 : 0.0;
        g[p + "retention_no_wax"] = r.noWax.throughputRetention;
        g[p + "retention_with_wax"] =
            r.withWax.throughputRetention;
        g[p + "retention_gain"] = r.retentionGain();
        g[p + "throttled_no_wax_s"] = r.noWax.throttledS;
        g[p + "throttled_with_wax_s"] = r.withWax.throttledS;
        g[p + "cluster_offered"] =
            static_cast<double>(r.cluster.offeredJobs);
        g[p + "cluster_completed"] =
            static_cast<double>(r.cluster.completedJobs);
        g[p + "cluster_dropped"] =
            static_cast<double>(r.cluster.droppedJobs);
        g[p + "cluster_killed"] =
            static_cast<double>(r.cluster.crashKilledJobs);
        g[p + "cluster_residual"] =
            static_cast<double>(r.cluster.residualJobs);
        g[p + "fault_events"] =
            static_cast<double>(r.cluster.faultEventsApplied);
        // Guard health: audits run (deterministic; one per guarded
        // interval plus retries) and trips suffered (zero in a
        // healthy solve).  Both arms merged.
        g[p + "guard_audits"] = static_cast<double>(
            r.noWax.guard.audits + r.withWax.guard.audits);
        g[p + "guard_trips"] = static_cast<double>(
            r.noWax.guard.sentinelTrips + r.noWax.guard.auditTrips +
            r.noWax.guard.retries + r.noWax.guard.fallbacks +
            r.withWax.guard.sentinelTrips +
            r.withWax.guard.auditTrips + r.withWax.guard.retries +
            r.withWax.guard.fallbacks);
    }
    return g;
}

} // namespace core
} // namespace tts
