/**
 * @file
 * Cooling-failure ride-through study.
 *
 * The paper's related work cites chilled-water storage as emergency
 * datacenter cooling (Garday & Housley; Zheng et al.'s emergencies).
 * In-server PCM is the passive version: when the plant trips, the
 * room heats up, the servers' inlet follows the room, the wax-bay
 * air crosses the melting point, and the charge soaks up part of the
 * IT heat - buying minutes before the inlet limit forces a shutdown.
 *
 * The simulation closes the loop the scale-out studies keep open:
 * room air temperature feeds back into the representative server's
 * inlet every step.
 */

#ifndef TTS_CORE_OUTAGE_STUDY_HH
#define TTS_CORE_OUTAGE_STUDY_HH

#include "core/run_config.hh"
#include "datacenter/room_model.hh"
#include "server/server_model.hh"
#include "server/server_spec.hh"
#include "util/time_series.hh"

namespace tts {
namespace core {

/** Outage study configuration. */
struct OutageConfig
{
    /** Shared run knobs; utilization is held from the trip on. */
    RunConfig run;
    /** Room configuration. */
    datacenter::RoomConfig room;
    /** Fraction of the heat load still removed during the outage
     *  (e.g. a surviving CRAH on UPS); 0 = total loss. */
    double residualCoolingFraction = 0.0;
    /** Simulation step (s). */
    double stepS = 5.0;
    /** Give up after this long (s). */
    double maxDurationS = 4.0 * 3600.0;
};

/** One scenario's trajectory. */
struct OutageTrajectory
{
    /** Room air temperature (C). */
    TimeSeries roomAirC;
    /** Server inlet == room air; wax melt fraction over time. */
    TimeSeries waxMelt;
    /**
     * Time until the room air crossed the limit (s).  `hitLimit` is
     * authoritative: when it is false the run was censored at the
     * horizon and this value is exactly the options' maxDurationS -
     * a lower bound on the true ride-through, not a measurement.
     * (The limit can also be hit exactly at the horizon; the two
     * cases share this value and only hitLimit tells them apart.)
     */
    double rideThroughS = 0.0;
    /** True if the limit was reached within the horizon. */
    bool hitLimit = false;

    /** @return True if the run ended without reaching the limit. */
    bool censored() const { return !hitLimit; }
};

/** With/without-wax comparison. */
struct OutageStudyResult
{
    OutageTrajectory noWax;
    OutageTrajectory withWax;

    /**
     * @return Extra ride-through bought by the wax (s).  When the
     * with-wax run is censored (never hit the limit) this is a
     * lower bound; when neither run hit the limit it is 0 - the
     * horizon was simply too short to separate them.
     */
    double extraRideThroughS() const
    {
        if (!noWax.hitLimit && !withWax.hitLimit)
            return 0.0;
        return withWax.rideThroughS - noWax.rideThroughS;
    }
};

/**
 * Run the cooling-outage study for one platform.
 *
 * @param spec    Platform.
 * @param options Study options.
 */
OutageStudyResult runOutageStudy(
    const server::ServerSpec &spec,
    const OutageConfig &options = OutageConfig{});

} // namespace core
} // namespace tts

#endif // TTS_CORE_OUTAGE_STUDY_HH
