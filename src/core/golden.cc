#include "core/golden.hh"

#include <cstddef>
#include <vector>

#include "core/capacity_planner.hh"
#include "core/cooling_study.hh"
#include "core/resilience_study.hh"
#include "core/thermal_time_shifting.hh"
#include "core/throughput_study.hh"
#include "datacenter/datacenter.hh"
#include "exec/parallel.hh"
#include "pcm/material.hh"
#include "tco/model.hh"
#include "tco/parameters.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"

namespace tts {
namespace core {

namespace {

/** Per-platform slice of the golden map, computed in one task. */
struct PlatformGolden
{
    CoolingStudyResult cooling;
    CapacityPlan plan;
    ThroughputStudyResult throughput;
    double tcoEfficiencyGain = 0.0;
};

PlatformGolden
computePlatform(const server::ServerSpec &spec,
                const workload::WorkloadTrace &trace)
{
    PlatformGolden out;
    out.cooling = runCoolingStudy(spec, trace);

    datacenter::DatacenterConfig cfg;
    if (spec.name.find("2U") != std::string::npos)
        cfg.provisionedPerServerW = 500.0; // Paper: 500 W.
    out.plan =
        planCapacity(spec, out.cooling.peakReduction(), cfg);

    ThroughputConfig ts;
    ts.coolingCapacityFraction = calibratedCapacityFraction(spec);
    out.throughput = runThroughputStudy(spec, trace, ts);

    tco::TcoModel model(tco::parametersFor(spec));
    out.tcoEfficiencyGain = model.tcoEfficiencyGain(
        units::toKW(10.0e6),
        datacenter::Datacenter(spec, cfg).serverCount(),
        out.throughput.throughputGain());
    return out;
}

} // namespace

std::map<std::string, double>
computeGoldenValues()
{
    std::map<std::string, double> g;

    auto trace = workload::makeGoogleTrace();
    auto specs = paperPlatforms();
    const char *tags[3] = {"1u", "2u", "ocp"};

    auto studies = exec::parallel_map(
        specs, [&](const server::ServerSpec &spec) {
            return computePlatform(spec, trace);
        });

    for (std::size_t i = 0; i < specs.size(); ++i) {
        const std::string p = tags[i];
        const PlatformGolden &s = studies[i];

        g["cooling." + p + ".peak_baseline_kw"] =
            s.cooling.peakBaselineW / 1e3;
        g["cooling." + p + ".peak_with_wax_kw"] =
            s.cooling.peakWithWaxW / 1e3;
        g["cooling." + p + ".peak_reduction"] =
            s.cooling.peakReduction();
        g["cooling." + p + ".resolidify_h"] =
            s.cooling.resolidifyHours();
        g["cooling." + p + ".melt_temp_c"] = s.cooling.meltTempC;

        g["plan." + p + ".clusters"] =
            static_cast<double>(s.plan.clusters);
        g["plan." + p + ".servers"] =
            static_cast<double>(s.plan.servers);
        g["plan." + p + ".smaller_plant_savings_per_year"] =
            s.plan.smallerPlantSavingsPerYear;
        g["plan." + p + ".extra_servers"] =
            static_cast<double>(s.plan.extraServers);
        g["plan." + p + ".extra_server_fraction"] =
            s.plan.extraServerFraction;
        g["plan." + p + ".retrofit_savings_per_year"] =
            s.plan.retrofitSavingsPerYear;

        g["throughput." + p + ".gain"] =
            s.throughput.throughputGain();
        g["throughput." + p + ".delay_h"] = s.throughput.delayHours;
        g["throughput." + p + ".peak_ideal"] =
            s.throughput.peakIdeal;
        g["throughput." + p + ".peak_with_wax"] =
            s.throughput.peakWithWax;
        g["throughput." + p + ".denied_no_wax"] =
            s.throughput.deniedWorkFractionNoWax;
        g["throughput." + p + ".denied_with_wax"] =
            s.throughput.deniedWorkFractionWithWax;
        g["throughput." + p + ".capacity_kw"] =
            s.throughput.capacityW / 1e3;
        g["throughput." + p + ".melt_temp_c"] =
            s.throughput.meltTempC;

        g["tco." + p + ".efficiency_gain"] = s.tcoEfficiencyGain;

        tco::TcoParameters params = tco::parametersFor(specs[i]);
        g["table2." + p + ".server_capex_per_server"] =
            params.serverCapExPerServer;
        g["table2." + p + ".wax_capex_per_server"] =
            params.waxCapExPerServer;
        g["table2." + p + ".cooling_attributed_capex_per_kw"] =
            params.coolingAttributedCapExPerKW();
    }

    // Table 1 derived values: the two priced waxes and the
    // suitability screen over the five families.
    pcm::Material eico = pcm::eicosane();
    pcm::Material wax = pcm::commercialParaffin();
    g["table1.eicosane.energy_density_j_per_ml"] =
        eico.energyDensityJPerMl();
    g["table1.eicosane.price_per_ton_usd"] = eico.pricePerTonUsd;
    g["table1.commercial_paraffin.energy_density_j_per_ml"] =
        wax.energyDensityJPerMl();
    g["table1.commercial_paraffin.heat_of_fusion_j_per_g"] =
        wax.heatOfFusionJPerG;
    g["table1.commercial_paraffin.price_per_ton_usd"] =
        wax.pricePerTonUsd;
    std::size_t suitable = 0;
    for (const auto &m : pcm::table1Families())
        if (pcm::suitableForDatacenter(m))
            ++suitable;
    g["table1.suitable_family_count"] =
        static_cast<double>(suitable);

    // Fault-scenario resilience grid (wax vs. no-wax ride-through
    // and throughput retention for the canonical scenarios).
    auto resilience = resilienceGoldenValues();
    g.insert(resilience.begin(), resilience.end());

    return g;
}

} // namespace core
} // namespace tts
