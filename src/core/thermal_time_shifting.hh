/**
 * @file
 * Public facade of the thermal-time-shifting library.
 *
 * Pulls the whole study pipeline together: pick a platform, generate
 * or load a trace, optimize the wax, run the cooling-load and
 * throughput studies, and derive the deployment economics.  The
 * individual headers under core/, server/, datacenter/, pcm/,
 * thermal/, workload/, and tco/ remain the fine-grained API.
 *
 * Quickstart:
 * @code
 *   using namespace tts;
 *   auto spec = server::rd330Spec();
 *   auto trace = workload::makeGoogleTrace();
 *   auto study = core::runCoolingStudy(spec, trace);
 *   std::cout << "peak cooling reduction: "
 *             << 100.0 * study.peakReduction() << "%\n";
 * @endcode
 */

#ifndef TTS_CORE_THERMAL_TIME_SHIFTING_HH
#define TTS_CORE_THERMAL_TIME_SHIFTING_HH

#include <string>
#include <vector>

#include "core/capacity_planner.hh"
#include "core/cooling_study.hh"
#include "core/melting_optimizer.hh"
#include "core/throughput_study.hh"
#include "core/validation.hh"
#include "server/server_spec.hh"
#include "workload/google_trace.hh"

namespace tts {
namespace core {

/** Library version. */
const char *version();

/** The paper's three scale-out platforms, in Figure 5 order. */
std::vector<server::ServerSpec> paperPlatforms();

/** Everything Section 5 reports for one platform, in one call. */
struct PlatformStudy
{
    server::ServerSpec spec;
    /** Optimized melting temperature (C). */
    double meltTempC = 0.0;
    /** Section 5.1 cooling study at the optimized temperature. */
    CoolingStudyResult cooling;
    /** Section 5.1 deployment economics. */
    CapacityPlan plan;
    /** Section 5.2 constrained-throughput study. */
    ThroughputStudyResult throughput;
    /** Section 5.2 TCO efficiency improvement (fraction). */
    double tcoEfficiencyGain = 0.0;
};

/** Configuration for runPlatformStudy. */
struct PlatformConfig
{
    /** Optimize the melting temperature (else platform default). */
    bool optimizeMelt = true;
    /** Melt sweep granularity (C). */
    double meltStepC = 1.0;
    /** Cooling-plant oversubscription for the throughput study;
     *  <= 0 uses the calibrated per-platform value. */
    double capacityFraction = 0.0;
    /** Study/cluster configuration shared by the runs. */
    CoolingConfig cooling;
};

/**
 * Run the full Section 5 pipeline for one platform.
 *
 * @param spec    Platform.
 * @param trace   Load trace (Figure 10 style).
 * @param options Pipeline options.
 */
PlatformStudy runPlatformStudy(
    const server::ServerSpec &spec,
    const workload::WorkloadTrace &trace,
    const PlatformConfig &options = PlatformConfig{});

/**
 * Run the full Section 5 pipeline for several platforms, fanned out
 * across threads (tts::exec; set TTS_THREADS to control the width).
 * Results come back in spec order and are identical to calling
 * runPlatformStudy serially per platform.
 *
 * @param specs   Platforms, e.g. paperPlatforms().
 * @param trace   Load trace shared by all platforms.
 * @param options Pipeline options shared by all platforms.
 */
std::vector<PlatformStudy> runPlatformStudies(
    const std::vector<server::ServerSpec> &specs,
    const workload::WorkloadTrace &trace,
    const PlatformConfig &options = PlatformConfig{});

} // namespace core
} // namespace tts

#endif // TTS_CORE_THERMAL_TIME_SHIFTING_HH
