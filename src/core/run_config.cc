#include "core/run_config.hh"

#include "obs/obs.hh"
#include "util/error.hh"
#include "util/kv_json.hh"

namespace tts {
namespace core {

server::WaxConfig
RunConfig::waxConfig() const
{
    // custom() with non-positive liters/melt resolves both to the
    // platform defaults inside ServerModel, so this reproduces the
    // old withMeltTemp()/paper() pair while letting waxLiters scale
    // the charge.
    server::WaxConfig wax = server::WaxConfig::custom(
        waxLiters > 0.0 ? waxLiters : 0.0,
        meltTempC > 0.0 ? meltTempC : 0.0);
    wax.meltWindowC = meltWindowC;
    return wax;
}

StudyContext::StudyContext(server::ServerSpec spec,
                           workload::WorkloadTrace trace,
                           RunConfig run)
    : spec_(std::move(spec)), trace_(std::move(trace)),
      run_(std::move(run))
{
}

void
StudyContext::beginObs() const
{
    if (run_.obs.any())
        obs::setEnabled(true);
}

void
StudyContext::finishObs() const
{
    if (!run_.obs.any())
        return;
    if (!run_.obs.metricsPath.empty())
        writeKvJsonFile(run_.obs.metricsPath,
                        obs::registry().snapshot());
    if (!run_.obs.tracePath.empty()) {
        obs::TraceFormat format;
        if (run_.obs.traceFormat == "jsonl")
            format = obs::TraceFormat::Jsonl;
        else if (run_.obs.traceFormat == "chrome")
            format = obs::TraceFormat::Chrome;
        else
            throw Error("StudyContext: bad traceFormat '" +
                        run_.obs.traceFormat +
                        "' (want jsonl or chrome)");
        obs::writeTraceFile(run_.obs.tracePath, format);
    }
    obs::setEnabled(false);
}

} // namespace core
} // namespace tts
