/**
 * @file
 * Golden-value computation for the regression harness.
 *
 * One function computes every headline number the reproduction pins:
 * the Section 5.1 cooling study and capacity plan, the Section 5.2
 * constrained-throughput study and TCO efficiency for each of the
 * three paper platforms, plus the Table 1 material and Table 2 cost
 * values they derive from.  `tools/tts_golden` serializes the map to
 * `tests/data/golden.json`; `tests/integration/test_golden_values.cc`
 * recomputes it and diffs against the checked-in file.  Both sides
 * share this code so the only thing the test can disagree about is
 * the model itself.
 *
 * The computation fans the per-platform studies out through
 * tts::exec, so its values are also the determinism witness: the
 * engine's contract says the map must be bit-for-bit identical at
 * any thread count.
 */

#ifndef TTS_CORE_GOLDEN_HH
#define TTS_CORE_GOLDEN_HH

#include <map>
#include <string>

namespace tts {
namespace core {

/**
 * Compute the full golden-value map at default (paper) resolution:
 * two-day Google trace, default thermal/control steps, 1008-server
 * clusters.  Keys are dotted paths ("cooling.1u.peak_reduction");
 * integral quantities (server counts) are stored as exact doubles.
 */
std::map<std::string, double> computeGoldenValues();

} // namespace core
} // namespace tts

#endif // TTS_CORE_GOLDEN_HH
