#include "core/energy_cost_study.hh"

#include "util/error.hh"
#include "util/units.hh"

namespace tts {
namespace core {

EnergyCostResult
priceCoolingEnergy(const CoolingStudyResult &study,
                   const EnergyCostOptions &options)
{
    require(options.flatCop > 0.0,
            "priceCoolingEnergy: COP must be > 0");
    require(options.clusters >= 1,
            "priceCoolingEnergy: need at least one cluster");
    const auto &base = study.baseline.coolingLoadW;
    const auto &wax = study.withWax.coolingLoadW;
    require(base.size() >= 2 && wax.size() >= 2,
            "priceCoolingEnergy: cooling study has no series");

    double scale = static_cast<double>(options.clusters);
    double span_days =
        (base.endTime() - base.startTime()) / units::days(1.0);
    require(span_days > 0.0,
            "priceCoolingEnergy: degenerate study span");
    double to_year = 365.25 / span_days;

    // Flat-COP plant: electric power = load / COP, priced by the
    // time-of-use tariff.
    auto flat_cost = [&](const TimeSeries &load) {
        TimeSeries elec("elec_w");
        for (std::size_t i = 0; i < load.size(); ++i) {
            elec.append(load.times()[i],
                        scale * std::max(load.values()[i], 0.0) /
                            options.flatCop);
        }
        return options.tariff.costOf(elec) * to_year;
    };

    // Economizer plant: the COP follows the diurnal ambient.
    auto econo_cost = [&](const TimeSeries &load) {
        auto elec = options.economizer.electricSeries(
            load, options.ambient);
        return options.tariff.costOf(elec.scaled(scale)) * to_year;
    };

    // Hot-water plant (iDataCool): a loop captures hwEffectiveness
    // of the heat as reusable hot water, the chiller removes the
    // residue, a pump overhead is paid, and the captured heat earns
    // a thermal credit.
    require(options.hwEffectiveness > 0.0 &&
                options.hwEffectiveness <= 1.0 &&
                options.hwMechanicalCop > 0.0 &&
                options.hwPumpFraction >= 0.0 &&
                options.hwReusePricePerKWh >= 0.0,
            "priceCoolingEnergy: bad hot-water options");
    auto hot_water = [&](const TimeSeries &load,
                         double *credit_out) {
        TimeSeries elec("elec_w");
        double reused_j = 0.0;
        const auto &times = load.times();
        const auto &values = load.values();
        for (std::size_t i = 0; i < times.size(); ++i) {
            double v = scale * std::max(values[i], 0.0);
            double reused = v * options.hwEffectiveness;
            elec.append(times[i],
                        (v - reused) / options.hwMechanicalCop +
                            options.hwPumpFraction * v);
            if (i + 1 < times.size())
                reused_j += reused * (times[i + 1] - times[i]);
        }
        double credit = options.hwReusePricePerKWh *
            units::toKWh(reused_j) * to_year;
        if (credit_out)
            *credit_out = credit;
        return options.tariff.costOf(elec) * to_year - credit;
    };

    EnergyCostResult out;
    out.flatCostNoWax = flat_cost(base);
    out.flatCostWithWax = flat_cost(wax);
    out.economizerCostNoWax = econo_cost(base);
    out.economizerCostWithWax = econo_cost(wax);
    out.hotWaterCostNoWax =
        hot_water(base, &out.hotWaterReuseCreditNoWax);
    out.hotWaterCostWithWax = hot_water(wax, nullptr);
    return out;
}

} // namespace core
} // namespace tts
