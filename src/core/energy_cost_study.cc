#include "core/energy_cost_study.hh"

#include "util/error.hh"
#include "util/units.hh"

namespace tts {
namespace core {

EnergyCostResult
priceCoolingEnergy(const CoolingStudyResult &study,
                   const EnergyCostOptions &options)
{
    require(options.flatCop > 0.0,
            "priceCoolingEnergy: COP must be > 0");
    require(options.clusters >= 1,
            "priceCoolingEnergy: need at least one cluster");
    const auto &base = study.baseline.coolingLoadW;
    const auto &wax = study.withWax.coolingLoadW;
    require(base.size() >= 2 && wax.size() >= 2,
            "priceCoolingEnergy: cooling study has no series");

    double scale = static_cast<double>(options.clusters);
    double span_days =
        (base.endTime() - base.startTime()) / units::days(1.0);
    require(span_days > 0.0,
            "priceCoolingEnergy: degenerate study span");
    double to_year = 365.25 / span_days;

    // Flat-COP plant: electric power = load / COP, priced by the
    // time-of-use tariff.
    auto flat_cost = [&](const TimeSeries &load) {
        TimeSeries elec("elec_w");
        for (std::size_t i = 0; i < load.size(); ++i) {
            elec.append(load.times()[i],
                        scale * std::max(load.values()[i], 0.0) /
                            options.flatCop);
        }
        return options.tariff.costOf(elec) * to_year;
    };

    // Economizer plant: the COP follows the diurnal ambient.
    auto econo_cost = [&](const TimeSeries &load) {
        auto elec = options.economizer.electricSeries(
            load, options.ambient);
        return options.tariff.costOf(elec.scaled(scale)) * to_year;
    };

    EnergyCostResult out;
    out.flatCostNoWax = flat_cost(base);
    out.flatCostWithWax = flat_cost(wax);
    out.economizerCostNoWax = econo_cost(base);
    out.economizerCostWithWax = econo_cost(wax);
    return out;
}

} // namespace core
} // namespace tts
