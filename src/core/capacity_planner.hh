/**
 * @file
 * Section 5.1 deployment planning: turn a peak cooling-load
 * reduction into money or servers.
 *
 * Three options the paper evaluates for a 10 MW facility:
 *   1. Build a smaller cooling plant (save capital + interest).
 *   2. Keep the plant, add servers until the peak cooling load is
 *      back at the plant's rating.
 *   3. Retrofit: reuse a plant with remaining life for a new, denser
 *      server generation instead of buying a bigger one.
 */

#ifndef TTS_CORE_CAPACITY_PLANNER_HH
#define TTS_CORE_CAPACITY_PLANNER_HH

#include <cstddef>

#include "datacenter/datacenter.hh"
#include "server/server_spec.hh"
#include "tco/model.hh"

namespace tts {
namespace core {

/** Planning results for one platform in one facility. */
struct CapacityPlan
{
    /** Platform name. */
    std::string platform;
    /** Facility critical power (W). */
    double criticalPowerW = 0.0;
    /** Cluster count in the facility. */
    std::size_t clusters = 0;
    /** Servers in the facility. */
    std::size_t servers = 0;
    /** PCM peak cooling-load reduction (fraction). */
    double peakReduction = 0.0;

    /** Option 1: smaller plant - yearly savings (USD). */
    double smallerPlantSavingsPerYear = 0.0;
    /** Option 2: extra servers under the same plant. */
    std::size_t extraServers = 0;
    /** Option 2: extra servers as a fraction of the fleet. */
    double extraServerFraction = 0.0;
    /** Option 3: retrofit - yearly savings (USD). */
    double retrofitSavingsPerYear = 0.0;
};

/**
 * Build the Section 5.1 plan for a platform.
 *
 * @param spec           Platform.
 * @param peak_reduction Measured peak cooling reduction (from
 *                       runCoolingStudy / the optimizer).
 * @param dc_config      Facility parameters (10 MW default).
 */
CapacityPlan planCapacity(
    const server::ServerSpec &spec, double peak_reduction,
    const datacenter::DatacenterConfig &dc_config =
        datacenter::DatacenterConfig{});

} // namespace core
} // namespace tts

#endif // TTS_CORE_CAPACITY_PLANNER_HH
