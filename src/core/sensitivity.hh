/**
 * @file
 * One-at-a-time sensitivity analysis of the calibrated substrate.
 *
 * The reproduction replaces the paper's CFD and testbed with a
 * calibrated lumped model (DESIGN.md section 6 lists the knobs).
 * This harness perturbs each calibrated scalar by a relative amount
 * and re-runs the Section 5.1 study, answering the reviewer
 * question: *do the headline conclusions survive the calibration
 * uncertainty?*
 */

#ifndef TTS_CORE_SENSITIVITY_HH
#define TTS_CORE_SENSITIVITY_HH

#include <functional>
#include <string>
#include <vector>

#include "core/cooling_study.hh"
#include "server/server_spec.hh"
#include "util/stats.hh"
#include "workload/trace.hh"

namespace tts {
namespace core {

/** One perturbable parameter. */
struct SensitivityParameter
{
    /** Display name ("wax bay plume fraction", ...). */
    std::string name;
    /**
     * Applies a relative perturbation to a spec (and/or wax config):
     * called with (spec, wax, factor) where factor is e.g. 0.9 or
     * 1.1.
     */
    std::function<void(server::ServerSpec &, server::WaxConfig &,
                       double)> apply;
};

/** Result row for one parameter. */
struct SensitivityRow
{
    std::string name;
    /** Peak reduction with the parameter at 1 - delta. */
    double reductionLow = 0.0;
    /** Peak reduction at the calibrated value. */
    double reductionNominal = 0.0;
    /** Peak reduction at 1 + delta. */
    double reductionHigh = 0.0;
    /** Peak reduction at 1 - delta with the melting temperature
     *  re-optimized for the perturbed substrate. */
    double reoptimizedLow = 0.0;
    /** Same at 1 + delta. */
    double reoptimizedHigh = 0.0;

    /** @return Max |reduction - nominal| across the two ends. */
    double spread() const;

    /** @return Same, after re-optimizing the melting point. */
    double reoptimizedSpread() const;
};

/** The default parameter set: every DESIGN.md calibration knob. */
std::vector<SensitivityParameter> calibrationKnobs();

/**
 * Run the one-at-a-time sweep.
 *
 * @param spec    Platform (the calibrated baseline).
 * @param trace   Load trace.
 * @param delta      Relative perturbation (default 10 %).
 * @param params     Knobs; defaults to calibrationKnobs().
 * @param options    Cooling-study options applied per run.
 * @param reoptimize Also re-optimize the melting temperature for
 *                   each perturbed substrate (a coarse +/- 4 C
 *                   local sweep); fills the reoptimized* fields.
 */
std::vector<SensitivityRow> runSensitivity(
    const server::ServerSpec &spec,
    const workload::WorkloadTrace &trace, double delta = 0.10,
    std::vector<SensitivityParameter> params = calibrationKnobs(),
    const CoolingConfig &options = CoolingConfig{},
    bool reoptimize = false);

/**
 * Bucket the per-knob spreads into a fixed Histogram (the same
 * tts::Histogram the obs metrics registry snapshots, so report and
 * metrics bucket semantics agree).  Bounds are absolute
 * peak-reduction fractions: 0.005, 0.01, 0.02, 0.05 - i.e. half a
 * point, one, two, and five points of cooling-peak reduction, with
 * anything wilder in the overflow bucket.
 *
 * @param rows        Sweep output.
 * @param reoptimized Bucket reoptimizedSpread() instead of spread()
 *                    (requires rows from a reoptimize=true run).
 */
Histogram spreadHistogram(const std::vector<SensitivityRow> &rows,
                          bool reoptimized = false);

} // namespace core
} // namespace tts

#endif // TTS_CORE_SENSITIVITY_HH
