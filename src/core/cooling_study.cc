#include "core/cooling_study.hh"

#include <algorithm>
#include <cmath>

#include "exec/parallel.hh"
#include "util/error.hh"
#include "util/units.hh"

namespace tts {
namespace core {

double
CoolingStudyResult::peakReduction() const
{
    invariant(peakBaselineW > 0.0,
              "CoolingStudyResult: baseline peak not set");
    return (peakBaselineW - peakWithWaxW) / peakBaselineW;
}

double
CoolingStudyResult::resolidifyHours() const
{
    // Compare the two cooling-load series; count time where the
    // waxed cluster rejects noticeably more heat than the baseline
    // (the release phase).  The 1 % threshold ignores the small
    // persistent offset the containers' blockage introduces.
    double threshold = 0.01 * peakBaselineW;
    const auto &wax = withWax.coolingLoadW;
    const auto &base = baseline.coolingLoadW;
    double total_s = 0.0;
    const auto &times = wax.times();
    for (std::size_t i = 1; i < times.size(); ++i) {
        double t_mid = 0.5 * (times[i - 1] + times[i]);
        double excess = wax.at(t_mid) - base.at(t_mid);
        if (excess > threshold)
            total_s += times[i] - times[i - 1];
    }
    return units::toHours(total_s);
}

bool
CoolingStudyResult::resolidifiesDaily(double tolerance) const
{
    const auto &melt = withWax.waxMeltFraction;
    if (melt.empty())
        return true;
    // The battery recharges daily if the melt fraction returns to
    // (near) zero some time within every 24 h cycle after the first
    // peak - i.e. the minimum over each day's window is small.
    double start = melt.startTime();
    double end = melt.endTime();
    for (double day = start + units::days(1.0); day <= end + 1.0;
         day += units::days(1.0)) {
        double lo = day - units::days(1.0);
        double hi = std::min(day, end);
        double day_min = 1.0;
        for (double t = lo; t <= hi; t += units::hours(0.5))
            day_min = std::min(day_min, melt.at(t));
        if (day_min > tolerance)
            return false;
    }
    return true;
}

CoolingStudyResult
runCoolingStudy(const server::ServerSpec &spec,
                const workload::WorkloadTrace &trace,
                const CoolingConfig &options)
{
    CoolingStudyResult out;
    out.meltTempC = options.run.meltTempFor(spec);

    // The stock and waxed transients are independent; run them as a
    // two-task region (a serial pair when the caller is itself a
    // parallel sweep task).
    std::vector<server::WaxConfig> configs{
        server::WaxConfig::none(),
        server::WaxConfig::withMeltTemp(out.meltTempC)};
    auto runs = exec::parallel_map(
        configs, [&](const server::WaxConfig &wax) {
            datacenter::Cluster cluster(spec, wax,
                                        options.run.serverCount);
            return cluster.run(trace, options.cluster);
        });
    out.baseline = std::move(runs[0]);
    out.withWax = std::move(runs[1]);
    out.peakBaselineW = out.baseline.peakCoolingLoad();
    out.peakWithWaxW = out.withWax.peakCoolingLoad();
    return out;
}

} // namespace core
} // namespace tts
