/**
 * @file
 * Fault-scenario resilience study: wax vs. no-wax ride-through and
 * throughput retention under composable failures.
 *
 * Extends the stylized total-plant-loss outage study (outage_study)
 * to the fault vocabulary of tts::fault: partial cooling trips,
 * server crashes, fan-bank failures, drifting or dead inlet sensors,
 * and input-trace gaps.  Two coupled simulations run per scenario:
 *
 *  - a thermal loop (room model + representative servers) driven by
 *    the plant/sensor/fan events, with graceful degradation: a DVFS
 *    governor emergency-throttles every server to the frequency
 *    floor when the *sensed* inlet - which may be drifting or stuck
 *    - crosses the throttle threshold, fan-failed servers pin to
 *    the floor permanently, and crashed servers stop heating;
 *  - a DCSim cluster sample driven by the crash/gap events, whose
 *    job accounting (completed / dropped / killed / residual)
 *    quantifies the workload cost of the same scenario.
 *
 * Everything is seeded and deterministic: identical scenarios give
 * bit-identical results at any thread count, so the canonical
 * scenario grid is pinned in the golden file alongside the paper's
 * headline numbers.
 */

#ifndef TTS_CORE_RESILIENCE_STUDY_HH
#define TTS_CORE_RESILIENCE_STUDY_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/run_config.hh"
#include "datacenter/room_model.hh"
#include "fault/fault_schedule.hh"
#include "guard/numerics.hh"
#include "server/server_spec.hh"
#include "util/time_series.hh"
#include "workload/dcsim.hh"

namespace tts {
namespace core {

/** One named fault scenario. */
struct ResilienceScenario
{
    /** Scenario name (golden key component; [a-z0-9_]). */
    std::string name;
    /** The fault schedule to inject. */
    fault::FaultSchedule faults;
    /** Cluster utilization held over the scenario. */
    double utilization = 0.75;
    /** Scenario horizon (s). */
    double horizonS = 2.0 * 3600.0;
};

/** Study configuration shared by every scenario. */
struct ResilienceConfig
{
    /** Shared run knobs (serverCount, meltTempC, checkpoint). */
    RunConfig run;
    /** Room configuration. */
    datacenter::RoomConfig room;
    /** Thermal step (s). */
    double stepS = 10.0;
    /**
     * Emergency throttle threshold margin: servers drop to the DVFS
     * floor when the sensed inlet reaches limitC - margin (C).
     */
    double throttleMarginC = 5.0;
    /** Hysteresis below the threshold before un-throttling (C). */
    double throttleHysteresisC = 2.0;
    /**
     * Cluster sample for the job-accounting side; per-server fault
     * targets index into this sample, and fan/crash populations are
     * scaled to serverCount pro-rata.
     */
    workload::DcSimConfig cluster;
};

/** One arm (no-wax or with-wax) of a scenario. */
struct ResilienceArm
{
    /** Room air temperature (C). */
    TimeSeries roomAirC;
    /** Sensed (drifting/held) inlet temperature (C). */
    TimeSeries sensedInletC;
    /** Wax melt fraction (0 without wax). */
    TimeSeries waxMelt;
    /** Relative cluster throughput (1 == all servers at nominal
     *  frequency and full utilization). */
    TimeSeries throughputRel;
    /**
     * Time until the *actual* room air crossed the limit (s);
     * hitLimit is authoritative - when false the run was censored
     * at the horizon and this equals horizonS exactly.
     */
    double rideThroughS = 0.0;
    /** True if the limit was reached within the horizon. */
    bool hitLimit = false;
    /**
     * Throughput retained over the horizon: integral of relative
     * throughput divided by the fault-free ideal (servers past the
     * limit produce nothing).
     */
    double throughputRetention = 0.0;
    /** Seconds spent emergency-throttled at the DVFS floor. */
    double throttledS = 0.0;
    /**
     * Numerical-guard counters merged across the arm's two server
     * networks (healthy + fan-failed).  A healthy run audits every
     * interval and trips never; nonzero retry/fallback counts flag a
     * solve that degraded to survive.
     */
    guard::GuardCounters guard;
};

/** Wax vs. no-wax comparison for one scenario. */
struct ResilienceResult
{
    /** The scenario that was run. */
    std::string scenario;
    ResilienceArm noWax;
    ResilienceArm withWax;
    /** Job accounting from the fault-injected cluster sample
     *  (identical for both arms: wax does not change dispatch). */
    workload::DcSimResult cluster;

    /**
     * @return Extra ride-through bought by the wax (s); 0 when
     * neither arm hit the limit, a lower bound when only the
     * with-wax arm survived to the horizon.
     */
    double extraRideThroughS() const
    {
        if (!noWax.hitLimit && !withWax.hitLimit)
            return 0.0;
        return withWax.rideThroughS - noWax.rideThroughS;
    }

    /** @return Throughput-retention gain from the wax. */
    double retentionGain() const
    {
        return withWax.throughputRetention -
               noWax.throughputRetention;
    }
};

/**
 * Resumable form of runResilienceStudy().
 *
 * The scenario runs as a sequence of phases (no-wax thermal arm,
 * with-wax thermal arm, cluster sample), each advancing in bounded
 * slices with every piece of evolving state - network enthalpies and
 * PCM hysteresis latches, injector cursors, DCSim queues and RNG
 * position, guard counters - held in members.  The run can therefore
 * stop at any slice boundary, serialize to a guard checkpoint file,
 * and resume in a new process, producing a ResilienceResult
 * bit-identical to an uninterrupted run (the integration suite pins
 * this by killing a run mid-phase at 1 and 8 threads).
 */
class ResilienceRunner
{
  public:
    /** Copies everything; validates like runResilienceStudy(). */
    ResilienceRunner(const server::ServerSpec &spec,
                     const ResilienceScenario &scenario,
                     const ResilienceConfig &options =
                         ResilienceConfig{});
    ~ResilienceRunner();

    ResilienceRunner(const ResilienceRunner &) = delete;
    ResilienceRunner &operator=(const ResilienceRunner &) = delete;

    /**
     * Run the scenario, restoring from policy.path first when that
     * file exists (it must describe the same scenario).
     *
     * @return True when the scenario finished; false when paused by
     *         policy.stopAfterS (state saved to policy.path).
     */
    bool run(const CheckpointPolicy &policy = CheckpointPolicy{});

    /** Extract the result.  Call once, after run() returned true. */
    ResilienceResult take();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Run one fault scenario for one platform (both arms + cluster
 * accounting).  Deterministic for a given (spec, scenario, options).
 */
ResilienceResult runResilienceStudy(
    const server::ServerSpec &spec,
    const ResilienceScenario &scenario,
    const ResilienceConfig &options = ResilienceConfig{});

/**
 * Run a scenario grid through tts::exec::parallel_map (one task per
 * scenario; bit-identical at any thread count).
 */
std::vector<ResilienceResult> runResilienceGrid(
    const server::ServerSpec &spec,
    const std::vector<ResilienceScenario> &scenarios,
    const ResilienceConfig &options = ResilienceConfig{});

/**
 * The three canonical scenarios the golden file pins:
 *
 *  - "plant_trip_total": the classic emergency - the whole plant
 *    trips 10 minutes in and never comes back.
 *  - "partial_trip_sensor_drift": 60 % capacity loss with a sensor
 *    reading 3 C low, so the emergency throttle fires late; the
 *    plant recovers after 70 minutes.
 *  - "crash_fan_storm": a seeded storm of server crashes, fan
 *    failures, a partial trip, sensor dropouts, and trace gaps
 *    (generateSchedule, fixed seed).
 *
 * @param sample_server_count Cluster-sample size the per-server
 *        fault targets index into (use options.cluster.serverCount).
 */
std::vector<ResilienceScenario> canonicalScenarios(
    std::size_t sample_server_count);

/**
 * Golden slice: the canonical scenarios on the 1U platform, keys
 * "resilience.<scenario>.<metric>".  Merged into
 * core::computeGoldenValues and recomputed by the fault test suite;
 * bit-identical at any thread count.
 */
std::map<std::string, double> resilienceGoldenValues();

} // namespace core
} // namespace tts

#endif // TTS_CORE_RESILIENCE_STUDY_HH
