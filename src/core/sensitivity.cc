#include "core/sensitivity.hh"

#include <algorithm>
#include <cmath>

#include "datacenter/cluster.hh"
#include "exec/parallel.hh"
#include "util/error.hh"

namespace tts {
namespace core {

double
SensitivityRow::spread() const
{
    return std::max(std::abs(reductionLow - reductionNominal),
                    std::abs(reductionHigh - reductionNominal));
}

double
SensitivityRow::reoptimizedSpread() const
{
    return std::max(
        std::abs(reoptimizedLow - reductionNominal),
        std::abs(reoptimizedHigh - reductionNominal));
}

std::vector<SensitivityParameter>
calibrationKnobs()
{
    using server::ServerSpec;
    using server::WaxConfig;
    return {
        {"wax bay plume fraction",
         [](ServerSpec &s, WaxConfig &, double f) {
             s.waxBayPlume = std::clamp(s.waxBayPlume * f, 0.05,
                                        1.0);
         }},
        {"fan pressure headroom",
         [](ServerSpec &s, WaxConfig &, double f) {
             s.fanStiffness = std::max(1.1, s.fanStiffness * f);
         }},
        {"nominal airflow",
         [](ServerSpec &s, WaxConfig &, double f) {
             s.nominalFlowM3s *= f;
         }},
        {"chassis thermal mass",
         [](ServerSpec &s, WaxConfig &, double f) {
             s.chassisNode.capacity *= f;
         }},
        {"CPU heatsink conductance",
         [](ServerSpec &s, WaxConfig &, double f) {
             s.cpuNode.ua0 *= f;
         }},
        {"wax heat of fusion",
         [](ServerSpec &, WaxConfig &w, double f) {
             w.material.heatOfFusionJPerG *= f;
         }},
        {"melting temperature (+/- 1C per 10%)",
         [](ServerSpec &s, WaxConfig &, double f) {
             s.defaultMeltTempC += (f - 1.0) * 10.0;
         }},
        {"freeze-side conductance derating",
         [](ServerSpec &, WaxConfig &, double) {
             // Applied through the element after construction; see
             // runSensitivity.  The factor is stored via the name
             // match there.
         }},
    };
}

namespace {

/** Peak reduction for one (spec, wax) pair. */
double
reductionOf(const server::ServerSpec &spec,
            const server::WaxConfig &wax,
            const workload::WorkloadTrace &trace,
            const CoolingConfig &options,
            double freeze_factor_scale)
{
    datacenter::Cluster base(spec, server::WaxConfig::none(),
                             options.run.serverCount);
    auto rb = base.run(trace, options.cluster);

    datacenter::Cluster waxed(spec, wax, options.run.serverCount);
    if (freeze_factor_scale != 1.0 &&
        waxed.representative().hasWax()) {
        auto *el = waxed.representative().wax();
        el->setFreezeConductanceFactor(std::clamp(
            el->freezeConductanceFactor() * freeze_factor_scale,
            0.01, 1.0));
    }
    auto rw = waxed.run(trace, options.cluster);
    return (rb.peakCoolingLoad() - rw.peakCoolingLoad()) /
        rb.peakCoolingLoad();
}

} // namespace

std::vector<SensitivityRow>
runSensitivity(const server::ServerSpec &spec,
               const workload::WorkloadTrace &trace, double delta,
               std::vector<SensitivityParameter> params,
               const CoolingConfig &options, bool reoptimize)
{
    require(delta > 0.0 && delta < 1.0,
            "runSensitivity: delta must be in (0, 1)");
    require(!params.empty(), "runSensitivity: no parameters");

    server::WaxConfig base_wax = server::WaxConfig::paper();
    double nominal =
        reductionOf(spec, base_wax, trace, options, 1.0);

    // One task per (parameter, perturbation side): each runs its
    // perturbed transient (plus the optional local melt re-sweep)
    // independently, so the whole harness fans out across threads
    // with results keyed by task index (tts::exec determinism
    // contract).
    struct Perturbation
    {
        std::size_t param;
        double factor;
    };
    std::vector<Perturbation> tasks;
    tasks.reserve(2 * params.size());
    for (std::size_t p = 0; p < params.size(); ++p) {
        tasks.push_back({p, 1.0 - delta});
        tasks.push_back({p, 1.0 + delta});
    }

    struct SideResult
    {
        double reduction = 0.0;
        double reoptimized = 0.0;
    };
    auto sides = exec::parallel_map(tasks, [&](const Perturbation
                                                   &task) {
        const auto &param = params[task.param];
        bool is_freeze = param.name.rfind("freeze-side", 0) == 0;
        server::ServerSpec s = spec;
        server::WaxConfig w = base_wax;
        double freeze_scale = 1.0;
        if (is_freeze)
            freeze_scale = task.factor;
        else
            param.apply(s, w, task.factor);
        SideResult out;
        out.reduction =
            reductionOf(s, w, trace, options, freeze_scale);

        if (reoptimize) {
            // Coarse local melt sweep on the perturbed substrate:
            // the deployable answer.
            double best = out.reduction;
            for (double dm = -4.0; dm <= 4.0 + 1e-9; dm += 1.0) {
                if (dm == 0.0)
                    continue;
                server::WaxConfig w2 = w;
                w2.meltTempC = std::clamp(
                    s.defaultMeltTempC + dm, 39.0, 60.0);
                best = std::max(
                    best, reductionOf(s, w2, trace, options,
                                      freeze_scale));
            }
            out.reoptimized = best;
        }
        return out;
    });

    std::vector<SensitivityRow> rows;
    for (std::size_t p = 0; p < params.size(); ++p) {
        SensitivityRow row;
        row.name = params[p].name;
        row.reductionNominal = nominal;
        row.reductionLow = sides[2 * p].reduction;
        row.reductionHigh = sides[2 * p + 1].reduction;
        if (reoptimize) {
            row.reoptimizedLow = sides[2 * p].reoptimized;
            row.reoptimizedHigh = sides[2 * p + 1].reoptimized;
        }
        rows.push_back(row);
    }
    return rows;
}

Histogram
spreadHistogram(const std::vector<SensitivityRow> &rows,
                bool reoptimized)
{
    Histogram h({0.005, 0.01, 0.02, 0.05});
    for (const auto &row : rows)
        h.add(reoptimized ? row.reoptimizedSpread() : row.spread());
    return h;
}

} // namespace core
} // namespace tts
