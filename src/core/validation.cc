#include "core/validation.hh"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "pcm/container.hh"
#include "pcm/material.hh"
#include "pcm/pcm_element.hh"
#include "server/server_model.hh"
#include "server/server_spec.hh"
#include "thermal/network.hh"
#include "util/error.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/units.hh"

namespace tts {
namespace core {

namespace {

using server::ServerModel;
using server::ServerSpec;
using server::WaxConfig;

/** The sealed aluminum validation box: ~100 ml interior. */
pcm::BoxSpec
validationBox()
{
    pcm::BoxSpec b;
    b.lengthM = 0.12;   // Along the airflow.
    b.widthM = 0.08;
    b.heightM = 0.014;  // A thin slab, melts from the faces.
    b.fillFraction = 0.9;  // 90 ml wax + 10 ml expansion headspace.
    return b;
}

/** Thermal conductivity of solid paraffin (W/(m K)). */
constexpr double paraffinConductivity = 0.25;

/**
 * Higher-fidelity reference server standing in for the physical
 * RD330: shelled wax, perturbed constants, same power decomposition.
 */
class ReferenceServer
{
  public:
    ReferenceServer(bool with_wax, const ValidationOptions &opt)
        : spec_(server::rd330Spec()),
          probe_(spec_, WaxConfig::none()),
          box_weight_(opt.sensorBoxWeight)
    {
        pcm::BoxSpec box = validationBox();
        bank_.emplace(box, 1, spec_.ductAreaM2);

        thermal::AirflowModel airflow = spec_.makeAirflow();
        airflow.setBlockage(bank_->blockageFraction());
        net_ = std::make_unique<thermal::ServerThermalNetwork>(
            airflow, server::ZoneCount, spec_.inletTempC);

        // Perturb the datasheet constants: the real chassis never
        // matches the model exactly.
        const double d = opt.modelMismatch;
        auto cap = [d](double c, double sign) {
            return c * (1.0 + sign * d);
        };
        double vref = spec_.fans.speedAt(1.0) *
            spec_.nominalVelocity();
        auto coupling = [&](double ua0, double sign) {
            return thermal::ConvectiveCoupling{
                ua0 * (1.0 + sign * 0.6 * d), vref, 0.8};
        };

        double t0 = spec_.inletTempC;
        front_ = net_->addCapacityNode(
            "front", cap(spec_.frontNode.capacity, +1.0),
            coupling(spec_.frontNode.ua0, -1.0), server::ZoneFront,
            t0);
        dram_ = net_->addCapacityNode(
            "dram", cap(spec_.dramNode.capacity, -1.0),
            coupling(spec_.dramNode.ua0, +1.0), server::ZoneDram,
            t0);
        chassis_ = net_->addCapacityNode(
            "chassis", cap(spec_.chassisNode.capacity, +1.0),
            coupling(spec_.chassisNode.ua0, +1.0), server::ZoneDram,
            t0);
        cpu_ = net_->addCapacityNode(
            "cpu", cap(spec_.cpuNode.capacity, -1.0),
            coupling(spec_.cpuNode.ua0, +1.0), server::ZoneCpu, t0);
        psu_ = net_->addCapacityNode(
            "psu", cap(spec_.psuNode.capacity, +1.0),
            coupling(spec_.psuNode.ua0, -1.0), server::ZoneRear, t0);
        net_->addConduction(cpu_, chassis_, 1.0 * (1.0 + d));
        net_->setZonePlumeFraction(server::ZoneCpu,
                                   spec_.cpuZonePlume);
        net_->setZonePlumeFraction(server::ZoneWaxBay,
                                   spec_.waxBayPlume);

        if (with_wax) {
            buildShelledWax(opt);
        } else {
            // Placebo: empty box = shell capacity + air coupling.
            double c = bank_->shellMass() *
                units::aluminumSpecificHeat;
            double v = net_->airflow().velocityAtBlockage();
            thermal::ConvectiveCoupling cc{
                bank_->conductanceAt(v), std::max(v, 0.05), 0.8};
            placebo_node_ = net_->addCapacityNode(
                "placebo", c, cc, server::ZoneWaxBay, t0,
                thermal::VelocityRef::Constriction);
        }
    }

    void
    setLoad(double util)
    {
        probe_.setLoad(util);
        auto copy_power = [&](const char *name, int node) {
            int src = probe_.network().findNode(name);
            invariant(src >= 0, "ReferenceServer: probe node missing");
            net_->setNodePower(node, probe_.network().nodePower(src));
        };
        copy_power("front", front_);
        copy_power("dram", dram_);
        copy_power("chassis", chassis_);
        copy_power("cpu", cpu_);
        copy_power("psu", psu_);
        net_->setDirectAirPower(
            server::ZoneFront,
            probe_.network().directAirPower(server::ZoneFront));
        net_->airflow().setFanSpeed(
            probe_.network().airflow().fanSpeed());
    }

    void advance(double dt) { net_->advance(dt, 1.0); }
    void settle() { net_->solveSteadyState(); }

    /** Temperature the sensor near the box reads (C), noiseless:
     *  a blend of local air and box surface. */
    double
    boxAreaTemp() const
    {
        double air = net_->zoneAirTemp(server::ZoneWaxBay);
        double box = air;
        if (!shells_.empty())
            box = shells_.front()->temperature();
        else if (placebo_node_ >= 0)
            box = net_->nodeTemperature(placebo_node_);
        return (1.0 - box_weight_) * air + box_weight_ * box;
    }

    double
    meltFraction() const
    {
        if (shells_.empty())
            return 0.0;
        double sum = 0.0;
        for (const auto &s : shells_)
            sum += s->meltFraction();
        return sum / static_cast<double>(shells_.size());
    }

  private:
    void
    buildShelledWax(const ValidationOptions &opt)
    {
        // Slice the slab into opt.shells layers through its
        // thickness; the outer layer touches the air, inner layers
        // conduct through solid wax.
        const std::size_t k = std::max<std::size_t>(opt.shells, 1);
        pcm::BoxSpec box = validationBox();
        // The outermost shell keeps the full box exterior (it is the
        // layer the air actually touches) but holds only 1/k of the
        // charge; interior shells are air-decoupled mass slices.
        pcm::BoxSpec outer = box;
        outer.fillFraction = box.fillFraction / static_cast<double>(k);
        pcm::BoxSpec slice = box;
        slice.lengthM = box.lengthM / static_cast<double>(k);
        pcm::Material wax_mat = pcm::commercialParaffin();
        int prev = -1;
        for (std::size_t i = 0; i < k; ++i) {
            shell_banks_.push_back(pcm::ContainerBank(
                i == 0 ? outer : slice, 1, spec_.ductAreaM2));
            shells_.push_back(std::make_unique<pcm::PcmElement>(
                wax_mat, shell_banks_.back(), opt.meltTempC,
                spec_.inletTempC, 2.0));
            // The explicit shell chain already models the insulating
            // solid layer; do not derate the release path twice.
            shells_.back()->setFreezeConductanceFactor(1.0);
            int node = net_->addPcmNode(
                "wax_shell_" + std::to_string(i),
                shells_.back().get(), server::ZoneWaxBay,
                /*air_coupled=*/i == 0);
            if (prev >= 0) {
                // Conduction between adjacent layers of the slab.
                double area = 2.0 * box.lengthM * box.widthM;
                double dx = box.heightM / static_cast<double>(k);
                double g = paraffinConductivity * area / dx;
                net_->addConduction(prev, node, g);
            }
            prev = node;
        }
    }

    ServerSpec spec_;
    ServerModel probe_;
    std::optional<pcm::ContainerBank> bank_;
    std::vector<pcm::ContainerBank> shell_banks_;
    std::vector<std::unique_ptr<pcm::PcmElement>> shells_;
    std::unique_ptr<thermal::ServerThermalNetwork> net_;
    int front_ = -1, dram_ = -1, chassis_ = -1, cpu_ = -1, psu_ = -1;
    int placebo_node_ = -1;
    double box_weight_;
};

/** Production (coarse) model with the validation box. */
ServerModel
makeProductionModel(bool with_wax, const ValidationOptions &opt)
{
    WaxConfig cfg;
    cfg.mode = with_wax ? WaxConfig::Mode::Wax
                        : WaxConfig::Mode::Placebo;
    cfg.meltTempC = opt.meltTempC;
    cfg.boxCount = 1;
    cfg.explicitBox = validationBox();
    return ServerModel(server::rd330Spec(), cfg);
}

} // namespace

ValidationResult
runValidation(const ValidationOptions &options)
{
    require(options.shells >= 1, "runValidation: need >= 1 shell");
    Rng noise(options.seed);

    ReferenceServer real_wax(true, options);
    ReferenceServer real_placebo(false, options);
    ServerModel model_wax = makeProductionModel(true, options);
    ServerModel model_placebo = makeProductionModel(false, options);

    ValidationResult out;
    out.realWax.setName("real_wax");
    out.realPlacebo.setName("real_placebo");
    out.modelWax.setName("icepak_wax");
    out.modelPlacebo.setName("icepak_placebo");
    out.realMelt.setName("real_melt");
    out.modelMelt.setName("model_melt");

    // Everything starts settled at idle (the paper idles first).
    real_wax.setLoad(0.0);
    real_wax.settle();
    real_placebo.setLoad(0.0);
    real_placebo.settle();
    model_wax.setLoad(0.0);
    model_wax.solveSteadyState();
    model_placebo.setLoad(0.0);
    model_placebo.solveSteadyState();

    const double t_load_start = units::hours(options.idleHoursBefore);
    const double t_load_end =
        t_load_start + units::hours(options.loadHours);
    const double t_end =
        t_load_end + units::hours(options.idleHoursAfter);

    for (double t = 0.0; t <= t_end;
         t += options.sampleIntervalS) {
        double util = (t >= t_load_start && t < t_load_end)
            ? 1.0 : 0.0;
        real_wax.setLoad(util);
        real_placebo.setLoad(util);
        model_wax.setLoad(util);
        model_placebo.setLoad(util);

        auto model_sensor = [&](ServerModel &m) {
            double air = m.waxBayAirTemp();
            double box = m.hasBay() ? m.bayNodeTemp() : air;
            return (1.0 - options.sensorBoxWeight) * air +
                options.sensorBoxWeight * box;
        };
        out.realWax.append(
            t, real_wax.boxAreaTemp() +
                   noise.normal(0.0, options.sensorNoiseC));
        out.realPlacebo.append(
            t, real_placebo.boxAreaTemp() +
                   noise.normal(0.0, options.sensorNoiseC));
        out.modelWax.append(t, model_sensor(model_wax));
        out.modelPlacebo.append(t, model_sensor(model_placebo));
        out.realMelt.append(t, real_wax.meltFraction());
        out.modelMelt.append(t, model_wax.waxMeltFraction());

        if (t < t_end) {
            double dt = std::min(options.sampleIntervalS, t_end - t);
            real_wax.advance(dt);
            real_placebo.advance(dt);
            model_wax.advance(dt, 1.0);
            model_placebo.advance(dt, 1.0);
        }
    }

    // Steady-state metric: the back half of the load phase (the
    // paper uses hours 6-12 of its 12 h load).
    std::vector<double> real_ss, model_ss, realp_ss, modelp_ss;
    double ss_begin =
        t_load_start + 0.5 * (t_load_end - t_load_start);
    for (std::size_t i = 0; i < out.realWax.size(); ++i) {
        double t = out.realWax.times()[i];
        if (t >= ss_begin && t <= t_load_end) {
            real_ss.push_back(out.realWax.values()[i]);
            model_ss.push_back(out.modelWax.values()[i]);
            realp_ss.push_back(out.realPlacebo.values()[i]);
            modelp_ss.push_back(out.modelPlacebo.values()[i]);
        }
    }
    out.steadyStateMeanDiffC =
        meanAbsoluteDifference(real_ss, model_ss);
    out.steadyStatePlaceboDiffC =
        meanAbsoluteDifference(realp_ss, modelp_ss);
    out.traceCorrelation = pearsonCorrelation(
        out.realWax.values(), out.modelWax.values());

    // Wall power and package temperature checks (Section 3 text).
    model_placebo.setLoad(0.0);
    out.idleWallW = model_placebo.wallPower();
    model_placebo.solveSteadyState();
    out.idlePackageC = model_placebo.cpuJunctionTemp();
    model_placebo.setLoad(1.0);
    out.loadWallW = model_placebo.wallPower();
    model_placebo.solveSteadyState();
    out.loadPackageC = model_placebo.cpuJunctionTemp();

    // Wax effect windows on the reference traces.
    auto effect_hours = [&](double from, double to, bool cooling) {
        double total = 0.0;
        for (std::size_t i = 1; i < out.realWax.size(); ++i) {
            double t = out.realWax.times()[i];
            if (t <= from || t > to)
                continue;
            double diff = out.realPlacebo.values()[i] -
                out.realWax.values()[i];
            if (!cooling)
                diff = -diff;
            if (diff > 0.3)
                total += out.realWax.times()[i] -
                    out.realWax.times()[i - 1];
        }
        return units::toHours(total);
    };
    out.waxCoolingEffectHours =
        effect_hours(t_load_start, t_load_end, true);
    out.waxWarmingEffectHours =
        effect_hours(t_load_end, t_end, false);
    return out;
}

} // namespace core
} // namespace tts
