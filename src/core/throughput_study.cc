#include "core/throughput_study.hh"

#include <algorithm>
#include <cmath>

#include "exec/parallel.hh"
#include "util/error.hh"
#include "util/units.hh"

namespace tts {
namespace core {

namespace {

/**
 * Predicted per-server cooling load at an operating point: wall
 * power minus the instantaneous wax absorption the air walk implies
 * for the server's current thermal state.  The air temperatures are
 * algebraic in the network, so calling setLoad() and reading them
 * back is an exact one-step prediction.
 */
double
predictedCoolingLoad(server::ServerModel &m, double util, double freq)
{
    m.setLoad(util, freq);
    double wall = m.wallPower();
    double absorb = 0.0;
    if (m.hasWax()) {
        double bay_air = m.waxBayAirTemp();
        double v = m.network().airflow().velocityAtBlockage();
        absorb = m.wax()->heatFlowFromAir(bay_air, v);
    }
    return wall - std::max(absorb, 0.0);
}

/** Governor: pick (util, freq) maximizing throughput within budget. */
struct OpPoint
{
    double util;
    double freq;
};

OpPoint
govern(server::ServerModel &m, double demand_util, double budget_w)
{
    const auto &cpu = m.spec().cpu;
    double f_nom = cpu.nominalFreqGHz;
    double f_min = cpu.minFreqGHz;

    if (predictedCoolingLoad(m, demand_util, f_nom) <= budget_w)
        return {demand_util, f_nom};

    // Reduce frequency first (the paper's downclocking), then shed
    // utilization (job relocation).
    if (predictedCoolingLoad(m, demand_util, f_min) <= budget_w) {
        double lo = f_min, hi = f_nom;
        for (int i = 0; i < 40; ++i) {
            double mid = 0.5 * (lo + hi);
            if (predictedCoolingLoad(m, demand_util, mid) <= budget_w)
                lo = mid;
            else
                hi = mid;
        }
        return {demand_util, lo};
    }

    double lo = 0.0, hi = demand_util;
    for (int i = 0; i < 40; ++i) {
        double mid = 0.5 * (lo + hi);
        if (predictedCoolingLoad(m, mid, f_min) <= budget_w)
            lo = mid;
        else
            hi = mid;
    }
    return {lo, f_min};
}

/** One governed cluster transient. */
struct GovernedRun
{
    TimeSeries throughput{"throughput"};
    TimeSeries coolingW{"cooling_w"};
    TimeSeries freq{"freq_ghz"};
    TimeSeries melt{"melt"};
    /** First recorded time the governor had to throttle (s); < 0 if
     *  it never throttled. */
    double firstThrottle = -1.0;
};

GovernedRun
runGoverned(server::ServerModel &m,
            const workload::WorkloadTrace &trace,
            double budget_per_server_w, double n_servers,
            const ThroughputConfig &opt)
{
    const double t0 = trace.startTime();
    const double t1 = trace.endTime();
    const double f0 = m.spec().cpu.nominalFreqGHz;

    auto step_once = [&](double t, double dt, GovernedRun *rec) {
        double demand = std::clamp(trace.totalAt(t), 0.0, 1.0);
        OpPoint op = govern(m, demand, budget_per_server_w);
        m.setLoad(op.util, op.freq);
        if (rec) {
            // A "thermal limit onset" is a sustained throughput
            // deficit (> 2 %), not the transient blip while the wax
            // plateau engages.
            double actual = op.util * op.freq / f0;
            double deficit = demand > 0.0
                ? 1.0 - actual / demand : 0.0;
            bool throttled = deficit > 0.02;
            if (throttled && rec->firstThrottle < 0.0)
                rec->firstThrottle = t;
            rec->throughput.append(t, m.throughput());
            rec->coolingW.append(t, n_servers * m.coolingLoad());
            rec->freq.append(t, op.freq);
            rec->melt.append(
                t, m.hasWax() ? m.waxMeltFraction() : 0.0);
        }
        m.advance(dt, opt.thermalStepS);
    };

    double warm_span = std::min(86400.0, t1 - t0);
    for (int d = 0; d < opt.warmupDays; ++d) {
        for (double t = t0; t < t0 + warm_span;
             t += opt.controlIntervalS) {
            double dt = std::min(opt.controlIntervalS,
                                 t0 + warm_span - t);
            step_once(t, dt, nullptr);
        }
    }

    GovernedRun rec;
    for (double t = t0; t < t1; t += opt.controlIntervalS) {
        double dt = std::min(opt.controlIntervalS, t1 - t);
        step_once(t, dt, &rec);
    }
    return rec;
}

} // namespace

double
calibratedCapacityFraction(const server::ServerSpec &spec)
{
    // Calibrated so the study reproduces the paper's Figure 12
    // gains; see EXPERIMENTS.md.  The 2U facility is the most deeply
    // oversubscribed (largest gain), matching the paper's narrative
    // of dense replacement servers outgrowing the old plant.
    if (spec.name.find("2U") != std::string::npos)
        return 0.611;
    if (spec.name.find("Open Compute") != std::string::npos)
        return 0.74;
    return 0.74;   // 1U low power.
}

ThroughputStudyResult
runThroughputStudy(const server::ServerSpec &spec,
                   const workload::WorkloadTrace &trace,
                   const ThroughputConfig &options)
{
    require(options.run.serverCount >= 1,
            "runThroughputStudy: need servers");
    require(options.coolingCapacityFraction > 0.0 &&
            options.coolingCapacityFraction <= 1.0,
            "runThroughputStudy: capacity fraction in (0, 1]");

    const double n = static_cast<double>(options.run.serverCount);

    // Plant capacity: a fraction of the full-tilt cluster heat.
    server::ServerModel probe(spec, server::WaxConfig::none());
    probe.setLoad(1.0);
    double peak_wall = probe.wallPower();
    double capacity = options.coolingCapacityFraction * peak_wall * n;
    double budget_per_server = capacity / n;

    ThroughputStudyResult out;
    out.capacityW = capacity;

    // The no-wax governed run and the placebo melt-selection probe
    // below are independent transients; run them as a two-task
    // region.  The waxed run must wait for the probe (it needs the
    // melting point), so it stays after the join.
    GovernedRun base;
    double melt = options.run.meltTempC;
    exec::parallel_for_index(2, [&](std::size_t task) {
        if (task == 0) {
            // No-wax governed run.
            server::ServerModel no_wax(spec,
                                       server::WaxConfig::none());
            base = runGoverned(no_wax, trace, budget_per_server, n,
                               options);
            return;
        }
        // Wax melting point for the constrained regime: a throttled
        // cluster runs cooler than an unconstrained one, so the
        // melting temperature must sit just below the wax-bay
        // temperature at the budget-binding operating point
        // (measured on a placebo server for blockage parity).  The
        // wax then melts exactly when the cluster pushes against the
        // plant capacity.
        if (melt > 0.0)
            return;
        // Govern a placebo server (blockage parity, no latent heat)
        // through one trace day and find the hottest wax-bay state
        // reachable without wax.  The melting point sits just BELOW
        // it: the wax plateau is then active exactly while the plant
        // capacity binds, and with a supercritical coupling
        // (UA * dT_bay/dP_wall > 1) the wax pins the bay temperature,
        // letting the governor hold full clocks until saturation.
        server::ServerModel capped(spec,
                                   server::WaxConfig::placebo());
        double t0 = trace.startTime();
        double span = std::min(86400.0, trace.endTime() - t0);
        double max_bay = -1e9;
        for (double t = t0; t < t0 + span;
             t += options.controlIntervalS) {
            double demand = std::clamp(trace.totalAt(t), 0.0, 1.0);
            OpPoint op = govern(capped, demand, budget_per_server);
            capped.setLoad(op.util, op.freq);
            capped.advance(std::min(options.controlIntervalS,
                                    t0 + span - t),
                           options.thermalStepS);
            max_bay = std::max(max_bay, capped.waxBayAirTemp());
        }
        melt = max_bay - 0.3;
        pcm::Material mat = pcm::commercialParaffin();
        melt = std::clamp(melt, mat.meltingTempMinC,
                          mat.meltingTempMaxC);
    });

    // Waxed governed run.
    out.meltTempC = melt;
    server::WaxConfig wax = server::WaxConfig::withMeltTemp(melt);
    server::ServerModel waxed(spec, wax);
    GovernedRun with = runGoverned(waxed, trace, budget_per_server,
                                   n, options);

    // Normalize to the no-wax peak (the paper's convention).
    double norm = base.throughput.max();
    require(norm > 0.0, "runThroughputStudy: no-wax cluster "
            "delivered zero throughput");
    out.normalization = norm;

    out.ideal.setName("ideal");
    for (std::size_t i = 0; i < base.throughput.size(); ++i) {
        double t = base.throughput.times()[i];
        double demand = std::clamp(trace.totalAt(t), 0.0, 1.0);
        out.ideal.append(t, demand / norm);
    }
    out.noWax = base.throughput.scaled(1.0 / norm);
    out.noWax.setName("no_wax");
    out.withWax = with.throughput.scaled(1.0 / norm);
    out.withWax.setName("with_wax");
    out.noWaxCoolingW = base.coolingW;
    out.withWaxCoolingW = with.coolingW;
    out.noWaxFreq = base.freq;
    out.withWaxFreq = with.freq;
    out.waxMelt = with.melt;

    out.peakIdeal = out.ideal.max();
    out.peakNoWax = 1.0;
    out.peakWithWax = out.withWax.max();

    // Work denied by the limit: integral of (ideal - delivered)
    // over demanded work.
    auto denied = [&](const TimeSeries &delivered) {
        auto deficit = TimeSeries::combine(
            out.ideal, delivered,
            [](double i, double d) { return std::max(i - d, 0.0); },
            "deficit");
        double demand = out.ideal.integral(out.ideal.startTime(),
                                           out.ideal.endTime());
        return demand > 0.0
            ? deficit.integral(deficit.startTime(),
                               deficit.endTime()) / demand
            : 0.0;
    };
    out.deniedWorkFractionNoWax = denied(out.noWax);
    out.deniedWorkFractionWithWax = denied(out.withWax);

    if (base.firstThrottle >= 0.0) {
        double wax_onset = with.firstThrottle >= 0.0
            ? with.firstThrottle
            : trace.endTime();
        out.delayHours =
            units::toHours(wax_onset - base.firstThrottle);
    }
    return out;
}

} // namespace core
} // namespace tts
