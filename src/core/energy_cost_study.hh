/**
 * @file
 * Cooling energy-cost study: what thermal time shifting is worth in
 * OpEx, not just in plant capital.
 *
 * Figure 1 of the paper lists two "additional advantages" of pushing
 * the thermal load off-peak that Section 5 never prices out:
 * electricity is cheaper at night ($0.13 vs. $0.08 per kWh in the
 * paper's own TCO assumptions), and night air is colder, so an
 * economizer removes each joule more cheaply.  This study runs the
 * Section 5.1 cooling loads through the time-of-use tariff and the
 * economizer plant model and reports the yearly OpEx delta.
 */

#ifndef TTS_CORE_ENERGY_COST_STUDY_HH
#define TTS_CORE_ENERGY_COST_STUDY_HH

#include "core/cooling_study.hh"
#include "datacenter/cooling_system.hh"
#include "datacenter/free_cooling.hh"

namespace tts {
namespace core {

/** Options for the energy-cost study. */
struct EnergyCostOptions
{
    /** Time-of-use tariff (paper: 0.13 / 0.08 $/kWh). */
    datacenter::ElectricityTariff tariff;
    /** Diurnal ambient for the economizer scenario. */
    datacenter::AmbientModel ambient;
    /** Economizer-equipped plant. */
    datacenter::EconomizerCoolingModel economizer;
    /** Flat-COP plant for the baseline scenario. */
    double flatCop = 3.5;
    /** Facility scale: clusters of 1008 made whole-facility. */
    std::size_t clusters = 50;

    /** Hot-water loop capture effectiveness, in (0, 1]. */
    double hwEffectiveness = 0.75;
    /** COP removing the heat the hot-water loop cannot capture. */
    double hwMechanicalCop = 3.5;
    /** Loop pump electric power as a fraction of the heat load. */
    double hwPumpFraction = 0.02;
    /** Credit for captured reusable heat (USD/kWh thermal). */
    double hwReusePricePerKWh = 0.03;
};

/** Energy costs for one platform (USD per year, whole facility). */
struct EnergyCostResult
{
    /** Flat-COP plant, tariff priced: no wax. */
    double flatCostNoWax = 0.0;
    /** Flat-COP plant, tariff priced: with wax. */
    double flatCostWithWax = 0.0;
    /** Economizer plant, tariff priced: no wax. */
    double economizerCostNoWax = 0.0;
    /** Economizer plant, tariff priced: with wax. */
    double economizerCostWithWax = 0.0;
    /** Hot-water plant, net of the reuse credit: no wax. */
    double hotWaterCostNoWax = 0.0;
    /** Hot-water plant, net of the reuse credit: with wax. */
    double hotWaterCostWithWax = 0.0;
    /** Yearly reuse credit of the no-wax hot-water plant (USD). */
    double hotWaterReuseCreditNoWax = 0.0;

    /** @return Yearly OpEx saving with a flat-COP plant (USD). */
    double flatSaving() const
    {
        return flatCostNoWax - flatCostWithWax;
    }
    /** @return Yearly OpEx saving with the economizer (USD). */
    double economizerSaving() const
    {
        return economizerCostNoWax - economizerCostWithWax;
    }
    /** @return Yearly OpEx saving on the hot-water plant (USD). */
    double hotWaterSaving() const
    {
        return hotWaterCostNoWax - hotWaterCostWithWax;
    }
};

/**
 * Price the cooling energy of an already-run cooling study.
 *
 * @param study   Section 5.1 result (baseline + wax cluster loads).
 * @param options Tariff, ambient, and plant models.
 */
EnergyCostResult priceCoolingEnergy(
    const CoolingStudyResult &study,
    const EnergyCostOptions &options = EnergyCostOptions{});

} // namespace core
} // namespace tts

#endif // TTS_CORE_ENERGY_COST_STUDY_HH
