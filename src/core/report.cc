#include "core/report.hh"

#include <fstream>

#include "util/error.hh"
#include "util/table.hh"
#include "util/units.hh"

namespace tts {
namespace core {

void
writeSeriesCsv(const std::string &path,
               const std::vector<const TimeSeries *> &series,
               double dt)
{
    require(!series.empty(), "writeSeriesCsv: no series");
    require(dt > 0.0, "writeSeriesCsv: dt must be > 0");
    for (const auto *s : series)
        require(s && !s->empty(), "writeSeriesCsv: empty series");

    std::ofstream out(path);
    require(out.good(),
            "writeSeriesCsv: cannot open '" + path + "'");

    std::vector<std::string> headers{"t_hours"};
    for (const auto *s : series)
        headers.push_back(s->name().empty() ? "series"
                                            : s->name());
    CsvWriter csv(out, headers);
    double t0 = series[0]->startTime();
    double t1 = series[0]->endTime();
    for (double t = t0; t <= t1 + 1e-9; t += dt) {
        std::vector<double> row{units::toHours(t)};
        for (const auto *s : series)
            row.push_back(s->at(t));
        csv.writeRow(row);
    }
}

void
writePlatformStudyReport(const std::string &dir,
                         const PlatformStudy &study)
{
    writeSeriesCsv(dir + "/fig11_cooling_load.csv",
                   {&study.cooling.baseline.coolingLoadW,
                    &study.cooling.withWax.coolingLoadW});
    writeSeriesCsv(dir + "/fig12_throughput.csv",
                   {&study.throughput.ideal,
                    &study.throughput.noWax,
                    &study.throughput.withWax});
    writeSeriesCsv(dir + "/wax_state.csv",
                   {&study.cooling.withWax.waxMeltFraction,
                    &study.cooling.withWax.waxStoredJ});

    std::ofstream md(dir + "/summary.md");
    require(md.good(), "writePlatformStudyReport: cannot open "
            "summary.md in '" + dir + "'");
    md << "# Platform study: " << study.spec.name << "\n\n";
    md << "| quantity | value |\n|---|---|\n";
    md << "| melting temperature | "
       << formatFixed(study.meltTempC, 1) << " C |\n";
    md << "| peak cooling load (baseline) | "
       << formatFixed(study.cooling.peakBaselineW / 1e3, 1)
       << " kW |\n";
    md << "| peak cooling load (PCM) | "
       << formatFixed(study.cooling.peakWithWaxW / 1e3, 1)
       << " kW |\n";
    md << "| peak cooling reduction | "
       << formatFixed(100.0 * study.cooling.peakReduction(), 2)
       << " % |\n";
    md << "| smaller-plant savings | $"
       << formatFixed(study.plan.smallerPlantSavingsPerYear, 0)
       << " / year |\n";
    md << "| extra servers | "
       << study.plan.extraServers << " ("
       << formatFixed(100.0 * study.plan.extraServerFraction, 1)
       << " %) |\n";
    md << "| retrofit savings | $"
       << formatFixed(study.plan.retrofitSavingsPerYear, 0)
       << " / year |\n";
    md << "| constrained throughput gain | "
       << formatFixed(
              100.0 * study.throughput.throughputGain(), 1)
       << " % |\n";
    md << "| thermal-limit delay | "
       << formatFixed(study.throughput.delayHours, 1)
       << " h |\n";
    md << "| TCO efficiency gain | "
       << formatFixed(100.0 * study.tcoEfficiencyGain, 1)
       << " % |\n";
}

} // namespace core
} // namespace tts
