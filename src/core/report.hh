/**
 * @file
 * Result export: CSV series files and a markdown summary for a full
 * platform study.
 *
 * The bench binaries print human-readable tables; this module writes
 * the same data as machine-readable artifacts so the figures can be
 * re-plotted (gnuplot/matplotlib) without re-running the simulator.
 */

#ifndef TTS_CORE_REPORT_HH
#define TTS_CORE_REPORT_HH

#include <string>
#include <vector>

#include "core/thermal_time_shifting.hh"
#include "util/time_series.hh"

namespace tts {
namespace core {

/**
 * Write several series, resampled onto a shared uniform grid, as one
 * CSV file with a leading time-in-hours column.
 *
 * @param path   Output file path.
 * @param series Series to write; all must be non-empty.  The grid
 *               spans the first series' time range.
 * @param dt     Grid step (s).
 * @throws FatalError if the file cannot be opened or the series are
 *         empty.
 */
void writeSeriesCsv(const std::string &path,
                    const std::vector<const TimeSeries *> &series,
                    double dt = 900.0);

/**
 * Write a full platform study to a directory:
 *
 *   <dir>/fig11_cooling_load.csv   baseline vs. PCM cooling load
 *   <dir>/fig12_throughput.csv     ideal / no-wax / with-wax
 *   <dir>/wax_state.csv            melt fraction + stored energy
 *   <dir>/summary.md               headline numbers
 *
 * @param dir   Existing directory to write into.
 * @param study A completed runPlatformStudy result.
 */
void writePlatformStudyReport(const std::string &dir,
                              const PlatformStudy &study);

} // namespace core
} // namespace tts

#endif // TTS_CORE_REPORT_HH
