#include "core/outage_study.hh"

#include <algorithm>

#include "util/error.hh"

namespace tts {
namespace core {

namespace {

OutageTrajectory
runScenario(const server::ServerSpec &spec,
            const server::WaxConfig &wax,
            const OutageConfig &opt)
{
    server::ServerModel srv(spec, wax);
    datacenter::RoomModel room(opt.room);
    const double n = static_cast<double>(opt.run.serverCount);

    // Pre-outage steady state: plant removes exactly the IT heat,
    // room at the setpoint.
    srv.network().setInletTemp(opt.room.setpointC);
    srv.setLoad(opt.run.utilization);
    srv.solveSteadyState();

    OutageTrajectory out;
    out.roomAirC.setName("room_air_c");
    out.waxMelt.setName("wax_melt");

    double t = 0.0;
    out.roomAirC.append(t, room.airTemp());
    out.waxMelt.append(t, srv.hasWax() ? srv.waxMeltFraction()
                                       : 0.0);
    while (t < opt.maxDurationS) {
        // Servers breathe the room air.
        srv.network().setInletTemp(room.airTemp());
        srv.advance(opt.stepS, opt.stepS);
        double rejected = n * srv.coolingLoad();
        double removed =
            opt.residualCoolingFraction * rejected;
        room.step(opt.stepS, rejected, removed);
        t += opt.stepS;
        out.roomAirC.append(t, room.airTemp());
        out.waxMelt.append(
            t, srv.hasWax() ? srv.waxMeltFraction() : 0.0);
        if (room.overLimit()) {
            out.hitLimit = true;
            break;
        }
    }
    // hitLimit is authoritative: censored runs report exactly the
    // horizon (the loop can overshoot it by a partial step when
    // maxDurationS is not a step multiple).
    out.rideThroughS = out.hitLimit ? t : opt.maxDurationS;
    return out;
}

} // namespace

OutageStudyResult
runOutageStudy(const server::ServerSpec &spec,
               const OutageConfig &options)
{
    require(options.run.serverCount >= 1,
            "runOutageStudy: need at least one server");
    require(options.run.utilization >= 0.0 &&
            options.run.utilization <= 1.0,
            "runOutageStudy: utilization must be in [0, 1]");
    require(options.residualCoolingFraction >= 0.0 &&
            options.residualCoolingFraction < 1.0,
            "runOutageStudy: residual fraction must be in [0, 1)");
    require(options.stepS > 0.0 && options.maxDurationS > 0.0,
            "runOutageStudy: bad step or horizon");

    OutageStudyResult out;
    out.noWax = runScenario(spec, server::WaxConfig::placebo(),
                            options);

    server::WaxConfig wax = options.run.meltTempC > 0.0
        ? server::WaxConfig::withMeltTemp(options.run.meltTempC)
        : server::WaxConfig::paper();
    out.withWax = runScenario(spec, wax, options);
    return out;
}

} // namespace core
} // namespace tts
