/**
 * @file
 * Model validation harness (Section 3 / Figure 4 of the paper).
 *
 * The paper validates its Icepak server model against a real Lenovo
 * RD330 carrying 90 ml (70 g) of paraffin in a sealed aluminum box
 * downwind of CPU 1, plus an air-filled placebo box, through a
 * 1 h idle / 12 h load / 12 h idle schedule.  We cannot run the
 * physical server, so the "real server" here is a higher-fidelity
 * reference model: the wax charge is discretized into conduction-
 * coupled shells (capturing the conduction-limited melt front the
 * lumped model ignores), the thermal constants are independently
 * perturbed (reality never matches the datasheet), and the reported
 * sensor samples carry TEMPer-class Gaussian noise.  The production
 * (coarse, lumped) model is then validated against this reference
 * with the paper's own metrics: transient traces while heating and
 * cooling, and the mean steady-state difference (the paper reports
 * 0.22 C).
 */

#ifndef TTS_CORE_VALIDATION_HH
#define TTS_CORE_VALIDATION_HH

#include <cstdint>

#include "util/time_series.hh"

namespace tts {
namespace core {

/** Validation run options. */
struct ValidationOptions
{
    /** Wax charge volume (ml); the paper uses 90 ml (70 g). */
    double waxMilliliters = 90.0;
    /** Measured melting temperature of the purchased wax (C). */
    double meltTempC = 39.0;
    /** Shells in the reference discretization. */
    std::size_t shells = 6;
    /** Relative perturbation of reference thermal constants. */
    double modelMismatch = 0.05;
    /** Idle time before loading (h). */
    double idleHoursBefore = 1.0;
    /** Heavy-load duration (h); one h264 per logical thread. */
    double loadHours = 12.0;
    /** Idle cool-down duration (h). */
    double idleHoursAfter = 12.0;
    /** Sensor sampling interval (s). */
    double sampleIntervalS = 120.0;
    /** Sensor noise sigma (C). */
    double sensorNoiseC = 0.15;
    /**
     * Weight of the box surface temperature in the sensor reading;
     * the paper's TEMPer probes sat against the box, so they read a
     * blend of local air and box surface.
     */
    double sensorBoxWeight = 0.45;
    /** Noise seed. */
    std::uint64_t seed = 42;
};

/** Validation outputs (Figure 4 a/b/c). */
struct ValidationResult
{
    /** Reference ("real") server, wax box: temp near the box (C). */
    TimeSeries realWax;
    /** Reference server, placebo box. */
    TimeSeries realPlacebo;
    /** Production model, wax box. */
    TimeSeries modelWax;
    /** Production model, placebo box. */
    TimeSeries modelPlacebo;
    /** Reference wax melt fraction. */
    TimeSeries realMelt;
    /** Production-model wax melt fraction. */
    TimeSeries modelMelt;

    /** Mean |real - model| near the box over loaded steady state
     *  (hours 6-12 of the load phase), wax configuration (C). */
    double steadyStateMeanDiffC = 0.0;
    /** Same for the placebo configuration (C). */
    double steadyStatePlaceboDiffC = 0.0;
    /** Pearson correlation of the full wax traces. */
    double traceCorrelation = 0.0;

    /** Modeled wall power at idle / load (W); the paper measures
     *  90 W and 185 W. */
    double idleWallW = 0.0;
    double loadWallW = 0.0;
    /** Modeled package temperature at idle / load (C); the paper
     *  measures 42 C and 76 C. */
    double idlePackageC = 0.0;
    double loadPackageC = 0.0;

    /** Hours (during heat-up) the wax keeps the nearby air below
     *  the placebo trace by more than 0.3 C. */
    double waxCoolingEffectHours = 0.0;
    /** Hours (during cool-down) the wax keeps it above placebo. */
    double waxWarmingEffectHours = 0.0;
};

/**
 * Run the Figure 4 validation experiment.
 */
ValidationResult runValidation(
    const ValidationOptions &options = ValidationOptions{});

} // namespace core
} // namespace tts

#endif // TTS_CORE_VALIDATION_HH
