/**
 * @file
 * Unified run configuration shared by every study.
 *
 * Four subsystem PRs accreted near-identical per-study option
 * structs (server count, melting temperature, utilization, obs
 * sinks, checkpoint policy duplicated in each).  RunConfig is the
 * single home for those shared knobs; the per-study config structs
 * embed one and keep only the fields that are genuinely their own
 * (room model, governor cadence, fault cluster sample, ...).
 *
 * StudyContext bundles the remaining per-run inputs - platform spec,
 * workload trace, RunConfig - plus the obs sink lifecycle, so a tool
 * or bench sets up a run in one place:
 *
 * @code
 *   core::RunConfig run;
 *   run.meltTempC = 45.0;
 *   core::StudyContext ctx(server::rd330Spec(), trace, run);
 *   ctx.beginObs();
 *   auto r = core::runCoolingStudy(ctx.spec(), ctx.trace(), {run});
 *   ctx.finishObs();
 * @endcode
 */

#ifndef TTS_CORE_RUN_CONFIG_HH
#define TTS_CORE_RUN_CONFIG_HH

#include <cstddef>
#include <string>

#include "plant/options.hh"
#include "server/server_model.hh"
#include "server/server_spec.hh"
#include "workload/trace.hh"

namespace tts {
namespace core {

/** Observability output sinks; empty paths disable collection. */
struct ObsSinks
{
    /** Metrics registry dump (kv-json) written after the run. */
    std::string metricsPath;
    /** Structured event trace written after the run. */
    std::string tracePath;
    /** Trace format: "jsonl" or "chrome". */
    std::string traceFormat = "jsonl";

    /** @return True when any sink is configured. */
    bool any() const
    {
        return !metricsPath.empty() || !tracePath.empty();
    }
};

/** Checkpoint/resume policy for long runs (shared via RunConfig). */
struct CheckpointPolicy
{
    /**
     * Checkpoint file path; empty disables checkpointing.  When the
     * file exists, the run restores from it and continues instead of
     * starting over.
     */
    std::string path;
    /** Simulated seconds between checkpoint writes. */
    double checkpointEveryS = 900.0;
    /**
     * Pause the run after advancing this much simulated time in this
     * call (a final checkpoint is written first); < 0 runs to
     * completion.  Test hook simulating a killed process.
     */
    double stopAfterS = -1.0;
};

/** The shared study knobs.  Per-study configs embed one as `run`. */
struct RunConfig
{
    /** Cluster / room population. */
    std::size_t serverCount = 1008;
    /** Utilization where the study holds one (outage ride-through). */
    double utilization = 0.75;
    /** Melting temperature (C); <= 0 uses the platform default. */
    double meltTempC = 0.0;
    /** Melt window width (C); see server::WaxConfig::meltWindowC. */
    double meltWindowC = 0.5;
    /** Wax charge per server (liters); <= 0 uses the platform
     *  default deployment (the paper's liters). */
    double waxLiters = 0.0;
    /** Observability sinks (tools; studies never read these). */
    ObsSinks obs;
    /** Checkpoint policy (resilience runner; others ignore it). */
    CheckpointPolicy checkpoint;
    /** Cooling-plant backend selection (default: CRAC adapter,
     *  which prices exactly like datacenter::CoolingSystem). */
    plant::PlantOptions plant;

    /** @return meltTempC resolved against the platform default. */
    double meltTempFor(const server::ServerSpec &spec) const
    {
        return meltTempC > 0.0 ? meltTempC : spec.defaultMeltTempC;
    }

    /**
     * @return The paper's wax deployment at this config's melting
     * point and window.  When meltTempC <= 0 the melting point is
     * left at the WaxConfig default (resolved to the platform
     * default by ServerModel).
     */
    server::WaxConfig waxConfig() const;
};

/**
 * Platform + trace + RunConfig for one run, with the obs sink
 * lifecycle the tools previously hand-rolled.
 */
class StudyContext
{
  public:
    StudyContext(server::ServerSpec spec,
                 workload::WorkloadTrace trace,
                 RunConfig run = RunConfig{});

    /** @return The platform. */
    const server::ServerSpec &spec() const { return spec_; }
    /** @return The workload trace. */
    const workload::WorkloadTrace &trace() const { return trace_; }
    /** @return The shared run knobs. */
    const RunConfig &run() const { return run_; }
    /** @return Mutable run knobs (setup phase). */
    RunConfig &run() { return run_; }

    /** @return run().waxConfig(). */
    server::WaxConfig waxConfig() const { return run_.waxConfig(); }

    /** @return True when an obs sink is configured. */
    bool obsRequested() const { return run_.obs.any(); }

    /**
     * Enable obs collection when a sink is configured (no-op
     * otherwise).  Call before the study.
     */
    void beginObs() const;

    /**
     * Write the configured metrics/trace files and disable
     * collection.  Call after the study; no-op when beginObs() did
     * nothing.
     *
     * @throws tts::Error on an unwritable sink path or a bad
     *         traceFormat value.
     */
    void finishObs() const;

  private:
    server::ServerSpec spec_;
    workload::WorkloadTrace trace_;
    RunConfig run_;
};

} // namespace core
} // namespace tts

#endif // TTS_CORE_RUN_CONFIG_HH
