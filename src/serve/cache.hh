/**
 * @file
 * Result cache for the scenario daemon.
 *
 * PR 10 unified the serve result cache and the opt memo into
 * tts::cache (src/cache/); the daemon-facing names below are aliases
 * so serve code and tests keep reading naturally.  Semantics,
 * snapshot format, and counters are unchanged - see
 * cache/result_cache.hh.
 */

#ifndef TTS_SERVE_CACHE_HH
#define TTS_SERVE_CACHE_HH

#include "cache/result_cache.hh"

namespace tts {
namespace serve {

using CacheConfig = cache::CacheConfig;
using CacheLoadOutcome = cache::CacheLoadOutcome;
using ResultCache = cache::ResultCache;

} // namespace serve
} // namespace tts

#endif // TTS_SERVE_CACHE_HH
