#include "serve/mux.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <mutex>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/obs.hh"
#include "util/error.hh"

namespace tts {
namespace serve {

namespace {

/** Cached `serve.mux.*` instrument references. */
struct Metrics
{
    obs::Counter &sessions =
        obs::registry().counter("serve.mux.sessions");
    obs::Counter &replies =
        obs::registry().counter("serve.mux.replies");
    obs::Counter &discarded =
        obs::registry().counter("serve.mux.discarded");
};

Metrics &
metrics()
{
    static Metrics m;
    return m;
}

void
setNonblocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    require(flags >= 0 &&
                ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
            "mux: fcntl(O_NONBLOCK) failed: " +
                std::string(std::strerror(errno)));
}

/** One reply frame, serialized for the session's write buffer. */
std::string
frameBytes(const std::string &payload)
{
    std::string out = "tts-frame ";
    out += std::to_string(payload.size());
    out += '\n';
    out += payload;
    return out;
}

} // namespace

std::map<std::string, double>
MuxStats::toMap() const
{
    return {
        {"mux.sessions_accepted",
         static_cast<double>(sessionsAccepted)},
        {"mux.sessions_closed", static_cast<double>(sessionsClosed)},
        {"mux.sessions_refused",
         static_cast<double>(sessionsRefused)},
        {"mux.frames_ok", static_cast<double>(framesOk)},
        {"mux.frames_malformed",
         static_cast<double>(framesMalformed)},
        {"mux.replies_written", static_cast<double>(repliesWritten)},
        {"mux.replies_discarded",
         static_cast<double>(repliesDiscarded)},
        {"mux.peak_sessions", static_cast<double>(peakSessions)},
    };
}

/**
 * One connected client.  Mutated only by the poll loop; daemon
 * workers reach it exclusively through Shared's completion queue.
 */
struct SessionMux::Session
{
    int fd = -1;
    FrameDecoder decoder;
    /** In-order reply slots; front is the next to write. */
    struct Slot
    {
        bool ready = false;
        std::string payload;
    };
    std::deque<Slot> slots;
    /** Session-local sequence of slots.front() (slot i lives at
     *  deque index seq - baseSeq). */
    std::uint64_t baseSeq = 0;
    std::uint64_t nextSeq = 0;
    /** Bytes framed for this client but not yet written. */
    std::string writeBuf;
    std::size_t writePos = 0;
    /** EOF or unrecoverable frame: no more reads, drain and close. */
    bool readClosed = false;
    /** fd gone (disconnect / write error): discard completions. */
    bool dead = false;

    explicit Session(FrameLimits limits) : decoder(limits) {}

    std::size_t outstanding() const { return slots.size(); }
    bool wantsWrite() const { return writePos < writeBuf.size(); }
};

/**
 * State shared with daemon-worker callbacks (and adopt()/stop()
 * callers).  Holds the self-pipe; kept alive by shared_ptr so a
 * callback completing after the mux died still has somewhere safe
 * to land.
 */
struct SessionMux::Shared
{
    std::mutex mu;
    struct Completion
    {
        std::shared_ptr<Session> session;
        std::uint64_t seq = 0;
        std::string payload;
    };
    std::vector<Completion> completions;
    std::vector<int> adopted;
    bool stopRequested = false;
    /** The mux is gone; completions are silently dropped. */
    bool closed = false;
    int wakeRead = -1;
    int wakeWrite = -1;

    Shared()
    {
        int fds[2];
        require(::pipe(fds) == 0,
                "mux: self-pipe creation failed: " +
                    std::string(std::strerror(errno)));
        wakeRead = fds[0];
        wakeWrite = fds[1];
        setNonblocking(wakeRead);
        setNonblocking(wakeWrite);
    }

    ~Shared()
    {
        ::close(wakeRead);
        ::close(wakeWrite);
    }

    /** Nudge the poll loop (a full pipe is fine: the loop drains
     *  the queue, not the pipe bytes, one-to-one). */
    void wake()
    {
        const char b = 0;
        ssize_t rc = ::write(wakeWrite, &b, 1);
        (void)rc;
    }

    void post(Completion c)
    {
        {
            std::lock_guard<std::mutex> lock(mu);
            if (closed)
                return;
            completions.push_back(std::move(c));
        }
        wake();
    }
};

SessionMux::SessionMux(Daemon &daemon, MuxOptions options)
    : daemon_(daemon), options_(options),
      shared_(std::make_shared<Shared>())
{
    require(options_.maxSessions >= 1,
            "mux: maxSessions must be >= 1");
    window_ = options_.pipelineWindow != 0
        ? options_.pipelineWindow
        : daemon_.config().queueCapacity;
    if (window_ == 0)
        window_ = 1;
}

SessionMux::~SessionMux()
{
    {
        std::lock_guard<std::mutex> lock(shared_->mu);
        shared_->closed = true;
        for (int fd : shared_->adopted)
            ::close(fd);
        shared_->adopted.clear();
    }
    for (const auto &s : sessions_) {
        if (s->fd >= 0)
            ::close(s->fd);
        s->dead = true;
    }
    if (listenFd_ >= 0)
        ::close(listenFd_);
    if (!listenPath_.empty())
        ::unlink(listenPath_.c_str());
}

void
SessionMux::listenUnix(const std::string &path)
{
    require(listenFd_ < 0, "mux: already listening");
    sockaddr_un addr{};
    require(path.size() < sizeof(addr.sun_path),
            "mux: socket path too long: " + path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    require(fd >= 0, "mux: socket() failed: " +
                         std::string(std::strerror(errno)));
    ::unlink(path.c_str()); // A stale socket from a previous run.
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const std::string why = std::strerror(errno);
        ::close(fd);
        fatal("mux: bind(" + path + ") failed: " + why);
    }
    if (::listen(fd, 64) != 0) {
        const std::string why = std::strerror(errno);
        ::close(fd);
        fatal("mux: listen(" + path + ") failed: " + why);
    }
    setNonblocking(fd);
    listenFd_ = fd;
    listenPath_ = path;
}

void
SessionMux::adopt(int fd)
{
    {
        std::lock_guard<std::mutex> lock(shared_->mu);
        if (!shared_->closed) {
            shared_->adopted.push_back(fd);
            fd = -1;
        }
    }
    if (fd >= 0) {
        ::close(fd); // The mux is gone; refuse quietly.
        return;
    }
    shared_->wake();
}

void
SessionMux::stop()
{
    {
        std::lock_guard<std::mutex> lock(shared_->mu);
        shared_->stopRequested = true;
    }
    shared_->wake();
}

MuxStats
SessionMux::stats() const
{
    std::lock_guard<std::mutex> lock(shared_->mu);
    return stats_;
}

std::shared_ptr<SessionMux::Session>
SessionMux::addSession(int fd)
{
    setNonblocking(fd);
    auto s = std::make_shared<Session>(options_.limits);
    s->fd = fd;
    sessions_.push_back(s);
    {
        std::lock_guard<std::mutex> lock(shared_->mu);
        ++stats_.sessionsAccepted;
        stats_.peakSessions = std::max(
            stats_.peakSessions,
            static_cast<std::uint64_t>(sessions_.size()));
    }
    TTS_OBS_COUNT(metrics().sessions, 1);
    return s;
}

void
SessionMux::acceptReady()
{
    for (;;) {
        if (sessions_.size() >= options_.maxSessions)
            return;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN or a transient accept error: poll on.
        }
        addSession(fd);
    }
}

void
SessionMux::reserveErrorSlot(const std::shared_ptr<Session> &s,
                             const FrameResult &frame)
{
    Session::Slot slot;
    slot.ready = true;
    slot.payload =
        Reply::errorReply(ErrorKind::Malformed, frame.diagnostic)
            .toJson();
    s->slots.push_back(std::move(slot));
    ++s->nextSeq;
    std::lock_guard<std::mutex> lock(shared_->mu);
    ++stats_.framesMalformed;
}

void
SessionMux::dispatchFrame(const std::shared_ptr<Session> &s,
                          FrameResult frame)
{
    const std::uint64_t seq = s->nextSeq++;
    s->slots.emplace_back(); // Reserve the ordered reply slot now.
    {
        std::lock_guard<std::mutex> lock(shared_->mu);
        ++stats_.framesOk;
    }
    std::shared_ptr<Shared> shared = shared_;
    daemon_.submitAsync(
        std::move(frame.payload),
        [shared, s, seq](Reply reply) {
            Shared::Completion c;
            c.session = s;
            c.seq = seq;
            c.payload = reply.toJson();
            shared->post(std::move(c));
        });
}

void
SessionMux::readSession(const std::shared_ptr<Session> &s)
{
    if (s->readClosed || s->dead)
        return; // A lingering POLLHUP after EOF must not re-finish.
    char buf[64 * 1024];
    for (;;) {
        const ssize_t n = ::read(s->fd, buf, sizeof(buf));
        if (n > 0) {
            s->decoder.feed(buf, static_cast<std::size_t>(n));
            break; // One chunk per poll round keeps sessions fair.
        }
        if (n == 0) {
            s->readClosed = true;
            FrameResult tail = s->decoder.finish();
            if (tail.status == FrameStatus::Malformed)
                reserveErrorSlot(s, tail);
            break;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        // Hard read error: the client is gone.  In-flight
        // evaluations still complete; their replies are discarded.
        s->readClosed = true;
        s->dead = true;
        break;
    }
    FrameResult frame;
    while (!s->readClosed && s->decoder.next(&frame)) {
        if (frame.status == FrameStatus::Malformed) {
            reserveErrorSlot(s, frame);
            if (!frame.recoverable)
                s->readClosed = true;
        } else {
            dispatchFrame(s, std::move(frame));
        }
    }
}

void
SessionMux::flushSession(const std::shared_ptr<Session> &s)
{
    if (s->dead || s->fd < 0)
        return;
    // Frame every ready reply at the front of the slot queue.
    while (!s->slots.empty() && s->slots.front().ready) {
        s->writeBuf += frameBytes(s->slots.front().payload);
        s->slots.pop_front();
        ++s->baseSeq;
        {
            std::lock_guard<std::mutex> lock(shared_->mu);
            ++stats_.repliesWritten;
        }
        TTS_OBS_COUNT(metrics().replies, 1);
    }
    // Push bytes until the socket pushes back.  MSG_NOSIGNAL: a
    // peer that hung up must surface as EPIPE here, not SIGPIPE.
    while (s->wantsWrite()) {
        const ssize_t n =
            ::send(s->fd, s->writeBuf.data() + s->writePos,
                   s->writeBuf.size() - s->writePos, MSG_NOSIGNAL);
        if (n > 0) {
            s->writePos += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return; // Slow client: poll for POLLOUT, serve others.
        s->dead = true; // EPIPE/ECONNRESET: client vanished.
        return;
    }
    s->writeBuf.clear();
    s->writePos = 0;
}

void
SessionMux::closeSession(const std::shared_ptr<Session> &s)
{
    if (s->fd >= 0) {
        ::close(s->fd);
        s->fd = -1;
    }
    s->dead = true;
    sessions_.erase(
        std::remove(sessions_.begin(), sessions_.end(), s),
        sessions_.end());
    std::lock_guard<std::mutex> lock(shared_->mu);
    ++stats_.sessionsClosed;
}

void
SessionMux::drainWake()
{
    char buf[256];
    while (::read(shared_->wakeRead, buf, sizeof(buf)) > 0) {
    }
    std::vector<Shared::Completion> completions;
    std::vector<int> adopted;
    {
        std::lock_guard<std::mutex> lock(shared_->mu);
        completions.swap(shared_->completions);
        adopted.swap(shared_->adopted);
    }
    for (int fd : adopted) {
        if (sessions_.size() >= options_.maxSessions) {
            ::close(fd);
            std::lock_guard<std::mutex> lock(shared_->mu);
            ++stats_.sessionsRefused;
            continue;
        }
        addSession(fd);
    }
    for (Shared::Completion &c : completions) {
        Session &s = *c.session;
        if (s.dead) {
            {
                std::lock_guard<std::mutex> lock(shared_->mu);
                ++stats_.repliesDiscarded;
            }
            TTS_OBS_COUNT(metrics().discarded, 1);
            continue;
        }
        invariant(c.seq >= s.baseSeq &&
                      c.seq - s.baseSeq < s.slots.size(),
                  "mux: completion for an unreserved reply slot");
        Session::Slot &slot =
            s.slots[static_cast<std::size_t>(c.seq - s.baseSeq)];
        slot.payload = std::move(c.payload);
        slot.ready = true;
    }
}

void
SessionMux::run()
{
    std::vector<pollfd> fds;
    // Poll-index bookkeeping: rebuilt every round, parallel with
    // `polled` so revents map back to sessions.
    std::vector<std::shared_ptr<Session>> polled;
    for (;;) {
        {
            std::lock_guard<std::mutex> lock(shared_->mu);
            if (shared_->stopRequested)
                return;
            if (options_.exitAfterSessions > 0 &&
                stats_.sessionsClosed >= options_.exitAfterSessions)
                return;
        }

        fds.clear();
        polled.clear();
        fds.push_back(
            pollfd{shared_->wakeRead, POLLIN, 0});
        const bool canAccept = listenFd_ >= 0 &&
            sessions_.size() < options_.maxSessions;
        if (canAccept)
            fds.push_back(pollfd{listenFd_, POLLIN, 0});
        for (const auto &s : sessions_) {
            short events = 0;
            if (!s->readClosed && s->outstanding() < window_)
                events |= POLLIN;
            if (s->wantsWrite())
                events |= POLLOUT;
            // A drained, read-closed session closes below; a
            // window-full session waits on completions only.
            fds.push_back(pollfd{s->fd, events, 0});
            polled.push_back(s);
        }

        const int rc = ::poll(fds.data(),
                              static_cast<nfds_t>(fds.size()), -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            fatal("mux: poll() failed: " +
                  std::string(std::strerror(errno)));
        }

        std::size_t idx = 0;
        if (fds[idx++].revents & POLLIN)
            drainWake();
        if (canAccept) {
            if (fds[idx].revents & POLLIN)
                acceptReady();
            ++idx;
        }
        for (std::size_t i = 0; i < polled.size(); ++i) {
            const std::shared_ptr<Session> &s = polled[i];
            const short got = fds[idx + i].revents;
            if (got & (POLLIN | POLLHUP | POLLERR))
                readSession(s);
            flushSession(s);
        }

        // Sweep: close drained or dead sessions.  Dead sessions
        // may still have evaluations in flight - those complete
        // against the shared cache and are discarded on arrival.
        std::vector<std::shared_ptr<Session>> doomed;
        for (const auto &s : sessions_)
            if (s->dead ||
                (s->readClosed && s->slots.empty() &&
                 !s->wantsWrite()))
                doomed.push_back(s);
        for (const auto &s : doomed)
            closeSession(s);
    }
}

} // namespace serve
} // namespace tts
