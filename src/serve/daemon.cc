#include "serve/daemon.hh"

#include <algorithm>
#include <chrono>
#include <istream>
#include <ostream>
#include <utility>

#include "exec/parallel.hh"
#include "obs/obs.hh"
#include "serve/eval.hh"
#include "util/error.hh"

namespace tts {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     t0)
        .count();
}

/** Cached `serve.*` instrument references (registry lookups are
 *  once-per-process; mutation is gated on obs::enabled()). */
struct Metrics
{
    obs::Counter &submitted =
        obs::registry().counter("serve.submitted.total");
    obs::Counter &shed = obs::registry().counter("serve.shed.total");
    obs::Counter &hits =
        obs::registry().counter("serve.cache.hit.total");
    obs::Counter &retries =
        obs::registry().counter("serve.retry.total");
    obs::Counter &coalesced =
        obs::registry().counter("serve.coalesced.total");
    obs::Counter &repliesOk =
        obs::registry().counter("serve.replies.ok");
    obs::Counter &repliesError =
        obs::registry().counter("serve.replies.error");
    obs::Gauge &queueDepth =
        obs::registry().gauge("serve.queue.depth");
    obs::HistogramCell &latencyMs = obs::registry().histogram(
        "serve.latency_ms", {0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
                             25.0, 50.0, 100.0, 250.0, 1000.0});
    obs::HistogramCell &evalMs = obs::registry().histogram(
        "serve.eval_ms", {0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
                          100.0, 250.0, 1000.0, 5000.0});
};

Metrics &
metrics()
{
    static Metrics m;
    return m;
}

} // namespace

std::map<std::string, double>
DaemonStats::toMap() const
{
    return {
        {"serve.submitted", static_cast<double>(submitted)},
        {"serve.accepted", static_cast<double>(accepted)},
        {"serve.shed", static_cast<double>(shed)},
        {"serve.replies_ok", static_cast<double>(repliesOk)},
        {"serve.replies_error", static_cast<double>(repliesError)},
        {"serve.malformed", static_cast<double>(malformed)},
        {"serve.unsupported_version",
         static_cast<double>(unsupportedVersion)},
        {"serve.deadline_exceeded",
         static_cast<double>(deadlineExceeded)},
        {"serve.worker_failed", static_cast<double>(workerFailed)},
        {"serve.retries", static_cast<double>(retries)},
        {"serve.coalesced", static_cast<double>(coalesced)},
        {"serve.evaluations", static_cast<double>(evaluations)},
        {"serve.queue_peak", static_cast<double>(queuePeak)},
    };
}

/** One admitted request, from submit to its delivered Reply. */
struct Daemon::Job
{
    std::string json;
    std::uint64_t seq = 0;
    Clock::time_point admitted;
    /** Runs exactly once with the reply (worker thread, or the
     *  submitter's thread for an immediate rejection). */
    std::function<void(Reply)> done;
};

/** Single-flight rendezvous: the leader evaluates, followers wait
 *  here and copy the published reply. */
struct Daemon::Flight
{
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Reply reply;
};

Daemon::Daemon(DaemonConfig config, ServeFaultPlan faults)
    : config_(std::move(config)), faults_(std::move(faults)),
      cache_(config_.cache), batcher_(config_.batch)
{
    require(config_.queueCapacity >= 1,
            "serve daemon: queueCapacity must be >= 1");
    require(config_.retryBudget >= 1,
            "serve daemon: retryBudget must be >= 1");
    require(config_.retryBackoffBaseMs >= 0.0,
            "serve daemon: retryBackoffBaseMs must be >= 0");
    if (config_.workers == 0)
        config_.workers = exec::defaultThreadCount();
    loadOutcome_ = cache_.load();
    workers_.reserve(config_.workers);
    for (std::size_t i = 0; i < config_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

Daemon::~Daemon()
{
    shutdown();
}

std::future<Reply>
Daemon::submit(std::string request_json)
{
    auto promise = std::make_shared<std::promise<Reply>>();
    std::future<Reply> fut = promise->get_future();
    submitAsync(std::move(request_json),
                [promise](Reply reply) {
                    promise->set_value(std::move(reply));
                });
    return fut;
}

void
Daemon::submitAsync(std::string request_json,
                    std::function<void(Reply)> done)
{
    auto job = std::make_unique<Job>();
    job->json = std::move(request_json);
    job->admitted = Clock::now();
    job->done = std::move(done);
    Reply rejection;
    bool rejected = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.submitted;
        if (stopping_) {
            rejection = Reply::errorReply(
                ErrorKind::Shutdown,
                "daemon is shutting down; retry against a fresh "
                "instance");
            rejected = true;
            ++stats_.repliesError;
        } else if (queue_.size() >= config_.queueCapacity) {
            rejection = Reply::errorReply(
                ErrorKind::Overloaded,
                "admission queue full (capacity " +
                    std::to_string(config_.queueCapacity) +
                    "); retry with backoff");
            rejected = true;
            ++stats_.shed;
            ++stats_.repliesError;
        } else {
            job->seq = nextSeq_++;
            ++stats_.accepted;
            queue_.push_back(std::move(job));
            stats_.queuePeak =
                std::max(stats_.queuePeak,
                         static_cast<std::uint64_t>(queue_.size()));
            TTS_OBS_GAUGE(metrics().queueDepth,
                          static_cast<double>(queue_.size()));
        }
    }
    TTS_OBS_COUNT(metrics().submitted, 1);
    if (rejected) {
        // Shed on the submitter's thread: an instant typed reply
        // instead of an unbounded queue wait.
        TTS_OBS_COUNT(metrics().shed, 1);
        TTS_OBS_COUNT(metrics().repliesError, 1);
        job->done(std::move(rejection));
    } else {
        workReady_.notify_one();
    }
}

Reply
Daemon::call(const std::string &request_json)
{
    return submit(request_json).get();
}

void
Daemon::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    queueIdle_.wait(lock, [this] {
        return queue_.empty() && inFlight_ == 0;
    });
}

void
Daemon::shutdown()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        // Drain first so every already-accepted request is
        // evaluated and answered, then flip the stop flag so late
        // submits get typed shutdown replies.
        queueIdle_.wait(lock, [this] {
            return queue_.empty() && inFlight_ == 0;
        });
        stopping_ = true;
    }
    workReady_.notify_all();
    for (std::thread &t : workers_)
        if (t.joinable())
            t.join();
    cache_.persist();
}

DaemonStats
Daemon::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

std::size_t
Daemon::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
}

void
Daemon::workerLoop()
{
    for (;;) {
        std::unique_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            workReady_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and fully drained
            job = std::move(queue_.front());
            queue_.pop_front();
            ++inFlight_;
            TTS_OBS_GAUGE(metrics().queueDepth,
                          static_cast<double>(queue_.size()));
        }
        Reply reply = process(*job);
        noteReply(reply, msSince(job->admitted));
        job->done(std::move(reply));
        {
            std::lock_guard<std::mutex> lock(mu_);
            --inFlight_;
            if (queue_.empty() && inFlight_ == 0)
                queueIdle_.notify_all();
        }
    }
}

Reply
Daemon::process(Job &job)
{
    // Rung 0: parsing happens here, inside the same never-throws
    // boundary as evaluation, so hostile bytes cost one queue slot
    // and produce one typed reply.
    Request req;
    try {
        req = parseRequest(job.json, config_.maxRequestBytes);
    } catch (const UnsupportedVersionError &e) {
        return Reply::errorReply(ErrorKind::UnsupportedVersion,
                                 e.what());
    } catch (const Error &e) {
        return Reply::errorReply(ErrorKind::Malformed, e.what());
    }
    const std::string canonical = canonicalText(req);
    const std::uint64_t fp = fnv1a(canonical);

    // Rung 1: a cached answer is free, so it is served even when
    // the deadline has lapsed - deadlines bound time-to-evaluate,
    // not time-to-copy.
    Result cached;
    if (cache_.find(fp, canonical, &cached)) {
        TTS_OBS_COUNT(metrics().hits, 1);
        return Reply::okReply(fp, true, 0.0, std::move(cached));
    }

    const double deadline = req.deadlineMs > 0.0
        ? req.deadlineMs
        : config_.defaultDeadlineMs;
    if (deadline > 0.0) {
        const double waited = msSince(job.admitted);
        if (waited >= deadline)
            return Reply::errorReply(
                ErrorKind::DeadlineExceeded,
                "deadline of " + std::to_string(deadline) +
                    " ms passed before evaluation started",
                fp);
    }

    // Rung 2: single-flight.  The first worker to see a fingerprint
    // becomes its leader and evaluates; everyone else waits for the
    // published reply instead of re-running the study.
    std::shared_ptr<Flight> flight;
    bool leader = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = flights_.find(fp);
        if (it == flights_.end()) {
            flight = std::make_shared<Flight>();
            flights_.emplace(fp, flight);
            leader = true;
        } else {
            flight = it->second;
        }
    }
    if (!leader) {
        std::unique_lock<std::mutex> lock(flight->mu);
        flight->cv.wait(lock, [&] { return flight->done; });
        Reply reply = flight->reply;
        if (reply.ok) {
            reply.cacheHit = true;
            reply.evalMs = 0.0;
        }
        {
            std::lock_guard<std::mutex> slock(mu_);
            ++stats_.coalesced;
        }
        TTS_OBS_COUNT(metrics().coalesced, 1);
        return reply;
    }

    // Double-checked: a previous leader may have finished (insert,
    // then flight retire) between this request's cache miss and its
    // flight registration - re-read the cache before paying for an
    // evaluation.
    Reply reply;
    if (cache_.find(fp, canonical, &cached)) {
        TTS_OBS_COUNT(metrics().hits, 1);
        reply = Reply::okReply(fp, true, 0.0, std::move(cached));
    } else {
        reply = evaluateWithRetries(req, canonical, job.seq, fp);
        if (reply.ok)
            cache_.insert(fp, canonical, reply.result);
    }
    {
        // Retire the flight before publishing: a request arriving
        // after this point must consult the (now warm) cache, not a
        // finished flight.
        std::lock_guard<std::mutex> lock(mu_);
        flights_.erase(fp);
    }
    {
        std::lock_guard<std::mutex> lock(flight->mu);
        flight->reply = reply;
        flight->done = true;
    }
    flight->cv.notify_all();
    return reply;
}

Reply
Daemon::evaluateWithRetries(const Request &req,
                            const std::string &canonical,
                            std::uint64_t seq, std::uint64_t fp)
{
    const std::size_t injected = faults_.crashAttempts(seq);
    std::string last;
    for (std::size_t attempt = 0; attempt < config_.retryBudget;
         ++attempt) {
        try {
            if (attempt < injected)
                throw TransientWorkerFailure(
                    "injected worker crash (attempt " +
                    std::to_string(attempt + 1) + ")");
            const Clock::time_point t0 = Clock::now();
            // Fleet-backed misses ride the shared batcher so
            // concurrent misses execute as one sweep; the retry
            // ladder and fault injection wrap it the same way they
            // wrap an individual evaluation.
            Result result = batchable(req)
                ? batcher_.evaluate(req, canonical)
                : evaluate(req);
            const double eval_ms = msSince(t0);
            {
                std::lock_guard<std::mutex> lock(mu_);
                ++stats_.evaluations;
            }
            TTS_OBS_OBSERVE(metrics().evalMs, eval_ms);
            return Reply::okReply(fp, false, eval_ms,
                                  std::move(result));
        } catch (const TransientWorkerFailure &e) {
            last = e.what();
            {
                std::lock_guard<std::mutex> lock(mu_);
                ++stats_.retries;
            }
            TTS_OBS_COUNT(metrics().retries, 1);
            if (attempt + 1 < config_.retryBudget &&
                config_.retryBackoffBaseMs > 0.0) {
                const double backoff_ms =
                    config_.retryBackoffBaseMs *
                    static_cast<double>(std::uint64_t{1} << attempt);
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(
                        backoff_ms));
            }
        } catch (const Error &e) {
            // Evaluation rejected the request's semantics (e.g. an
            // unknown scenario name): a client error, not a worker
            // failure, and never worth retrying.
            return Reply::errorReply(ErrorKind::Malformed, e.what(),
                                     fp);
        } catch (const std::exception &e) {
            return Reply::errorReply(
                ErrorKind::WorkerFailed,
                std::string("evaluation died: ") + e.what(), fp);
        }
    }
    return Reply::errorReply(
        ErrorKind::WorkerFailed,
        "evaluation failed " +
            std::to_string(config_.retryBudget) +
            " attempts; last: " + last,
        fp);
}

void
Daemon::noteReply(const Reply &reply, double latency_ms)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (reply.ok) {
            ++stats_.repliesOk;
        } else {
            ++stats_.repliesError;
            switch (reply.error) {
            case ErrorKind::Malformed:
                ++stats_.malformed;
                break;
            case ErrorKind::UnsupportedVersion:
                ++stats_.unsupportedVersion;
                break;
            case ErrorKind::DeadlineExceeded:
                ++stats_.deadlineExceeded;
                break;
            case ErrorKind::WorkerFailed:
                ++stats_.workerFailed;
                break;
            default:
                break;
            }
        }
    }
    TTS_OBS_COUNT(reply.ok ? metrics().repliesOk
                           : metrics().repliesError,
                  1);
    TTS_OBS_OBSERVE(metrics().latencyMs, latency_ms);
}

StreamStats
serveStream(std::istream &in, std::ostream &out, Daemon &daemon,
            const StreamOptions &options)
{
    StreamStats stats;
    std::size_t window = options.pipelineWindow != 0
        ? options.pipelineWindow
        : daemon.config().queueCapacity;
    if (window == 0)
        window = 1;
    // Replies may carry more envelope text than the request budget;
    // give them headroom so writeFrame never throws mid-session.
    FrameLimits reply_limits;
    reply_limits.maxPayloadBytes = std::max<std::size_t>(
        options.limits.maxPayloadBytes, 256 * 1024);

    // Replies go out in request order: a malformed frame's error
    // reply occupies the same slot a result would have.
    struct Pending
    {
        bool ready = false;
        Reply reply;
        std::future<Reply> fut;
    };
    std::deque<Pending> pending;
    auto flushOne = [&] {
        Pending p = std::move(pending.front());
        pending.pop_front();
        // Always collect the reply - an in-flight evaluation must
        // complete even for a vanished client - but only write it
        // while the stream is still healthy.
        const Reply reply = p.ready ? p.reply : p.fut.get();
        if (!out.fail()) {
            writeFrame(out, reply.toJson(), reply_limits);
            ++stats.repliesWritten;
        }
    };

    for (;;) {
        if (out.fail()) {
            // The client disconnected mid-pipeline.  Stop reading;
            // the drain below still waits out every accepted
            // request so no evaluation is orphaned and the worker
            // pool stays healthy.
            stats.aborted = true;
            break;
        }
        FrameResult frame = readFrame(in, options.limits);
        if (frame.status == FrameStatus::Eof)
            break;
        if (frame.status == FrameStatus::Malformed) {
            ++stats.framesMalformed;
            Pending p;
            p.ready = true;
            p.reply = Reply::errorReply(ErrorKind::Malformed,
                                        frame.diagnostic);
            pending.push_back(std::move(p));
            if (!frame.recoverable) {
                stats.aborted = true;
                break;
            }
        } else {
            ++stats.framesOk;
            Pending p;
            p.fut = daemon.submit(std::move(frame.payload));
            pending.push_back(std::move(p));
        }
        while (pending.size() >= window)
            flushOne();
    }
    while (!pending.empty())
        flushOne();
    out.flush();
    return stats;
}

} // namespace serve
} // namespace tts
