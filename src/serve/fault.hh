/**
 * @file
 * Serve-layer fault injection (extends the tts::fault idea to the
 * daemon's own failure surface).
 *
 * The simulator-level FaultSchedule speaks plant trips and fan
 * failures; the serving layer fails differently - a worker dies
 * mid-request, a client sends garbage, a frame lies about its
 * length, a reader stalls.  A ServeFaultPlan is the deterministic,
 * seeded schedule of those events for one soak run: request index
 * `i` is assigned its client-side mutation (malformed payload,
 * oversized frame, truncated frame, slow-client stall) and its
 * worker-side crash count (how many leading evaluation attempts
 * throw TransientWorkerFailure before one succeeds) up front, from
 * Rng::forStream sub-streams of one seed.  The same (profile,
 * request_count, seed) therefore replays the same hostile schedule
 * on every run and at every thread count - the soak test's
 * zero-crash and every-request-answered assertions are assertions
 * about one reproducible execution, not about luck.
 *
 * The daemon consumes only the worker-crash axis (via
 * crashAttempts()); the client-side axes are consumed by the soak
 * harness and tools when they build the hostile byte stream.
 */

#ifndef TTS_SERVE_FAULT_HH
#define TTS_SERVE_FAULT_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/error.hh"

namespace tts {
namespace serve {

/** A worker failure worth retrying (injected or genuinely
 *  transient); anything else is not retried. */
class TransientWorkerFailure : public Error
{
  public:
    explicit TransientWorkerFailure(const std::string &what)
        : Error(what)
    {
    }
};

/** What the hostile client does to one request. */
enum class RequestFault
{
    None,      //!< Sent faithfully.
    Malformed, //!< Payload replaced with a malformed-corpus entry.
    Oversized, //!< Framed with a payload over the frame limit.
    Truncated, //!< Frame header declares more bytes than are sent.
    SlowClient,//!< Stall between header and payload bytes.
    Disconnect,//!< Client hangs up right after sending this request.
};

/** Per-request event probabilities for a generated plan. */
struct ServeFaultProfile
{
    /** P(evaluation attempts fail transiently) per request. */
    double workerCrashPerRequest = 0.0;
    /** Crash depth: selected requests fail this many leading
     *  attempts (drive it past the retry budget to exercise the
     *  worker_failed rung of the ladder). */
    std::size_t workerCrashAttempts = 1;
    /** P(malformed payload) per request. */
    double malformedPerRequest = 0.0;
    /** P(oversized frame) per request. */
    double oversizedPerRequest = 0.0;
    /** P(truncated frame) per request. */
    double truncatedPerRequest = 0.0;
    /** P(slow-client stall) per request. */
    double slowClientPerRequest = 0.0;
    /** P(client disconnects right after sending) per request. */
    double disconnectPerRequest = 0.0;
    /** Stall length (wall ms) for slow-client events. */
    double slowClientStallMs = 2.0;
    /** P(a whole session reads its replies slowly) per session
     *  (the multi-client soak's slow-reader axis). */
    double slowSessionPerSession = 0.0;
    /** Master seed. */
    std::uint64_t seed = 0x5eedbea7;
};

/** The materialized, replayable schedule for one soak run. */
class ServeFaultPlan
{
  public:
    /** Benign plan: no faults anywhere (the daemon default). */
    ServeFaultPlan() = default;

    /**
     * Sample a plan for `request_count` requests (and optionally
     * `session_count` concurrent sessions).  Each request draws its
     * client-side fault from one forStream(seed, i) stream and its
     * worker-crash selection from another, and each session draws
     * its slow-reader flag from a third family at a disjoint stream
     * offset, so the axes never perturb each other (the
     * fault::generateSchedule idiom).
     */
    static ServeFaultPlan generate(const ServeFaultProfile &profile,
                                   std::size_t request_count,
                                   std::size_t session_count = 0);

    /**
     * @return How many leading evaluation attempts of admission
     * sequence number `seq` must fail with TransientWorkerFailure.
     * Zero for sequences beyond the planned range (late requests
     * run clean).
     */
    std::size_t crashAttempts(std::uint64_t seq) const;

    /** @return The client-side mutation for request `i` (None past
     *  the planned range). */
    RequestFault requestFault(std::size_t i) const;

    /** @return Stall length for SlowClient events (wall ms). */
    double stallMs() const { return stallMs_; }

    /** @return Planned request count. */
    std::size_t size() const { return requestFaults_.size(); }

    /** @return Number of planned events of `kind`. */
    std::size_t countOf(RequestFault kind) const;

    /** @return Number of requests with planned worker crashes. */
    std::size_t crashedRequests() const;

    /** @return Whether session `s` is a planned slow reader (false
     *  past the planned range). */
    bool slowSession(std::size_t s) const;

    /** @return Number of planned slow-reader sessions. */
    std::size_t slowSessions() const;

  private:
    std::vector<RequestFault> requestFaults_;
    std::vector<std::size_t> crashAttempts_;
    std::vector<char> slowSessions_;
    double stallMs_ = 2.0;
};

} // namespace serve
} // namespace tts

#endif // TTS_SERVE_FAULT_HH
