/**
 * @file
 * Manifest-driven cache warming for the scenario daemon.
 *
 * A scenario manifest is a plain-text file naming the requests a
 * deployment expects to serve, so a fresh daemon can pre-evaluate
 * them *before* its socket opens and the first real client sees a
 * warm cache:
 *
 *     tts-serve-manifest v1
 *     # The morning dashboard's fleet panels.
 *     {"study": "fleet", "servers": 100, "days": 1}
 *     {"study": "fleet", "servers": 200, "days": 1}
 *     {"study": "cooling", "melt_c": 52}
 *
 * Line 1 must be the `tts-serve-manifest v1` header; after that,
 * blank lines and `#` comments are skipped and every other line is
 * one request document (the flat kv_json dialect, on a single
 * line - the parser takes any whitespace, so hand-writing these is
 * painless).
 *
 * Warming submits every entry through Daemon::submitAsync *first*
 * and only then waits, so concurrent fleet-backed misses collect in
 * the MissBatcher and execute as shared sweeps - warming N fleet
 * scenarios costs a handful of sweeps, not N daemon round-trips.
 *
 * Failure posture: a manifest that cannot be read or lacks the
 * header is a deployment error and throws (with the offending line
 * number); an individual entry that evaluates to a typed error is
 * counted and reported, never fatal - a stale manifest entry must
 * not keep the daemon from starting.
 */

#ifndef TTS_SERVE_MANIFEST_HH
#define TTS_SERVE_MANIFEST_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "serve/daemon.hh"

namespace tts {
namespace serve {

/** What one warming pass did. */
struct WarmStats
{
    /** Request entries found in the manifest. */
    std::size_t entries = 0;
    /** Entries freshly evaluated into the cache. */
    std::size_t warmed = 0;
    /** Entries already resident (snapshot or duplicate). */
    std::size_t alreadyCached = 0;
    /** Entries answered with a typed error (diagnostics below). */
    std::size_t failed = 0;
    /** One "line N: kind: detail" string per failed entry. */
    std::vector<std::string> failures;
};

/**
 * Parse a manifest and warm `daemon`'s cache with every entry.
 * Blocks until all entries are answered.
 *
 * @param in     The manifest text.
 * @param daemon The daemon to warm (normally before its socket
 *        opens; safe any time).
 * @param name   Manifest name for diagnostics.
 * @throws FatalError when the header is missing/wrong.
 */
WarmStats warmFromManifest(std::istream &in, Daemon &daemon,
                           const std::string &name = "<manifest>");

/** warmFromManifest() on a file. @throws FatalError on I/O error. */
WarmStats warmManifestFile(const std::string &path, Daemon &daemon);

} // namespace serve
} // namespace tts

#endif // TTS_SERVE_MANIFEST_HH
