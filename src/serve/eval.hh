/**
 * @file
 * The serving daemon's oracle: one validated Request in, one flat
 * Result out.
 *
 * Evaluation delegates to the existing core studies (cooling,
 * outage, resilience) and the plant runner (tts::plant) with the
 * request's RunConfig deltas applied,
 * so a served result is *by construction* the same computation a
 * batch `tts_sim` run performs - the cache bit-identity contract
 * reduces to the studies' own determinism contract (bit-identical
 * at any thread count, tts::exec §8).  Results carry only dotted
 * scalar keys, golden-file style, so they serialize losslessly
 * through kv_json and compare bit-exactly.
 */

#ifndef TTS_SERVE_EVAL_HH
#define TTS_SERVE_EVAL_HH

#include <vector>

#include "serve/protocol.hh"

namespace tts {
namespace serve {

/**
 * Evaluate one request.  Deterministic: equal canonicalText() means
 * bit-identical Results, at any thread count.
 *
 * @throws FatalError on semantic errors parsing reveals only here
 *         (an unknown resilience scenario, a bad inline fault
 *         schedule); callers map it to ErrorKind::Malformed.
 */
Result evaluate(const Request &req);

/**
 * @return True when the request runs on the fleet oracle and can
 * ride a batched sweep (the "fleet" study).  Batchable requests
 * answered through evaluateFleetBatch are bit-identical to
 * evaluate() run alone - that is the miss batcher's contract.
 */
bool batchable(const Request &req);

/**
 * Evaluate a batch of batchable requests as one sharded fleet sweep
 * (fleet::runFleetSweep).  @return One Result per request, in
 * request order, each bit-identical to evaluate(reqs[i]).
 * @throws FatalError when any request is not batchable.
 */
std::vector<Result>
evaluateFleetBatch(const std::vector<Request> &reqs);

} // namespace serve
} // namespace tts

#endif // TTS_SERVE_EVAL_HH
