/**
 * @file
 * The serving daemon's oracle: one validated Request in, one flat
 * Result out.
 *
 * Evaluation delegates to the existing core studies (cooling,
 * outage, resilience) and the plant runner (tts::plant) with the
 * request's RunConfig deltas applied,
 * so a served result is *by construction* the same computation a
 * batch `tts_sim` run performs - the cache bit-identity contract
 * reduces to the studies' own determinism contract (bit-identical
 * at any thread count, tts::exec §8).  Results carry only dotted
 * scalar keys, golden-file style, so they serialize losslessly
 * through kv_json and compare bit-exactly.
 */

#ifndef TTS_SERVE_EVAL_HH
#define TTS_SERVE_EVAL_HH

#include "serve/protocol.hh"

namespace tts {
namespace serve {

/**
 * Evaluate one request.  Deterministic: equal canonicalText() means
 * bit-identical Results, at any thread count.
 *
 * @throws FatalError on semantic errors parsing reveals only here
 *         (an unknown resilience scenario, a bad inline fault
 *         schedule); callers map it to ErrorKind::Malformed.
 */
Result evaluate(const Request &req);

} // namespace serve
} // namespace tts

#endif // TTS_SERVE_EVAL_HH
